// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md §2 maps ids to these).
// Each benchmark measures the figure's headline operation at a fixed,
// representative parameter point; the full parameter sweeps live in
// cmd/polyfit-experiments.
package polyfit_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	polyfit "repro"
	"repro/internal/artree"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fitingtree"
	"repro/internal/hist"
	"repro/internal/minimax"
	"repro/internal/nn"
	"repro/internal/rmi"
	"repro/internal/sampling"
	"repro/internal/segment"
)

const (
	benchTweetN = 100_000
	benchHKIN   = 100_000
	benchOSMN   = 60_000
)

var fixtures struct {
	once      sync.Once
	tweetKeys []float64
	hkiKeys   []float64
	hkiVals   []float64
	osmXs     []float64
	osmYs     []float64
	qs1D      []data.RangeQuery
	qsHKI     []data.RangeQuery
	qsRect    []data.RectQuery
}

func fx() *struct {
	once      sync.Once
	tweetKeys []float64
	hkiKeys   []float64
	hkiVals   []float64
	osmXs     []float64
	osmYs     []float64
	qs1D      []data.RangeQuery
	qsHKI     []data.RangeQuery
	qsRect    []data.RectQuery
} {
	fixtures.once.Do(func() {
		fixtures.tweetKeys = data.GenTweet(benchTweetN, 1)
		fixtures.hkiKeys, fixtures.hkiVals = data.GenHKI(benchHKIN, 2)
		fixtures.osmXs, fixtures.osmYs = data.GenOSM(benchOSMN, 3)
		fixtures.qs1D = data.RangeQueriesFromKeys(fixtures.tweetKeys, 1024, 4)
		fixtures.qsHKI = data.RangeQueriesFromKeys(fixtures.hkiKeys, 1024, 5)
		fixtures.qsRect = data.UniformRects(-180, 180, -90, 90, 1024, 6)
	})
	return &fixtures
}

// --- Figure 5 ---------------------------------------------------------------

func BenchmarkFig5Fitting(b *testing.B) {
	f := fx()
	stride := len(f.hkiKeys) / 90
	var xs, ys []float64
	for i := 0; i < len(f.hkiKeys) && len(xs) < 90; i += stride {
		xs = append(xs, f.hkiKeys[i])
		ys = append(ys, f.hkiVals[i])
	}
	b.Run("deg1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := minimax.FitPoly(xs, ys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deg4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := minimax.FitPoly(xs, ys, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 14: degree sweeps ------------------------------------------------

func BenchmarkFig14aDegree(b *testing.B) {
	f := fx()
	for _, deg := range []int{1, 2, 3} {
		ix, err := core.BuildCount(f.tweetKeys, core.Options{Degree: deg, Delta: 50, NoFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "PolyFit-1", 2: "PolyFit-2", 3: "PolyFit-3"}[deg], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := f.qs1D[i&1023]
				ix.RangeSum(q.L, q.U) //nolint:errcheck
			}
		})
	}
}

func BenchmarkFig14bDegreeMax(b *testing.B) {
	f := fx()
	for _, deg := range []int{1, 2} {
		ix, err := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: deg, Delta: 100, NoFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "PolyFit-1", 2: "PolyFit-2"}[deg], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := f.qsHKI[i&1023]
				ix.RangeExtremum(q.L, q.U) //nolint:errcheck
			}
		})
	}
}

func BenchmarkFig14cConstruction(b *testing.B) {
	keys := data.GenTweet(20_000, 7)
	for deg, name := range map[int]string{1: "PolyFit-1", 2: "PolyFit-2", 3: "PolyFit-3"} {
		deg := deg
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCount(keys, core.Options{Degree: deg, Delta: 50, NoFallback: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table V ------------------------------------------------------------------

func BenchmarkTable5_Count1Key(b *testing.B) {
	f := fx()
	s2, _ := sampling.NewS2(f.tweetKeys, 0.9, 8)
	rmiIx, err := rmi.BuildCountWithGuarantee(f.tweetKeys, 50, 1<<18, true)
	if err != nil {
		b.Fatal(err)
	}
	fit, _ := fitingtree.BuildCount(f.tweetKeys, 50, true)
	pf, _ := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: 50})
	b.Run("S2_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			s2.CountAbs(q.L, q.U, 100)
		}
	})
	b.Run("RMI_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			rmiIx.RangeSum(q.L, q.U)
		}
	})
	b.Run("FITingTree_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			fit.RangeSum(q.L, q.U)
		}
	})
	b.Run("PolyFit_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			pf.RangeSum(q.L, q.U) //nolint:errcheck
		}
	})
	b.Run("RMI_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			rmiIx.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		}
	})
	b.Run("FITingTree_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			fit.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		}
	})
	b.Run("PolyFit_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			pf.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		}
	})
}

func BenchmarkTable5_Max1Key(b *testing.B) {
	f := fx()
	tree, _ := artree.NewMaxTree(f.hkiKeys, f.hkiVals, artree.Max)
	pfAbs, _ := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true})
	pfRel, _ := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 50})
	b.Run("aRtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsHKI[i&1023]
			tree.Query(q.L, q.U)
		}
	})
	b.Run("PolyFit_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsHKI[i&1023]
			pfAbs.RangeExtremum(q.L, q.U) //nolint:errcheck
		}
	})
	b.Run("PolyFit_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsHKI[i&1023]
			pfRel.RangeExtremumRel(q.L, q.U, 0.01) //nolint:errcheck
		}
	})
}

func BenchmarkTable5_Count2Keys(b *testing.B) {
	f := fx()
	rt, _ := artree.NewRTree(f.osmXs, f.osmYs, 0, 0)
	pfAbs, err := core.BuildCount2D(f.osmXs, f.osmYs, core.Options2D{Degree: 2, Delta: 250, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	pfRel, err := core.BuildCount2D(f.osmXs, f.osmYs, core.Options2D{Degree: 2, Delta: 250})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aRtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsRect[i&1023]
			rt.CountRect(artree.Rect{
				XLo: math.Nextafter(q.XLo, math.Inf(1)), XHi: q.XHi,
				YLo: math.Nextafter(q.YLo, math.Inf(1)), YHi: q.YHi,
			})
		}
	})
	b.Run("PolyFit_abs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsRect[i&1023]
			pfAbs.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		}
	})
	b.Run("PolyFit_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsRect[i&1023]
			pfRel.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, 0.01) //nolint:errcheck
		}
	})
}

// --- Figures 15–18: method comparisons ----------------------------------------

func BenchmarkFig15aCountAbs(b *testing.B) {
	f := fx()
	rmiIx, err := rmi.BuildCountWithGuarantee(f.tweetKeys, 50, 1<<18, false)
	if err != nil {
		b.Fatal(err)
	}
	fit, _ := fitingtree.BuildCount(f.tweetKeys, 50, false)
	pf, _ := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: 50, NoFallback: true})
	b.Run("RMI", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			rmiIx.RangeSum(q.L, q.U)
		}
	})
	b.Run("FITingTree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			fit.RangeSum(q.L, q.U)
		}
	})
	b.Run("PolyFit2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			pf.RangeSum(q.L, q.U) //nolint:errcheck
		}
	})
}

func BenchmarkFig15bCount2DAbs(b *testing.B) {
	f := fx()
	rt, _ := artree.NewRTree(f.osmXs, f.osmYs, 0, 0)
	pf, err := core.BuildCount2D(f.osmXs, f.osmYs, core.Options2D{Degree: 2, Delta: 250, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aRtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsRect[i&1023]
			rt.CountRect(artree.Rect{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo, YHi: q.YHi})
		}
	})
	b.Run("PolyFit2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qsRect[i&1023]
			pf.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		}
	})
}

func BenchmarkFig16aCountRel(b *testing.B) {
	f := fx()
	rmiIx, err := rmi.BuildCountWithGuarantee(f.tweetKeys, 50, 1<<18, true)
	if err != nil {
		b.Fatal(err)
	}
	fit, _ := fitingtree.BuildCount(f.tweetKeys, 50, true)
	pf, _ := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: 50})
	for _, m := range []struct {
		name string
		op   func(l, u float64)
	}{
		{"RMI", func(l, u float64) { rmiIx.RangeSumRel(l, u, 0.01) }},      //nolint:errcheck
		{"FITingTree", func(l, u float64) { fit.RangeSumRel(l, u, 0.01) }}, //nolint:errcheck
		{"PolyFit2", func(l, u float64) { pf.RangeSumRel(l, u, 0.01) }},    //nolint:errcheck
	} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := f.qs1D[i&1023]
				m.op(q.L, q.U)
			}
		})
	}
}

func BenchmarkFig16bCount2DRel(b *testing.B) {
	b.ReportAllocs()
	f := fx()
	pf, err := core.BuildCount2D(f.osmXs, f.osmYs, core.Options2D{Degree: 2, Delta: 250})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer() // exclude the one-time build from ns/op and allocs/op
	for i := 0; i < b.N; i++ {
		q := f.qsRect[i&1023]
		pf.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, 0.01) //nolint:errcheck
	}
}

func BenchmarkFig17aMaxAbs(b *testing.B) {
	b.ReportAllocs()
	f := fx()
	pf, _ := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true})
	b.ResetTimer() // exclude the one-time build from ns/op and allocs/op
	for i := 0; i < b.N; i++ {
		q := f.qsHKI[i&1023]
		pf.RangeExtremum(q.L, q.U) //nolint:errcheck
	}
}

func BenchmarkFig17bMaxRel(b *testing.B) {
	b.ReportAllocs()
	f := fx()
	pf, _ := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 50})
	b.ResetTimer() // exclude the one-time build from ns/op and allocs/op
	for i := 0; i < b.N; i++ {
		q := f.qsHKI[i&1023]
		pf.RangeExtremumRel(q.L, q.U, 0.01) //nolint:errcheck
	}
}

func BenchmarkFig18Scalability(b *testing.B) {
	for _, n := range []int{25_000, 100_000, 400_000} {
		keys := data.GenOSMLatKeys(n, 9)
		qs := data.RangeQueriesFromKeys(keys, 1024, 10)
		pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: 50})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{25_000: "n25k", 100_000: "n100k", 400_000: "n400k"}[n], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i&1023]
				pf.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
			}
		})
	}
}

// --- Figure 19: index size (reported as metrics, not time) --------------------

func BenchmarkFig19IndexSize(b *testing.B) {
	f := fx()
	for i := 0; i < b.N; i++ {
		pf, err := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: 50, NoFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fit, _ := fitingtree.BuildCount(f.tweetKeys, 50, false)
			rmiIx, _ := rmi.BuildCountWithGuarantee(f.tweetKeys, 50, 1<<18, false)
			b.ReportMetric(float64(pf.SizeBytes())/1024, "polyfit-KB")
			b.ReportMetric(float64(fit.SizeBytes())/1024, "fitingtree-KB")
			b.ReportMetric(float64(rmiIx.SizeBytes())/1024, "rmi-KB")
		}
	}
}

// --- Figure 20: heuristics -----------------------------------------------------

func BenchmarkFig20Heuristics(b *testing.B) {
	f := fx()
	h, _ := hist.New(f.tweetKeys, 1024)
	st, _ := sampling.NewSTree(f.tweetKeys, len(f.tweetKeys)/10, 11)
	pf, _ := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: 50, NoFallback: true})
	b.Run("Hist1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			h.EstimateCount(q.L, q.U)
		}
	})
	b.Run("STree10pct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			st.EstimateCount(q.L, q.U)
		}
	})
	b.Run("PolyFit2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.qs1D[i&1023]
			pf.RangeSum(q.L, q.U) //nolint:errcheck
		}
	})
}

// --- Table VI: model prediction latency -----------------------------------------

func BenchmarkTable6Models(b *testing.B) {
	f := fx()
	xs := make([]float64, 0, 2000)
	ys := make([]float64, 0, 2000)
	stride := len(f.tweetKeys) / 2000
	for i := 0; i < len(f.tweetKeys); i += stride {
		xs = append(xs, f.tweetKeys[i])
		ys = append(ys, float64(i+1))
	}
	lr, _ := rmi.BuildCount(f.tweetKeys, []int{1}, false)
	b.Run("LR", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lr.CF(f.tweetKeys[i%len(f.tweetKeys)])
		}
	})
	for _, arch := range [][]int{{1, 8, 1}, {1, 8, 8, 1}, {1, 16, 16, 1}} {
		m, _ := nn.New(arch, 12)
		_ = m.Fit(xs, ys, nn.Config{Epochs: 10, Seed: 12})
		pred := m.Predictor()
		b.Run("NN"+m.Arch(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pred(f.tweetKeys[i%len(f.tweetKeys)])
			}
		})
	}
}

// --- Ablations -------------------------------------------------------------------

func BenchmarkAblationSegmentation(b *testing.B) {
	keys := data.GenTweet(20_000, 13)
	cf := make([]float64, len(keys))
	for i := range cf {
		cf[i] = float64(i + 1)
	}
	for _, v := range []struct {
		name string
		cfg  segment.Config
	}{
		{"ExpSearchExchange", segment.Config{Degree: 2, Delta: 50}},
		{"LinearScan", segment.Config{Degree: 2, Delta: 50, NoExpSearch: true}},
		{"ExpSearchDualLP", segment.Config{Degree: 2, Delta: 50, Backend: segment.DualLP}},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := segment.Greedy(keys, cf, v.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationMaxBoundaryWork(b *testing.B) {
	// Isolates the cost of the two boundary-segment polynomial
	// maximisations vs the O(1) RMQ middle (whole-domain queries hit only
	// the RMQ; narrow queries hit only the boundary path).
	f := fx()
	pf, _ := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true})
	lo, hi := f.hkiKeys[0], f.hkiKeys[len(f.hkiKeys)-1]
	b.Run("WholeDomainRMQ", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pf.RangeExtremum(lo, hi) //nolint:errcheck
		}
	})
	b.Run("NarrowBoundary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.hkiKeys[i%(len(f.hkiKeys)-100)]
			pf.RangeExtremum(q, q+50) //nolint:errcheck
		}
	})
}

// --- Serving layer: batched queries and concurrent throughput -----------------

// BenchmarkQueryBatchVsSerial compares answering 1024 COUNT ranges one by
// one against the QueryBatch hot path, for a random batch (the adaptive
// gate falls back to direct evaluation — parity with serial, no sort tax)
// and a sorted sliding-window batch (the forward-only cursor replaces
// every binary search).
func BenchmarkQueryBatchVsSerial(b *testing.B) {
	f := fx()
	random := make([]core.Range, len(f.qs1D))
	for i, q := range f.qs1D {
		random[i] = core.Range{Lo: q.L, Hi: q.U}
	}
	lo, hi := f.tweetKeys[0], f.tweetKeys[len(f.tweetKeys)-1]
	sorted := make([]core.Range, 1024)
	for i := range sorted {
		a := lo + float64(i)*(hi-lo)/1024
		sorted[i] = core.Range{Lo: a, Hi: a + (hi-lo)/1200}
	}
	// Coarse: the paper's δ=50 point, 24 segments — everything cache-hot.
	// Fine: δ=0.5, ~15k segments — per-query binary searches cache-miss.
	for _, cfg := range []struct {
		name  string
		delta float64
	}{{"Coarse", 50}, {"Fine", 0.5}} {
		pf, err := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: cfg.delta, NoFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []struct {
			name   string
			ranges []core.Range
		}{{"Random", random}, {"SortedWindows", sorted}} {
			b.Run(cfg.name+"/"+w.name+"/Serial", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, r := range w.ranges {
						pf.RangeSum(r.Lo, r.Hi) //nolint:errcheck
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.ranges)), "ns/query")
			})
			b.Run(cfg.name+"/"+w.name+"/Batched", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pf.QueryBatch(w.ranges); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.ranges)), "ns/query")
			})
		}
	}
}

// BenchmarkQueryBatchVsSerialMax is the MIN/MAX variant: the batch path
// replaces the two per-query binary searches with a monotone cursor plus a
// short gallop.
func BenchmarkQueryBatchVsSerialMax(b *testing.B) {
	f := fx()
	pf, err := core.BuildMax(f.hkiKeys, f.hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	ranges := make([]core.Range, len(f.qsHKI))
	for i, q := range f.qsHKI {
		ranges[i] = core.Range{Lo: q.L, Hi: q.U}
	}
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range ranges {
				pf.RangeExtremum(r.Lo, r.Hi) //nolint:errcheck
			}
		}
	})
	b.Run("Batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pf.QueryBatch(ranges); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDynamicConcurrentThroughput measures query throughput on a
// dynamic index while a background writer streams inserts (triggering
// periodic merge-rebuilds). Queries are lock-free snapshot reads, so
// GOMAXPROCS-many readers scale without contending with the writer.
func BenchmarkDynamicConcurrentThroughput(b *testing.B) {
	f := fx()
	for _, writers := range []int{0, 1} {
		name := map[int]string{0: "ReadOnly", 1: "WithInserts"}[writers]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			d, err := polyfit.NewDynamicCountIndex(f.tweetKeys, polyfit.Options{EpsAbs: 100, DisableFallback: true})
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
							d.Insert(rng.Float64()*4e8, 1) //nolint:errcheck
						}
					}
				}(int64(41 + w))
			}
			var qi atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := f.qs1D[int(qi.Add(1))&1023]
					if _, _, err := d.Query(q.L, q.U); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// --- PR 2: construction and locate hot paths -----------------------------------

// BenchmarkLocate isolates the per-query segment-location primitive: the
// learned root (an O(1) interpolation table over the segment boundaries)
// versus the binary search it replaced, on a coarse (cache-resident) and a
// fine (cache-hostile) index.
func BenchmarkLocate(b *testing.B) {
	f := fx()
	for _, cfg := range []struct {
		name  string
		delta float64
	}{{"Coarse", 50}, {"Fine", 0.5}} {
		pf, err := core.BuildCount(f.tweetKeys, core.Options{Degree: 2, Delta: cfg.delta, NoFallback: true})
		if err != nil {
			b.Fatal(err)
		}
		probes := make([]float64, 1024)
		for i, q := range f.qs1D {
			probes[i&1023] = q.U
		}
		b.Run(cfg.name+"/Root", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pf.Locate(probes[i&1023])
			}
		})
		b.Run(cfg.name+"/Binary", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pf.LocateBinary(probes[i&1023])
			}
		})
	}
}

// BenchmarkParallelBuild measures greedy-segmentation construction at
// 1/2/4/8 workers, on the Fig. 14c dataset (20k keys, δ=50) and on the
// fine-index configuration where construction cost actually dominates
// (200k keys, δ=0.5, ~30k segments). The built index is byte-identical
// across worker counts (tested in internal/segment and internal/core); only
// the wall clock changes. Fine indexes resynchronise at chunk junctions
// within a few segments, so they scale near-linearly with cores; ultra-
// coarse smooth indexes (tens of segments) may never resynchronise, so the
// first-segment probe in segment.Greedy keeps them serial (the Fig14c rows
// measure that bail-out).
func BenchmarkParallelBuild(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		n     int
		delta float64
	}{
		{"Fig14c_n20k_d50", 20_000, 50},
		{"Fine_n200k_d0.5", 200_000, 0.5},
	} {
		keys := data.GenTweet(cfg.n, 7)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", cfg.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.BuildCount(keys, core.Options{
						Degree: 2, Delta: cfg.delta, NoFallback: true, Parallelism: workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
