#!/usr/bin/env bash
# Per-package coverage floor: the accuracy-critical packages must keep at
# least MIN_COVERAGE statement coverage or CI fails. Run as
#   ./scripts/check-coverage.sh [pkg ...]
# with no arguments it checks the default floor set.
set -euo pipefail

MIN_COVERAGE="${MIN_COVERAGE:-75.0}"
PKGS=("$@")
if [ ${#PKGS[@]} -eq 0 ]; then
  PKGS=(internal/core internal/segment internal/server)
fi

fail=0
for pkg in "${PKGS[@]}"; do
  profile="$(mktemp)"
  go test -coverprofile="$profile" "./$pkg" >/dev/null
  pct="$(go tool cover -func="$profile" | tail -1 | awk '{gsub(/%/, "", $3); print $3}')"
  rm -f "$profile"
  if awk -v p="$pct" -v m="$MIN_COVERAGE" 'BEGIN { exit !(p < m) }'; then
    echo "FAIL $pkg: coverage ${pct}% < floor ${MIN_COVERAGE}%" >&2
    fail=1
  else
    echo "ok   $pkg: coverage ${pct}% (floor ${MIN_COVERAGE}%)"
  fi
done
exit $fail
