package polyfit

import (
	"fmt"

	"repro/internal/core"
)

// Spec declares what to index: the aggregate function and the data. The
// layout — static, dynamic, sharded — is chosen by Options passed to New,
// not by the type of the data.
type Spec struct {
	// Agg is the aggregate function (Count, Sum, Min, Max).
	Agg Agg
	// Keys are the record keys, sorted and strictly increasing.
	Keys []float64
	// Measures are the per-record measures; nil for Count (which ignores
	// them). SUM measures must be non-negative for the relative-error
	// guarantee.
	Measures []float64
}

// buildConfig is the resolved option set of one New call.
type buildConfig struct {
	epsAbs      float64
	delta       float64
	degree      int
	dynamic     bool
	shards      int
	parallelism int
	fallback    bool
	encoding    core.Encoding
}

// Option customises how New builds an index. Options with non-positive
// numeric arguments are no-ops, so a zero value always means "default".
type Option func(*buildConfig)

// WithMaxError sets the absolute error guarantee εabs. The build derives
// the fitting tolerance δ per the paper's lemmas (εabs/2 for COUNT/SUM,
// εabs for MIN/MAX). One of WithMaxError or WithDelta is required.
func WithMaxError(epsAbs float64) Option { return func(c *buildConfig) { c.epsAbs = epsAbs } }

// WithDelta overrides the derived fitting tolerance δ directly (used when
// the index mainly serves relative-error queries, e.g. the paper uses δ=50
// for 1D in Problem 2). Takes precedence over WithMaxError.
func WithDelta(delta float64) Option { return func(c *buildConfig) { c.delta = delta } }

// WithDegree sets the degree of the fitted polynomials (default 2 — the
// paper's PolyFit-2).
func WithDegree(degree int) Option {
	return func(c *buildConfig) {
		if degree > 0 {
			c.degree = degree
		}
	}
}

// WithDynamic makes the index insert-supporting: the built Index also
// implements Inserter (and, combined with WithShards, ShardSnapshotter).
// Inserts land in an exactly-aggregated delta buffer, so every error
// guarantee carries over unchanged.
func WithDynamic() Option { return func(c *buildConfig) { c.dynamic = true } }

// WithShards range-partitions the index into k contiguous shards queried
// scatter-gather; the built Index also implements Sharder. The composed
// COUNT/SUM bound 2δ·m for m touched shards is reported per answer in
// Result.Bound. k is clamped to [1, min(records, 4096)]; k ≤ 0 builds
// unsharded.
func WithShards(k int) Option { return func(c *buildConfig) { c.shards = k } }

// WithParallelism sets the number of goroutines used by index construction
// (and by later merge-rebuilds of dynamic indexes); values ≤ 1 build
// serially. The produced index is identical for every worker count, so this
// is purely a build-latency knob.
func WithParallelism(n int) Option { return func(c *buildConfig) { c.parallelism = n } }

// WithFallback controls whether the exact structures behind QueryRel are
// built (default true). Disable them to halve memory when the index only
// serves absolute-guarantee queries; relative-error queries then return
// ErrNoFallback whenever the approximate gate cannot certify the bound.
func WithFallback(enabled bool) Option { return func(c *buildConfig) { c.fallback = enabled } }

// WithEncoding pins the coefficient encoding instead of letting the build
// choose (EncAuto, the default). Every encoding preserves the certified δ
// guarantee: a forced compressed encoding that fails certification falls
// back to the next heavier one rather than weakening answers. Pin EncRaw to
// skip certification work at build time, or to keep the index bit-identical
// to the pre-encoding storage layout.
func WithEncoding(e Encoding) Option { return func(c *buildConfig) { c.encoding = e } }

// New builds a PolyFit index over spec with the given options — the single
// construction path for every one-key variant:
//
//	ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys},
//		polyfit.WithMaxError(100))                          // static
//	ix, err := polyfit.New(spec, polyfit.WithMaxError(100),
//		polyfit.WithDynamic(), polyfit.WithShards(8))       // insertable, 8 shards
//
// The returned Index answers Query/QueryRel/QueryBatch with the uniform
// Result contract regardless of layout; capabilities beyond that contract
// (Inserter, Sharder, ShardSnapshotter) are discoverable via type
// assertion. Errors wrap the package sentinels (ErrBadOptions,
// ErrAggMismatch, ErrEmptyKeys, ErrUnsortedKeys).
func New(spec Spec, opts ...Option) (Index, error) {
	cfg := buildConfig{fallback: true}
	for _, o := range opts {
		o(&cfg)
	}
	if spec.Agg < Count || spec.Agg > Max {
		return nil, fmt.Errorf("%w: unknown aggregate %v", ErrAggMismatch, spec.Agg)
	}
	delta := cfg.delta
	if delta <= 0 && cfg.epsAbs > 0 {
		delta = core.DeltaForAbs(spec.Agg, cfg.epsAbs)
	}
	if delta <= 0 {
		return nil, ErrBadOptions
	}
	copt := core.Options{
		Degree: cfg.degree, Delta: delta,
		NoFallback: !cfg.fallback, Parallelism: cfg.parallelism,
		Encoding: cfg.encoding,
	}
	keys, measures := spec.Keys, spec.Measures
	switch {
	case cfg.shards >= 1 && cfg.dynamic:
		inner, err := core.NewShardedDynamic(spec.Agg, keys, measures, cfg.shards, copt)
		if err != nil {
			return nil, err
		}
		return newShardedDynamicIndex(inner), nil
	case cfg.shards >= 1:
		inner, err := core.BuildSharded(spec.Agg, keys, measures, cfg.shards, copt)
		if err != nil {
			return nil, err
		}
		return newShardedIndex(inner), nil
	case cfg.dynamic:
		if spec.Agg == Count {
			// The dynamic state keeps the measures for merge-rebuilds; COUNT
			// ignores them, so synthesize zeros rather than requiring them.
			measures = make([]float64, len(keys))
		}
		inner, err := core.NewDynamic(spec.Agg, keys, measures, copt)
		if err != nil {
			return nil, err
		}
		return &dynamicIndex{inner: inner}, nil
	default:
		inner, err := core.Build(spec.Agg, keys, measures, copt)
		if err != nil {
			return nil, err
		}
		return &staticIndex{inner: inner}, nil
	}
}
