package polyfit

// This file holds the v1 public API: per-variant concrete types with
// 4-per-aggregate constructors. It is kept as a thin, deprecated
// compatibility layer — every constructor delegates to the polyfit.New
// builder and every method to the same internals that back the Index
// interface, so existing callers compile unchanged while new code uses
// New/Open. The one intentional break: the v1 static struct is now named
// StaticIndex, because polyfit.Index is the interface — code that spelled
// `polyfit.Index` as a concrete type must rename or move to Open. See
// doc.go for the migration table.

import (
	"repro/internal/core"
)

// Agg identifies the aggregate function of an index.
type Agg = core.Agg

// Aggregate functions supported by PolyFit (Definition 1 of the paper).
const (
	Count = core.Count
	Sum   = core.Sum
	Min   = core.Min
	Max   = core.Max
)

// Encoding identifies how an index stores its fitted coefficients (see
// WithEncoding and Stats.Encoding).
type Encoding = core.Encoding

// Coefficient encodings. EncAuto (the default) picks the smallest encoding
// that re-certifies the index's δ guarantee against the fitted data: packed
// integer lanes when possible, float32 lanes otherwise, raw float64 lanes as
// the always-valid fallback. Forcing EncF32 or EncPacked still falls back to
// a heavier encoding when certification fails (MIN/MAX, negative measures,
// or distributions the key grid cannot resolve); EncRaw is always honoured
// and is bit-identical to the historical per-segment layout.
const (
	EncAuto   = core.EncAuto
	EncRaw    = core.EncRaw
	EncF32    = core.EncF32
	EncPacked = core.EncPacked
)

// Options configures index construction in the v1 API.
//
// Deprecated: use functional options with polyfit.New (WithMaxError,
// WithDelta, WithDegree, WithFallback, WithParallelism).
type Options struct {
	// EpsAbs is the absolute error guarantee εabs. The build derives the
	// fitting tolerance δ per the paper's lemmas (εabs/2 for COUNT/SUM,
	// εabs for MIN/MAX, εabs/4 for two-key COUNT).
	EpsAbs float64
	// Delta overrides the derived fitting tolerance δ directly (used when
	// the index mainly serves relative-error queries, e.g. the paper uses
	// δ=50 for 1D and δ=250 for 2D in Problem 2). Takes precedence over
	// EpsAbs when positive.
	Delta float64
	// Degree of the fitted polynomials (default 2 — the paper's PolyFit-2).
	Degree int
	// DisableFallback skips building the exact structures used by QueryRel.
	DisableFallback bool
	// Parallelism is the number of goroutines used by index construction
	// (greedy segmentation, and merge-rebuilds of dynamic indexes); values
	// ≤ 1 build serially. The produced index is identical for every worker
	// count, so this is purely a build-latency knob.
	Parallelism int
}

// options lowers the v1 struct onto the builder's functional options
// (non-positive values are no-ops there, so zero fields mean "default").
func (o Options) options(extra ...Option) []Option {
	return append([]Option{
		WithMaxError(o.EpsAbs),
		WithDelta(o.Delta),
		WithDegree(o.Degree),
		WithFallback(!o.DisableFallback),
		WithParallelism(o.Parallelism),
	}, extra...)
}

// StaticIndex is an immutable PolyFit index over one key — the v1 concrete
// type behind polyfit.New's default (static, unsharded) layout.
//
// Deprecated: build with polyfit.New and query through the Index interface.
type StaticIndex struct {
	inner *core.Index1D
}

// newStatic delegates a v1 static build to the builder and unwraps the
// concrete index.
func newStatic(agg Agg, keys, measures []float64, opt Options) (*StaticIndex, error) {
	ix, err := New(Spec{Agg: agg, Keys: keys, Measures: measures}, opt.options()...)
	if err != nil {
		return nil, err
	}
	return &StaticIndex{inner: ix.(*staticIndex).inner}, nil
}

// NewCountIndex builds an index answering approximate range COUNT queries
// over the given keys (sorted, strictly increasing).
//
// Deprecated: use polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys}, ...).
func NewCountIndex(keys []float64, opt Options) (*StaticIndex, error) {
	return newStatic(Count, keys, nil, opt)
}

// NewSumIndex builds an index answering approximate range SUM queries over
// (key, measure) records. Measures must be non-negative for the
// relative-error guarantee.
//
// Deprecated: use polyfit.New(polyfit.Spec{Agg: polyfit.Sum, ...}, ...).
func NewSumIndex(keys, measures []float64, opt Options) (*StaticIndex, error) {
	return newStatic(Sum, keys, measures, opt)
}

// NewMaxIndex builds an index answering approximate range MAX queries.
//
// Deprecated: use polyfit.New(polyfit.Spec{Agg: polyfit.Max, ...}, ...).
func NewMaxIndex(keys, measures []float64, opt Options) (*StaticIndex, error) {
	return newStatic(Max, keys, measures, opt)
}

// NewMinIndex builds an index answering approximate range MIN queries.
//
// Deprecated: use polyfit.New(polyfit.Spec{Agg: polyfit.Min, ...}, ...).
func NewMinIndex(keys, measures []float64, opt Options) (*StaticIndex, error) {
	return newStatic(Min, keys, measures, opt)
}

// Query answers the approximate range aggregate over [lq, uq] (COUNT/SUM use
// the half-open (lq, uq] semantics of the paper's Equation 5). For MIN/MAX
// an empty range returns found=false; COUNT/SUM return 0 with found=true.
// NaN endpoints are rejected with ErrInvalidRange, exactly as on the Index
// interface (the wrapper delegates to the same adapter).
func (ix *StaticIndex) Query(lq, uq float64) (value float64, found bool, err error) {
	res, err := (&staticIndex{inner: ix.inner}).Query(Range{Lo: lq, Hi: uq})
	return res.Value, res.Found, err
}

// BatchResult is the answer to one Range of a v1 batch; Found mirrors
// Query's found result. The Index interface's QueryBatch returns []Result
// (with per-range error bounds) instead.
type BatchResult = core.BatchResult

// QueryBatch answers many ranges in one call, equivalent to calling Query
// per range but with the per-query segment binary search amortised across
// the sorted batch — the hot path of the serving layer's batched endpoint.
// Results are returned in input order.
func (ix *StaticIndex) QueryBatch(ranges []Range) ([]BatchResult, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	return ix.inner.QueryBatch(ranges)
}

// QueryRel answers within the relative error epsRel (Problem 2). The result
// is certified: either the approximate gate passed (Result.Bound carries
// the 2δ/δ guarantee), or the exact structure answered (Bound 0).
func (ix *StaticIndex) QueryRel(lq, uq, epsRel float64) (Result, error) {
	return (&staticIndex{inner: ix.inner}).QueryRel(Range{Lo: lq, Hi: uq}, epsRel)
}

// Stats returns structural information about the index.
func (ix *StaticIndex) Stats() Stats { return stats1D(ix.inner) }

// MarshalBinary serialises the compact index structure (without exact
// fallbacks — see the package documentation).
func (ix *StaticIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

// UnmarshalBinary loads a serialised index.
//
// Deprecated: use polyfit.Open, which sniffs the blob kind and restores any
// index variant behind the Index interface.
func (ix *StaticIndex) UnmarshalBinary(data []byte) error {
	inner := &core.Index1D{}
	if err := inner.UnmarshalBinary(data); err != nil {
		return err
	}
	ix.inner = inner
	return nil
}
