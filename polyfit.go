package polyfit

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Agg identifies the aggregate function of an index.
type Agg = core.Agg

// Aggregate functions supported by PolyFit (Definition 1 of the paper).
const (
	Count = core.Count
	Sum   = core.Sum
	Min   = core.Min
	Max   = core.Max
)

// Errors surfaced by the public API.
var (
	// ErrNoFallback is returned by relative-error queries when the index
	// carries no exact fallback (built with DisableFallback, or loaded from
	// a serialised blob).
	ErrNoFallback = core.ErrNoFallback
	// ErrDuplicateKey is returned by DynamicIndex.Insert when the key is
	// already present (in the base index or the delta buffer).
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrBadOptions reports an invalid Options combination.
	ErrBadOptions = errors.New("polyfit: either EpsAbs or Delta must be positive")
)

// Options configures index construction.
type Options struct {
	// EpsAbs is the absolute error guarantee εabs. The build derives the
	// fitting tolerance δ per the paper's lemmas (εabs/2 for COUNT/SUM,
	// εabs for MIN/MAX, εabs/4 for two-key COUNT).
	EpsAbs float64
	// Delta overrides the derived fitting tolerance δ directly (used when
	// the index mainly serves relative-error queries, e.g. the paper uses
	// δ=50 for 1D and δ=250 for 2D in Problem 2). Takes precedence over
	// EpsAbs when positive.
	Delta float64
	// Degree of the fitted polynomials (default 2 — the paper's PolyFit-2).
	Degree int
	// DisableFallback skips building the exact structures used by QueryRel.
	DisableFallback bool
	// Parallelism is the number of goroutines used by index construction
	// (greedy segmentation, and merge-rebuilds of dynamic indexes); values
	// ≤ 1 build serially. The produced index is identical for every worker
	// count, so this is purely a build-latency knob.
	Parallelism int
}

func (o Options) delta(agg Agg) (float64, error) {
	if o.Delta > 0 {
		return o.Delta, nil
	}
	if o.EpsAbs > 0 {
		return core.DeltaForAbs(agg, o.EpsAbs), nil
	}
	return 0, ErrBadOptions
}

// Index is a PolyFit index over one key.
type Index struct {
	inner *core.Index1D
}

// NewCountIndex builds an index answering approximate range COUNT queries
// over the given keys (sorted, strictly increasing).
func NewCountIndex(keys []float64, opt Options) (*Index, error) {
	d, err := opt.delta(Count)
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildCount(keys, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// NewSumIndex builds an index answering approximate range SUM queries over
// (key, measure) records. Measures must be non-negative for the
// relative-error guarantee.
func NewSumIndex(keys, measures []float64, opt Options) (*Index, error) {
	d, err := opt.delta(Sum)
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildSum(keys, measures, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// NewMaxIndex builds an index answering approximate range MAX queries.
func NewMaxIndex(keys, measures []float64, opt Options) (*Index, error) {
	d, err := opt.delta(Max)
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildMax(keys, measures, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// NewMinIndex builds an index answering approximate range MIN queries.
func NewMinIndex(keys, measures []float64, opt Options) (*Index, error) {
	d, err := opt.delta(Min)
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildMin(keys, measures, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// Query answers the approximate range aggregate over [lq, uq] (COUNT/SUM use
// the half-open (lq, uq] semantics of the paper's Equation 5). For MIN/MAX
// an empty range returns found=false; COUNT/SUM return 0 with found=true.
func (ix *Index) Query(lq, uq float64) (value float64, found bool, err error) {
	switch ix.inner.Aggregate() {
	case Count, Sum:
		v, err := ix.inner.RangeSum(lq, uq)
		if err != nil {
			return 0, false, err
		}
		return v, true, nil
	default:
		return ix.inner.RangeExtremum(lq, uq)
	}
}

// Range is one query interval of a batched request. COUNT/SUM indexes use
// the half-open (Lo, Hi] semantics, MIN/MAX the closed [Lo, Hi].
type Range = core.Range

// BatchResult is the answer to one Range of a batch; Found mirrors Query's
// found result.
type BatchResult = core.BatchResult

// QueryBatch answers many ranges in one call, equivalent to calling Query
// per range but with the per-query segment binary search amortised across
// the sorted batch — the hot path of the serving layer's batched endpoint.
// Results are returned in input order.
func (ix *Index) QueryBatch(ranges []Range) ([]BatchResult, error) {
	return ix.inner.QueryBatch(ranges)
}

// Result carries a certified query answer.
type Result struct {
	Value float64
	// Exact reports whether the exact fallback produced the value (the
	// approximate gate of Lemma 3/5 failed).
	Exact bool
	// Found is false when a MIN/MAX range contains no records.
	Found bool
	// Bound is the certified absolute error bound on Value, when the
	// answering path computes one: 0 for exact answers, 2δ (COUNT/SUM) or δ
	// (MIN/MAX) for plain approximate answers, and the additively composed
	// 2δ·m for a sharded COUNT/SUM range touching m shards (sharded MIN/MAX
	// stays δ — extremum error does not accumulate across shards).
	Bound float64
}

// QueryRel answers within the relative error epsRel (Problem 2). The result
// is certified: either the approximate gate passed, or the exact structure
// answered.
func (ix *Index) QueryRel(lq, uq, epsRel float64) (Result, error) {
	switch ix.inner.Aggregate() {
	case Count, Sum:
		v, exact, err := ix.inner.RangeSumRel(lq, uq, epsRel)
		return Result{Value: v, Exact: exact, Found: true, Bound: approxBound(ix.inner.Aggregate(), ix.inner.Delta(), exact)}, err
	default:
		v, exact, ok, err := ix.inner.RangeExtremumRel(lq, uq, epsRel)
		return Result{Value: v, Exact: exact, Found: ok, Bound: approxBound(ix.inner.Aggregate(), ix.inner.Delta(), exact)}, err
	}
}

// approxBound is the absolute error bound of an unsharded approximate
// answer: 2δ for COUNT/SUM (Lemma 2), δ for MIN/MAX (Lemma 4), 0 when the
// exact fallback answered.
func approxBound(agg Agg, delta float64, exact bool) float64 {
	if exact {
		return 0
	}
	if agg == Count || agg == Sum {
		return 2 * delta
	}
	return delta
}

// Stats summarises an index.
type Stats struct {
	Aggregate     Agg
	Records       int
	Segments      int
	Degree        int
	Delta         float64
	IndexBytes    int // the compact PolyFit structure (plus delta buffer, if dynamic)
	RootBytes     int // learned-root locate table, included in IndexBytes
	FallbackBytes int // exact structures for QueryRel (0 if disabled)
	BufferLen     int // not-yet-merged inserts (always 0 for static indexes)
	Shards        int // range partitions (0 for unsharded indexes)
	KeyLo, KeyHi  float64
}

// Stats returns structural information about the index.
func (ix *Index) Stats() Stats {
	lo, hi := ix.inner.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     ix.inner.Aggregate(),
		Records:       ix.inner.Len(),
		Segments:      ix.inner.NumSegments(),
		Degree:        ix.inner.Degree(),
		Delta:         ix.inner.Delta(),
		IndexBytes:    ix.inner.SizeBytes(),
		RootBytes:     ix.inner.RootSizeBytes(),
		FallbackBytes: ix.inner.FallbackSizeBytes(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%v index: %d records → %d deg-%d segments (δ=%g, %dB index, %dB fallback)",
		s.Aggregate, s.Records, s.Segments, s.Degree, s.Delta, s.IndexBytes, s.FallbackBytes)
}

// BlobKind identifies which index type produced a serialised blob.
type BlobKind = core.BlobKind

// Blob kinds distinguishable from a serialised blob's magic bytes.
const (
	BlobUnknown        = core.BlobUnknown
	BlobStatic1D       = core.BlobStatic1D       // Index.MarshalBinary
	BlobStatic2D       = core.BlobStatic2D       // Index2D.MarshalBinary
	BlobDynamic        = core.BlobDynamic        // DynamicIndex.MarshalBinary
	BlobShardedStatic  = core.BlobShardedStatic  // ShardedIndex.MarshalBinary
	BlobShardedDynamic = core.BlobShardedDynamic // ShardedDynamic.MarshalBinary
)

// DetectBlob sniffs the magic bytes of a serialised index so callers can
// dispatch to the matching Unmarshal without trial decoding.
func DetectBlob(data []byte) BlobKind { return core.DetectBlob(data) }

// MarshalBinary serialises the compact index structure (without exact
// fallbacks — see the package documentation).
func (ix *Index) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

// UnmarshalBinary loads a serialised index.
func (ix *Index) UnmarshalBinary(data []byte) error {
	inner := &core.Index1D{}
	if err := inner.UnmarshalBinary(data); err != nil {
		return err
	}
	ix.inner = inner
	return nil
}
