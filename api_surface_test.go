package polyfit_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// -update regenerates testdata/api.txt from the current sources:
//
//	go test -run TestAPISurface ./ -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/api.txt from the current exported surface")

// TestAPISurface snapshots every exported identifier of the root package —
// funcs, methods on exported types, types (with exported struct fields and
// interface methods), consts and vars — and fails when the surface drifts
// from testdata/api.txt. This is the accidental-breakage guard for the
// deprecated v1 wrappers: the redesign promises existing callers keep
// compiling, so any change to the exported surface must be deliberate
// (reviewed via an update to the golden file), never a side effect.
func TestAPISurface(t *testing.T) {
	got := exportedSurface(t)
	golden := filepath.Join("testdata", "api.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden API surface (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface drifted from %s.\n"+
			"If the change is intentional, rerun with -update and review the diff.\n%s",
			golden, surfaceDiff(string(want), got))
	}
}

// surfaceDiff renders a line-level ± diff (order-insensitive per side).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	return b.String()
}

// exportedSurface parses the package in the current directory and renders
// one sorted line per exported identifier.
func exportedSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["polyfit"]
	if !ok {
		t.Fatalf("package polyfit not found (got %v)", pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if line, ok := funcLine(fset, d); ok {
					lines = append(lines, line)
				}
			case *ast.GenDecl:
				lines = append(lines, genLines(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func funcLine(fset *token.FileSet, d *ast.FuncDecl) (string, bool) {
	if !d.Name.IsExported() {
		return "", false
	}
	recv := ""
	if d.Recv != nil {
		name, ptr := receiverType(d.Recv.List[0].Type)
		if !ast.IsExported(name) {
			return "", false
		}
		if ptr {
			name = "*" + name
		}
		recv = "(" + name + ") "
	}
	return "func " + recv + d.Name.Name + strings.TrimPrefix(render(fset, d.Type), "func"), true
}

func receiverType(expr ast.Expr) (name string, ptr bool) {
	if star, ok := expr.(*ast.StarExpr); ok {
		n, _ := receiverType(star.X)
		return n, true
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name, false
	}
	return "", false
}

func genLines(fset *token.FileSet, d *ast.GenDecl) []string {
	var lines []string
	kw := d.Tok.String() // const, var, type
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			assign := " "
			if sp.Assign.IsValid() {
				assign = " = " // alias declaration
			}
			lines = append(lines, "type "+sp.Name.Name+assign+renderTypeExpr(fset, sp.Type))
		case *ast.ValueSpec:
			for _, n := range sp.Names {
				if !n.IsExported() {
					continue
				}
				line := kw + " " + n.Name
				if sp.Type != nil {
					line += " " + render(fset, sp.Type)
				}
				lines = append(lines, line)
			}
		}
	}
	return lines
}

// renderTypeExpr flattens a type declaration onto one line. Struct types
// list their exported field names and types; interface types list their
// method signatures and embeds; everything else prints verbatim.
func renderTypeExpr(fset *token.FileSet, expr ast.Expr) string {
	switch tt := expr.(type) {
	case *ast.StructType:
		var fields []string
		for _, f := range tt.Fields.List {
			typ := render(fset, f.Type)
			if len(f.Names) == 0 {
				fields = append(fields, typ) // embedded
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					fields = append(fields, n.Name+" "+typ)
				}
			}
		}
		return "struct { " + strings.Join(fields, "; ") + " }"
	case *ast.InterfaceType:
		var methods []string
		for _, m := range tt.Methods.List {
			if len(m.Names) == 0 {
				methods = append(methods, render(fset, m.Type)) // embedded interface
				continue
			}
			sig := strings.TrimPrefix(render(fset, m.Type), "func")
			for _, n := range m.Names {
				methods = append(methods, n.Name+sig)
			}
		}
		sort.Strings(methods)
		return "interface { " + strings.Join(methods, "; ") + " }"
	default:
		return render(fset, expr)
	}
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
