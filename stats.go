package polyfit

import (
	"fmt"

	"repro/internal/core"
)

// Stats summarises an index.
type Stats struct {
	Aggregate     Agg
	Records       int
	Segments      int
	Degree        int
	Delta         float64
	IndexBytes    int    // the compact PolyFit structure (plus delta buffer, if dynamic)
	CoeffBytes    int    // coefficient lanes alone, included in IndexBytes
	RootBytes     int    // learned-root locate tables, included in IndexBytes
	FallbackBytes int    // exact structures for QueryRel (0 if disabled)
	Encoding      string // coefficient encoding: "raw", "float32", "packed", or "mixed"
	BufferLen     int    // not-yet-merged inserts (always 0 for static indexes)
	Shards        int    // range partitions (0 for unsharded indexes)
	KeyLo, KeyHi  float64
}

func (s Stats) String() string {
	return fmt.Sprintf("%v index: %d records → %d deg-%d segments (δ=%g, %dB index, %dB fallback)",
		s.Aggregate, s.Records, s.Segments, s.Degree, s.Delta, s.IndexBytes, s.FallbackBytes)
}

// The helpers below are the single source of Stats for each layout; both the
// Index interface implementations and the deprecated v1 types call them.

func stats1D(ix *core.Index1D) Stats {
	lo, hi := ix.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     ix.Aggregate(),
		Records:       ix.Len(),
		Segments:      ix.NumSegments(),
		Degree:        ix.Degree(),
		Delta:         ix.Delta(),
		IndexBytes:    ix.SizeBytes(),
		CoeffBytes:    ix.CoeffSizeBytes(),
		RootBytes:     ix.RootSizeBytes(),
		FallbackBytes: ix.FallbackSizeBytes(),
		Encoding:      ix.Encoding().String(),
	}
}

// statsDynamic reports the current structure from one consistent snapshot.
// IndexBytes includes the full delta-buffer footprint (keys, measures, and
// prefix aggregates); BufferLen counts the not-yet-merged inserts.
func statsDynamic(d *core.Dynamic1D) Stats {
	v := d.View()
	lo, hi := d.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     v.Base.Aggregate(),
		Records:       v.Records,
		Segments:      v.Base.NumSegments(),
		Degree:        v.Base.Degree(),
		Delta:         v.Base.Delta(),
		IndexBytes:    v.Base.SizeBytes() + v.BufferBytes,
		CoeffBytes:    v.Base.CoeffSizeBytes(),
		RootBytes:     v.Base.RootSizeBytes(),
		FallbackBytes: v.Base.FallbackSizeBytes(),
		Encoding:      v.Base.Encoding().String(),
		BufferLen:     v.BufferLen,
	}
}

func statsSharded(s *core.Sharded1D) Stats {
	lo, hi := s.KeyRange()
	out := Stats{
		Aggregate:     s.Aggregate(),
		Records:       s.Len(),
		Segments:      s.NumSegments(),
		Degree:        s.Shard(0).Degree(),
		Delta:         s.Delta(),
		IndexBytes:    s.SizeBytes(),
		RootBytes:     s.RootSizeBytes(),
		FallbackBytes: s.FallbackSizeBytes(),
		Shards:        s.NumShards(),
		KeyLo:         lo,
		KeyHi:         hi,
	}
	for i := 0; i < s.NumShards(); i++ {
		out.CoeffBytes += s.Shard(i).CoeffSizeBytes()
	}
	out.Encoding = mergedEncoding(shardStatsStatic(s))
	return out
}

// mergedEncoding reports the container-level coefficient encoding: the
// shards' encoding when uniform, "mixed" when the per-shard choice diverged
// (each shard certifies independently, so heterogeneity is expected on
// non-uniform data).
func mergedEncoding(shards []Stats) string {
	enc := shards[0].Encoding
	for _, sh := range shards[1:] {
		if sh.Encoding != enc {
			return "mixed"
		}
	}
	return enc
}

func shardStatsStatic(s *core.Sharded1D) []Stats {
	out := make([]Stats, s.NumShards())
	for i := range out {
		out[i] = stats1D(s.Shard(i))
	}
	return out
}

// statsShardedDynamic sums per-shard snapshots; each row is internally
// consistent even under concurrent inserts.
func statsShardedDynamic(s *core.ShardedDynamic1D) Stats {
	shards := shardStatsDynamic(s)
	out := Stats{
		Aggregate: s.Aggregate(),
		Delta:     s.Delta(),
		Degree:    shards[0].Degree,
		Shards:    len(shards),
		KeyLo:     shards[0].KeyLo,
		KeyHi:     shards[len(shards)-1].KeyHi,
	}
	for _, sh := range shards {
		out.Records += sh.Records
		out.Segments += sh.Segments
		out.IndexBytes += sh.IndexBytes
		out.CoeffBytes += sh.CoeffBytes
		out.RootBytes += sh.RootBytes
		out.FallbackBytes += sh.FallbackBytes
		out.BufferLen += sh.BufferLen
	}
	out.Encoding = mergedEncoding(shards)
	return out
}

func shardStatsDynamic(s *core.ShardedDynamic1D) []Stats {
	out := make([]Stats, s.NumShards())
	for i := range out {
		out[i] = statsDynamic(s.Shard(i))
	}
	return out
}
