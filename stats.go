package polyfit

import (
	"fmt"

	"repro/internal/core"
)

// Stats summarises an index.
type Stats struct {
	Aggregate     Agg
	Records       int
	Segments      int
	Degree        int
	Delta         float64
	IndexBytes    int // the compact PolyFit structure (plus delta buffer, if dynamic)
	RootBytes     int // learned-root locate table, included in IndexBytes
	FallbackBytes int // exact structures for QueryRel (0 if disabled)
	BufferLen     int // not-yet-merged inserts (always 0 for static indexes)
	Shards        int // range partitions (0 for unsharded indexes)
	KeyLo, KeyHi  float64
}

func (s Stats) String() string {
	return fmt.Sprintf("%v index: %d records → %d deg-%d segments (δ=%g, %dB index, %dB fallback)",
		s.Aggregate, s.Records, s.Segments, s.Degree, s.Delta, s.IndexBytes, s.FallbackBytes)
}

// The helpers below are the single source of Stats for each layout; both the
// Index interface implementations and the deprecated v1 types call them.

func stats1D(ix *core.Index1D) Stats {
	lo, hi := ix.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     ix.Aggregate(),
		Records:       ix.Len(),
		Segments:      ix.NumSegments(),
		Degree:        ix.Degree(),
		Delta:         ix.Delta(),
		IndexBytes:    ix.SizeBytes(),
		RootBytes:     ix.RootSizeBytes(),
		FallbackBytes: ix.FallbackSizeBytes(),
	}
}

// statsDynamic reports the current structure from one consistent snapshot.
// IndexBytes includes the full delta-buffer footprint (keys, measures, and
// prefix aggregates); BufferLen counts the not-yet-merged inserts.
func statsDynamic(d *core.Dynamic1D) Stats {
	v := d.View()
	lo, hi := d.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     v.Base.Aggregate(),
		Records:       v.Records,
		Segments:      v.Base.NumSegments(),
		Degree:        v.Base.Degree(),
		Delta:         v.Base.Delta(),
		IndexBytes:    v.Base.SizeBytes() + v.BufferBytes,
		RootBytes:     v.Base.RootSizeBytes(),
		FallbackBytes: v.Base.FallbackSizeBytes(),
		BufferLen:     v.BufferLen,
	}
}

func statsSharded(s *core.Sharded1D) Stats {
	lo, hi := s.KeyRange()
	return Stats{
		Aggregate:     s.Aggregate(),
		Records:       s.Len(),
		Segments:      s.NumSegments(),
		Degree:        s.Shard(0).Degree(),
		Delta:         s.Delta(),
		IndexBytes:    s.SizeBytes(),
		RootBytes:     s.RootSizeBytes(),
		FallbackBytes: s.FallbackSizeBytes(),
		Shards:        s.NumShards(),
		KeyLo:         lo,
		KeyHi:         hi,
	}
}

func shardStatsStatic(s *core.Sharded1D) []Stats {
	out := make([]Stats, s.NumShards())
	for i := range out {
		out[i] = stats1D(s.Shard(i))
	}
	return out
}

// statsShardedDynamic sums per-shard snapshots; each row is internally
// consistent even under concurrent inserts.
func statsShardedDynamic(s *core.ShardedDynamic1D) Stats {
	shards := shardStatsDynamic(s)
	out := Stats{
		Aggregate: s.Aggregate(),
		Delta:     s.Delta(),
		Degree:    shards[0].Degree,
		Shards:    len(shards),
		KeyLo:     shards[0].KeyLo,
		KeyHi:     shards[len(shards)-1].KeyHi,
	}
	for _, sh := range shards {
		out.Records += sh.Records
		out.Segments += sh.Segments
		out.IndexBytes += sh.IndexBytes
		out.RootBytes += sh.RootBytes
		out.FallbackBytes += sh.FallbackBytes
		out.BufferLen += sh.BufferLen
	}
	return out
}

func shardStatsDynamic(s *core.ShardedDynamic1D) []Stats {
	out := make([]Stats, s.NumShards())
	for i := range out {
		out[i] = statsDynamic(s.Shard(i))
	}
	return out
}
