// Tweet density: 1D COUNT queries over tweet latitudes — the paper's TWEET
// workload. Renders an ASCII latitude histogram from the index alone (no
// scan of the raw data) and compares the time/accuracy trade-off across
// error guarantees, all through the unified polyfit.New builder.
package main

import (
	"fmt"
	"math"
	"strings"
	"time"

	polyfit "repro"
	"repro/internal/data"
)

func main() {
	keys := data.GenTweet(500_000, 3)
	fmt.Printf("tweet latitudes: %d records in [%.1f, %.1f]\n\n", len(keys), keys[0], keys[len(keys)-1])

	ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys}, polyfit.WithMaxError(200))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n\n", ix.Stats())

	// Latitude density profile straight from the index: 30 bands of 4.5°,
	// answered in one batched call through the sorted-sweep hot path.
	fmt.Println("latitude density (each row is one 4.5° band, bars from index estimates):")
	const bands = 30
	lo, hi := -60.0, 75.0
	width := (hi - lo) / bands
	ranges := make([]polyfit.Range, bands)
	for b := 0; b < bands; b++ {
		ranges[b] = polyfit.Range{Lo: lo + float64(b)*width, Hi: lo + float64(b+1)*width}
	}
	results, err := ix.QueryBatch(ranges)
	if err != nil {
		panic(err)
	}
	maxCount := 0.0
	for _, r := range results {
		if r.Value > maxCount {
			maxCount = r.Value
		}
	}
	for b := bands - 1; b >= 0; b-- {
		bar := int(50 * results[b].Value / maxCount)
		fmt.Printf("  %+6.1f° %s %0.f\n", lo+(float64(b)+0.5)*width, strings.Repeat("#", bar), results[b].Value)
	}

	// Error-guarantee ladder: tighter εabs → more segments → same speed class.
	fmt.Println("\nguarantee ladder (εabs → index size and per-query latency):")
	qs := data.RangeQueriesFromKeys(keys, 1000, 4)
	for _, eps := range []float64{1000, 200, 50} {
		ladder, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys},
			polyfit.WithMaxError(eps), polyfit.WithFallback(false))
		if err != nil {
			panic(err)
		}
		st := ladder.Stats()
		start := time.Now()
		const reps = 50
		for r := 0; r < reps; r++ {
			for _, q := range qs {
				ladder.Query(polyfit.Range{Lo: q.L, Hi: q.U}) //nolint:errcheck
			}
		}
		per := time.Since(start) / time.Duration(reps*len(qs))
		worst := 0.0
		for _, q := range qs[:200] {
			a, _ := ladder.Query(polyfit.Range{Lo: q.L, Hi: q.U})
			if e := math.Abs(a.Value - brute(keys, q.L, q.U)); e > worst {
				worst = e
			}
		}
		fmt.Printf("  εabs=%5.0f: %5d segments, %5.1f KB, %v/query, worst observed error %.0f\n",
			eps, st.Segments, float64(st.IndexBytes)/1024, per, worst)
	}
}

func brute(keys []float64, l, u float64) float64 {
	c := 0.0
	for _, k := range keys {
		if k > l && k <= u {
			c++
		}
	}
	return c
}
