// Serving quickstart: run the PolyFit query service in-process, build a
// dynamic COUNT index over HTTP, stream inserts into it while querying,
// and answer a 512-range batched request in one round trip.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/server"
)

func main() {
	// 1. The service (in-process here; `polyfit-serve` runs the same
	// handler as a standalone binary).
	ts := httptest.NewServer(server.New())
	defer ts.Close()
	fmt.Printf("polyfit service at %s\n", ts.URL)

	// 2. Build a dynamic COUNT index over 200k synthetic latitudes with an
	// absolute error guarantee of ±100.
	keys := data.GenTweet(200_000, 1)
	st := must(postJSON[server.StatsResponse](ts.URL+"/v1/indexes", server.CreateRequest{
		Name: "tweet", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}))
	fmt.Printf("built %q: %d records -> %d segments (%d KB)\n",
		st.Name, st.Records, st.Segments, st.IndexBytes/1024)

	// 3. Queries and inserts from concurrent clients: queries read
	// lock-free snapshots, so they never block behind inserts or the
	// merge-rebuilds they trigger.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 20; i++ {
			recs := make([]server.Record, 256)
			for j := range recs {
				recs[j] = server.Record{Key: 1000 + rng.Float64()*1e6}
			}
			must(postJSON[server.InsertResponse](ts.URL+"/v1/indexes/tweet/insert",
				server.InsertRequest{Records: recs}))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			must(postJSON[server.QueryResponse](ts.URL+"/v1/indexes/tweet/query",
				server.QueryRequest{Lo: 30, Hi: 50}))
		}
	}()
	wg.Wait()
	q := must(postJSON[server.QueryResponse](ts.URL+"/v1/indexes/tweet/query",
		server.QueryRequest{Lo: 30, Hi: 50}))
	// Every query response carries the certified absolute error bound,
	// whatever the index layout (here: ±100, the build-time guarantee).
	fmt.Printf("COUNT (30, 50] = %.0f ± %.0f (certified) after 5120 concurrent inserts\n", q.Value, q.Bound)

	// 4. A batched request: 512 ranges answered in one round trip through
	// the sorted-sweep hot path.
	rng := rand.New(rand.NewSource(3))
	batch := server.BatchRequest{Ranges: make([]server.RangeJSON, 512)}
	for i := range batch.Ranges {
		a, b := -90+rng.Float64()*180, -90+rng.Float64()*180
		if a > b {
			a, b = b, a
		}
		batch.Ranges[i] = server.RangeJSON{Lo: a, Hi: b}
	}
	start := time.Now()
	res := must(postJSON[server.BatchResponse](ts.URL+"/v1/indexes/tweet/batch", batch))
	fmt.Printf("batched %d ranges in %v (round trip incl. JSON)\n",
		len(res.Results), time.Since(start).Round(time.Microsecond))

	// 5. Final stats.
	resp, err := http.Get(ts.URL + "/v1/indexes/tweet")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var final server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		panic(err)
	}
	fmt.Printf("final: %d records, buffer %d, index %d KB\n",
		final.Records, final.BufferLen, final.IndexBytes/1024)
}

func postJSON[T any](url string, body any) (T, error) {
	var out T
	raw, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		return out, fmt.Errorf("%s: %s (%d)", url, e.Error, resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
