// Quickstart: build a PolyFit COUNT index over a few hundred thousand keys
// with the unified builder, query it in nanoseconds, read the certified
// error bound off every answer, and verify the absolute guarantee against
// brute force.
package main

import (
	"fmt"
	"math"
	"time"

	polyfit "repro"
	"repro/internal/data"
)

func main() {
	// 1. A synthetic latitude dataset (stand-in for the paper's TWEET data).
	keys := data.GenTweet(200_000, 1)
	fmt.Printf("dataset: %d sorted keys in [%.2f, %.2f]\n",
		len(keys), keys[0], keys[len(keys)-1])

	// 2. One builder for every layout: polyfit.New constructs the index from
	// a Spec (what to index) plus options (how). Swapping in
	// polyfit.WithDynamic() or polyfit.WithShards(8) changes the layout,
	// not the API.
	start := time.Now()
	ix, err := polyfit.New(
		polyfit.Spec{Agg: polyfit.Count, Keys: keys},
		polyfit.WithMaxError(100), // absolute guarantee ±100
	)
	if err != nil {
		panic(err)
	}
	st := ix.Stats()
	fmt.Printf("built in %v: %s\n", time.Since(start).Round(time.Millisecond), st)
	fmt.Printf("compression: %d keys (%d KB raw) -> %d polynomial segments (%d KB)\n\n",
		st.Records, 8*st.Records/1024, st.Segments, st.IndexBytes/1024)

	// 3. Query: how many tweets between latitudes 30 and 50? Every answer
	// carries its certified absolute error bound.
	res, _ := ix.Query(polyfit.Range{Lo: 30, Hi: 50})
	exact := bruteCount(keys, 30, 50)
	fmt.Printf("COUNT (30, 50]   approx=%.0f ± %.0f (certified)  exact=%.0f  error=%.0f\n",
		res.Value, res.Bound, exact, math.Abs(res.Value-exact))

	// 4. Relative-error query: certified within 1%, exact fallback if the
	// approximate gate cannot certify it (then Bound is 0).
	rel, _ := ix.QueryRel(polyfit.Range{Lo: 30, Hi: 50}, 0.01)
	fmt.Printf("COUNT (30, 50]   within 1%%: %.0f (exact fallback used: %v, bound %g)\n\n",
		rel.Value, rel.Exact, rel.Bound)

	// 5. Round-trip: any variant marshals to a blob that polyfit.Open
	// restores behind the same Index interface.
	blob, _ := ix.MarshalBinary()
	loaded, err := polyfit.Open(blob)
	if err != nil {
		panic(err)
	}
	lres, _ := loaded.Query(polyfit.Range{Lo: 30, Hi: 50})
	fmt.Printf("round-trip through %d-byte blob: same answer: %v\n\n", len(blob), lres.Value == res.Value)

	// 6. Throughput check on the paper's workload.
	qs := data.RangeQueriesFromKeys(keys, 1000, 2)
	start = time.Now()
	const reps = 200
	for r := 0; r < reps; r++ {
		for _, q := range qs {
			ix.Query(polyfit.Range{Lo: q.L, Hi: q.U}) //nolint:errcheck
		}
	}
	perQuery := time.Since(start) / (reps * time.Duration(len(qs)))
	fmt.Printf("throughput: %v per query over %d random range queries\n", perQuery, len(qs))

	// 7. The guarantee, verified over the whole workload: every observed
	// error must stay within the per-answer certified bound.
	worst, worstBound := 0.0, 0.0
	for _, q := range qs {
		r, _ := ix.Query(polyfit.Range{Lo: q.L, Hi: q.U})
		if e := math.Abs(r.Value - bruteCount(keys, q.L, q.U)); e > worst {
			worst, worstBound = e, r.Bound
		}
	}
	fmt.Printf("worst observed error over %d queries: %.1f (certified bound %.0f)\n",
		len(qs), worst, worstBound)
}

func bruteCount(keys []float64, l, u float64) float64 {
	c := 0.0
	for _, k := range keys {
		if k > l && k <= u {
			c++
		}
	}
	return c
}
