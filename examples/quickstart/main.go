// Quickstart: build a PolyFit COUNT index over a million keys, query it in
// nanoseconds, and verify the absolute error guarantee against brute force.
package main

import (
	"fmt"
	"math"
	"time"

	polyfit "repro"
	"repro/internal/data"
)

func main() {
	// 1. A synthetic latitude dataset (stand-in for the paper's TWEET data).
	keys := data.GenTweet(200_000, 1)
	fmt.Printf("dataset: %d sorted keys in [%.2f, %.2f]\n",
		len(keys), keys[0], keys[len(keys)-1])

	// 2. Build the index with an absolute error guarantee of ±100.
	start := time.Now()
	ix, err := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: 100})
	if err != nil {
		panic(err)
	}
	st := ix.Stats()
	fmt.Printf("built in %v: %s\n", time.Since(start).Round(time.Millisecond), st)
	fmt.Printf("compression: %d keys (%d KB raw) -> %d polynomial segments (%d KB)\n\n",
		st.Records, 8*st.Records/1024, st.Segments, st.IndexBytes/1024)

	// 3. Query: how many tweets between latitudes 30 and 50?
	approx, _, _ := ix.Query(30, 50)
	exact := bruteCount(keys, 30, 50)
	fmt.Printf("COUNT (30, 50]   approx=%.0f  exact=%.0f  error=%.0f (guarantee ±100)\n",
		approx, exact, math.Abs(approx-exact))

	// 4. Relative-error query: certified within 1%, exact fallback if the
	// approximate gate cannot certify it.
	res, _ := ix.QueryRel(30, 50, 0.01)
	fmt.Printf("COUNT (30, 50]   within 1%%: %.0f (exact fallback used: %v)\n\n", res.Value, res.Exact)

	// 5. Throughput check on the paper's workload.
	qs := data.RangeQueriesFromKeys(keys, 1000, 2)
	start = time.Now()
	const reps = 200
	for r := 0; r < reps; r++ {
		for _, q := range qs {
			ix.Query(q.L, q.U) //nolint:errcheck
		}
	}
	perQuery := time.Since(start) / (reps * time.Duration(len(qs)))
	fmt.Printf("throughput: %v per query over %d random range queries\n", perQuery, len(qs))

	// 6. The guarantee, verified over the whole workload.
	worst := 0.0
	for _, q := range qs {
		a, _, _ := ix.Query(q.L, q.U)
		if e := math.Abs(a - bruteCount(keys, q.L, q.U)); e > worst {
			worst = e
		}
	}
	fmt.Printf("worst observed error over %d queries: %.1f (εabs = 100)\n", len(qs), worst)
}

func bruteCount(keys []float64, l, u float64) float64 {
	c := 0.0
	for _, k := range keys {
		if k > l && k <= u {
			c++
		}
	}
	return c
}
