// Stock analysis: the paper's motivating example (Section I) — range MAX
// and range SUM queries over a stock-index tick series, plus the Figure 5
// fitting comparison showing why polynomials beat linear models on DFmax.
// All three indexes come from the one polyfit.New builder; only the Spec
// changes.
package main

import (
	"fmt"
	"math"
	"time"

	polyfit "repro"
	"repro/internal/data"
	"repro/internal/minimax"
)

func main() {
	keys, measures := data.GenHKI(300_000, 7)
	fmt.Printf("HKI-like tick series: %d ticks, index value range [%.0f, %.0f]\n\n",
		len(keys), minOf(measures), maxOf(measures))

	// --- Figure 5: why polynomial fitting? -------------------------------
	// Fit a ~90-sample daily window of DFmax with a linear model vs a
	// degree-4 polynomial.
	window := 90
	stride := len(keys) / window
	var wx, wy []float64
	for i := 0; i < len(keys) && len(wx) < window; i += stride {
		wx = append(wx, keys[i])
		wy = append(wy, measures[i])
	}
	lin, _ := minimax.FitPoly(wx, wy, 1)
	quart, _ := minimax.FitPoly(wx, wy, 4)
	fmt.Println("Figure 5 reproduction — max fitting error on a 90-day window:")
	fmt.Printf("  best linear segment: %8.1f\n", lin.MaxErr)
	fmt.Printf("  degree-4 polynomial: %8.1f  (%.1fx better)\n\n", quart.MaxErr, lin.MaxErr/quart.MaxErr)

	// --- Range MAX queries ("peak index value in a period") --------------
	mx, err := polyfit.New(polyfit.Spec{Agg: polyfit.Max, Keys: keys, Measures: measures},
		polyfit.WithMaxError(100))
	if err != nil {
		panic(err)
	}
	fmt.Printf("MAX index: %s\n", mx.Stats())
	lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
	start := time.Now()
	peak, _ := mx.Query(polyfit.Range{Lo: lo, Hi: hi})
	lat := time.Since(start)
	fmt.Printf("  peak over the middle half of the series: %.0f ± %.0f (found=%v) in %v\n",
		peak.Value, peak.Bound, peak.Found, lat)
	exactPeak := bruteMax(keys, measures, lo, hi)
	fmt.Printf("  exact peak: %.0f — error %.1f (certified bound %g)\n\n",
		exactPeak, math.Abs(peak.Value-exactPeak), peak.Bound)

	// --- Range SUM queries ("average index value in a period") -----------
	sum, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures},
		polyfit.WithMaxError(1e6))
	if err != nil {
		panic(err)
	}
	fmt.Printf("SUM index: %s\n", sum.Stats())
	v, _ := sum.Query(polyfit.Range{Lo: lo, Hi: hi})
	cnt, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys}, polyfit.WithMaxError(100))
	if err != nil {
		panic(err)
	}
	c, _ := cnt.Query(polyfit.Range{Lo: lo, Hi: hi})
	fmt.Printf("  average index value over the period: %.1f (from SUM/COUNT of two PolyFit indexes)\n", v.Value/c.Value)

	// --- Relative-error mode ----------------------------------------------
	res, _ := mx.QueryRel(polyfit.Range{Lo: lo, Hi: hi}, 0.01)
	fmt.Printf("  peak within 1%%: %.0f (exact fallback used: %v, bound %g)\n", res.Value, res.Exact, res.Bound)
}

func bruteMax(keys, measures []float64, l, u float64) float64 {
	best := math.Inf(-1)
	for i, k := range keys {
		if k >= l && k <= u && measures[i] > best {
			best = measures[i]
		}
	}
	return best
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
