// Geo count: two-key COUNT queries (Section VI) over OSM-like coordinates.
// Builds the quadtree-of-surfaces index, renders a world heat grid from the
// index alone, and verifies Lemma 6's absolute guarantee on uniform
// rectangles against the exact aR-tree answer.
package main

import (
	"fmt"
	"math"
	"time"

	polyfit "repro"
	"repro/internal/data"
)

func main() {
	xs, ys := data.GenOSM(300_000, 5)
	fmt.Printf("OSM-like points: %d over lon [-180,180] x lat [-90,90]\n", len(xs))

	start := time.Now()
	ix, err := polyfit.NewCount2DIndex(xs, ys, polyfit.Options2D{EpsAbs: 1000})
	if err != nil {
		panic(err)
	}
	st := ix.Stats()
	fmt.Printf("built in %v: %d leaves, depth %d, %d KB (+%d KB exact fallback)\n\n",
		time.Since(start).Round(time.Millisecond), st.Leaves, st.Depth,
		st.IndexBytes/1024, st.FallbackBytes/1024)

	// World heat grid straight from the index (18 x 9 cells of 20°x20°).
	fmt.Println("world density grid (index estimates, '.'<1k '+'<5k '#'>=5k):")
	for lat := 90.0; lat > -90; lat -= 20 {
		fmt.Print("  ")
		for lon := -180.0; lon < 180; lon += 20 {
			v, _, _ := ix.Query(lon, lon+20, lat-20, lat)
			switch {
			case v >= 5000:
				fmt.Print("#")
			case v >= 1000:
				fmt.Print("+")
			default:
				fmt.Print(".")
			}
		}
		fmt.Println()
	}

	// Guarantee verification on the paper's uniform-rectangle workload. The
	// 2D index reports the same certified Result.Bound as the 1D variants
	// (4δ = εabs per Lemma 6), so the check reads the bound off each answer.
	qs := data.UniformRects(-180, 180, -90, 90, 500, 6)
	worst, within := 0.0, 0
	for _, q := range qs {
		got, _ := ix.QueryWithBound(q.XLo, q.XHi, q.YLo, q.YHi)
		res, _ := ix.QueryRel(q.XLo, q.XHi, q.YLo, q.YHi, 1e-9) // forces exact fallback
		e := math.Abs(got.Value - res.Value)
		if e <= got.Bound {
			within++
		}
		if e > worst {
			worst = e
		}
	}
	fmt.Printf("\nguarantee check over %d uniform rectangles (certified bound %g):\n", len(qs), 4*st.Delta)
	fmt.Printf("  within bound: %d/%d, worst error: %.0f\n", within, len(qs), worst)

	// Latency comparison: approximate vs exact.
	startA := time.Now()
	for r := 0; r < 100; r++ {
		for _, q := range qs {
			ix.Query(q.XLo, q.XHi, q.YLo, q.YHi) //nolint:errcheck
		}
	}
	approxPer := time.Since(startA) / time.Duration(100*len(qs))
	startE := time.Now()
	for _, q := range qs {
		ix.QueryRel(q.XLo, q.XHi, q.YLo, q.YHi, 1e-9) //nolint:errcheck
	}
	exactPer := time.Since(startE) / time.Duration(len(qs))
	fmt.Printf("  latency: approx %v/query vs exact aR-tree %v/query (%.0fx speedup)\n",
		approxPer, exactPer, float64(exactPer)/float64(approxPer))
}
