// Package polyfit is a from-scratch Go implementation of PolyFit, the
// polynomial-based learned index for fast approximate range aggregate
// queries (Li, Chan, Yiu, Jensen — EDBT 2021, arXiv:2003.08031).
//
// A PolyFit index replaces the n keys of a traditional aggregate index with
// h ≪ n polynomial segments fitted to the key-cumulative function (for
// COUNT/SUM) or the key-measure function (for MIN/MAX) under a bounded
// maximum-error constraint. Range aggregates are then answered from the
// polynomials alone — two evaluations for COUNT/SUM, two constrained
// maximisations plus an O(1) lookup for MIN/MAX — with provable absolute or
// relative error guarantees.
//
// # Quick start
//
// One builder constructs every index variant; the layout is configuration,
// not a type:
//
//	keys := []float64{ /* sorted, distinct */ }
//	ix, err := polyfit.New(
//		polyfit.Spec{Agg: polyfit.Count, Keys: keys},
//		polyfit.WithMaxError(100),
//	)
//	if err != nil { ... }
//	res, _ := ix.Query(polyfit.Range{Lo: lo, Hi: hi})
//	// res.Value within res.Bound (≤ 100) of the exact count
//	rel, _ := ix.QueryRel(polyfit.Range{Lo: lo, Hi: hi}, 0.01) // ≤1% error
//
// Every index implements the Index interface — Query, QueryRel, QueryBatch,
// Stats, MarshalBinary — and every answer is a Result carrying the
// certified absolute error bound in Result.Bound, whatever the layout.
// Functional options pick the layout and tuning:
//
//	polyfit.WithMaxError(eps)   // absolute guarantee εabs (or WithDelta(δ))
//	polyfit.WithDegree(d)       // polynomial degree (default 2)
//	polyfit.WithDynamic()       // insert support (Index also implements Inserter)
//	polyfit.WithShards(k)       // k-way range partitioning (also Sharder)
//	polyfit.WithParallelism(n)  // build with n goroutines (identical output)
//	polyfit.WithFallback(false) // skip the exact structures behind QueryRel
//	polyfit.WithEncoding(e)     // pin the coefficient encoding (default EncAuto)
//
// Capabilities beyond the uniform contract are discovered by assertion:
//
//	if ins, ok := ix.(polyfit.Inserter); ok { ins.Insert(k, v) }
//	if sh, ok := ix.(polyfit.Sharder); ok { fmt.Println(sh.NumShards()) }
//
// polyfit.Open restores any serialised one-key index behind the same
// interface, sniffing the blob kind (static, dynamic, sharded); Open2D
// restores two-key indexes. Corrupt blobs are rejected with an error
// wrapping ErrCorruptBlob — never a panic.
//
// # Errors
//
// All failures wrap the package's sentinel errors — ErrEmptyKeys,
// ErrUnsortedKeys, ErrBadOptions, ErrAggMismatch, ErrInvalidRange,
// ErrNoFallback, ErrDuplicateKey, ErrCorruptBlob — so callers classify
// them with errors.Is instead of matching message text. This contract is
// machine-enforced: the project's static-analysis suite (internal/lint,
// run blocking in CI as `make lint`) flags any exported error path that
// constructs an error wrapping no sentinel. The same suite enforces the
// module's other unwritten rules — no plain access of atomically-accessed
// fields, "// guarded by <mu>" field annotations, Result.Bound set on
// every non-error return (//polyfit:exact opts out), float-free
// //polyfit:nofloat functions, and error-checked Sync/Close on
// write-opened files — with per-line exceptions via
// "//lint:ignore <analyzer> reason".
//
// # Migrating from the v1 API
//
// The v1 per-variant constructors and concrete types remain as thin
// deprecated wrappers over the builder, so existing code compiles
// unchanged. New code should use the builder:
//
//	v1                                          v2
//	----------------------------------------    ------------------------------------------------
//	NewCountIndex(keys, Options{EpsAbs: e})     New(Spec{Agg: Count, Keys: keys}, WithMaxError(e))
//	NewSumIndex(k, m, opt)                      New(Spec{Agg: Sum, Keys: k, Measures: m}, ...)
//	NewDynamicCountIndex(keys, opt)             New(spec, ..., WithDynamic())
//	NewSharded(agg, k, m, ShardOptions{...})    New(spec, ..., WithShards(n))
//	NewShardedDynamic(agg, k, m, sopt)          New(spec, ..., WithDynamic(), WithShards(n))
//	ix.Query(lo, hi) (v, found, err)            ix.Query(Range{lo, hi}) (Result, err)
//	sharded.QueryWithBound(lo, hi)              ix.Query(Range{lo, hi})   // Bound on every variant
//	var ix Index; ix.UnmarshalBinary(blob)      ix, err := Open(blob)     // any blob kind
//	AssembleShardedDynamic(bounds, blobs)       Assemble(bounds, blobs)
//	dyn.Insert / dyn.Rebuild                    ix.(Inserter).Insert / Rebuild
//	sharded.NumShards / Bounds / ShardStats     ix.(Sharder).NumShards / Bounds / ShardStats
//
// (The v1 static struct is now named StaticIndex; `polyfit.Index` is the
// interface. Code that spelled the struct type explicitly is the one
// intentional break.)
//
// # Guarantees
//
//   - Query on a COUNT/SUM index built with WithMaxError(ε) satisfies
//     |A − R| ≤ ε for query endpoints drawn from the key set (the paper's
//     workload; arbitrary endpoints inside fitted segments carry a small
//     documented slack, see DESIGN.md §3); the per-answer Result.Bound
//     reports the certified bound, composed across shards when sharded.
//   - QueryRel answers within the requested relative error; when the
//     Lemma 3/5/7 gate cannot certify the bound the exact fallback structure
//     (a key-cumulative array or aggregate tree) answers instead, so the
//     result is always within the requested relative error.
//
// # Accuracy contract (oracle-verified)
//
// The guarantees above are differentially tested, not merely asserted: the
// internal/oracle harness builds every index variant (static, dynamic,
// sharded, sharded-dynamic) and an exact referee — a bulk-loaded B+-tree
// rank structure for COUNT, brute force for SUM/MAX/MIN, sharing no code
// with the index — over identical data drawn from four key distributions
// (uniform, zipf, clustered, adversarial-duplicate), and checks thousands
// of random workload ranges per combination on every CI run. The verified
// contract is:
//
//   - COUNT/SUM: |A − R| ≤ εabs, two-sided and strict, at workload
//     endpoints (dataset keys); for sharded indexes the bound composes to
//     εabs per touched shard and is reported in Result.Bound — which the
//     root-package bound oracle verifies on all four variants, batch paths
//     included.
//   - MIN/MAX: R ≤ A + εabs strictly (the index never misses the true
//     extremum by more than the bound). The opposite side carries the
//     between-sample slack documented in DESIGN.md §3.3 — maximising a
//     fitted polynomial over a continuous clipped interval can slightly
//     exceed the sample-level bound — verified to stay within 2·εabs and
//     to occur rarely (≤2.5% of ranges across all tested distributions).
//
// Metamorphic tests (same harness) verify range additivity, approximate
// COUNT monotonicity in the upper endpoint, and that a sharded index
// answers shard-interior ranges bitwise-identically to an unsharded index
// over the same chunk.
//
// # Sharding
//
// WithShards(k) range-partitions the keys into k contiguous shards, each an
// ordinary PolyFit index over its own chunk. Queries split at the shard
// boundaries, the overlapping shards answer in parallel, and the partials
// merge (COUNT/SUM add, MIN/MAX combine); the composed absolute bound — 2δ
// per touched shard for COUNT/SUM, δ for MIN/MAX — is reported in
// Result.Bound. Inserts into a sharded dynamic index take only the owning
// shard's lock, and a merge-rebuild re-fits one shard's chunk while queries
// to every shard keep answering from lock-free snapshots. On a durable
// server each shard persists its own snapshot+WAL pair, recovered
// independently under a manifest (the ShardSnapshotter capability).
//
// # Dynamic indexes and concurrency
//
// WithDynamic() adds insert support via a sorted delta buffer over the
// static index; the buffer is aggregated exactly, so every guarantee above
// carries over unchanged. Dynamic indexes are safe for concurrent use by
// multiple goroutines with the following contract:
//
//   - Queries (Query, QueryRel, QueryBatch, Stats) are lock-free: they read
//     one immutable snapshot through an atomic pointer and never block —
//     not even while a merge-rebuild is running, because the new base index
//     is constructed off to the side and published with a single pointer
//     swap.
//   - Each query sees one consistent snapshot: a concurrent Insert either
//     precedes all of a QueryBatch's answers or none of them.
//   - Insert and Rebuild serialise on an internal lock; an Insert that
//     triggers a merge-rebuild blocks other writers (not readers) until
//     the rebuild completes.
//   - Monotonicity: once an Insert returns, every subsequent query
//     observes that record.
//
// Static indexes are immutable after construction and therefore trivially
// safe for concurrent readers.
//
// # Batched queries
//
// Index.QueryBatch answers many ranges per call, each Result carrying its
// own Bound. Batches of ascending non-overlapping windows (tiled scans,
// time-bucketed dashboards) are answered with a forward-only segment
// cursor instead of per-query binary searches; other batches fall back to
// direct evaluation unless the segment array is so much larger than the
// batch that sorting pays. The serving layer (internal/server,
// cmd/polyfit-serve) exposes this as a batched HTTP endpoint answering
// many ranges per round trip, with "bound" on every response.
//
// # Construction performance
//
// WithParallelism(n) builds the index with n goroutines: greedy
// segmentation runs per key-array chunk and junctions are re-grown over the
// full array, so the produced index is byte-identical to a serial build for
// every worker count. Dynamic indexes reuse the setting for merge-rebuilds.
// Internally each construction worker owns a reusable minimax fitter
// (internal/minimax.Fitter) holding all solver scratch; a Fitter is NOT
// concurrency-safe and must stay confined to one goroutine — the public API
// manages this automatically. Queries locate segments through a learned
// root (a flat interpolation table over the segment boundaries) in O(1)
// expected time with zero allocations; its size is reported in
// Stats.RootBytes and included in Stats.IndexBytes.
//
// # Succinct coefficient storage
//
// Segments are stored as structure-of-arrays coefficient lanes — one
// contiguous array per polynomial degree — that Query and QueryBatch
// evaluate branch-free, and the per-index encoding of those lanes is chosen
// at build time (WithEncoding, default EncAuto):
//
//   - EncRaw: float64 lanes plus explicit per-segment frames; bit-identical
//     to evaluating the fitted polynomials directly, and the encoding every
//     index can fall back to.
//   - EncF32: float32 lanes with float64 segment bounds (frames derived from
//     the bounds); about half the coefficient bytes.
//   - EncPacked: segment starts snapped to a uint32 grid over the key span
//     and coefficients stored as 16- or 32-bit fixed-point values on
//     per-lane affine grids; roughly a quarter of the raw footprint.
//     COUNT/SUM only.
//
// Compression never weakens the contract: a compressed candidate is adopted
// only after the full encoded query pipeline (locate, clamp, evaluate)
// reproduces every fitted sample within the already-certified δ, so every
// guarantee in this file holds identically for every encoding — the oracle
// harness re-verifies all encodings against the exact referee. When
// certification fails (MIN/MAX extrema, negative SUM measures, key spans the
// grid cannot resolve), the build silently falls back to the next heavier
// encoding. Stats reports the outcome: Stats.Encoding names the certified
// encoding ("mixed" for sharded indexes whose shards chose differently) and
// Stats.CoeffBytes the coefficient-lane footprint inside Stats.IndexBytes.
//
// # Two keys
//
// NewCount2DIndex builds the Section VI variant: a quadtree of bivariate
// polynomial surfaces over the cumulative count surface, answering
// rectangle COUNT queries with four surface evaluations. Its contract
// mirrors the 1D one adapted to rectangles: QueryWithBound and QueryRel
// return the same Result with the certified 4δ bound (Lemma 6), NaN
// rectangles are rejected with ErrInvalidRange, and Open2D restores
// serialised blobs.
//
// # Persistence
//
// Every variant implements encoding.BinaryMarshaler; polyfit.Open (one-key)
// and polyfit.Open2D (two-key) restore blobs by sniffing their magic bytes,
// and DetectBlob exposes the sniffing for callers that route blobs
// themselves (sharded containers nest per-shard blobs behind a shard
// directory).
//
// Static indexes serialise the compact polynomial structure only; exact
// fallbacks (which are O(n)) are not serialised, so loaded static indexes
// serve absolute-guarantee queries and return ErrNoFallback for relative
// ones.
//
// Dynamic indexes use a separate, versioned format that round-trips the
// complete dynamic state: the build options (the fallback setting
// included), the raw keys and measures, the delta buffer, and the fitted
// base index. Open therefore restores a fully operational dynamic index —
// inserts, duplicate detection, merge-rebuilds, and relative-error queries
// (fallbacks are reconstructed from the serialised raw data when enabled)
// behave exactly as on the original, and every query answers identically,
// bit for bit. Restoring never re-fits. Corrupt or truncated blobs of any
// format are rejected with an error wrapping ErrCorruptBlob, never a panic.
//
// Blob formats are versioned and load backward-compatibly: the coefficient
// encodings bumped the static format to POL1 v2, the dynamic format to POLD
// v3, and the sharded container to POLS v2, and every pre-encoding blob
// (POL1 v1, POLD v2, POLS v1) still loads and answers bit-identically to
// the index that wrote it — old blobs simply land on the raw encoding. The
// encoding itself round-trips in the blob, so loading never re-certifies
// (and never re-fits); learned roots and lookup tables are rebuilt
// deterministically on load and are not serialised.
//
// # Durability contract (serving layer)
//
// The HTTP serving layer (internal/server, cmd/polyfit-serve -data-dir)
// builds crash durability on top of that round-trip: each index gets an
// atomically written, checksummed snapshot file plus a write-ahead log of
// inserts. Once a data dir is configured, an acknowledged insert — an
// HTTP 200 counting the record as inserted — has been fsynced to the WAL
// before the response was sent and is therefore guaranteed to be
// reflected in query answers after any subsequent crash and restart,
// SIGKILL included. Recovery loads snapshots, replays WAL tails
// idempotently (duplicate keys are rejected exactly, so a log overlapping
// its snapshot re-applies nothing), truncates torn final records, and
// skips — reports, never crashes on — corrupt files.
//
// # Robustness contract (serving layer)
//
// The serving layer is built to stay predictable when its environment is
// not — under overload, slow queries, and failing storage:
//
//   - Deadlines: every query and batch runs under a context deadline (a
//     server default, overridable per request) that is honored through the
//     sharded scatter-gather; an expired deadline answers 504, it never
//     leaves work running unobserved. A client that hangs up instead is
//     answered 499-style and counted canceled, not timed out, so the
//     timeout signal operators alert on stays clean.
//   - Result caching: a point query's path is cache, then coalesce, then
//     admit, then execute. Completed responses — certified bound included
//     — are kept in a bounded sharded LRU keyed by (index instance, data
//     generation, range, tolerance); because a mutation bumps the
//     generation, a repeat is served from memory with zero index traversal
//     and a stale hit is impossible by construction (off by default;
//     Config.CacheBytes).
//   - Coalescing: identical concurrent queries (same index, same data
//     generation, same range and tolerance) collapse onto one execution;
//     followers repeat the leader's byte-identical response without
//     consuming admission slots, while honoring their own deadlines.
//   - Admission control: at most a configured number of queries execute
//     concurrently, a bounded number more may queue, and everything beyond
//     that is shed immediately with 429 + Retry-After — the decision is
//     lock-free, so an overloaded server says "try later" in microseconds
//     instead of timing everyone out. Inserts are never gated. Distinct
//     point queries that do queue are grouped per (index, generation) and
//     executed as one sorted batch sweep under a single slot, each waiter
//     receiving its own per-range certified bound — queue depth amortises
//     into throughput instead of serialising into latency.
//   - Fault degradation: a failed WAL append (after bounded retries) never
//     fails or blocks the insert — the index degrades to snapshot-only
//     durability, the response says "durable": false, an immediate
//     snapshot is scheduled, and a later successful snapshot heals the
//     index back to full WAL durability. Acknowledged-durable inserts
//     survive SIGKILL under every fault schedule the chaos harness injects
//     (make chaos).
//   - Graceful shutdown drains: stop accepting, finish in-flight requests
//     under a deadline, then snapshot and close — never the reverse order.
//
// A panic in a handler is recovered to a 500 (and counted) rather than
// taking the process down. All of it is observable in /v1/stats: in-flight,
// queued, shed, coalesced, batched, timed-out, canceled, cache
// hits/misses/evictions/bytes, recovered panics, degraded indexes, persist
// errors, and non-durable inserts.
//
// # Distributed serving contract (replication tier)
//
// internal/cluster extends the single durable server into a replicated
// tier — read replicas, a hedged scatter-gather router, and multi-process
// shard placement — under a deliberately asymmetric design: one leader
// owns the data dir and the write path, and everything else is derived
// state that can be killed and rebuilt from it. The contract:
//
//   - Replication is WAL streaming. A follower (polyfit-serve -join) boots
//     each index from the leader's snapshot blob and then applies the
//     leader's WAL records — the same fsynced, CRC-protected records the
//     durability contract above is built on — in leader order, framed in
//     a tail protocol keyed by (epoch, instance). Any coordinate mismatch
//     makes the follower resync from a fresh snapshot rather than apply
//     records to the wrong base.
//   - Determinism, not quorum, is the correctness story: a dynamic
//     index's state is a pure function of snapshot + ordered insert
//     stream, so a caught-up follower answers every query byte-for-byte
//     identically to the leader. This holds under a single writer (the
//     intended deployment); the replication tests assert raw-byte
//     response equality under -race.
//   - Followers are read-only: writes answer 409 Conflict with the
//     leader's URL in X-Polyfit-Leader. Reads carry an explicit staleness
//     label (staleness_ms in /v1/stats), and the leader truncates a WAL
//     only past the slowest live follower's acknowledged watermark, so a
//     lagging follower never finds its tail missing.
//   - The router (polyfit-serve -route) forwards writes to the leader and
//     fans reads over healthy replicas with hedged requests: fastest
//     replica first, a second attempt after -hedge-delay, first
//     definitive answer wins, loser canceled; errors fail over
//     immediately. A request's max_staleness_ms restricts candidates to
//     replicas fresh enough to serve it — exhausting the candidates
//     answers 503, never silently-stale data.
//   - Placement (cluster.Split / cluster.Deploy) regroups a sharded
//     index's POLS container into per-node sub-indexes with disjoint key
//     ownership; the router partitions inserts by cut key and merges
//     query partials with the same bound composition the in-process
//     sharded index uses, so Result.Bound stays a certified over-estimate
//     across process boundaries.
//
// The tier inherits the durability contract unchanged: kill -9 any single
// node and the router keeps answering reads; kill -9 the leader and every
// durable-acknowledged insert is still answered after restart. CI enforces
// this end-to-end (make cluster).
//
// Everything in this module — the minimax fitting stack (exchange algorithm
// and a revised dual simplex over LP (9)), greedy segmentation with
// exponential search, the exact baselines (prefix arrays, aggregate trees,
// an STR-packed aR-tree, a bulk-loaded B+-tree), the learned baselines (RMI,
// FITing-tree), the sampling and histogram heuristics, and the experiment
// harness reproducing every table and figure of the paper — is implemented
// in this repository with the Go standard library only. See DESIGN.md for
// the full inventory and EXPERIMENTS.md for paper-vs-measured results.
package polyfit
