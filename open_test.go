package polyfit_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	polyfit "repro"
)

// openDataset builds a small distinct-key dataset shared by the Open tests.
func openDataset(n int) (keys, measures []float64) {
	keys = make([]float64, n)
	measures = make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 1.25
		measures[i] = 1 + float64(i%17)
	}
	return keys, measures
}

// buildAllVariants constructs one index per layout through the builder.
func buildAllVariants(t *testing.T) map[string]polyfit.Index {
	t.Helper()
	keys, measures := openDataset(3000)
	variants := map[string][]polyfit.Option{
		"static":          {polyfit.WithMaxError(20)},
		"dynamic":         {polyfit.WithMaxError(20), polyfit.WithDynamic()},
		"sharded":         {polyfit.WithMaxError(20), polyfit.WithShards(4)},
		"sharded-dynamic": {polyfit.WithMaxError(20), polyfit.WithDynamic(), polyfit.WithShards(4)},
	}
	out := make(map[string]polyfit.Index, len(variants))
	for name, opts := range variants {
		ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures}, opts...)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = ix
	}
	return out
}

// TestOpenAllBlobKinds proves polyfit.Open restores every variant behind
// the Index interface with identical query answers and the expected
// capabilities.
func TestOpenAllBlobKinds(t *testing.T) {
	wantCaps := map[string]struct{ insert, shard bool }{
		"static":          {false, false},
		"dynamic":         {true, false},
		"sharded":         {false, true},
		"sharded-dynamic": {true, true},
	}
	for name, ix := range buildAllVariants(t) {
		blob, err := ix.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		loaded, err := polyfit.Open(blob)
		if err != nil {
			t.Fatalf("%s: Open: %v", name, err)
		}
		for _, r := range []polyfit.Range{{Lo: 10, Hi: 2000}, {Lo: -5, Hi: 5}, {Lo: 3000, Hi: 100}} {
			a, errA := ix.Query(r)
			b, errB := loaded.Query(r)
			if errA != nil || errB != nil || a != b {
				t.Fatalf("%s: Query(%v) diverged after Open: %+v (%v) vs %+v (%v)", name, r, a, errA, b, errB)
			}
		}
		_, canInsert := loaded.(polyfit.Inserter)
		_, canShard := loaded.(polyfit.Sharder)
		if want := wantCaps[name]; canInsert != want.insert || canShard != want.shard {
			t.Errorf("%s: capabilities after Open: insert=%v shard=%v, want %+v", name, canInsert, canShard, want)
		}
		// A dynamic index restored through Open must keep accepting inserts.
		if ins, ok := loaded.(polyfit.Inserter); ok {
			if err := ins.Insert(-123.5, 7); err != nil {
				t.Errorf("%s: insert after Open: %v", name, err)
			}
			if err := ins.Insert(-123.5, 7); !errors.Is(err, polyfit.ErrDuplicateKey) {
				t.Errorf("%s: duplicate insert after Open: got %v, want ErrDuplicateKey", name, err)
			}
		}
	}
}

// TestOpenCorruptBlobs drives Open across every blob kind × a sweep of
// truncations and byte flips: every corruption must come back as an error
// satisfying errors.Is(err, ErrCorruptBlob) — never a panic, never a
// silently loaded index.
func TestOpenCorruptBlobs(t *testing.T) {
	for name, ix := range buildAllVariants(t) {
		blob, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the intact blob must load.
		if _, err := polyfit.Open(blob); err != nil {
			t.Fatalf("%s: intact blob rejected: %v", name, err)
		}
		// Truncations at every small prefix and a sweep of interior cuts.
		cuts := []int{0, 1, 2, 3, 5, 7}
		for c := 8; c < len(blob); c += len(blob)/37 + 1 {
			cuts = append(cuts, c)
		}
		for _, c := range cuts {
			if _, err := polyfit.Open(blob[:c]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", name, c)
			} else if !errors.Is(err, polyfit.ErrCorruptBlob) {
				t.Fatalf("%s: truncation to %d: error %v does not wrap ErrCorruptBlob", name, c, err)
			}
		}
		// Byte flips past the magic (flipping the magic yields BlobUnknown,
		// covered below). Header fields are load-bearing; payload flips may
		// legitimately decode, so only the error kind is asserted.
		for pos := 4; pos < len(blob); pos += len(blob)/53 + 1 {
			mut := append([]byte(nil), blob...)
			mut[pos] ^= 0xff
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: Open panicked on byte flip at %d: %v", name, pos, r)
					}
				}()
				if _, err := polyfit.Open(mut); err != nil && !errors.Is(err, polyfit.ErrCorruptBlob) {
					t.Fatalf("%s: byte flip at %d: error %v does not wrap ErrCorruptBlob", name, pos, err)
				}
			}()
		}
	}
	// Unknown magic and empty input.
	for _, garbage := range [][]byte{nil, {}, []byte("not an index blob")} {
		if _, err := polyfit.Open(garbage); !errors.Is(err, polyfit.ErrCorruptBlob) {
			t.Errorf("Open(%q): got %v, want ErrCorruptBlob", garbage, err)
		}
	}
}

// TestOpenRejects2DBlob pins the routing between Open and Open2D.
func TestOpenRejects2DBlob(t *testing.T) {
	xs, ys := openDataset(500)
	ix2, err := polyfit.NewCount2DIndex(xs, ys, polyfit.Options2D{EpsAbs: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	err = func() error { _, err := polyfit.Open(blob); return err }()
	if err == nil || !strings.Contains(err.Error(), "Open2D") {
		t.Errorf("Open on a 2D blob: got %v, want a pointer to Open2D", err)
	}
	// A valid 2D blob is not corruption; the refusal classifies as a
	// contract mismatch instead.
	if errors.Is(err, polyfit.ErrCorruptBlob) || !errors.Is(err, polyfit.ErrAggMismatch) {
		t.Errorf("Open on a 2D blob: %v should wrap ErrAggMismatch, not ErrCorruptBlob", err)
	}
	loaded, err := polyfit.Open2D(blob)
	if err != nil {
		t.Fatalf("Open2D: %v", err)
	}
	a, _ := ix2.QueryWithBound(10, 400, 10, 400)
	b, _ := loaded.QueryWithBound(10, 400, 10, 400)
	if a != b {
		t.Errorf("2D round-trip diverged: %+v vs %+v", a, b)
	}
	// Corrupt 2D blobs classify the same way.
	if _, err := polyfit.Open2D(blob[:len(blob)/2]); !errors.Is(err, polyfit.ErrCorruptBlob) {
		t.Errorf("Open2D on truncated blob: got %v, want ErrCorruptBlob", err)
	}
}

// TestAssembleRoundTrip proves the per-shard recovery path: MarshalShard
// blobs plus bounds reassemble into an equivalent index, and corrupt shard
// blobs or inconsistent bounds are rejected with ErrCorruptBlob.
func TestAssembleRoundTrip(t *testing.T) {
	keys, measures := openDataset(4000)
	ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures},
		polyfit.WithMaxError(30), polyfit.WithDynamic(), polyfit.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	snap := ix.(polyfit.ShardSnapshotter)
	blobs := make([][]byte, snap.NumShards())
	for i := range blobs {
		if blobs[i], err = snap.MarshalShard(i); err != nil {
			t.Fatal(err)
		}
	}
	assembled, err := polyfit.Assemble(snap.Bounds(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	r := polyfit.Range{Lo: keys[100], Hi: keys[3900]}
	a, _ := ix.Query(r)
	b, _ := assembled.Query(r)
	if a != b {
		t.Fatalf("assembled index diverged: %+v vs %+v", a, b)
	}
	if _, ok := assembled.(polyfit.Inserter); !ok {
		t.Error("assembled index lost the Inserter capability")
	}
	// Corrupt one shard blob → ErrCorruptBlob.
	bad := append([][]byte(nil), blobs...)
	bad[2] = bad[2][:len(bad[2])/3]
	if _, err := polyfit.Assemble(snap.Bounds(), bad); !errors.Is(err, polyfit.ErrCorruptBlob) {
		t.Errorf("Assemble with truncated shard: got %v, want ErrCorruptBlob", err)
	}
	// Inconsistent bounds → ErrCorruptBlob.
	wrong := snap.Bounds()
	wrong[0] = math.Inf(1)
	if _, err := polyfit.Assemble(wrong, blobs); !errors.Is(err, polyfit.ErrCorruptBlob) {
		t.Errorf("Assemble with non-finite bound: got %v, want ErrCorruptBlob", err)
	}
}
