package polyfit_test

import (
	"fmt"

	polyfit "repro"
)

// ExampleNew builds an index through the unified builder and reads the
// certified error bound off the answer; swapping WithDynamic()/WithShards(k)
// into the option list changes the layout without changing any query code.
func ExampleNew() {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 1.5 // sorted, distinct
	}
	ix, err := polyfit.New(
		polyfit.Spec{Agg: polyfit.Count, Keys: keys},
		polyfit.WithMaxError(4),
	)
	if err != nil {
		panic(err)
	}
	// Count keys in (150, 300]: exactly 100 of them (151.5, 153, ..., 300).
	res, _ := ix.Query(polyfit.Range{Lo: 150, Hi: 300})
	fmt.Printf("count ≈ %.0f ± %.0f (exact 100)\n", res.Value, res.Bound)
	// Output: count ≈ 100 ± 4 (exact 100)
}

// ExampleOpen round-trips an index of any layout through its binary
// encoding: Open sniffs the blob kind and restores the matching variant
// behind the same Index interface.
func ExampleOpen() {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 1.5
	}
	ix, err := polyfit.New(
		polyfit.Spec{Agg: polyfit.Count, Keys: keys},
		polyfit.WithMaxError(4), polyfit.WithDynamic(), polyfit.WithShards(4),
	)
	if err != nil {
		panic(err)
	}
	blob, _ := ix.MarshalBinary()
	loaded, err := polyfit.Open(blob)
	if err != nil {
		panic(err)
	}
	_, insertable := loaded.(polyfit.Inserter)
	sh, _ := loaded.(polyfit.Sharder)
	fmt.Printf("restored: insertable=%v shards=%d\n", insertable, sh.NumShards())
	// Output: restored: insertable=true shards=4
}

// ExampleNewCountIndex builds a COUNT index over a small sorted key set and
// answers a range count within the requested absolute error.
func ExampleNewCountIndex() {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 1.5 // sorted, distinct
	}
	ix, err := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: 4})
	if err != nil {
		panic(err)
	}
	// Count keys in (150, 300]: exactly 100 of them (151.5, 153, ..., 300).
	v, _, _ := ix.Query(150, 300)
	fmt.Printf("count ≈ %.0f (exact 100, guarantee ±4)\n", v)
	// Output: count ≈ 100 (exact 100, guarantee ±4)
}

// ExampleIndex_QueryRel shows the certified relative-error path: the result
// is within 1% whether the approximate gate passed or the exact fallback
// answered.
func ExampleIndex_QueryRel() {
	keys := make([]float64, 5000)
	for i := range keys {
		keys[i] = float64(i * i) // quadratic spacing → curved CDF
	}
	ix, err := polyfit.NewCountIndex(keys, polyfit.Options{Delta: 10})
	if err != nil {
		panic(err)
	}
	res, err := ix.QueryRel(keys[100], keys[4900], 0.01)
	if err != nil {
		panic(err)
	}
	const exact = 4800.0
	relErr := (res.Value - exact) / exact
	if relErr < 0 {
		relErr = -relErr
	}
	fmt.Printf("within 1%%: %v (exact path used: %v)\n", relErr <= 0.01, res.Exact)
	// Output: within 1%: true (exact path used: false)
}

// ExampleNewMaxIndex answers a range MAX from the polynomial segments plus
// the per-segment exact maxima.
func ExampleNewMaxIndex() {
	keys := make([]float64, 0, 100)
	vals := make([]float64, 0, 100)
	for i := 0; i < 100; i++ {
		keys = append(keys, float64(i))
		vals = append(vals, float64(50-absInt(i-50))) // tent: peak 50 at i=50
	}
	ix, err := polyfit.NewMaxIndex(keys, vals, polyfit.Options{EpsAbs: 1})
	if err != nil {
		panic(err)
	}
	v, found, _ := ix.Query(10, 90)
	fmt.Printf("max ≈ %.0f found=%v (exact 50, guarantee ±1)\n", v, found)
	// Output: max ≈ 50 found=true (exact 50, guarantee ±1)
}

// ExampleDynamicIndex demonstrates the insert-supporting variant: the delta
// buffer is aggregated exactly, so the guarantee survives updates.
func ExampleDynamicIndex() {
	keys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	d, err := polyfit.NewDynamicCountIndex(keys, polyfit.Options{EpsAbs: 2})
	if err != nil {
		panic(err)
	}
	_ = d.Insert(2.5, 1)
	_ = d.Insert(3.5, 1)
	v, _, _ := d.Query(2, 4) // keys in (2,4]: {2.5, 3, 3.5, 4}
	fmt.Printf("count ≈ %.0f of 4 (buffer %d)\n", v, d.BufferLen())
	// Output: count ≈ 4 of 4 (buffer 2)
}

// ExampleIndex_marshal round-trips an index through its binary encoding.
func ExampleIndex_marshal() {
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = float64(i)
	}
	ix, _ := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: 2})
	blob, _ := ix.MarshalBinary()
	loaded, err := polyfit.Open(blob)
	if err != nil {
		panic(err)
	}
	a, _, _ := ix.Query(50, 150)
	b, _ := loaded.Query(polyfit.Range{Lo: 50, Hi: 150})
	fmt.Printf("same answer after round-trip: %v\n", a == b.Value)
	// Output: same answer after round-trip: true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
