package polyfit

import (
	"errors"

	"repro/internal/core"
)

// Sentinel errors surfaced by the public API. Every constructor and query
// path wraps one of these with %w, so callers classify failures with
// errors.Is instead of matching message text:
//
//	ix, err := polyfit.Open(blob)
//	if errors.Is(err, polyfit.ErrCorruptBlob) { ... }
var (
	// ErrEmptyKeys is returned by builds over an empty key set.
	ErrEmptyKeys = core.ErrEmptyDataset
	// ErrUnsortedKeys is returned by builds whose keys are not strictly
	// increasing.
	ErrUnsortedKeys = core.ErrUnsortedKeys
	// ErrAggMismatch is returned when a query or build names an aggregate
	// the index (or the Spec) does not support.
	ErrAggMismatch = core.ErrWrongAgg
	// ErrInvalidRange is returned by queries with arguments the index cannot
	// interpret: NaN range endpoints, NaN rectangle coordinates, or a
	// non-positive relative error.
	ErrInvalidRange = core.ErrInvalidRange
	// ErrCorruptBlob is returned by Open, Open2D, Assemble and every
	// UnmarshalBinary when a serialised blob is corrupt, truncated, or
	// internally inconsistent. Garbage input is always rejected with an
	// error wrapping this sentinel — never a panic.
	ErrCorruptBlob = core.ErrBadFormat
	// ErrNoFallback is returned by relative-error queries when the index
	// carries no exact fallback (built with WithFallback(false) /
	// DisableFallback, or loaded from a static blob).
	ErrNoFallback = core.ErrNoFallback
	// ErrDuplicateKey is returned by Inserter.Insert when the key is already
	// present (in the base index or the delta buffer).
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrBadOptions reports an invalid build configuration: neither a max
	// error (WithMaxError / Options.EpsAbs) nor a fitting tolerance
	// (WithDelta / Options.Delta) was set positive.
	ErrBadOptions = errors.New("polyfit: either a max error or a fitting tolerance δ must be positive")
)
