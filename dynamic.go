package polyfit

import (
	"repro/internal/core"
)

// DynamicIndex is an insert-supporting PolyFit index — the paper's stated
// future work, implemented as a delta buffer over the static index (see
// internal/core.Dynamic1D). Inserts are aggregated exactly, so the static
// index's absolute guarantee carries over unchanged; deletions are not
// supported.
type DynamicIndex struct {
	inner *core.Dynamic1D
}

// NewDynamicCountIndex builds an insertable COUNT index.
func NewDynamicCountIndex(keys []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Count, keys, make([]float64, len(keys)), opt)
}

// NewDynamicSumIndex builds an insertable SUM index.
func NewDynamicSumIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Sum, keys, measures, opt)
}

// NewDynamicMaxIndex builds an insertable MAX index.
func NewDynamicMaxIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Max, keys, measures, opt)
}

// NewDynamicMinIndex builds an insertable MIN index.
func NewDynamicMinIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Min, keys, measures, opt)
}

func newDynamic(agg Agg, keys, measures []float64, opt Options) (*DynamicIndex, error) {
	d, err := opt.delta(agg)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewDynamic(agg, keys, measures, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: true,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{inner: inner}, nil
}

// Insert adds a (key, measure) record; duplicate keys are rejected. COUNT
// indexes ignore the measure. A merge-rebuild runs automatically when the
// delta buffer outgrows an eighth of the base.
func (d *DynamicIndex) Insert(key, measure float64) error {
	return d.inner.Insert(key, measure)
}

// Query answers the approximate aggregate with the build-time εabs
// guarantee (buffer contributions are exact).
func (d *DynamicIndex) Query(lq, uq float64) (value float64, found bool, err error) {
	switch d.inner.Base().Aggregate() {
	case Count, Sum:
		v, err := d.inner.RangeSum(lq, uq)
		return v, true, err
	default:
		return d.inner.RangeExtremum(lq, uq)
	}
}

// Rebuild forces an immediate merge of the delta buffer into the base.
func (d *DynamicIndex) Rebuild() error { return d.inner.Rebuild() }

// Len returns the total record count (base + buffer).
func (d *DynamicIndex) Len() int { return d.inner.Len() }

// BufferLen returns the number of not-yet-merged inserts.
func (d *DynamicIndex) BufferLen() int { return d.inner.BufferLen() }

// Stats reports the current base index structure.
func (d *DynamicIndex) Stats() Stats {
	base := d.inner.Base()
	return Stats{
		Aggregate:     base.Aggregate(),
		Records:       d.inner.Len(),
		Segments:      base.NumSegments(),
		Degree:        base.Degree(),
		Delta:         base.Delta(),
		IndexBytes:    base.SizeBytes() + 16*d.inner.BufferLen(),
		FallbackBytes: base.FallbackSizeBytes(),
	}
}
