package polyfit

import (
	"repro/internal/core"
)

// DynamicIndex is an insert-supporting PolyFit index — the paper's stated
// future work, implemented as a delta buffer over the static index (see
// internal/core.Dynamic1D). Inserts are aggregated exactly, so the static
// index's absolute guarantee carries over unchanged; deletions are not
// supported.
//
// DynamicIndex is safe for concurrent use by multiple goroutines: queries
// are lock-free reads of an immutable snapshot and never block, not even
// while a merge-rebuild is in flight; Insert and Rebuild serialise on an
// internal lock. See the package documentation for the full guarantees.
type DynamicIndex struct {
	inner *core.Dynamic1D
}

// NewDynamicCountIndex builds an insertable COUNT index.
func NewDynamicCountIndex(keys []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Count, keys, make([]float64, len(keys)), opt)
}

// NewDynamicSumIndex builds an insertable SUM index.
func NewDynamicSumIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Sum, keys, measures, opt)
}

// NewDynamicMaxIndex builds an insertable MAX index.
func NewDynamicMaxIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Max, keys, measures, opt)
}

// NewDynamicMinIndex builds an insertable MIN index.
func NewDynamicMinIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamic(Min, keys, measures, opt)
}

func newDynamic(agg Agg, keys, measures []float64, opt Options) (*DynamicIndex, error) {
	d, err := opt.delta(agg)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewDynamic(agg, keys, measures, core.Options{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{inner: inner}, nil
}

// Insert adds a (key, measure) record; duplicate keys are rejected. COUNT
// indexes ignore the measure. A merge-rebuild runs automatically when the
// delta buffer outgrows an eighth of the base.
func (d *DynamicIndex) Insert(key, measure float64) error {
	return d.inner.Insert(key, measure)
}

// Query answers the approximate aggregate with the build-time εabs
// guarantee (buffer contributions are exact).
func (d *DynamicIndex) Query(lq, uq float64) (value float64, found bool, err error) {
	switch d.inner.Aggregate() {
	case Count, Sum:
		v, err := d.inner.RangeSum(lq, uq)
		if err != nil {
			return 0, false, err
		}
		return v, true, nil
	default:
		return d.inner.RangeExtremum(lq, uq)
	}
}

// QueryRel answers within the relative error epsRel (Problem 2), exactly
// like Index.QueryRel; buffered inserts participate exactly in both the
// certification gate and the fallback. Indexes built with DisableFallback
// return ErrNoFallback whenever the approximate gate cannot certify the
// bound.
func (d *DynamicIndex) QueryRel(lq, uq, epsRel float64) (Result, error) {
	agg := d.inner.Aggregate()
	delta := d.inner.Base().Delta()
	switch agg {
	case Count, Sum:
		v, exact, err := d.inner.RangeSumRel(lq, uq, epsRel)
		return Result{Value: v, Exact: exact, Found: true, Bound: approxBound(agg, delta, exact)}, err
	default:
		v, exact, ok, err := d.inner.RangeExtremumRel(lq, uq, epsRel)
		return Result{Value: v, Exact: exact, Found: ok, Bound: approxBound(agg, delta, exact)}, err
	}
}

// QueryBatch answers many ranges in one call (see Index.QueryBatch); each
// answer folds in the exact delta-buffer aggregate. The whole batch reads
// one consistent snapshot: a concurrent Insert either precedes every
// answer of the batch or none.
func (d *DynamicIndex) QueryBatch(ranges []Range) ([]BatchResult, error) {
	return d.inner.QueryBatch(ranges)
}

// Rebuild forces an immediate merge of the delta buffer into the base.
// Concurrent queries keep answering from the previous snapshot until the
// merged index is published.
func (d *DynamicIndex) Rebuild() error { return d.inner.Rebuild() }

// Len returns the total record count (base + buffer).
func (d *DynamicIndex) Len() int { return d.inner.Len() }

// BufferLen returns the number of not-yet-merged inserts.
func (d *DynamicIndex) BufferLen() int { return d.inner.BufferLen() }

// Stats reports the current index structure from one consistent snapshot.
// IndexBytes includes the full delta-buffer footprint (keys, measures, and
// prefix aggregates); BufferLen counts the not-yet-merged inserts.
func (d *DynamicIndex) Stats() Stats {
	v := d.inner.View()
	lo, hi := d.inner.KeyRange()
	return Stats{
		KeyLo:         lo,
		KeyHi:         hi,
		Aggregate:     v.Base.Aggregate(),
		Records:       v.Records,
		Segments:      v.Base.NumSegments(),
		Degree:        v.Base.Degree(),
		Delta:         v.Base.Delta(),
		IndexBytes:    v.Base.SizeBytes() + v.BufferBytes,
		RootBytes:     v.Base.RootSizeBytes(),
		FallbackBytes: v.Base.FallbackSizeBytes(),
		BufferLen:     v.BufferLen,
	}
}

// MarshalBinary serialises the complete dynamic state in the versioned
// dynamic format: build options (the fallback setting included), the raw
// keys and measures, the delta buffer, and the fitted base index. The blob
// round-trips through UnmarshalBinary with identical query behaviour — no
// insert is lost, the buffer stays a buffer, and fallback-enabled indexes
// come back able to serve QueryRel. Marshalling reads one immutable
// snapshot and never blocks concurrent writers.
//
// The dynamic format is distinct from Index.MarshalBinary's static format
// (which has no room for the buffer or raw data); DetectBlob tells them
// apart, and each Unmarshal reports a descriptive error when handed the
// other's blob.
func (d *DynamicIndex) MarshalBinary() ([]byte, error) { return d.inner.MarshalBinary() }

// UnmarshalBinary restores a dynamic index from a MarshalBinary blob. The
// restored index is fully operational — inserts, duplicate detection,
// merge-rebuilds, and (when the marshalled index was built with fallbacks,
// which are reconstructed from the serialised raw data) relative-error
// queries all behave exactly as on the original. The base segments load
// directly from the blob, so restoring costs a linear scan, not a re-fit.
// Corrupt or truncated blobs are rejected with an error; UnmarshalBinary
// never panics on garbage input.
func (d *DynamicIndex) UnmarshalBinary(data []byte) error {
	inner, err := core.RestoreDynamic(data)
	if err != nil {
		return err
	}
	d.inner = inner
	return nil
}
