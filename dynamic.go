package polyfit

import (
	"repro/internal/core"
)

// DynamicIndex is an insert-supporting PolyFit index — the paper's stated
// future work, implemented as a delta buffer over the static index (see
// internal/core.Dynamic1D). Inserts are aggregated exactly, so the static
// index's absolute guarantee carries over unchanged; deletions are not
// supported.
//
// DynamicIndex is safe for concurrent use by multiple goroutines: queries
// are lock-free reads of an immutable snapshot and never block, not even
// while a merge-rebuild is in flight; Insert and Rebuild serialise on an
// internal lock. See the package documentation for the full guarantees.
//
// Deprecated: build with polyfit.New(spec, polyfit.WithDynamic(), ...) and
// use the Index interface plus the Inserter capability.
type DynamicIndex struct {
	inner *core.Dynamic1D
}

// NewDynamicCountIndex builds an insertable COUNT index.
//
// Deprecated: use polyfit.New with WithDynamic().
func NewDynamicCountIndex(keys []float64, opt Options) (*DynamicIndex, error) {
	return newDynamicV1(Count, keys, nil, opt)
}

// NewDynamicSumIndex builds an insertable SUM index.
//
// Deprecated: use polyfit.New with WithDynamic().
func NewDynamicSumIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamicV1(Sum, keys, measures, opt)
}

// NewDynamicMaxIndex builds an insertable MAX index.
//
// Deprecated: use polyfit.New with WithDynamic().
func NewDynamicMaxIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamicV1(Max, keys, measures, opt)
}

// NewDynamicMinIndex builds an insertable MIN index.
//
// Deprecated: use polyfit.New with WithDynamic().
func NewDynamicMinIndex(keys, measures []float64, opt Options) (*DynamicIndex, error) {
	return newDynamicV1(Min, keys, measures, opt)
}

// newDynamicV1 delegates a v1 dynamic build to the builder and unwraps the
// concrete index.
func newDynamicV1(agg Agg, keys, measures []float64, opt Options) (*DynamicIndex, error) {
	ix, err := New(Spec{Agg: agg, Keys: keys, Measures: measures}, opt.options(WithDynamic())...)
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{inner: ix.(*dynamicIndex).inner}, nil
}

// Insert adds a (key, measure) record; duplicate keys are rejected. COUNT
// indexes ignore the measure. A merge-rebuild runs automatically when the
// delta buffer outgrows an eighth of the base.
func (d *DynamicIndex) Insert(key, measure float64) error {
	return d.inner.Insert(key, measure)
}

// Query answers the approximate aggregate with the build-time εabs
// guarantee (buffer contributions are exact). NaN endpoints are rejected
// with ErrInvalidRange, exactly as on the Index interface.
func (d *DynamicIndex) Query(lq, uq float64) (value float64, found bool, err error) {
	res, err := (&dynamicIndex{inner: d.inner}).Query(Range{Lo: lq, Hi: uq})
	return res.Value, res.Found, err
}

// QueryRel answers within the relative error epsRel (Problem 2), exactly
// like StaticIndex.QueryRel; buffered inserts participate exactly in both
// the certification gate and the fallback. Indexes built with
// DisableFallback return ErrNoFallback whenever the approximate gate cannot
// certify the bound.
func (d *DynamicIndex) QueryRel(lq, uq, epsRel float64) (Result, error) {
	return (&dynamicIndex{inner: d.inner}).QueryRel(Range{Lo: lq, Hi: uq}, epsRel)
}

// QueryBatch answers many ranges in one call (see StaticIndex.QueryBatch);
// each answer folds in the exact delta-buffer aggregate. The whole batch
// reads one consistent snapshot: a concurrent Insert either precedes every
// answer of the batch or none.
func (d *DynamicIndex) QueryBatch(ranges []Range) ([]BatchResult, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	return d.inner.QueryBatch(ranges)
}

// Rebuild forces an immediate merge of the delta buffer into the base.
// Concurrent queries keep answering from the previous snapshot until the
// merged index is published.
func (d *DynamicIndex) Rebuild() error { return d.inner.Rebuild() }

// Len returns the total record count (base + buffer).
func (d *DynamicIndex) Len() int { return d.inner.Len() }

// BufferLen returns the number of not-yet-merged inserts.
func (d *DynamicIndex) BufferLen() int { return d.inner.BufferLen() }

// Stats reports the current index structure from one consistent snapshot.
// IndexBytes includes the full delta-buffer footprint (keys, measures, and
// prefix aggregates); BufferLen counts the not-yet-merged inserts.
func (d *DynamicIndex) Stats() Stats { return statsDynamic(d.inner) }

// MarshalBinary serialises the complete dynamic state in the versioned
// dynamic format: build options (the fallback setting included), the raw
// keys and measures, the delta buffer, and the fitted base index. The blob
// round-trips through UnmarshalBinary (or polyfit.Open) with identical
// query behaviour — no insert is lost, the buffer stays a buffer, and
// fallback-enabled indexes come back able to serve QueryRel. Marshalling
// reads one immutable snapshot and never blocks concurrent writers.
//
// The dynamic format is distinct from StaticIndex.MarshalBinary's static
// format (which has no room for the buffer or raw data); DetectBlob tells
// them apart, and each Unmarshal reports a descriptive error when handed
// the other's blob.
func (d *DynamicIndex) MarshalBinary() ([]byte, error) { return d.inner.MarshalBinary() }

// UnmarshalBinary restores a dynamic index from a MarshalBinary blob. The
// restored index is fully operational — inserts, duplicate detection,
// merge-rebuilds, and (when the marshalled index was built with fallbacks,
// which are reconstructed from the serialised raw data) relative-error
// queries all behave exactly as on the original. The base segments load
// directly from the blob, so restoring costs a linear scan, not a re-fit.
// Corrupt or truncated blobs are rejected with an error wrapping
// ErrCorruptBlob; UnmarshalBinary never panics on garbage input.
//
// Deprecated: use polyfit.Open.
func (d *DynamicIndex) UnmarshalBinary(data []byte) error {
	inner, err := core.RestoreDynamic(data)
	if err != nil {
		return err
	}
	d.inner = inner
	return nil
}
