package polyfit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestDynamicCountEndToEnd(t *testing.T) {
	keys := data.GenTweet(3000, 61)
	const eps = 40.0
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]float64(nil), keys...)
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 800; i++ {
		k := -60 + rng.Float64()*135
		if err := d.Insert(k, 1); err == nil {
			all = append(all, k)
		}
	}
	if d.Len() != len(all) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(all))
	}
	for q := 0; q < 200; q++ {
		l := all[rng.Intn(len(all))]
		u := all[rng.Intn(len(all))]
		if l > u {
			l, u = u, l
		}
		got, _, err := d.Query(l, u)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range all {
			if k > l && k <= u {
				want++
			}
		}
		if math.Abs(got-want) > eps+1e-6 {
			t.Fatalf("|%g − %g| > εabs", got, want)
		}
	}
	st := d.Stats()
	if st.Records != len(all) || st.Segments < 1 {
		t.Errorf("bad stats %+v", st)
	}
}

func TestDynamicMaxEndToEnd(t *testing.T) {
	keys, measures := data.GenHKI(2000, 63)
	d, err := NewDynamicMaxIndex(keys, measures, Options{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new global peak past the end of the series.
	peakKey := keys[len(keys)-1] + 100
	if err := d.Insert(peakKey, 99999); err != nil {
		t.Fatal(err)
	}
	v, found, err := d.Query(keys[0], peakKey+1)
	if err != nil || !found {
		t.Fatalf("query: %v %v", err, found)
	}
	if v < 99999-100 {
		t.Errorf("inserted peak lost: %g", v)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.BufferLen() != 0 {
		t.Error("buffer survived rebuild")
	}
	v, _, _ = d.Query(keys[0], peakKey+1)
	if v < 99999-100 {
		t.Errorf("peak lost after rebuild: %g", v)
	}
}

func TestDynamicOptionsValidation(t *testing.T) {
	if _, err := NewDynamicCountIndex(data.GenTweet(100, 64), Options{}); err != ErrBadOptions {
		t.Errorf("want ErrBadOptions, got %v", err)
	}
}
