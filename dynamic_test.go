package polyfit

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
)

func TestDynamicCountEndToEnd(t *testing.T) {
	keys := data.GenTweet(3000, 61)
	const eps = 40.0
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]float64(nil), keys...)
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 800; i++ {
		k := -60 + rng.Float64()*135
		if err := d.Insert(k, 1); err == nil {
			all = append(all, k)
		}
	}
	if d.Len() != len(all) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(all))
	}
	for q := 0; q < 200; q++ {
		l := all[rng.Intn(len(all))]
		u := all[rng.Intn(len(all))]
		if l > u {
			l, u = u, l
		}
		got, _, err := d.Query(l, u)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range all {
			if k > l && k <= u {
				want++
			}
		}
		if math.Abs(got-want) > eps+1e-6 {
			t.Fatalf("|%g − %g| > εabs", got, want)
		}
	}
	st := d.Stats()
	if st.Records != len(all) || st.Segments < 1 {
		t.Errorf("bad stats %+v", st)
	}
}

func TestDynamicMaxEndToEnd(t *testing.T) {
	keys, measures := data.GenHKI(2000, 63)
	d, err := NewDynamicMaxIndex(keys, measures, Options{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new global peak past the end of the series.
	peakKey := keys[len(keys)-1] + 100
	if err := d.Insert(peakKey, 99999); err != nil {
		t.Fatal(err)
	}
	v, found, err := d.Query(keys[0], peakKey+1)
	if err != nil || !found {
		t.Fatalf("query: %v %v", err, found)
	}
	if v < 99999-100 {
		t.Errorf("inserted peak lost: %g", v)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.BufferLen() != 0 {
		t.Error("buffer survived rebuild")
	}
	v, _, _ = d.Query(keys[0], peakKey+1)
	if v < 99999-100 {
		t.Errorf("peak lost after rebuild: %g", v)
	}
}

func TestDynamicOptionsValidation(t *testing.T) {
	if _, err := NewDynamicCountIndex(data.GenTweet(100, 64), Options{}); err != ErrBadOptions {
		t.Errorf("want ErrBadOptions, got %v", err)
	}
}

func TestDynamicQueryRel(t *testing.T) {
	keys := data.GenTweet(3000, 65)
	d, err := NewDynamicCountIndex(keys, Options{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]float64(nil), keys...)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 300; i++ {
		k := -60 + rng.Float64()*135
		if err := d.Insert(k, 1); err == nil {
			all = append(all, k)
		}
	}
	const epsRel = 0.01
	for q := 0; q < 150; q++ {
		l := all[rng.Intn(len(all))]
		u := all[rng.Intn(len(all))]
		if l > u {
			l, u = u, l
		}
		res, err := d.QueryRel(l, u, epsRel)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range all {
			if k > l && k <= u {
				want++
			}
		}
		if math.Abs(res.Value-want) > epsRel*want+1e-6 {
			t.Fatalf("|%g − %g| > %g·R (exact=%v)", res.Value, want, epsRel, res.Exact)
		}
	}
}

// DisableFallback is honored now instead of being silently forced on: a
// fallback-free dynamic index answers absolute queries but returns
// ErrNoFallback when the relative gate cannot certify the bound.
func TestDynamicDisableFallbackHonored(t *testing.T) {
	keys := data.GenTweet(2000, 67)
	d, err := NewDynamicCountIndex(keys, Options{Delta: 50, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.FallbackBytes != 0 {
		t.Errorf("DisableFallback ignored: %d fallback bytes", st.FallbackBytes)
	}
	if _, _, err := d.Query(10, 20); err != nil {
		t.Errorf("absolute query: %v", err)
	}
	// An empty range can never pass the Lemma 3 gate.
	if _, err := d.QueryRel(keys[0], keys[0], 0.01); err != ErrNoFallback {
		t.Errorf("want ErrNoFallback, got %v", err)
	}
	// With the fallback built (the default), the same query succeeds.
	df, err := NewDynamicCountIndex(keys, Options{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.QueryRel(keys[0], keys[0], 0.01); err != nil {
		t.Errorf("fallback path: %v", err)
	}
}

// Stats must account for the real delta-buffer footprint: keys, measures,
// and the prefix-aggregate array (24 B per buffered record), not 16 B.
func TestDynamicStatsBufferAccounting(t *testing.T) {
	keys := data.GenTweet(1500, 68)
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: 50})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	const n = 20
	for i := 0; i < n; i++ {
		if err := d.Insert(1e6+float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	after := d.Stats()
	if got, want := after.IndexBytes-before.IndexBytes, 24*n; got != want {
		t.Errorf("buffer accounted as %d bytes for %d inserts, want %d", got, n, want)
	}
}

func TestDynamicQueryBatchMatchesSerial(t *testing.T) {
	keys, measures := data.GenHKI(4000, 69)
	d, err := NewDynamicMaxIndex(keys, measures, Options{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(70))
	for i := 0; i < 50; i++ {
		d.Insert(keys[len(keys)-1]+1+rng.Float64()*1000, rng.Float64()*500) //nolint:errcheck
	}
	ranges := make([]Range, 400)
	lo, hi := keys[0], keys[len(keys)-1]+1001
	for i := range ranges {
		a, b := lo+rng.Float64()*(hi-lo), lo+rng.Float64()*(hi-lo)
		if a > b {
			a, b = b, a
		}
		ranges[i] = Range{Lo: a, Hi: b}
	}
	batch, err := d.QueryBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		want, ok, err := d.Query(r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Found != ok || (ok && batch[i].Value != want) {
			t.Fatalf("range %d: batch (%g,%v), serial (%g,%v)",
				i, batch[i].Value, batch[i].Found, want, ok)
		}
	}
}

func TestDynamicMarshalRoundTrip(t *testing.T) {
	keys := data.GenTweet(2000, 71)
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Insert(1e6+float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if d.BufferLen() != 10 {
		t.Errorf("MarshalBinary disturbed the buffer: %d", d.BufferLen())
	}
	if DetectBlob(blob) != BlobDynamic {
		t.Errorf("dynamic blob detected as %v", DetectBlob(blob))
	}
	loaded := &DynamicIndex{}
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Len(), d.Len(); got != want {
		t.Errorf("loaded index has %d records, want %d", got, want)
	}
	if got := loaded.BufferLen(); got != 10 {
		t.Errorf("loaded buffer has %d inserts, want 10 (restore must keep the buffer a buffer)", got)
	}
	// Nothing is re-fitted on restore, so every answer agrees bit-for-bit.
	for _, q := range [][2]float64{{10, 1e7}, {-90, 90}, {1e6 - 1, 1e6 + 4}, {5, 5}} {
		want, _, _ := d.Query(q[0], q[1])
		got, _, err := loaded.Query(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Query(%g,%g): loaded answers %g, want %g", q[0], q[1], got, want)
		}
	}
	// The fallback was enabled at build time, so the restored index must
	// serve relative-error queries too (the old format lost this).
	res, err := loaded.QueryRel(1e6-1, 1e6+4, 0.01)
	if err != nil {
		t.Fatalf("QueryRel on restored index: %v", err)
	}
	if res.Value != 5 {
		t.Errorf("QueryRel counted %g buffered inserts, want 5", res.Value)
	}
	// A static index must refuse the dynamic blob with a useful error.
	if err := (&StaticIndex{}).UnmarshalBinary(blob); err == nil {
		t.Error("static UnmarshalBinary accepted a dynamic blob")
	}
}

func TestDynamicMarshalPreservesDisabledFallback(t *testing.T) {
	keys := data.GenTweet(1000, 72)
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: 50, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded := &DynamicIndex{}
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// A tiny range cannot pass the Lemma 3 gate, so this must surface
	// ErrNoFallback — the restored index honours DisableFallback.
	if _, err := loaded.QueryRel(keys[0], keys[0], 0.01); err != ErrNoFallback {
		t.Errorf("QueryRel on fallback-less restored index: %v, want ErrNoFallback", err)
	}
	if loaded.Stats().FallbackBytes != 0 {
		t.Errorf("restored fallback-less index reports %d fallback bytes", loaded.Stats().FallbackBytes)
	}
}

// TestDynamicConcurrentUse is the public-API race stress test: concurrent
// Insert, Query, QueryBatch, QueryRel, Stats, and Rebuild on one index.
// Run with -race.
func TestDynamicConcurrentUse(t *testing.T) {
	keys := data.GenTweet(3000, 73)
	const eps = 50.0
	d, err := NewDynamicCountIndex(keys, Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	// attempted is bumped before Insert, inserted after it returns, so the
	// live record count is always within [inserted, attempted].
	var attempted, inserted atomic.Int64
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				attempted.Add(1)
				if err := d.Insert(rng.Float64()*1e6+1e3, 1); err == nil {
					inserted.Add(1)
				} else {
					attempted.Add(-1)
				}
			}
		}(int64(500 + g))
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 4; i++ {
			if err := d.Rebuild(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := float64(len(keys)) + float64(inserted.Load())
				v, found, err := d.Query(-1e7, 1e7)
				if err != nil || !found {
					t.Errorf("query: %v %v", err, found)
					return
				}
				ceil := float64(len(keys)) + float64(attempted.Load())
				if v < floor-eps-1e-6 || v > ceil+eps+1e-6 {
					t.Errorf("count %g outside [%g, %g] ± ε", v, floor, ceil)
					return
				}
				switch rng.Intn(3) {
				case 0:
					if _, err := d.QueryBatch([]Range{{Lo: -90, Hi: 90}, {Lo: 0, Hi: 1e6}}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := d.QueryRel(-90, 90, 0.01); err != nil {
						t.Error(err)
						return
					}
				default:
					d.Stats()
				}
			}
		}(int64(600 + g))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got, want := d.Len(), len(keys)+int(inserted.Load()); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}
