// Package rmi implements the Recursive Model Index [33] baseline adapted to
// approximate range aggregate queries (Appendix A/B of the paper): a staged
// hierarchy of linear-regression models fits the key-cumulative function
// directly; the leaf reached by routing predicts CF(k), and the per-leaf
// maximum training error provides the δ used by the Section V lemmas.
//
// The appendix tunes the structure 1 → 10 → 100 → 1000 with linear models
// (Table VI shows neural leaves are slower for no accuracy payoff at this
// scale — reproduced by internal/nn). RMI has no build-time error knob, so
// BuildWithGuarantee doubles the leaf-stage width until every leaf's error
// is within the requested δ, which is what makes the Problem-1 comparison
// fair.
package rmi

import (
	"errors"
	"fmt"

	"repro/internal/kca"
)

// Model is one linear regression unit: pred(k) = A + B·k.
type Model struct {
	A, B float64
}

func (m Model) predict(k float64) float64 { return m.A + m.B*k }

// Index is a trained RMI over a cumulative function.
type Index struct {
	stages  [][]Model
	leafErr []float64 // max |CF − pred| per leaf model
	delta   float64   // max over leafErr
	total   float64
	keyLo   float64
	keyHi   float64
	exact   *kca.Array
}

// ErrNoFallback mirrors core.ErrNoFallback.
var ErrNoFallback = errors.New("rmi: relative query needs exact fallback")

// DefaultStages is the appendix-tuned structure 1 → 10 → 100 → 1000.
var DefaultStages = []int{1, 10, 100, 1000}

// BuildSum trains an RMI on CFsum of (keys, measures) with the given stage
// widths (nil selects DefaultStages).
func BuildSum(keys, measures []float64, stages []int, withFallback bool) (*Index, error) {
	if len(keys) == 0 || len(keys) != len(measures) {
		return nil, fmt.Errorf("rmi: %d keys, %d measures", len(keys), len(measures))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, fmt.Errorf("rmi: keys not strictly increasing at %d", i)
		}
	}
	if stages == nil {
		stages = DefaultStages
	}
	if len(stages) == 0 || stages[0] != 1 {
		return nil, fmt.Errorf("rmi: stage widths must start with 1")
	}
	cf := make([]float64, len(keys))
	run := 0.0
	for i, m := range measures {
		run += m
		cf[i] = run
	}
	ix := &Index{
		total: run,
		keyLo: keys[0],
		keyHi: keys[len(keys)-1],
	}
	ix.train(keys, cf, stages)
	if withFallback {
		arr, err := kca.New(keys, measures)
		if err != nil {
			return nil, err
		}
		ix.exact = arr
	}
	return ix, nil
}

// BuildCount is BuildSum with unit measures.
func BuildCount(keys []float64, stages []int, withFallback bool) (*Index, error) {
	ones := make([]float64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return BuildSum(keys, ones, stages, withFallback)
}

// BuildCountWithGuarantee doubles the leaf-stage width (starting from the
// default structure) until every leaf error is ≤ delta, so Lemma 2 holds
// with the requested δ. maxLeaves caps the search (default 1<<18).
func BuildCountWithGuarantee(keys []float64, delta float64, maxLeaves int, withFallback bool) (*Index, error) {
	ones := make([]float64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return BuildSumWithGuarantee(keys, ones, delta, maxLeaves, withFallback)
}

// BuildSumWithGuarantee is the SUM counterpart of BuildCountWithGuarantee.
func BuildSumWithGuarantee(keys, measures []float64, delta float64, maxLeaves int, withFallback bool) (*Index, error) {
	if maxLeaves <= 0 {
		maxLeaves = 1 << 18
	}
	leaves := DefaultStages[len(DefaultStages)-1]
	for {
		stages := append(append([]int(nil), DefaultStages[:len(DefaultStages)-1]...), leaves)
		ix, err := BuildSum(keys, measures, stages, withFallback)
		if err != nil {
			return nil, err
		}
		if ix.delta <= delta || leaves >= maxLeaves || leaves >= len(keys) {
			return ix, nil
		}
		leaves *= 2
	}
}

// train fits every stage. Routing during training matches routing at query
// time: the model index at stage j+1 is the clamped scaled prediction of
// the stage-j model that owns the key.
func (ix *Index) train(keys, cf []float64, widths []int) {
	n := len(keys)
	numStages := len(widths)
	ix.stages = make([][]Model, numStages)
	// assignment[i] = model index of point i at the current stage.
	assignment := make([]int, n)
	global := fitLinear(keys, cf, nil)
	for s := 0; s < numStages; s++ {
		width := widths[s]
		ix.stages[s] = make([]Model, width)
		// Group points by assigned model.
		buckets := make([][]int, width)
		for i := 0; i < n; i++ {
			m := assignment[i]
			if m >= width {
				m = width - 1
			}
			buckets[m] = append(buckets[m], i)
		}
		for m := 0; m < width; m++ {
			if len(buckets[m]) == 0 {
				// Empty model: inherit the global fit so routing through it
				// stays sensible.
				ix.stages[s][m] = global
				continue
			}
			ix.stages[s][m] = fitLinear(keys, cf, buckets[m])
		}
		if s == numStages-1 {
			// Leaf errors.
			ix.leafErr = make([]float64, width)
			for m := 0; m < width; m++ {
				worst := 0.0
				for _, i := range buckets[m] {
					e := cf[i] - ix.stages[s][m].predict(keys[i])
					if e < 0 {
						e = -e
					}
					if e > worst {
						worst = e
					}
				}
				ix.leafErr[m] = worst
				if worst > ix.delta {
					ix.delta = worst
				}
			}
			return
		}
		// Route to the next stage.
		nextWidth := widths[s+1]
		for i := 0; i < n; i++ {
			m := assignment[i]
			if m >= width {
				m = width - 1
			}
			assignment[i] = ix.route(ix.stages[s][m].predict(keys[i]), nextWidth)
		}
	}
}

// route maps a CF prediction onto a model index of a stage with the given
// width (Kraska et al.'s scaled prediction).
func (ix *Index) route(pred float64, width int) int {
	if ix.total <= 0 {
		return 0
	}
	m := int(pred / ix.total * float64(width))
	if m < 0 {
		return 0
	}
	if m >= width {
		return width - 1
	}
	return m
}

// fitLinear least-squares fits cf ~ a + b·key over the given subset
// (nil = all points).
func fitLinear(keys, cf []float64, subset []int) Model {
	var sx, sy, sxx, sxy float64
	var cnt float64
	visit := func(i int) {
		x, y := keys[i], cf[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		cnt++
	}
	if subset == nil {
		for i := range keys {
			visit(i)
		}
	} else {
		for _, i := range subset {
			visit(i)
		}
	}
	if cnt == 0 {
		return Model{}
	}
	det := cnt*sxx - sx*sx
	if det == 0 {
		return Model{A: sy / cnt}
	}
	b := (cnt*sxy - sx*sy) / det
	a := (sy - b*sx) / cnt
	return Model{A: a, B: b}
}

// CF evaluates the approximate cumulative function at k (clamped to
// [0, total]).
func (ix *Index) CF(k float64) float64 {
	if k < ix.keyLo {
		return 0
	}
	if k > ix.keyHi {
		k = ix.keyHi
	}
	m := 0
	last := len(ix.stages) - 1
	for s := 0; s < last; s++ {
		m = ix.route(ix.stages[s][m].predict(k), len(ix.stages[s+1]))
	}
	v := ix.stages[last][m].predict(k)
	if v < 0 {
		return 0
	}
	if v > ix.total {
		return ix.total
	}
	return v
}

// RangeSum answers the approximate SUM/COUNT over (lq, uq].
func (ix *Index) RangeSum(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	return ix.CF(uq) - ix.CF(lq)
}

// RangeSumRel applies the Lemma 3 gate (with δ = the global max leaf error)
// and falls back to the exact KCA.
func (ix *Index) RangeSumRel(lq, uq, epsRel float64) (val float64, usedExact bool, err error) {
	if epsRel <= 0 {
		return 0, false, fmt.Errorf("rmi: non-positive relative error %g", epsRel)
	}
	a := ix.RangeSum(lq, uq)
	if a >= 2*ix.delta*(1+1/epsRel) {
		return a, false, nil
	}
	if ix.exact == nil {
		return 0, false, ErrNoFallback
	}
	return ix.exact.RangeSum(lq, uq), true, nil
}

// Delta returns the achieved max leaf error (the effective δ).
func (ix *Index) Delta() float64 { return ix.delta }

// NumLeaves returns the leaf-stage width.
func (ix *Index) NumLeaves() int { return len(ix.stages[len(ix.stages)-1]) }

// NumStages returns the number of stages.
func (ix *Index) NumStages() int { return len(ix.stages) }

// SizeBytes reports the structure footprint: two float64 per model plus the
// per-leaf error array.
func (ix *Index) SizeBytes() int {
	total := 0
	for _, st := range ix.stages {
		total += 16 * len(st)
	}
	return total + 8*len(ix.leafErr)
}
