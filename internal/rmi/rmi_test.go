package rmi

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[float64]bool, n)
	for len(set) < n {
		// Bimodal to make CF non-linear.
		var v float64
		if rng.Float64() < 0.5 {
			v = rng.NormFloat64()*100 - 500
		} else {
			v = rng.NormFloat64()*300 + 900
		}
		set[math.Round(v*100)/100] = true
	}
	keys := make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

func TestValidation(t *testing.T) {
	if _, err := BuildCount(nil, nil, false); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BuildSum([]float64{1, 2}, []float64{1}, nil, false); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BuildSum([]float64{2, 1}, []float64{1, 1}, nil, false); err == nil {
		t.Error("unsorted keys should error")
	}
	if _, err := BuildCount([]float64{1, 2}, []int{5, 10}, false); err == nil {
		t.Error("stage widths not starting at 1 should error")
	}
}

func TestDeltaIsTrueMaxError(t *testing.T) {
	keys := genKeys(5000, 1)
	ix, err := BuildCount(keys, []int{1, 10, 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	cf := 0.0
	for _, k := range keys {
		cf++
		if e := math.Abs(ix.CF(k) - cf); e > worst {
			worst = e
		}
	}
	if worst > ix.Delta()+1e-6 {
		t.Errorf("observed error %g exceeds reported delta %g", worst, ix.Delta())
	}
}

func TestGuaranteedBuildMeetsDelta(t *testing.T) {
	keys := genKeys(8000, 2)
	const target = 25.0
	ix, err := BuildCountWithGuarantee(keys, target, 1<<16, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Delta() > target {
		t.Fatalf("guaranteed build delta %g > target %g (leaves %d)", ix.Delta(), target, ix.NumLeaves())
	}
	// Lemma 2 then holds with εabs = 2δ.
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 400; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got := ix.RangeSum(l, u)
		want := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				want++
			}
		}
		if math.Abs(got-want) > 2*target+1e-6 {
			t.Fatalf("|%g − %g| > 2δ", got, want)
		}
	}
}

func TestRelativeGuarantee(t *testing.T) {
	keys := genKeys(6000, 4)
	ix, err := BuildCountWithGuarantee(keys, 30, 1<<16, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	approx := 0
	for q := 0; q < 300; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, usedExact, err := ix.RangeSumRel(l, u, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				want++
			}
		}
		if usedExact {
			if got != want {
				t.Fatalf("exact path wrong")
			}
			continue
		}
		approx++
		if want == 0 || math.Abs(got-want)/want > 0.05+1e-9 {
			t.Fatalf("relative error violated: got %g want %g", got, want)
		}
	}
	if approx == 0 {
		t.Fatal("approximate path never used")
	}
	nofb, _ := BuildCount(keys, nil, false)
	if _, _, err := nofb.RangeSumRel(keys[0], keys[1], 1e-12); err != ErrNoFallback {
		t.Errorf("expected ErrNoFallback, got %v", err)
	}
	if _, _, err := ix.RangeSumRel(keys[0], keys[1], 0); err == nil {
		t.Error("non-positive εrel should error")
	}
}

func TestMoreLeavesSmallerError(t *testing.T) {
	keys := genKeys(8000, 6)
	prev := math.Inf(1)
	for _, leaves := range []int{10, 100, 1000} {
		ix, err := BuildCount(keys, []int{1, 10, leaves}, false)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Delta() > prev*1.5 {
			t.Errorf("leaves=%d delta %g ≫ previous %g", leaves, ix.Delta(), prev)
		}
		prev = ix.Delta()
	}
}

func TestStructureIntrospection(t *testing.T) {
	keys := genKeys(2000, 7)
	ix, err := BuildCount(keys, []int{1, 10, 50}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumStages() != 3 || ix.NumLeaves() != 50 {
		t.Errorf("structure = %d stages / %d leaves", ix.NumStages(), ix.NumLeaves())
	}
	if ix.SizeBytes() != 16*(1+10+50)+8*50 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
}

func TestCFBoundaries(t *testing.T) {
	keys := genKeys(1000, 8)
	ix, _ := BuildCount(keys, nil, false)
	if got := ix.CF(keys[0] - 100); got != 0 {
		t.Errorf("CF below domain = %g", got)
	}
	top := ix.CF(keys[len(keys)-1] + 100)
	if top < float64(len(keys))-ix.Delta()-1 || top > float64(len(keys))+1e-9 {
		t.Errorf("CF above domain = %g, want ≈%d (clamped)", top, len(keys))
	}
	if got := ix.RangeSum(5, 1); got != 0 {
		t.Errorf("inverted range = %g", got)
	}
}

func TestSumWithMeasures(t *testing.T) {
	keys := genKeys(2000, 9)
	measures := make([]float64, len(keys))
	rng := rand.New(rand.NewSource(10))
	for i := range measures {
		measures[i] = rng.Float64() * 10
	}
	ix, err := BuildSumWithGuarantee(keys, measures, 100, 1<<16, false)
	if err != nil {
		t.Fatal(err)
	}
	rngQ := rand.New(rand.NewSource(11))
	for q := 0; q < 200; q++ {
		l := keys[rngQ.Intn(len(keys))]
		u := keys[rngQ.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got := ix.RangeSum(l, u)
		want := 0.0
		for i, k := range keys {
			if k > l && k <= u {
				want += measures[i]
			}
		}
		if math.Abs(got-want) > 2*100+1e-6 {
			t.Fatalf("SUM |%g − %g| > 2δ", got, want)
		}
	}
}

func BenchmarkRangeSum(b *testing.B) {
	keys := genKeys(200000, 1)
	ix, _ := BuildCount(keys, nil, false)
	rng := rand.New(rand.NewSource(2))
	qs := make([][2]float64, 1024)
	for i := range qs {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		qs[i] = [2]float64{l, u}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&1023]
		ix.RangeSum(q[0], q[1])
	}
}
