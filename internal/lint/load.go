package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks the module from source using only the standard
// library: imports — stdlib and module-internal alike — are resolved
// through the compiled export data the go command already maintains in its
// build cache ("go list -export"), so no third-party loader and no network
// are involved. Each package's syntax is then type-checked from source
// with full comment and position information, which is what the analyzers
// need (export data has no comments, so annotations are only visible on
// the package being analyzed — all annotated fields and functions are
// package-internal, making this exact, not approximate).

// LoadModule loads every non-test package of the module containing dir.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	return load(root, modPath, dirs, func(rel string) string {
		if rel == "." {
			return modPath
		}
		return modPath + "/" + filepath.ToSlash(rel)
	})
}

// LoadPackages loads the given package directories (relative to the module
// root) as standalone packages with synthetic import paths — the fixture
// harness's entry point, so testdata packages can be analyzed without
// being part of the module build.
func LoadPackages(dir string, pkgDirs []string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return load(root, modPath, pkgDirs, func(rel string) string {
		return "fixture/" + filepath.ToSlash(rel)
	})
}

func load(root, modPath string, dirs []string, importPath func(rel string) string) (*Module, error) {
	fset := token.NewFileSet()
	type parsed struct {
		path  string
		files []*ast.File
	}
	var pkgs []parsed
	imports := map[string]bool{}
	for _, rel := range dirs {
		files, err := parseDir(fset, filepath.Join(root, rel))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					imports[p] = true
				}
			}
		}
		pkgs = append(pkgs, parsed{path: importPath(rel), files: files})
	}
	exports, err := exportData(root, imports)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	m := &Module{Dir: root, Path: modPath, Fset: fset}
	for _, p := range pkgs {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", p.path, err)
		}
		m.Pkgs = append(m.Pkgs, &Package{
			Path: p.path, Fset: fset, Files: p.files, Pkg: tpkg, Info: info,
		})
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// packageDirs lists every directory under root holding non-test Go files,
// skipping testdata, vendor, hidden, and underscore-prefixed trees — the
// same exclusions the go tool applies to ./... patterns.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, rel)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseDir parses every non-test Go file in dir, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// exportData asks the go command for the compiled export data of the given
// import paths and their transitive dependencies. The "unsafe" pseudo-
// package needs no data (go/types models it natively), and paths internal
// to the module being analyzed resolve through the same mechanism — the
// go command builds them on demand and caches the result.
func exportData(root string, imports map[string]bool) (map[string]string, error) {
	args := []string{"list", "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}"}
	var paths []string
	for p := range imports {
		if p != "unsafe" {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	sort.Strings(paths)
	cmd := exec.Command("go", append(args, paths...)...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("lint: go list -export: %w%s", err, detail)
	}
	exports := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		if p, f, ok := strings.Cut(strings.TrimSpace(line), "="); ok && f != "" {
			exports[p] = f
		}
	}
	return exports, nil
}
