// Package lint is the project-specific static-analysis suite behind
// cmd/polyfit-lint. It mechanically enforces the load-bearing invariants
// that no compiler checks and that -race and the oracle harness only catch
// probabilistically:
//
//   - atomicmix: a field accessed through sync/atomic anywhere in the
//     module must never be plainly read or written elsewhere, and a field
//     of an atomic.* type must only be touched through its methods — the
//     lock-free snapshot-swap pointer and every server counter stay
//     race-free by construction.
//   - lockguard: a field annotated "// guarded by <mu>" is only accessed
//     while that mutex is held (intra-procedural; a function whose doc
//     says "callers hold <mu>" is checked under that assumption).
//   - boundset: every function returning a Result must assign its Bound
//     on all non-error return paths unless annotated //polyfit:exact —
//     the paper's (ε,δ)-guarantee is only as trustworthy as the code that
//     reports it.
//   - errwrap: in packages that declare sentinel errors in an errors.go
//     file, exported error-returning functions must wrap a sentinel with
//     %w — naked errors.New and unwrapped fmt.Errorf are flagged.
//   - floatfree: a function annotated //polyfit:nofloat must contain no
//     float operations, literals, or conversions, so the packed
//     encoding's build-time certification and query-time bucketing can
//     never diverge through float rounding.
//   - syncclose: write-opened files must have their Sync and Close error
//     results checked (module-wide), and in internal/persist a written
//     file must be fsynced before the rename/ack that makes it durable.
//
// Findings are suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>] reason
//
// on the flagged line or the line directly above it. The reason is
// mandatory: an ignore without one is itself reported.
//
// The suite is stdlib-only (go/parser, go/ast, go/types); the loader
// resolves imports through compiled export data the go command already
// maintains (see load.go). Test files are not analyzed: the invariants
// live in production code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one type-checked, comment-preserving package of the module.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the full unit of analysis: every non-test package, one shared
// FileSet, one consistent type universe.
type Module struct {
	Dir  string // module root (where go.mod lives)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package
}

// Analyzer is one named invariant check. Run sees the whole module, so
// cross-package checks (atomicmix) and per-package ones use one shape.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		LockGuard,
		BoundSet,
		ErrWrap,
		FloatFree,
		SyncClose,
	}
}

// Run executes the given analyzers over the module, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed suppressions (no reason) are reported as findings themselves.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup, bad := collectIgnores(m, known)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		for _, d := range a.Run(m) {
			if !sup.covers(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- //lint:ignore suppressions ---------------------------------------------

// suppressions maps analyzer name -> file -> set of suppressed lines.
type suppressions map[string]map[string]map[int]bool

func (s suppressions) add(analyzer, file string, line int) {
	byFile := s[analyzer]
	if byFile == nil {
		byFile = make(map[string]map[int]bool)
		s[analyzer] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = make(map[int]bool)
		byFile[file] = lines
	}
	lines[line] = true
}

func (s suppressions) covers(analyzer string, pos token.Position) bool {
	return s[analyzer][pos.Filename][pos.Line]
}

// collectIgnores scans every comment for "//lint:ignore <names> reason"
// directives. A directive suppresses the named analyzers on its own line
// and on the line directly below it (the usual "comment above the
// statement" placement). Directives missing a reason or naming an unknown
// analyzer are returned as findings so broken suppressions cannot silently
// disable checks.
func collectIgnores(m *Module, known map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore: need \"//lint:ignore <analyzer>[,<analyzer>] reason\"",
						})
						continue
					}
					for _, name := range strings.Split(fields[0], ",") {
						if !known[name] {
							bad = append(bad, Diagnostic{
								Analyzer: "lint",
								Pos:      pos,
								Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
							})
							continue
						}
						sup.add(name, pos.Filename, pos.Line)
						sup.add(name, pos.Filename, pos.Line+1)
					}
				}
			}
		}
	}
	return sup, bad
}

// --- annotation + AST helpers ------------------------------------------------

// hasDirective reports whether the function's doc comment carries the
// given machine-readable directive (e.g. "polyfit:nofloat"). Directives
// are written as their own "//polyfit:..." comment line, no space after
// the slashes, matching the go:build / go:generate convention.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedBy returns the mutex name a struct field is annotated with
// ("// guarded by <mu>" in its doc or trailing line comment), or "".
func guardedBy(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if mm := guardedByRe.FindStringSubmatch(cg.Text()); mm != nil {
			return mm[1]
		}
	}
	return ""
}

var callersHoldRe = regexp.MustCompile(`[Cc]allers?\b[^.]*\bhold\w*\s+(?:\w+\.)?(\w+)`)

// callersHold returns the mutex name a function's doc comment declares as
// held on entry ("Callers hold d.mu", "caller must hold mu", ...), or "".
func callersHold(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	if mm := callersHoldRe.FindStringSubmatch(fd.Doc.Text()); mm != nil {
		return mm[1]
	}
	return ""
}

// fieldKey identifies a struct field across packages by name rather than
// object identity: objects imported through export data are distinct from
// the ones created by source type-checking, so identity cannot be used
// module-wide.
func fieldKey(recv types.Type, field *types.Var) string {
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		pkg := ""
		if obj.Pkg() != nil {
			pkg = obj.Pkg().Path()
		}
		return pkg + "." + obj.Name() + "." + field.Name()
	}
	// Anonymous struct: fall back to the field's declaration position,
	// unique within one load.
	return fmt.Sprintf("anon@%d.%s", field.Pos(), field.Name())
}

// varKey identifies a package-level variable by path, a local by position.
func varKey(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return fmt.Sprintf("local@%d.%s", v.Pos(), v.Name())
}

// exprKey renders the base expression of a selector chain as a stable
// string ("d", "s.inner"), resolving the root identifier to its object so
// shadowing cannot alias two different bases. Returns "" for bases that
// are not identifier/selector chains (calls, index expressions, ...).
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("%s@%d", e.Name, obj.Pos())
		}
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	case *ast.StarExpr:
		return exprKey(info, e.X)
	default:
		return ""
	}
}

// pkgOf resolves a qualified identifier's package: for `atomic.AddInt64`,
// pkgOf(info, "atomic" ident) returns "sync/atomic".
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// stdCall matches a call of the form pkg.Fn(...) where pkg resolves to
// pkgPath, returning the function name.
func stdCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkgPathOf(info, id) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// deref strips pointers.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedPathName returns (package path, type name) of a named type, after
// stripping pointers; ok is false for unnamed types.
func namedPathName(t types.Type) (string, string, bool) {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return "", "", false
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg, obj.Name(), true
}

// inspectParents walks the AST in source order invoking fn with each node
// and its ancestor stack (innermost last).
func inspectParents(root ast.Node, fn func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package, fn func(file *ast.File, fd *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// exprString renders an expression compactly for messages.
func exprString(e ast.Expr) string { return types.ExprString(e) }
