// Package atomicmixclean shows the sanctioned uses the atomicmix analyzer
// must accept: typed atomics through their methods, address-taking, and a
// //lint:ignore suppression with a reason.
package atomicmixclean

import "sync/atomic"

type counters struct {
	hits atomic.Int64
}

func (c *counters) bump() {
	c.hits.Add(1)
}

func (c *counters) read() int64 {
	return c.hits.Load()
}

func watch(p *atomic.Int64) int64 {
	return p.Load()
}

func (c *counters) watchSelf() int64 {
	return watch(&c.hits)
}

var generation atomic.Uint64

func gen() uint64 {
	return generation.Load()
}

type legacy struct {
	raw int64
}

func (l *legacy) inc() {
	atomic.AddInt64(&l.raw, 1)
}

func (l *legacy) drain() int64 {
	//lint:ignore atomicmix read happens after all writer goroutines have joined
	return l.raw
}
