// Package atomicmixbad seeds every violation shape the atomicmix analyzer
// must catch: plain access of function-style atomic targets (field and
// package variable) and non-method use of typed atomics.
package atomicmixbad

import "sync/atomic"

type counters struct {
	hits int64
	ctr  atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return c.hits // want "plain access of c.hits"
}

func (c *counters) reset() {
	c.ctr = atomic.Int64{} // want "plain write of atomic field"
}

func (c *counters) snapshot() atomic.Int64 {
	return c.ctr // want "value copy of atomic field"
}

var generation uint64

func bumpGen() {
	atomic.AddUint64(&generation, 1)
}

func readGen() uint64 {
	return generation // want "plain access of generation"
}
