// Package boundsetclean shows the sanctioned shapes: explicit Bound keys,
// Bound assigned before return, error-path returns with a dead Result,
// delegation to a checked helper, and a //polyfit:exact opt-out.
package boundsetclean

import "errors"

type Result struct {
	Value float64
	Bound float64
}

var errNegative = errors.New("boundsetclean: negative key")

func lookup(k float64) Result {
	if k < 0 {
		return Result{Value: 0, Bound: 1}
	}
	var r Result
	r.Value = k
	r.Bound = 0.5
	return r
}

func lookupErr(k float64) (Result, error) {
	if k < 0 {
		return Result{}, errNegative
	}
	return Result{Value: k, Bound: 1}, nil
}

func delegate(k float64) Result {
	return lookup(k)
}

// exactLookup answers exactly; a zero Bound is the honest value.
//
//polyfit:exact
func exactLookup(k float64) Result {
	return Result{Value: k}
}
