// Package boundsetbad seeds Result returns that never establish Bound: a
// composite literal missing the field and a variable never assigned one.
package boundsetbad

type Result struct {
	Value float64
	Bound float64
}

func lookup(k float64) Result {
	if k < 0 {
		return Result{Value: 0} // want "composite literal without Bound"
	}
	var r Result
	r.Value = k
	return r // want "variable r never has Bound assigned"
}
