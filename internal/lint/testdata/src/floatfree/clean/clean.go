// Package floatfreeclean keeps its annotated function entirely on the
// integer grid; float code outside the directive is not checked.
package floatfreeclean

// locate is sort.Search specialised to the uint32 lane — pure integers.
//
//polyfit:nofloat
func locate(q uint32, cells []uint32) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cells[mid] <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// quantize is float code outside the directive — out of scope.
func quantize(key, lo, step float64) uint32 {
	return uint32((key - lo) / step)
}
