// Package floatfreebad seeds float contamination inside //polyfit:nofloat
// functions: float parameters used, conversions, and literals.
package floatfreebad

// locate maps a key onto the grid but leaks through float arithmetic.
//
//polyfit:nofloat
func locate(key float64, lo float64, step float64) uint32 {
	g := (key - lo) / step // want "use of float variable"
	return uint32(g)       // want "use of float variable"
}

// half rounds via floats instead of integer shifts.
//
//polyfit:nofloat
func half(n int) int {
	return int(float64(n) * 0.5) // want "conversion to float|float literal"
}
