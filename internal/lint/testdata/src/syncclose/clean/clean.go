// Package persist (clean half) shows the snapshot-write idiom the real
// durability layer uses: write, fsync, explicit checked Close, with the
// deferred Close kept as error-path cleanup.
package persist

import "os"

func writeDurable(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func readAll(path string) ([]byte, error) {
	return os.ReadFile(path)
}
