// Package persist is a fixture mimicking the durability layer; the package
// name opts it into rule 3 (a written file must be fsynced). It seeds all
// three syncclose violations: discarded Sync/Close errors, a bare deferred
// Close as the only close, and write-without-fsync.
package persist

import "os"

func writeBare(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Sync()  // want "discards the error from Sync"
	f.Close() // want "discards the error from Close"
	return nil
}

func writeDeferred(path string, b []byte) error {
	f, err := os.Create(path) // want "written but never Synced"
	if err != nil {
		return err
	}
	defer f.Close() // want "closed only by this bare defer"
	_, err = f.Write(b)
	return err
}
