package errwrapbad

import "errors"

// ErrBad is the package's classification sentinel; declaring it here opts
// the package into the errwrap contract.
var ErrBad = errors.New("errwrapbad: bad input")
