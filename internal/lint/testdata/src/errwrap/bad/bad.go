// Package errwrapbad declares a sentinel in errors.go and then constructs
// unclassifiable errors on an exported path — both shapes errwrap flags.
package errwrapbad

import (
	"errors"
	"fmt"
)

func Do(x int) error {
	if x < 0 {
		return errors.New("negative input") // want "errors.New in exported Do"
	}
	if x > 10 {
		return fmt.Errorf("too big: %d", x) // want "fmt.Errorf without %w in exported Do"
	}
	return nil
}
