package errwrapclean

import "errors"

// ErrBad is the package's classification sentinel.
var ErrBad = errors.New("errwrapclean: bad input")
