// Package errwrapclean wraps its sentinel with %w on the exported path;
// unexported helpers remain free to build internal detail errors.
package errwrapclean

import "fmt"

func Do(x int) error {
	if x < 0 {
		return fmt.Errorf("%w: %d", ErrBad, x)
	}
	return nil
}

func helper(x int) error {
	return fmt.Errorf("helper detail: %d", x)
}

var _ = helper
