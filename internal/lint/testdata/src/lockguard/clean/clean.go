// Package lockguardclean shows the sanctioned access patterns: lock with
// deferred unlock, explicit lock/unlock bracketing, and a helper whose doc
// declares "callers hold" the mutex.
package lockguardclean

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (b *box) inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) set(v int) {
	b.mu.Lock()
	b.n = v
	b.mu.Unlock()
}

// incLocked bumps the counter. Callers hold b.mu.
func (b *box) incLocked() {
	b.n++
}

func (b *box) viaHelper() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.incLocked()
}
