// Package lockguardbad seeds accesses of a "guarded by mu" field without
// the mutex held: never locked, and after an explicit unlock.
package lockguardbad

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (b *box) read() int {
	return b.n // want "b.n is guarded by mu"
}

func (b *box) useAfterUnlock() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.n = 0 // want "b.n is guarded by mu"
}
