package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the all-or-nothing rule of sync/atomic: a memory
// location accessed atomically anywhere in the module must be accessed
// atomically everywhere. Two shapes are covered:
//
//   - Function-style atomics: if any call passes &x.f (or &v) to a
//     sync/atomic function, every other read or write of that field or
//     package variable is flagged. A plain load of an atomically-written
//     counter is a data race the compiler happily accepts and -race only
//     catches under the right interleaving.
//
//   - Typed atomics (atomic.Int64, atomic.Pointer[T], ...): the value may
//     only be used as a method-call receiver or have its address taken.
//     Assigning over it (s.ctr = atomic.Int64{}) or copying it out is a
//     plain access to the underlying word and is flagged. This is what
//     keeps the dynamic index's snapshot-swap pointer and every server
//     counter honest.
//
// Composite-literal field keys are exempt: initialization before the
// value is shared is the documented construction idiom.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be plainly read or written",
	Run:  runAtomicMix,
}

// atomicFuncs are the sync/atomic function-name prefixes whose first
// argument is the address of the word being operated on.
func isAtomicFunc(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// atomicTypes are the typed atomics of sync/atomic.
func isAtomicType(t types.Type) bool {
	pkg, name, ok := namedPathName(t)
	if !ok || pkg != "sync/atomic" {
		return false
	}
	switch name {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

func runAtomicMix(m *Module) []Diagnostic {
	// Pass A: collect every location that is the target of a sync/atomic
	// function call, module-wide, and sanction those occurrences.
	atomicKeys := map[string]token.Position{} // key -> first atomic-use site
	sanctioned := map[token.Pos]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn, ok := stdCall(pkg.Info, call, "sync/atomic")
				if !ok || !isAtomicFunc(fn) {
					return true
				}
				target := unwrapAddr(pkg.Info, call.Args[0])
				if target == nil {
					return true
				}
				if key := accessKey(pkg.Info, target); key != "" {
					if _, seen := atomicKeys[key]; !seen {
						atomicKeys[key] = m.Fset.Position(call.Pos())
					}
					sanctioned[target.Pos()] = true
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			inspectParents(f, func(n ast.Node, parents []ast.Node) {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// Mixed plain access of a function-style atomic target.
					if key := accessKey(info, n); key != "" && !sanctioned[n.Pos()] {
						if first, ok := atomicKeys[key]; ok {
							diags = append(diags, Diagnostic{
								Analyzer: "atomicmix",
								Pos:      m.Fset.Position(n.Pos()),
								Message: fmt.Sprintf("plain access of %s, which is accessed atomically at %s:%d — use sync/atomic here too",
									exprString(n), first.Filename, first.Line),
							})
						}
					}
					// Typed atomic used as a value (IsValue excludes the many
					// places "atomic.Int64" appears as a type expression).
					if tv, ok := info.Types[ast.Expr(n)]; ok && tv.IsValue() && isAtomicType(tv.Type) {
						if d := typedAtomicMisuse(m, n, parents); d != nil {
							diags = append(diags, *d)
						}
					}
				case *ast.Ident:
					if skipIdent(n, parents) {
						return
					}
					v, ok := info.Uses[n].(*types.Var)
					if !ok || v.IsField() {
						return
					}
					if key := varKey(v); !sanctioned[n.Pos()] {
						if first, ok := atomicKeys[key]; ok {
							diags = append(diags, Diagnostic{
								Analyzer: "atomicmix",
								Pos:      m.Fset.Position(n.Pos()),
								Message: fmt.Sprintf("plain access of %s, which is accessed atomically at %s:%d — use sync/atomic here too",
									n.Name, first.Filename, first.Line),
							})
						}
					}
				}
			})
		}
	}
	return diags
}

// typedAtomicMisuse reports how a typed-atomic value is being used outside
// its methods, or nil if the use is sanctioned (method receiver, address
// taken, or an inner link of a longer selector chain).
func typedAtomicMisuse(m *Module, n *ast.SelectorExpr, parents []ast.Node) *Diagnostic {
	if len(parents) == 0 {
		return nil
	}
	flag := func(what string) *Diagnostic {
		return &Diagnostic{
			Analyzer: "atomicmix",
			Pos:      m.Fset.Position(n.Pos()),
			Message: fmt.Sprintf("%s of atomic field %s — typed atomics must only be used through their methods",
				what, exprString(n)),
		}
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SelectorExpr:
		// x.ctr.Load(): n is the X of a method selection — fine.
		if p.X == n {
			return nil
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return nil // &x.ctr handed to something that will use it atomically
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(n) {
				return flag("plain write")
			}
		}
		return flag("value copy")
	case *ast.ParenExpr:
		return nil // inner node; the parenthesized expr is re-checked itself
	}
	return flag("value copy")
}

// unwrapAddr digs the addressed location out of an atomic call's first
// argument: &x.f, (*unsafe.Pointer)(unsafe.Pointer(&x.f)), (&x.f), ...
// Returns the SelectorExpr or Ident naming the location, or nil.
func unwrapAddr(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			// Type conversion (the unsafe.Pointer dance); real calls don't
			// yield addressable atomic targets.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr, *ast.Ident:
			return x.(ast.Expr)
		default:
			return nil
		}
	}
}

// accessKey returns the module-wide identity key of the location an
// expression names: struct fields by (package, type, field), package-level
// variables by (package, name), locals by declaration position. Returns ""
// for expressions that are not stable locations (map/slice elements, ...).
func accessKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return fieldKey(sel.Recv(), v)
			}
			return ""
		}
		// Qualified package-level variable (pkg.Var).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return varKey(v)
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
			return varKey(v)
		}
	}
	return ""
}

// skipIdent filters identifier occurrences that are not value accesses:
// selector components (handled at the SelectorExpr level), composite
// literal field keys, and declaration names.
func skipIdent(n *ast.Ident, parents []ast.Node) bool {
	if len(parents) == 0 {
		return true
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SelectorExpr:
		return true // either pkg qualifier or field name; both handled above
	case *ast.KeyValueExpr:
		if p.Key == ast.Expr(n) {
			return true
		}
	case *ast.Field, *ast.ValueSpec, *ast.FuncDecl, *ast.TypeSpec, *ast.ImportSpec:
		return true
	}
	return false
}
