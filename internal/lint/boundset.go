package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BoundSet enforces the bound-certification contract: every function whose
// signature returns a Result (any named struct type called Result with a
// Bound field — polyfit.Result today, and any future package-local clone)
// must establish Bound on every non-error return path. The paper's (ε,δ)
// guarantee is only worth something if the code reporting it can be
// trusted, so "I forgot to set the bound" must be a CI failure, not a
// silently-zero field a caller mistakes for an exact answer.
//
// A return path satisfies the check when it returns
//
//   - a composite literal with an explicit Bound key (or all fields
//     positional),
//   - the result of a call (delegation: the callee is itself checked where
//     it is defined), or
//   - a variable that is assigned a Bound (v.Bound = ..., or v built from
//     a qualifying composite/call) somewhere in the function.
//
// Returns whose final value is a non-nil error expression are error paths
// and exempt: the Result there is dead by convention. Functions that
// legitimately return zero bounds everywhere document it with a
// //polyfit:exact directive, which turns the check off for that function.
var BoundSet = &Analyzer{
	Name: "boundset",
	Doc:  "functions returning Result must assign Bound on all non-error return paths",
	Run:  runBoundSet,
}

// isResultType reports whether t is (a pointer to) a named struct type
// called Result carrying a Bound field.
func isResultType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok || named.Obj().Name() != "Result" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Bound" {
			return true
		}
	}
	return false
}

func runBoundSet(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		funcDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			diags = append(diags, checkBoundSet(m, pkg, fd)...)
		})
	}
	return diags
}

func checkBoundSet(m *Module, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	info := pkg.Info
	if fd.Type.Results == nil {
		return nil
	}
	// Positions (flattened) of Result-typed results, and named result objs.
	var resultIdx []int
	var named []types.Object
	idx := 0
	for _, field := range fd.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		isRes := false
		if tv, ok := info.Types[field.Type]; ok {
			isRes = isResultType(tv.Type)
		}
		for i := 0; i < n; i++ {
			if isRes {
				resultIdx = append(resultIdx, idx)
				if len(field.Names) > 0 {
					named = append(named, info.Defs[field.Names[i]])
				}
			}
			idx++
		}
	}
	numResults := idx
	if len(resultIdx) == 0 {
		return nil
	}
	if hasDirective(fd, "polyfit:exact") {
		return nil
	}

	// Pass 1: variables whose Bound is established somewhere in the body.
	bounded := map[types.Object]bool{}
	markIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				bounded[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			// v.Bound = ...
			if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Bound" {
				markIdent(sel.X)
			}
		}
		// v = Result{...Bound...} / v, err = query(...)
		if len(as.Rhs) == 1 {
			if establishesBound(info, as.Rhs[0]) {
				for _, lhs := range as.Lhs {
					if tv, ok := info.Types[lhs]; ok && isResultType(tv.Type) {
						markIdent(lhs)
					}
				}
			}
		} else {
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && establishesBound(info, rhs) {
					markIdent(as.Lhs[i])
				}
			}
		}
		return true
	})

	// Pass 2: check each return of THIS function (function literals have
	// their own signatures and are out of scope for the directive-based
	// contract — their Results come from helpers that are checked).
	var diags []Diagnostic
	flag := func(n ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Analyzer: "boundset",
			Pos:      m.Fset.Position(n.Pos()),
			Message: fmt.Sprintf("%s returns Result without establishing Bound on this path (%s) — set Bound, or annotate the function //polyfit:exact",
				fd.Name.Name, what),
		})
	}
	inspectParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || insideFuncLit(parents) {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: the named result must have been bounded.
			for _, obj := range named {
				if obj != nil && !bounded[obj] {
					flag(ret, "naked return of "+obj.Name())
				}
			}
			return
		}
		if len(ret.Results) != numResults {
			return // single call expr spanning all results: delegation
		}
		if isErrorPath(info, ret.Results[len(ret.Results)-1]) {
			return
		}
		for _, i := range resultIdx {
			e := unparen(ret.Results[i])
			if u, ok := e.(*ast.UnaryExpr); ok {
				e = unparen(u.X)
			}
			switch e := e.(type) {
			case *ast.CompositeLit:
				if !compositeSetsBound(info, e) {
					flag(e, "composite literal without Bound")
				}
			case *ast.Ident:
				obj := info.ObjectOf(e)
				if obj != nil && !bounded[obj] {
					flag(e, "variable "+e.Name+" never has Bound assigned")
				}
			}
			// Calls, selectors, index expressions: conservatively accepted —
			// the producing function is checked at its own definition.
		}
	})
	return diags
}

// establishesBound reports whether an assigned RHS value arrives with its
// Bound already certified: any call result, or a composite literal that
// sets Bound.
func establishesBound(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		return true
	case *ast.CompositeLit:
		return compositeSetsBound(info, e)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.TypeAssertExpr:
		return true // copied from an already-certified value
	}
	return false
}

// compositeSetsBound reports whether a Result composite literal supplies
// Bound: explicitly by key, or implicitly by being fully positional.
func compositeSetsBound(info *types.Info, cl *ast.CompositeLit) bool {
	if !isCompositeOfResult(info, cl) {
		return true // not a Result literal (e.g. a slice of them); out of scope here
	}
	keyed := false
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Bound" {
				return true
			}
		}
	}
	if !keyed && len(cl.Elts) > 0 {
		// Positional literals must name every field to compile.
		return true
	}
	return false
}

func isCompositeOfResult(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[ast.Expr(cl)]
	return ok && isResultType(tv.Type)
}

// isErrorPath reports whether the final returned expression is a non-nil
// error — the convention for "the other results are dead".
func isErrorPath(info *types.Info, last ast.Expr) bool {
	tv, ok := info.Types[last]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return false
	}
	if id, ok := unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func insideFuncLit(parents []ast.Node) bool {
	for _, p := range parents {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
