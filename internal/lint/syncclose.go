package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SyncClose enforces the durability hygiene around write-opened files —
// the bugs it hunts are the quiet kind where data is acknowledged and
// then lost because an error result went into the void:
//
//   - Rule 1 (module-wide): a statement-level f.Sync() or f.Close() on a
//     file-typed value discards the one error the kernel uses to report
//     that your bytes did not make it. Both must be error-checked.
//
//   - Rule 2 (module-wide): a write-opened file (os.Create, CreateTemp,
//     or OpenFile with a writing flag — on the real os package or the
//     persist.FS seam alike) whose only Close is a bare `defer f.Close()`
//     never has its Close checked at all. A deferred Close is fine as the
//     error-path cleanup idiom, but only next to an explicit error-checked
//     Close on the happy path.
//
//   - Rule 3 (persist packages only): a write-opened file that is written
//     (f.Write/f.WriteString) must also be Synced in the same function —
//     in the durability layer, close-without-fsync before the rename/ack
//     is exactly the crash window the snapshot+WAL design exists to close.
//
// "File-typed" means *os.File or any named interface with both
// `Sync() error` and `Close() error` (persist.File and the fault-injection
// wrappers). Types with Close alone (HTTP bodies, listeners, WALs) are out
// of scope — their Close semantics are not durability-bearing.
var SyncClose = &Analyzer{
	Name: "syncclose",
	Doc:  "write-opened files must have error-checked Sync and Close",
	Run:  runSyncClose,
}

// isFileLike reports whether t is *os.File or an interface with
// Sync() error and Close() error.
func isFileLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if pkg, name, ok := namedPathName(t); ok && pkg == "os" && name == "File" {
		return true
	}
	iface, ok := deref(t).Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasSync, hasClose := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Sync":
			hasSync = true
		case "Close":
			hasClose = true
		}
	}
	return hasSync && hasClose
}

func runSyncClose(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		inPersist := pkg.Pkg.Name() == "persist"
		funcDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			diags = append(diags, checkSyncClose(m, pkg, fd, inPersist)...)
		})
	}
	return diags
}

func checkSyncClose(m *Module, pkg *Package, fd *ast.FuncDecl, inPersist bool) []Diagnostic {
	info := pkg.Info

	// Survey pass: write-opened locals, plus per-variable usage facts.
	writeOpened := map[types.Object]ast.Node{} // obj -> open site
	written := map[types.Object]bool{}         // f.Write / f.WriteString called
	synced := map[types.Object]bool{}          // f.Sync called (any form)
	checkedClose := map[types.Object]bool{}    // f.Close with its error consumed
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isWriteOpen(call) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && isFileLike(obj.Type()) {
					writeOpened[obj] = as
				}
			}
		}
		return true
	})
	receiverObj := func(call *ast.CallExpr) (types.Object, string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil, sel.Sel.Name, true
		}
		return info.ObjectOf(id), sel.Sel.Name, true
	}
	inspectParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		obj, method, ok := receiverObj(call)
		if !ok || obj == nil {
			return
		}
		switch method {
		case "Write", "WriteString":
			written[obj] = true
		case "Sync":
			synced[obj] = true
		case "Close":
			if len(parents) > 0 {
				switch parents[len(parents)-1].(type) {
				case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
					return
				}
			}
			checkedClose[obj] = true
		}
	})

	var diags []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "syncclose",
			Pos:      m.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Rule 1: statement-level Sync/Close on any file-like value.
	inspectParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
			return
		}
		if tv, ok := info.Types[sel.X]; ok && isFileLike(tv.Type) {
			flag(call, "%s discards the error from %s on a file — check it (a failed %s means the bytes may not be durable)",
				exprString(call.Fun), sel.Sel.Name, sel.Sel.Name)
		}
	})

	// Rule 2: write-opened file whose Close is only ever deferred bare.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := def.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isWrite := writeOpened[obj]; isWrite && !checkedClose[obj] {
			flag(def, "write-opened file %s is closed only by this bare defer — its Close error is never checked; close explicitly and check, keeping the defer for error-path cleanup",
				id.Name)
		}
		return true
	})

	// Rule 3 (persist only): written but never fsynced.
	if inPersist {
		for obj, site := range writeOpened {
			if written[obj] && !synced[obj] {
				flag(site, "write-opened file %s is written but never Synced in this function — fsync before the rename/ack that makes it durable",
					obj.Name())
			}
		}
	}
	return diags
}

// isWriteOpen matches calls that open a file for writing: Create and
// CreateTemp by name (os or any FS seam), and OpenFile whose flags mention
// a writing mode.
func isWriteOpen(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	switch name {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) >= 2 {
			flags := exprString(call.Args[1])
			for _, w := range []string{"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC"} {
				if strings.Contains(flags, w) {
					return true
				}
			}
		}
	}
	return false
}
