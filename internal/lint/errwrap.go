package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrWrap enforces the sentinel-error contract in packages that have
// committed to it: any package with an errors.go file declaring Err*
// sentinels promises callers they can classify every failure with
// errors.Is instead of matching message text. Inside such a package,
// exported error-returning functions (and exported methods — including
// those on unexported types, which is how the public Index interface is
// implemented) must not construct unclassifiable errors:
//
//   - errors.New inside a function body is flagged: the dynamic error it
//     creates matches no sentinel (package-level sentinel definitions in
//     errors.go are declarations, not function bodies, and are exempt).
//   - fmt.Errorf whose format string has no %w verb is flagged: it
//     discards whatever classification the cause carried.
//
// Packages without an errors.go sentinel file are out of scope until they
// declare one — the contract is opt-in but, once opted in, total.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "exported error paths in sentinel-declaring packages must wrap a sentinel with %w",
	Run:  runErrWrap,
}

func runErrWrap(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		if !declaresSentinels(m, pkg) {
			continue
		}
		funcDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if !fd.Name.IsExported() || !returnsError(pkg, fd) {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := stdCall(pkg.Info, call, "errors"); ok && name == "New" {
					diags = append(diags, Diagnostic{
						Analyzer: "errwrap",
						Pos:      m.Fset.Position(call.Pos()),
						Message:  fmt.Sprintf("errors.New in exported %s — wrap a sentinel from errors.go with %%w so callers can errors.Is it", fd.Name.Name),
					})
				}
				if name, ok := stdCall(pkg.Info, call, "fmt"); ok && name == "Errorf" && len(call.Args) > 0 {
					if lit, ok := unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if format, err := strconv.Unquote(lit.Value); err == nil && !strings.Contains(format, "%w") {
							diags = append(diags, Diagnostic{
								Analyzer: "errwrap",
								Pos:      m.Fset.Position(call.Pos()),
								Message:  fmt.Sprintf("fmt.Errorf without %%w in exported %s — wrap a sentinel from errors.go so the error stays classifiable", fd.Name.Name),
							})
						}
					}
				}
				return true
			})
		})
	}
	return diags
}

// declaresSentinels reports whether the package has an errors.go file with
// at least one package-level Err* variable.
func declaresSentinels(m *Module, pkg *Package) bool {
	for _, f := range pkg.Files {
		if filepath.Base(m.Fset.Position(f.Pos()).Filename) != "errors.go" {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Err") {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// returnsError reports whether any result of the function is of type error.
func returnsError(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
