package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the suite's own acceptance bar: the shipped tree must
// carry zero findings. Any reintroduced violation fails here (and in the
// blocking `make lint` CI step) with the exact diagnostic.
func TestRepoIsClean(t *testing.T) {
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range lint.Run(m, lint.Analyzers()) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestAnalyzerFixtures checks every analyzer against its golden fixtures:
// each `// want "regex"` comment in testdata/src/<name>/... must be matched
// by a finding on that line, and no finding may appear on a line without a
// matching want. The clean fixture packages double as regression tests for
// the sanctioned idioms (and for //lint:ignore suppression).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			runFixture(t, a)
		})
	}
}

func runFixture(t *testing.T, a *lint.Analyzer) {
	rel := filepath.Join("internal", "lint", "testdata", "src", a.Name)
	dirs := []string{filepath.Join(rel, "bad"), filepath.Join(rel, "clean")}
	m, err := lint.LoadPackages(".", dirs)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	wants := fixtureWants(t, m.Dir, dirs)
	matched := map[*want]bool{}
	for _, d := range lint.Run(m, []*lint.Analyzer{a}) {
		k := posKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// fixtureWants scans the fixture sources for `// want "regex"` comments.
func fixtureWants(t *testing.T, moduleRoot string, dirs []string) map[posKey][]*want {
	wants := map[posKey][]*want{}
	for _, dir := range dirs {
		abs := filepath.Join(moduleRoot, dir)
		ents, err := os.ReadDir(abs)
		if err != nil {
			t.Fatalf("read fixture dir: %v", err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(abs, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				mm := wantRe.FindStringSubmatch(line)
				if mm == nil {
					continue
				}
				re, err := regexp.Compile(mm[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				k := posKey{path, i + 1}
				wants[k] = append(wants[k], &want{re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixtures declare no wants — bad fixture must seed at least one")
	}
	return wants
}

// TestSuppressionHygiene checks that broken //lint:ignore directives are
// themselves findings: a missing reason and an unknown analyzer name must
// not silently disable checks.
func TestSuppressionHygiene(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

import "sync/atomic"

var n int64

func inc() { atomic.AddInt64(&n, 1) }

func bad() int64 {
	//lint:ignore atomicmix
	return n
}

func worse() int64 {
	//lint:ignore nosuchanalyzer because reasons
	return n
}
`
	// The fixture loader resolves packages relative to the module root, so
	// materialize the broken package inside it.
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("load module for root discovery: %v", err)
	}
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		// TempDir is outside the module; fall back to a scratch dir inside
		// this package's testdata tree.
		scratch := filepath.Join(m.Dir, "internal", "lint", "testdata", "scratch-broken")
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(scratch)
		dir = scratch
		rel, _ = filepath.Rel(m.Dir, dir)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fm, err := lint.LoadPackages(".", []string{rel})
	if err != nil {
		t.Fatalf("load broken fixture: %v", err)
	}
	diags := lint.Run(fm, lint.Analyzers())
	var saw []string
	for _, d := range diags {
		saw = append(saw, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	find := func(sub string) bool {
		for _, s := range saw {
			if strings.Contains(s, sub) {
				return true
			}
		}
		return false
	}
	if !find("malformed //lint:ignore") {
		t.Errorf("reason-less ignore not reported; diagnostics: %v", saw)
	}
	if !find("unknown analyzer") {
		t.Errorf("unknown-analyzer ignore not reported; diagnostics: %v", saw)
	}
	// The reason-less directive must not have suppressed the finding it sat
	// on, and the unknown name never could.
	plain := 0
	for _, d := range diags {
		if d.Analyzer == "atomicmix" {
			plain++
		}
	}
	if plain != 2 {
		t.Errorf("want 2 surviving atomicmix findings under broken ignores, got %d; diagnostics: %v", plain, saw)
	}
}
