package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockGuard enforces "// guarded by <mu>" field annotations: every access
// of an annotated field must happen while the named mutex (on the same
// receiver chain) is held. The analysis is intra-procedural and walks each
// function in source order, counting Lock/RLock and Unlock/RUnlock calls
// on the annotated mutex; a deferred Unlock keeps the lock held to the end
// of the function, and a function whose doc comment says "callers hold
// <mu>" (any phrasing matching that verb) is analyzed with the receiver's
// mutex pre-held — the convention the codebase already uses for *Locked
// helpers.
//
// Known approximations, chosen to favor false negatives over false
// positives in a blocking CI check: a Lock inside a conditional branch is
// treated as held for the rest of the function, and function literals
// inherit the lock state at their position (they are usually invoked
// synchronously under the lock; a literal that escapes to a goroutine
// should not touch guarded fields anyway).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated \"guarded by <mu>\" are only accessed with that mutex held",
	Run:  runLockGuard,
}

func runLockGuard(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		guarded := collectGuarded(pkg)
		if len(guarded) == 0 {
			continue
		}
		funcDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			diags = append(diags, checkLockGuard(m, pkg, fd, guarded)...)
		})
	}
	return diags
}

// collectGuarded maps fieldKey -> mutex name for every annotated field.
func collectGuarded(pkg *Package) map[string]string {
	guarded := map[string]string{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardedBy(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[fieldKey(tn.Type(), v)] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func checkLockGuard(m *Module, pkg *Package, fd *ast.FuncDecl, guarded map[string]string) []Diagnostic {
	info := pkg.Info
	held := map[string]int{} // "<baseKey>.<mu>" -> acquisition depth

	// "Callers hold <mu>": the receiver's mutex is held on entry. For a
	// plain function the annotation refers to a package-level or otherwise
	// unqualified mutex (base key "").
	if mu := callersHold(fd); mu != "" {
		base := ""
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			name := fd.Recv.List[0].Names[0]
			if obj := info.Defs[name]; obj != nil {
				base = fmt.Sprintf("%s@%d", name.Name, obj.Pos())
			}
		}
		held[base+"."+mu]++
	}

	// lockTarget decomposes mu.Lock() / base.mu.Lock() receivers.
	lockTarget := func(x ast.Expr) (string, bool) {
		switch x := x.(type) {
		case *ast.SelectorExpr:
			base := exprKey(info, x.X)
			if base == "" {
				return "", false
			}
			return base + "." + x.Sel.Name, true
		case *ast.Ident:
			return "." + x.Name, true
		}
		return "", false
	}

	var diags []Diagnostic
	inspectParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if key, ok := lockTarget(sel.X); ok {
					held[key]++
				}
			case "Unlock", "RUnlock":
				if len(parents) > 0 {
					if _, isDefer := parents[len(parents)-1].(*ast.DeferStmt); isDefer {
						return // releases at return; held for the rest of the body
					}
				}
				if key, ok := lockTarget(sel.X); ok {
					held[key]--
				}
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok {
				return
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok || !v.IsField() {
				return
			}
			mu, ok := guarded[fieldKey(sel.Recv(), v)]
			if !ok {
				return
			}
			base := exprKey(info, n.X)
			if held[base+"."+mu] > 0 || held["."+mu] > 0 {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: "lockguard",
				Pos:      m.Fset.Position(n.Pos()),
				Message: fmt.Sprintf("%s is guarded by %s, which is not held here (lock it, or document \"callers hold %s\")",
					exprString(n), mu, mu),
			})
		}
	})
	return diags
}
