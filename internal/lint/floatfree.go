package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFree enforces //polyfit:nofloat function annotations: the packed
// encoding's locate path (locatePackedQ, the grid-shift second-level
// subs, the integer gallop) must stay entirely in integer grid space, so
// the segment a key buckets into at query time is bit-for-bit the segment
// the build-time certification assigned it — a single float rounding
// difference between the two would silently void the certified δ.
//
// Inside an annotated function every float literal, every use of a
// float-typed variable/field, every conversion to a float type, and every
// call returning a float is flagged. (A call taking float arguments is
// caught through the argument expressions themselves.)
var FloatFree = &Analyzer{
	Name: "floatfree",
	Doc:  "//polyfit:nofloat functions must contain no float ops, literals, or conversions",
	Run:  runFloatFree,
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloatFree(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		funcDecls(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if !hasDirective(fd, "polyfit:nofloat") {
				return
			}
			flag := func(n ast.Node, what string) {
				diags = append(diags, Diagnostic{
					Analyzer: "floatfree",
					Pos:      m.Fset.Position(n.Pos()),
					Message:  fmt.Sprintf("%s in //polyfit:nofloat function %s", what, fd.Name.Name),
				})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BasicLit:
					if n.Kind == token.FLOAT {
						flag(n, "float literal "+n.Value)
					}
				case *ast.Ident:
					if obj := info.Uses[n]; obj != nil {
						if _, isVar := obj.(*types.Var); isVar && isFloatType(obj.Type()) {
							flag(n, "use of float variable "+n.Name)
						}
						if c, isConst := obj.(*types.Const); isConst && isFloatType(c.Type()) {
							flag(n, "use of float constant "+n.Name)
						}
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal && isFloatType(sel.Obj().Type()) {
						flag(n, "access of float field "+exprString(n))
						return false // the base expression is not itself a float use
					}
				case *ast.CallExpr:
					if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
						if isFloatType(tv.Type) {
							flag(n, "conversion to float "+exprString(n.Fun))
						}
						return true
					}
					if tv, ok := info.Types[ast.Expr(n)]; ok && isFloatType(tv.Type) {
						flag(n, "call returning float "+exprString(n.Fun))
					}
				}
				return true
			})
		})
	}
	return diags
}
