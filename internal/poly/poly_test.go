package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestEvalAgainstNaive(t *testing.T) {
	p := New(3, -2, 0.5, 1.25)
	for _, x := range []float64{-2, -1, 0, 0.5, 1, 3.25} {
		naive := 3 - 2*x + 0.5*x*x + 1.25*x*x*x
		if got := p.Eval(x); !almostEq(got, naive, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, naive)
		}
	}
}

func TestEvalZeroAndConstant(t *testing.T) {
	if got := (Poly{}).Eval(42); got != 0 {
		t.Errorf("zero poly Eval = %g, want 0", got)
	}
	if got := New(7).Eval(-3); got != 7 {
		t.Errorf("constant Eval = %g, want 7", got)
	}
}

func TestDegreeAndTrim(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{Poly{}, -1},
		{Poly{0}, -1},
		{Poly{5}, 0},
		{Poly{0, 1}, 1},
		{Poly{1, 2, 0, 0}, 1},
		{Poly{0, 0, 3}, 2},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := New(1, 2, 0, 0); len(got) != 2 {
		t.Errorf("New should trim trailing zeros, got len %d", len(got))
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 4, 3, 2) // 5 + 4x + 3x^2 + 2x^3
	d := p.Derivative()  // 4 + 6x + 6x^2
	want := New(4, 6, 6)
	if len(d) != len(want) {
		t.Fatalf("Derivative len = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Derivative[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if got := New(7).Derivative(); len(got) != 0 {
		t.Errorf("constant derivative should be zero poly")
	}
}

func TestAddScaleMul(t *testing.T) {
	p := New(1, 2)
	q := New(0, 0, 3)
	sum := p.Add(q)
	for _, x := range []float64{-1, 0, 2} {
		if !almostEq(sum.Eval(x), p.Eval(x)+q.Eval(x), 1e-12) {
			t.Errorf("Add mismatch at %g", x)
		}
	}
	sc := p.Scale(-2)
	if !almostEq(sc.Eval(3), -2*p.Eval(3), 1e-12) {
		t.Errorf("Scale mismatch")
	}
	prod := p.Mul(q)
	for _, x := range []float64{-1.5, 0.25, 2} {
		if !almostEq(prod.Eval(x), p.Eval(x)*q.Eval(x), 1e-12) {
			t.Errorf("Mul mismatch at %g", x)
		}
	}
}

func TestQuoRem(t *testing.T) {
	p := New(-6, 11, -6, 1) // (x-1)(x-2)(x-3)
	d := New(-2, 1)         // x-2
	q, r := quoRem(p, d)
	if r.Degree() >= 0 {
		t.Errorf("remainder should be zero, got %v", r)
	}
	// q should be (x-1)(x-3) = 3 -4x + x^2
	want := New(3, -4, 1)
	for i := range want {
		if !almostEq(q[i], want[i], 1e-10) {
			t.Errorf("q[%d] = %g, want %g", i, q[i], want[i])
		}
	}
}

func TestRootsCubicKnown(t *testing.T) {
	p := New(-6, 11, -6, 1) // roots 1, 2, 3
	roots := p.RootsInInterval(0, 4)
	if len(roots) != 3 {
		t.Fatalf("got %d roots (%v), want 3", len(roots), roots)
	}
	for i, want := range []float64{1, 2, 3} {
		if !almostEq(roots[i], want, 1e-8) {
			t.Errorf("root[%d] = %g, want %g", i, roots[i], want)
		}
	}
}

func TestRootsSubInterval(t *testing.T) {
	p := New(-6, 11, -6, 1) // roots 1, 2, 3
	roots := p.RootsInInterval(1.5, 2.5)
	if len(roots) != 1 || !almostEq(roots[0], 2, 1e-8) {
		t.Fatalf("got %v, want [2]", roots)
	}
	if got := p.RootsInInterval(3.5, 10); len(got) != 0 {
		t.Fatalf("got %v, want none", got)
	}
}

func TestRootsAtEndpoints(t *testing.T) {
	p := New(-2, 1) // root at 2
	if got := p.RootsInInterval(2, 5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("endpoint root lost: %v", got)
	}
	if got := p.RootsInInterval(0, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("endpoint root lost: %v", got)
	}
}

func TestRootsMultiple(t *testing.T) {
	// (x-1)^2 (x+2): double root at 1 reported once.
	p := New(-1, 1).Mul(New(-1, 1)).Mul(New(2, 1))
	roots := p.RootsInInterval(-3, 3)
	if len(roots) != 2 {
		t.Fatalf("got %v, want two distinct roots", roots)
	}
	if !almostEq(roots[0], -2, 1e-7) || !almostEq(roots[1], 1, 1e-7) {
		t.Fatalf("got %v, want [-2 1]", roots)
	}
}

func TestRootsNoRealRoots(t *testing.T) {
	p := New(1, 0, 1) // x^2+1
	if got := p.RootsInInterval(-10, 10); len(got) != 0 {
		t.Fatalf("x^2+1 has no real roots, got %v", got)
	}
}

// Property: every reported root evaluates to ~0, and building a polynomial
// from random roots recovers them.
func TestRootsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(4)
		roots := make([]float64, k)
		p := New(1)
		for i := range roots {
			roots[i] = -1 + 2*rng.Float64()
			p = p.Mul(New(-roots[i], 1))
		}
		got := p.RootsInInterval(-1.1, 1.1)
		for _, r := range got {
			if v := p.Eval(r); math.Abs(v) > 1e-6 {
				t.Fatalf("iter %d: reported root %g has residual %g (p=%v)", iter, r, v, p)
			}
		}
		// Every true root must be matched by a reported one.
		for _, want := range roots {
			found := false
			for _, g := range got {
				if math.Abs(g-want) < 1e-5 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: root %g missed, got %v (true %v)", iter, want, got, roots)
			}
		}
	}
}

func TestMaxOnInterval(t *testing.T) {
	// -(x-1)^2 + 4 has max 4 at x=1.
	p := New(3, 2, -1)
	v, x := p.MaxOnInterval(-2, 4)
	if !almostEq(v, 4, 1e-10) || !almostEq(x, 1, 1e-8) {
		t.Fatalf("max = (%g at %g), want (4 at 1)", v, x)
	}
	// Restricted to [2,4] the max moves to the left endpoint.
	v, x = p.MaxOnInterval(2, 4)
	if !almostEq(v, p.Eval(2), 1e-12) || x != 2 {
		t.Fatalf("restricted max = (%g at %g), want (%g at 2)", v, x, p.Eval(2))
	}
}

func TestMinOnInterval(t *testing.T) {
	p := New(3, 2, -1).Scale(-1)
	v, x := p.MinOnInterval(-2, 4)
	if !almostEq(v, -4, 1e-10) || !almostEq(x, 1, 1e-8) {
		t.Fatalf("min = (%g at %g), want (-4 at 1)", v, x)
	}
}

// Property: MaxOnInterval dominates a dense grid sample.
func TestMaxDominatesGridProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		deg := 1 + rng.Intn(5)
		c := make([]float64, deg+1)
		for i := range c {
			c[i] = -2 + 4*rng.Float64()
		}
		p := New(c...)
		lo := -1 + rng.Float64()
		hi := lo + 0.1 + rng.Float64()
		v, arg := p.MaxOnInterval(lo, hi)
		if arg < lo-1e-9 || arg > hi+1e-9 {
			t.Fatalf("argmax %g outside [%g,%g]", arg, lo, hi)
		}
		for i := 0; i <= 400; i++ {
			x := lo + (hi-lo)*float64(i)/400
			if p.Eval(x) > v+1e-7*(1+math.Abs(v)) {
				t.Fatalf("iter %d: grid point %g beats reported max (%g > %g), p=%v", iter, x, p.Eval(x), v, p)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := NewFrame(100, 300)
	if got := f.Normalize(100); got != -1 {
		t.Errorf("Normalize(lo) = %g, want -1", got)
	}
	if got := f.Normalize(300); got != 1 {
		t.Errorf("Normalize(hi) = %g, want 1", got)
	}
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEq(f.Denormalize(f.Normalize(x)), x, 1e-12)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFrameDegenerate(t *testing.T) {
	f := NewFrame(5, 5)
	if f.HalfWidth <= 0 {
		t.Fatalf("degenerate frame must have positive half-width")
	}
	if got := f.Normalize(5); got != 0 {
		t.Errorf("Normalize(center) = %g, want 0", got)
	}
}

func TestFramedPolyEval(t *testing.T) {
	fp := FramedPoly{F: NewFrame(0, 10), P: New(1, 2, 3)}
	// at x=10 → t=1 → 1+2+3 = 6
	if got := fp.Eval(10); !almostEq(got, 6, 1e-12) {
		t.Errorf("FramedPoly.Eval = %g, want 6", got)
	}
	v, x := fp.MaxOnInterval(0, 10)
	if !almostEq(v, 6, 1e-12) || !almostEq(x, 10, 1e-9) {
		t.Errorf("framed max = (%g at %g), want (6 at 10)", v, x)
	}
}

func TestNumTerms2D(t *testing.T) {
	want := []int{1, 3, 6, 10, 15}
	for deg, w := range want {
		if got := NumTerms2D(deg); got != w {
			t.Errorf("NumTerms2D(%d) = %d, want %d", deg, got, w)
		}
		if got := len(Terms2D(deg)); got != w {
			t.Errorf("len(Terms2D(%d)) = %d, want %d", deg, got, w)
		}
	}
}

func TestPoly2DEvalAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for deg := 0; deg <= 5; deg++ {
		p := NewPoly2D(deg)
		for i := range p.C {
			p.C[i] = -1 + 2*rng.Float64()
		}
		terms := Terms2D(deg)
		for iter := 0; iter < 50; iter++ {
			u := -2 + 4*rng.Float64()
			v := -2 + 4*rng.Float64()
			naive := 0.0
			for k, e := range terms {
				naive += p.C[k] * math.Pow(u, float64(e[0])) * math.Pow(v, float64(e[1]))
			}
			if got := p.Eval(u, v); !almostEq(got, naive, 1e-9) {
				t.Fatalf("deg %d: Eval(%g,%g) = %g, want %g", deg, u, v, got, naive)
			}
		}
	}
}

func TestBasis2DMatchesEval(t *testing.T) {
	deg := 3
	p := NewPoly2D(deg)
	for i := range p.C {
		p.C[i] = float64(i + 1)
	}
	basis := make([]float64, NumTerms2D(deg))
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		u, v := rng.NormFloat64(), rng.NormFloat64()
		Basis2D(deg, u, v, basis)
		dot := 0.0
		for k := range basis {
			dot += p.C[k] * basis[k]
		}
		if !almostEq(dot, p.Eval(u, v), 1e-9) {
			t.Fatalf("basis dot %g != eval %g", dot, p.Eval(u, v))
		}
	}
}

func TestFramedPoly2D(t *testing.T) {
	fp := FramedPoly2D{
		F: NewFrame2D(0, 2, 0, 4),
		P: Poly2D{Deg: 1, C: []float64{1, 2, 3}}, // 1 + 2u + 3v
	}
	// (2,4) → (1,1) → 1+2+3 = 6
	if got := fp.Eval(2, 4); !almostEq(got, 6, 1e-12) {
		t.Errorf("FramedPoly2D.Eval = %g, want 6", got)
	}
	// (0,0) → (-1,-1) → 1-2-3 = -4
	if got := fp.Eval(0, 0); !almostEq(got, -4, 1e-12) {
		t.Errorf("FramedPoly2D.Eval = %g, want -4", got)
	}
}

func TestPolyString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{Poly{}, "0"},
		{New(1.5), "1.5"},
		{New(0, 2), "2x"},
		{New(1, -2, 0, 3), "1 - 2x + 3x^3"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.p, got, c.want)
		}
	}
}

func BenchmarkEvalDeg2(b *testing.B) {
	p := New(1, 2, 3)
	x := 0.37
	for i := 0; i < b.N; i++ {
		_ = p.Eval(x)
	}
}

func BenchmarkEval2DDeg2(b *testing.B) {
	p := NewPoly2D(2)
	for i := range p.C {
		p.C[i] = float64(i)
	}
	for i := 0; i < b.N; i++ {
		_ = p.Eval(0.3, -0.7)
	}
}
