package poly

// Frame is an affine change of variable t = (x - Center) / HalfWidth mapping
// a key interval [lo, hi] onto [-1, 1]. All minimax fits run in this frame:
// raw keys (e.g. epoch timestamps ~1e9) make the monomial basis of LP (9)
// catastrophically ill-conditioned at degree ≥ 3, while on [-1,1] monomials
// up to degree ~8 are perfectly usable. The frame is stored alongside the
// fitted coefficients and applied on every evaluation.
type Frame struct {
	Center    float64
	HalfWidth float64
}

// NewFrame returns the frame mapping [lo, hi] onto [-1, 1]. Degenerate
// intervals (lo == hi) map to a unit half-width so evaluation stays finite.
func NewFrame(lo, hi float64) Frame {
	c := 0.5 * (lo + hi)
	h := 0.5 * (hi - lo)
	if h <= 0 {
		h = 1
	}
	return Frame{Center: c, HalfWidth: h}
}

// Normalize maps a raw key into the frame.
func (f Frame) Normalize(x float64) float64 { return (x - f.Center) / f.HalfWidth }

// Denormalize maps a frame coordinate back to a raw key.
func (f Frame) Denormalize(t float64) float64 { return t*f.HalfWidth + f.Center }

// FramedPoly is a univariate polynomial expressed in a normalised frame:
// value(x) = P(f.Normalize(x)). This is the unit stored in PolyFit segments.
type FramedPoly struct {
	F Frame
	P Poly
}

// Eval evaluates the framed polynomial at raw key x.
func (fp FramedPoly) Eval(x float64) float64 { return fp.P.Eval(fp.F.Normalize(x)) }

// MaxOnInterval returns the maximum of the framed polynomial over the raw-key
// interval [lo, hi] and the raw key attaining it.
func (fp FramedPoly) MaxOnInterval(lo, hi float64) (float64, float64) {
	v, t := fp.P.MaxOnInterval(fp.F.Normalize(lo), fp.F.Normalize(hi))
	return v, fp.F.Denormalize(t)
}

// MinOnInterval returns the minimum of the framed polynomial over the raw-key
// interval [lo, hi] and the raw key attaining it.
func (fp FramedPoly) MinOnInterval(lo, hi float64) (float64, float64) {
	v, t := fp.P.MinOnInterval(fp.F.Normalize(lo), fp.F.Normalize(hi))
	return v, fp.F.Denormalize(t)
}

// NumCoeffs returns the number of stored coefficients (degree + 1).
func (fp FramedPoly) NumCoeffs() int { return len(fp.P) }
