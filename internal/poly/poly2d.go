package poly

// Poly2D is a bivariate polynomial of total degree ≤ Deg:
//
//	P(u, v) = Σ_{i+j ≤ Deg} C[k] u^i v^j
//
// matching the surface form of Section VI of the paper. Terms are ordered by
// total degree then by the power of u: (0,0), (1,0), (0,1), (2,0), (1,1),
// (0,2), ... so that C has NumTerms2D(Deg) entries.
type Poly2D struct {
	Deg int
	C   []float64
}

// NumTerms2D returns the number of monomials u^i v^j with i+j ≤ deg,
// i.e. (deg+1)(deg+2)/2.
func NumTerms2D(deg int) int { return (deg + 1) * (deg + 2) / 2 }

// Terms2D enumerates the exponent pairs (i, j) in the canonical order used
// by Poly2D.C.
func Terms2D(deg int) [][2]int {
	out := make([][2]int, 0, NumTerms2D(deg))
	for d := 0; d <= deg; d++ {
		for i := d; i >= 0; i-- {
			out = append(out, [2]int{i, d - i})
		}
	}
	return out
}

// NewPoly2D returns a zero bivariate polynomial of the given total degree.
func NewPoly2D(deg int) Poly2D {
	return Poly2D{Deg: deg, C: make([]float64, NumTerms2D(deg))}
}

// Eval evaluates the surface at (u, v). Powers are accumulated once per call;
// cost is O(NumTerms2D(Deg)).
func (p Poly2D) Eval(u, v float64) float64 {
	// Precompute powers up to Deg.
	var upow, vpow [16]float64 // Deg ≤ 15 is far beyond practical fits
	up, vp := upow[:p.Deg+1], vpow[:p.Deg+1]
	up[0], vp[0] = 1, 1
	for i := 1; i <= p.Deg; i++ {
		up[i] = up[i-1] * u
		vp[i] = vp[i-1] * v
	}
	var acc float64
	k := 0
	for d := 0; d <= p.Deg; d++ {
		for i := d; i >= 0; i-- {
			acc += p.C[k] * up[i] * vp[d-i]
			k++
		}
	}
	return acc
}

// Basis2D fills dst with the monomial basis values (u^i v^j) in canonical
// order for total degree deg. dst must have length NumTerms2D(deg).
func Basis2D(deg int, u, v float64, dst []float64) {
	var upow, vpow [16]float64
	up, vp := upow[:deg+1], vpow[:deg+1]
	up[0], vp[0] = 1, 1
	for i := 1; i <= deg; i++ {
		up[i] = up[i-1] * u
		vp[i] = vp[i-1] * v
	}
	k := 0
	for d := 0; d <= deg; d++ {
		for i := d; i >= 0; i-- {
			dst[k] = up[i] * vp[d-i]
			k++
		}
	}
}

// Frame2D normalises a rectangle [xlo,xhi]×[ylo,yhi] onto [-1,1]².
type Frame2D struct {
	U Frame
	V Frame
}

// NewFrame2D builds the frame for the given rectangle.
func NewFrame2D(xlo, xhi, ylo, yhi float64) Frame2D {
	return Frame2D{U: NewFrame(xlo, xhi), V: NewFrame(ylo, yhi)}
}

// FramedPoly2D is a bivariate polynomial evaluated in a normalised frame:
// value(x, y) = P(U.Normalize(x), V.Normalize(y)).
type FramedPoly2D struct {
	F Frame2D
	P Poly2D
}

// Eval evaluates the framed surface at raw coordinates (x, y).
func (fp FramedPoly2D) Eval(x, y float64) float64 {
	return fp.P.Eval(fp.F.U.Normalize(x), fp.F.V.Normalize(y))
}

// NumCoeffs returns the number of stored coefficients.
func (fp FramedPoly2D) NumCoeffs() int { return len(fp.P.C) }
