// Package poly provides dense univariate and bivariate polynomial algebra:
// Horner evaluation, differentiation, real-root isolation via Sturm chains,
// and interval extrema. It is the numeric substrate for PolyFit segments
// (evaluating fitted polynomials and maximising them over query sub-ranges,
// cf. Eq. 17 of the paper).
//
// All polynomials are represented in the monomial basis with coefficients
// ordered from the constant term upward: P(x) = c[0] + c[1]x + ... + c[d]x^d.
// Fitting code is expected to work in a normalised frame (see Frame) so that
// the monomial basis stays well conditioned.
package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a dense univariate polynomial; index i holds the coefficient of x^i.
// The zero value is the zero polynomial.
type Poly []float64

// New returns a polynomial with the given coefficients (constant term first),
// trimmed of trailing zero coefficients.
func New(coeffs ...float64) Poly {
	p := Poly(append([]float64(nil), coeffs...))
	return p.Trim()
}

// Trim removes trailing zero coefficients and returns the result. The zero
// polynomial trims to an empty slice.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Eval evaluates p at x using Horner's scheme.
func (p Poly) Eval(x float64) float64 {
	var acc float64
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + p[i]
	}
	return acc
}

// Derivative returns dP/dx.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = float64(i) * p[i]
	}
	return d.Trim()
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i := range q {
		out[i] += q[i]
	}
	return out.Trim()
}

// Scale returns s*p.
func (p Poly) Scale(s float64) Poly {
	out := make(Poly, len(p))
	for i := range p {
		out[i] = s * p[i]
	}
	return out.Trim()
}

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out.Trim()
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	return append(Poly(nil), p...)
}

// ComposeAffine returns q(t) = p(a + b·t): the polynomial re-expressed under
// the affine change of variable u = a + b·t. The degree never grows, so a
// fitted segment can be re-framed (e.g. onto quantized boundaries) without
// re-fitting. Built by Horner over the coefficient list: q := q·(a+b·t) + cᵢ.
func (p Poly) ComposeAffine(a, b float64) Poly {
	q := make(Poly, 0, len(p))
	for i := len(p) - 1; i >= 0; i-- {
		// q = q*(a + b·t), in place with one extra slot.
		q = append(q, 0)
		for k := len(q) - 1; k >= 1; k-- {
			q[k] = a*q[k] + b*q[k-1]
		}
		q[0] = a * q[0]
		q[0] += p[i]
	}
	return q.Trim()
}

// String renders the polynomial in human-readable form, e.g.
// "1.5 + 2x - 0.25x^3".
func (p Poly) String() string {
	t := p.Trim()
	if len(t) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range t {
		if c == 0 && len(t) > 1 {
			continue
		}
		switch {
		case first:
			first = false
			fmt.Fprintf(&b, "%g", c)
		case c >= 0:
			fmt.Fprintf(&b, " + %g", c)
		default:
			fmt.Fprintf(&b, " - %g", -c)
		}
		if i == 1 {
			b.WriteString("x")
		} else if i > 1 {
			fmt.Fprintf(&b, "x^%d", i)
		}
	}
	return b.String()
}

// quoRem computes polynomial division p = q*d + r with deg(r) < deg(d).
// d must be non-zero.
func quoRem(p, d Poly) (q, r Poly) {
	p = p.Trim()
	d = d.Trim()
	if len(d) == 0 {
		panic("poly: division by zero polynomial")
	}
	r = p.Clone()
	if len(r) < len(d) {
		return Poly{}, r
	}
	q = make(Poly, len(r)-len(d)+1)
	lead := d[len(d)-1]
	for len(r) >= len(d) {
		k := len(r) - len(d)
		f := r[len(r)-1] / lead
		q[k] = f
		for i := range d {
			r[k+i] -= f * d[i]
		}
		// The leading term cancels by construction; force it to zero to
		// keep rounding noise from stalling the loop.
		r[len(r)-1] = 0
		r = r.Trim()
	}
	return q, r.Trim()
}

// sturmChain builds the Sturm sequence of p: p0=p, p1=p', p_{i+1}=-rem(p_{i-1},p_i).
func sturmChain(p Poly) []Poly {
	p = p.Trim()
	chain := []Poly{p}
	d := p.Derivative()
	if len(d) == 0 {
		return chain
	}
	chain = append(chain, d)
	for {
		last := chain[len(chain)-1]
		prev := chain[len(chain)-2]
		_, r := quoRem(prev, last)
		r = r.Trim()
		if len(r) == 0 {
			break
		}
		// Normalise the remainder to unit leading coefficient magnitude to
		// stop coefficient blow-up over long chains; sign changes are
		// preserved under positive scaling.
		m := math.Abs(r[len(r)-1])
		if m > 0 && (m > 1e8 || m < 1e-8) {
			r = r.Scale(1 / m)
		}
		chain = append(chain, r.Scale(-1))
		if len(chain) > len(p)+2 {
			break // defensive: cannot exceed deg+1 entries
		}
	}
	return chain
}

// signChanges counts sign alternations of the chain evaluated at x,
// skipping zeros (standard Sturm convention).
func signChanges(chain []Poly, x float64) int {
	changes := 0
	prev := 0
	for _, q := range chain {
		v := q.Eval(x)
		s := 0
		if v > 0 {
			s = 1
		} else if v < 0 {
			s = -1
		}
		if s == 0 {
			continue
		}
		if prev != 0 && s != prev {
			changes++
		}
		prev = s
	}
	return changes
}

// RootsInInterval returns the distinct real roots of p inside [lo, hi],
// in ascending order. Roots are isolated with a Sturm chain and refined by
// bisection plus a final Newton polish. Multiple roots are reported once.
// The zero polynomial returns nil (every point is a root; callers treat a
// constant segment separately).
func (p Poly) RootsInInterval(lo, hi float64) []float64 {
	p = p.Trim()
	if len(p) == 0 || lo > hi {
		return nil
	}
	if len(p) == 1 {
		return nil // non-zero constant: no roots
	}
	if len(p) == 2 {
		r := -p[0] / p[1]
		if r >= lo && r <= hi {
			return []float64{r}
		}
		return nil
	}
	if len(p) == 3 {
		// Closed-form quadratic: the hot path for range-MAX queries, where
		// the derivative of the default degree-3 segment lands here.
		return quadraticRoots(p[0], p[1], p[2], lo, hi)
	}
	// Square-free part: p / gcd(p, p') — Sturm counting assumes square-free.
	sf := p.squareFree()
	chain := sturmChain(sf)
	var roots []float64
	// Nudge the interval ends off exact roots so the Sturm count is clean;
	// test the ends explicitly instead.
	const endEps = 1e-13
	span := hi - lo
	if span == 0 {
		if nearZero(p.Eval(lo), p, lo) {
			return []float64{lo}
		}
		return nil
	}
	adj := endEps * (1 + math.Abs(lo) + math.Abs(hi))
	a, b := lo, hi
	if sf.Eval(a) == 0 {
		roots = append(roots, a)
		a += adj
	}
	if sf.Eval(b) == 0 {
		b -= adj
	}
	var isolate func(a, b float64, na, nb int)
	isolate = func(a, b float64, na, nb int) {
		k := na - nb
		if k <= 0 || b-a <= 0 {
			return
		}
		if k == 1 || b-a < adj {
			r := refineRoot(sf, a, b)
			roots = append(roots, r)
			return
		}
		m := 0.5 * (a + b)
		if sf.Eval(m) == 0 {
			roots = append(roots, m)
			ml := m - adj
			mr := m + adj
			isolate(a, ml, na, signChanges(chain, ml))
			isolate(mr, b, signChanges(chain, mr), nb)
			return
		}
		nm := signChanges(chain, m)
		isolate(a, m, na, nm)
		isolate(m, b, nm, nb)
	}
	isolate(a, b, signChanges(chain, a), signChanges(chain, b))
	if sfb := hi; sf.Eval(sfb) == 0 {
		roots = append(roots, sfb)
	}
	// Sort (isolation emits in order except for the rare midpoint hits) and
	// de-duplicate.
	sortFloats(roots)
	out := roots[:0]
	for _, r := range roots {
		if r < lo-adj || r > hi+adj {
			continue
		}
		if r < lo {
			r = lo
		}
		if r > hi {
			r = hi
		}
		if len(out) == 0 || r-out[len(out)-1] > adj {
			out = append(out, r)
		}
	}
	return append([]float64(nil), out...)
}

// quadraticRoots returns the real roots of c + bx + ax² inside [lo, hi],
// using the numerically stable citardauq form for the smaller root.
func quadraticRoots(c, b, a, lo, hi float64) []float64 {
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	// q = -(b + sign(b)·√disc)/2 avoids cancellation.
	q := -0.5 * (b + math.Copysign(sq, b))
	var r1, r2 float64
	r1 = q / a
	if q != 0 {
		r2 = c / q
	} else {
		r2 = 0
	}
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	var out []float64
	if r1 >= lo && r1 <= hi {
		out = append(out, r1)
	}
	if r2 >= lo && r2 <= hi && r2 != r1 {
		out = append(out, r2)
	}
	return out
}

// squareFree returns p with repeated roots collapsed (p / gcd(p, p')).
func (p Poly) squareFree() Poly {
	d := p.Derivative()
	g := gcd(p, d)
	if g.Degree() <= 0 {
		return p
	}
	q, _ := quoRem(p, g)
	if q.Degree() < 1 {
		return p
	}
	return q
}

func gcd(a, b Poly) Poly {
	a, b = a.Trim(), b.Trim()
	for len(b) > 0 {
		_, r := quoRem(a, b)
		// Normalise to keep magnitudes sane.
		r = r.Trim()
		if len(r) > 0 {
			m := math.Abs(r[len(r)-1])
			if m > 0 {
				r = r.Scale(1 / m)
			}
		}
		a, b = b, r
		if a.Degree() <= 0 {
			break
		}
	}
	return a
}

// refineRoot narrows a bracketing interval with bisection, then polishes
// with a few Newton steps. If the interval does not bracket a sign change
// (possible for even-multiplicity roots of the original polynomial after
// square-free reduction this cannot happen), it falls back to the midpoint.
func refineRoot(p Poly, a, b float64) float64 {
	fa, fb := p.Eval(a), p.Eval(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if (fa > 0) == (fb > 0) {
		return 0.5 * (a + b)
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if m == a || m == b {
			break
		}
		fm := p.Eval(m)
		if fm == 0 {
			return m
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b, fb = m, fm
		}
	}
	r := 0.5 * (a + b)
	d := p.Derivative()
	for i := 0; i < 4; i++ {
		dv := d.Eval(r)
		if dv == 0 {
			break
		}
		nr := r - p.Eval(r)/dv
		if nr < a || nr > b {
			break
		}
		r = nr
	}
	return r
}

func nearZero(v float64, p Poly, x float64) bool {
	scale := 0.0
	xp := 1.0
	for _, c := range p {
		scale += math.Abs(c) * math.Abs(xp)
		xp *= x
	}
	return math.Abs(v) <= 1e-12*(1+scale)
}

func sortFloats(s []float64) {
	// insertion sort: root lists are tiny (≤ degree).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MaxOnInterval returns the maximum value of p over [lo, hi] and a point
// attaining it, found by evaluating the interval ends and the real critical
// points of p inside the interval ("simple calculus operations", Eq. 17).
func (p Poly) MaxOnInterval(lo, hi float64) (maxVal, argMax float64) {
	return p.extremum(lo, hi, true)
}

// MinOnInterval is the MIN counterpart of MaxOnInterval.
func (p Poly) MinOnInterval(lo, hi float64) (minVal, argMin float64) {
	return p.extremum(lo, hi, false)
}

func (p Poly) extremum(lo, hi float64, wantMax bool) (float64, float64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	best := p.Eval(lo)
	arg := lo
	consider := func(x float64) {
		v := p.Eval(x)
		if wantMax && v > best || !wantMax && v < best {
			best, arg = v, x
		}
	}
	consider(hi)
	d := p.Derivative()
	if d.Degree() >= 1 || (d.Degree() == 0 && d[0] == 0) {
		for _, r := range d.RootsInInterval(lo, hi) {
			consider(r)
		}
	}
	return best, arg
}
