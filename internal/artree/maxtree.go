// Package artree implements the exact aggregate-tree baselines of the paper:
// the 1D aggregate MAX tree of Section III-B2 / Figure 4 (also usable for
// MIN), and the 2D aggregate R-tree (aR-tree [46]) used for exact COUNT over
// rectangles in Section VII.
package artree

import (
	"fmt"
	"math"
	"sort"
)

// Agg selects which extremum a MaxTree maintains.
type Agg int

// Supported tree aggregates.
const (
	Max Agg = iota
	Min
)

// MaxTree is a static implicit segment tree over a key-sorted dataset that
// answers exact range MAX (or MIN) queries in O(log n): the traversal visits
// at most two branches per level exactly as described in Section III-B2.
type MaxTree struct {
	agg  Agg
	keys []float64
	// tree is a 1-indexed implicit binary heap layout over size leaves;
	// leaves [size, size+n) hold measures, internals hold child aggregates.
	tree []float64
	size int
	n    int
}

// NewMaxTree builds an aggregate tree over keys (sorted strictly ascending)
// and their measures.
func NewMaxTree(keys, measures []float64, agg Agg) (*MaxTree, error) {
	n := len(keys)
	if n == 0 || n != len(measures) {
		return nil, fmt.Errorf("artree: %d keys, %d measures", n, len(measures))
	}
	for i := 1; i < n; i++ {
		if keys[i] <= keys[i-1] {
			return nil, fmt.Errorf("artree: keys not strictly increasing at %d", i)
		}
	}
	size := 1
	for size < n {
		size *= 2
	}
	neutral := math.Inf(-1)
	if agg == Min {
		neutral = math.Inf(1)
	}
	tree := make([]float64, 2*size)
	for i := range tree {
		tree[i] = neutral
	}
	copy(tree[size:size+n], measures)
	for i := size - 1; i >= 1; i-- {
		tree[i] = combine(agg, tree[2*i], tree[2*i+1])
	}
	return &MaxTree{agg: agg, keys: keys, tree: tree, size: size, n: n}, nil
}

func combine(agg Agg, a, b float64) float64 {
	if agg == Max {
		return math.Max(a, b)
	}
	return math.Min(a, b)
}

// Query answers the exact Rmax/Rmin over the closed key range [l, u].
// ok is false when no record falls inside the range.
func (t *MaxTree) Query(l, u float64) (val float64, ok bool) {
	lo := sort.SearchFloat64s(t.keys, l)                                  // first index with key ≥ l
	hi := sort.SearchFloat64s(t.keys, math.Nextafter(u, math.Inf(1))) - 1 // last index with key ≤ u
	if lo > hi || lo >= t.n {
		return 0, false
	}
	return t.queryIdx(lo, hi), true
}

// queryIdx aggregates over the index range [lo, hi] (inclusive).
func (t *MaxTree) queryIdx(lo, hi int) float64 {
	res := math.Inf(-1)
	if t.agg == Min {
		res = math.Inf(1)
	}
	l, r := lo+t.size, hi+t.size+1
	for l < r {
		if l&1 == 1 {
			res = combine(t.agg, res, t.tree[l])
			l++
		}
		if r&1 == 1 {
			r--
			res = combine(t.agg, res, t.tree[r])
		}
		l >>= 1
		r >>= 1
	}
	return res
}

// Len returns the number of records.
func (t *MaxTree) Len() int { return t.n }

// SizeBytes reports the in-memory footprint.
func (t *MaxTree) SizeBytes() int { return 8*len(t.tree) + 8*len(t.keys) }
