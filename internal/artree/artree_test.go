package artree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genSorted(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	set := map[float64]bool{}
	for len(set) < n {
		set[math.Round(rng.Float64()*1e7)/100] = true
	}
	keys = make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	measures = make([]float64, n)
	for i := range measures {
		measures[i] = rng.Float64() * 1000
	}
	return keys, measures
}

func bruteMax(keys, measures []float64, l, u float64, agg Agg) (float64, bool) {
	best := math.Inf(-1)
	if agg == Min {
		best = math.Inf(1)
	}
	found := false
	for i, k := range keys {
		if k >= l && k <= u {
			found = true
			best = combine(agg, best, measures[i])
		}
	}
	return best, found
}

func TestMaxTreeValidation(t *testing.T) {
	if _, err := NewMaxTree(nil, nil, Max); err == nil {
		t.Error("empty input should error")
	}
	if _, err := NewMaxTree([]float64{1, 2}, []float64{1}, Max); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewMaxTree([]float64{2, 1}, []float64{1, 1}, Max); err == nil {
		t.Error("unsorted keys should error")
	}
}

func TestMaxTreeSmallKnown(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5}
	vals := []float64{10, 50, 20, 40, 30}
	tr, err := NewMaxTree(keys, vals, Max)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		l, u, want float64
		ok         bool
	}{
		{1, 5, 50, true},
		{3, 5, 40, true},
		{3, 3, 20, true},
		{2.5, 4.5, 40, true},
		{6, 9, 0, false},
		{0, 0.5, 0, false},
	}
	for _, c := range cases {
		got, ok := tr.Query(c.l, c.u)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Query(%g,%g) = (%g,%v), want (%g,%v)", c.l, c.u, got, ok, c.want, c.ok)
		}
	}
}

func TestMaxTreeAgainstBruteForce(t *testing.T) {
	keys, measures := genSorted(700, 3)
	for _, agg := range []Agg{Max, Min} {
		tr, err := NewMaxTree(keys, measures, agg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for iter := 0; iter < 500; iter++ {
			l := keys[rng.Intn(len(keys))]
			u := keys[rng.Intn(len(keys))]
			if l > u {
				l, u = u, l
			}
			want, wantOK := bruteMax(keys, measures, l, u, agg)
			got, ok := tr.Query(l, u)
			if ok != wantOK || (ok && math.Abs(got-want) > 1e-9) {
				t.Fatalf("agg %v Query(%g,%g) = (%g,%v), want (%g,%v)", agg, l, u, got, ok, want, wantOK)
			}
		}
	}
}

func TestMaxTreeNonKeyEndpoints(t *testing.T) {
	keys, measures := genSorted(300, 5)
	tr, _ := NewMaxTree(keys, measures, Max)
	rng := rand.New(rand.NewSource(6))
	lo, hi := keys[0], keys[len(keys)-1]
	for iter := 0; iter < 300; iter++ {
		l := lo - 5 + rng.Float64()*(hi-lo+10)
		u := l + rng.Float64()*(hi-lo)
		want, wantOK := bruteMax(keys, measures, l, u, Max)
		got, ok := tr.Query(l, u)
		if ok != wantOK || (ok && math.Abs(got-want) > 1e-9) {
			t.Fatalf("Query(%g,%g) = (%g,%v), want (%g,%v)", l, u, got, ok, want, wantOK)
		}
	}
}

func TestMaxTreeSingleElement(t *testing.T) {
	tr, err := NewMaxTree([]float64{7}, []float64{42}, Max)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Query(7, 7); !ok || v != 42 {
		t.Errorf("Query(7,7) = (%g,%v), want (42,true)", v, ok)
	}
	if _, ok := tr.Query(8, 9); ok {
		t.Error("out-of-range query should report ok=false")
	}
}

// --- R-tree ---------------------------------------------------------------

func genPoints(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		// Clustered + background mix to stress MBR overlap handling.
		if rng.Float64() < 0.7 {
			cx := float64(rng.Intn(5)*20) - 40
			cy := float64(rng.Intn(3)*30) - 30
			xs[i] = cx + rng.NormFloat64()*3
			ys[i] = cy + rng.NormFloat64()*3
		} else {
			xs[i] = -180 + rng.Float64()*360
			ys[i] = -90 + rng.Float64()*180
		}
	}
	return xs, ys
}

func bruteCount(xs, ys []float64, q Rect) int {
	c := 0
	for i := range xs {
		if q.ContainsPoint(xs[i], ys[i]) {
			c++
		}
	}
	return c
}

func TestRTreeValidation(t *testing.T) {
	if _, err := NewRTree(nil, nil, 0, 0); err == nil {
		t.Error("empty input should error")
	}
	if _, err := NewRTree([]float64{1}, []float64{1, 2}, 0, 0); err == nil {
		t.Error("mismatch should error")
	}
}

func TestRTreeCountAgainstBruteForce(t *testing.T) {
	xs, ys := genPoints(5000, 17)
	tr, err := NewRTree(xs, ys, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(18))
	for iter := 0; iter < 300; iter++ {
		x1 := -200 + rng.Float64()*400
		x2 := -200 + rng.Float64()*400
		y1 := -100 + rng.Float64()*200
		y2 := -100 + rng.Float64()*200
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		q := Rect{x1, x2, y1, y2}
		if got, want := tr.CountRect(q), bruteCount(xs, ys, q); got != want {
			t.Fatalf("CountRect(%+v) = %d, want %d", q, got, want)
		}
	}
}

func TestRTreeWholeDomainAndEmpty(t *testing.T) {
	xs, ys := genPoints(1000, 21)
	tr, _ := NewRTree(xs, ys, 8, 32)
	if got := tr.CountRect(Rect{-1e9, 1e9, -1e9, 1e9}); got != 1000 {
		t.Errorf("whole-domain count = %d, want 1000", got)
	}
	if got := tr.CountRect(Rect{1e6, 2e6, 1e6, 2e6}); got != 0 {
		t.Errorf("empty-region count = %d, want 0", got)
	}
}

func TestRTreeDegenerateRect(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1, 2, 3}
	tr, _ := NewRTree(xs, ys, 0, 0)
	// A point query rectangle hitting exactly one point.
	if got := tr.CountRect(Rect{2, 2, 2, 2}); got != 1 {
		t.Errorf("point rect count = %d, want 1", got)
	}
}

func TestRectPredicates(t *testing.T) {
	a := Rect{0, 10, 0, 10}
	b := Rect{2, 5, 3, 7}
	if !a.Contains(b) || b.Contains(a) {
		t.Error("Contains wrong")
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects wrong")
	}
	c := Rect{11, 12, 0, 10}
	if a.Intersects(c) {
		t.Error("disjoint rects must not intersect")
	}
	if !a.ContainsPoint(10, 10) || a.ContainsPoint(10.1, 5) {
		t.Error("ContainsPoint boundary wrong")
	}
}

func TestRTreeSizeBytesPositive(t *testing.T) {
	xs, ys := genPoints(500, 30)
	tr, _ := NewRTree(xs, ys, 0, 0)
	if tr.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func BenchmarkMaxTreeQuery(b *testing.B) {
	keys, measures := genSorted(100000, 1)
	tr, _ := NewMaxTree(keys, measures, Max)
	rng := rand.New(rand.NewSource(2))
	qs := make([][2]float64, 1024)
	for i := range qs {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		qs[i] = [2]float64{l, u}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&1023]
		tr.Query(q[0], q[1])
	}
}

func BenchmarkRTreeCount(b *testing.B) {
	xs, ys := genPoints(100000, 1)
	tr, _ := NewRTree(xs, ys, 0, 0)
	rng := rand.New(rand.NewSource(2))
	qs := make([]Rect, 1024)
	for i := range qs {
		x := -180 + rng.Float64()*300
		y := -90 + rng.Float64()*150
		qs[i] = Rect{x, x + 30, y, y + 20}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountRect(qs[i&1023])
	}
}
