package artree

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle with inclusive bounds.
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Contains reports whether the rectangle fully contains other.
func (r Rect) Contains(other Rect) bool {
	return r.XLo <= other.XLo && other.XHi <= r.XHi &&
		r.YLo <= other.YLo && other.YHi <= r.YHi
}

// Intersects reports whether the rectangles overlap.
func (r Rect) Intersects(other Rect) bool {
	return r.XLo <= other.XHi && other.XLo <= r.XHi &&
		r.YLo <= other.YHi && other.YLo <= r.YHi
}

// ContainsPoint reports whether (x, y) lies inside the rectangle.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.XLo <= x && x <= r.XHi && r.YLo <= y && y <= r.YHi
}

// RTree is a static STR-bulk-loaded aggregate R-tree over 2D points with a
// COUNT aggregate per node (aR-tree [46]): the exact baseline for 2D range
// COUNT queries. Fully-covered nodes contribute their stored count without
// descending, exactly like the MAX-tree traversal of Section III-B2.
type RTree struct {
	root    *rnode
	n       int
	fanout  int
	leafCap int
}

type rnode struct {
	mbr      Rect
	count    int
	sum      float64   // aggregate of point weights (== count for unit weights)
	children []*rnode  // nil for leaves
	px, py   []float64 // leaf points
	pw       []float64 // leaf point weights
}

// NewRTree bulk-loads an aggregate R-tree from points using the
// Sort-Tile-Recursive packing. fanout and leafCap default to 16 and 64
// when ≤ 0 (typical page-friendly values).
func NewRTree(xs, ys []float64, fanout, leafCap int) (*RTree, error) {
	return NewRTreeWeighted(xs, ys, nil, fanout, leafCap)
}

// NewRTreeWeighted bulk-loads an aggregate R-tree carrying a per-node SUM of
// point weights in addition to the COUNT, enabling exact 2D range SUM
// queries. ws == nil means unit weights.
func NewRTreeWeighted(xs, ys, ws []float64, fanout, leafCap int) (*RTree, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("artree: %d xs, %d ys", len(xs), len(ys))
	}
	if ws != nil && len(ws) != len(xs) {
		return nil, fmt.Errorf("artree: %d xs, %d weights", len(xs), len(ws))
	}
	if fanout <= 1 {
		fanout = 16
	}
	if leafCap <= 0 {
		leafCap = 64
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	leaves := strPack(xs, ys, ws, idx, leafCap)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = packLevel(nodes, fanout)
	}
	return &RTree{root: nodes[0], n: len(xs), fanout: fanout, leafCap: leafCap}, nil
}

// strPack tiles points into leaves: sort by x, slice into vertical strips of
// ~√(n/leafCap) runs, sort each strip by y, emit leaves of ≤ leafCap points.
func strPack(xs, ys, ws []float64, idx []int, leafCap int) []*rnode {
	n := len(idx)
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	numLeaves := (n + leafCap - 1) / leafCap
	stripCount := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	if stripCount < 1 {
		stripCount = 1
	}
	stripSize := (n + stripCount - 1) / stripCount
	var leaves []*rnode
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return ys[strip[a]] < ys[strip[b]] })
		for ls := 0; ls < len(strip); ls += leafCap {
			le := ls + leafCap
			if le > len(strip) {
				le = len(strip)
			}
			leaf := &rnode{count: le - ls}
			leaf.px = make([]float64, 0, le-ls)
			leaf.py = make([]float64, 0, le-ls)
			leaf.pw = make([]float64, 0, le-ls)
			leaf.mbr = Rect{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)}
			for _, id := range strip[ls:le] {
				x, y := xs[id], ys[id]
				w := 1.0
				if ws != nil {
					w = ws[id]
				}
				leaf.px = append(leaf.px, x)
				leaf.py = append(leaf.py, y)
				leaf.pw = append(leaf.pw, w)
				leaf.sum += w
				leaf.mbr.XLo = math.Min(leaf.mbr.XLo, x)
				leaf.mbr.XHi = math.Max(leaf.mbr.XHi, x)
				leaf.mbr.YLo = math.Min(leaf.mbr.YLo, y)
				leaf.mbr.YHi = math.Max(leaf.mbr.YHi, y)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packLevel(nodes []*rnode, fanout int) []*rnode {
	sort.Slice(nodes, func(a, b int) bool {
		ca := nodes[a].mbr.XLo + nodes[a].mbr.XHi
		cb := nodes[b].mbr.XLo + nodes[b].mbr.XHi
		return ca < cb
	})
	var out []*rnode
	for s := 0; s < len(nodes); s += fanout {
		e := s + fanout
		if e > len(nodes) {
			e = len(nodes)
		}
		parent := &rnode{
			children: append([]*rnode(nil), nodes[s:e]...),
			mbr:      Rect{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)},
		}
		for _, c := range parent.children {
			parent.count += c.count
			parent.sum += c.sum
			parent.mbr.XLo = math.Min(parent.mbr.XLo, c.mbr.XLo)
			parent.mbr.XHi = math.Max(parent.mbr.XHi, c.mbr.XHi)
			parent.mbr.YLo = math.Min(parent.mbr.YLo, c.mbr.YLo)
			parent.mbr.YHi = math.Max(parent.mbr.YHi, c.mbr.YHi)
		}
		out = append(out, parent)
	}
	return out
}

// CountRect answers the exact COUNT of points inside the query rectangle
// (inclusive bounds, matching Definition 4).
func (t *RTree) CountRect(q Rect) int {
	if t.root == nil {
		return 0
	}
	return countNode(t.root, q)
}

// SumRect answers the exact SUM of point weights inside the query rectangle
// (inclusive bounds).
func (t *RTree) SumRect(q Rect) float64 {
	if t.root == nil {
		return 0
	}
	return sumNode(t.root, q)
}

func sumNode(n *rnode, q Rect) float64 {
	if !q.Intersects(n.mbr) {
		return 0
	}
	if q.Contains(n.mbr) {
		return n.sum
	}
	if n.children == nil {
		s := 0.0
		for i := range n.px {
			if q.ContainsPoint(n.px[i], n.py[i]) {
				s += n.pw[i]
			}
		}
		return s
	}
	s := 0.0
	for _, ch := range n.children {
		s += sumNode(ch, q)
	}
	return s
}

func countNode(n *rnode, q Rect) int {
	if !q.Intersects(n.mbr) {
		return 0
	}
	if q.Contains(n.mbr) {
		return n.count
	}
	if n.children == nil {
		c := 0
		for i := range n.px {
			if q.ContainsPoint(n.px[i], n.py[i]) {
				c++
			}
		}
		return c
	}
	c := 0
	for _, ch := range n.children {
		c += countNode(ch, q)
	}
	return c
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return t.n }

// SizeBytes estimates the in-memory footprint.
func (t *RTree) SizeBytes() int {
	total := 0
	var walk func(*rnode)
	walk = func(n *rnode) {
		total += 48 + 16 // mbr + count/meta
		if n.children == nil {
			total += 16 * len(n.px)
			return
		}
		total += 8 * len(n.children)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}
