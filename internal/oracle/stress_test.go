package oracle

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestShardedDynamicStress hammers a ShardedDynamic1D under -race:
// concurrent inserters per shard, forced per-shard rebuilds of a hot
// shard, and queriers whose ranges span shard boundaries the whole time.
// Every COUNT answer must stay inside the monotone envelope
// [count(base) − bound, count(base + all planned inserts) + bound] — the
// exact count at query time is somewhere between the two — and queries to
// the cold shards must keep completing while the hot shard rebuilds
// (their snapshot reads are lock-free, so the rebuild can never stall
// them; the test counts completions during the rebuild window to prove
// liveness, with the race detector checking the synchronisation).
func TestShardedDynamicStress(t *testing.T) {
	seed := harnessSeed(t)
	keys, _ := Uniform(6000, seed)
	// Base = every other key; the rest are insert fodder, pre-split by
	// owning shard after the build.
	var baseK, insK []float64
	for i, k := range keys {
		if i%2 == 0 {
			baseK = append(baseK, k)
		} else {
			insK = append(insK, k)
		}
	}
	const shards = 4
	sd, err := core.NewShardedDynamic(core.Count, baseK, nil, shards, core.Options{Delta: 25, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	// Keep per-shard delta buffers below the merge threshold for the
	// inserter shards so the forced rebuilds of the hot shard are the only
	// rebuilds racing the queries deterministically; automatic rebuilds are
	// still allowed to happen (threshold max(64, n/8)).
	perShard := make([][]float64, shards)
	for _, k := range insK {
		s := sd.ShardOf(k)
		perShard[s] = append(perShard[s], k)
	}

	oBase, err := New(baseK, nil)
	if err != nil {
		t.Fatal(err)
	}
	oAll, err := New(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := sd.Bounds()

	var wg, qwg sync.WaitGroup
	var rebuilds atomic.Int64
	var queriesDuringRebuild atomic.Int64

	// One inserter per shard: shard-local lock contention only.
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, k := range perShard[s] {
				if err := sd.Insert(k, 1); err != nil {
					t.Errorf("shard %d insert %g: %v", s, k, err)
					return
				}
			}
		}(s)
	}

	// Hot-shard rebuilder: force merge-rebuilds of shard 0 continuously
	// until every querier has finished (at least 40 of them), so the
	// rebuild window provably spans the whole query phase — on a
	// single-CPU host a fixed rebuild count could drain before the first
	// querier is even scheduled.
	queriersDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			if err := sd.RebuildShard(0); err != nil {
				t.Errorf("rebuild shard 0: %v", err)
				return
			}
			rebuilds.Add(1)
			if i >= 40 {
				select {
				case <-queriersDone:
					return
				default:
				}
			}
		}
	}()

	// Queriers: boundary-spanning ranges plus cold-shard-only ranges; every
	// answer checked against the monotone envelope.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		qwg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer qwg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for q := 0; q < 600; q++ {
				var lq, uq float64
				switch q % 3 {
				case 0: // span every shard boundary
					lq, uq = baseK[0]-1, baseK[len(baseK)-1]+1
				case 1: // straddle one routing boundary
					b := bounds[rng.Intn(len(bounds))]
					lq, uq = b-500, b+500
				default: // interior to the last (cold) shard
					lq, uq = bounds[len(bounds)-1], baseK[len(baseK)-1]
				}
				est, bound, err := sd.RangeSum(lq, uq)
				if err != nil {
					t.Errorf("query (%g,%g]: %v", lq, uq, err)
					return
				}
				lo := oBase.Count(lq, uq) - bound
				hi := oAll.Count(lq, uq) + bound
				if est < lo-1e-9 || est > hi+1e-9 {
					t.Errorf("query (%g,%g]: est %g outside envelope [%g, %g]", lq, uq, est, lo, hi)
					return
				}
				// Batches must behave identically under the same races.
				if q%25 == 0 {
					res, err := sd.QueryBatch([]core.Range{{Lo: lq, Hi: uq}, {Lo: uq, Hi: lq}})
					if err != nil || len(res) != 2 {
						t.Errorf("batch: %v", err)
						return
					}
					if res[0].Value < lo-1e-9 || res[0].Value > hi+1e-9 {
						t.Errorf("batch (%g,%g]: %g outside [%g, %g]", lq, uq, res[0].Value, lo, hi)
						return
					}
				}
				// The rebuilder keeps cycling until the queriers are done,
				// so every completed query ran inside the rebuild window.
				queriesDuringRebuild.Add(1)
			}
		}(w)
	}
	go func() {
		qwg.Wait()
		close(queriersDone)
	}()

	wg.Wait()
	if rebuilds.Load() < 40 {
		t.Fatalf("rebuilder ran only %d/40 rebuilds", rebuilds.Load())
	}
	// Liveness: queries completed while the hot shard was rebuilding.
	if queriesDuringRebuild.Load() == 0 {
		t.Fatal("no query completed during the rebuild window — queries blocked behind a shard rebuild")
	}
	// Quiesced: every insert applied exactly once, full span exact ± bound.
	est, bound, err := sd.RangeSum(keys[0]-1, keys[len(keys)-1]+1)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(len(keys)); math.Abs(est-want) > bound {
		t.Fatalf("final count %g ± %g, want %g", est, bound, want)
	}
	if sd.Len() != len(keys) {
		t.Fatalf("Len %d, want %d", sd.Len(), len(keys))
	}
}

// TestShardedDynamicRebuildIsolation pins the "one hot shard rebuilding
// never blocks the others" claim more directly: while shard 0 is held
// mid-rebuild cycle continuously, inserts and queries against the OTHER
// shards must make progress. Run under -race in CI.
func TestShardedDynamicRebuildIsolation(t *testing.T) {
	seed := harnessSeed(t)
	keys, _ := Clustered(4000, seed)
	sd, err := core.NewShardedDynamic(core.Count, keys, nil, 4, core.Options{Delta: 20, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	bounds := sd.Bounds()

	stop := make(chan struct{})
	var rebuildLoops atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Saturate shard 0 with rebuild work: insert into it then rebuild,
		// so its write lock is held for most of the loop.
		n := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n++
			if err := sd.Insert(bounds[0]-1e6-n/128, 1); err != nil {
				t.Errorf("hot insert: %v", err)
				return
			}
			if err := sd.RebuildShard(0); err != nil {
				t.Errorf("hot rebuild: %v", err)
				return
			}
			rebuildLoops.Add(1)
		}
	}()

	// Meanwhile the cold shards serve writes and reads. Keep going until
	// the hot shard has demonstrably rebuilt a few times (on a single-CPU
	// host the rebuilder may not be scheduled before a fixed iteration
	// count elapses), bounded by a deadline so a genuine deadlock fails
	// loudly instead of hanging.
	coldInserts, coldQueries := 0, 0
	base := bounds[len(bounds)-1]
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; (coldInserts < 400 || rebuildLoops.Load() < 3) && time.Now().Before(deadline); i++ {
		if err := sd.Insert(base+1e6+float64(i)/128, 1); err != nil {
			t.Fatalf("cold insert: %v", err)
		}
		coldInserts++
		if _, _, err := sd.RangeSum(bounds[0], base+2e6); err != nil {
			t.Fatalf("cold query: %v", err)
		}
		coldQueries++
	}
	close(stop)
	wg.Wait()
	if rebuildLoops.Load() == 0 {
		t.Fatal("hot shard never rebuilt; the isolation claim was not exercised")
	}
	if coldInserts < 400 || coldQueries < 400 {
		t.Fatalf("cold shard progress stalled: %d inserts, %d queries", coldInserts, coldQueries)
	}
}
