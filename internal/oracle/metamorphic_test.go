package oracle

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// Metamorphic properties: relations between answers that must hold without
// consulting any oracle — range additivity, monotonicity of COUNT, and
// shard-transparency (a sharded index answering a shard-interior range
// bitwise-identically to an unsharded index built over just that chunk).

// TestMetamorphicAdditivity: Q(l,u) = Q(l,m) + Q(m,u) for COUNT/SUM. For
// CF-based answers the identity telescopes, so the defect is far below the
// 2δ the composed guarantees allow; asserted at 2δ plus float slack.
func TestMetamorphicAdditivity(t *testing.T) {
	seed := harnessSeed(t)
	keys, measures := Uniform(2000, seed)
	const delta = 30.0
	static, err := core.BuildSum(keys, measures, core.Options{Delta: delta, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.BuildSharded(core.Sum, keys, measures, 4, core.Options{Delta: delta, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for q := 0; q < 500; q++ {
		idx := []int{rng.Intn(len(keys)), rng.Intn(len(keys)), rng.Intn(len(keys))}
		sort.Ints(idx)
		l, m, u := keys[idx[0]], keys[idx[1]], keys[idx[2]]
		whole, err := static.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		left, _ := static.RangeSum(l, m)
		right, _ := static.RangeSum(m, u)
		if d := math.Abs(whole - (left + right)); d > 2*delta+1e-9*(1+math.Abs(whole)) {
			t.Fatalf("static additivity: |%g − (%g + %g)| = %g > 2δ", whole, left, right, d)
		}
		sw, _, err := sharded.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		sl, _, _ := sharded.RangeSum(l, m)
		sr, _, _ := sharded.RangeSum(m, u)
		if d := math.Abs(sw - (sl + sr)); d > 2*delta+1e-9*(1+math.Abs(sw)) {
			t.Fatalf("sharded additivity: |%g − (%g + %g)| = %g > 2δ", sw, sl, sr, d)
		}
	}
}

// TestMetamorphicCountMonotone: the COUNT estimate is monotone in the
// upper endpoint up to 2δ — CF evaluations are each within δ of the truly
// monotone cumulative count, so est(l,u2) ≥ est(l,u1) − 2δ for u1 ≤ u2.
func TestMetamorphicCountMonotone(t *testing.T) {
	seed := harnessSeed(t)
	keys, _ := Zipf(2000, seed)
	const delta = 20.0
	static, err := core.BuildCount(keys, core.Options{Delta: delta, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.BuildSharded(core.Count, keys, nil, 4, core.Options{Delta: delta, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	for q := 0; q < 200; q++ {
		li := rng.Intn(len(keys))
		l := keys[li]
		prevS, prevSh := math.Inf(-1), math.Inf(-1)
		// Walk an ascending sample of upper endpoints.
		for ui := li; ui < len(keys); ui += 1 + rng.Intn(97) {
			u := keys[ui]
			v, err := static.RangeSum(l, u)
			if err != nil {
				t.Fatal(err)
			}
			if v < prevS-2*delta-1e-9 {
				t.Fatalf("static COUNT not 2δ-monotone at (%g,%g]: %g after %g", l, u, v, prevS)
			}
			prevS = math.Max(prevS, v)
			sv, _, err := sharded.RangeSum(l, u)
			if err != nil {
				t.Fatal(err)
			}
			// The sharded bound composes: monotonicity holds to 2δ per
			// touched shard transition; 2δ·K is the loose uniform envelope.
			if sv < prevSh-2*delta*float64(sharded.NumShards())-1e-9 {
				t.Fatalf("sharded COUNT not monotone at (%g,%g]: %g after %g", l, u, sv, prevSh)
			}
			prevSh = math.Max(prevSh, sv)
		}
	}
}

// TestMetamorphicShardTransparency: for a range strictly interior to one
// shard, the sharded scatter-gather answer must agree BITWISE with an
// unsharded index built over exactly that shard's chunk — proving the
// gather adds no perturbation (no spurious contributions from other
// shards, no reordering of float accumulation).
func TestMetamorphicShardTransparency(t *testing.T) {
	seed := harnessSeed(t)
	keys, measures := Clustered(2400, seed)
	opt := core.Options{Delta: 25, NoFallback: true}
	for _, agg := range []core.Agg{core.Count, core.Sum, core.Max, core.Min} {
		sharded, err := core.BuildSharded(agg, keys, measures, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		bounds := sharded.Bounds()
		// Reconstruct each shard's chunk and build an unsharded index on it.
		starts := []int{0}
		for _, b := range bounds {
			starts = append(starts, sort.SearchFloat64s(keys, b))
		}
		starts = append(starts, len(keys))
		rng := rand.New(rand.NewSource(seed + int64(agg)))
		for sh := 0; sh < 4; sh++ {
			lo, hi := starts[sh], starts[sh+1]
			chunkK, chunkM := keys[lo:hi], measures[lo:hi]
			plain, err := buildStatic(agg, chunkK, chunkM, opt)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 100; q++ {
				// Strictly interior endpoints: skip the chunk's first key so
				// the range cannot touch the routing boundary itself.
				if hi-lo < 3 {
					break
				}
				i := 1 + rng.Intn(hi-lo-1)
				j := 1 + rng.Intn(hi-lo-1)
				if i > j {
					i, j = j, i
				}
				lq, uq := chunkK[i], chunkK[j]
				switch agg {
				case core.Count, core.Sum:
					want, err := plain.RangeSum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := sharded.RangeSum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%v shard %d (%g,%g]: sharded %g != unsharded %g (bitwise)",
							agg, sh, lq, uq, got, want)
					}
				default:
					want, wok, err := plain.RangeExtremum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					got, _, gok, err := sharded.RangeExtremum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					if gok != wok || math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%v shard %d [%g,%g]: sharded %g/%v != unsharded %g/%v",
							agg, sh, lq, uq, got, gok, want, wok)
					}
				}
			}
		}
	}
}
