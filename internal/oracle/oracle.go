// Package oracle is the differential-testing ground truth for PolyFit's
// error guarantees. An Oracle holds the full dataset and answers every
// range aggregate exactly: COUNT through the bulk-loaded B+-tree rank
// structure (internal/btree — the same structure the paper's S-tree
// baseline builds on), SUM/MAX/MIN by brute force over the sorted key
// window. Tests build a PolyFit index and an Oracle over identical data
// and assert the paper's bounds on every answer:
//
//   - COUNT/SUM over (lq, uq]: |est − exact| ≤ εabs (= 2δ per touched
//     shard for sharded indexes).
//   - MAX/MIN over [lq, uq]: est − δ ≤ exact ≤ est + δ (the sandwich form
//     of Lemma 4).
//
// The Oracle is deliberately simple — no polynomials, no approximation, no
// shared code with the structures under test — so a bug in PolyFit cannot
// hide in the referee.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/btree"
)

// Oracle answers range aggregate queries exactly over a (key, measure)
// dataset. It is not safe for concurrent mutation; tests that interleave
// inserts and queries must serialise them (the structures under test are
// the concurrent ones, not the referee).
type Oracle struct {
	keys     []float64
	measures []float64
	tree     *btree.Tree // rank structure for COUNT; rebuilt lazily after inserts
	dirty    bool
}

// New builds an oracle over keys sorted strictly ascending; measures may
// be nil (all-zero, for COUNT-only use).
func New(keys, measures []float64) (*Oracle, error) {
	if measures == nil {
		measures = make([]float64, len(keys))
	}
	if len(keys) != len(measures) {
		return nil, fmt.Errorf("oracle: %d keys, %d measures", len(keys), len(measures))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, fmt.Errorf("oracle: keys not strictly increasing at %d", i)
		}
	}
	o := &Oracle{
		keys:     append([]float64(nil), keys...),
		measures: append([]float64(nil), measures...),
	}
	tree, err := btree.New(o.keys, 0)
	if err != nil {
		return nil, err
	}
	o.tree = tree
	return o, nil
}

// Insert adds a record, mirroring an insert into the structure under test.
// Duplicate keys error (as they do in the structures under test).
func (o *Oracle) Insert(key, measure float64) error {
	i := sort.SearchFloat64s(o.keys, key)
	if i < len(o.keys) && o.keys[i] == key {
		return fmt.Errorf("oracle: duplicate key %g", key)
	}
	o.keys = append(o.keys, 0)
	o.measures = append(o.measures, 0)
	copy(o.keys[i+1:], o.keys[i:])
	copy(o.measures[i+1:], o.measures[i:])
	o.keys[i] = key
	o.measures[i] = measure
	o.dirty = true
	return nil
}

// rankTree returns the B+-tree over the current key set, rebuilding it
// after inserts.
func (o *Oracle) rankTree() *btree.Tree {
	if o.dirty {
		tree, err := btree.New(o.keys, 0)
		if err != nil {
			// Keys are maintained sorted by Insert; a build failure here is a
			// bug in the oracle itself.
			panic(err)
		}
		o.tree = tree
		o.dirty = false
	}
	return o.tree
}

// Count returns the exact number of keys in (lq, uq], via B+-tree ranks.
func (o *Oracle) Count(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	t := o.rankTree()
	return float64(t.Rank(uq) - t.Rank(lq))
}

// window returns the index range [a, b) of keys in the closed [lq, uq].
func (o *Oracle) window(lq, uq float64) (int, int) {
	a := sort.SearchFloat64s(o.keys, lq)
	b := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] > uq })
	return a, b
}

// Sum returns the exact measure sum over (lq, uq], by brute force.
func (o *Oracle) Sum(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	a := sort.Search(len(o.keys), func(i int) bool { return o.keys[i] > lq })
	s := 0.0
	for i := a; i < len(o.keys) && o.keys[i] <= uq; i++ {
		s += o.measures[i]
	}
	return s
}

// Max returns the exact measure maximum over [lq, uq], by brute force;
// ok is false when the range holds no records.
func (o *Oracle) Max(lq, uq float64) (float64, bool) {
	if uq < lq {
		return 0, false
	}
	a, b := o.window(lq, uq)
	if a >= b {
		return 0, false
	}
	best := math.Inf(-1)
	for i := a; i < b; i++ {
		if o.measures[i] > best {
			best = o.measures[i]
		}
	}
	return best, true
}

// Min returns the exact measure minimum over [lq, uq], by brute force.
func (o *Oracle) Min(lq, uq float64) (float64, bool) {
	if uq < lq {
		return 0, false
	}
	a, b := o.window(lq, uq)
	if a >= b {
		return 0, false
	}
	best := math.Inf(1)
	for i := a; i < b; i++ {
		if o.measures[i] < best {
			best = o.measures[i]
		}
	}
	return best, true
}

// Len returns the record count.
func (o *Oracle) Len() int { return len(o.keys) }

// Keys returns the oracle's key set (shared slice; callers must not
// mutate) — the workload endpoints differential tests draw from.
func (o *Oracle) Keys() []float64 { return o.keys }

// Measures returns the oracle's measures, aligned with Keys.
func (o *Oracle) Measures() []float64 { return o.measures }
