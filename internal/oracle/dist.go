package oracle

import (
	"math"
	"math/rand"
	"sort"
)

// Test-data distributions for the differential harness. Each generator
// returns n strictly-increasing finite keys with non-negative measures,
// deterministically from the seed. The four shapes stress different parts
// of the fitting stack: Uniform is the easy case, Zipf piles most of the
// mass into a tiny key prefix (long-tail gaps starve segments), Clustered
// alternates dense blobs with voids (segment boundaries land in gaps), and
// AdversarialDup quantises keys onto a coarse grid with duplicate-heavy
// draws and step-function measures (plateaus and jumps that polynomial
// fits overshoot).

// dedupe sorts raw draws, drops duplicates, and tops the set back up to n
// using the filler function.
func dedupe(raw []float64, n int, fill func(i int) float64) []float64 {
	set := make(map[float64]bool, n)
	for _, k := range raw {
		if !math.IsNaN(k) && !math.IsInf(k, 0) {
			set[k] = true
		}
	}
	for i := 0; len(set) < n; i++ {
		set[fill(i)] = true
	}
	keys := make([]float64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys[:n]
}

// Uniform draws keys uniformly over a wide interval with smooth noisy
// measures.
func Uniform(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = math.Round(rng.Float64()*1e8) / 100
	}
	keys = dedupe(raw, n, func(i int) float64 { return -float64(i+1) / 100 })
	measures = make([]float64, n)
	for i := range measures {
		measures[i] = 200 + 150*math.Sin(float64(i)/60) + rng.Float64()*40
	}
	return keys, measures
}

// Zipf piles most keys into a tiny prefix of the domain with a long thin
// tail, and gives the dense region spiky measures.
func Zipf(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.4, 1, 1<<22)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = float64(z.Uint64()) + math.Round(rng.Float64()*1e4)/1e4
	}
	keys = dedupe(raw, n, func(i int) float64 { return -1 - float64(i)/7 })
	measures = make([]float64, n)
	for i := range measures {
		measures[i] = 50 + 30*math.Sin(float64(i)/9) + rng.Float64()*100
	}
	return keys, measures
}

// Clustered draws keys from a mixture of tight Gaussian blobs separated by
// voids, with per-cluster measure levels.
func Clustered(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := []float64{-4000, -1200, 0, 900, 2500, 7800}
	raw := make([]float64, n)
	for i := range raw {
		c := centers[rng.Intn(len(centers))]
		raw[i] = math.Round((c+rng.NormFloat64()*30)*1e3) / 1e3
	}
	keys = dedupe(raw, n, func(i int) float64 { return 9000 + float64(i)/11 })
	measures = make([]float64, n)
	for i, k := range keys {
		level := 100 + 40*math.Mod(math.Abs(k), 7)
		measures[i] = level + rng.Float64()*15
	}
	return keys, measures
}

// AdversarialDup quantises heavy-tailed draws onto a coarse grid — most
// raw draws are duplicates, so the surviving keys form dense evenly-spaced
// runs split by large jumps — and pairs them with step-function measures
// (long constant plateaus with abrupt 0↔big jumps).
func AdversarialDup(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, 4*n)
	for i := range raw {
		v := rng.NormFloat64() * 200
		if rng.Intn(5) == 0 {
			v *= 50 // heavy tail
		}
		raw[i] = math.Round(v*2) / 2 // 0.5 grid: duplicates galore
	}
	keys = dedupe(raw, n, func(i int) float64 { return 1e7 + float64(i)/2 })
	measures = make([]float64, n)
	plateau, left := 0.0, 0
	for i := range measures {
		if left == 0 {
			plateau = float64(rng.Intn(3)) * 500 // 0, 500, or 1000
			left = 1 + rng.Intn(40)
		}
		measures[i] = plateau
		left--
	}
	return keys, measures
}

// Distributions enumerates the named generators the differential harness
// sweeps.
var Distributions = []struct {
	Name string
	Gen  func(n int, seed int64) (keys, measures []float64)
}{
	{"uniform", Uniform},
	{"zipf", Zipf},
	{"clustered", Clustered},
	{"adversarial-dup", AdversarialDup},
}
