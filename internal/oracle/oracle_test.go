package oracle

import (
	"math"
	"math/rand"
	"testing"
)

// TestOracleSelfConsistent cross-checks the B+-tree-backed Count against
// naive loops (the referee must itself be trustworthy), plus Insert
// maintenance.
func TestOracleSelfConsistent(t *testing.T) {
	keys, measures := Clustered(1200, 5)
	o, err := New(keys, measures)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	naiveCount := func(l, u float64) float64 {
		c := 0.0
		for _, k := range o.Keys() {
			if k > l && k <= u {
				c++
			}
		}
		return c
	}
	check := func() {
		for q := 0; q < 200; q++ {
			l := keys[rng.Intn(len(keys))] - rng.Float64()*10
			u := l + rng.Float64()*3000
			if got, want := o.Count(l, u), naiveCount(l, u); got != want {
				t.Fatalf("Count(%g,%g) = %g, naive %g", l, u, got, want)
			}
		}
	}
	check()
	// Inserts keep the rank structure honest (lazy rebuild path).
	for i := 0; i < 300; i++ {
		if err := o.Insert(keys[rng.Intn(len(keys))]+0.0001+rng.Float64()/3, float64(i)); err != nil {
			continue // collisions with earlier inserts are fine to skip
		}
	}
	check()
	if err := o.Insert(keys[0], 1); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	// Inverted and empty ranges.
	if o.Count(5, -5) != 0 || o.Sum(5, -5) != 0 {
		t.Fatal("inverted range not empty")
	}
	if _, ok := o.Max(5, -5); ok {
		t.Fatal("inverted range found an extremum")
	}
}

// TestDistributionsWellFormed asserts every generator yields strictly
// increasing finite keys and finite non-negative measures at several
// sizes — the contract the differential harness builds on.
func TestDistributionsWellFormed(t *testing.T) {
	for _, d := range Distributions {
		for _, n := range []int{1, 17, 800} {
			keys, measures := d.Gen(n, 42)
			if len(keys) != n || len(measures) != n {
				t.Fatalf("%s(%d): %d keys, %d measures", d.Name, n, len(keys), len(measures))
			}
			for i, k := range keys {
				if math.IsNaN(k) || math.IsInf(k, 0) {
					t.Fatalf("%s: non-finite key %g", d.Name, k)
				}
				if i > 0 && k <= keys[i-1] {
					t.Fatalf("%s: keys not strictly increasing at %d", d.Name, i)
				}
				if math.IsNaN(measures[i]) || measures[i] < 0 {
					t.Fatalf("%s: bad measure %g", d.Name, measures[i])
				}
			}
			// Determinism: same seed, same data.
			k2, m2 := d.Gen(n, 42)
			for i := range keys {
				if k2[i] != keys[i] || m2[i] != measures[i] {
					t.Fatalf("%s: not deterministic at %d", d.Name, i)
				}
			}
		}
	}
}
