package oracle

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
)

// harnessSeed resolves the randomized-harness seed: fixed by default (CI
// reproducibility), ORACLE_SEED=random draws a fresh one and logs it so a
// failure names the seed to replay, ORACLE_SEED=<int> replays one.
func harnessSeed(t *testing.T) int64 {
	switch v := os.Getenv("ORACLE_SEED"); v {
	case "":
		return 0x5EED
	case "random":
		s := time.Now().UnixNano()
		t.Logf("ORACLE_SEED=random resolved to %d (re-run with ORACLE_SEED=%d to replay)", s, s)
		return s
	default:
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad ORACLE_SEED %q: %v", v, err)
		}
		return s
	}
}

const (
	diffEpsAbs  = 60.0 // εabs the subjects are built for
	diffN       = 2400 // records per distribution
	diffQueries = 900  // random ranges per subject
)

// subject adapts one index variant to the harness: est and the certified
// absolute bound per query. sum answers COUNT/SUM over (l, u], ext answers
// MAX/MIN over [l, u].
type subject struct {
	name string
	sum  func(l, u float64) (est, bound float64, err error)
	ext  func(l, u float64) (est, bound float64, ok bool, err error)
	// endpoints are the workload endpoints the guarantee covers (the keys
	// the subject's polynomial fit actually sampled — for dynamic subjects
	// before a rebuild that is the base key set, not buffered inserts).
	endpoints []float64
}

// buildStatic dispatches a plain Index1D build for the aggregate. With
// εabs = diffEpsAbs, the plain bound is diffEpsAbs for every aggregate
// (2·(εabs/2) for COUNT/SUM, δ = εabs for MIN/MAX).
func buildStatic(agg core.Agg, keys, measures []float64, opt core.Options) (*core.Index1D, error) {
	switch agg {
	case core.Count:
		return core.BuildCount(keys, opt)
	case core.Sum:
		return core.BuildSum(keys, measures, opt)
	case core.Max:
		return core.BuildMax(keys, measures, opt)
	default:
		return core.BuildMin(keys, measures, opt)
	}
}

// buildSubjects constructs the static, dynamic, sharded, and
// sharded-dynamic variants of one aggregate over the same dataset. Dynamic
// variants are built over ~80% of the records and the rest is inserted.
func buildSubjects(t *testing.T, agg core.Agg, keys, measures []float64) []subject {
	t.Helper()
	opt := core.Options{Delta: core.DeltaForAbs(agg, diffEpsAbs), NoFallback: true}
	var baseK, baseM, insK, insM []float64
	for i := range keys {
		if i%5 == 3 {
			insK = append(insK, keys[i])
			insM = append(insM, measures[i])
		} else {
			baseK = append(baseK, keys[i])
			baseM = append(baseM, measures[i])
		}
	}
	var subjects []subject

	static, err := buildStatic(agg, keys, measures, opt)
	if err != nil {
		t.Fatalf("static build: %v", err)
	}
	subjects = append(subjects, subject{
		name: "static", endpoints: keys,
		sum: func(l, u float64) (float64, float64, error) {
			v, err := static.RangeSum(l, u)
			return v, diffEpsAbs, err
		},
		ext: func(l, u float64) (float64, float64, bool, error) {
			v, ok, err := static.RangeExtremum(l, u)
			return v, diffEpsAbs, ok, err
		},
	})

	dyn, err := core.NewDynamic(agg, baseK, baseM, opt)
	if err != nil {
		t.Fatalf("dynamic build: %v", err)
	}
	for i := range insK {
		if err := dyn.Insert(insK[i], insM[i]); err != nil {
			t.Fatalf("dynamic insert %g: %v", insK[i], err)
		}
	}
	subjects = append(subjects, subject{
		name: "dynamic", endpoints: baseK,
		sum: func(l, u float64) (float64, float64, error) {
			v, err := dyn.RangeSum(l, u)
			return v, diffEpsAbs, err
		},
		ext: func(l, u float64) (float64, float64, bool, error) {
			v, ok, err := dyn.RangeExtremum(l, u)
			return v, diffEpsAbs, ok, err
		},
	})

	sharded, err := core.BuildSharded(agg, keys, measures, 4, opt)
	if err != nil {
		t.Fatalf("sharded build: %v", err)
	}
	subjects = append(subjects, subject{
		name: "sharded4", endpoints: keys,
		sum: sharded.RangeSum,
		ext: sharded.RangeExtremum,
	})

	sdyn, err := core.NewShardedDynamic(agg, baseK, baseM, 4, opt)
	if err != nil {
		t.Fatalf("sharded dynamic build: %v", err)
	}
	for i := range insK {
		if err := sdyn.Insert(insK[i], insM[i]); err != nil {
			t.Fatalf("sharded dynamic insert %g: %v", insK[i], err)
		}
	}
	subjects = append(subjects, subject{
		name: "sharded4-dynamic", endpoints: baseK,
		sum: sdyn.RangeSum,
		ext: sdyn.RangeExtremum,
	})
	return subjects
}

// TestDifferentialGuarantee is the oracle harness of the repo's accuracy
// contract: for every aggregate × index variant × key distribution, every
// estimate over thousands of random workload ranges is checked against the
// exact oracle.
//
//   - COUNT/SUM: |est − exact| ≤ εabs, two-sided and strict (εabs composed
//     per touched shard when sharded).
//   - MAX/MIN: the sandwich lower ≤ exact ≤ upper, where the covering side
//     (upper = est + δ for MAX, lower = est − δ for MIN) is strict — the
//     index never misses the true extremum by more than δ — and the other
//     side carries the documented between-sample slack (DESIGN.md §3.3,
//     TestMaxGuarantee): the polynomial max over a continuous clipped
//     interval can slightly exceed the sample-level bound, so it is
//     asserted hard at 2δ and overshoots beyond δ must stay rare (≤2.5%).
func TestDifferentialGuarantee(t *testing.T) {
	seed := harnessSeed(t)
	for _, dist := range Distributions {
		keys, measures := dist.Gen(diffN, seed)
		o, err := New(keys, measures)
		if err != nil {
			t.Fatalf("%s: oracle: %v", dist.Name, err)
		}
		for _, agg := range []core.Agg{core.Count, core.Sum, core.Max, core.Min} {
			agg := agg
			t.Run(dist.Name+"/"+agg.String(), func(t *testing.T) {
				for _, sub := range buildSubjects(t, agg, keys, measures) {
					rng := rand.New(rand.NewSource(seed ^ int64(agg)<<8))
					eps := sub.endpoints
					overshoots := 0
					for q := 0; q < diffQueries; q++ {
						i, j := rng.Intn(len(eps)), rng.Intn(len(eps))
						if i > j {
							i, j = j, i
						}
						lq, uq := eps[i], eps[j]
						if q%50 == 0 {
							// Out-of-domain and full-span edges.
							lq, uq = eps[0]-1e6, eps[len(eps)-1]+1e6
						}
						switch agg {
						case core.Count, core.Sum:
							est, bound, err := sub.sum(lq, uq)
							if err != nil {
								t.Fatalf("%s: %v", sub.name, err)
							}
							exact := o.Count(lq, uq)
							if agg == core.Sum {
								exact = o.Sum(lq, uq)
							}
							if slack := 1e-9 * (1 + math.Abs(exact)); math.Abs(est-exact) > bound+slack {
								t.Fatalf("%s %v (%g,%g]: |%g − %g| = %g > bound %g",
									sub.name, agg, lq, uq, est, exact, math.Abs(est-exact), bound)
							}
						case core.Max, core.Min:
							est, bound, ok, err := sub.ext(lq, uq)
							if err != nil {
								t.Fatalf("%s: %v", sub.name, err)
							}
							exact, eok := o.Max(lq, uq)
							if agg == core.Min {
								exact, eok = o.Min(lq, uq)
							}
							if ok != eok {
								t.Fatalf("%s %v [%g,%g]: found=%v, oracle found=%v",
									sub.name, agg, lq, uq, ok, eok)
							}
							if !ok {
								continue
							}
							// Work in MAX space so MIN shares the assertions.
							estM, exactM := est, exact
							if agg == core.Min {
								estM, exactM = -est, -exact
							}
							slack := 1e-9 * (1 + math.Abs(exact))
							if estM < exactM-bound-slack {
								t.Fatalf("%s %v [%g,%g]: est %g misses exact %g by more than δ=%g",
									sub.name, agg, lq, uq, est, exact, bound)
							}
							if estM > exactM+bound+slack {
								overshoots++
								if estM > exactM+2*bound+slack {
									t.Fatalf("%s %v [%g,%g]: est %g overshoots exact %g beyond 2δ=%g",
										sub.name, agg, lq, uq, est, exact, 2*bound)
								}
							}
						}
					}
					if limit := diffQueries / 40; overshoots > limit {
						t.Fatalf("%s %v: %d/%d extremum overshoots beyond δ (limit %d)",
							sub.name, agg, overshoots, diffQueries, limit)
					}
				}
			})
		}
	}
}

// TestDifferentialEncodingSweep re-runs the accuracy contract for every
// forced coefficient encoding × aggregate × distribution: compressing the
// lanes must never weaken the certified bound. A forced encoding the build
// cannot certify falls back to a heavier one (packed always does for
// MIN/MAX), so the achieved encoding is logged — the guarantee must hold
// either way. Raw-lane bit-identity with the pre-refactor per-segment
// layout is pinned separately in core (TestRawLanesMatchAoSEvaluation).
func TestDifferentialEncodingSweep(t *testing.T) {
	seed := harnessSeed(t)
	for _, dist := range Distributions {
		keys, measures := dist.Gen(diffN, seed)
		o, err := New(keys, measures)
		if err != nil {
			t.Fatalf("%s: oracle: %v", dist.Name, err)
		}
		for _, agg := range []core.Agg{core.Count, core.Sum, core.Max, core.Min} {
			for _, enc := range []core.Encoding{core.EncRaw, core.EncF32, core.EncPacked} {
				agg, enc := agg, enc
				t.Run(dist.Name+"/"+agg.String()+"/"+enc.String(), func(t *testing.T) {
					opt := core.Options{
						Delta: core.DeltaForAbs(agg, diffEpsAbs), NoFallback: true, Encoding: enc,
					}
					ix, err := buildStatic(agg, keys, measures, opt)
					if err != nil {
						t.Fatal(err)
					}
					if got := ix.Encoding(); got != enc {
						t.Logf("requested %v, certified %v", enc, got)
					}
					rng := rand.New(rand.NewSource(seed ^ int64(agg)<<8 ^ int64(enc)<<16))
					for q := 0; q < diffQueries/2; q++ {
						i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
						if i > j {
							i, j = j, i
						}
						lq, uq := keys[i], keys[j]
						if q%50 == 0 {
							lq, uq = keys[0]-1e6, keys[len(keys)-1]+1e6
						}
						switch agg {
						case core.Count, core.Sum:
							est, err := ix.RangeSum(lq, uq)
							if err != nil {
								t.Fatal(err)
							}
							exact := o.Count(lq, uq)
							if agg == core.Sum {
								exact = o.Sum(lq, uq)
							}
							if slack := 1e-9 * (1 + math.Abs(exact)); math.Abs(est-exact) > diffEpsAbs+slack {
								t.Fatalf("%v/%v (%g,%g]: |%g − %g| = %g > εabs %g",
									agg, enc, lq, uq, est, exact, math.Abs(est-exact), diffEpsAbs)
							}
						case core.Max, core.Min:
							est, ok, err := ix.RangeExtremum(lq, uq)
							if err != nil {
								t.Fatal(err)
							}
							exact, eok := o.Max(lq, uq)
							if agg == core.Min {
								exact, eok = o.Min(lq, uq)
							}
							if ok != eok {
								t.Fatalf("%v/%v [%g,%g]: found=%v, oracle found=%v", agg, enc, lq, uq, ok, eok)
							}
							if !ok {
								continue
							}
							estM, exactM := est, exact
							if agg == core.Min {
								estM, exactM = -est, -exact
							}
							slack := 1e-9 * (1 + math.Abs(exact))
							if estM < exactM-diffEpsAbs-slack || estM > exactM+2*diffEpsAbs+slack {
								t.Fatalf("%v/%v [%g,%g]: exact %g vs est %g ± %g",
									agg, enc, lq, uq, exact, est, diffEpsAbs)
							}
						}
					}
				})
			}
		}
	}
}

// TestDifferentialAfterRebuild re-runs the guarantee for dynamic subjects
// after a full merge-rebuild, when every key (including the inserted ones)
// is a fitted sample and therefore a covered workload endpoint.
func TestDifferentialAfterRebuild(t *testing.T) {
	seed := harnessSeed(t)
	keys, measures := Clustered(diffN, seed)
	o, err := New(keys, measures)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Agg{core.Count, core.Sum, core.Max, core.Min} {
		opt := core.Options{Delta: core.DeltaForAbs(agg, diffEpsAbs), NoFallback: true}
		sdyn, err := core.NewShardedDynamic(agg, keys[:2000], measures[:2000], 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 2000; i < len(keys); i++ {
			if err := sdyn.Insert(keys[i], measures[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sdyn.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if sdyn.BufferLen() != 0 {
			t.Fatalf("buffer not folded: %d", sdyn.BufferLen())
		}
		rng := rand.New(rand.NewSource(seed + int64(agg)))
		for q := 0; q < diffQueries/2; q++ {
			i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
			if i > j {
				i, j = j, i
			}
			lq, uq := keys[i], keys[j]
			switch agg {
			case core.Count, core.Sum:
				est, bound, err := sdyn.RangeSum(lq, uq)
				if err != nil {
					t.Fatal(err)
				}
				exact := o.Count(lq, uq)
				if agg == core.Sum {
					exact = o.Sum(lq, uq)
				}
				if math.Abs(est-exact) > bound+1e-9*(1+math.Abs(exact)) {
					t.Fatalf("%v (%g,%g]: |%g − %g| > %g", agg, lq, uq, est, exact, bound)
				}
			default:
				est, bound, ok, err := sdyn.RangeExtremum(lq, uq)
				if err != nil {
					t.Fatal(err)
				}
				exact, eok := o.Max(lq, uq)
				if agg == core.Min {
					exact, eok = o.Min(lq, uq)
				}
				if ok != eok {
					t.Fatalf("%v [%g,%g]: found=%v, oracle=%v", agg, lq, uq, ok, eok)
				}
				if !ok {
					continue
				}
				estM, exactM := est, exact
				if agg == core.Min {
					estM, exactM = -est, -exact
				}
				// Covering side strict, overshoot side at the documented 2δ.
				if estM < exactM-bound-1e-9 || estM > exactM+2*bound+1e-9 {
					t.Fatalf("%v [%g,%g]: exact %g vs est %g ± %g", agg, lq, uq, exact, est, bound)
				}
			}
		}
	}
}
