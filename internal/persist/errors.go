package persist

import "errors"

// Sentinel errors of the durability layer. Every error an exported
// function returns wraps one of these (or a caller-supplied cause) with
// %w, so recovery code can classify failures with errors.Is — the errwrap
// analyzer (internal/lint) enforces that this file stays the package's
// complete vocabulary.
var (
	// ErrCorrupt reports a snapshot or WAL file that failed structural or
	// checksum validation. Callers are expected to treat it as "this file
	// is unusable", not as a crash.
	ErrCorrupt = errors.New("persist: corrupt file")
	// ErrClosed reports an operation on a WAL whose file handle has been
	// closed (Close called, or a failed reopen after Reset/TruncateTo).
	ErrClosed = errors.New("persist: wal is closed")
	// ErrSick reports an append on a WAL that previously failed an append
	// even after retries and has not been healed by a Reset. Records
	// accepted while sick would silently miss the log, so the WAL refuses.
	ErrSick = errors.New("persist: wal is sick (unrepaired append failure)")
	// ErrInvalidArgument reports caller-supplied values the store cannot
	// act on: an empty data dir, a malformed manifest, an out-of-range cut.
	ErrInvalidArgument = errors.New("persist: invalid argument")
)
