package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// FS is the set of filesystem operations the persist layer performs. The
// default implementation is the real disk (OSFS); tests and the chaos
// harness substitute a fault-injecting implementation (internal/faultfs)
// to exercise EIO, short writes, fsync failure, and failed renames without
// touching kernel machinery.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Stat(path string) (os.FileInfo, error)
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp)
	// open for writing.
	CreateTemp(dir, pattern string) (File, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadAt reads len(p) bytes from the file at path starting at off.
	ReadAt(path string, p []byte, off int64) (int, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself so a completed rename survives a
	// crash.
	SyncDir(dir string) error
}

// File is the writable-file surface persist needs: sequential writes, an
// fsync barrier, and the name for the later rename.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// osFS is the real disk.
type osFS struct{}

// OSFS returns the default FS backed by the os package.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }
func (osFS) Rename(oldPath, newPath string) error         { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) Truncate(path string, size int64) error       { return os.Truncate(path, size) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) ReadAt(path string, p []byte, off int64) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.ReadAt(p, off)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("persist: fsync dir: %w", err)
	}
	return nil
}

// RetryPolicy bounds how persistently the store retries a failed write
// before declaring it degraded. Attempt n sleeps Backoff<<(n-1) first, so
// the default (3 attempts, 2ms base) costs at most ~10ms of backoff — a
// transient blip is absorbed, a sick disk cannot stall serving.
type RetryPolicy struct {
	Attempts int           // total attempts, minimum 1
	Backoff  time.Duration // base sleep before the first retry, doubled each retry
}

// DefaultRetry is the store's retry policy unless overridden.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond}

func (p RetryPolicy) norm() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	return p
}

// run invokes f up to p.Attempts times with exponential backoff, returning
// nil on the first success or the last error.
func (p RetryPolicy) run(f func() error) error {
	p = p.norm()
	var err error
	for a := 0; a < p.Attempts; a++ {
		if a > 0 && p.Backoff > 0 {
			time.Sleep(p.Backoff << (a - 1))
		}
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}
