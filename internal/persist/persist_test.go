package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("polyfit index bytes, arbitrary payload \x00\x01\x02")
	if err := s.WriteSnapshot("tweets", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSnapshot("tweets")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("snapshot round-trip mangled the payload")
	}
	// Overwrite atomically with a different payload.
	blob2 := []byte("generation two")
	if err := s.WriteSnapshot("tweets", blob2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadSnapshot("tweets"); string(got) != string(blob2) {
		t.Fatalf("second write not visible")
	}
	// No temp litter left behind.
	files, _ := os.ReadDir(s.IndexDir("tweets"))
	for _, f := range files {
		if f.Name() != "snapshot.pf" {
			t.Errorf("unexpected file %q in index dir", f.Name())
		}
	}
}

func TestSnapshotMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.ReadSnapshot("ghost"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v, want ErrNotExist", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	s, _ := Open(t.TempDir())
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	if err := s.WriteSnapshot("ix", blob); err != nil {
		t.Fatal(err)
	}
	path := s.SnapshotPath("ix")
	pristine, _ := os.ReadFile(path)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadSnapshot("ix"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	corrupt("flipped payload byte", func(b []byte) []byte { b[snapHeaderSize+100] ^= 0x40; return b })
	corrupt("flipped header magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 0x7F; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("truncated into header", func(b []byte) []byte { return b[:10] })
	corrupt("empty", func(b []byte) []byte { return nil })

	// Restore the pristine bytes: must read clean again.
	os.WriteFile(path, pristine, 0o644)
	if _, err := s.ReadSnapshot("ix"); err != nil {
		t.Fatalf("pristine reread: %v", err)
	}
}

func TestStoreListAndNameEncoding(t *testing.T) {
	s, _ := Open(t.TempDir())
	names := []string{"plain", "dots.and-dashes_ok", "we/ird na:me", "über", "..", ""}
	for _, n := range names {
		if err := s.WriteSnapshot(n, []byte("x")); err != nil {
			t.Fatalf("write %q: %v", n, err)
		}
	}
	got, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("List returned %d names (%q), want %d", len(got), got, len(names))
	}
	seen := map[string]bool{}
	for _, n := range got {
		seen[n] = true
	}
	for _, n := range names {
		if !seen[n] {
			t.Errorf("name %q did not round-trip through the directory encoding", n)
		}
	}
	// Stray files and dirs are ignored.
	os.WriteFile(filepath.Join(s.Dir(), "README"), []byte("hi"), 0o644)
	os.Mkdir(filepath.Join(s.Dir(), "not-an-index"), 0o755)
	got2, _ := s.List()
	if len(got2) != len(names) {
		t.Errorf("List picked up stray entries: %q", got2)
	}
	// Remove drops the files.
	if err := s.Remove("plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadSnapshot("plain"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("removed index still readable: %v", err)
	}
}

func TestShardManifestRoundTrip(t *testing.T) {
	s, _ := Open(t.TempDir())
	m := ShardManifest{Shards: 4, Bounds: []float64{-10, 0.5, 1e6}}
	if err := s.WriteShardManifest("orders", m); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShardManifest("orders")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != m.Shards || len(got.Bounds) != len(m.Bounds) {
		t.Fatalf("manifest %+v, want %+v", got, m)
	}
	for i := range m.Bounds {
		if got.Bounds[i] != m.Bounds[i] {
			t.Fatalf("bound %d: %g != %g", i, got.Bounds[i], m.Bounds[i])
		}
	}
	// Single-shard manifest (no bounds) is legal.
	if err := s.WriteShardManifest("solo", ShardManifest{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if got, err := s.ReadShardManifest("solo"); err != nil || got.Shards != 1 {
		t.Fatalf("solo manifest %+v, %v", got, err)
	}
	// Invalid manifests refuse to write.
	if err := s.WriteShardManifest("bad", ShardManifest{Shards: 0}); err == nil {
		t.Fatal("zero-shard manifest accepted")
	}
	if err := s.WriteShardManifest("bad", ShardManifest{Shards: 3, Bounds: []float64{1}}); err == nil {
		t.Fatal("bound/shard mismatch accepted")
	}
}

func TestShardManifestCorruptionDetected(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.ReadShardManifest("ghost"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
	if err := s.WriteShardManifest("orders", ShardManifest{Shards: 3, Bounds: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	path := s.ShardManifestPath("orders")
	data, _ := os.ReadFile(path)
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-3] },           // truncated payload
		func(b []byte) []byte { b[21] ^= 0xFF; return b },       // flipped shard-count byte
		func(b []byte) []byte { b[0] = 'X'; return b },          // magic
		func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, // payload bit flip (CRC)
	} {
		bad := mutate(append([]byte(nil), data...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadShardManifest("orders"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupt manifest read: %v", err)
		}
	}
}

func TestShardSnapshotAndRemoval(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.WriteSnapshot("mix", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteShardSnapshot("mix", i, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteShardManifest("mix", ShardManifest{Shards: 3, Bounds: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := s.ReadShardSnapshot("mix", i)
		if err != nil || string(got) != string([]byte{byte('a' + i)}) {
			t.Fatalf("shard %d snapshot: %q, %v", i, got, err)
		}
	}
	// RemoveShardFiles drops manifest + shard files but keeps the plain
	// snapshot (the restore-to-plain path).
	if err := s.RemoveShardFiles("mix"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadShardManifest("mix"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("manifest survived removal: %v", err)
	}
	if _, err := s.ReadShardSnapshot("mix", 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("shard snapshot survived removal: %v", err)
	}
	if got, err := s.ReadSnapshot("mix"); err != nil || string(got) != "plain" {
		t.Fatalf("plain snapshot lost: %q, %v", got, err)
	}
	// Removing a never-sharded (or missing) index is a no-op.
	if err := s.RemoveShardFiles("ghost"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveShardFilesFrom(t *testing.T) {
	s, _ := Open(t.TempDir())
	// Shards 0..4 with a hole at 2 (e.g. an earlier partial removal).
	for _, i := range []int{0, 1, 3, 4} {
		if err := s.WriteShardSnapshot("mix", i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteShardManifest("mix", ShardManifest{Shards: 2, Bounds: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	// Dropping from shard 2 removes the stale tail — hole included — and
	// keeps the manifest and shards 0..1.
	if err := s.RemoveShardFilesFrom("mix", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadShardManifest("mix"); err != nil {
		t.Fatalf("manifest removed by from=2: %v", err)
	}
	for _, i := range []int{0, 1} {
		if _, err := s.ReadShardSnapshot("mix", i); err != nil {
			t.Fatalf("kept shard %d removed: %v", i, err)
		}
	}
	for _, i := range []int{3, 4} {
		if _, err := s.ReadShardSnapshot("mix", i); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale shard %d survived: %v", i, err)
		}
	}
}
