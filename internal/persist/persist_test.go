package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("polyfit index bytes, arbitrary payload \x00\x01\x02")
	if err := s.WriteSnapshot("tweets", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSnapshot("tweets")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("snapshot round-trip mangled the payload")
	}
	// Overwrite atomically with a different payload.
	blob2 := []byte("generation two")
	if err := s.WriteSnapshot("tweets", blob2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadSnapshot("tweets"); string(got) != string(blob2) {
		t.Fatalf("second write not visible")
	}
	// No temp litter left behind.
	files, _ := os.ReadDir(s.IndexDir("tweets"))
	for _, f := range files {
		if f.Name() != "snapshot.pf" {
			t.Errorf("unexpected file %q in index dir", f.Name())
		}
	}
}

func TestSnapshotMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.ReadSnapshot("ghost"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v, want ErrNotExist", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	s, _ := Open(t.TempDir())
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	if err := s.WriteSnapshot("ix", blob); err != nil {
		t.Fatal(err)
	}
	path := s.SnapshotPath("ix")
	pristine, _ := os.ReadFile(path)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadSnapshot("ix"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	corrupt("flipped payload byte", func(b []byte) []byte { b[snapHeaderSize+100] ^= 0x40; return b })
	corrupt("flipped header magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 0x7F; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("truncated into header", func(b []byte) []byte { return b[:10] })
	corrupt("empty", func(b []byte) []byte { return nil })

	// Restore the pristine bytes: must read clean again.
	os.WriteFile(path, pristine, 0o644)
	if _, err := s.ReadSnapshot("ix"); err != nil {
		t.Fatalf("pristine reread: %v", err)
	}
}

func TestStoreListAndNameEncoding(t *testing.T) {
	s, _ := Open(t.TempDir())
	names := []string{"plain", "dots.and-dashes_ok", "we/ird na:me", "über", "..", ""}
	for _, n := range names {
		if err := s.WriteSnapshot(n, []byte("x")); err != nil {
			t.Fatalf("write %q: %v", n, err)
		}
	}
	got, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("List returned %d names (%q), want %d", len(got), got, len(names))
	}
	seen := map[string]bool{}
	for _, n := range got {
		seen[n] = true
	}
	for _, n := range names {
		if !seen[n] {
			t.Errorf("name %q did not round-trip through the directory encoding", n)
		}
	}
	// Stray files and dirs are ignored.
	os.WriteFile(filepath.Join(s.Dir(), "README"), []byte("hi"), 0o644)
	os.Mkdir(filepath.Join(s.Dir(), "not-an-index"), 0o755)
	got2, _ := s.List()
	if len(got2) != len(names) {
		t.Errorf("List picked up stray entries: %q", got2)
	}
	// Remove drops the files.
	if err := s.Remove("plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadSnapshot("plain"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("removed index still readable: %v", err)
	}
}
