// Package persist is the durability layer under the PolyFit serving stack:
// per-index atomic snapshot files plus a write-ahead log of acknowledged
// inserts. The design is the classic snapshot+WAL pair:
//
//   - A snapshot is one serialised index blob (static or dynamic — the
//     blob's own magic says which) wrapped in a CRC-checked envelope and
//     written atomically: temp file in the same directory, fsync, rename
//     over the live name, fsync the directory. Readers therefore see either
//     the old snapshot or the new one, never a torn mix, even across a
//     crash mid-write.
//
//   - The WAL records every insert after it was applied in memory and
//     before it is acknowledged to the client; each 20-byte record carries
//     its own CRC. On recovery the snapshot is loaded and the WAL replayed
//     on top; a torn final record (the normal crash artefact) truncates the
//     tail, while a corrupt header rejects the whole file — reported to the
//     caller, never a panic. Replay is idempotent because dynamic indexes
//     reject duplicate keys exactly, so a WAL that overlaps its snapshot
//     (crash between snapshot rename and log truncation) is harmless.
//
//   - After a snapshot the covered WAL prefix is dropped (TruncateTo) by
//     atomically rewriting the file with only the uncovered tail, keeping
//     log growth bounded by the insert rate between snapshots.
//
// Layout: one subdirectory per index under the data dir (directory names
// encode the index name reversibly), holding "snapshot.pf" and "wal.pf".
package persist

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	snapMagic   = uint32(0x5046534E) // "PFSN"
	snapVersion = uint16(1)

	// snapHeaderSize = magic(4) + version(2) + reserved(2) + payloadLen(8) +
	// crc(4).
	snapHeaderSize = 20

	snapshotFile = "snapshot.pf"
	walFile      = "wal.pf"

	// Sharded dynamic indexes persist one snapshot+WAL pair per shard plus
	// a manifest recording the shard layout; the manifest is the commit
	// point of a sharded index (written last, checked first on recovery).
	shardManifestFile = "shards.pf"

	manifestMagic   = uint32(0x50465348) // "PFSH"
	manifestVersion = uint16(1)

	// maxManifestShards bounds the shard count a manifest may claim, so a
	// corrupt count cannot drive recovery into allocating or probing
	// millions of shard files. Mirrors the core build ceiling.
	maxManifestShards = 1 << 12
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store manages the on-disk layout of one data directory.
type Store struct {
	dir   string
	fs    FS
	retry RetryPolicy
}

// Open creates (if needed) and returns the store rooted at dir, backed by
// the real disk.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, nil)
}

// OpenFS is Open with an explicit filesystem; a nil fsys means the real
// disk. The chaos harness passes a fault-injecting FS here.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty data dir", ErrInvalidArgument)
	}
	if fsys == nil {
		fsys = OSFS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open data dir: %w", err)
	}
	return &Store{dir: dir, fs: fsys, retry: DefaultRetry}, nil
}

// Dir returns the root data directory.
func (s *Store) Dir() string { return s.dir }

// FS returns the filesystem the store operates on.
func (s *Store) FS() FS { return s.fs }

// SetRetryPolicy overrides the write retry policy (tests shrink the
// backoff; Attempts below 1 is clamped to 1).
func (s *Store) SetRetryPolicy(p RetryPolicy) { s.retry = p.norm() }

// encodeName maps an index name onto a filesystem-safe directory name,
// reversibly. Plain names keep a readable "i-" form; anything else is
// base64-escaped under "e-". The prefixes keep the two spaces disjoint so
// no two index names can collide on disk.
func encodeName(name string) string {
	if name != "" && len(name) <= 128 && strings.IndexFunc(name, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '.' || r == '_' || r == '-')
	}) < 0 && name != "." && name != ".." {
		return "i-" + name
	}
	return "e-" + base64.RawURLEncoding.EncodeToString([]byte(name))
}

func decodeName(dir string) (string, bool) {
	switch {
	case strings.HasPrefix(dir, "i-"):
		return dir[2:], true
	case strings.HasPrefix(dir, "e-"):
		raw, err := base64.RawURLEncoding.DecodeString(dir[2:])
		if err != nil {
			return "", false
		}
		return string(raw), true
	default:
		return "", false
	}
}

// IndexDir returns the directory holding the given index's files.
func (s *Store) IndexDir(name string) string {
	return filepath.Join(s.dir, encodeName(name))
}

// SnapshotPath returns the index's snapshot file path.
func (s *Store) SnapshotPath(name string) string {
	return filepath.Join(s.IndexDir(name), snapshotFile)
}

// WALPath returns the index's write-ahead-log file path.
func (s *Store) WALPath(name string) string {
	return filepath.Join(s.IndexDir(name), walFile)
}

// List returns the names of all indexes present in the store, in directory
// order.
func (s *Store) List() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if name, ok := decodeName(e.Name()); ok {
			names = append(names, name)
		}
	}
	return names, nil
}

// Remove deletes every file of the given index.
func (s *Store) Remove(name string) error {
	if err := s.fs.RemoveAll(s.IndexDir(name)); err != nil {
		return fmt.Errorf("persist: remove %q: %w", name, err)
	}
	return nil
}

// WriteSnapshot atomically replaces the index's snapshot with the given
// blob. On return the snapshot is durable: the bytes and the rename are
// both fsynced. Transient write failures are retried per the store's
// RetryPolicy (each attempt starts over with a fresh temp file).
func (s *Store) WriteSnapshot(name string, blob []byte) error {
	dir := s.IndexDir(name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: snapshot dir: %w", err)
	}
	header := make([]byte, snapHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], snapMagic)
	binary.LittleEndian.PutUint16(header[4:], snapVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(blob)))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(blob, crcTable))
	path := filepath.Join(dir, snapshotFile)
	return s.retry.run(func() error { return writeFileAtomic(s.fs, path, header, blob) })
}

// ReadSnapshot loads and validates the index's snapshot, returning the
// original blob. A missing snapshot reports os.ErrNotExist; a damaged one
// reports ErrCorrupt with detail.
func (s *Store) ReadSnapshot(name string) ([]byte, error) {
	return readSnapshotFile(s.fs, s.SnapshotPath(name))
}

// readSnapshotFile loads and validates one snapshot envelope.
func readSnapshotFile(fsys FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < snapHeaderSize {
		return nil, fmt.Errorf("%w: snapshot truncated at %d bytes", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, v)
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:])
	if payloadLen != uint64(len(data)-snapHeaderSize) {
		return nil, fmt.Errorf("%w: snapshot payload %d bytes, header says %d",
			ErrCorrupt, len(data)-snapHeaderSize, payloadLen)
	}
	payload := data[snapHeaderSize:]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(data[16:]) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// --- sharded layout ---------------------------------------------------------

// ShardManifest records the layout of a sharded dynamic index: the shard
// count and the K−1 routing bounds that assign keys to shards. Its
// presence marks the index directory as sharded; recovery reads it first
// and then recovers each shard's snapshot+WAL pair independently.
type ShardManifest struct {
	Shards int
	Bounds []float64
}

// ShardManifestPath returns the index's shard-manifest file path.
func (s *Store) ShardManifestPath(name string) string {
	return filepath.Join(s.IndexDir(name), shardManifestFile)
}

// shardSnapshotFile returns the file name of shard i's snapshot.
func shardSnapshotFile(i int) string { return fmt.Sprintf("shard-%d.snapshot.pf", i) }

// ShardSnapshotPath returns shard i's snapshot file path.
func (s *Store) ShardSnapshotPath(name string, i int) string {
	return filepath.Join(s.IndexDir(name), shardSnapshotFile(i))
}

// ShardWALPath returns shard i's write-ahead-log file path.
func (s *Store) ShardWALPath(name string, i int) string {
	return filepath.Join(s.IndexDir(name), fmt.Sprintf("shard-%d.wal.pf", i))
}

// WriteShardManifest atomically writes the index's shard manifest. Callers
// write it AFTER the per-shard snapshots: the manifest is the commit point
// that flips recovery onto the sharded path.
func (s *Store) WriteShardManifest(name string, m ShardManifest) error {
	if m.Shards < 1 || m.Shards > maxManifestShards {
		return fmt.Errorf("%w: manifest shard count %d", ErrInvalidArgument, m.Shards)
	}
	if len(m.Bounds) != m.Shards-1 {
		return fmt.Errorf("%w: manifest has %d bounds for %d shards", ErrInvalidArgument, len(m.Bounds), m.Shards)
	}
	dir := s.IndexDir(name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: manifest dir: %w", err)
	}
	payload := make([]byte, 4+8*len(m.Bounds))
	binary.LittleEndian.PutUint32(payload, uint32(m.Shards))
	for i, b := range m.Bounds {
		binary.LittleEndian.PutUint64(payload[4+8*i:], math.Float64bits(b))
	}
	header := make([]byte, snapHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], manifestMagic)
	binary.LittleEndian.PutUint16(header[4:], manifestVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload, crcTable))
	path := filepath.Join(dir, shardManifestFile)
	return s.retry.run(func() error { return writeFileAtomic(s.fs, path, header, payload) })
}

// ReadShardManifest loads and validates the index's shard manifest. A
// missing manifest (the index is not sharded) reports os.ErrNotExist; a
// damaged one reports ErrCorrupt.
func (s *Store) ReadShardManifest(name string) (ShardManifest, error) {
	data, err := s.fs.ReadFile(s.ShardManifestPath(name))
	if err != nil {
		return ShardManifest{}, err
	}
	if len(data) < snapHeaderSize {
		return ShardManifest{}, fmt.Errorf("%w: manifest truncated at %d bytes", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != manifestMagic {
		return ShardManifest{}, fmt.Errorf("%w: manifest magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != manifestVersion {
		return ShardManifest{}, fmt.Errorf("%w: manifest version %d", ErrCorrupt, v)
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:])
	if payloadLen != uint64(len(data)-snapHeaderSize) {
		return ShardManifest{}, fmt.Errorf("%w: manifest payload %d bytes, header says %d",
			ErrCorrupt, len(data)-snapHeaderSize, payloadLen)
	}
	payload := data[snapHeaderSize:]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(data[16:]) {
		return ShardManifest{}, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	if len(payload) < 4 {
		return ShardManifest{}, fmt.Errorf("%w: manifest payload too short", ErrCorrupt)
	}
	k := binary.LittleEndian.Uint32(payload)
	if k < 1 || k > maxManifestShards || len(payload) != 4+8*int(k-1) {
		return ShardManifest{}, fmt.Errorf("%w: manifest claims %d shards with %d payload bytes",
			ErrCorrupt, k, len(payload))
	}
	m := ShardManifest{Shards: int(k), Bounds: make([]float64, k-1)}
	for i := range m.Bounds {
		m.Bounds[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+8*i:]))
		if math.IsNaN(m.Bounds[i]) || math.IsInf(m.Bounds[i], 0) {
			return ShardManifest{}, fmt.Errorf("%w: non-finite manifest bound", ErrCorrupt)
		}
		if i > 0 && m.Bounds[i] <= m.Bounds[i-1] {
			return ShardManifest{}, fmt.Errorf("%w: manifest bounds not strictly increasing", ErrCorrupt)
		}
	}
	return m, nil
}

// WriteShardSnapshot atomically replaces shard i's snapshot (same
// checksummed envelope as WriteSnapshot).
func (s *Store) WriteShardSnapshot(name string, i int, blob []byte) error {
	dir := s.IndexDir(name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: shard snapshot dir: %w", err)
	}
	header := make([]byte, snapHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], snapMagic)
	binary.LittleEndian.PutUint16(header[4:], snapVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(blob)))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(blob, crcTable))
	path := filepath.Join(dir, shardSnapshotFile(i))
	return s.retry.run(func() error { return writeFileAtomic(s.fs, path, header, blob) })
}

// ReadShardSnapshot loads and validates shard i's snapshot.
func (s *Store) ReadShardSnapshot(name string, i int) ([]byte, error) {
	return readSnapshotFile(s.fs, s.ShardSnapshotPath(name, i))
}

// RemoveShardFiles deletes the manifest and every per-shard file of the
// index, manifest first: once it is gone, recovery falls back to the plain
// snapshot, so a crash mid-removal cannot resurrect a half-deleted sharded
// index. Used when a restore replaces a sharded index with a plain one.
func (s *Store) RemoveShardFiles(name string) error {
	return s.RemoveShardFilesFrom(name, 0)
}

// RemoveShardFilesFrom deletes the per-shard files whose shard index is ≥
// from (and, when from is 0, the manifest too — removed first, see
// RemoveShardFiles). A restore that shrinks the shard count uses from = K
// to drop the stale higher-numbered shards, holes included: the directory
// is listed, not probed.
func (s *Store) RemoveShardFilesFrom(name string, from int) error {
	if from <= 0 {
		if err := s.fs.Remove(s.ShardManifestPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("persist: remove manifest: %w", err)
		}
	}
	entries, err := s.fs.ReadDir(s.IndexDir(name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("persist: list index dir: %w", err)
	}
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Name(), "shard-")
		if !ok || !strings.HasSuffix(e.Name(), ".pf") {
			continue
		}
		idx, _, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(idx)
		if err != nil || n < from {
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.IndexDir(name), e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("persist: remove %s: %w", e.Name(), err)
		}
	}
	return nil
}

// RemoveShardWALFiles deletes every per-shard WAL file of the index,
// leaving the manifest and snapshots in place. Restores call it (after
// closing any open handles) to retire the replaced index's logs BEFORE
// committing the new manifest, so no crash point can replay a dead
// index's records into the restored one.
func (s *Store) RemoveShardWALFiles(name string) error {
	entries, err := s.fs.ReadDir(s.IndexDir(name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("persist: list index dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".wal.pf") {
			if err := s.fs.Remove(filepath.Join(s.IndexDir(name), e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("persist: remove %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// writeFileAtomic writes the chunks to a temp file in path's directory,
// fsyncs it, renames it over path, and fsyncs the directory so the rename
// itself survives a crash. On any failure the temp file is removed
// (best-effort) and the destination is untouched, so the whole operation
// can simply be retried.
func writeFileAtomic(fsys FS, path string, chunks ...[]byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		//lint:ignore syncclose the operation already failed and the temp file is removed next; joining a second (sometimes double-) close error would only mask the cause
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	for _, c := range chunks {
		if _, err := tmp.Write(c); err != nil {
			return cleanup(fmt.Errorf("persist: write: %w", err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("persist: fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("persist: close: %w", err))
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("persist: rename: %w", err)
	}
	return fsys.SyncDir(dir)
}
