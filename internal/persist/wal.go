package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
)

// WAL record wire format, little endian:
//
//	key float64 | measure float64 | crc32c(key, measure) uint32
//
// preceded by an 8-byte file header (magic, version, reserved). The
// per-record CRC turns the common crash artefact — a torn final record —
// into a cleanly detectable log end instead of a garbage insert.
const (
	walMagic      = uint32(0x5046574C) // "PFWL"
	walVersion    = uint16(1)
	walHeaderSize = 8
	walRecordSize = 20
)

// Record is one acknowledged insert.
type Record struct {
	Key     float64
	Measure float64
}

// Exported sizes of the WAL wire format. The 20-byte CRC'd record encoding
// doubles as the replication wire format (internal/cluster streams WAL
// tails verbatim), so the arithmetic between byte offsets and record
// sequence numbers is public.
const (
	WALHeaderSize = walHeaderSize
	WALRecordSize = walRecordSize
)

// MarshalRecords encodes records in the WAL wire format: 20 bytes each —
// key float64 | measure float64 | crc32c(key, measure) — little endian.
// The same bytes are valid as a WAL body suffix and as a replication
// stream payload.
func MarshalRecords(recs []Record) []byte {
	buf := make([]byte, len(recs)*walRecordSize)
	for i, r := range recs {
		b := buf[i*walRecordSize:]
		binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.Key))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.Measure))
		binary.LittleEndian.PutUint32(b[16:], crc32.Checksum(b[:16], crcTable))
	}
	return buf
}

// UnmarshalRecords decodes a complete wire payload produced by
// MarshalRecords. Unlike decodeRecords (which tolerates a torn tail — the
// normal crash artefact of an append-only file), a wire payload arrives
// over a reliable transport, so a partial record or checksum failure is
// corruption: the whole payload is rejected with ErrCorrupt.
func UnmarshalRecords(data []byte) ([]Record, error) {
	if len(data)%walRecordSize != 0 {
		return nil, fmt.Errorf("%w: record payload of %d bytes is not a record multiple", ErrCorrupt, len(data))
	}
	recs, valid := decodeRecords(data)
	if valid != len(data) {
		return nil, fmt.Errorf("%w: record checksum mismatch at byte %d", ErrCorrupt, valid)
	}
	return recs, nil
}

// DecodeWALFile parses a complete WAL file image without touching any
// disk state: it validates the header and decodes every intact record,
// reporting how many trailing bytes are torn (short or checksum-failing).
// The read-only counterpart of OpenWAL's recovery, for offline inspection
// (polyfit-cli wal). An empty image is a valid empty log.
func DecodeWALFile(data []byte) (recs []Record, tornBytes int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < walHeaderSize || binary.LittleEndian.Uint32(data[0:]) != walMagic {
		return nil, 0, fmt.Errorf("%w: wal header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("%w: wal version %d", ErrCorrupt, v)
	}
	body := data[walHeaderSize:]
	recs, valid := decodeRecords(body)
	return recs, len(body) - valid, nil
}

// decodeRecords reads consecutive CRC-checked records from data, stopping
// at the first torn or checksum-failing one, and returns the records plus
// how many bytes were valid.
func decodeRecords(data []byte) (recs []Record, valid int) {
	for valid+walRecordSize <= len(data) {
		rec := data[valid : valid+walRecordSize]
		if crc32.Checksum(rec[:16], crcTable) != binary.LittleEndian.Uint32(rec[16:]) {
			break
		}
		recs = append(recs, Record{
			Key:     math.Float64frombits(binary.LittleEndian.Uint64(rec[0:])),
			Measure: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		})
		valid += walRecordSize
	}
	return recs, valid
}

// WAL is an append-only, fsync-on-append log of acknowledged inserts for
// one index. It is safe for concurrent use.
//
// Failed appends are retried with backoff; between attempts any partial
// bytes of the failed write are truncated away so the on-disk log never
// carries garbage mid-file. If even that repair truncate fails, the WAL
// marks itself sick and refuses further appends until Reset rewrites it —
// the caller degrades to non-durable acks rather than blocking on a disk
// that cannot be trusted.
type WAL struct {
	mu    sync.Mutex
	path  string
	fsys  FS
	retry RetryPolicy
	f     File
	size  int64 // header + records, maintained to avoid a stat per append
	sick  bool  // repair truncate failed; on-disk tail state unknown
}

// OpenWAL opens (creating if absent) the WAL at path on the real disk. See
// openWALFS.
func OpenWAL(path string) (w *WAL, recovered []Record, droppedBytes int, err error) {
	return openWALFS(path, OSFS(), DefaultRetry)
}

// OpenWAL opens the WAL at path through the store's filesystem and retry
// policy; paths normally come from the store's own WALPath/ShardWALPath.
func (s *Store) OpenWAL(path string) (w *WAL, recovered []Record, droppedBytes int, err error) {
	return openWALFS(path, s.fs, s.retry)
}

// openWALFS opens (creating if absent) the WAL at path and returns the valid
// records already in it. A torn or checksum-failing tail is truncated away
// so appends resume from the last clean record boundary; the number of
// dropped bytes is returned for reporting. A corrupt header makes the whole
// log unreadable and is reported as ErrCorrupt — the caller decides whether
// to set the file aside and start fresh.
func openWALFS(path string, fsys FS, retry RetryPolicy) (w *WAL, recovered []Record, droppedBytes int, err error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, nil, 0, fmt.Errorf("persist: read wal: %w", err)
	}
	fresh := len(data) == 0
	if !fresh {
		if len(data) < walHeaderSize ||
			binary.LittleEndian.Uint32(data[0:]) != walMagic {
			return nil, nil, 0, fmt.Errorf("%w: wal header", ErrCorrupt)
		}
		if v := binary.LittleEndian.Uint16(data[4:]); v != walVersion {
			return nil, nil, 0, fmt.Errorf("%w: wal version %d", ErrCorrupt, v)
		}
		body := data[walHeaderSize:]
		var valid int
		recovered, valid = decodeRecords(body)
		droppedBytes = len(body) - valid
		if droppedBytes > 0 {
			if err := fsys.Truncate(path, int64(walHeaderSize+valid)); err != nil {
				return nil, nil, 0, fmt.Errorf("persist: truncate torn wal tail: %w", err)
			}
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("persist: open wal: %w", err)
	}
	w = &WAL{path: path, fsys: fsys, retry: retry.norm(), f: f,
		size: int64(walHeaderSize + len(recovered)*walRecordSize)}
	if fresh {
		header := make([]byte, walHeaderSize)
		binary.LittleEndian.PutUint32(header[0:], walMagic)
		binary.LittleEndian.PutUint16(header[4:], walVersion)
		if _, err := f.Write(header); err != nil {
			return nil, nil, 0, errors.Join(fmt.Errorf("persist: write wal header: %w", err), f.Close())
		}
		if err := f.Sync(); err != nil {
			return nil, nil, 0, errors.Join(fmt.Errorf("persist: fsync wal header: %w", err), f.Close())
		}
	}
	return w, recovered, droppedBytes, nil
}

// Append writes the records and fsyncs once. When Append returns nil the
// records are durable — callers acknowledge the corresponding inserts only
// after that. Transient failures are retried per the retry policy after
// truncating away any partially written bytes, so a retried (or later)
// append always starts at a clean record boundary.
func (w *WAL) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	buf := MarshalRecords(recs)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("%w: %s", ErrClosed, w.path)
	}
	if w.sick {
		return fmt.Errorf("%w: %s", ErrSick, w.path)
	}
	var err error
	err = w.retry.run(func() error {
		werr := w.writeAndSyncLocked(buf)
		if werr == nil {
			return nil
		}
		// Drop whatever partial bytes the failed attempt may have left so
		// the next write (retry or future append) lands on a record
		// boundary. O_APPEND writes resume at the new end of file.
		if terr := w.fsys.Truncate(w.path, w.size); terr != nil {
			w.sick = true
			return fmt.Errorf("%v; repair truncate: %w", werr, terr)
		}
		return werr
	})
	if err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

func (w *WAL) writeAndSyncLocked(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

// Sick reports whether the WAL has refused appends after a failed repair.
// A sick WAL heals only through Reset.
func (w *WAL) Sick() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sick
}

// Reset atomically rewrites the log as an empty (header-only) file and
// clears the sick flag. Callers use it after a snapshot has made every
// applied record durable through other means, so dropping the log —
// whatever state its tail is in — loses nothing.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("%w: %s", ErrClosed, w.path)
	}
	header := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], walMagic)
	binary.LittleEndian.PutUint16(header[4:], walVersion)
	if err := w.retry.run(func() error {
		return writeFileAtomic(w.fsys, w.path, header)
	}); err != nil {
		return err
	}
	//lint:ignore syncclose the old descriptor points at the file writeFileAtomic already unlinked; its close error cannot affect durability
	w.f.Close()
	f, err := w.fsys.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.f = nil
		return fmt.Errorf("persist: reopen wal after reset: %w", err)
	}
	w.f = f
	w.size = walHeaderSize
	w.sick = false
	return nil
}

// ReadFrom reads the records between the byte offset and the current end
// of the log, returning them together with the offset one past the last
// record read (the cursor for the next call). Offsets are record
// boundaries: WALHeaderSize is the start of the log, and any previously
// returned next offset (or Size()) is valid. Every record below Size() was
// fsynced before its insert was acknowledged, so a ReadFrom tail is safe
// to replicate — it can never contain an unacknowledged record.
//
// The read holds the WAL lock, so it observes a consistent file: a
// concurrent Append lands entirely before or entirely after the tail.
// Callers coordinating with TruncateTo (which rewrites offsets) must
// serialise externally — see the serving layer's replication state.
func (w *WAL) ReadFrom(offset int64) (recs []Record, next int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrClosed, w.path)
	}
	if offset < walHeaderSize || offset > w.size || (offset-walHeaderSize)%walRecordSize != 0 {
		return nil, 0, fmt.Errorf("%w: bad wal read offset %d (size %d)", ErrInvalidArgument, offset, w.size)
	}
	if offset == w.size {
		return nil, offset, nil
	}
	buf := make([]byte, w.size-offset)
	if _, err := w.fsys.ReadAt(w.path, buf, offset); err != nil {
		return nil, 0, fmt.Errorf("persist: read wal tail: %w", err)
	}
	recs, valid := decodeRecords(buf)
	if valid != len(buf) {
		// Below w.size every record was written and fsynced before the append
		// returned; a checksum failure here means the file rotted underneath.
		return nil, 0, fmt.Errorf("%w: wal record checksum at offset %d", ErrCorrupt, offset+int64(valid))
	}
	return recs, w.size, nil
}

// Size returns the current file size (header included). The value is a
// valid TruncateTo cut point: every record below it is durable.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records returns how many records the log currently holds.
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return (w.size - walHeaderSize) / walRecordSize
}

// TruncateTo drops the log prefix below the cut offset (a Size() observed
// earlier, i.e. a record boundary), keeping records appended after it. It
// is called after a snapshot covering that prefix has been made durable:
// the file is atomically rewritten as header + uncovered tail, so a crash
// during truncation leaves either the old log (fully replayable) or the new
// one.
func (w *WAL) TruncateTo(cut int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("%w: %s", ErrClosed, w.path)
	}
	if cut < walHeaderSize || cut > w.size || (cut-walHeaderSize)%walRecordSize != 0 {
		return fmt.Errorf("%w: bad wal cut %d (size %d)", ErrInvalidArgument, cut, w.size)
	}
	if cut == walHeaderSize {
		return nil // nothing covered; keep everything
	}
	tail := make([]byte, w.size-cut)
	if len(tail) > 0 {
		if _, err := w.fsys.ReadAt(w.path, tail, cut); err != nil {
			return fmt.Errorf("persist: read wal tail: %w", err)
		}
	}
	header := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(header[0:], walMagic)
	binary.LittleEndian.PutUint16(header[4:], walVersion)
	if err := w.retry.run(func() error {
		return writeFileAtomic(w.fsys, w.path, header, tail)
	}); err != nil {
		return err
	}
	// The old descriptor now points at the unlinked file; reopen the new one.
	//lint:ignore syncclose closing an unlinked descriptor; the replacement file was already fsynced by writeFileAtomic
	w.f.Close()
	f, err := w.fsys.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.f = nil
		return fmt.Errorf("persist: reopen wal after truncate: %w", err)
	}
	w.f = f
	w.size = int64(walHeaderSize + len(tail))
	return nil
}

// Close releases the file handle. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// SetAside renames a damaged WAL out of the way (wal.pf -> wal.pf.corrupt)
// so a fresh log can be started while keeping the bytes for inspection.
func SetAside(path string) error {
	return os.Rename(path, path+".corrupt")
}

// SetAside is the store-filesystem variant of the package-level SetAside.
func (s *Store) SetAside(path string) error {
	return s.fs.Rename(path, path+".corrupt")
}
