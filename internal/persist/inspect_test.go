package persist

import (
	"os"
	"testing"
)

// TestDecodeWALFile covers the read-only inspector: intact records, torn
// tails, and header validation.
func TestDecodeWALFile(t *testing.T) {
	path := t.TempDir() + "/w.wal"
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]Record{{Key: float64(i), Measure: float64(i * 10)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn, err := DecodeWALFile(data)
	if err != nil || torn != 0 || len(recs) != 5 {
		t.Fatalf("recs=%d torn=%d err=%v", len(recs), torn, err)
	}
	if recs[3].Key != 3 || recs[3].Measure != 30 {
		t.Fatalf("record 3: %+v", recs[3])
	}
	// A torn tail is reported, not fatal.
	recs, torn, err = DecodeWALFile(data[:len(data)-7])
	if err != nil || torn != 13 || len(recs) != 4 {
		t.Fatalf("torn tail: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
	// A flipped record byte stops decoding at that record.
	bad := append([]byte(nil), data...)
	bad[WALHeaderSize+2*WALRecordSize+3] ^= 0xff
	recs, torn, err = DecodeWALFile(bad)
	if err != nil || len(recs) != 2 || torn != 3*WALRecordSize {
		t.Fatalf("flipped: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
	// Garbage headers are rejected; an empty image is an empty log.
	if _, _, err := DecodeWALFile([]byte("nope")); err == nil {
		t.Fatal("bad header accepted")
	}
	if recs, torn, err := DecodeWALFile(nil); err != nil || len(recs) != 0 || torn != 0 {
		t.Fatalf("empty: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
}
