package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openWAL(t *testing.T, path string) (*WAL, []Record, int) {
	t.Helper()
	w, recs, dropped, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs, dropped
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, recs, dropped := openWAL(t, path)
	if len(recs) != 0 || dropped != 0 {
		t.Fatalf("fresh wal recovered %d records, dropped %d", len(recs), dropped)
	}
	want := []Record{{1.5, 2}, {-3, 0.25}, {1e9, -1e-9}}
	if err := w.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	if n := w.Records(); n != 3 {
		t.Fatalf("Records() = %d, want 3", n)
	}
	w.Close()

	_, recs, dropped = openWAL(t, path)
	if dropped != 0 {
		t.Fatalf("clean wal dropped %d bytes", dropped)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	if err := w.Append([]Record{{1, 1}, {2, 2}, {3, 3}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate a crash mid-append: chop the file inside the last record.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	w2, recs, dropped := openWAL(t, path)
	if len(recs) != 2 || dropped != walRecordSize-7 {
		t.Fatalf("torn tail: replayed %d records, dropped %d bytes; want 2, %d",
			len(recs), dropped, walRecordSize-7)
	}
	// The log must be usable again from the clean boundary.
	if err := w2.Append([]Record{{4, 4}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, dropped = openWAL(t, path)
	if len(recs) != 3 || dropped != 0 || recs[2] != (Record{4, 4}) {
		t.Fatalf("after torn-tail recovery: %+v (dropped %d)", recs, dropped)
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}, {2, 2}, {3, 3}})
	w.Close()
	data, _ := os.ReadFile(path)
	data[walHeaderSize+walRecordSize+5] ^= 0x10 // flip a bit in record 2
	os.WriteFile(path, data, 0o644)
	_, recs, dropped := openWAL(t, path)
	if len(recs) != 1 || dropped != 2*walRecordSize {
		t.Fatalf("corrupt middle record: replayed %d, dropped %d", len(recs), dropped)
	}
}

func TestWALCorruptHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}})
	w.Close()
	data, _ := os.ReadFile(path)
	data[0] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, _, _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt header: %v, want ErrCorrupt", err)
	}
	// SetAside moves it out of the way so a fresh log can start.
	if err := SetAside(path); err != nil {
		t.Fatal(err)
	}
	w2, recs, _ := openWAL(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh wal after SetAside replayed %d records", len(recs))
	}
	w2.Close()
}

func TestWALTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}, {2, 2}})
	cut := w.Size()
	w.Append([]Record{{3, 3}, {4, 4}})
	if err := w.TruncateTo(cut); err != nil {
		t.Fatal(err)
	}
	if n := w.Records(); n != 2 {
		t.Fatalf("after TruncateTo: %d records, want 2", n)
	}
	// Appends continue on the rewritten file.
	if err := w.Append([]Record{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, _ := openWAL(t, path)
	want := []Record{{3, 3}, {4, 4}, {5, 5}}
	if len(recs) != len(want) {
		t.Fatalf("replayed %+v, want %+v", recs, want)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("replayed %+v, want %+v", recs, want)
		}
	}
}

func TestWALTruncateToWholeLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}, {2, 2}})
	if err := w.TruncateTo(w.Size()); err != nil {
		t.Fatal(err)
	}
	if n := w.Records(); n != 0 {
		t.Fatalf("after full truncate: %d records", n)
	}
	w.Append([]Record{{9, 9}})
	w.Close()
	_, recs, _ := openWAL(t, path)
	if len(recs) != 1 || recs[0] != (Record{9, 9}) {
		t.Fatalf("replayed %+v", recs)
	}
}

func TestWALBadCutRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}})
	for _, cut := range []int64{-1, 3, walHeaderSize + 1, w.Size() + walRecordSize} {
		if err := w.TruncateTo(cut); err == nil {
			t.Errorf("cut %d accepted", cut)
		}
	}
}

func TestWALReadFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	want := []Record{{1, 1}, {2, 4}, {3, 9}, {4, 16}}
	if err := w.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	cursor := int64(WALHeaderSize)
	recs, next, err := w.ReadFrom(cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != want[0] || recs[1] != want[1] {
		t.Fatalf("ReadFrom(start) = %+v, want %+v", recs, want[:2])
	}
	if next != WALHeaderSize+2*WALRecordSize {
		t.Fatalf("next = %d, want %d", next, WALHeaderSize+2*WALRecordSize)
	}
	// An exhausted cursor returns no records and the same offset.
	recs, again, err := w.ReadFrom(next)
	if err != nil || len(recs) != 0 || again != next {
		t.Fatalf("ReadFrom(end) = %+v next %d err %v", recs, again, err)
	}
	// New appends show up from the old cursor.
	if err := w.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	recs, next2, err := w.ReadFrom(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != want[2] || recs[1] != want[3] {
		t.Fatalf("ReadFrom(tail) = %+v, want %+v", recs, want[2:])
	}
	if next2 != w.Size() {
		t.Fatalf("next = %d, want size %d", next2, w.Size())
	}
}

func TestWALReadFromBadOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}})
	for _, off := range []int64{-1, 0, WALHeaderSize + 1, w.Size() + WALRecordSize} {
		if _, _, err := w.ReadFrom(off); !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("ReadFrom(%d) err = %v, want ErrInvalidArgument", off, err)
		}
	}
	w.Close()
	if _, _, err := w.ReadFrom(WALHeaderSize); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom on closed wal: %v, want ErrClosed", err)
	}
}

func TestWALReadFromAfterTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.pf")
	w, _, _ := openWAL(t, path)
	w.Append([]Record{{1, 1}, {2, 2}})
	cut := w.Size()
	w.Append([]Record{{3, 3}})
	if err := w.TruncateTo(cut); err != nil {
		t.Fatal(err)
	}
	// After a truncation the log restarts at the header: the surviving tail
	// reads back from WALHeaderSize.
	recs, next, err := w.ReadFrom(WALHeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != (Record{3, 3}) || next != w.Size() {
		t.Fatalf("post-truncate tail = %+v next %d", recs, next)
	}
}

func TestMarshalUnmarshalRecords(t *testing.T) {
	want := []Record{{1.5, -2.5}, {0, 0}, {1e300, -1e-300}}
	wire := MarshalRecords(want)
	if len(wire) != len(want)*WALRecordSize {
		t.Fatalf("wire length %d, want %d", len(wire), len(want)*WALRecordSize)
	}
	got, err := UnmarshalRecords(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if recs, err := UnmarshalRecords(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty payload: %v %v", recs, err)
	}
	// A wire payload is all-or-nothing: partial records and bit flips reject.
	if _, err := UnmarshalRecords(wire[:len(wire)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial payload err = %v, want ErrCorrupt", err)
	}
	flipped := append([]byte(nil), wire...)
	flipped[WALRecordSize+4] ^= 0x40
	if _, err := UnmarshalRecords(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload err = %v, want ErrCorrupt", err)
	}
}
