// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. It exists to solve the paper's curve-fitting LP (9)
// directly and to serve as an independent reference against which the
// specialised minimax solvers (internal/minimax) are cross-checked in tests.
//
// The solver handles minimisation problems with ≤ / = / ≥ rows and a mix of
// free and non-negative variables. It is a textbook tableau implementation
// with Dantzig pricing and a Bland's-rule fallback for anti-cycling; it is
// intended for problems with up to a few thousand constraints, which covers
// every fit the paper performs.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the row sense of a constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // Σ a_j x_j ≤ b
	GE                 // Σ a_j x_j ≥ b
	EQ                 // Σ a_j x_j = b
)

// Status reports how the solve terminated.
type Status int

// Solver termination states.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a minimisation LP: minimise C·x subject to the rows of A with
// senses Rel and right-hand sides B. Variables are non-negative unless the
// corresponding Free entry is true.
type Problem struct {
	C    []float64
	A    [][]float64
	B    []float64
	Rel  []Relation
	Free []bool // nil means all variables ≥ 0
}

// Result carries the solution of a Problem.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	Iters     int
}

// ErrDimension reports inconsistent problem dimensions.
var ErrDimension = errors.New("lp: inconsistent problem dimensions")

const (
	pivotEps    = 1e-9
	feasEps     = 1e-7
	maxItersMul = 200 // iteration cap = maxItersMul * (rows + cols)
)

// Solve runs two-phase primal simplex on p.
func Solve(p Problem) (Result, error) {
	m := len(p.A)
	n := len(p.C)
	if len(p.B) != m || len(p.Rel) != m {
		return Result{}, ErrDimension
	}
	for _, row := range p.A {
		if len(row) != n {
			return Result{}, ErrDimension
		}
	}
	if p.Free != nil && len(p.Free) != n {
		return Result{}, ErrDimension
	}

	// --- Standard-form conversion -------------------------------------
	// Column layout: for each original variable either one column (x ≥ 0)
	// or two (x = x⁺ − x⁻); then slack/surplus columns; then artificials.
	type colRef struct {
		orig int     // original variable index, -1 for slack/artificial
		sign float64 // +1 or −1 (for the split negative part)
	}
	var cols []colRef
	colOf := make([][2]int, n) // (positive column, negative column or -1)
	for j := 0; j < n; j++ {
		colOf[j] = [2]int{len(cols), -1}
		cols = append(cols, colRef{orig: j, sign: 1})
		if p.Free != nil && p.Free[j] {
			colOf[j][1] = len(cols)
			cols = append(cols, colRef{orig: j, sign: -1})
		}
	}
	slackStart := len(cols)
	numSlacks := 0
	for _, rel := range p.Rel {
		if rel != EQ {
			numSlacks++
		}
	}
	for k := 0; k < numSlacks; k++ {
		cols = append(cols, colRef{orig: -1})
	}
	artStart := len(cols)

	// Build rows with b ≥ 0.
	rowsA := make([][]float64, m)
	rhs := make([]float64, m)
	basis := make([]int, m)
	numArts := 0
	slackIdx := 0
	for i := 0; i < m; i++ {
		row := make([]float64, artStart) // artificials appended later
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		rel := p.Rel[i]
		if sign < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j := 0; j < n; j++ {
			a := sign * p.A[i][j]
			row[colOf[j][0]] = a
			if colOf[j][1] >= 0 {
				row[colOf[j][1]] = -a
			}
		}
		rhs[i] = sign * p.B[i]
		switch rel {
		case LE:
			row[slackStart+slackIdx] = 1
			basis[i] = slackStart + slackIdx
			slackIdx++
		case GE:
			row[slackStart+slackIdx] = -1
			slackIdx++
			basis[i] = -1 // artificial assigned below
			numArts++
		case EQ:
			basis[i] = -1
			numArts++
		}
		rowsA[i] = row
	}
	totalCols := artStart + numArts
	artIdx := artStart
	for i := 0; i < m; i++ {
		grown := make([]float64, totalCols)
		copy(grown, rowsA[i])
		rowsA[i] = grown
		if basis[i] == -1 {
			rowsA[i][artIdx] = 1
			basis[i] = artIdx
			artIdx++
		}
	}
	for k := 0; k < numArts; k++ {
		cols = append(cols, colRef{orig: -1})
	}

	// --- Tableau -------------------------------------------------------
	// t[i][j] for i<m is the constraint rows; t[m] is the reduced-cost row;
	// column totalCols is the rhs / negative objective.
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = append(rowsA[i], rhs[i])
	}
	t[m] = make([]float64, totalCols+1)

	maxIters := maxItersMul * (m + totalCols)
	totalIters := 0

	installCosts := func(cost []float64) {
		// Reduced-cost row = cost − Σ_i cost[basis[i]] * row_i.
		z := t[m]
		for j := 0; j <= totalCols; j++ {
			if j < totalCols {
				z[j] = cost[j]
			} else {
				z[j] = 0
			}
		}
		for i := 0; i < m; i++ {
			cb := cost[basis[i]]
			if cb == 0 {
				continue
			}
			ri := t[i]
			for j := 0; j <= totalCols; j++ {
				z[j] -= cb * ri[j]
			}
		}
	}

	pivot := func(r, c int) {
		pr := t[r]
		pv := pr[c]
		inv := 1 / pv
		for j := 0; j <= totalCols; j++ {
			pr[j] *= inv
		}
		for i := 0; i <= m; i++ {
			if i == r {
				continue
			}
			f := t[i][c]
			if f == 0 {
				continue
			}
			ri := t[i]
			for j := 0; j <= totalCols; j++ {
				ri[j] -= f * pr[j]
			}
			ri[c] = 0
		}
		pr[c] = 1
		basis[r] = c
	}

	// iterate runs simplex until optimal/unbounded with the current cost
	// row. allowed[j]==false bars a column from entering (used to freeze
	// artificials in phase 2).
	iterate := func(allowed func(int) bool) Status {
		useBland := false
		for {
			totalIters++
			if totalIters > maxIters {
				return IterLimit
			}
			// Entering column.
			enter := -1
			best := -pivotEps
			for j := 0; j < totalCols; j++ {
				if !allowed(j) {
					continue
				}
				rc := t[m][j]
				if useBland {
					if rc < -pivotEps {
						enter = j
						break
					}
				} else if rc < best {
					best = rc
					enter = j
				}
			}
			if enter == -1 {
				return Optimal
			}
			// Ratio test (Bland ties on smallest basis index when active).
			leave := -1
			bestRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				a := t[i][enter]
				if a <= pivotEps {
					continue
				}
				ratio := t[i][totalCols] / a
				if ratio < bestRatio-1e-12 ||
					(useBland && math.Abs(ratio-bestRatio) <= 1e-12 && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
			if leave == -1 {
				return Unbounded
			}
			pivot(leave, enter)
			// Degeneracy heuristic: after many iterations switch to Bland.
			if totalIters > maxIters/2 {
				useBland = true
			}
		}
	}

	// --- Phase 1 ---------------------------------------------------------
	if numArts > 0 {
		cost := make([]float64, totalCols)
		for j := artStart; j < totalCols; j++ {
			cost[j] = 1
		}
		installCosts(cost)
		st := iterate(func(int) bool { return true })
		if st == IterLimit {
			return Result{Status: IterLimit, Iters: totalIters}, nil
		}
		phase1Obj := -t[m][totalCols]
		if phase1Obj > feasEps {
			return Result{Status: Infeasible, Iters: totalIters}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] < artStart {
				continue
			}
			moved := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t[i][j]) > pivotEps {
					pivot(i, j)
					moved = true
					break
				}
			}
			if !moved && math.Abs(t[i][totalCols]) > feasEps {
				return Result{Status: Infeasible, Iters: totalIters}, nil
			}
		}
	}

	// --- Phase 2 ---------------------------------------------------------
	cost := make([]float64, totalCols)
	for j := 0; j < artStart; j++ {
		ref := cols[j]
		if ref.orig >= 0 {
			cost[j] = ref.sign * p.C[ref.orig]
		}
	}
	installCosts(cost)
	st := iterate(func(j int) bool { return j < artStart })
	if st == Unbounded {
		return Result{Status: Unbounded, Iters: totalIters}, nil
	}
	if st == IterLimit {
		return Result{Status: IterLimit, Iters: totalIters}, nil
	}

	// --- Extract solution -------------------------------------------------
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		ref := cols[basis[i]]
		if ref.orig >= 0 {
			x[ref.orig] += ref.sign * t[i][totalCols]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: obj, Iters: totalIters}, nil
}
