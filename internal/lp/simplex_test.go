package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("Solve status = %v, want optimal", res.Status)
	}
	return res
}

func TestSimple2DMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
	// (classic example: optimum 36 at (2,6)) — minimise the negation.
	p := Problem{
		C:   []float64{-3, -5},
		A:   [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B:   []float64{4, 12, 18},
		Rel: []Relation{LE, LE, LE},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective+36) > 1e-8 {
		t.Errorf("objective = %g, want -36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-6) > 1e-8 {
		t.Errorf("x = %v, want (2,6)", res.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≥ 2, y ≥ 3  → x=7, y=3, obj=13
	p := Problem{
		C:   []float64{1, 2},
		A:   [][]float64{{1, 1}, {1, 0}, {0, 1}},
		B:   []float64{10, 2, 3},
		Rel: []Relation{EQ, GE, GE},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective-13) > 1e-8 {
		t.Errorf("objective = %g, want 13", res.Objective)
	}
}

func TestFreeVariables(t *testing.T) {
	// min t s.t. t ≥ 3 - a, t ≥ a - 3, a free, t ≥ 0.
	// Optimal: a = 3, t = 0.
	p := Problem{
		C:    []float64{0, 1},
		A:    [][]float64{{1, 1}, {-1, 1}},
		B:    []float64{3, -3},
		Rel:  []Relation{GE, GE},
		Free: []bool{true, false},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective) > 1e-8 {
		t.Errorf("objective = %g, want 0", res.Objective)
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Errorf("a = %g, want 3", res.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	// x ≥ 5 and x ≤ 3 cannot hold.
	p := Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{5, 3},
		Rel: []Relation{GE, LE},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x ≥ 1: x can grow forever.
	p := Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Relation{GE},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x ≤ -4 (i.e. x ≥ 4).
	p := Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{-4},
		Rel: []Relation{LE},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective-4) > 1e-8 {
		t.Errorf("objective = %g, want 4", res.Objective)
	}
}

func TestDimensionErrors(t *testing.T) {
	bad := []Problem{
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Rel: []Relation{LE}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Rel: []Relation{LE}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, Rel: []Relation{LE, GE}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, Rel: []Relation{LE}, Free: []bool{true, false}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected dimension error", i)
		}
	}
}

// TestMinimaxFitLP solves the paper's LP (9) directly for a tiny instance with
// a known answer: fitting a constant (deg=0) to {0, 1} gives t = 0.5, a0 = 0.5.
func TestMinimaxFitLPDeg0(t *testing.T) {
	// Variables: a0 (free), t. Constraints per point k:
	//   a0 + t ≥ y   and   -a0 + t ≥ -y
	p := Problem{
		C: []float64{0, 1},
		A: [][]float64{
			{1, 1}, {-1, 1}, // point y=0
			{1, 1}, {-1, 1}, // point y=1
		},
		B:    []float64{0, 0, 1, -1},
		Rel:  []Relation{GE, GE, GE, GE},
		Free: []bool{true, false},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective-0.5) > 1e-8 {
		t.Errorf("minimax error = %g, want 0.5", res.Objective)
	}
	if math.Abs(res.X[0]-0.5) > 1e-6 {
		t.Errorf("a0 = %g, want 0.5", res.X[0])
	}
}

// TestMinimaxLineExact: a perfectly linear dataset fits with zero error.
func TestMinimaxLineExact(t *testing.T) {
	xs := []float64{-1, -0.5, 0, 0.5, 1}
	var a [][]float64
	var b []float64
	var rel []Relation
	for _, x := range xs {
		y := 2 + 3*x
		a = append(a, []float64{1, x, 1}, []float64{-1, -x, 1})
		b = append(b, y, -y)
		rel = append(rel, GE, GE)
	}
	p := Problem{
		C:    []float64{0, 0, 1},
		A:    a,
		B:    b,
		Rel:  rel,
		Free: []bool{true, true, false},
	}
	res := solveOK(t, p)
	if res.Objective > 1e-8 {
		t.Errorf("line should fit exactly, error %g", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-3) > 1e-6 {
		t.Errorf("coeffs = %v, want (2,3)", res.X[:2])
	}
}

// Property test: LP optimum for random minimax fits is never worse than the
// least-squares fit error and never better than 0; and the solution is
// feasible (all residuals ≤ t).
func TestMinimaxFitRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		deg := rng.Intn(3)
		npts := deg + 2 + rng.Intn(10)
		xs := make([]float64, npts)
		ys := make([]float64, npts)
		for i := range xs {
			xs[i] = -1 + 2*float64(i)/float64(npts-1)
			ys[i] = rng.NormFloat64()
		}
		nv := deg + 2 // coeffs + t
		var a [][]float64
		var b []float64
		var rel []Relation
		for i, x := range xs {
			row1 := make([]float64, nv)
			row2 := make([]float64, nv)
			xp := 1.0
			for j := 0; j <= deg; j++ {
				row1[j] = xp
				row2[j] = -xp
				xp *= x
			}
			row1[nv-1], row2[nv-1] = 1, 1
			a = append(a, row1, row2)
			b = append(b, ys[i], -ys[i])
			rel = append(rel, GE, GE)
		}
		free := make([]bool, nv)
		for j := 0; j <= deg; j++ {
			free[j] = true
		}
		c := make([]float64, nv)
		c[nv-1] = 1
		res := solveOK(t, Problem{C: c, A: a, B: b, Rel: rel, Free: free})
		// Feasibility: residuals within t (+tolerance).
		for i, x := range xs {
			pv := 0.0
			xp := 1.0
			for j := 0; j <= deg; j++ {
				pv += res.X[j] * xp
				xp *= x
			}
			if math.Abs(ys[i]-pv) > res.Objective+1e-6 {
				t.Fatalf("iter %d: residual %g exceeds t=%g", iter, math.Abs(ys[i]-pv), res.Objective)
			}
		}
		if res.Objective < -1e-9 {
			t.Fatalf("iter %d: negative minimax error %g", iter, res.Objective)
		}
	}
}

func TestDegenerateManyTies(t *testing.T) {
	// Heavily degenerate LP: several identical rows; should still terminate.
	p := Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 0}},
		B:   []float64{2, 2, 2, 1},
		Rel: []Relation{GE, GE, GE, GE},
	}
	res := solveOK(t, p)
	if math.Abs(res.Objective-2) > 1e-8 {
		t.Errorf("objective = %g, want 2", res.Objective)
	}
}
