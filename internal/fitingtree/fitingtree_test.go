package fitingtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[float64]bool, n)
	for len(set) < n {
		set[math.Round(rng.NormFloat64()*1e5)/4] = true
	}
	keys := make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

func TestValidation(t *testing.T) {
	if _, err := BuildCount(nil, 1, false); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BuildSum([]float64{1, 2}, []float64{1}, 1, false); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BuildSum([]float64{2, 1}, []float64{1, 1}, 1, false); err == nil {
		t.Error("unsorted keys should error")
	}
	if _, err := BuildCount([]float64{1, 2}, -1, false); err == nil {
		t.Error("negative delta should error")
	}
}

// TestConeRespectsDelta: every point must be within δ of its segment line.
func TestConeRespectsDelta(t *testing.T) {
	keys := genKeys(3000, 1)
	const delta = 8.0
	tr, err := BuildCount(keys, delta, false)
	if err != nil {
		t.Fatal(err)
	}
	cf := 0.0
	for _, k := range keys {
		cf++
		if e := math.Abs(tr.CF(k) - cf); e > delta+1e-9 {
			t.Fatalf("CF(%g) error %g > δ=%g", k, e, delta)
		}
	}
}

// TestAbsoluteGuarantee: |A − R| ≤ 2δ at workload endpoints (Lemma 2 logic
// applied to the linear baseline).
func TestAbsoluteGuarantee(t *testing.T) {
	keys := genKeys(3000, 2)
	const delta = 10.0
	tr, err := BuildCount(keys, delta, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 500; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got := tr.RangeSum(l, u)
		want := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				want++
			}
		}
		if math.Abs(got-want) > 2*delta+1e-9 {
			t.Fatalf("|%g − %g| > 2δ", got, want)
		}
	}
}

func TestRelativeGuarantee(t *testing.T) {
	keys := genKeys(4000, 4)
	tr, err := BuildCount(keys, 15, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	approx := 0
	for q := 0; q < 400; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, usedExact, err := tr.RangeSumRel(l, u, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				want++
			}
		}
		if usedExact {
			if got != want {
				t.Fatalf("exact path wrong: %g vs %g", got, want)
			}
			continue
		}
		approx++
		if want == 0 || math.Abs(got-want)/want > 0.05+1e-9 {
			t.Fatalf("relative error violated: got %g want %g", got, want)
		}
	}
	if approx == 0 {
		t.Fatal("approximate path never used")
	}
	// Without fallback the gate must error out instead.
	nofb, _ := BuildCount(keys, 15, false)
	if _, _, err := nofb.RangeSumRel(keys[0], keys[1], 1e-9); err != ErrNoFallback {
		t.Errorf("expected ErrNoFallback, got %v", err)
	}
	if _, _, err := tr.RangeSumRel(keys[0], keys[1], -1); err == nil {
		t.Error("non-positive εrel should error")
	}
}

// TestLinearDataOneSegment: perfectly uniform keys give a near-linear CDF.
func TestLinearDataOneSegment(t *testing.T) {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 3
	}
	tr, err := BuildCount(keys, 1.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSegments() != 1 {
		t.Errorf("uniform keys should need 1 segment, got %d", tr.NumSegments())
	}
}

// TestMoreSegmentsThanPolyFitStyleQuadratic: a quadratic CDF needs many
// linear segments at small δ.
func TestQuadraticNeedsManySegments(t *testing.T) {
	keys := make([]float64, 2000)
	for i := range keys {
		keys[i] = float64(i) * float64(i) / 100 // quadratic spacing
	}
	tr, err := BuildCount(keys, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSegments() < 10 {
		t.Errorf("quadratic CDF with tight δ should need many segments, got %d", tr.NumSegments())
	}
	if tr.Delta() != 2 {
		t.Errorf("Delta() = %g", tr.Delta())
	}
	if tr.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestLargerDeltaFewerSegments(t *testing.T) {
	keys := genKeys(2000, 6)
	prev := -1
	for _, delta := range []float64{2, 10, 50} {
		tr, err := BuildCount(keys, delta, false)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && tr.NumSegments() > prev {
			t.Errorf("δ=%g produced more segments (%d) than smaller δ (%d)", delta, tr.NumSegments(), prev)
		}
		prev = tr.NumSegments()
	}
}

func TestCFOutOfDomain(t *testing.T) {
	keys := []float64{10, 20, 30}
	tr, _ := BuildCount(keys, 1, false)
	if got := tr.CF(5); got != 0 {
		t.Errorf("CF below domain = %g, want 0", got)
	}
	if got := tr.CF(100); math.Abs(got-3) > 1+1e-9 {
		t.Errorf("CF above domain = %g, want ≈3", got)
	}
	if got := tr.RangeSum(30, 10); got != 0 {
		t.Errorf("inverted range = %g, want 0", got)
	}
}

func BenchmarkRangeSum(b *testing.B) {
	keys := genKeys(200000, 7)
	tr, _ := BuildCount(keys, 50, false)
	rng := rand.New(rand.NewSource(8))
	qs := make([][2]float64, 1024)
	for i := range qs {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		qs[i] = [2]float64{l, u}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&1023]
		tr.RangeSum(q[0], q[1])
	}
}
