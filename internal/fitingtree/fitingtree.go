// Package fitingtree implements the FITing-tree [20] baseline adapted to
// approximate range aggregate queries as described in Appendix A of the
// paper: the one-pass shrinking-cone algorithm segments the key-cumulative
// (or key-measure) function into maximal linear segments with per-point
// error ≤ δ, and the querying lemmas of Section V are applied on top.
package fitingtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kca"
)

// Segment is one linear piece: value(k) ≈ StartVal + Slope·(k − StartKey)
// for k ∈ [StartKey, EndKey].
type Segment struct {
	StartKey float64
	EndKey   float64
	StartVal float64
	Slope    float64
}

// Tree is a FITing-tree over a cumulative function, answering approximate
// SUM/COUNT range aggregates with the same guarantees (and gating rules) as
// PolyFit, but with linear segments.
type Tree struct {
	segs     []Segment
	startKey []float64 // parallel array for binary search
	delta    float64
	total    float64
	keyLo    float64
	keyHi    float64
	exact    *kca.Array // Problem-2 fallback (nil if disabled)
}

// ErrNoFallback mirrors core.ErrNoFallback for the relative-error path.
var ErrNoFallback = errors.New("fitingtree: relative query needs exact fallback")

// BuildSum fits CFsum of (keys, measures) with error δ per point.
// withFallback controls whether the exact KCA for Problem 2 is attached.
func BuildSum(keys, measures []float64, delta float64, withFallback bool) (*Tree, error) {
	if len(keys) == 0 || len(keys) != len(measures) {
		return nil, fmt.Errorf("fitingtree: %d keys, %d measures", len(keys), len(measures))
	}
	if delta < 0 {
		return nil, fmt.Errorf("fitingtree: negative delta")
	}
	cf := make([]float64, len(keys))
	run := 0.0
	for i, m := range measures {
		run += m
		cf[i] = run
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, fmt.Errorf("fitingtree: keys not strictly increasing at %d", i)
		}
	}
	t := &Tree{
		segs:  shrinkingCone(keys, cf, delta),
		delta: delta,
		total: run,
		keyLo: keys[0],
		keyHi: keys[len(keys)-1],
	}
	t.startKey = make([]float64, len(t.segs))
	for i, s := range t.segs {
		t.startKey[i] = s.StartKey
	}
	if withFallback {
		arr, err := kca.New(keys, measures)
		if err != nil {
			return nil, err
		}
		t.exact = arr
	}
	return t, nil
}

// BuildCount is BuildSum with unit measures.
func BuildCount(keys []float64, delta float64, withFallback bool) (*Tree, error) {
	ones := make([]float64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return BuildSum(keys, ones, delta, withFallback)
}

// shrinkingCone is the FITing-tree segmentation: maintain the cone of
// feasible slopes [slLow, slHigh] through the segment origin; a point whose
// exact slope falls outside the cone closes the segment.
func shrinkingCone(keys, vals []float64, delta float64) []Segment {
	var segs []Segment
	n := len(keys)
	i := 0
	for i < n {
		originK, originV := keys[i], vals[i]
		slLow, slHigh := -1e308, 1e308
		j := i + 1
		last := i
		for ; j < n; j++ {
			dx := keys[j] - originK
			sl := (vals[j] - originV) / dx
			if sl > slHigh || sl < slLow {
				break
			}
			// Shrink the cone so every earlier point stays within δ.
			if hi := (vals[j] + delta - originV) / dx; hi < slHigh {
				slHigh = hi
			}
			if lo := (vals[j] - delta - originV) / dx; lo > slLow {
				slLow = lo
			}
			last = j
		}
		slope := 0.0
		if last > i {
			slope = 0.5 * (slLow + slHigh)
		}
		segs = append(segs, Segment{
			StartKey: originK,
			EndKey:   keys[last],
			StartVal: originV,
			Slope:    slope,
		})
		i = last + 1
	}
	return segs
}

// CF evaluates the approximate cumulative function (clamped into the
// located segment, like PolyFit's evaluation).
func (t *Tree) CF(k float64) float64 {
	if k < t.keyLo {
		return 0
	}
	i := sort.SearchFloat64s(t.startKey, k)
	if i == len(t.startKey) || t.startKey[i] != k {
		if i == 0 {
			return 0
		}
		i--
	}
	s := t.segs[i]
	if k > s.EndKey {
		k = s.EndKey
	}
	return s.StartVal + s.Slope*(k-s.StartKey)
}

// RangeSum answers the approximate SUM/COUNT over (lq, uq]; with build δ,
// |A − R| ≤ 2δ at workload endpoints (Lemma 2 applied to linear segments).
func (t *Tree) RangeSum(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	return t.CF(uq) - t.CF(lq)
}

// RangeSumRel applies the Lemma 3 gate with exact fallback.
func (t *Tree) RangeSumRel(lq, uq, epsRel float64) (val float64, usedExact bool, err error) {
	if epsRel <= 0 {
		return 0, false, fmt.Errorf("fitingtree: non-positive relative error %g", epsRel)
	}
	a := t.RangeSum(lq, uq)
	if a >= 2*t.delta*(1+1/epsRel) {
		return a, false, nil
	}
	if t.exact == nil {
		return 0, false, ErrNoFallback
	}
	return t.exact.RangeSum(lq, uq), true, nil
}

// NumSegments returns the number of linear segments.
func (t *Tree) NumSegments() int { return len(t.segs) }

// Delta returns the build δ.
func (t *Tree) Delta() float64 { return t.delta }

// SizeBytes reports the structure footprint (4 float64 per segment plus the
// search array).
func (t *Tree) SizeBytes() int { return 32*len(t.segs) + 8*len(t.startKey) }
