package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/persist"
)

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule("write@20-70, sync:0.05,eio:0.1,fsync@1-2,rename:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: "write", Lo: 20, Hi: 70},
		{Kind: "sync", P: 0.05},
		{Kind: "write", P: 0.1},
		{Kind: "sync", Lo: 1, Hi: 2},
		{Kind: "rename", P: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d: got %+v want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"write", "write@5", "write@9-3", "sync:1.5", "gremlins:0.5", "short@-1-4"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): expected error", bad)
		}
	}
	if rules, err := ParseSchedule(""); err != nil || len(rules) != 0 {
		t.Errorf("empty schedule: got %v, %v", rules, err)
	}
}

// write faults in a deterministic window hit exactly the scheduled ops.
func TestDeterministicWriteWindow(t *testing.T) {
	dir := t.TempDir()
	fs, err := New(nil, "write@2-4", 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []bool
	for i := 0; i < 6; i++ {
		_, err := f.Write([]byte("abcd"))
		got = append(got, err != nil)
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: error not marked injected: %v", i, err)
		}
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: failed=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	st := fs.Stats()
	if st.WriteOps != 6 || st.InjectedWrites != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// The same seed produces the same probabilistic fault sequence.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		fs, err := New(nil, "sync:0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, f.Sync() != nil)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-op sequences (suspicious)")
	}
}

// A short write leaves a torn WAL tail on disk; reopening repairs it and
// keeps every previously acknowledged record.
func TestWALShortWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.pf")

	// Build a healthy WAL with 3 records on the real disk.
	w, _, _, err := persist.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []persist.Record{{Key: 1, Measure: 1}, {Key: 2, Measure: 1}, {Key: 3, Measure: 1}}
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Reopen through a faultfs where every write is short and truncate
	// repair is fine: the append must fail but leave the log clean.
	ffs, err := New(nil, "short:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetryPolicy(persist.RetryPolicy{Attempts: 2, Backoff: 0})
	w2, got, _, err := st.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	if err := w2.Append([]persist.Record{{Key: 4, Measure: 1}}); err == nil {
		t.Fatal("append under short:1 should fail")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("append error not injected: %v", err)
	}
	if w2.Sick() {
		t.Fatal("repair truncate succeeded, WAL should not be sick")
	}
	w2.Close()

	// The on-disk file must hold exactly the 3 durable records, no torn
	// bytes (repair truncated the half-written tail).
	w3, got3, dropped, err := persist.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if dropped != 0 {
		t.Fatalf("dropped %d bytes on reopen; repair left a torn tail", dropped)
	}
	if len(got3) != 3 || got3[0].Key != 1 || got3[2].Key != 3 {
		t.Fatalf("reopened records: %+v", got3)
	}
}

// Persistent EIO exhausts the retry policy; a subsequent healthy append
// works again (transient fault fully absorbed).
func TestWALRetryThenHeal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.pf")
	// Fresh WAL header consumes write op 0; appends consume 1, 2, ...
	// Window 1-3 fails the first append twice (attempts are ops 1 and 2),
	// then the retry at op 3... make window 1-2 so attempt 2 succeeds.
	ffs, err := New(nil, "write@1-2", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetryPolicy(persist.RetryPolicy{Attempts: 3, Backoff: 0})
	w, _, _, err := st.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]persist.Record{{Key: 1, Measure: 1}}); err != nil {
		t.Fatalf("append should survive a single-op fault via retry: %v", err)
	}
	w.Close()
	_, got, _, err := persist.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("recovered %+v, want the retried record", got)
	}
}

// A failed rename leaves the destination snapshot untouched and readable,
// and the write reports an injected error after retries.
func TestSnapshotRenameFaultKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot("idx", []byte("old blob")); err != nil {
		t.Fatal(err)
	}

	ffs, err := New(nil, "rename:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fst, err := persist.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	fst.SetRetryPolicy(persist.RetryPolicy{Attempts: 2, Backoff: 0})
	if err := fst.WriteSnapshot("idx", []byte("new blob")); err == nil {
		t.Fatal("snapshot write should fail under rename:1")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("error not injected: %v", err)
	}
	blob, err := st.ReadSnapshot("idx")
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "old blob" {
		t.Fatalf("old snapshot damaged: %q", blob)
	}
	if got := ffs.Stats().InjectedRenames; got != 2 {
		t.Fatalf("expected 2 injected renames (2 attempts), got %d", got)
	}
}

// Sync faults fail the snapshot write but never corrupt the destination.
func TestSnapshotSyncFault(t *testing.T) {
	dir := t.TempDir()
	ffs, err := New(nil, "sync:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetryPolicy(persist.RetryPolicy{Attempts: 2, Backoff: 0})
	if err := st.WriteSnapshot("idx", []byte("blob")); err == nil {
		t.Fatal("snapshot write should fail under sync:1")
	}
	if _, err := st.ReadSnapshot("idx"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination should not exist after failed commit, got %v", err)
	}
}
