// Package faultfs is a fault-injecting implementation of persist.FS for
// chaos testing the durability layer. It wraps a real filesystem and
// injects the partial-failure modes disks actually produce — EIO on write,
// short writes, failed fsync, failed rename — according to a deterministic
// seeded schedule, so every chaos run is replayable.
//
// Schedule grammar (comma-separated terms):
//
//	kind:p      probabilistic — each op of that kind fails with probability p
//	            (seeded PRNG, deterministic for a given seed and op order)
//	kind@lo-hi  deterministic window — ops lo..hi-1 of that kind's counter
//	            all fail; ops outside the window pass through
//
// Kinds: "write" (EIO, alias "eio"), "short" (short write: half the bytes
// land, io.ErrShortWrite returned), "sync" (fsync fails after data may have
// reached the page cache, alias "fsync"), "rename" (the rename fails and
// the source file is left behind — the orphan-temp artefact of a torn
// commit; the destination is never half-written, matching POSIX atomic
// rename). "write" and "short" share one op counter (both are Write-call
// faults); "sync" and "rename" each have their own.
//
// Example: "write@20-70,sync:0.05" — write calls 20..69 return EIO, and
// every fsync fails with probability 5%.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/persist"
)

// ErrInjected marks every fault this package injects; callers can
// errors.Is against it to distinguish injected failures from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// Rule is one term of a fault schedule.
type Rule struct {
	Kind string  // "write", "short", "sync", "rename"
	P    float64 // probabilistic failure rate; 0 means window-only
	Lo   int64   // deterministic op window [Lo, Hi); Hi 0 means no window
	Hi   int64
}

// Stats counts operations seen and faults injected, for assertions and the
// chaos harness report.
type Stats struct {
	WriteOps  int64
	SyncOps   int64
	RenameOps int64

	InjectedWrites  int64
	InjectedShorts  int64
	InjectedSyncs   int64
	InjectedRenames int64
}

// Injected returns the total number of injected faults of any kind.
func (s Stats) Injected() int64 {
	return s.InjectedWrites + s.InjectedShorts + s.InjectedSyncs + s.InjectedRenames
}

// FS wraps an inner persist.FS with seeded fault injection. It is safe for
// concurrent use; the op counters make deterministic window schedules
// reproducible as long as the op order itself is deterministic.
type FS struct {
	inner persist.FS

	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	writeOp int64 // shared counter for write+short rules
	syncOp  int64
	renOp   int64
	stats   Stats
}

// New wraps inner (nil means the real disk) with the given schedule and
// seed. An empty schedule injects nothing.
func New(inner persist.FS, schedule string, seed int64) (*FS, error) {
	rules, err := ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	if inner == nil {
		inner = persist.OSFS()
	}
	return &FS{inner: inner, rng: rand.New(rand.NewSource(seed)), rules: rules}, nil
}

// ParseSchedule parses the schedule grammar described in the package
// comment.
func ParseSchedule(schedule string) ([]Rule, error) {
	var rules []Rule
	for _, term := range strings.Split(schedule, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		var r Rule
		switch {
		case strings.Contains(term, ":"):
			kind, rate, _ := strings.Cut(term, ":")
			p, err := strconv.ParseFloat(rate, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultfs: bad rate in %q", term)
			}
			r = Rule{Kind: kind, P: p}
		case strings.Contains(term, "@"):
			kind, window, _ := strings.Cut(term, "@")
			lo, hi, ok := strings.Cut(window, "-")
			if !ok {
				return nil, fmt.Errorf("faultfs: bad window in %q (want kind@lo-hi)", term)
			}
			l, err1 := strconv.ParseInt(lo, 10, 64)
			h, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || l < 0 || h <= l {
				return nil, fmt.Errorf("faultfs: bad window in %q", term)
			}
			r = Rule{Kind: kind, Lo: l, Hi: h}
		default:
			return nil, fmt.Errorf("faultfs: bad term %q (want kind:p or kind@lo-hi)", term)
		}
		switch r.Kind {
		case "eio":
			r.Kind = "write"
		case "fsync":
			r.Kind = "sync"
		case "write", "short", "sync", "rename":
		default:
			return nil, fmt.Errorf("faultfs: unknown fault kind %q", r.Kind)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Stats returns a snapshot of the op and injection counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// fire reports whether rule r triggers for op number n of its counter.
func (f *FS) fireLocked(r Rule, n int64) bool {
	if r.Hi > 0 {
		return n >= r.Lo && n < r.Hi
	}
	return r.P > 0 && f.rng.Float64() < r.P
}

// decideWrite consumes one write-class op and returns the injected kind
// ("write" or "short") or "".
func (f *FS) decideWrite() (string, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.writeOp
	f.writeOp++
	f.stats.WriteOps++
	for _, r := range f.rules {
		if r.Kind != "write" && r.Kind != "short" {
			continue
		}
		if f.fireLocked(r, n) {
			if r.Kind == "write" {
				f.stats.InjectedWrites++
			} else {
				f.stats.InjectedShorts++
			}
			return r.Kind, n
		}
	}
	return "", n
}

func (f *FS) decideSync() (bool, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.syncOp
	f.syncOp++
	f.stats.SyncOps++
	for _, r := range f.rules {
		if r.Kind == "sync" && f.fireLocked(r, n) {
			f.stats.InjectedSyncs++
			return true, n
		}
	}
	return false, n
}

func (f *FS) decideRename() (bool, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.renOp
	f.renOp++
	f.stats.RenameOps++
	for _, r := range f.rules {
		if r.Kind == "rename" && f.fireLocked(r, n) {
			f.stats.InjectedRenames++
			return true, n
		}
	}
	return false, n
}

// --- persist.FS implementation ---------------------------------------------

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) ReadFile(path string) ([]byte, error)         { return f.inner.ReadFile(path) }
func (f *FS) ReadDir(path string) ([]os.DirEntry, error)   { return f.inner.ReadDir(path) }
func (f *FS) Stat(path string) (os.FileInfo, error)        { return f.inner.Stat(path) }
func (f *FS) Remove(path string) error                     { return f.inner.Remove(path) }
func (f *FS) RemoveAll(path string) error                  { return f.inner.RemoveAll(path) }
func (f *FS) Truncate(path string, size int64) error       { return f.inner.Truncate(path, size) }
func (f *FS) SyncDir(dir string) error                     { return f.inner.SyncDir(dir) }

func (f *FS) ReadAt(path string, p []byte, off int64) (int, error) {
	return f.inner.ReadAt(path, p, off)
}

func (f *FS) Rename(oldPath, newPath string) error {
	if fire, n := f.decideRename(); fire {
		// The commit never happens: the destination keeps its old content
		// and the source (typically a temp file) is left behind as debris.
		return fmt.Errorf("%w: rename %s (rename op %d)", ErrInjected, oldPath, n)
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FS) CreateTemp(dir, pattern string) (persist.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) OpenFile(path string, flag int, perm os.FileMode) (persist.File, error) {
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// faultFile wraps a writable file with write/sync injection.
type faultFile struct {
	fs    *FS
	inner persist.File
}

func (ff *faultFile) Name() string { return ff.inner.Name() }
func (ff *faultFile) Close() error { return ff.inner.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	switch kind, n := ff.fs.decideWrite(); kind {
	case "write":
		return 0, fmt.Errorf("%w: EIO on %s (write op %d)", ErrInjected, ff.inner.Name(), n)
	case "short":
		// Half the bytes actually land on disk before the failure — the
		// torn-append artefact WAL repair must truncate away.
		half := len(p) / 2
		if half > 0 {
			if _, err := ff.inner.Write(p[:half]); err != nil {
				return 0, err
			}
		}
		return half, fmt.Errorf("%w: short write on %s (write op %d): %v",
			ErrInjected, ff.inner.Name(), n, io.ErrShortWrite)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if fire, n := ff.fs.decideSync(); fire {
		return fmt.Errorf("%w: fsync %s (sync op %d)", ErrInjected, ff.inner.Name(), n)
	}
	return ff.inner.Sync()
}
