// Package minimax solves the paper's curve-fitting problem (Definition 2 /
// LP (9)): given sample points of the key-cumulative or key-measure function,
// find the degree-deg polynomial minimising the maximum absolute error.
//
// Two backends are provided and cross-checked against each other (and against
// internal/lp) in tests:
//
//   - FitPoly / Fitter.Fit: the exchange algorithm (Stiefel's discrete Remez
//     iteration). Polynomials over distinct 1D points form a Haar system, so
//     the best approximation equioscillates on a reference of deg+2 points and
//     the single-point exchange converges to the exact optimum. This is the
//     fast path used by greedy segmentation — typically a handful of (deg+2)²
//     solves instead of a full LP. Hot paths hold a Fitter (one per goroutine;
//     it is not concurrency-safe) so repeated fits allocate nothing; FitPoly
//     is the convenience wrapper building a throwaway Fitter per call.
//
//   - FitBasisLP / FitPoly2D: a revised dual simplex on LP (9). It works for
//     any basis — in particular the bivariate monomials u^i v^j of Section VI,
//     which are not a Haar system, where the exchange algorithm does not apply.
//
// All fitting happens in a normalised frame (keys mapped onto [-1,1], values
// centred) so that the monomial basis stays well-conditioned; results are
// returned as poly.FramedPoly / poly.FramedPoly2D carrying the frame.
package minimax

import (
	"errors"
	"math"

	"repro/internal/poly"
)

// Fit1D is the result of a univariate minimax fit.
type Fit1D struct {
	P      poly.FramedPoly
	MaxErr float64 // max_i |y_i - P(x_i)| of the returned polynomial
	Iters  int     // exchange or simplex iterations used
}

// ErrTooFewPoints is returned when a fit is requested on an empty point set.
var ErrTooFewPoints = errors.New("minimax: need at least one point")

// ErrDuplicateKeys is returned when two sample points share a key; the paper
// assumes distinct keys (Section III-A) and the Haar property requires it.
var ErrDuplicateKeys = errors.New("minimax: duplicate keys in sample")

const (
	// convergence slack for the exchange loop
	relTol = 1e-9
	absTol = 1e-12
	// hard cap on exchange iterations; the loop converges monotonically so
	// this is defensive only
	maxExchangeIters = 300
)

// FitPoly computes the minimax degree-deg polynomial fit of ys over xs.
// xs must be strictly increasing. For len(xs) ≤ deg+1 the data is
// interpolated exactly (zero error).
//
// FitPoly is a convenience wrapper that builds a throwaway Fitter per call;
// construction hot paths (greedy segmentation) hold one Fitter per goroutine
// instead, which eliminates every per-fit allocation.
func FitPoly(xs, ys []float64, deg int) (Fit1D, error) {
	var f Fitter
	return f.Fit(xs, ys, deg, -1, nil)
}

// maxAbsResidual reports the true max |y_i − P(x_i)| of a framed polynomial —
// this is the value the bounded δ-error constraint (Definition 3) checks, so
// it is always recomputed on the raw data rather than trusted from the solver.
func maxAbsResidual(fp poly.FramedPoly, xs, ys []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if r := math.Abs(ys[i] - fp.Eval(x)); r > m {
			m = r
		}
	}
	return m
}

// chebPolys returns T_0..T_deg in the monomial basis.
func chebPolys(deg int) []poly.Poly {
	out := make([]poly.Poly, deg+1)
	out[0] = poly.New(1)
	if deg >= 1 {
		out[1] = poly.New(0, 1)
	}
	for k := 2; k <= deg; k++ {
		out[k] = out[k-1].Mul(poly.New(0, 2)).Add(out[k-2].Scale(-1))
	}
	return out
}

// gaussSolveInto solves a·x = b in place with partial pivoting, writing the
// solution into caller-provided x so the reusable Fitter can solve without
// allocating. Singular systems (impossible for distinct reference points,
// defensive otherwise) yield the least-bad pivot rather than a panic.
func gaussSolveInto(a [][]float64, b, x []float64) {
	n := len(a)
	for col := 0; col < n; col++ {
		// partial pivot
		best, bestAbs := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(a[r][col]); ab > bestAbs {
				best, bestAbs = r, ab
			}
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		pv := a[col][col]
		if pv == 0 {
			pv = 1e-300
		}
		inv := 1 / pv
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		pv := a[r][r]
		if pv == 0 {
			pv = 1e-300
		}
		x[r] = s / pv
	}
}

// exchangePoint inserts the worst offender w into the sorted reference,
// preserving residual-sign alternation (classic single-point exchange).
// Returns false if w is already a reference point.
func exchangePoint(ref []int, resid []float64, w int) bool {
	m := len(ref)
	sgn := func(i int) bool { return resid[i] >= 0 }
	for j, r := range ref {
		if r == w {
			return false
		}
		if w < r {
			if j == 0 {
				if sgn(w) == sgn(ref[0]) {
					ref[0] = w
				} else {
					// prepend w, drop the far end
					copy(ref[1:], ref[:m-1])
					ref[0] = w
				}
			} else {
				if sgn(w) == sgn(ref[j-1]) {
					ref[j-1] = w
				} else {
					ref[j] = w
				}
			}
			return true
		}
	}
	// w beyond the last reference point
	if sgn(w) == sgn(ref[m-1]) {
		ref[m-1] = w
	} else {
		copy(ref[:m-1], ref[1:])
		ref[m-1] = w
	}
	return true
}
