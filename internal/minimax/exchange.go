// Package minimax solves the paper's curve-fitting problem (Definition 2 /
// LP (9)): given sample points of the key-cumulative or key-measure function,
// find the degree-deg polynomial minimising the maximum absolute error.
//
// Two backends are provided and cross-checked against each other (and against
// internal/lp) in tests:
//
//   - FitPoly: the exchange algorithm (Stiefel's discrete Remez iteration).
//     Polynomials over distinct 1D points form a Haar system, so the best
//     approximation equioscillates on a reference of deg+2 points and the
//     single-point exchange converges to the exact optimum. This is the fast
//     path used by greedy segmentation — typically a handful of (deg+2)²
//     solves instead of a full LP.
//
//   - FitBasisLP / FitPoly2D: a revised dual simplex on LP (9). It works for
//     any basis — in particular the bivariate monomials u^i v^j of Section VI,
//     which are not a Haar system, where the exchange algorithm does not apply.
//
// All fitting happens in a normalised frame (keys mapped onto [-1,1], values
// centred) so that the monomial basis stays well-conditioned; results are
// returned as poly.FramedPoly / poly.FramedPoly2D carrying the frame.
package minimax

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/poly"
)

// Fit1D is the result of a univariate minimax fit.
type Fit1D struct {
	P      poly.FramedPoly
	MaxErr float64 // max_i |y_i - P(x_i)| of the returned polynomial
	Iters  int     // exchange or simplex iterations used
}

// ErrTooFewPoints is returned when a fit is requested on an empty point set.
var ErrTooFewPoints = errors.New("minimax: need at least one point")

// ErrDuplicateKeys is returned when two sample points share a key; the paper
// assumes distinct keys (Section III-A) and the Haar property requires it.
var ErrDuplicateKeys = errors.New("minimax: duplicate keys in sample")

const (
	// convergence slack for the exchange loop
	relTol = 1e-9
	absTol = 1e-12
	// hard cap on exchange iterations; the loop converges monotonically so
	// this is defensive only
	maxExchangeIters = 300
)

// FitPoly computes the minimax degree-deg polynomial fit of ys over xs.
// xs must be strictly increasing. For len(xs) ≤ deg+1 the data is
// interpolated exactly (zero error).
func FitPoly(xs, ys []float64, deg int) (Fit1D, error) {
	if len(xs) == 0 {
		return Fit1D{}, ErrTooFewPoints
	}
	if len(xs) != len(ys) {
		return Fit1D{}, fmt.Errorf("minimax: len(xs)=%d len(ys)=%d", len(xs), len(ys))
	}
	if deg < 0 {
		return Fit1D{}, fmt.Errorf("minimax: negative degree %d", deg)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return Fit1D{}, ErrDuplicateKeys
		}
	}
	frame := poly.NewFrame(xs[0], xs[len(xs)-1])
	ts := make([]float64, len(xs))
	for i, x := range xs {
		ts[i] = frame.Normalize(x)
	}
	// Value scaling: keep the Gaussian solves conditioned when cumulative
	// values are ~1e6+. Errors scale back linearly.
	yscale := 0.0
	for _, y := range ys {
		if a := math.Abs(y); a > yscale {
			yscale = a
		}
	}
	if yscale == 0 {
		yscale = 1
	}
	ysn := make([]float64, len(ys))
	for i, y := range ys {
		ysn[i] = y / yscale
	}

	if len(xs) <= deg+1 {
		p := interpolate(ts, ysn)
		fp := poly.FramedPoly{F: frame, P: p.Scale(yscale)}
		return Fit1D{P: fp, MaxErr: maxAbsResidual(fp, xs, ys)}, nil
	}

	p, _, iters := exchange(ts, ysn, deg)
	fp := poly.FramedPoly{F: frame, P: p.Scale(yscale)}
	return Fit1D{P: fp, MaxErr: maxAbsResidual(fp, xs, ys), Iters: iters}, nil
}

// maxAbsResidual reports the true max |y_i − P(x_i)| of a framed polynomial —
// this is the value the bounded δ-error constraint (Definition 3) checks, so
// it is always recomputed on the raw data rather than trusted from the solver.
func maxAbsResidual(fp poly.FramedPoly, xs, ys []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if r := math.Abs(ys[i] - fp.Eval(x)); r > m {
			m = r
		}
	}
	return m
}

// interpolate returns the polynomial through all (ts, ys) points (Newton's
// divided differences, converted to the monomial basis).
func interpolate(ts, ys []float64) poly.Poly {
	n := len(ts)
	coef := append([]float64(nil), ys...)
	for j := 1; j < n; j++ {
		for i := n - 1; i >= j; i-- {
			coef[i] = (coef[i] - coef[i-1]) / (ts[i] - ts[i-j])
		}
	}
	// Horner-style expansion of the Newton form.
	p := poly.New(coef[n-1])
	for i := n - 2; i >= 0; i-- {
		p = p.Mul(poly.New(-ts[i], 1)).Add(poly.New(coef[i]))
	}
	return p
}

// exchange runs the discrete Remez single-exchange iteration on normalised
// points ts (strictly increasing in [-1,1]) with values ys. It returns the
// fitted polynomial (monomial basis over t), the levelled error |h| and the
// iteration count.
func exchange(ts, ys []float64, deg int) (poly.Poly, float64, int) {
	n := len(ts)
	m := deg + 2 // reference size

	// Initial reference: Chebyshev-spaced indices, forced strictly increasing.
	ref := make([]int, m)
	for j := 0; j < m; j++ {
		frac := 0.5 * (1 - math.Cos(math.Pi*float64(j)/float64(m-1)))
		ref[j] = int(math.Round(frac * float64(n-1)))
	}
	for j := 1; j < m; j++ {
		if ref[j] <= ref[j-1] {
			ref[j] = ref[j-1] + 1
		}
	}
	for j := m - 1; j > 0; j-- {
		if ref[j] > n-1-(m-1-j) {
			ref[j] = n - 1 - (m - 1 - j)
		}
		if j < m-1 && ref[j] >= ref[j+1] {
			ref[j] = ref[j+1] - 1
		}
	}

	cheb := chebPolys(deg)
	resid := make([]float64, n)
	var p poly.Poly
	var h float64
	iters := 0
	for ; iters < maxExchangeIters; iters++ {
		p, h = solveReference(ts, ys, ref, cheb)
		// Residuals and the worst offender.
		worst, worstAbs := -1, 0.0
		for i := 0; i < n; i++ {
			resid[i] = ys[i] - p.Eval(ts[i])
			if a := math.Abs(resid[i]); a > worstAbs {
				worstAbs = a
				worst = i
			}
		}
		habs := math.Abs(h)
		if worst < 0 || worstAbs <= habs*(1+relTol)+absTol {
			return p, habs, iters + 1
		}
		if !exchangePoint(ref, resid, worst) {
			// worst already on reference (numerical tie) — done.
			return p, habs, iters + 1
		}
	}
	return p, math.Abs(h), iters
}

// chebPolys returns T_0..T_deg in the monomial basis.
func chebPolys(deg int) []poly.Poly {
	out := make([]poly.Poly, deg+1)
	out[0] = poly.New(1)
	if deg >= 1 {
		out[1] = poly.New(0, 1)
	}
	for k := 2; k <= deg; k++ {
		out[k] = out[k-1].Mul(poly.New(0, 2)).Add(out[k-2].Scale(-1))
	}
	return out
}

// solveReference solves the (deg+2)×(deg+2) levelled-error system
// Σ_k c_k T_k(t_j) + (−1)^j h = y_j on the reference, returning the monomial
// polynomial and h.
func solveReference(ts, ys []float64, ref []int, cheb []poly.Poly) (poly.Poly, float64) {
	m := len(ref)
	a := make([][]float64, m)
	b := make([]float64, m)
	sign := 1.0
	for j, idx := range ref {
		row := make([]float64, m)
		t := ts[idx]
		for k := 0; k < m-1; k++ {
			row[k] = cheb[k].Eval(t)
		}
		row[m-1] = sign
		sign = -sign
		a[j] = row
		b[j] = ys[idx]
	}
	sol := gaussSolve(a, b)
	p := poly.Poly{}
	for k := 0; k < m-1; k++ {
		p = p.Add(cheb[k].Scale(sol[k]))
	}
	return p, sol[m-1]
}

// gaussSolve solves a·x = b in place with partial pivoting. Singular systems
// (impossible for distinct reference points, defensive otherwise) yield the
// least-bad pivot rather than a panic.
func gaussSolve(a [][]float64, b []float64) []float64 {
	n := len(a)
	for col := 0; col < n; col++ {
		// partial pivot
		best, bestAbs := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(a[r][col]); ab > bestAbs {
				best, bestAbs = r, ab
			}
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		pv := a[col][col]
		if pv == 0 {
			pv = 1e-300
		}
		inv := 1 / pv
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		pv := a[r][r]
		if pv == 0 {
			pv = 1e-300
		}
		x[r] = s / pv
	}
	return x
}

// exchangePoint inserts the worst offender w into the sorted reference,
// preserving residual-sign alternation (classic single-point exchange).
// Returns false if w is already a reference point.
func exchangePoint(ref []int, resid []float64, w int) bool {
	m := len(ref)
	sgn := func(i int) bool { return resid[i] >= 0 }
	for j, r := range ref {
		if r == w {
			return false
		}
		if w < r {
			if j == 0 {
				if sgn(w) == sgn(ref[0]) {
					ref[0] = w
				} else {
					// prepend w, drop the far end
					copy(ref[1:], ref[:m-1])
					ref[0] = w
				}
			} else {
				if sgn(w) == sgn(ref[j-1]) {
					ref[j-1] = w
				} else {
					ref[j] = w
				}
			}
			return true
		}
	}
	// w beyond the last reference point
	if sgn(w) == sgn(ref[m-1]) {
		ref[m-1] = w
	} else {
		copy(ref[:m-1], ref[1:])
		ref[m-1] = w
	}
	return true
}
