package minimax

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/poly"
)

// ErrNumeric reports that the dual simplex failed to converge; callers treat
// the fit as "error > δ" (forcing a split) rather than crashing a build.
var ErrNumeric = errors.New("minimax: dual simplex did not converge")

// FitBasisLP solves the minimax fitting problem for an arbitrary basis:
// given rows phi[i] (basis functions evaluated at point i) and values y[i],
// it finds coefficients a minimising max_i |y_i − a·phi_i|.
//
// It runs a revised primal simplex on the DUAL of LP (9). The dual has only
// m+1 rows (m = number of basis functions) and 2ℓ columns, so the basis
// matrix stays (m+1)×(m+1) regardless of how many points are fitted — the
// same observation that makes the exchange algorithm fast, generalised to
// non-Haar bases such as the bivariate monomials of Section VI.
//
// Returned: coefficient vector, the achieved max error, iterations.
func FitBasisLP(phi [][]float64, y []float64) ([]float64, float64, int, error) {
	l := len(phi)
	if l == 0 {
		return nil, 0, 0, ErrTooFewPoints
	}
	if len(y) != l {
		return nil, 0, 0, fmt.Errorf("minimax: %d rows, %d values", l, len(y))
	}
	m := len(phi[0])
	for _, row := range phi {
		if len(row) != m {
			return nil, 0, 0, fmt.Errorf("minimax: ragged basis rows")
		}
	}
	rows := m + 1 // basis-combination rows + the Σλ=1 row

	// Value scaling for conditioning.
	yscale := 0.0
	for _, v := range y {
		if a := math.Abs(v); a > yscale {
			yscale = a
		}
	}
	if yscale == 0 {
		yscale = 1
	}

	// Column j ∈ [0, l):      λ⁺_j  → column ( φ_j, 1), objective +y_j
	// Column j ∈ [l, 2l):     λ⁻_j  → column (−φ_j, 1), objective −y_j
	// Column j ∈ [2l, 2l+rows): artificial e_{j−2l},     objective 0 (barred
	// in phase 2, −1 in phase 1).
	numCols := 2*l + rows
	column := func(j int, dst []float64) {
		switch {
		case j < l:
			copy(dst, phi[j])
			dst[m] = 1
		case j < 2*l:
			for k, v := range phi[j-l] {
				dst[k] = -v
			}
			dst[m] = 1
		default:
			for k := range dst {
				dst[k] = 0
			}
			dst[j-2*l] = 1
		}
	}
	objective := func(j int, phase1 bool) float64 {
		switch {
		case j < l:
			if phase1 {
				return 0
			}
			return y[j] / yscale
		case j < 2*l:
			if phase1 {
				return 0
			}
			return -y[j-l] / yscale
		default:
			if phase1 {
				return -1
			}
			return 0
		}
	}

	// Basis bookkeeping: explicit inverse.
	basis := make([]int, rows)
	binv := make([][]float64, rows)
	xb := make([]float64, rows) // current basic variable values
	for i := 0; i < rows; i++ {
		basis[i] = 2*l + i
		binv[i] = make([]float64, rows)
		binv[i][i] = 1
	}
	xb[rows-1] = 1 // RHS = e_{rows}

	colBuf := make([]float64, rows)
	w := make([]float64, rows)
	u := make([]float64, rows)

	multipliers := func(phase1 bool) {
		// u = c_B · B⁻¹
		for j := 0; j < rows; j++ {
			s := 0.0
			for i := 0; i < rows; i++ {
				cb := objective(basis[i], phase1)
				if cb != 0 {
					s += cb * binv[i][j]
				}
			}
			u[j] = s
		}
	}

	const eps = 1e-9
	maxIters := 400 * (rows + 10)
	iters := 0

	runPhase := func(phase1 bool) error {
		useBland := false
		for {
			iters++
			if iters > maxIters {
				return ErrNumeric
			}
			multipliers(phase1)
			// Price nonbasic columns; maximisation: enter on positive
			// reduced cost.
			enter := -1
			best := eps
			inBasis := make(map[int]bool, rows)
			for _, b := range basis {
				inBasis[b] = true
			}
			limit := numCols
			if !phase1 {
				limit = 2 * l // artificials barred
			}
			for j := 0; j < limit; j++ {
				if inBasis[j] {
					continue
				}
				column(j, colBuf)
				rc := objective(j, phase1)
				for k := 0; k < rows; k++ {
					rc -= u[k] * colBuf[k]
				}
				if useBland {
					if rc > eps {
						enter = j
						break
					}
				} else if rc > best {
					best = rc
					enter = j
				}
			}
			if enter == -1 {
				return nil
			}
			// Direction w = B⁻¹ A_enter.
			column(enter, colBuf)
			for i := 0; i < rows; i++ {
				s := 0.0
				for k := 0; k < rows; k++ {
					s += binv[i][k] * colBuf[k]
				}
				w[i] = s
			}
			// Ratio test.
			leave := -1
			bestRatio := math.Inf(1)
			for i := 0; i < rows; i++ {
				if w[i] <= eps {
					continue
				}
				r := xb[i] / w[i]
				if r < bestRatio-1e-12 ||
					(math.Abs(r-bestRatio) <= 1e-12 && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
			if leave == -1 {
				// The dual is bounded by construction; numerical failure.
				return ErrNumeric
			}
			// Pivot: update B⁻¹ and xb.
			pw := w[leave]
			for k := 0; k < rows; k++ {
				binv[leave][k] /= pw
			}
			xb[leave] /= pw
			for i := 0; i < rows; i++ {
				if i == leave || w[i] == 0 {
					continue
				}
				f := w[i]
				for k := 0; k < rows; k++ {
					binv[i][k] -= f * binv[leave][k]
				}
				xb[i] -= f * xb[leave]
				if xb[i] < 0 && xb[i] > -1e-12 {
					xb[i] = 0
				}
			}
			basis[leave] = enter
			if iters > maxIters/2 {
				useBland = true
			}
		}
	}

	if err := runPhase(true); err != nil {
		return nil, 0, iters, err
	}
	// Phase-1 objective must be ~0 (the dual is always feasible).
	p1 := 0.0
	for i, b := range basis {
		if b >= 2*l {
			p1 += xb[i]
		}
	}
	if p1 > 1e-7 {
		return nil, 0, iters, ErrNumeric
	}
	if err := runPhase(false); err != nil {
		return nil, 0, iters, err
	}

	// Recover the primal solution from the simplex multipliers:
	// u = (a, t*) in the scaled value space.
	multipliers(false)
	coeffs := make([]float64, m)
	for k := 0; k < m; k++ {
		coeffs[k] = u[k] * yscale
	}
	// Recompute the achieved error on the raw data — this is the value the
	// δ-error constraint checks.
	maxErr := 0.0
	for i := 0; i < l; i++ {
		pv := 0.0
		for k := 0; k < m; k++ {
			pv += coeffs[k] * phi[i][k]
		}
		if r := math.Abs(y[i] - pv); r > maxErr {
			maxErr = r
		}
	}
	return coeffs, maxErr, iters, nil
}

// FitPolyLP fits a univariate degree-deg polynomial via the dual simplex
// backend. Functionally identical to FitPoly (cross-checked in tests);
// kept as the independent reference implementation and for the ablation
// benchmarks.
func FitPolyLP(xs, ys []float64, deg int) (Fit1D, error) {
	if len(xs) == 0 {
		return Fit1D{}, ErrTooFewPoints
	}
	if len(xs) != len(ys) {
		return Fit1D{}, fmt.Errorf("minimax: len(xs)=%d len(ys)=%d", len(xs), len(ys))
	}
	frame := poly.NewFrame(xs[0], xs[len(xs)-1])
	phi := make([][]float64, len(xs))
	for i, x := range xs {
		t := frame.Normalize(x)
		row := make([]float64, deg+1)
		tp := 1.0
		for k := 0; k <= deg; k++ {
			row[k] = tp
			tp *= t
		}
		phi[i] = row
	}
	coeffs, maxErr, iters, err := FitBasisLP(phi, ys)
	if err != nil {
		return Fit1D{}, err
	}
	return Fit1D{
		P:      poly.FramedPoly{F: frame, P: poly.New(coeffs...)},
		MaxErr: maxErr,
		Iters:  iters,
	}, nil
}

// Fit2D is the result of a bivariate minimax surface fit.
type Fit2D struct {
	P      poly.FramedPoly2D
	MaxErr float64
	Iters  int
}

// FitPoly2D fits the surface P(u,v) = Σ_{i+j≤deg} a_ij u^i v^j (Section VI)
// to samples (xs[i], ys[i]) → zs[i], minimising the maximum absolute error.
// The frame normalises the given rectangle onto [-1,1]²; pass the quadtree
// cell bounds so evaluation inside the cell stays conditioned.
func FitPoly2D(xs, ys, zs []float64, deg int, xlo, xhi, ylo, yhi float64) (Fit2D, error) {
	l := len(xs)
	if l == 0 {
		return Fit2D{}, ErrTooFewPoints
	}
	if len(ys) != l || len(zs) != l {
		return Fit2D{}, fmt.Errorf("minimax: mismatched 2D sample lengths %d/%d/%d", l, len(ys), len(zs))
	}
	frame := poly.NewFrame2D(xlo, xhi, ylo, yhi)
	m := poly.NumTerms2D(deg)
	phi := make([][]float64, l)
	for i := 0; i < l; i++ {
		row := make([]float64, m)
		poly.Basis2D(deg, frame.U.Normalize(xs[i]), frame.V.Normalize(ys[i]), row)
		phi[i] = row
	}
	coeffs, maxErr, iters, err := FitBasisLP(phi, zs)
	if err != nil {
		return Fit2D{}, err
	}
	return Fit2D{
		P:      poly.FramedPoly2D{F: frame, P: poly.Poly2D{Deg: deg, C: coeffs}},
		MaxErr: maxErr,
		Iters:  iters,
	}, nil
}
