package minimax

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func TestFitExactPolynomialRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for deg := 0; deg <= 5; deg++ {
		coeffs := make([]float64, deg+1)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = float64(i) * 2.5
			x := xs[i]
			v, xp := 0.0, 1.0
			for _, c := range coeffs {
				v += c * xp
				xp *= x
			}
			ys[i] = v
		}
		fit, err := FitPoly(xs, ys, deg)
		if err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
		scale := 0.0
		for _, y := range ys {
			if a := math.Abs(y); a > scale {
				scale = a
			}
		}
		if fit.MaxErr > 1e-8*(1+scale) {
			t.Errorf("deg %d: exact polynomial not recovered, err %g", deg, fit.MaxErr)
		}
	}
}

func TestFitConstantToTwoValues(t *testing.T) {
	// Degree-0 fit to {0, 1}: optimal constant 0.5 with error 0.5.
	fit, err := FitPoly([]float64{0, 1}, []float64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MaxErr-0.5) > 1e-9 {
		t.Errorf("MaxErr = %g, want 0.5", fit.MaxErr)
	}
	if got := fit.P.Eval(0.3); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("fitted constant = %g, want 0.5", got)
	}
}

func TestFitLinearToSquare(t *testing.T) {
	// Best degree-1 fit to x² on [-1,1] is the constant 1/2 with error 1/2
	// (Chebyshev: x² = (T₂+T₀)/2). A dense grid approximates this.
	n := 401
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = -1 + 2*float64(i)/float64(n-1)
		ys[i] = xs[i] * xs[i]
	}
	fit, err := FitPoly(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MaxErr-0.5) > 1e-3 {
		t.Errorf("MaxErr = %g, want ≈0.5", fit.MaxErr)
	}
}

func TestInterpolationWhenFewPoints(t *testing.T) {
	xs := []float64{1, 2, 5}
	ys := []float64{3, -1, 7}
	fit, err := FitPoly(xs, ys, 4) // more coefficients than points
	if err != nil {
		t.Fatal(err)
	}
	if fit.MaxErr > 1e-9 {
		t.Errorf("interpolation should be exact, err %g", fit.MaxErr)
	}
	for i, x := range xs {
		if got := fit.P.Eval(x); math.Abs(got-ys[i]) > 1e-8 {
			t.Errorf("P(%g) = %g, want %g", x, got, ys[i])
		}
	}
}

func TestSinglePoint(t *testing.T) {
	fit, err := FitPoly([]float64{7}, []float64{42}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fit.MaxErr != 0 || math.Abs(fit.P.Eval(7)-42) > 1e-12 {
		t.Errorf("single-point fit wrong: err %g, value %g", fit.MaxErr, fit.P.Eval(7))
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := FitPoly(nil, nil, 2); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPoly([]float64{1, 1, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("duplicate keys should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
}

// TestEquioscillation: the optimal residual attains ±MaxErr on at least
// deg+2 points with alternating signs (Chebyshev's characterisation).
func TestEquioscillation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 30; iter++ {
		deg := rng.Intn(4)
		n := deg + 5 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + 0.3*rng.Float64()
			ys[i] = rng.NormFloat64() * 10
		}
		fit, err := FitPoly(xs, ys, deg)
		if err != nil {
			t.Fatal(err)
		}
		if fit.MaxErr < 1e-12 {
			continue // exactly fit by chance
		}
		alt := 0
		prevSign := 0
		for i := range xs {
			r := ys[i] - fit.P.Eval(xs[i])
			if math.Abs(r) >= fit.MaxErr*(1-1e-6) {
				s := 1
				if r < 0 {
					s = -1
				}
				if s != prevSign {
					alt++
					prevSign = s
				}
			}
		}
		if alt < deg+2 {
			t.Errorf("iter %d: only %d alternations, want ≥ %d (deg %d, n %d)", iter, alt, deg+2, deg, n)
		}
	}
}

// TestBackendsAgree cross-checks the exchange algorithm, the dual simplex
// and the direct tableau LP on random instances: all three must report the
// same optimal minimax error.
func TestBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 40; iter++ {
		deg := rng.Intn(4)
		n := deg + 3 + rng.Intn(25)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64() * 5
		}
		exFit, err := FitPoly(xs, ys, deg)
		if err != nil {
			t.Fatal(err)
		}
		lpFit, err := FitPolyLP(xs, ys, deg)
		if err != nil {
			t.Fatal(err)
		}
		direct := directLP(t, xs, ys, deg)
		tol := 1e-6 * (1 + exFit.MaxErr)
		if math.Abs(exFit.MaxErr-lpFit.MaxErr) > tol {
			t.Errorf("iter %d: exchange %.10g vs dual simplex %.10g", iter, exFit.MaxErr, lpFit.MaxErr)
		}
		if math.Abs(exFit.MaxErr-direct) > tol {
			t.Errorf("iter %d: exchange %.10g vs direct LP %.10g", iter, exFit.MaxErr, direct)
		}
	}
}

// directLP solves LP (9) with the tableau solver in the same normalised
// frame used by the fitting backends.
func directLP(t *testing.T, xs, ys []float64, deg int) float64 {
	t.Helper()
	lo, hi := xs[0], xs[len(xs)-1]
	c, h := 0.5*(lo+hi), 0.5*(hi-lo)
	if h <= 0 {
		h = 1
	}
	nv := deg + 2
	var a [][]float64
	var b []float64
	var rel []lp.Relation
	for i, x := range xs {
		tn := (x - c) / h
		row1 := make([]float64, nv)
		row2 := make([]float64, nv)
		tp := 1.0
		for j := 0; j <= deg; j++ {
			row1[j], row2[j] = tp, -tp
			tp *= tn
		}
		row1[nv-1], row2[nv-1] = 1, 1
		a = append(a, row1, row2)
		b = append(b, ys[i], -ys[i])
		rel = append(rel, lp.GE, lp.GE)
	}
	free := make([]bool, nv)
	for j := 0; j <= deg; j++ {
		free[j] = true
	}
	cost := make([]float64, nv)
	cost[nv-1] = 1
	res, err := lp.Solve(lp.Problem{C: cost, A: a, B: b, Rel: rel, Free: free})
	if err != nil || res.Status != lp.Optimal {
		t.Fatalf("direct LP failed: %v %v", err, res.Status)
	}
	return res.Objective
}

// TestMonotonicity verifies Lemma 1: adding points never decreases the
// optimal fitting error. This property is what makes greedy segmentation
// with exponential search sound.
func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 20; iter++ {
		deg := 1 + rng.Intn(3)
		n := 40
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := range xs {
			x += 0.5 + rng.Float64()
			xs[i] = x
			ys[i] = math.Sin(x) * 10
		}
		prev := -1.0
		for l := deg + 2; l <= n; l += 4 {
			fit, err := FitPoly(xs[:l], ys[:l], deg)
			if err != nil {
				t.Fatal(err)
			}
			if fit.MaxErr < prev-1e-7*(1+prev) {
				t.Errorf("iter %d: error decreased from %g to %g when adding points", iter, prev, fit.MaxErr)
			}
			prev = fit.MaxErr
		}
	}
}

// TestLargeScaleConditioning: keys at timestamp scale (~1e9) and cumulative
// values at 1e6 scale must still fit cleanly thanks to frame normalisation.
func TestLargeScaleConditioning(t *testing.T) {
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 1.5e9 + float64(i)*3600
		u := float64(i) / float64(n-1)
		ys[i] = 1e6 * (u + 0.2*u*u - 0.1*u*u*u)
	}
	fit, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fit.MaxErr > 1e-3 {
		t.Errorf("cubic data at large scale should fit to ~0, err %g", fit.MaxErr)
	}
}

func TestFitBasisLPPlaneExact(t *testing.T) {
	// z = 1 + 2u + 3v fits exactly with the affine 2D basis.
	var phi [][]float64
	var z []float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			u, v := float64(i)/4, float64(j)/4
			phi = append(phi, []float64{1, u, v})
			z = append(z, 1+2*u+3*v)
		}
	}
	coeffs, maxErr, _, err := FitBasisLP(phi, z)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-8 {
		t.Errorf("plane should fit exactly, err %g", maxErr)
	}
	want := []float64{1, 2, 3}
	for k := range want {
		if math.Abs(coeffs[k]-want[k]) > 1e-6 {
			t.Errorf("coeff[%d] = %g, want %g", k, coeffs[k], want[k])
		}
	}
}

func TestFitPoly2DSaddleExact(t *testing.T) {
	// z = u·v is a total-degree-2 surface: must fit exactly at deg 2 and
	// have non-trivial error at deg 1.
	var xs, ys, zs []float64
	for i := 0; i <= 6; i++ {
		for j := 0; j <= 6; j++ {
			x := float64(i) / 3
			y := float64(j) / 3
			xs = append(xs, x)
			ys = append(ys, y)
			zs = append(zs, x*y)
		}
	}
	fit2, err := FitPoly2D(xs, ys, zs, 2, 0, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fit2.MaxErr > 1e-7 {
		t.Errorf("deg-2 saddle should be exact, err %g", fit2.MaxErr)
	}
	fit1, err := FitPoly2D(xs, ys, zs, 1, 0, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fit1.MaxErr < 0.1 {
		t.Errorf("deg-1 fit of saddle should have real error, got %g", fit1.MaxErr)
	}
	if fit1.MaxErr < fit2.MaxErr {
		t.Errorf("higher degree must not fit worse")
	}
}

// TestFitBasisLPOptimality cross-checks the dual simplex against the direct
// tableau LP on random 2D instances.
func TestFitBasisLPOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 20; iter++ {
		m := 3 + rng.Intn(3) // number of basis functions
		n := m + 2 + rng.Intn(15)
		phi := make([][]float64, n)
		z := make([]float64, n)
		for i := range phi {
			row := make([]float64, m)
			row[0] = 1
			for k := 1; k < m; k++ {
				row[k] = rng.NormFloat64()
			}
			phi[i] = row
			z[i] = rng.NormFloat64() * 3
		}
		coeffs, maxErr, _, err := FitBasisLP(phi, z)
		if err != nil {
			t.Fatal(err)
		}
		_ = coeffs
		// Direct LP on the same instance.
		nv := m + 1
		var a [][]float64
		var b []float64
		var rel []lp.Relation
		for i := range phi {
			r1 := make([]float64, nv)
			r2 := make([]float64, nv)
			copy(r1, phi[i])
			for k, v := range phi[i] {
				r2[k] = -v
			}
			r1[m], r2[m] = 1, 1
			a = append(a, r1, r2)
			b = append(b, z[i], -z[i])
			rel = append(rel, lp.GE, lp.GE)
		}
		free := make([]bool, nv)
		for k := 0; k < m; k++ {
			free[k] = true
		}
		cost := make([]float64, nv)
		cost[m] = 1
		res, err := lp.Solve(lp.Problem{C: cost, A: a, B: b, Rel: rel, Free: free})
		if err != nil || res.Status != lp.Optimal {
			t.Fatalf("direct LP failed: %v %v", err, res.Status)
		}
		if math.Abs(maxErr-res.Objective) > 1e-6*(1+maxErr) {
			t.Errorf("iter %d: dual simplex %.10g vs direct %.10g", iter, maxErr, res.Objective)
		}
	}
}

func TestFit2DErrorCases(t *testing.T) {
	if _, err := FitPoly2D(nil, nil, nil, 2, 0, 1, 0, 1); err == nil {
		t.Error("empty 2D input should error")
	}
	if _, err := FitPoly2D([]float64{1}, []float64{1, 2}, []float64{1}, 2, 0, 1, 0, 1); err == nil {
		t.Error("mismatched 2D input should error")
	}
}

func BenchmarkFitPolyDeg2N256(b *testing.B) {
	n := 256
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Sin(float64(i) / 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPoly(xs, ys, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPolyLPDeg2N256(b *testing.B) {
	n := 256
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Sin(float64(i) / 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPolyLP(xs, ys, 2); err != nil {
			b.Fatal(err)
		}
	}
}
