package minimax

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

// randSeries returns n strictly increasing keys and noisy values.
func randSeries(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	k := 0.0
	v := 1e6 * rng.Float64()
	for i := 0; i < n; i++ {
		k += 0.1 + rng.Float64()
		v += rng.NormFloat64() * 100
		xs[i] = k
		ys[i] = v
	}
	return xs, ys
}

// TestFitterMatchesFitPoly pins Fitter.Fit to FitPoly exactly — same
// coefficients, frame, max error and iteration count — across sizes
// (including the ≤ deg+1 interpolation path), degrees, and repeated reuse of
// one fitter instance.
func TestFitterMatchesFitPoly(t *testing.T) {
	f := NewFitter()
	for _, deg := range []int{0, 1, 2, 3, 5} {
		for _, n := range []int{1, 2, deg + 1, deg + 2, 10, 91, 500} {
			if n < 1 {
				continue
			}
			xs, ys := randSeries(n, int64(100*deg+n))
			want, err := FitPoly(xs, ys, deg)
			if err != nil {
				t.Fatalf("FitPoly(n=%d,deg=%d): %v", n, deg, err)
			}
			got, err := f.Fit(xs, ys, deg, -1, nil)
			if err != nil {
				t.Fatalf("Fitter.Fit(n=%d,deg=%d): %v", n, deg, err)
			}
			if got.MaxErr != want.MaxErr || got.Iters != want.Iters || got.P.F != want.P.F {
				t.Fatalf("n=%d deg=%d: meta differs: got (%g,%d,%+v) want (%g,%d,%+v)",
					n, deg, got.MaxErr, got.Iters, got.P.F, want.MaxErr, want.Iters, want.P.F)
			}
			if len(got.P.P) != len(want.P.P) {
				t.Fatalf("n=%d deg=%d: coeff count %d vs %d", n, deg, len(got.P.P), len(want.P.P))
			}
			for j := range got.P.P {
				if got.P.P[j] != want.P.P[j] {
					t.Fatalf("n=%d deg=%d: coeff %d: %v vs %v", n, deg, j, got.P.P[j], want.P.P[j])
				}
			}
		}
	}
}

// TestFitterYScaleHint verifies that passing the exact max-abs value
// reproduces the scan path bit for bit.
func TestFitterYScaleHint(t *testing.T) {
	xs, ys := randSeries(200, 9)
	maxAbs := 0.0
	for _, y := range ys {
		a := y
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	var f Fitter
	want, err := f.Fit(xs, ys, 2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Fit(xs, ys, 2, maxAbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.P.P {
		if got.P.P[j] != want.P.P[j] {
			t.Fatalf("coeff %d differs with yscale hint: %v vs %v", j, got.P.P[j], want.P.P[j])
		}
	}
	if got.MaxErr != want.MaxErr {
		t.Fatalf("MaxErr differs with yscale hint: %v vs %v", got.MaxErr, want.MaxErr)
	}
}

// TestFitterReuse checks the recycling contract: a donated buffer with
// sufficient capacity backs the result, and the result never aliases the
// fitter's own scratch (a second fit must not corrupt the first).
func TestFitterReuse(t *testing.T) {
	var f Fitter
	xs1, ys1 := randSeries(80, 11)
	xs2, ys2 := randSeries(80, 12)
	fit1, err := f.Fit(xs1, ys1, 2, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	saved := append(poly.Poly(nil), fit1.P.P...)
	if _, err := f.Fit(xs2, ys2, 2, -1, nil); err != nil {
		t.Fatal(err)
	}
	for j := range saved {
		if fit1.P.P[j] != saved[j] {
			t.Fatalf("second fit corrupted the first result at coeff %d", j)
		}
	}
	// Recycle fit1's buffer: fit3 must reuse its backing array.
	buf := fit1.P.P
	fit3, err := f.Fit(xs1, ys1, 2, -1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit3.P.P) > 0 && len(buf) > 0 && &fit3.P.P[0] != &buf[0] {
		t.Fatal("fit did not reuse the donated coefficient buffer")
	}
	// And the recycled result still matches a fresh computation.
	fresh, err := FitPoly(xs1, ys1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fresh.P.P {
		if fit3.P.P[j] != fresh.P.P[j] {
			t.Fatalf("recycled-buffer fit differs at coeff %d", j)
		}
	}
}

// TestFitterErrors mirrors FitPoly's validation.
func TestFitterErrors(t *testing.T) {
	var f Fitter
	if _, err := f.Fit(nil, nil, 2, -1, nil); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("empty input: got %v", err)
	}
	if _, err := f.Fit([]float64{1, 1}, []float64{2, 3}, 2, -1, nil); !errors.Is(err, ErrDuplicateKeys) {
		t.Fatalf("duplicate keys: got %v", err)
	}
	if _, err := f.Fit([]float64{1, 2}, []float64{2}, 2, -1, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := f.Fit([]float64{1}, []float64{2}, -1, -1, nil); err == nil {
		t.Fatal("negative degree accepted")
	}
}

// TestFitterDegreeSwitch exercises the degree-tied scratch rebuild.
func TestFitterDegreeSwitch(t *testing.T) {
	var f Fitter
	xs, ys := randSeries(60, 13)
	for _, deg := range []int{3, 1, 4, 1, 0, 2} {
		want, err := FitPoly(xs, ys, deg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Fit(xs, ys, deg, -1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxErr != want.MaxErr || len(got.P.P) != len(want.P.P) {
			t.Fatalf("deg %d: mismatch after degree switch", deg)
		}
		for j := range got.P.P {
			if got.P.P[j] != want.P.P[j] {
				t.Fatalf("deg %d coeff %d: %v vs %v", deg, j, got.P.P[j], want.P.P[j])
			}
		}
	}
}

// BenchmarkFitterVsFitPoly quantifies the allocation win of the reusable
// fitter on a greedy-segmentation-sized window.
func BenchmarkFitterVsFitPoly(b *testing.B) {
	xs, ys := randSeries(91, 7)
	b.Run("FitPoly", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := FitPoly(xs, ys, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fitter", func(b *testing.B) {
		b.ReportAllocs()
		f := NewFitter()
		var spare poly.Poly
		for i := 0; i < b.N; i++ {
			fit, err := f.Fit(xs, ys, 2, -1, spare)
			if err != nil {
				b.Fatal(err)
			}
			spare = fit.P.P
		}
	})
}
