package minimax

import (
	"fmt"
	"math"

	"repro/internal/poly"
)

// Fitter is a reusable minimax solver. It owns every piece of scratch memory
// a fit needs — normalised keys and values, the exchange reference, the
// (deg+2)×(deg+2) levelled-error system, residuals, and the coefficient
// accumulator — so repeated fits allocate nothing beyond the returned
// coefficient slice (and not even that when the caller recycles one via the
// reuse parameter). Greedy segmentation calls the solver O(h·log L) times per
// build, which made the per-call allocations of the original FitPoly the
// dominant construction cost.
//
// A Fitter is NOT safe for concurrent use: create one per goroutine (the
// parallel segmentation workers each own one). The zero value is ready to
// use; NewFitter exists for symmetry.
type Fitter struct {
	ts, ysn, resid []float64 // normalised keys/values, per-point residuals
	ref            []int     // exchange reference (deg+2 point indices)

	// Degree-tied scratch, rebuilt only when the requested degree changes.
	chebDeg int
	cheb    []poly.Poly // T_0..T_deg in the monomial basis
	a       [][]float64 // reference system matrix
	b, sol  []float64
	newton  []float64 // divided-difference scratch (interpolation path)
	acc     []float64 // monomial-coefficient accumulator
}

// NewFitter returns a ready-to-use Fitter. The zero value works too.
func NewFitter() *Fitter { return &Fitter{} }

// Fit computes the minimax degree-deg polynomial fit of ys over xs — the
// same result as FitPoly — reusing the fitter's scratch buffers.
//
// yscale is an optional normalisation hint: pass max_i |ys[i]| when the
// caller tracks it incrementally (greedy segmentation maintains a prefix
// maximum while extending a segment), or any negative value to let the
// fitter scan for it. Passing a value other than the exact maximum changes
// only the internal conditioning, but callers that need results identical to
// FitPoly must pass the exact maximum (or a negative value).
//
// reuse, when non-nil, donates its backing array for the returned
// coefficient slice if the capacity suffices; callers recycle the
// coefficients of fits they no longer keep to reach zero steady-state
// allocations. The returned Fit1D never aliases the fitter's own scratch.
func (f *Fitter) Fit(xs, ys []float64, deg int, yscale float64, reuse poly.Poly) (Fit1D, error) {
	if len(xs) == 0 {
		return Fit1D{}, ErrTooFewPoints
	}
	if len(xs) != len(ys) {
		return Fit1D{}, fmt.Errorf("minimax: len(xs)=%d len(ys)=%d", len(xs), len(ys))
	}
	if deg < 0 {
		return Fit1D{}, fmt.Errorf("minimax: negative degree %d", deg)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return Fit1D{}, ErrDuplicateKeys
		}
	}
	n := len(xs)
	frame := poly.NewFrame(xs[0], xs[n-1])
	f.ts = growFloats(f.ts, n)
	for i, x := range xs {
		f.ts[i] = frame.Normalize(x)
	}
	// Value scaling: keep the Gaussian solves conditioned when cumulative
	// values are ~1e6+. Errors scale back linearly.
	if yscale < 0 {
		yscale = 0
		for _, y := range ys {
			if a := math.Abs(y); a > yscale {
				yscale = a
			}
		}
	}
	if yscale == 0 {
		yscale = 1
	}
	f.ysn = growFloats(f.ysn, n)
	for i, y := range ys {
		f.ysn[i] = y / yscale
	}

	f.prepare(deg)

	var nc, iters int
	if n <= deg+1 {
		nc = f.interpolateInto(n)
	} else {
		nc, iters = f.exchange(n, deg)
	}
	// Scale back into raw value space and trim trailing zeros, matching
	// poly.Poly.Trim so coefficient counts stay compact and stable.
	for j := 0; j < nc; j++ {
		f.acc[j] *= yscale
	}
	for nc > 0 && f.acc[nc-1] == 0 {
		nc--
	}
	var out poly.Poly
	if cap(reuse) >= nc {
		out = reuse[:nc]
	} else {
		// Full deg+1 capacity so a recycled buffer fits any later fit of the
		// same degree even when this result trimmed shorter.
		out = make(poly.Poly, nc, deg+1)
	}
	copy(out, f.acc[:nc])
	fp := poly.FramedPoly{F: frame, P: out}
	return Fit1D{P: fp, MaxErr: maxAbsResidual(fp, xs, ys), Iters: iters}, nil
}

// prepare (re)builds the degree-tied scratch. Cheap no-op when the degree
// matches the previous call, which is the steady state inside a build.
func (f *Fitter) prepare(deg int) {
	if f.cheb != nil && f.chebDeg == deg {
		return
	}
	f.chebDeg = deg
	f.cheb = chebPolys(deg)
	m := deg + 2
	f.a = make([][]float64, m)
	for i := range f.a {
		f.a[i] = make([]float64, m)
	}
	f.b = make([]float64, m)
	f.sol = make([]float64, m)
	f.ref = make([]int, m)
	f.acc = make([]float64, deg+1)
	f.newton = make([]float64, deg+1)
}

// interpolateInto runs Newton divided differences over f.ts[:n]/f.ysn[:n]
// (the ≤ deg+1 point case: exact interpolation, zero error) and expands the
// Newton form into monomial coefficients in f.acc. Returns the coefficient
// count.
func (f *Fitter) interpolateInto(n int) int {
	ts := f.ts[:n]
	coef := f.newton[:n]
	copy(coef, f.ysn[:n])
	for j := 1; j < n; j++ {
		for i := n - 1; i >= j; i-- {
			coef[i] = (coef[i] - coef[i-1]) / (ts[i] - ts[i-j])
		}
	}
	// Horner-style expansion of the Newton form, in place in f.acc.
	r := f.acc[:1]
	r[0] = coef[n-1]
	for i := n - 2; i >= 0; i-- {
		l := len(r)
		r = f.acc[:l+1]
		r[l] = r[l-1]
		for j := l - 1; j >= 1; j-- {
			r[j] = r[j-1] - ts[i]*r[j]
		}
		r[0] = coef[i] - ts[i]*r[0]
	}
	return len(r)
}

// exchange runs the discrete Remez single-exchange iteration over
// f.ts[:n]/f.ysn[:n], leaving the monomial coefficients (in the normalised
// value space) in f.acc. Returns the coefficient count and iterations used.
func (f *Fitter) exchange(n, deg int) (int, int) {
	m := deg + 2
	ref := f.ref[:m]
	// Initial reference: Chebyshev-spaced indices, forced strictly increasing.
	for j := 0; j < m; j++ {
		frac := 0.5 * (1 - math.Cos(math.Pi*float64(j)/float64(m-1)))
		ref[j] = int(math.Round(frac * float64(n-1)))
	}
	for j := 1; j < m; j++ {
		if ref[j] <= ref[j-1] {
			ref[j] = ref[j-1] + 1
		}
	}
	for j := m - 1; j > 0; j-- {
		if ref[j] > n-1-(m-1-j) {
			ref[j] = n - 1 - (m - 1 - j)
		}
		if j < m-1 && ref[j] >= ref[j+1] {
			ref[j] = ref[j+1] - 1
		}
	}

	f.resid = growFloats(f.resid, n)
	resid := f.resid[:n]
	ts, ys := f.ts[:n], f.ysn[:n]
	nc := deg + 1
	iters := 0
	for ; iters < maxExchangeIters; iters++ {
		h := f.solveReference(ts, ys, ref)
		p := poly.Poly(f.acc[:nc])
		worst, worstAbs := -1, 0.0
		for i := 0; i < n; i++ {
			resid[i] = ys[i] - p.Eval(ts[i])
			if a := math.Abs(resid[i]); a > worstAbs {
				worstAbs = a
				worst = i
			}
		}
		habs := math.Abs(h)
		if worst < 0 || worstAbs <= habs*(1+relTol)+absTol {
			return nc, iters + 1
		}
		if !exchangePoint(ref, resid, worst) {
			// worst already on reference (numerical tie) — done.
			return nc, iters + 1
		}
	}
	return nc, iters
}

// solveReference solves the (deg+2)×(deg+2) levelled-error system
// Σ_k c_k T_k(t_j) + (−1)^j h = y_j on the reference, accumulating the
// monomial coefficients into f.acc and returning h.
func (f *Fitter) solveReference(ts, ys []float64, ref []int) float64 {
	m := len(ref)
	a := f.a[:m]
	b := f.b[:m]
	sign := 1.0
	for j, idx := range ref {
		row := a[j]
		t := ts[idx]
		for k := 0; k < m-1; k++ {
			row[k] = f.cheb[k].Eval(t)
		}
		row[m-1] = sign
		sign = -sign
		b[j] = ys[idx]
	}
	sol := f.sol[:m]
	gaussSolveInto(a, b, sol)
	acc := f.acc[:m-1]
	for j := range acc {
		acc[j] = 0
	}
	for k := 0; k < m-1; k++ {
		ck := f.cheb[k]
		s := sol[k]
		for j := range ck {
			acc[j] += ck[j] * s
		}
	}
	return sol[m-1]
}

// growFloats returns s resized to n, reallocating only when capacity is
// exceeded. Contents are not preserved across reallocation.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
