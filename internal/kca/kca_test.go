package kca

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildRandom(n int, seed int64) (keys, measures []float64, a *Array) {
	rng := rand.New(rand.NewSource(seed))
	keySet := map[float64]bool{}
	for len(keySet) < n {
		keySet[math.Round(rng.Float64()*1e6)/10] = true
	}
	keys = make([]float64, 0, n)
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	measures = make([]float64, n)
	for i := range measures {
		measures[i] = rng.Float64() * 10
	}
	a, err := New(keys, measures)
	if err != nil {
		panic(err)
	}
	return keys, measures, a
}

// bruteSum computes Σ measures over keys in (l, u].
func bruteSum(keys, measures []float64, l, u float64) float64 {
	s := 0.0
	for i, k := range keys {
		if k > l && k <= u {
			s += measures[i]
		}
	}
	return s
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := New([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := New([]float64{2, 1}, []float64{1, 1}); err == nil {
		t.Error("unsorted keys should error")
	}
	if _, err := New([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("duplicate keys should error")
	}
}

func TestCFStepSemantics(t *testing.T) {
	a, err := New([]float64{1, 3, 5}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ k, want float64 }{
		{0.5, 0}, {1, 10}, {2, 10}, {3, 30}, {4, 30}, {5, 60}, {100, 60},
	}
	for _, c := range cases {
		if got := a.CF(c.k); got != c.want {
			t.Errorf("CF(%g) = %g, want %g", c.k, got, c.want)
		}
	}
	if a.Total() != 60 {
		t.Errorf("Total = %g, want 60", a.Total())
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
}

func TestRangeSumHalfOpen(t *testing.T) {
	a, _ := New([]float64{1, 3, 5}, []float64{10, 20, 30})
	// (1, 5] excludes key 1 per Equation 5.
	if got := a.RangeSum(1, 5); got != 50 {
		t.Errorf("RangeSum(1,5) = %g, want 50", got)
	}
	// [1, 5] includes it.
	if got := a.RangeSumClosed(1, 5); got != 60 {
		t.Errorf("RangeSumClosed(1,5) = %g, want 60", got)
	}
	if got := a.RangeSum(5, 1); got != 0 {
		t.Errorf("inverted range should be 0, got %g", got)
	}
}

func TestRangeSumMatchesBruteForce(t *testing.T) {
	keys, measures, a := buildRandom(500, 7)
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 500; iter++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		want := bruteSum(keys, measures, l, u)
		if got := a.RangeSum(l, u); math.Abs(got-want) > 1e-6 {
			t.Fatalf("RangeSum(%g,%g) = %g, want %g", l, u, got, want)
		}
	}
}

func TestRangeSumArbitraryFloatKeys(t *testing.T) {
	keys, measures, a := buildRandom(300, 9)
	rng := rand.New(rand.NewSource(10))
	lo, hi := keys[0], keys[len(keys)-1]
	for iter := 0; iter < 300; iter++ {
		l := lo - 10 + rng.Float64()*(hi-lo+20)
		u := l + rng.Float64()*(hi-lo)
		want := bruteSum(keys, measures, l, u)
		if got := a.RangeSum(l, u); math.Abs(got-want) > 1e-6 {
			t.Fatalf("RangeSum(%g,%g) = %g, want %g", l, u, got, want)
		}
	}
}

func TestNewCount(t *testing.T) {
	a, err := NewCount([]float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.RangeSumClosed(4, 8); got != 3 {
		t.Errorf("count [4,8] = %g, want 3", got)
	}
	if got := a.RangeSum(2, 8); got != 3 {
		t.Errorf("count (2,8] = %g, want 3", got)
	}
}

// Property: CF is monotone non-decreasing for non-negative measures.
func TestCFMonotoneProperty(t *testing.T) {
	_, _, a := buildRandom(200, 11)
	err := quick.Check(func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return a.CF(x) <= a.CF(y)+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	_, _, a := buildRandom(100, 13)
	if got := a.SizeBytes(); got != 1600 {
		t.Errorf("SizeBytes = %d, want 1600", got)
	}
}
