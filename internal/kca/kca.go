// Package kca implements the key-cumulative array of Section III-B1: the
// exact O(log n) method for range SUM/COUNT queries over float keys, and the
// exact fallback used when a relative-error query fails the Lemma 3 check.
//
// Unlike a plain prefix-sum array the KCA supports arbitrary floating-point
// search keys: CF(k) is resolved with a binary search for the greatest key
// ≤ k (the key-cumulative function is a right-continuous step function).
package kca

import (
	"fmt"
	"sort"
)

// Array is an immutable key-cumulative array over a dataset sorted by key.
type Array struct {
	keys []float64
	cum  []float64 // cum[i] = Σ measures of keys[0..i]
}

// New builds a KCA from keys sorted strictly ascending and their measures.
// Measures must be non-negative for the paper's guarantees to apply, but the
// structure itself does not require it.
func New(keys, measures []float64) (*Array, error) {
	if len(keys) == 0 || len(keys) != len(measures) {
		return nil, fmt.Errorf("kca: %d keys, %d measures", len(keys), len(measures))
	}
	cum := make([]float64, len(keys))
	run := 0.0
	for i, k := range keys {
		if i > 0 && k <= keys[i-1] {
			return nil, fmt.Errorf("kca: keys not strictly increasing at %d", i)
		}
		run += measures[i]
		cum[i] = run
	}
	return &Array{keys: keys, cum: cum}, nil
}

// NewCount builds a KCA whose measure is the constant 1, turning RangeSum
// into an exact range COUNT.
func NewCount(keys []float64) (*Array, error) {
	ones := make([]float64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	return New(keys, ones)
}

// Len returns the number of records.
func (a *Array) Len() int { return len(a.keys) }

// Total returns CF(+∞), the sum of all measures.
func (a *Array) Total() float64 {
	if len(a.cum) == 0 {
		return 0
	}
	return a.cum[len(a.cum)-1]
}

// CF evaluates the key-cumulative function CFsum(k) = Rsum(D, [-∞, k])
// (Equation 4) for an arbitrary float key.
func (a *Array) CF(k float64) float64 {
	// Greatest index with keys[i] ≤ k.
	i := sort.SearchFloat64s(a.keys, k)
	if i < len(a.keys) && a.keys[i] == k {
		return a.cum[i]
	}
	if i == 0 {
		return 0
	}
	return a.cum[i-1]
}

// RangeSum answers Rsum(D, (l, u]) = CF(u) − CF(l), the paper's Equation 5
// semantics.
func (a *Array) RangeSum(l, u float64) float64 {
	if u < l {
		return 0
	}
	return a.CF(u) - a.CF(l)
}

// RangeSumClosed answers the closed-interval variant Rsum(D, [l, u]).
func (a *Array) RangeSumClosed(l, u float64) float64 {
	if u < l {
		return 0
	}
	lo := a.CF(l)
	// Subtract l's own measure back in if l is a key.
	i := sort.SearchFloat64s(a.keys, l)
	if i < len(a.keys) && a.keys[i] == l {
		if i == 0 {
			lo = 0
		} else {
			lo = a.cum[i-1]
		}
	}
	return a.CF(u) - lo
}

// Keys exposes the sorted key slice (shared, not copied).
func (a *Array) Keys() []float64 { return a.keys }

// SizeBytes reports the in-memory footprint of the structure.
func (a *Array) SizeBytes() int { return 16 * len(a.keys) }
