// Package sampling implements the two sampling baselines of Section VII:
//
//   - STree: the S-tree heuristic — an STX-style B+-tree built over a uniform
//     sample of the dataset; range COUNT estimates are scaled sample counts
//     with no error guarantee (§VII-E).
//   - S2: the sequential sampling estimator of Haas & Swami [26], which keeps
//     drawing records until a CLT confidence interval meets the requested
//     absolute or relative error at the requested confidence (probabilistic
//     guarantee; the paper uses probability 0.9).
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/btree"
)

// STree estimates range COUNT from a B+-tree over a uniform key sample.
type STree struct {
	tree  *btree.Tree
	n     int // full dataset cardinality
	s     int // sample size
	scale float64
}

// NewSTree samples sampleSize keys uniformly without replacement (by
// shuffling) and bulk-loads the B+-tree.
func NewSTree(keys []float64, sampleSize int, seed int64) (*STree, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("sampling: empty key set")
	}
	if sampleSize <= 0 {
		return nil, fmt.Errorf("sampling: non-positive sample size")
	}
	if sampleSize > len(keys) {
		sampleSize = len(keys)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(keys))[:sampleSize]
	sample := make([]float64, sampleSize)
	for i, p := range perm {
		sample[i] = keys[p]
	}
	sort.Float64s(sample)
	tr, err := btree.New(sample, 0)
	if err != nil {
		return nil, err
	}
	return &STree{
		tree:  tr,
		n:     len(keys),
		s:     sampleSize,
		scale: float64(len(keys)) / float64(sampleSize),
	}, nil
}

// EstimateCount estimates |{k : lq < k ≤ uq}| as the scaled sample count.
func (t *STree) EstimateCount(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	inSample := t.tree.Rank(uq) - t.tree.Rank(lq)
	return float64(inSample) * t.scale
}

// SampleSize returns the number of sampled keys.
func (t *STree) SampleSize() int { return t.s }

// SizeBytes reports the B+-tree footprint.
func (t *STree) SizeBytes() int { return t.tree.SizeBytes() }

// --- S2: sequential sampling ------------------------------------------------

// S2 draws records at query time until the confidence interval is tight
// enough. It holds only a reference to the key array (it is a query-time
// sampler, not an index).
type S2 struct {
	keys []float64
	conf float64 // confidence level, e.g. 0.9
	z    float64 // normal quantile for conf
	rng  *rand.Rand
	// MaxDraws caps a single query's sampling effort (defends against
	// unbounded loops on empty ranges under relative guarantees).
	MaxDraws int
}

// NewS2 creates a sampler at the given confidence (the paper's default 0.9).
func NewS2(keys []float64, confidence float64, seed int64) (*S2, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("sampling: empty key set")
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("sampling: confidence must be in (0,1)")
	}
	return &S2{
		keys:     keys,
		conf:     confidence,
		z:        normalQuantile(0.5 + confidence/2),
		rng:      rand.New(rand.NewSource(seed)),
		MaxDraws: 50 * len(keys),
	}, nil
}

// CountAbs estimates |{k : lq < k ≤ uq}| sampling until the CI half-width is
// ≤ epsAbs with the configured confidence. draws reports the sampling effort.
func (s *S2) CountAbs(lq, uq, epsAbs float64) (estimate float64, draws int) {
	return s.run(lq, uq, func(est, half float64) bool { return half <= epsAbs })
}

// CountRel samples until the CI half-width is ≤ epsRel·estimate.
func (s *S2) CountRel(lq, uq, epsRel float64) (estimate float64, draws int) {
	return s.run(lq, uq, func(est, half float64) bool {
		return est > 0 && half <= epsRel*est
	})
}

func (s *S2) run(lq, uq float64, done func(est, half float64) bool) (float64, int) {
	n := float64(len(s.keys))
	if uq < lq {
		return 0, 0
	}
	const batch = 64
	hits := 0
	m := 0
	for m < s.MaxDraws {
		for b := 0; b < batch; b++ {
			k := s.keys[s.rng.Intn(len(s.keys))]
			if k > lq && k <= uq {
				hits++
			}
		}
		m += batch
		p := float64(hits) / float64(m)
		est := n * p
		half := s.z * n * math.Sqrt(p*(1-p)/float64(m))
		if m >= 256 && done(est, half) {
			return est, m
		}
	}
	return n * float64(hits) / float64(m), m
}

// normalQuantile inverts the standard normal CDF (Acklam's rational
// approximation; |relative error| < 1.15e-9 — far below sampling noise).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Count2DAbs is the two-key variant over parallel coordinate slices.
func (s *S2) Count2DAbs(xs, ys []float64, xlo, xhi, ylo, yhi, epsAbs float64) (float64, int) {
	n := float64(len(xs))
	const batch = 64
	hits, m := 0, 0
	for m < s.MaxDraws {
		for b := 0; b < batch; b++ {
			i := s.rng.Intn(len(xs))
			if xs[i] > xlo && xs[i] <= xhi && ys[i] > ylo && ys[i] <= yhi {
				hits++
			}
		}
		m += batch
		p := float64(hits) / float64(m)
		half := s.z * n * math.Sqrt(p*(1-p)/float64(m))
		if m >= 256 && half <= epsAbs {
			return n * p, m
		}
	}
	return n * float64(hits) / float64(m), m
}
