package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.NormFloat64() * 100
	}
	sort.Float64s(keys)
	return keys
}

func exactCount(keys []float64, l, u float64) float64 {
	c := 0.0
	for _, k := range keys {
		if k > l && k <= u {
			c++
		}
	}
	return c
}

func TestSTreeValidation(t *testing.T) {
	if _, err := NewSTree(nil, 10, 1); err == nil {
		t.Error("empty keys should error")
	}
	if _, err := NewSTree([]float64{1}, 0, 1); err == nil {
		t.Error("non-positive sample should error")
	}
}

func TestSTreeFullSampleIsExact(t *testing.T) {
	keys := genKeys(2000, 1)
	st, err := NewSTree(keys, len(keys)+10, 2) // clamps to full data
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleSize() != len(keys) {
		t.Fatalf("sample size %d", st.SampleSize())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		if got, want := st.EstimateCount(l, u), exactCount(keys, l, u); got != want {
			t.Fatalf("full-sample estimate %g != exact %g", got, want)
		}
	}
}

func TestSTreeEstimateReasonable(t *testing.T) {
	keys := genKeys(50000, 4)
	st, err := NewSTree(keys, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	// Mean relative error over selective queries should be modest (a 10%
	// sample has ~1/√(p·s) noise).
	sumRel, cnt := 0.0, 0
	for i := 0; i < 100; i++ {
		l := keys[rng.Intn(len(keys)/2)]
		u := keys[len(keys)/2+rng.Intn(len(keys)/2)]
		want := exactCount(keys, l, u)
		if want < 1000 {
			continue
		}
		sumRel += math.Abs(st.EstimateCount(l, u)-want) / want
		cnt++
	}
	if cnt == 0 {
		t.Fatal("no selective queries generated")
	}
	if mean := sumRel / float64(cnt); mean > 0.2 {
		t.Errorf("mean relative error %g too large for 10%% sample", mean)
	}
	if st.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestSTreeDeterministicSeed(t *testing.T) {
	keys := genKeys(1000, 7)
	a, _ := NewSTree(keys, 100, 42)
	b, _ := NewSTree(keys, 100, 42)
	for i := 0; i < 50; i++ {
		l, u := keys[i*3], keys[500+i*3]
		if a.EstimateCount(l, u) != b.EstimateCount(l, u) {
			t.Fatal("same seed, different estimates")
		}
	}
}

func TestS2Validation(t *testing.T) {
	if _, err := NewS2(nil, 0.9, 1); err == nil {
		t.Error("empty keys should error")
	}
	if _, err := NewS2([]float64{1}, 1.5, 1); err == nil {
		t.Error("confidence outside (0,1) should error")
	}
}

// TestS2AbsoluteCoverage: the probabilistic guarantee should hold on ≳90% of
// queries (allowing test slack down to 80%).
func TestS2AbsoluteCoverage(t *testing.T) {
	keys := genKeys(20000, 8)
	s2, err := NewS2(keys, 0.9, 9)
	if err != nil {
		t.Fatal(err)
	}
	const epsAbs = 500.0
	rng := rand.New(rand.NewSource(10))
	hits, total := 0, 0
	for i := 0; i < 60; i++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		est, draws := s2.CountAbs(l, u, epsAbs)
		if draws <= 0 {
			t.Fatal("no draws recorded")
		}
		want := exactCount(keys, l, u)
		total++
		if math.Abs(est-want) <= epsAbs {
			hits++
		}
	}
	if hits*100 < total*80 {
		t.Errorf("coverage %d/%d below expectation for 90%% confidence", hits, total)
	}
}

func TestS2RelativeStops(t *testing.T) {
	keys := genKeys(20000, 11)
	s2, _ := NewS2(keys, 0.9, 12)
	// A wide range: high selectivity makes the relative target easy.
	est, draws := s2.CountRel(keys[100], keys[len(keys)-100], 0.05)
	want := exactCount(keys, keys[100], keys[len(keys)-100])
	if draws >= s2.MaxDraws {
		t.Errorf("sampler failed to stop early on easy query (%d draws)", draws)
	}
	if math.Abs(est-want)/want > 0.2 {
		t.Errorf("estimate %g too far from %g", est, want)
	}
}

func TestS2EmptyRangeHitsCap(t *testing.T) {
	keys := genKeys(5000, 13)
	s2, _ := NewS2(keys, 0.9, 14)
	s2.MaxDraws = 2048
	est, draws := s2.CountRel(keys[10], keys[10], 0.01) // empty half-open range
	if est != 0 {
		t.Errorf("empty range estimate = %g", est)
	}
	if draws != 2048 {
		t.Errorf("empty range should exhaust MaxDraws, used %d", draws)
	}
}

func TestS2Count2D(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	s2, _ := NewS2(xs, 0.9, 16)
	est, draws := s2.Count2DAbs(xs, ys, 10, 60, 10, 60, 500)
	want := 0.0
	for i := range xs {
		if xs[i] > 10 && xs[i] <= 60 && ys[i] > 10 && ys[i] <= 60 {
			want++
		}
	}
	if draws == 0 {
		t.Fatal("no draws")
	}
	if math.Abs(est-want) > 3*500 {
		t.Errorf("2D estimate %g too far from %g", est, want)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.95, 1.6449},
		{0.975, 1.9600},
		{0.05, -1.6449},
		{0.999, 3.0902},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("normalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("quantile at 0/1 should be NaN")
	}
}
