package server

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// cachedServer builds an in-memory server with the result cache enabled
// and a dynamic COUNT index named "ix" holding keys 0..n-1.
func cachedServer(t *testing.T, cacheBytes int64, n int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewDurable(Config{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	if _, err := s.Create(CreateRequest{Name: "ix", Agg: "count", EpsAbs: 64, Dynamic: true, Keys: keys}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// rawQueryBody posts one query and returns the exact response bytes.
func rawQueryBody(t *testing.T, ts *httptest.Server, name string, lo, hi float64) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/indexes/"+name+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"lo": %g, "hi": %g}`, lo, hi)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestCacheHitServesWithoutTraversal is the acceptance check for the
// cache fast path: a repeated query is answered byte-identically with
// zero index traversal, counter-verified via executed_queries.
func TestCacheHitServesWithoutTraversal(t *testing.T) {
	s, ts := cachedServer(t, 1<<20, 512)

	st1, body1 := rawQueryBody(t, ts, "ix", 10, 300)
	if st1 != http.StatusOK {
		t.Fatalf("first query: status %d", st1)
	}
	executedAfterMiss := s.executed.Load()
	if executedAfterMiss == 0 {
		t.Fatal("first query did not traverse the index")
	}
	st2, body2 := rawQueryBody(t, ts, "ix", 10, 300)
	if st2 != http.StatusOK {
		t.Fatalf("repeated query: status %d", st2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs from original: %q vs %q", body2, body1)
	}
	if got := s.executed.Load(); got != executedAfterMiss {
		t.Errorf("cache hit traversed the index: executed_queries %d -> %d", executedAfterMiss, got)
	}
	var stats ServerStats
	get(t, ts, "/v1/stats", &stats)
	if !stats.CacheEnabled || stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Errorf("cache counters = {enabled:%v hits:%d misses:%d}, want {true, 1, 1}",
			stats.CacheEnabled, stats.CacheHits, stats.CacheMisses)
	}
	var ixStats StatsResponse
	get(t, ts, "/v1/indexes/ix", &ixStats)
	if ixStats.CacheHits != 1 || ixStats.CacheMisses != 1 || ixStats.CacheBytes == 0 {
		t.Errorf("per-index cache stats = {hits:%d misses:%d bytes:%d}, want {1, 1, >0}",
			ixStats.CacheHits, ixStats.CacheMisses, ixStats.CacheBytes)
	}
}

// TestCacheInvalidatedByInsert pins the structural-invalidation claim: a
// query arriving after an insert must never observe the pre-insert cached
// value, because the bumped generation changes its cache key.
func TestCacheInvalidatedByInsert(t *testing.T) {
	s, ts := cachedServer(t, 1<<20, 512)

	var before QueryResponse
	post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 1000}, &before)
	// Warm the cache line for this exact range.
	post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 1000}, nil)
	if s.cache.hits.Load() != 1 {
		t.Fatalf("warmup hit count = %d, want 1", s.cache.hits.Load())
	}

	post(t, ts, "/v1/indexes/ix/insert", InsertRequest{Records: []Record{{Key: 600}, {Key: 601}}}, nil)
	var after QueryResponse
	post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 1000}, &after)
	if after.Value != before.Value+2 {
		t.Fatalf("post-insert count = %g, want %g (pre-insert cached value served?)", after.Value, before.Value+2)
	}
	if got := s.cache.hits.Load(); got != 1 {
		t.Errorf("post-insert query hit the stale cache line: hits = %d, want 1", got)
	}
}

// TestCacheEvictionRespectsCap fills a tiny cache with distinct ranges
// and pins the byte gauge under the configured capacity throughout.
func TestCacheEvictionRespectsCap(t *testing.T) {
	const capBytes = 8 << 10
	s, ts := cachedServer(t, capBytes, 2048)
	for i := 0; i < 400; i++ {
		if st, _ := rawQueryBody(t, ts, "ix", float64(i), float64(i+100)); st != http.StatusOK {
			t.Fatalf("query %d: status %d", i, st)
		}
		if got := s.cache.bytes.Load(); got > s.cache.capacity() {
			t.Fatalf("cache_bytes %d exceeds capacity %d after query %d", got, s.cache.capacity(), i)
		}
	}
	if s.cache.evictions.Load() == 0 {
		t.Error("400 distinct ranges in an 8 KiB cache produced no evictions")
	}
	// The per-entry byte gauge agrees with the global one (single index).
	var ixStats StatsResponse
	get(t, ts, "/v1/indexes/ix", &ixStats)
	if ixStats.CacheBytes != s.cache.bytes.Load() {
		t.Errorf("per-index cache_bytes %d != global %d", ixStats.CacheBytes, s.cache.bytes.Load())
	}
}

// TestCacheChurnMatchesUncachedControl is the -race stress test: a cached
// server and an uncached control receive identical mutations (inserts,
// rebuilds, restores — the last replacing the entry pointer), and after
// every mutation a swarm of concurrent repeated queries must return
// responses bitwise-identical to the control's, certified Bound included.
// A stale cache line, a generation race, or an un-purged entry would
// surface as a body mismatch.
func TestCacheChurnMatchesUncachedControl(t *testing.T) {
	cached, tsCached := cachedServer(t, 256<<10, 1024)
	_, tsControl := cachedServer(t, 0, 1024) // CacheBytes 0: cache disabled
	if cached.cache == nil {
		t.Fatal("cached server has no cache")
	}

	ranges := [][2]float64{{0, 500}, {100, 900}, {250, 251}, {0, 5000}, {-10, 3}}
	verify := func(round int) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					for _, r := range ranges {
						stC, bodyC := rawQueryBody(t, tsCached, "ix", r[0], r[1])
						stU, bodyU := rawQueryBody(t, tsControl, "ix", r[0], r[1])
						if stC != http.StatusOK || stU != http.StatusOK {
							t.Errorf("round %d range %v: status cached=%d control=%d", round, r, stC, stU)
							return
						}
						if !bytes.Equal(bodyC, bodyU) {
							t.Errorf("round %d range %v: cached %q != control %q", round, r, bodyC, bodyU)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	mutateBoth := func(round int) {
		switch round % 3 {
		case 0: // insert a batch into both
			recs := make([]Record, 8)
			for i := range recs {
				recs[i] = Record{Key: float64(10_000 + round*100 + i)}
			}
			for _, ts := range []*httptest.Server{tsCached, tsControl} {
				var out InsertResponse
				post(t, ts, "/v1/indexes/ix/insert", InsertRequest{Records: recs}, &out)
				if out.Inserted != len(recs) {
					t.Fatalf("round %d: inserted %d of %d (%v)", round, out.Inserted, len(recs), out.Errors)
				}
			}
		case 1: // force a merge-rebuild on both
			for _, ts := range []*httptest.Server{tsCached, tsControl} {
				if resp := post(t, ts, "/v1/indexes/ix/rebuild", nil, nil); resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d rebuild: status %d", round, resp.StatusCode)
				}
			}
		case 2: // restore the cached server's own blob into both: the
			// cached server's entry pointer changes, purging its cache
			resp, err := tsCached.Client().Get(tsCached.URL + "/v1/indexes/ix/marshal")
			if err != nil {
				t.Fatal(err)
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			req := RestoreRequest{Blob: base64.StdEncoding.EncodeToString(blob)}
			for _, ts := range []*httptest.Server{tsCached, tsControl} {
				if resp := post(t, ts, "/v1/indexes/ix/restore", req, nil); resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d restore: status %d", round, resp.StatusCode)
				}
			}
		}
	}

	verify(0)
	for round := 1; round <= 9; round++ {
		mutateBoth(round)
		verify(round)
	}
	var stats ServerStats
	get(t, tsCached, "/v1/stats", &stats)
	if stats.CacheHits == 0 {
		t.Error("churn stress never hit the cache — repeated queries were not cached")
	}
	if got, cap := cached.cache.bytes.Load(), cached.cache.capacity(); got > cap {
		t.Errorf("cache_bytes %d exceeds capacity %d after churn", got, cap)
	}
}
