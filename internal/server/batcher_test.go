package server

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
)

// TestQueuedPointQueriesSweepAsOneBatch is the acceptance check for
// batched admission: distinct point queries that pile up in the queue
// behind a held leader execute as ONE QueryBatch sweep under a single
// admission slot (counter-verified), and each waiter's response carries
// its own per-range certified Bound — bitwise-identical to what a solo
// query of the same range returns.
func TestQueuedPointQueriesSweepAsOneBatch(t *testing.T) {
	s, ts := overloadServer(t, 1, 8)
	entered, release := holdQueries(t)

	const waiters = 4
	var wg sync.WaitGroup
	codes := make([]int, waiters+1)
	bodies := make([][]byte, waiters+1)
	query := func(i int, lo float64) {
		defer wg.Done()
		codes[i], bodies[i] = rawQueryBody(t, ts, "ix", lo, 400+lo)
	}
	wg.Add(1)
	go query(0, 0)
	<-entered // the leader holds the only slot, parked before its traversal
	executedBefore := s.executed.Load()
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go query(i, float64(i)) // distinct ranges: no coalescing, all queue
	}
	waitFor(t, "all waiters queued", func() bool { return s.adm.queued.Load() == waiters })

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("query %d: status %d, want 200", i, code)
		}
	}
	// Exactly two traversals happened after the quiesce point: the held
	// leader's own solo query, and ONE group sweep answering all four
	// queued waiters.
	if got := s.executed.Load() - executedBefore; got != 2 {
		t.Errorf("executed %d traversals, want 2 (leader solo + one group sweep)", got)
	}
	if got := s.batchedGroups.Load(); got != 1 {
		t.Errorf("batched_groups = %d, want 1", got)
	}
	if got := s.batchedQueries.Load(); got != waiters {
		t.Errorf("batched_queries = %d, want %d", got, waiters)
	}

	// Per-range bounds intact: each swept response is bitwise-identical to
	// a solo query of the same range (the server is idle now, so these
	// control re-queries take the solo fast path).
	for i := 1; i <= waiters; i++ {
		st, solo := rawQueryBody(t, ts, "ix", float64(i), 400+float64(i))
		if st != http.StatusOK {
			t.Fatalf("solo control query %d: status %d", i, st)
		}
		if !bytes.Equal(bodies[i], solo) {
			t.Errorf("swept response %d differs from solo: %q vs %q", i, bodies[i], solo)
		}
	}
}

// TestCoalescedFollowerHonorsOwnDeadline is the regression test for the
// coalescing-deadline bug: a follower waiting on a slow leader used to
// block on the flight's done channel with no context select, so its own
// timeout_ms was silently ignored. It must answer 504 on its own
// deadline while the leader keeps executing, and the coalesce_waiting
// gauge must come back down.
func TestCoalescedFollowerHonorsOwnDeadline(t *testing.T) {
	s, ts := overloadServer(t, 8, 8)
	entered, release := holdQueries(t)

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderCode int
	go func() {
		defer wg.Done()
		resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 10, Hi: 300}, nil)
		leaderCode = resp.StatusCode
	}()
	<-entered // leader is executing, held by the hook

	var e errorResponse
	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 10, Hi: 300, TimeoutMS: 25}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline follower: got %d (%s), want 504", resp.StatusCode, e.Error)
	}
	if got := s.timedOut.Load(); got != 1 {
		t.Errorf("timed_out = %d, want 1", got)
	}
	waitFor(t, "coalesce_waiting back to zero", func() bool { return s.coalesceWait.Load() == 0 })

	close(release)
	wg.Wait()
	if leaderCode != http.StatusOK {
		t.Errorf("leader: got %d, want 200 (follower's deadline must not kill the flight)", leaderCode)
	}
}

// TestDeadlineWhileQueuedAnswers504 pins the queued-arm of the deadline
// contract: a query whose deadline expires while waiting for a slot
// answers 504 and counts timed_out, not canceled.
func TestDeadlineWhileQueuedAnswers504(t *testing.T) {
	s, ts := overloadServer(t, 1, 4)
	entered, release := holdQueries(t)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 400}, nil)
	}()
	<-entered // slot held

	var e errorResponse
	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 1, Hi: 400, TimeoutMS: 25}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued query past deadline: got %d (%s), want 504", resp.StatusCode, e.Error)
	}
	if got, canc := s.timedOut.Load(), s.canceled.Load(); got != 1 || canc != 0 {
		t.Errorf("counters = {timed_out:%d canceled:%d}, want {1, 0}", got, canc)
	}
	close(release)
	wg.Wait()
}

// TestClientDisconnectCounts499 is the regression test for the
// canceled-vs-deadline bug: a client hanging up used to be folded into
// timed_out as a 504. It must instead count canceled_queries (499-style)
// — tested both while queued and mid-execution.
func TestClientDisconnectCounts499(t *testing.T) {
	t.Run("while queued", func(t *testing.T) {
		s, ts := overloadServer(t, 1, 4)
		entered, release := holdQueries(t)
		defer close(release)

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 400}, nil)
		}()
		<-entered // slot held: the next query will queue

		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/indexes/ix/query", bytes.NewReader([]byte(`{"lo": 1, "hi": 400}`)))
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			_, derr := ts.Client().Do(req)
			errc <- derr
		}()
		waitFor(t, "disconnecting query queued", func() bool { return s.adm.queued.Load() == 1 })
		cancel() // client hangs up while queued
		if derr := <-errc; derr == nil {
			t.Fatal("canceled request unexpectedly completed")
		}
		waitFor(t, "canceled counter", func() bool { return s.canceled.Load() == 1 })
		if got := s.timedOut.Load(); got != 0 {
			t.Errorf("client disconnect inflated timed_out: %d, want 0", got)
		}
	})

	t.Run("mid-execution", func(t *testing.T) {
		s, ts := overloadServer(t, 4, 4)
		// Park the executing query until its own request context dies — the
		// context-aware hook makes "client hangs up mid-execution" exact:
		// the index traversal provably starts after the disconnect landed.
		executing := make(chan struct{})
		testHookQueryDelayCtx = func(ctx context.Context) {
			close(executing)
			<-ctx.Done()
		}
		t.Cleanup(func() { testHookQueryDelayCtx = nil })

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/indexes/ix/query", bytes.NewReader([]byte(`{"lo": 0, "hi": 400}`)))
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			_, derr := ts.Client().Do(req)
			errc <- derr
		}()
		<-executing // the query holds a slot, about to traverse
		cancel()    // client hangs up; the hook releases once the server sees it
		if derr := <-errc; derr == nil {
			t.Fatal("canceled request unexpectedly completed")
		}
		waitFor(t, "canceled counter", func() bool { return s.canceled.Load() == 1 })
		if got := s.timedOut.Load(); got != 0 {
			t.Errorf("client disconnect inflated timed_out: %d, want 0", got)
		}
	})
}
