// Package server exposes a registry of PolyFit indexes over an HTTP JSON
// API — the query-serving layer in front of the core index structures,
// in the spirit of overlay aggregate-range services: clients build named
// indexes (all four aggregates, static or dynamic), stream inserts into
// dynamic ones, and answer single or batched range aggregate queries.
//
// The server is safe for heavy concurrent traffic: the registry is guarded
// by an RWMutex, static indexes are immutable, and dynamic indexes are
// internally synchronised (queries are lock-free snapshot reads that never
// block behind inserts or merge-rebuilds).
//
// Servers built with NewDurable and a data dir survive restarts: indexes
// are snapshotted to disk, acknowledged inserts are fsynced to a
// write-ahead log before the response goes out, and the registry is
// recovered on boot (see durability.go for the full contract).
//
// The server is also overload- and fault-safe: every query runs under a
// deadline (per-request timeout_ms or the server default) and reports 504
// when it expires; a bounded admission queue sheds excess queries with
// 429 + Retry-After instead of queueing unboundedly; identical concurrent
// queries coalesce onto one execution (see admission.go); request bodies
// are capped per route (413); handler panics are recovered to a 500; and
// Drain stops new work while in-flight requests finish. When the disk
// goes bad, inserts degrade to acknowledged-but-not-durable (200 with
// durable:false) rather than blocking or failing — the forced-snapshot
// path persists them as soon as the disk heals (see durability.go).
//
// # Endpoints
//
//	GET    /healthz                       liveness probe
//	GET    /v1/stats                      global durability counters
//	POST   /v1/indexes                    build an index (data or blob)
//	GET    /v1/indexes                    list all indexes with stats
//	GET    /v1/indexes/{name}             stats for one index
//	DELETE /v1/indexes/{name}             drop an index
//	POST   /v1/indexes/{name}/query       one range: {lo, hi, eps_rel?}
//	POST   /v1/indexes/{name}/batch       many ranges in one request
//	POST   /v1/indexes/{name}/insert      append records (dynamic only)
//	POST   /v1/indexes/{name}/rebuild     force a merge-rebuild (dynamic only)
//	GET    /v1/indexes/{name}/marshal     serialised index (octet-stream)
//	POST   /v1/indexes/{name}/restore     load a marshalled blob under name
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	polyfit "repro"
	"repro/internal/persist"
)

// Per-route request body caps. Create and restore carry whole datasets or
// index blobs (datasets of a few million float keys fit comfortably;
// anything larger should be loaded server-side); insert batches are
// bounded streams; query and batch bodies are small JSON. A body over its
// route's cap is answered with a structured 413.
const (
	maxBodyBytes   = 512 << 20 // create, restore, and default
	maxInsertBytes = 64 << 20
	maxBatchBytes  = 32 << 20
	maxQueryBytes  = 1 << 20
)

type entry struct {
	// ix is the uniform query surface: every variant — static, dynamic,
	// sharded, sharded dynamic — serves the same polyfit.Index contract, so
	// the handlers never switch on concrete types.
	ix polyfit.Index
	// ins is ix's Inserter capability (nil for static indexes); shd its
	// ShardSnapshotter capability (nil unless sharded dynamic), the unit of
	// per-shard durability.
	ins polyfit.Inserter
	shd polyfit.ShardSnapshotter

	// Durable state (nil/zero for in-memory servers and static indexes).
	// Plain dynamic indexes log to wal; sharded dynamic indexes log each
	// insert to its owning shard's WAL in shardWALs.
	wal          *persist.WAL // acknowledged-insert log, dynamic only
	shardWALs    []*persist.WAL
	snapMu       sync.Mutex   // serialises snapshot+truncate pairs and file teardown
	snapshots    atomic.Int64 // snapshots written for this index
	lastSnapUnix atomic.Int64
	replayed     int64 // WAL inserts replayed at recovery (read-only after boot)
	// forceSnap requests a snapshot even with an empty WAL — set when a WAL
	// append failed, so records that are only in memory still reach disk on
	// the next snapshotter cycle.
	forceSnap atomic.Bool
	// degraded marks the entry's persistence as sick: a WAL append failed
	// (even after retries), so inserts are acknowledged with durable:false
	// and skip the log until a successful snapshot heals it (the snapshot
	// covers the unlogged records, and the WAL is reset underneath it).
	degraded atomic.Bool
	// persistErrors counts failed persistence operations for this index;
	// nonDurable counts inserts acknowledged without the durability
	// guarantee while degraded.
	persistErrors atomic.Int64
	nonDurable    atomic.Int64

	// Result-cache accounting for this index (always zero on servers with
	// the cache disabled): hits and misses against this entry's cached
	// bodies, and the bytes they currently occupy (see cache.go).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheBytes  atomic.Int64

	// Leader-side replication coordinates: the incarnation of this
	// entry's sequence space and the per-WAL stream origins (see
	// replication.go).
	repl replState
}

// newEntry wraps an index, discovering its optional capabilities once.
func newEntry(ix polyfit.Index) *entry {
	e := &entry{ix: ix}
	e.ins, _ = ix.(polyfit.Inserter)
	e.shd, _ = ix.(polyfit.ShardSnapshotter)
	return e
}

// Server is an http.Handler serving a registry of named PolyFit indexes.
type Server struct {
	mu      sync.RWMutex
	indexes map[string]*entry // guarded by mu
	mux     *http.ServeMux

	// adminMu serialises registry admin (create/delete/restore) with the
	// persistence side effects those operations carry, so index files are
	// never created and removed concurrently for the same name. Queries and
	// inserts never touch it.
	adminMu sync.Mutex

	// Durability (nil/zero when no data dir is configured — see durability.go).
	store            *persist.Store
	logf             func(format string, args ...any)
	stop             chan struct{}
	done             chan struct{}
	closeOnce        sync.Once
	snapshotsWritten atomic.Int64
	walAppended      atomic.Int64
	recovery         RecoverySummary

	// Overload control (see admission.go), result cache (cache.go), and
	// batched admission (batcher.go), plus request-lifecycle state.
	adm            *admission
	flight         flightGroup
	cache          *resultCache // nil when Config.CacheBytes == 0 (cache off)
	batcher        queryBatcher
	defaultTimeout time.Duration
	draining       atomic.Bool  // Drain/Close called: new requests get 503
	httpInFlight   atomic.Int64 // requests currently inside ServeHTTP
	coalesced      atomic.Int64 // queries answered from another query's flight
	coalesceWait   atomic.Int64 // gauge: followers blocked on a leader right now
	timedOut       atomic.Int64 // queries that ran out of deadline (504)
	canceled       atomic.Int64 // queries abandoned by client disconnect (499)
	executed       atomic.Int64 // index traversals: solo queries, batches, group sweeps
	batchedGroups  atomic.Int64 // queued point-query groups executed as one sweep
	batchedQueries atomic.Int64 // point queries claimed by a group sweep
	panics         atomic.Int64 // handler panics recovered to a 500
	persistErrors  atomic.Int64 // failed persistence operations, server-wide
	nonDurableIns  atomic.Int64 // inserts acknowledged durable:false, server-wide

	// Replication (see replication.go and follower.go): epoch identifies
	// this boot in the wire protocol, instanceSeq hands out per-entry
	// incarnations, acks is the leader's follower-watermark table, and
	// follower is non-nil when this server replicates from a leader
	// (Config.Join).
	epoch       int64
	advertise   string
	instanceSeq atomic.Uint64
	acks        replAcks
	followerTTL time.Duration
	follower    *follower
}

// New returns a ready-to-serve in-memory Server with an empty registry.
// Use NewDurable to back the registry with a data directory.
func New() *Server {
	s, _ := NewDurable(Config{}) // no data dir: cannot fail
	return s
}

func newServer() *Server {
	s := &Server{indexes: make(map[string]*entry), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/stats", s.handleServerStats)
	s.mux.HandleFunc("POST /v1/indexes", s.handleCreate)
	s.mux.HandleFunc("GET /v1/indexes", s.handleList)
	s.mux.HandleFunc("GET /v1/indexes/{name}", s.handleStats)
	s.mux.HandleFunc("DELETE /v1/indexes/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/indexes/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/indexes/{name}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/indexes/{name}/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/indexes/{name}/rebuild", s.handleRebuild)
	s.mux.HandleFunc("GET /v1/indexes/{name}/marshal", s.handleMarshal)
	s.mux.HandleFunc("POST /v1/indexes/{name}/restore", s.handleRestore)
	// Replication endpoints (paths match internal/cluster's client — see
	// replication.go): node status, snapshot join, and WAL tail streaming.
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /v1/cluster/snapshot/{name}", s.handleClusterSnapshot)
	s.mux.HandleFunc("GET /v1/cluster/wal/{name}", s.handleClusterTail)
	return s
}

// ServeHTTP wraps the mux with the request-lifecycle middleware: draining
// servers turn new requests away with a 503 + Retry-After (in-flight ones
// finish — Drain waits on the gauge incremented here), and a panicking
// handler is recovered to a 500 instead of tearing down the connection
// (and, under http.Server, the whole goroutine's request).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("server is shutting down"))
		return
	}
	s.httpInFlight.Add(1)
	defer s.httpInFlight.Add(-1)
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.logf("polyfit-serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			writeError(w, http.StatusInternalServerError, errors.New("internal error (panic recovered)"))
		}
	}()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Drain stops accepting new requests (503 + Retry-After) and waits until
// every in-flight request has finished, or ctx expires. Call it between
// closing the listener and Close, so acknowledged work completes before
// durability teardown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpInFlight.Load() == 0 {
		return nil
	}
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d requests still in flight: %w", s.httpInFlight.Load(), ctx.Err())
		case <-t.C:
			if s.httpInFlight.Load() == 0 {
				return nil
			}
		}
	}
}

// --- wire types -------------------------------------------------------------

// CreateRequest builds a new named index, either from raw data (keys and,
// for SUM/MIN/MAX, measures) or — static indexes only — from a previously
// marshalled blob.
type CreateRequest struct {
	Name            string    `json:"name"`
	Agg             string    `json:"agg"` // count | sum | min | max
	Dynamic         bool      `json:"dynamic"`
	Keys            []float64 `json:"keys,omitempty"`
	Measures        []float64 `json:"measures,omitempty"`
	EpsAbs          float64   `json:"eps_abs,omitempty"`
	Delta           float64   `json:"delta,omitempty"`
	Degree          int       `json:"degree,omitempty"`
	DisableFallback bool      `json:"disable_fallback,omitempty"`
	// Parallelism is the goroutine count for the build (and for later
	// merge-rebuilds of dynamic indexes, which inherit it). 0 selects
	// GOMAXPROCS; the produced index is identical for every worker count.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards range-partitions the index into this many scatter-gather
	// shards (values ≤ 1 build unsharded). Sharded dynamic indexes get
	// shard-local inserts, per-shard merge-rebuilds, and — on durable
	// servers — one snapshot+WAL pair per shard, recovered independently.
	Shards int    `json:"shards,omitempty"`
	Blob   string `json:"blob,omitempty"` // base64, from /marshal
}

// StatsResponse reports one index's structure.
type StatsResponse struct {
	Name          string  `json:"name"`
	Aggregate     string  `json:"aggregate"`
	Dynamic       bool    `json:"dynamic"`
	Records       int     `json:"records"`
	Segments      int     `json:"segments"`
	Degree        int     `json:"degree"`
	Delta         float64 `json:"delta"`
	IndexBytes    int     `json:"index_bytes"`
	CoeffBytes    int     `json:"coeff_bytes"` // coefficient lanes, included in index_bytes
	RootBytes     int     `json:"root_bytes"`  // learned-root tables, included in index_bytes
	FallbackBytes int     `json:"fallback_bytes"`
	Encoding      string  `json:"encoding"` // "raw", "float32", "packed", or "mixed"
	BufferLen     int     `json:"buffer_len,omitempty"`

	// Sharding (only for sharded indexes): the shard count and one stats
	// row per shard.
	Shards     int          `json:"shards,omitempty"`
	ShardStats []ShardStats `json:"shard_stats,omitempty"`

	// Durability counters (only on servers with a data dir).
	Durable          bool  `json:"durable,omitempty"`
	Snapshots        int64 `json:"snapshots,omitempty"`          // snapshots written for this index
	LastSnapshotUnix int64 `json:"last_snapshot_unix,omitempty"` // seconds since epoch
	WALRecords       int64 `json:"wal_records,omitempty"`        // acknowledged inserts not yet in a snapshot
	WALBytes         int64 `json:"wal_bytes,omitempty"`
	ReplayedInserts  int64 `json:"replayed_inserts,omitempty"` // WAL inserts replayed at boot

	// Degradation counters (durable servers): PersistDegraded is true while
	// the index's WAL is sick and inserts are acknowledged durable:false;
	// the counters record how often persistence failed and how many inserts
	// were acknowledged without the durability guarantee.
	PersistDegraded   bool  `json:"persist_degraded,omitempty"`
	PersistErrors     int64 `json:"persist_errors,omitempty"`
	NonDurableInserts int64 `json:"non_durable_inserts,omitempty"`

	// Result-cache counters (only on servers with Config.CacheBytes > 0):
	// hits and misses against this index's cached responses, and the bytes
	// they currently occupy in the shared cache budget.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	CacheBytes  int64 `json:"cache_bytes,omitempty"`
}

// ShardStats is one shard's row in a sharded index's StatsResponse.
type ShardStats struct {
	Shard      int     `json:"shard"`
	Records    int     `json:"records"`
	Segments   int     `json:"segments"`
	IndexBytes int     `json:"index_bytes"`
	Encoding   string  `json:"encoding"`
	BufferLen  int     `json:"buffer_len,omitempty"`
	KeyLo      float64 `json:"key_lo"`
	KeyHi      float64 `json:"key_hi"`
	// WALRecords/WALBytes cover this shard's own log (durable sharded
	// dynamic indexes only).
	WALRecords int64 `json:"wal_records,omitempty"`
	WALBytes   int64 `json:"wal_bytes,omitempty"`
}

// QueryRequest answers one range; EpsRel > 0 requests the relative-error
// (Problem 2) path. TimeoutMS > 0 overrides the server's default query
// deadline for this request; when the deadline expires the query is
// abandoned and answered with 504.
type QueryRequest struct {
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	EpsRel    float64 `json:"eps_rel,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// QueryResponse is the answer to a QueryRequest.
type QueryResponse struct {
	Value float64 `json:"value"`
	Found bool    `json:"found"`
	Exact bool    `json:"exact,omitempty"` // relative path used the exact fallback
	// Bound is the certified absolute error bound on value, present in
	// every query and batch response regardless of index layout: 2δ/δ for
	// unsharded answers, the composed 2δ·m for a sharded COUNT/SUM range
	// touching m shards, 0 for exact answers (see polyfit.Result.Bound).
	Bound float64 `json:"bound"`
}

// BatchRequest answers many ranges in one round trip via the amortised
// QueryBatch hot path. TimeoutMS behaves as in QueryRequest.
type BatchRequest struct {
	Ranges    []RangeJSON `json:"ranges"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// RangeJSON is one interval of a batch.
type RangeJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// BatchResponse carries one result per requested range, in order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// InsertRequest appends records to a dynamic index.
type InsertRequest struct {
	Records []Record `json:"records"`
}

// Record is one (key, measure) pair; COUNT indexes ignore the measure.
type Record struct {
	Key     float64 `json:"key"`
	Measure float64 `json:"measure"`
}

// InsertResponse reports per-record outcomes: Inserted counts successes,
// Errors holds the first few rejection messages (e.g. duplicate keys).
// Durable is true when the inserted records were fsynced to the write-ahead
// log before this response was sent. Degraded is true when the index's
// persistence is sick (a WAL write failed): the inserts are applied and
// acknowledged, but will only reach disk with the next successful
// snapshot — durability-sensitive clients should treat durable:false as
// "retry later or fsync externally".
type InsertResponse struct {
	Inserted int      `json:"inserted"`
	Rejected int      `json:"rejected"`
	Durable  bool     `json:"durable,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Errors   []string `json:"errors,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---------------------------------------------------------------

// ErrExists reports a Create against a name already in the registry.
var ErrExists = errors.New("server: index already exists")

// Create builds an index from req and registers it under req.Name. It is
// the programmatic equivalent of POST /v1/indexes (used by preloaders and
// embedders). On a durable server the initial snapshot (and, for dynamic
// indexes, the WAL) is on disk before Create returns.
func (s *Server) Create(req CreateRequest) (StatsResponse, error) {
	if req.Name == "" {
		return StatsResponse{}, errors.New("name is required")
	}
	// Reject a taken name before paying for the build; the authoritative
	// check below still guards against a concurrent Create racing this one.
	s.mu.RLock()
	_, exists := s.indexes[req.Name]
	s.mu.RUnlock()
	if exists {
		return StatsResponse{}, fmt.Errorf("%w: %q", ErrExists, req.Name)
	}
	e, err := buildEntry(req)
	if err != nil {
		return StatsResponse{}, err
	}
	// Admin section: persist first, then publish, so no handler ever sees a
	// registered durable index without its files.
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	s.mu.RLock()
	_, exists = s.indexes[req.Name]
	s.mu.RUnlock()
	if exists {
		return StatsResponse{}, fmt.Errorf("%w: %q", ErrExists, req.Name)
	}
	if err := s.persistNew(req.Name, e); err != nil {
		return StatsResponse{}, fmt.Errorf("persist %q: %w", req.Name, err)
	}
	s.initRepl(e)
	s.mu.Lock()
	s.indexes[req.Name] = e
	s.mu.Unlock()
	return s.statsOf(req.Name, e), nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	var req CreateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	st, err := s.Create(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrExists) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func buildEntry(req CreateRequest) (*entry, error) {
	if req.Blob != "" {
		raw, err := base64.StdEncoding.DecodeString(req.Blob)
		if err != nil {
			return nil, fmt.Errorf("decode blob: %w", err)
		}
		e, err := entryFromBlob(raw)
		if err != nil {
			return nil, err
		}
		if req.Dynamic && e.ins == nil {
			return nil, errors.New("dynamic=true but the blob is a static index (dynamic blobs come from DynamicIndex.MarshalBinary)")
		}
		return e, nil
	}
	agg, err := aggFromString(req.Agg)
	if err != nil {
		return nil, err
	}
	par := req.Parallelism
	if par == 0 {
		// Build across every available core by default: the result is
		// identical to a serial build, only the /build (and later rebuild)
		// latency changes.
		par = runtime.GOMAXPROCS(0)
	}
	// One spec-driven build for every variant: the request's layout fields
	// lower directly onto builder options, and the returned polyfit.Index
	// carries its capabilities (Inserter, ShardSnapshotter) itself.
	opts := []polyfit.Option{
		polyfit.WithMaxError(req.EpsAbs),
		polyfit.WithDelta(req.Delta),
		polyfit.WithDegree(req.Degree),
		polyfit.WithFallback(!req.DisableFallback),
		polyfit.WithParallelism(par),
	}
	if req.Dynamic {
		opts = append(opts, polyfit.WithDynamic())
	}
	if req.Shards > 1 {
		opts = append(opts, polyfit.WithShards(req.Shards))
	}
	ix, err := polyfit.New(polyfit.Spec{Agg: agg, Keys: req.Keys, Measures: req.Measures}, opts...)
	if err != nil {
		return nil, err
	}
	return newEntry(ix), nil
}

// aggFromString parses the wire aggregate name.
func aggFromString(s string) (polyfit.Agg, error) {
	switch s {
	case "count":
		return polyfit.Count, nil
	case "sum":
		return polyfit.Sum, nil
	case "min":
		return polyfit.Min, nil
	case "max":
		return polyfit.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q (want count|sum|min|max)", s)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.indexes))
	for name := range s.indexes {
		names = append(names, name)
	}
	entries := make([]*entry, len(names))
	sort.Strings(names)
	for i, name := range names {
		entries[i] = s.indexes[name]
	}
	s.mu.RUnlock()
	out := make([]StatsResponse, len(names))
	for i, name := range names {
		out[i] = s.statsOf(name, entries[i])
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.statsOf(name, e))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	name := r.PathValue("name")
	s.adminMu.Lock()
	s.mu.Lock()
	e, ok := s.indexes[name]
	delete(s.indexes, name)
	s.mu.Unlock()
	var dropErr error
	if ok {
		dropErr = s.dropPersisted(name, e)
		if s.cache != nil {
			// Release the dead entry's cached bodies now instead of letting
			// them squat on the byte budget until they age out (the entry
			// pointer in the key already makes them unreachable).
			s.cache.purgeEntry(e)
		}
	}
	s.adminMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no index %q", name))
		return
	}
	if dropErr != nil {
		writeError(w, http.StatusInternalServerError, dropErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// queryContext derives the execution context for one query: the request's
// timeout_ms if set, else the server default (DefaultQueryTimeout). Either
// way it inherits the client-disconnect cancellation of r.Context().
func (s *Server) queryContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.defaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// statusClientClosedRequest is the nginx-convention status for a request
// whose client disconnected before the response was ready. net/http has
// no named constant for it.
const statusClientClosedRequest = 499

// cancelFailure maps a dead query context to a response, distinguishing
// the two ways it dies: the deadline genuinely expired (504, counted in
// timed_out) versus the client hung up first (499, counted in
// canceled_queries). Folding disconnects into timed_out would inflate
// the timeout signal operators alert on — a disconnect storm is a client
// problem, an expiry storm is a serving-latency problem.
func (s *Server) cancelFailure(err error, during string) (int, []byte) {
	if errors.Is(err, context.Canceled) {
		s.canceled.Add(1)
		return jsonBody(statusClientClosedRequest,
			errorResponse{Error: fmt.Sprintf("client closed request %s: %v", during, err)})
	}
	s.timedOut.Add(1)
	return jsonBody(http.StatusGatewayTimeout,
		errorResponse{Error: fmt.Sprintf("query deadline expired %s: %v", during, err)})
}

// admissionFailure maps an acquire error to a response: shed → 429 (the
// Retry-After header is added by writeRaw), context death while queued →
// 504 or 499 per cancelFailure.
func (s *Server) admissionFailure(err error) (int, []byte) {
	if errors.Is(err, errShed) {
		return jsonBody(http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	}
	return s.cancelFailure(err, "while queued")
}

// queryFailure maps a query-execution error to a response body.
func (s *Server) queryFailure(err error) (int, []byte) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return s.cancelFailure(err, "during execution")
	}
	return jsonBody(queryErrStatus(err), errorResponse{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	_, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBytes)
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.EpsRel < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("non-positive relative error %g", req.EpsRel))
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	// The query path is cache → coalesce → admit → execute. The flight key
	// doubles as the cache key: the generation in it is read before any of
	// the three stages, so a query that arrives after an insert never
	// shares a pre-insert flight — and never hits a pre-insert cache line.
	key := flightKey{e: e, gen: generationOf(e), lo: req.Lo, hi: req.Hi, epsRel: req.EpsRel}
	if s.cache != nil {
		if body, ok := s.cache.get(key); ok {
			e.cacheHits.Add(1)
			writeRaw(w, http.StatusOK, body)
			return
		}
		e.cacheMisses.Add(1)
	}
	// Coalesce identical concurrent queries. Only the leader proceeds to
	// admission; followers repeat its bytes — or abandon the wait when
	// their own context dies first (ferr), which is their deadline, not
	// the leader's.
	status, body, leader, ferr := s.flight.do(ctx, key, &s.coalesceWait, func() (int, []byte) {
		return s.pointQuery(ctx, e, req, key)
	})
	if ferr != nil {
		status, body = s.cancelFailure(ferr, "waiting on a coalesced query")
		writeRaw(w, status, body)
		return
	}
	if !leader {
		s.coalesced.Add(1)
	}
	if leader && status == http.StatusOK && s.cache != nil {
		s.cache.put(key, body)
	}
	writeRaw(w, status, body)
}

// execQuery runs one range query under ctx, preferring the context-aware
// surface when the index provides it (every index polyfit.New builds
// does). The marshalled body — not the decoded struct — is what coalesced
// followers share, so identical queries return bitwise-identical bytes.
func (s *Server) execQuery(ctx context.Context, e *entry, req QueryRequest) (int, []byte) {
	s.executed.Add(1)
	r2 := polyfit.Range{Lo: req.Lo, Hi: req.Hi}
	var res polyfit.Result
	var err error
	cq, _ := e.ix.(polyfit.ContextQuerier)
	switch {
	case req.EpsRel > 0 && cq != nil:
		res, err = cq.QueryRelContext(ctx, r2, req.EpsRel)
	case req.EpsRel > 0:
		res, err = e.ix.QueryRel(r2, req.EpsRel)
	case cq != nil:
		res, err = cq.QueryContext(ctx, r2)
	default:
		res, err = e.ix.Query(r2)
	}
	if err != nil {
		return s.queryFailure(err)
	}
	return jsonBody(http.StatusOK, QueryResponse{Value: res.Value, Found: res.Found, Exact: res.Exact, Bound: res.Bound})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	_, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	// Batches take one admission slot for the whole request (they are the
	// amortised path — per-range slots would serialise them pointlessly)
	// and are not coalesced: two identical batches are far rarer than two
	// identical point queries, and the key would have to hash every range.
	if err := s.adm.acquire(ctx); err != nil {
		status, body := s.admissionFailure(err)
		writeRaw(w, status, body)
		return
	}
	defer s.adm.release()
	runQueryDelayHooks(ctx)
	ranges := make([]polyfit.Range, len(req.Ranges))
	for i, rr := range req.Ranges {
		ranges[i] = polyfit.Range{Lo: rr.Lo, Hi: rr.Hi}
	}
	s.executed.Add(1)
	var results []polyfit.Result
	var err error
	if cq, ok := e.ix.(polyfit.ContextQuerier); ok {
		results, err = cq.QueryBatchContext(ctx, ranges)
	} else {
		results, err = e.ix.QueryBatch(ranges)
	}
	if err != nil {
		status, body := s.queryFailure(err)
		writeRaw(w, status, body)
		return
	}
	out := BatchResponse{Results: make([]QueryResponse, len(results))}
	for i, res := range results {
		out.Results[i] = QueryResponse{Value: res.Value, Found: res.Found, Bound: res.Bound}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if e.ins == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("index %q is static; build it with dynamic=true to insert", name))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxInsertBytes)
	var req InsertRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// While degraded, skip the WAL entirely: its file is sick, and the
	// records are already marked for the forced-snapshot path. Serving
	// never blocks on (or retries against) a disk known to be bad.
	degraded := e.degraded.Load()
	insert := e.ins.Insert
	resp := InsertResponse{}
	var accepted []persist.Record          // plain dynamic: one log
	var acceptedByShard [][]persist.Record // sharded: one log per owning shard
	if len(e.shardWALs) > 0 {
		acceptedByShard = make([][]persist.Record, len(e.shardWALs))
	}
	for _, rec := range req.Records {
		if err := insert(rec.Key, rec.Measure); err != nil {
			resp.Rejected++
			if len(resp.Errors) < 8 {
				resp.Errors = append(resp.Errors, err.Error())
			}
			continue
		}
		resp.Inserted++
		switch {
		case acceptedByShard != nil:
			sh := e.shd.ShardOf(rec.Key)
			acceptedByShard[sh] = append(acceptedByShard[sh], persist.Record{Key: rec.Key, Measure: rec.Measure})
		case e.wal != nil:
			accepted = append(accepted, persist.Record{Key: rec.Key, Measure: rec.Measure})
		}
	}
	// Durability barrier: acknowledged inserts must be fsynced in the WAL
	// (each shard's own WAL, for sharded indexes) before the 200 goes out.
	// A log failure (the WAL layer already retried with backoff) degrades
	// rather than fails: the records are applied and acknowledged with
	// durable:false, the entry is flagged for a forced snapshot — the only
	// remaining path to disk (a retried insert would be rejected as
	// duplicate) — and later inserts skip the sick log until a successful
	// snapshot heals it. The insert path never blocks on a bad disk.
	walFailed := func(err error) {
		degraded = true
		e.degraded.Store(true)
		e.forceSnap.Store(true)
		e.persistErrors.Add(1)
		s.persistErrors.Add(1)
		s.logf("polyfit-serve: WAL append for %q failed, degrading to snapshot-only durability: %v", name, err)
	}
	logged := int64(0)
	if !degraded && len(accepted) > 0 {
		if err := e.wal.Append(accepted); err != nil {
			walFailed(err)
		} else {
			logged += int64(len(accepted))
		}
	}
	if !degraded {
		for sh, recs := range acceptedByShard {
			if len(recs) == 0 {
				continue
			}
			if err := e.shardWALs[sh].Append(recs); err != nil {
				walFailed(fmt.Errorf("shard %d: %w", sh, err))
				break
			}
			logged += int64(len(recs))
		}
	}
	if degraded {
		// Re-arm the forced snapshot on every degraded insert: a snapshot
		// may be concurrently clearing the flag, and these records must be
		// covered by the next one.
		e.forceSnap.Store(true)
		resp.Degraded = true
		if n := int64(resp.Inserted); n > 0 {
			e.nonDurable.Add(n)
			s.nonDurableIns.Add(n)
		}
	}
	if logged > 0 {
		s.walAppended.Add(logged)
	}
	// Durable only when every accepted record reached a log in this
	// request (in-memory servers have no logs and promise nothing).
	resp.Durable = !degraded && logged > 0
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if e.ins == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("index %q is static", name))
		return
	}
	if err := e.ins.Rebuild(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// A rebuild folds the buffer into a fresh base; snapshot it right away
	// (cheap — serialization, not re-fitting) and drop the covered WAL.
	if s.store != nil {
		if err := s.snapshotEntry(name, e); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	// An explicit rebuild re-fits the base at a point followers cannot
	// reproduce from the record stream alone; start a new incarnation so
	// they re-join from the post-rebuild snapshot.
	s.bumpInstance(e)
	writeJSON(w, http.StatusOK, s.statsOf(name, e))
}

func (s *Server) handleMarshal(w http.ResponseWriter, r *http.Request) {
	_, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	blob, err := e.ix.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(blob) //nolint:errcheck
}

// --- helpers ----------------------------------------------------------------

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (string, *entry, bool) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.indexes[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no index %q", name))
		return name, nil, false
	}
	return name, e, true
}

func (s *Server) statsOf(name string, e *entry) StatsResponse {
	// Stats() reads one consistent snapshot, so records/index_bytes/
	// buffer_len agree even while a merge-rebuild races this request.
	st := e.ix.Stats()
	out := StatsResponse{
		Name:          name,
		Aggregate:     st.Aggregate.String(),
		Dynamic:       e.ins != nil,
		Records:       st.Records,
		Segments:      st.Segments,
		Degree:        st.Degree,
		Delta:         st.Delta,
		IndexBytes:    st.IndexBytes,
		CoeffBytes:    st.CoeffBytes,
		RootBytes:     st.RootBytes,
		FallbackBytes: st.FallbackBytes,
		Encoding:      st.Encoding,
		BufferLen:     st.BufferLen,
		Shards:        st.Shards,
	}
	if sh, ok := e.ix.(polyfit.Sharder); ok {
		for i, ss := range sh.ShardStats() {
			row := ShardStats{
				Shard:      i,
				Records:    ss.Records,
				Segments:   ss.Segments,
				IndexBytes: ss.IndexBytes,
				Encoding:   ss.Encoding,
				BufferLen:  ss.BufferLen,
				KeyLo:      ss.KeyLo,
				KeyHi:      ss.KeyHi,
			}
			if i < len(e.shardWALs) && e.shardWALs[i] != nil {
				row.WALRecords = e.shardWALs[i].Records()
				row.WALBytes = e.shardWALs[i].Size()
			}
			out.ShardStats = append(out.ShardStats, row)
		}
	}
	if s.cache != nil {
		out.CacheHits = e.cacheHits.Load()
		out.CacheMisses = e.cacheMisses.Load()
		out.CacheBytes = e.cacheBytes.Load()
	}
	if s.store != nil {
		out.Durable = true
		out.Snapshots = e.snapshots.Load()
		out.LastSnapshotUnix = e.lastSnapUnix.Load()
		out.ReplayedInserts = e.replayed
		out.PersistDegraded = e.degraded.Load()
		out.PersistErrors = e.persistErrors.Load()
		out.NonDurableInserts = e.nonDurable.Load()
		if e.wal != nil {
			out.WALRecords = e.wal.Records()
			out.WALBytes = e.wal.Size()
		}
		for _, wal := range e.shardWALs {
			if wal != nil {
				out.WALRecords += wal.Records()
				out.WALBytes += wal.Size()
			}
		}
	}
	return out
}

func queryErrStatus(err error) int {
	if errors.Is(err, polyfit.ErrNoFallback) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeJSON decodes the request body into v, answering a structured 413
// when the route's MaxBytesReader cap was hit and a 400 for anything else.
// It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit for this endpoint", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// jsonBody marshals v once into the bytes a response (and every coalesced
// follower of it) will carry. Marshalling QueryResponse cannot fail; a
// trailing newline matches writeJSON's encoder output.
func jsonBody(status int, v any) (int, []byte) {
	b, err := json.Marshal(v)
	if err != nil {
		return http.StatusInternalServerError, []byte(`{"error":"encode response"}` + "\n")
	}
	return status, append(b, '\n')
}

// writeRaw writes a pre-marshalled JSON body, attaching Retry-After to
// backpressure statuses so well-behaved clients pace their retries.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}
