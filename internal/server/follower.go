package server

// Follower mode: a server started with Config.Join mirrors the leader's
// registry in memory and serves reads from it at a reported staleness.
// The sync loop is the only writer of a follower's registry — client
// writes are rejected with 409 + X-Polyfit-Leader (see
// rejectFollowerWrite) — so the replica's state is a pure function of
// the leader's snapshot + WAL stream:
//
//  1. Poll the leader's status; drop local indexes the leader no longer
//     has, and (re)join any index whose (epoch, instance) coordinates
//     changed by fetching its snapshot. Snapshot restore is bit-identical
//     (no re-fitting), so the replica starts from exactly the leader's
//     marshalled state.
//  2. For every dynamic index, long-poll the WAL tail from the local
//     cursor and apply the records in stream order. The cursor doubles as
//     the acknowledgement the leader's truncation gating keys on.
//     Duplicate keys (a snapshot that already covered part of the tail)
//     are skipped idempotently.
//  3. When every stream has reached the leader's end sequence, stamp the
//     caught-up clock — staleness_ms in /v1/stats and the router's
//     staleness gate both derive from it.
//
// Because dynamic-index state is a deterministic function of the restored
// snapshot and the applied record sequence (merge-rebuilds trigger at a
// count threshold and re-fit deterministically), a follower that has
// acknowledged sequence s answers queries bitwise-identically to the
// leader at s — the property the cluster crashtest asserts.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	polyfit "repro"
	"repro/internal/cluster"
)

// follower runs a server's replication client. Created by NewDurable when
// Config.Join is set.
type follower struct {
	s      *Server
	leader string
	id     string
	client *cluster.Client
	poll   time.Duration // idle delay between sync cycles
	wait   time.Duration // long-poll budget requested per tail

	stop   chan struct{}
	done   chan struct{}
	cancel context.CancelFunc

	mu      sync.Mutex
	cursors map[string]*replCursor // guarded by mu

	caughtUpNano atomic.Int64 // when every stream last reached the leader's end
	synced       atomic.Int64 // snapshot (re)joins
	applied      atomic.Int64 // records applied from tails
	lastErr      atomic.Value // string: most recent sync error
}

// replCursor is the follower's position in one index's streams.
type replCursor struct {
	epoch    int64
	instance uint64
	seqs     []int64
}

func newFollower(s *Server, cfg Config) *follower {
	f := &follower{
		s:       s,
		leader:  cfg.Join,
		id:      cfg.Advertise,
		client:  &cluster.Client{Base: cfg.Join},
		poll:    cfg.ReplPollInterval,
		wait:    cfg.ReplWait,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		cursors: make(map[string]*replCursor),
	}
	if f.id == "" {
		f.id = fmt.Sprintf("follower-%d", time.Now().UnixNano())
	}
	if f.poll <= 0 {
		f.poll = 25 * time.Millisecond
	}
	if f.wait <= 0 {
		f.wait = 200 * time.Millisecond
	}
	return f
}

// stalenessMS reports how many milliseconds ago the follower was last
// fully caught up (a very large number before the first catch-up).
func (f *follower) stalenessMS() int64 {
	at := f.caughtUpNano.Load()
	if at == 0 {
		return time.Now().UnixMilli() // never caught up: effectively infinite
	}
	ms := (time.Now().UnixNano() - at) / int64(time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	return ms
}

// watermark returns the follower's applied sequence vector per index.
func (f *follower) watermark() map[string][]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]int64, len(f.cursors))
	for name, c := range f.cursors {
		out[name] = append([]int64(nil), c.seqs...)
	}
	return out
}

func (f *follower) setCursor(name string, c *replCursor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cursors[name] = c
}

func (f *follower) dropCursor(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cursors, name)
}

func (f *follower) cursor(name string) *replCursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursors[name]
}

// run is the sync loop. It exits when close() fires.
func (f *follower) run() {
	defer close(f.done)
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go func() {
		<-f.stop
		cancel()
	}()
	errStreak := 0
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progressed, err := f.syncOnce(ctx)
		switch {
		case err != nil && ctx.Err() != nil:
			return
		case err != nil:
			errStreak++
			f.lastErr.Store(err.Error())
			f.s.logf("polyfit-serve: follower sync: %v", err)
			// Back off while the leader is unreachable, but stay eager
			// enough to rejoin within a restart's health-check window.
			delay := time.Duration(errStreak) * 50 * time.Millisecond
			if delay > time.Second {
				delay = time.Second
			}
			f.sleep(delay)
		case !progressed:
			errStreak = 0
			f.sleep(f.poll)
		default:
			errStreak = 0
		}
	}
}

func (f *follower) sleep(d time.Duration) {
	select {
	case <-f.stop:
	case <-time.After(d):
	}
}

func (f *follower) close() {
	close(f.stop)
	<-f.done
}

// syncOnce runs one reconcile + tail cycle. progressed reports whether
// any snapshot was fetched or record applied (the caller idles briefly
// when nothing moved — the long poll inside Tail does the real waiting).
func (f *follower) syncOnce(ctx context.Context) (progressed bool, err error) {
	st, err := f.client.Status(ctx)
	if err != nil {
		return false, fmt.Errorf("leader status: %w", err)
	}
	// Drop indexes the leader deleted.
	want := make(map[string]bool, len(st.Indexes))
	for _, ix := range st.Indexes {
		want[ix.Name] = true
	}
	f.s.mu.RLock()
	var stale []string
	for name := range f.s.indexes {
		if !want[name] {
			stale = append(stale, name)
		}
	}
	f.s.mu.RUnlock()
	for _, name := range stale {
		f.removeLocal(name)
		progressed = true
	}
	allCaughtUp := true
	for _, ix := range st.Indexes {
		cur := f.cursor(ix.Name)
		if cur == nil || cur.epoch != st.Epoch || cur.instance != ix.Instance {
			if err := f.resync(ctx, ix.Name); err != nil {
				return progressed, err
			}
			progressed = true
			cur = f.cursor(ix.Name)
		}
		if len(cur.seqs) == 0 {
			continue // static or snapshot-only: nothing to stream
		}
		applied, caughtUp, err := f.pollTail(ctx, ix.Name, cur)
		if errors.Is(err, cluster.ErrResync) {
			if err := f.resync(ctx, ix.Name); err != nil {
				return progressed, err
			}
			progressed = true
			continue
		}
		if err != nil {
			return progressed, err
		}
		if applied > 0 {
			progressed = true
		}
		if !caughtUp {
			allCaughtUp = false
		}
	}
	if allCaughtUp {
		f.caughtUpNano.Store(time.Now().UnixNano())
	}
	return progressed, nil
}

// resync (re)joins one index: fetch the leader's snapshot, restore it,
// and swap it into the local registry. The snapshot's sequence vector
// becomes the new cursor — the blob is guaranteed to contain every
// record below it, and anything at or above replays idempotently.
func (f *follower) resync(ctx context.Context, name string) error {
	snap, err := f.client.Snapshot(ctx, name)
	if err != nil {
		return fmt.Errorf("join %q: %w", name, err)
	}
	e, err := entryFromBlob(snap.Blob)
	if err != nil {
		return fmt.Errorf("join %q: restore snapshot: %w", name, err)
	}
	f.s.adminMu.Lock()
	f.s.mu.Lock()
	old := f.s.indexes[name]
	f.s.indexes[name] = e
	f.s.mu.Unlock()
	if old != nil && f.s.cache != nil {
		f.s.cache.purgeEntry(old)
	}
	f.s.adminMu.Unlock()
	f.setCursor(name, &replCursor{
		epoch:    snap.Epoch,
		instance: snap.Instance,
		seqs:     append([]int64(nil), snap.Seqs...),
	})
	f.synced.Add(1)
	f.s.logf("polyfit-serve: follower joined %q at seqs %s (instance %d)",
		name, cluster.FormatSeqs(snap.Seqs), snap.Instance)
	return nil
}

// removeLocal drops a replicated index the leader no longer serves.
func (f *follower) removeLocal(name string) {
	f.s.adminMu.Lock()
	f.s.mu.Lock()
	e, ok := f.s.indexes[name]
	delete(f.s.indexes, name)
	f.s.mu.Unlock()
	if ok && f.s.cache != nil {
		f.s.cache.purgeEntry(e)
	}
	f.s.adminMu.Unlock()
	f.dropCursor(name)
}

// pollTail long-polls one index's WAL tails and applies what arrives, in
// stream order. Returns how many records were applied and whether every
// stream reached the leader's end.
func (f *follower) pollTail(ctx context.Context, name string, cur *replCursor) (applied int64, caughtUp bool, err error) {
	tail, err := f.client.Tail(ctx, name, f.id, cur.epoch, cur.instance, cur.seqs, f.wait)
	if err != nil {
		return 0, false, err
	}
	f.s.mu.RLock()
	e := f.s.indexes[name]
	f.s.mu.RUnlock()
	if e == nil || e.ins == nil {
		// The local entry vanished mid-poll (leader dropped it and the
		// next status cycle will reconcile); nothing to apply onto.
		return 0, true, nil
	}
	next := append([]int64(nil), cur.seqs...)
	for _, frame := range tail.Frames {
		if frame.Log >= len(next) || frame.From != next[frame.Log] {
			return applied, false, fmt.Errorf("%w: frame for %q stream %d starts at %d, cursor at %v",
				cluster.ErrResync, name, frame.Log, frame.From, cur.seqs)
		}
		for _, rec := range frame.Records {
			if insErr := e.ins.Insert(rec.Key, rec.Measure); insErr != nil {
				if errors.Is(insErr, polyfit.ErrDuplicateKey) {
					continue // snapshot already covered it
				}
				// Anything else forks the replica from the leader; rejoin
				// from a fresh snapshot instead of serving diverged state.
				return applied, false, fmt.Errorf("%w: apply %q key %g: %v", cluster.ErrResync, name, rec.Key, insErr)
			}
		}
		applied += int64(len(frame.Records))
		next[frame.Log] += int64(len(frame.Records))
	}
	caughtUp = true
	for _, frame := range tail.Frames {
		if next[frame.Log] < frame.End {
			caughtUp = false
		}
	}
	f.setCursor(name, &replCursor{epoch: cur.epoch, instance: cur.instance, seqs: next})
	f.applied.Add(applied)
	return applied, caughtUp, nil
}
