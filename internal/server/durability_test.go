package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"repro/internal/data"
)

// newDurable builds a durable server over dir with the background
// snapshotter disabled, so tests control exactly when snapshots happen.
func newDurable(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := NewDurable(Config{DataDir: dir, SnapshotInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPost(t *testing.T, ts *httptest.Server, path string, body any, out any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", path, resp.StatusCode, payload)
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, payload, err)
		}
	}
}

// exactCountAt asks the relative-error path for the count of the width-0.5
// window ending at key k; tiny counts always fail the Lemma 3 gate, so the
// answer comes from the exact fallback and equals the true count.
func exactCountAt(t *testing.T, ts *httptest.Server, name string, k float64) float64 {
	t.Helper()
	var q QueryResponse
	mustPost(t, ts, "/v1/indexes/"+name+"/query",
		QueryRequest{Lo: k - 0.5, Hi: k, EpsRel: 0.01}, &q)
	if !q.Exact {
		t.Fatalf("probe at %g did not use the exact fallback", k)
	}
	return q.Value
}

func TestDurableServerRecoversAfterCrash(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(3000, 7)

	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	var created StatsResponse
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "tweets", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, &created)
	if !created.Durable || created.Snapshots != 1 {
		t.Fatalf("create not persisted: %+v", created)
	}
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "static", Agg: "count", Keys: keys[:500], EpsAbs: 50,
	}, nil)

	// Acknowledged inserts at fresh out-of-band keys.
	inserted := make([]float64, 0, 40)
	var recs []Record
	for i := 0; i < 40; i++ {
		k := 1e7 + 3*float64(i)
		recs = append(recs, Record{Key: k, Measure: 1})
		inserted = append(inserted, k)
	}
	var ir InsertResponse
	mustPost(t, ts1, "/v1/indexes/tweets/insert", InsertRequest{Records: recs}, &ir)
	if ir.Inserted != len(recs) || !ir.Durable {
		t.Fatalf("insert response %+v", ir)
	}
	ts1.Close()
	// No s1.Close(): the process "crashed". Durability must not depend on
	// a graceful shutdown.

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()

	rec := s2.Recovery()
	if rec.Indexes != 2 || rec.Dynamic != 1 || rec.Static != 1 {
		t.Fatalf("recovery summary %+v", rec)
	}
	if rec.ReplayedInserts != int64(len(recs)) {
		t.Fatalf("replayed %d inserts, want %d", rec.ReplayedInserts, len(recs))
	}
	resp, err := ts2.Client().Get(ts2.URL + "/v1/indexes/tweets")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck
	resp.Body.Close()
	if st.Records != len(keys)+len(recs) {
		t.Fatalf("recovered %d records, want %d", st.Records, len(keys)+len(recs))
	}
	if st.ReplayedInserts != int64(len(recs)) {
		t.Fatalf("per-index replayed %d, want %d", st.ReplayedInserts, len(recs))
	}
	// Every acknowledged insert answers.
	for _, k := range inserted {
		if got := exactCountAt(t, ts2, "tweets", k); got != 1 {
			t.Fatalf("acknowledged insert %g lost: exact count %g", k, got)
		}
	}
	// The static index recovered too.
	var q QueryResponse
	mustPost(t, ts2, "/v1/indexes/static/query", QueryRequest{Lo: -90, Hi: 90}, &q)
	if !q.Found || q.Value <= 0 {
		t.Fatalf("static index lost: %+v", q)
	}
	// Global durability counters.
	sresp, _ := ts2.Client().Get(ts2.URL + "/v1/stats")
	var gs ServerStats
	json.NewDecoder(sresp.Body).Decode(&gs) //nolint:errcheck
	sresp.Body.Close()
	if !gs.Durable || gs.RecoveredIndexes != 2 || gs.ReplayedInserts != int64(len(recs)) {
		t.Fatalf("server stats %+v", gs)
	}
}

func TestDurableSnapshotTruncatesWALAndSurvives(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(2000, 9)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "ix", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, nil)
	preSnap := []Record{{Key: 2e7, Measure: 1}, {Key: 2e7 + 1, Measure: 1}}
	mustPost(t, ts1, "/v1/indexes/ix/insert", InsertRequest{Records: preSnap}, nil)
	if err := s1.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	postSnap := []Record{{Key: 3e7, Measure: 1}}
	mustPost(t, ts1, "/v1/indexes/ix/insert", InsertRequest{Records: postSnap}, nil)

	resp, _ := ts1.Client().Get(ts1.URL + "/v1/indexes/ix")
	var st StatsResponse
	json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck
	resp.Body.Close()
	if st.WALRecords != 1 {
		t.Fatalf("WAL holds %d records after snapshot, want 1 (prefix truncated)", st.WALRecords)
	}
	if st.Snapshots < 2 {
		t.Fatalf("snapshots %d, want >= 2", st.Snapshots)
	}
	ts1.Close() // crash

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()
	for _, r := range append(preSnap, postSnap...) {
		if got := exactCountAt(t, ts2, "ix", r.Key); got != 1 {
			t.Fatalf("insert %g lost across snapshot+WAL recovery", r.Key)
		}
	}
	if rec := s2.Recovery(); rec.ReplayedInserts != 1 {
		t.Fatalf("replayed %d, want 1 (snapshot covers the rest)", rec.ReplayedInserts)
	}
}

// TestDurableRebuildSnapshotsSynchronously: a forced merge-rebuild leaves a
// fresh snapshot and an empty WAL behind.
func TestDurableRebuildSnapshotsSynchronously(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(1500, 10)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "ix", Agg: "sum", Dynamic: true, Keys: keys,
		Measures: make([]float64, len(keys)), EpsAbs: 100,
	}, nil)
	mustPost(t, ts1, "/v1/indexes/ix/insert", InsertRequest{
		Records: []Record{{Key: 5e7, Measure: 9}},
	}, nil)
	var st StatsResponse
	mustPost(t, ts1, "/v1/indexes/ix/rebuild", struct{}{}, &st)
	if st.WALRecords != 0 || st.BufferLen != 0 {
		t.Fatalf("rebuild left wal_records=%d buffer_len=%d", st.WALRecords, st.BufferLen)
	}
	ts1.Close() // crash

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()
	var q QueryResponse
	mustPost(t, ts2, "/v1/indexes/ix/query", QueryRequest{Lo: 5e7 - 0.5, Hi: 5e7, EpsRel: 0.01}, &q)
	if q.Value != 9 {
		t.Fatalf("merged insert lost: %+v", q)
	}
}

func TestDurableServerSkipsCorruptFilesWithoutCrashing(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(1200, 11)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	for _, name := range []string{"good", "bad"} {
		mustPost(t, ts1, "/v1/indexes", CreateRequest{
			Name: name, Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
		}, nil)
	}
	ts1.Close()

	// Flip a payload byte in "bad"'s snapshot.
	path := s1.store.SnapshotPath("bad")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newDurable(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Indexes != 1 || rec.CorruptSkipped != 1 {
		t.Fatalf("recovery %+v, want 1 recovered + 1 skipped", rec)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var q QueryResponse
	mustPost(t, ts2, "/v1/indexes/good/query", QueryRequest{Lo: -90, Hi: 90}, &q)
	if !q.Found {
		t.Fatal("healthy index did not survive its corrupt sibling")
	}
	if resp, _ := ts2.Client().Get(ts2.URL + "/v1/indexes/bad"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt index served with status %d", resp.StatusCode)
	}
}

func TestDurableServerCorruptWALRecoversToSnapshot(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(1200, 12)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "ix", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, nil)
	mustPost(t, ts1, "/v1/indexes/ix/insert", InsertRequest{
		Records: []Record{{Key: 1e7, Measure: 1}},
	}, nil)
	ts1.Close()

	// Destroy the WAL header: the log becomes unreadable, the snapshot wins.
	walPath := s1.store.WALPath("ix")
	raw, _ := os.ReadFile(walPath)
	raw[0] ^= 0xFF
	os.WriteFile(walPath, raw, 0o644) //nolint:errcheck

	s2 := newDurable(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Indexes != 1 {
		t.Fatalf("recovery %+v, want the snapshot-backed index", rec)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var q QueryResponse
	mustPost(t, ts2, "/v1/indexes/ix/query", QueryRequest{Lo: -90, Hi: 90}, &q)
	if !q.Found || q.Value <= 0 {
		t.Fatalf("index lost with its WAL: %+v", q)
	}
	if _, err := os.Stat(walPath + ".corrupt"); err != nil {
		t.Errorf("damaged WAL not set aside: %v", err)
	}
}

func TestRestoreEndpointRoundTripsDynamicState(t *testing.T) {
	keys := data.GenTweet(1500, 13)
	src := New()
	tsSrc := httptest.NewServer(src)
	defer tsSrc.Close()
	mustPost(t, tsSrc, "/v1/indexes", CreateRequest{
		Name: "orig", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, nil)
	mustPost(t, tsSrc, "/v1/indexes/orig/insert", InsertRequest{
		Records: []Record{{Key: 4e7, Measure: 1}, {Key: 4e7 + 2, Measure: 1}},
	}, nil)
	resp, err := tsSrc.Client().Get(tsSrc.URL + "/v1/indexes/orig/marshal")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	dst := newDurable(t, t.TempDir())
	defer dst.Close()
	tsDst := httptest.NewServer(dst)
	defer tsDst.Close()
	var st StatsResponse
	mustPost(t, tsDst, "/v1/indexes/copy/restore",
		RestoreRequest{Blob: base64.StdEncoding.EncodeToString(blob)}, &st)
	if !st.Dynamic || st.Records != len(keys)+2 || st.BufferLen != 2 {
		t.Fatalf("restored stats %+v", st)
	}
	// The restored copy is live: it accepts inserts and serves QueryRel.
	var ir InsertResponse
	mustPost(t, tsDst, "/v1/indexes/copy/insert", InsertRequest{
		Records: []Record{{Key: 5e7, Measure: 1}},
	}, &ir)
	if ir.Inserted != 1 {
		t.Fatalf("restored index rejected an insert: %+v", ir)
	}
	if got := exactCountAt(t, tsDst, "copy", 4e7); got != 1 {
		t.Fatalf("buffered insert lost in restore: %g", got)
	}
	// Restore over an existing name replaces it.
	mustPost(t, tsDst, "/v1/indexes/copy/restore",
		RestoreRequest{Blob: base64.StdEncoding.EncodeToString(blob)}, &st)
	if st.Records != len(keys)+2 {
		t.Fatalf("replace-restore stats %+v", st)
	}
	// Garbage blobs are rejected cleanly.
	raw, _ := json.Marshal(RestoreRequest{Blob: base64.StdEncoding.EncodeToString([]byte("nope"))})
	bad, err := tsDst.Client().Post(tsDst.URL+"/v1/indexes/junk/restore", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d", bad.StatusCode)
	}
}

// TestDurableRestoreUnderConcurrentLoad is the -race crash-consistency
// test: concurrent inserters, queriers, and snapshotters hammer a durable
// server; the "process" then dies without cleanup and a fresh server
// recovers the directory. Every acknowledged insert must be answered.
func TestDurableRestoreUnderConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(4000, 15)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "hot", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, nil)

	const (
		inserters   = 4
		perInserter = 60
	)
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked []float64
	)
	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // concurrent snapshot+truncate cycles race the inserts
		defer close(snapDone)
		for {
			select {
			case <-stopSnap:
				return
			default:
				if err := s1.SnapshotAll(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perInserter; i++ {
				k := 1e7 + float64(g)*1e5 + float64(i)
				raw, _ := json.Marshal(InsertRequest{Records: []Record{{Key: k, Measure: 1}}})
				resp, err := ts1.Client().Post(ts1.URL+"/v1/indexes/hot/insert",
					"application/json", bytes.NewReader(raw))
				if err != nil {
					t.Error(err)
					return
				}
				var ir InsertResponse
				json.NewDecoder(resp.Body).Decode(&ir) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && ir.Inserted == 1 {
					ackMu.Lock()
					acked = append(acked, k)
					ackMu.Unlock()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // background read load
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			lo := rng.Float64()*180 - 90
			raw, _ := json.Marshal(QueryRequest{Lo: lo, Hi: lo + 30})
			resp, err := ts1.Client().Post(ts1.URL+"/v1/indexes/hot/query",
				"application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	wg.Wait()
	// Stop the snapshot loop and wait out the cycle in flight.
	close(stopSnap)
	<-snapDone
	ts1.Close() // crash: no s1.Close()

	s2 := newDurable(t, dir)
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if len(acked) != inserters*perInserter {
		t.Fatalf("only %d/%d inserts acknowledged", len(acked), inserters*perInserter)
	}
	lost := 0
	for _, k := range acked {
		if got := exactCountAt(t, ts2, "hot", k); got != 1 {
			lost++
			if lost < 5 {
				t.Errorf("acknowledged insert %g lost (exact count %g)", k, got)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d acknowledged inserts lost after crash recovery", lost, len(acked))
	}
	var st StatsResponse
	resp, _ := ts2.Client().Get(ts2.URL + "/v1/indexes/hot")
	json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck
	resp.Body.Close()
	if st.Records != len(keys)+len(acked) {
		t.Fatalf("recovered %d records, want %d", st.Records, len(keys)+len(acked))
	}
}

func TestCreateFromDynamicBlob(t *testing.T) {
	keys := data.GenTweet(1000, 17)
	src := New()
	tsSrc := httptest.NewServer(src)
	defer tsSrc.Close()
	mustPost(t, tsSrc, "/v1/indexes", CreateRequest{
		Name: "a", Agg: "max", Dynamic: true, Keys: keys,
		Measures: seqMeasures(len(keys)), EpsAbs: 100,
	}, nil)
	mustPost(t, tsSrc, "/v1/indexes/a/insert", InsertRequest{
		Records: []Record{{Key: 1e7, Measure: 123456}},
	}, nil)
	resp, _ := tsSrc.Client().Get(tsSrc.URL + "/v1/indexes/a/marshal")
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var st StatsResponse
	mustPost(t, tsSrc, "/v1/indexes", CreateRequest{
		Name: "b", Dynamic: true, Blob: base64.StdEncoding.EncodeToString(blob),
	}, &st)
	if !st.Dynamic || st.Records != len(keys)+1 || st.BufferLen != 1 {
		t.Fatalf("blob-created dynamic index %+v", st)
	}
	var q QueryResponse
	mustPost(t, tsSrc, "/v1/indexes/b/query", QueryRequest{Lo: 1e7 - 1, Hi: 1e7 + 1}, &q)
	if !q.Found || q.Value != 123456 {
		t.Fatalf("blob-created index lost the buffered max: %+v", q)
	}
}

func seqMeasures(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i % 1000)
	}
	return out
}
