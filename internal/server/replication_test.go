package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
)

// newFollowerServer starts an in-memory follower replicating from leader.
func newFollowerServer(t *testing.T, leaderURL string) (*Server, *httptest.Server) {
	t.Helper()
	f, err := NewDurable(Config{
		Join:             leaderURL,
		ReplPollInterval: 2 * time.Millisecond,
		ReplWait:         50 * time.Millisecond,
		SnapshotInterval: -1,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f)
	t.Cleanup(func() { ts.Close(); f.Close() })
	return f, ts
}

func leaderStatus(t *testing.T, url string) *cluster.NodeStatus {
	t.Helper()
	resp, err := http.Get(url + cluster.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func serverStats(t *testing.T, url string) *ServerStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// caughtUp reports whether the follower's applied watermark matches the
// leader's end sequences for every index.
func caughtUp(t *testing.T, leaderURL string, f *Server) bool {
	t.Helper()
	st := leaderStatus(t, leaderURL)
	if f.follower == nil {
		t.Fatal("server is not a follower")
	}
	wm := f.follower.watermark()
	for _, ix := range st.Indexes {
		seqs, ok := wm[ix.Name]
		if !ok || len(seqs) != len(ix.Seqs) {
			return false
		}
		for i := range seqs {
			if seqs[i] < ix.Seqs[i] {
				return false
			}
		}
	}
	return true
}

// rawQuery posts a query and returns the raw response bytes — the unit of
// the bitwise-identity assertion.
func rawQuery(t *testing.T, url, name string, body string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/indexes/"+name+"/query", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %s on %s: %d %s", body, url, resp.StatusCode, payload)
	}
	return payload
}

func TestFollowerJoinsFromEmptyAndMirrors(t *testing.T) {
	dir := t.TempDir()
	leader := newDurable(t, dir)
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()

	keys := data.GenTweet(2000, 3)
	mustPost(t, lts, "/v1/indexes", CreateRequest{
		Name: "dyn", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 100,
	}, nil)
	mustPost(t, lts, "/v1/indexes", CreateRequest{
		Name: "static", Agg: "count", Keys: keys[:500], EpsAbs: 50,
	}, nil)

	fsrv, fts := newFollowerServer(t, lts.URL)
	waitFor(t, "follower catch-up", func() bool { return caughtUp(t, lts.URL, fsrv) })

	// Both indexes answer identically on leader and follower.
	for _, q := range []string{`{"lo":0,"hi":1e12}`, `{"lo":1000,"hi":50000}`} {
		for _, name := range []string{"dyn", "static"} {
			if l, f := rawQuery(t, lts.URL, name, q), rawQuery(t, fts.URL, name, q); !bytes.Equal(l, f) {
				t.Fatalf("%s %s: leader %s, follower %s", name, q, l, f)
			}
		}
	}

	// New inserts stream across.
	var recs []Record
	for i := 0; i < 200; i++ {
		recs = append(recs, Record{Key: 1e9 + float64(i), Measure: 1})
	}
	mustPost(t, lts, "/v1/indexes/dyn/insert", InsertRequest{Records: recs}, nil)
	waitFor(t, "streamed inserts", func() bool { return caughtUp(t, lts.URL, fsrv) })
	q := `{"lo":999999999,"hi":1000001000}`
	if l, f := rawQuery(t, lts.URL, "dyn", q), rawQuery(t, fts.URL, "dyn", q); !bytes.Equal(l, f) {
		t.Fatalf("streamed range: leader %s, follower %s", l, f)
	}

	// Follower stats report its role; leader stats report the follower's
	// acknowledged watermark.
	fst := serverStats(t, fts.URL)
	if fst.Role != "follower" || fst.Leader != lts.URL {
		t.Fatalf("follower stats: %+v", fst)
	}
	if fst.SnapshotSyncs < 1 || fst.ReplApplied < 200 {
		t.Fatalf("follower sync counters: syncs=%d applied=%d", fst.SnapshotSyncs, fst.ReplApplied)
	}
	waitFor(t, "leader sees follower ack", func() bool {
		lst := serverStats(t, lts.URL)
		if lst.Role != "leader" || len(lst.Followers) != 1 {
			return false
		}
		wm := lst.Followers[0].AckWatermark["dyn"]
		return len(wm) == 1 && wm[0] >= 200 && lst.Followers[0].WithinTTL
	})
}

func TestFollowerRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	leader := newDurable(t, dir)
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()
	mustPost(t, lts, "/v1/indexes", CreateRequest{
		Name: "dyn", Agg: "count", Dynamic: true, Keys: data.GenTweet(500, 5), EpsAbs: 50,
	}, nil)

	fsrv, fts := newFollowerServer(t, lts.URL)
	waitFor(t, "follower catch-up", func() bool { return caughtUp(t, lts.URL, fsrv) })

	for _, tc := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/indexes", `{"name":"x","agg":"count","keys":[1,2,3],"eps_abs":10}`},
		{http.MethodPost, "/v1/indexes/dyn/insert", `{"records":[{"key":9,"measure":1}]}`},
		{http.MethodPost, "/v1/indexes/dyn/rebuild", `{}`},
		{http.MethodDelete, "/v1/indexes/dyn", ""},
	} {
		req, err := http.NewRequest(tc.method, fts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s %s on follower: %d, want 409", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Polyfit-Leader"); got != lts.URL {
			t.Fatalf("%s %s: leader hint %q, want %q", tc.method, tc.path, got, lts.URL)
		}
	}
}

func TestFollowerJoinsMidStream(t *testing.T) {
	dir := t.TempDir()
	leader := newDurable(t, dir)
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()

	// Sharded dynamic: replication must track one stream per shard WAL.
	mustPost(t, lts, "/v1/indexes", CreateRequest{
		Name: "shards", Agg: "sum", Dynamic: true, Shards: 4,
		Keys: seqKeys(2000), Measures: onesN(2000), EpsAbs: 200,
	}, nil)

	insertChunk := func(base, n int) {
		var recs []Record
		for i := 0; i < n; i++ {
			recs = append(recs, Record{Key: 1e7 + float64(base+i), Measure: 2})
		}
		mustPost(t, lts, "/v1/indexes/shards/insert", InsertRequest{Records: recs}, nil)
	}
	insertChunk(0, 300)

	fsrv, fts := newFollowerServer(t, lts.URL)
	for c := 0; c < 5; c++ {
		insertChunk(300+c*100, 100)
	}
	waitFor(t, "mid-stream catch-up", func() bool { return caughtUp(t, lts.URL, fsrv) })

	for _, q := range []string{`{"lo":0,"hi":1e9}`, `{"lo":1e7,"hi":2e7}`} {
		if l, f := rawQuery(t, lts.URL, "shards", q), rawQuery(t, fts.URL, "shards", q); !bytes.Equal(l, f) {
			t.Fatalf("%s: leader %s, follower %s", q, l, f)
		}
	}
}

func seqKeys(n int) []float64 {
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 3
	}
	return keys
}

func onesN(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = 1
	}
	return m
}

func TestFollowerSurvivesLeaderRestartMidStream(t *testing.T) {
	dir := t.TempDir()
	l1 := newDurable(t, dir)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	leaderURL := "http://" + addr
	hs1 := &http.Server{Handler: l1}
	go hs1.Serve(ln)

	post := func(path string, body any) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(leaderURL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, payload)
		}
	}
	post("/v1/indexes", CreateRequest{
		Name: "dyn", Agg: "count", Dynamic: true, Keys: seqKeys(1000), EpsAbs: 100,
	})
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{Key: 1e8 + float64(i), Measure: 1})
	}
	post("/v1/indexes/dyn/insert", InsertRequest{Records: recs})

	fsrv, fts := newFollowerServer(t, leaderURL)
	waitFor(t, "first catch-up", func() bool { return caughtUp(t, leaderURL, fsrv) })

	// Kill the leader process (no graceful Server.Close — the WAL must
	// carry the state) and restart it on the same address.
	hs1.Close()
	l2 := newDurable(t, dir)
	defer l2.Close()
	var ln2 net.Listener
	waitFor(t, "rebind leader address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	hs2 := &http.Server{Handler: l2}
	go hs2.Serve(ln2)
	defer hs2.Close()

	// The new epoch forces the follower to resync, then stream again. The
	// client's pooled keep-alive connections died with the old listener,
	// so drop them and retry until the reborn leader accepts.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	var recs2 []Record
	for i := 0; i < 80; i++ {
		recs2 = append(recs2, Record{Key: 2e8 + float64(i), Measure: 1})
	}
	waitFor(t, "reborn leader accepts inserts", func() bool {
		raw, _ := json.Marshal(InsertRequest{Records: recs2})
		resp, err := http.Post(leaderURL+"/v1/indexes/dyn/insert", "application/json", bytes.NewReader(raw))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode < 300
	})
	waitFor(t, "post-restart catch-up", func() bool { return caughtUp(t, leaderURL, fsrv) })

	for _, q := range []string{`{"lo":0,"hi":1e9}`, `{"lo":99999999,"hi":200000100}`} {
		if l, f := rawQuery(t, leaderURL, "dyn", q), rawQuery(t, fts.URL, "dyn", q); !bytes.Equal(l, f) {
			t.Fatalf("%s: leader %s, follower %s", q, l, f)
		}
	}
}

// TestFollowerBitwiseIdenticalUnderStream drives a single-writer insert
// stream (the determinism contract requires one writer: concurrent
// inserts may reorder WAL append vs memory apply around a merge-rebuild
// trigger) with queries racing it on both nodes, then quiesces and
// asserts the follower's answers are byte-identical to the leader's.
func TestFollowerBitwiseIdenticalUnderStream(t *testing.T) {
	dir := t.TempDir()
	leader := newDurable(t, dir)
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()

	mustPost(t, lts, "/v1/indexes", CreateRequest{
		Name: "dyn", Agg: "sum", Dynamic: true,
		Keys: seqKeys(1500), Measures: onesN(1500), EpsAbs: 150,
	}, nil)
	fsrv, fts := newFollowerServer(t, lts.URL)
	waitFor(t, "initial join", func() bool { return caughtUp(t, lts.URL, fsrv) })

	stop := make(chan struct{})
	queryDone := make(chan struct{})
	go func() { // concurrent reads on both nodes while the stream runs
		defer close(queryDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Best-effort load: answers mid-stream legitimately differ
			// between the nodes; only the quiesced comparison below asserts.
			for _, url := range []string{lts.URL, fts.URL} {
				resp, err := http.Post(url+"/v1/indexes/dyn/query", "application/json",
					bytes.NewReader([]byte(`{"lo":0,"hi":1e12}`)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	// One writer, chunked inserts: enough volume to cross several
	// merge-rebuild thresholds on both sides.
	for chunk := 0; chunk < 20; chunk++ {
		var recs []Record
		for i := 0; i < 100; i++ {
			recs = append(recs, Record{Key: 1e9 + float64(chunk*100+i), Measure: 3})
		}
		mustPost(t, lts, "/v1/indexes/dyn/insert", InsertRequest{Records: recs}, nil)
	}
	close(stop)
	<-queryDone

	waitFor(t, "quiesce", func() bool { return caughtUp(t, lts.URL, fsrv) })
	for _, q := range []string{
		`{"lo":0,"hi":1e12}`,
		`{"lo":1e9,"hi":1000001000}`,
		`{"lo":500,"hi":3000}`,
		`{"lo":100,"hi":200000,"eps_rel":0.05}`,
	} {
		if l, f := rawQuery(t, lts.URL, "dyn", q), rawQuery(t, fts.URL, "dyn", q); !bytes.Equal(l, f) {
			t.Fatalf("%s: leader %s != follower %s", q, l, f)
		}
	}
}

// TestTruncationGatedOnSlowFollower proves the leader holds WAL truncation
// back to the slowest live follower's acknowledged sequence.
func TestTruncationGatedOnSlowFollower(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, dir)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	mustPost(t, ts, "/v1/indexes", CreateRequest{
		Name: "dyn", Agg: "count", Dynamic: true, Keys: seqKeys(200), EpsAbs: 50,
	}, nil)
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{Key: 1e6 + float64(i), Measure: 1})
	}
	mustPost(t, ts, "/v1/indexes/dyn/insert", InsertRequest{Records: recs}, nil)

	s.mu.RLock()
	e := s.indexes["dyn"]
	s.mu.RUnlock()
	if e == nil || e.wal == nil {
		t.Fatal("no WAL entry")
	}
	instance, _ := s.replCoords(e)

	// A follower acknowledged only sequence 10: a snapshot must keep the
	// log from there on.
	s.acks.record("lagger", "dyn", instance, []int64{10})
	if err := s.snapshotEntry("dyn", e); err != nil {
		t.Fatal(err)
	}
	if got := e.wal.Records(); got != 40 {
		t.Fatalf("WAL holds %d records after gated snapshot, want 40 (50 minus ack 10)", got)
	}

	// The follower catches up; the next snapshot may drop everything.
	s.acks.record("lagger", "dyn", instance, []int64{50})
	if err := s.snapshotEntry("dyn", e); err != nil {
		t.Fatal(err)
	}
	if got := e.wal.Records(); got != 0 {
		t.Fatalf("WAL holds %d records after acked snapshot, want 0", got)
	}

	// Replication coordinates still advance past the truncated prefix.
	if _, seqs := s.replCoords(e); len(seqs) != 1 || seqs[0] != 50 {
		t.Fatalf("end seqs %v, want [50]", seqs)
	}
}
