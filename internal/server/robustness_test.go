package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/persist"
)

// overloadServer builds an in-memory server with a tiny admission budget
// and a small COUNT index, for tests that saturate the query path.
func overloadServer(t *testing.T, maxConc, maxQueue int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewDurable(Config{MaxConcurrentQueries: maxConc, MaxQueuedQueries: maxQueue})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, 512)
	for i := range keys {
		keys[i] = float64(i)
	}
	if _, err := s.Create(CreateRequest{Name: "ix", Agg: "count", EpsAbs: 64, Keys: keys}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// holdQueries installs a test hook that blocks every query leader until
// release is closed, handshaking each arrival on entered.
func holdQueries(t *testing.T) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	testHookQueryDelay = func() {
		entered <- struct{}{}
		<-release
	}
	t.Cleanup(func() { testHookQueryDelay = nil })
	return entered, release
}

func TestOverloadShedsFastWith429(t *testing.T) {
	s, ts := overloadServer(t, 1, 1)
	entered, release := holdQueries(t)

	// Distinct ranges so the three queries never coalesce: one executing
	// (held in the hook), one queued, and the third must be shed.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: float64(i), Hi: 400}, nil)
			codes[i] = resp.StatusCode
		}(i)
	}
	<-entered // the executing leader holds the only slot
	waitFor(t, "one queued query", func() bool { return s.adm.queued.Load() == 1 })

	start := time.Now()
	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 2, Hi: 400}, nil)
	shedLatency := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	// The shed decision is non-blocking; 10ms is the ISSUE budget and is
	// generous even for a loopback round trip.
	if shedLatency > 10*time.Millisecond {
		t.Errorf("shed took %v, want < 10ms", shedLatency)
	}
	if got := s.adm.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("held query %d: got %d, want 200 after release", i, code)
		}
	}
}

func TestIdenticalQueriesCoalesce(t *testing.T) {
	s, ts := overloadServer(t, 8, 8)
	entered, release := holdQueries(t)

	const followers = 7
	bodies := make([][]byte, followers+1)
	codes := make([]int, followers+1)
	var wg sync.WaitGroup
	rawQuery := func(i int) {
		defer wg.Done()
		resp, err := ts.Client().Post(ts.URL+"/v1/indexes/ix/query", "application/json",
			strings.NewReader(`{"lo": 10, "hi": 300}`))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		bodies[i], _ = io.ReadAll(resp.Body)
		codes[i] = resp.StatusCode
	}
	wg.Add(1)
	go rawQuery(0)
	<-entered // the leader is executing; everyone after it must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go rawQuery(i)
	}
	waitFor(t, "followers waiting on the leader", func() bool {
		return s.coalesceWait.Load() == followers
	})
	if got := s.adm.queued.Load(); got != 0 {
		t.Errorf("followers consumed admission queue slots: queued = %d, want 0", got)
	}
	close(release)
	wg.Wait()

	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("query %d: status %d, want 200", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("coalesced bodies differ: %q vs %q", bodies[i], bodies[0])
		}
	}
	if got := s.coalesced.Load(); got != followers {
		t.Errorf("coalesced counter = %d, want %d", got, followers)
	}
	if got := s.coalesceWait.Load(); got != 0 {
		t.Errorf("coalesce_waiting gauge = %d after completion, want 0", got)
	}
}

func TestQueryDeadlineAnswers504(t *testing.T) {
	s, ts := overloadServer(t, 4, 4)
	testHookQueryDelay = func() { time.Sleep(80 * time.Millisecond) }
	t.Cleanup(func() { testHookQueryDelay = nil })

	var e errorResponse
	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 100, TimeoutMS: 20}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired query: got %d (%s), want 504", resp.StatusCode, e.Error)
	}
	if got := s.timedOut.Load(); got != 1 {
		t.Errorf("timed_out counter = %d, want 1", got)
	}
	// Batch requests honor the same deadline.
	resp = post(t, ts, "/v1/indexes/ix/batch", BatchRequest{
		Ranges: []RangeJSON{{Lo: 0, Hi: 100}}, TimeoutMS: 20,
	}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired batch: got %d (%s), want 504", resp.StatusCode, e.Error)
	}
}

func TestPanicRecoveredTo500(t *testing.T) {
	s, ts := overloadServer(t, 4, 4)
	testHookQueryDelay = func() { panic("injected handler panic") }
	var e errorResponse
	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 100}, &e)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: got %d, want 500", resp.StatusCode)
	}
	if e.Error == "" {
		t.Error("500 body is not the structured error response")
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	// The server keeps serving after the panic.
	testHookQueryDelay = nil
	var q QueryResponse
	if resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 100}, &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic: got %d, want 200", resp.StatusCode)
	}
}

func TestOversizedBodyAnswers413(t *testing.T) {
	_, ts := overloadServer(t, 4, 4)
	// 2 MiB of valid JSON against the query route's 1 MiB cap.
	big := `{"lo": 0, "hi": 100, "pad": "` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/indexes/ix/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query body: got %d, want 413", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not the structured error response (err=%v, body=%q)", err, e.Error)
	}
}

func TestDrainRejectsNewAndWaitsForInFlight(t *testing.T) {
	s, ts := overloadServer(t, 4, 4)
	entered, release := holdQueries(t)

	var heldCode atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 100}, nil)
		heldCode.Store(int64(resp.StatusCode))
	}()
	<-entered

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	waitFor(t, "server draining", func() bool { return s.draining.Load() })

	resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 1, Hi: 100}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request while draining: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response is missing Retry-After")
	}

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if heldCode.Load() != http.StatusOK {
		t.Errorf("in-flight query during drain: got %d, want 200", heldCode.Load())
	}
}

func TestDrainDeadlineExpires(t *testing.T) {
	s, ts := overloadServer(t, 4, 4)
	entered, release := holdQueries(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 100}, nil)
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck request: err = %v, want DeadlineExceeded", err)
	}
	close(release)
	wg.Wait()
}

// --- WAL degradation ---------------------------------------------------------

// flakySyncFS delegates to the real filesystem but fails Sync on files
// opened through OpenFile (the WAL append path) while fail is set.
// Snapshot writes go through CreateTemp and stay healthy, which is
// exactly the "sick log, working snapshots" degradation scenario.
type flakySyncFS struct {
	persist.FS
	fail atomic.Bool
}

type flakySyncFile struct {
	persist.File
	fs *flakySyncFS
}

func (f *flakySyncFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakySyncFile{File: file, fs: f}, nil
}

func (f *flakySyncFile) Sync() error {
	if f.fs.fail.Load() {
		return errors.New("flakySyncFS: injected fsync failure")
	}
	return f.File.Sync()
}

func TestInsertDegradesThenSnapshotHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakySyncFS{FS: persist.OSFS()}
	s, err := NewDurable(Config{
		DataDir:          dir,
		SnapshotInterval: -1,
		FS:               ffs,
		Retry:            persist.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(CreateRequest{Name: "dyn", Agg: "count", EpsAbs: 64, Dynamic: true, Keys: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	insert := func(key float64) InsertResponse {
		t.Helper()
		var out InsertResponse
		resp := post(t, ts, "/v1/indexes/dyn/insert", InsertRequest{Records: []Record{{Key: key}}}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %g: status %d, want 200", key, resp.StatusCode)
		}
		if out.Inserted != 1 {
			t.Fatalf("insert %g: inserted %d (%v)", key, out.Inserted, out.Errors)
		}
		return out
	}

	if out := insert(10); !out.Durable || out.Degraded {
		t.Fatalf("healthy insert: durable=%v degraded=%v, want durable", out.Durable, out.Degraded)
	}

	// Break the log: the insert must still be acknowledged (200) but with
	// durable:false, and the index flagged degraded.
	ffs.fail.Store(true)
	if out := insert(11); out.Durable || !out.Degraded {
		t.Fatalf("degraded insert: durable=%v degraded=%v, want non-durable degraded", out.Durable, out.Degraded)
	}
	// While degraded, inserts skip the sick log entirely and keep serving.
	if out := insert(12); out.Durable || !out.Degraded {
		t.Fatalf("second degraded insert: durable=%v degraded=%v", out.Durable, out.Degraded)
	}
	var st ServerStats
	get(t, ts, "/v1/stats", &st)
	if st.DegradedIndexes != 1 || st.NonDurableInserts != 2 || st.PersistErrors == 0 {
		t.Fatalf("degraded stats = {degraded_indexes:%d non_durable:%d persist_errors:%d}, want {1, 2, >0}",
			st.DegradedIndexes, st.NonDurableInserts, st.PersistErrors)
	}
	var ixSt StatsResponse
	get(t, ts, "/v1/indexes/dyn", &ixSt)
	if !ixSt.PersistDegraded || ixSt.NonDurableInserts != 2 {
		t.Fatalf("per-index stats = {degraded:%v non_durable:%d}, want {true, 2}", ixSt.PersistDegraded, ixSt.NonDurableInserts)
	}

	// Disk heals; the next snapshot covers the unlogged records, resets
	// the WAL, and clears the degradation.
	ffs.fail.Store(false)
	if err := s.SnapshotAll(); err != nil {
		t.Fatalf("healing snapshot: %v", err)
	}
	get(t, ts, "/v1/stats", &st)
	if st.DegradedIndexes != 0 {
		t.Fatalf("degraded_indexes = %d after healing snapshot, want 0", st.DegradedIndexes)
	}
	if out := insert(13); !out.Durable || out.Degraded {
		t.Fatalf("post-heal insert: durable=%v degraded=%v, want durable", out.Durable, out.Degraded)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged insert — including the two non-durable ones the
	// snapshot covered — survives a restart.
	s2, err := NewDurable(Config{DataDir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var q QueryResponse
	post(t, ts2, "/v1/indexes/dyn/query", QueryRequest{Lo: 0, Hi: 100}, &q)
	if q.Value != 7 { // 3 built + inserts 10,11,12,13
		t.Fatalf("recovered count = %g, want 7", q.Value)
	}
}

// --- satellite coverage: corrupt restore, rebuild races, use after Close ----

func TestRestoreWithCorruptBlob(t *testing.T) {
	_, ts := overloadServer(t, 4, 4)
	// Not base64 at all.
	var e errorResponse
	resp := post(t, ts, "/v1/indexes/ix/restore", RestoreRequest{Blob: "!!not-base64!!"}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid base64: got %d, want 400", resp.StatusCode)
	}
	// Valid base64 of garbage bytes.
	resp = post(t, ts, "/v1/indexes/ix/restore", RestoreRequest{Blob: "Z2FyYmFnZSBieXRlcyBoZXJl"}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage blob: got %d, want 400", resp.StatusCode)
	}
	// The original index is untouched by the failed restores.
	var q QueryResponse
	if resp := post(t, ts, "/v1/indexes/ix/query", QueryRequest{Lo: 0, Hi: 511}, &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after failed restore: got %d, want 200", resp.StatusCode)
	}
	if diff := q.Value - 512; diff > q.Bound || -diff > q.Bound {
		t.Fatalf("count after failed restore = %g, want 512 ± %g", q.Value, q.Bound)
	}
}

func TestQueriesDuringRebuild(t *testing.T) {
	s := New()
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i)
	}
	if _, err := s.Create(CreateRequest{Name: "dyn", Agg: "count", EpsAbs: 64, Dynamic: true, Keys: keys}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var q QueryResponse
				resp := post(t, ts, "/v1/indexes/dyn/query",
					QueryRequest{Lo: float64(w * 7), Hi: float64(2048 + i%512)}, &q)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during rebuild: status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		post(t, ts, "/v1/indexes/dyn/insert", InsertRequest{Records: []Record{{Key: float64(10000 + i)}}}, nil)
		resp := post(t, ts, "/v1/indexes/dyn/rebuild", nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebuild %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
}

func TestInsertAfterCloseIsRejected(t *testing.T) {
	s, err := NewDurable(Config{DataDir: t.TempDir(), SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(CreateRequest{Name: "dyn", Agg: "count", EpsAbs: 64, Dynamic: true, Keys: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close ends the durability guarantees; the middleware turns further
	// traffic away instead of acknowledging inserts it could then lose.
	resp := post(t, ts, "/v1/indexes/dyn/insert", InsertRequest{Records: []Record{{Key: 9}}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert after Close: got %d, want 503", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
