package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	polyfit "repro"
	"repro/internal/persist"
)

// Durability wiring: the serving layer's registry can be backed by a data
// directory (internal/persist). The contract, once a data dir is
// configured:
//
//   - Create/restore writes a CRC-checked snapshot of the index before the
//     request is acknowledged.
//   - An acknowledged insert (HTTP 200 counting it in "inserted") has been
//     fsynced to the index's write-ahead log before the response was sent,
//     and therefore survives a crash — SIGKILL included.
//   - On boot the registry is recovered: every snapshot is loaded (no
//     re-fitting; dynamic blobs carry their fitted base) and the WAL is
//     replayed on top. Corrupt or truncated files are reported and skipped
//     — recovery never panics and never blocks the healthy indexes.
//   - A background snapshotter periodically folds WAL-covered inserts into
//     a fresh snapshot and drops the covered log prefix, bounding both
//     recovery time and log growth. Forced rebuilds snapshot synchronously
//     (PR 2's parallel construction keeps that cheap).
//
// WAL replay is idempotent: dynamic indexes reject duplicate keys exactly,
// so a log that overlaps its snapshot (crash between snapshot rename and
// log truncation) re-applies nothing.

// Config configures a durable server. The zero value (no DataDir) is a
// purely in-memory server identical to New().
type Config struct {
	// DataDir enables durability: snapshots and WALs live here, and the
	// registry is recovered from it on startup.
	DataDir string
	// SnapshotInterval is the background snapshotter period (default 15s).
	// Negative disables the background snapshotter (snapshots still happen
	// on create, restore, rebuild, and Close).
	SnapshotInterval time.Duration
	// Logf receives recovery and snapshotter diagnostics (default: discard).
	Logf func(format string, args ...any)

	// FS overrides the filesystem the data dir is accessed through
	// (default: the real OS filesystem). Fault-injection harnesses pass a
	// faultfs.FS here to exercise the degradation paths.
	FS persist.FS
	// Retry overrides the persistence retry policy (zero value selects
	// persist.DefaultRetry). Transient write/fsync failures are retried
	// with exponential backoff before a persistence operation is declared
	// failed and the degradation machinery engages.
	Retry persist.RetryPolicy

	// MaxConcurrentQueries bounds simultaneously executing query/batch
	// requests (default 4×GOMAXPROCS). MaxQueuedQueries bounds how many
	// more may wait for a slot (default 4× the concurrency limit); beyond
	// that, queries are shed with 429 + Retry-After. Inserts and admin
	// requests are never gated.
	MaxConcurrentQueries int
	MaxQueuedQueries     int
	// DefaultQueryTimeout is the query deadline applied when a request
	// carries no timeout_ms (default 5s; negative disables the default
	// deadline). An expired deadline abandons the query and answers 504.
	DefaultQueryTimeout time.Duration

	// CacheBytes bounds the server-side result cache (see cache.go):
	// completed point-query responses — certified bound included — are
	// kept keyed by (index, generation, range, eps_rel) and repeated
	// queries are answered without touching the index until an insert or
	// rebuild bumps the generation. 0 (the default) disables the cache;
	// the budget covers response bodies plus per-item overhead.
	CacheBytes int64

	// Join turns the server into a read replica of the leader at this
	// base URL (see follower.go): the registry is mirrored from the
	// leader's snapshots + WAL streams, reads are served locally at a
	// reported staleness, and writes are rejected with 409 + a Leader
	// hint header. Mutually exclusive with DataDir — the leader owns the
	// durable state; followers replicate in memory and re-join on
	// restart.
	Join string
	// Advertise is this node's public base URL: followers use it as
	// their ack-table identity, leaders report it in cluster status.
	Advertise string
	// ReplPollInterval is the follower's idle delay between sync cycles
	// (default 25ms); ReplWait the long-poll budget it requests per WAL
	// tail (default 200ms, capped server-side at 5s).
	ReplPollInterval time.Duration
	ReplWait         time.Duration
	// FollowerTTL bounds how long a silent follower's acknowledgement
	// keeps pinning WAL truncation on the leader (default 30s). A
	// follower that returns after expiry simply re-joins from a
	// snapshot.
	FollowerTTL time.Duration
}

// RecoverySummary reports what a durable server found in its data dir at
// boot.
type RecoverySummary struct {
	Indexes         int           // indexes restored into the registry
	Static          int           // of which static
	Dynamic         int           // of which dynamic
	ReplayedInserts int64         // WAL records applied on top of snapshots
	SkippedInserts  int64         // WAL records already covered by a snapshot
	CorruptSkipped  int           // indexes skipped due to corrupt/unreadable files
	TornWALBytes    int           // bytes dropped from torn WAL tails
	Duration        time.Duration // wall-clock recovery time
}

func (r RecoverySummary) String() string {
	return fmt.Sprintf("recovered %d indexes (%d static, %d dynamic), replayed %d WAL inserts (%d already in snapshots, %d torn bytes dropped), skipped %d corrupt, in %v",
		r.Indexes, r.Static, r.Dynamic, r.ReplayedInserts, r.SkippedInserts,
		r.TornWALBytes, r.CorruptSkipped, r.Duration.Round(time.Millisecond))
}

// NewDurable returns a Server backed by cfg.DataDir: existing indexes are
// recovered before it returns, and new work is persisted per the
// durability contract above. With an empty DataDir it behaves exactly like
// New and never returns an error.
func NewDurable(cfg Config) (*Server, error) {
	if cfg.Join != "" && cfg.DataDir != "" {
		return nil, errors.New("server: Join and DataDir are mutually exclusive — the leader owns the durable state, followers replicate in memory")
	}
	s := newServer()
	s.logf = cfg.Logf
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.epoch = time.Now().UnixNano()
	s.advertise = cfg.Advertise
	s.followerTTL = cfg.FollowerTTL
	if s.followerTTL <= 0 {
		s.followerTTL = 30 * time.Second
	}
	s.defaultTimeout = cfg.DefaultQueryTimeout
	if s.defaultTimeout == 0 {
		s.defaultTimeout = 5 * time.Second
	}
	maxConc := cfg.MaxConcurrentQueries
	if maxConc <= 0 {
		maxConc = 4 * runtime.GOMAXPROCS(0)
	}
	maxQueue := cfg.MaxQueuedQueries
	if maxQueue <= 0 {
		maxQueue = 4 * maxConc
	}
	s.adm = newAdmission(maxConc, maxQueue)
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes)
	}
	if cfg.DataDir == "" {
		if cfg.Join != "" {
			s.follower = newFollower(s, cfg)
			go s.follower.run()
		}
		return s, nil
	}
	store, err := persist.OpenFS(cfg.DataDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	if cfg.Retry != (persist.RetryPolicy{}) {
		store.SetRetryPolicy(cfg.Retry)
	}
	s.store = store
	if err := s.recover(); err != nil {
		return nil, err
	}
	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = 15 * time.Second
	}
	if interval > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.snapshotLoop(interval)
	}
	return s, nil
}

// Recovery returns the boot-time recovery summary (zero for in-memory
// servers).
func (s *Server) Recovery() RecoverySummary { return s.recovery }

// Durable reports whether the server persists to a data dir.
func (s *Server) Durable() bool { return s.store != nil }

// recover loads every index found in the data dir: snapshot first, then
// the WAL replayed on top. Damaged indexes are logged and skipped so one
// bad file never takes the whole registry down.
func (s *Server) recover() error {
	start := time.Now()
	names, err := s.store.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		e, replayed, skipped, torn, err := s.recoverIndex(name)
		if err != nil {
			s.recovery.CorruptSkipped++
			s.logf("polyfit-serve: skipping index %q: %v", name, err)
			continue
		}
		s.initRepl(e)
		s.mu.Lock()
		s.indexes[name] = e
		s.mu.Unlock()
		s.recovery.Indexes++
		if e.ins != nil {
			s.recovery.Dynamic++
		} else {
			s.recovery.Static++
		}
		s.recovery.ReplayedInserts += replayed
		s.recovery.SkippedInserts += skipped
		s.recovery.TornWALBytes += torn
	}
	s.recovery.Duration = time.Since(start)
	if len(names) > 0 {
		s.logf("polyfit-serve: %s", s.recovery)
	}
	return nil
}

func (s *Server) recoverIndex(name string) (e *entry, replayed, skipped int64, torn int, err error) {
	// A shard manifest marks the index as sharded: recover each shard's
	// snapshot+WAL pair independently and reassemble. A corrupt manifest
	// fails the whole index (the shard layout is unknowable without it).
	man, merr := s.store.ReadShardManifest(name)
	switch {
	case merr == nil:
		return s.recoverShardedIndex(name, man)
	case !errors.Is(merr, os.ErrNotExist):
		return nil, 0, 0, 0, fmt.Errorf("shard manifest: %w", merr)
	}
	blob, err := s.store.ReadSnapshot(name)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, 0, 0, fmt.Errorf("no snapshot: %w", err)
		}
		return nil, 0, 0, 0, err
	}
	e, err = entryFromBlob(blob)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("snapshot payload: %w", err)
	}
	if e.ins == nil {
		// Static indexes never log inserts; a WAL here would be a bug, not
		// data, so just report it.
		if _, statErr := s.store.FS().Stat(s.store.WALPath(name)); statErr == nil {
			s.logf("polyfit-serve: ignoring unexpected WAL for static index %q", name)
		}
		return e, 0, 0, 0, nil
	}
	wal, recs, dropped, err := s.store.OpenWAL(s.store.WALPath(name))
	if err != nil {
		if errors.Is(err, persist.ErrCorrupt) {
			// The log is unreadable; the snapshot is still consistent, so
			// recover to it, set the bad log aside, and start a fresh one.
			s.logf("polyfit-serve: WAL for %q is corrupt (%v); recovering to last snapshot", name, err)
			if err := s.store.SetAside(s.store.WALPath(name)); err != nil {
				return nil, 0, 0, 0, err
			}
			if wal, recs, dropped, err = s.store.OpenWAL(s.store.WALPath(name)); err != nil {
				return nil, 0, 0, 0, err
			}
		} else {
			return nil, 0, 0, 0, err
		}
	}
	for _, r := range recs {
		if insErr := e.ins.Insert(r.Key, r.Measure); insErr != nil {
			if errors.Is(insErr, polyfit.ErrDuplicateKey) {
				// The snapshot already covers this acknowledged insert
				// (crash raced snapshot and truncation). Idempotent skip.
				skipped++
				continue
			}
			// Any other failure would silently drop an acknowledged,
			// fsynced insert — refuse to serve the index instead.
			wal.Close() //nolint:errcheck
			return nil, 0, 0, 0, fmt.Errorf("replay insert %g: %w", r.Key, insErr)
		}
		replayed++
	}
	e.wal = wal
	e.replayed = replayed
	return e, replayed, skipped, dropped, nil
}

// recoverShardedIndex reconstitutes a sharded dynamic index: every shard's
// snapshot is loaded, the shards are reassembled around the manifest's
// routing bounds, and then each shard's WAL is replayed on top — records
// route back to their owning shard, and duplicates (a crash between a
// shard's snapshot and its log truncation) skip idempotently. Any
// unrecoverable shard fails the whole index: serving a sharded index with
// a hole in its key space would silently undercount.
func (s *Server) recoverShardedIndex(name string, man persist.ShardManifest) (e *entry, replayed, skipped int64, torn int, err error) {
	blobs := make([][]byte, man.Shards)
	for i := range blobs {
		if blobs[i], err = s.store.ReadShardSnapshot(name, i); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("shard %d snapshot: %w", i, err)
		}
	}
	sd, err := polyfit.Assemble(man.Bounds, blobs)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("assemble shards: %w", err)
	}
	ins, ok := sd.(polyfit.Inserter)
	if !ok {
		return nil, 0, 0, 0, fmt.Errorf("assemble shards: index is not insertable")
	}
	wals := make([]*persist.WAL, man.Shards)
	closeAll := func() {
		for _, w := range wals {
			if w != nil {
				w.Close() //nolint:errcheck
			}
		}
	}
	for i := range wals {
		wal, recs, dropped, werr := s.store.OpenWAL(s.store.ShardWALPath(name, i))
		if werr != nil {
			if !errors.Is(werr, persist.ErrCorrupt) {
				closeAll()
				return nil, 0, 0, 0, werr
			}
			// This shard's log is unreadable; its snapshot is still
			// consistent, so recover the shard to it, set the bad log
			// aside, and start a fresh one. The other shards' logs still
			// replay — shard recovery is independent.
			s.logf("polyfit-serve: WAL for %q shard %d is corrupt (%v); recovering shard to last snapshot", name, i, werr)
			if err := s.store.SetAside(s.store.ShardWALPath(name, i)); err != nil {
				closeAll()
				return nil, 0, 0, 0, err
			}
			if wal, recs, dropped, werr = s.store.OpenWAL(s.store.ShardWALPath(name, i)); werr != nil {
				closeAll()
				return nil, 0, 0, 0, werr
			}
		}
		wals[i] = wal
		torn += dropped
		for _, r := range recs {
			if insErr := ins.Insert(r.Key, r.Measure); insErr != nil {
				if errors.Is(insErr, polyfit.ErrDuplicateKey) {
					skipped++
					continue
				}
				closeAll()
				return nil, 0, 0, 0, fmt.Errorf("shard %d replay insert %g: %w", i, r.Key, insErr)
			}
			replayed++
		}
	}
	e = newEntry(sd)
	e.shardWALs = wals
	e.replayed = replayed
	return e, replayed, skipped, torn, nil
}

// snapshotLoop periodically persists dirty dynamic indexes (those with WAL
// records not yet folded into a snapshot).
func (s *Server) snapshotLoop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.snapshotDirty(); err != nil {
				s.logf("polyfit-serve: background snapshot: %v", err)
			}
		}
	}
}

// entryDirty reports whether the entry has acknowledged inserts not yet
// folded into a snapshot (in its WAL or any shard's WAL), or a forced
// snapshot pending.
func entryDirty(e *entry) bool {
	if e.wal == nil && len(e.shardWALs) == 0 {
		return false // static: never dirty
	}
	if e.forceSnap.Load() {
		return true
	}
	if e.wal != nil && e.wal.Records() > 0 {
		return true
	}
	for _, wal := range e.shardWALs {
		if wal != nil && wal.Records() > 0 {
			return true
		}
	}
	return false
}

func (s *Server) snapshotDirty() error {
	s.mu.RLock()
	dirty := make(map[string]*entry)
	for name, e := range s.indexes {
		if entryDirty(e) {
			dirty[name] = e
		}
	}
	s.mu.RUnlock()
	var firstErr error
	for name, e := range dirty {
		if err := s.snapshotEntry(name, e); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SnapshotAll synchronously snapshots every dirty index. No-op for
// in-memory servers.
func (s *Server) SnapshotAll() error {
	if s.store == nil {
		return nil
	}
	return s.snapshotDirty()
}

// snapshotEntry writes one index's snapshot and drops the WAL prefix it
// covers. The WAL size is read BEFORE marshalling: every record below that
// offset was applied to the in-memory index before it reached the log, so
// the snapshot (taken after) is guaranteed to contain it — records that
// race in later stay in the log and replay idempotently.
func (s *Server) snapshotEntry(name string, e *entry) error {
	if s.store == nil {
		return nil
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	// Re-check registry membership under snapMu: a concurrent DELETE or
	// restore may have retired this entry after it was collected, and
	// writing its snapshot now would resurrect the index on the next boot
	// (dropPersisted holds the same lock while removing the files).
	s.mu.RLock()
	current := s.indexes[name] == e
	s.mu.RUnlock()
	if !current {
		return nil
	}
	// Clear the force flag before reading the cut: a failure signalled
	// after this point re-sets it and the next cycle snapshots again.
	e.forceSnap.Store(false)
	// A degraded entry has acknowledged inserts that never reached the WAL
	// (the log was sick when they arrived). This snapshot covers them —
	// marshalling happens after they were applied — so on success the WAL
	// is RESET (rewritten empty, file handle reopened) rather than
	// prefix-truncated, and the degradation clears: the disk proved itself
	// writable again. While degraded, inserts skip the log, so no record
	// can race into the WAL between the cut and the reset.
	degraded := e.degraded.Load()
	persistFail := func(err error) error {
		e.forceSnap.Store(true)
		e.persistErrors.Add(1)
		s.persistErrors.Add(1)
		return err
	}
	if e.shd != nil {
		// Sharded: one snapshot + log-prefix drop per shard, each with its
		// own cut taken before its shard is marshalled — the same "applied
		// before logged, marshalled after" argument as below, per shard.
		for i := 0; i < e.shd.NumShards(); i++ {
			var cut int64
			if i < len(e.shardWALs) && e.shardWALs[i] != nil {
				cut = e.shardWALs[i].Size()
			}
			blob, err := e.shd.MarshalShard(i)
			if err != nil {
				return persistFail(fmt.Errorf("marshal %q shard %d: %w", name, i, err))
			}
			if err := s.store.WriteShardSnapshot(name, i, blob); err != nil {
				return persistFail(err)
			}
			if i < len(e.shardWALs) && e.shardWALs[i] != nil {
				if degraded {
					if err := e.shardWALs[i].Reset(); err != nil {
						return persistFail(fmt.Errorf("reset %q shard %d WAL: %w", name, i, err))
					}
				} else if err := s.truncateGated(name, e, i, e.shardWALs[i], cut); err != nil {
					return persistFail(err)
				}
			}
		}
		if degraded {
			e.degraded.Store(false)
			// The reset logs no longer carry the records this snapshot
			// absorbed; followers must re-join from it.
			s.bumpInstance(e)
			s.logf("polyfit-serve: %q healed: snapshot persisted the non-durable inserts and the WALs were reset", name)
		}
		e.snapshots.Add(1)
		e.lastSnapUnix.Store(time.Now().Unix())
		s.snapshotsWritten.Add(1)
		return nil
	}
	var cut int64
	if e.wal != nil {
		cut = e.wal.Size()
	}
	blob, err := e.ix.MarshalBinary()
	if err != nil {
		return persistFail(fmt.Errorf("marshal %q: %w", name, err))
	}
	if err := s.store.WriteSnapshot(name, blob); err != nil {
		return persistFail(err)
	}
	if e.wal != nil {
		if degraded {
			if err := e.wal.Reset(); err != nil {
				return persistFail(fmt.Errorf("reset %q WAL: %w", name, err))
			}
		} else if err := s.truncateGated(name, e, 0, e.wal, cut); err != nil {
			return persistFail(err)
		}
	}
	if degraded {
		e.degraded.Store(false)
		// The reset log no longer carries the records this snapshot
		// absorbed; followers must re-join from it.
		s.bumpInstance(e)
		s.logf("polyfit-serve: %q healed: snapshot persisted the non-durable inserts and the WAL was reset", name)
	}
	e.snapshots.Add(1)
	e.lastSnapUnix.Store(time.Now().Unix())
	s.snapshotsWritten.Add(1)
	return nil
}

// persistNew writes the initial durable state for a just-built entry:
// snapshot, and (for dynamic indexes) an empty WAL. Called with adminMu
// held, before the entry becomes visible in the registry.
func (s *Server) persistNew(name string, e *entry) error {
	if s.store == nil {
		return nil
	}
	if e.shd != nil {
		// Sharded dynamic: per-shard snapshots first, the manifest last (it
		// is the commit point recovery keys off), then one WAL per shard. A
		// crash before the manifest leaves orphan files that the next
		// create overwrites; the index was never acknowledged.
		k := e.shd.NumShards()
		for i := 0; i < k; i++ {
			blob, err := e.shd.MarshalShard(i)
			if err != nil {
				s.store.Remove(name) //nolint:errcheck
				return err
			}
			if err := s.store.WriteShardSnapshot(name, i, blob); err != nil {
				s.store.Remove(name) //nolint:errcheck
				return err
			}
		}
		if err := s.store.WriteShardManifest(name, persist.ShardManifest{Shards: k, Bounds: e.shd.Bounds()}); err != nil {
			s.store.Remove(name) //nolint:errcheck
			return err
		}
		wals := make([]*persist.WAL, k)
		for i := range wals {
			wal, err := s.openFreshWAL(s.store.ShardWALPath(name, i))
			if err != nil {
				for _, w := range wals {
					if w != nil {
						w.Close() //nolint:errcheck
					}
				}
				s.store.Remove(name) //nolint:errcheck
				return err
			}
			wals[i] = wal
		}
		e.shardWALs = wals
		e.snapshots.Add(1)
		e.lastSnapUnix.Store(time.Now().Unix())
		s.snapshotsWritten.Add(1)
		return nil
	}
	blob, err := e.ix.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.store.WriteSnapshot(name, blob); err != nil {
		return err
	}
	if e.ins != nil {
		wal, err := s.openFreshWAL(s.store.WALPath(name))
		if err != nil {
			s.store.Remove(name) //nolint:errcheck
			return err
		}
		e.wal = wal
	}
	e.snapshots.Add(1)
	e.lastSnapUnix.Store(time.Now().Unix())
	s.snapshotsWritten.Add(1)
	return nil
}

// openFreshWAL opens a WAL for a brand-new (created or restored) index and
// purges any records already sitting in the file: they belong to an
// earlier same-named index (e.g. one whose recovery was skipped as corrupt
// and whose name was then reused) and replaying them into the new index on
// the next boot would insert records it never acknowledged.
func (s *Server) openFreshWAL(path string) (*persist.WAL, error) {
	wal, stale, _, err := s.store.OpenWAL(path)
	if err != nil {
		return nil, err
	}
	if len(stale) > 0 {
		if err := wal.TruncateTo(wal.Size()); err != nil {
			wal.Close() //nolint:errcheck
			return nil, err
		}
	}
	return wal, nil
}

// dropPersisted tears down an entry's durable state. Called with adminMu
// held and the entry already removed from the registry; snapMu excludes an
// in-flight background snapshot of the same entry, whose membership check
// then fails, so the files cannot be re-created after removal.
func (s *Server) dropPersisted(name string, e *entry) error {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if e.wal != nil {
		e.wal.Close() //nolint:errcheck
	}
	for _, wal := range e.shardWALs {
		if wal != nil {
			wal.Close() //nolint:errcheck
		}
	}
	if s.store == nil {
		return nil
	}
	return s.store.Remove(name)
}

// Close stops the background snapshotter, takes a final snapshot of every
// dirty index, and releases WAL handles. The HTTP mux keeps answering
// queries but durability guarantees end here; Close is for graceful
// shutdown and tests. It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		// Refuse new requests from here on; callers wanting in-flight work
		// to finish first should Drain before Close.
		s.draining.Store(true)
		if s.follower != nil {
			s.follower.close()
		}
		if s.stop != nil {
			close(s.stop)
			<-s.done
		}
		err = s.SnapshotAll()
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, e := range s.indexes {
			if e.wal != nil {
				e.wal.Close() //nolint:errcheck
			}
			for _, wal := range e.shardWALs {
				if wal != nil {
					wal.Close() //nolint:errcheck
				}
			}
		}
	})
	return err
}

// RestoreRequest carries a previously marshalled blob (GET /marshal, or
// Index/DynamicIndex.MarshalBinary) to load under a name.
type RestoreRequest struct {
	Blob string `json:"blob"` // base64 (std encoding)
}

// handleRestore implements POST /v1/indexes/{name}/restore: register the
// blob under the name, replacing any existing index. Dynamic blobs come
// back dynamic — buffer, options, and fallback included. With a data dir
// the blob is persisted (and any previous WAL dropped) before the request
// is acknowledged.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	var req RestoreRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Blob)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode blob: %w", err))
		return
	}
	e, err := entryFromBlob(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	s.mu.RLock()
	old := s.indexes[name]
	s.mu.RUnlock()
	if old != nil {
		// Exclude an in-flight background snapshot of the entry being
		// replaced, and hold the lock across the registry swap so no later
		// one can overwrite the restored snapshot (its membership check
		// fails once the swap is visible).
		old.snapMu.Lock()
		defer old.snapMu.Unlock()
	}
	if err := s.persistRestore(name, raw, e, old); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.initRepl(e)
	s.mu.Lock()
	s.indexes[name] = e
	s.mu.Unlock()
	if old != nil && s.cache != nil {
		// The replaced entry's cached bodies are unreachable (the key holds
		// the old pointer); release their bytes eagerly.
		s.cache.purgeEntry(old)
	}
	writeJSON(w, http.StatusOK, s.statsOf(name, e))
}

// persistRestore writes the durable state for a restore, new-state-first so
// a failure at any point never destroys the previous index: (1) the new
// durable form is written — the raw blob atomically replacing the plain
// snapshot, or (for a sharded dynamic restore) per-shard snapshots sealed
// by the manifest, which is the commit point recovery keys off; (2) the
// old logs (records of the replaced index) are emptied and closed, and
// stale files of the other kind are retired — manifest first, so recovery
// at any crash point sees either the complete old index or the complete
// new one; (3) fresh WALs are opened for a dynamic replacement. A crash
// inside the sequence recovers to whichever state's commit point is on
// disk, replaying any stale WAL records as idempotent duplicate skips.
func (s *Server) persistRestore(name string, raw []byte, e, old *entry) error {
	if s.store == nil {
		return nil
	}
	if e.shd != nil {
		return s.persistRestoreSharded(name, e, old)
	}
	if err := s.store.WriteSnapshot(name, raw); err != nil {
		return err
	}
	if err := retireOldLogs(old); err != nil {
		return err
	}
	// Drop sharded remains of a previous same-named index (manifest first:
	// once it is gone, recovery uses the plain snapshot just written).
	if err := s.store.RemoveShardFiles(name); err != nil {
		return err
	}
	walPath := s.store.WALPath(name)
	if e.ins != nil {
		// openFreshWAL purges anything that slipped into the file between
		// the truncate and the close above (or was left by an earlier
		// same-named index): those records belong to the replaced index,
		// not the restored one.
		wal, err := s.openFreshWAL(walPath)
		if err != nil {
			return err
		}
		e.wal = wal
	} else if err := s.store.FS().Remove(walPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	e.snapshots.Add(1)
	e.lastSnapUnix.Store(time.Now().Unix())
	s.snapshotsWritten.Add(1)
	return nil
}

// persistRestoreSharded is the sharded-dynamic arm of persistRestore. The
// ordering matters: (1) new shard snapshots; (2) retire every log that
// could replay stale records — the replaced entry's open handles, every
// on-disk shard WAL (a skipped-as-corrupt predecessor may have left some
// behind with no open handle), and the plain WAL; (3) only THEN the
// manifest, the commit point — so at no crash point can recovery follow
// the new manifest and find a dead index's records still in a log;
// (4) cleanup of the other kind's snapshot and stale higher-numbered
// shards; (5) fresh per-shard WALs.
func (s *Server) persistRestoreSharded(name string, e, old *entry) error {
	k := e.shd.NumShards()
	for i := 0; i < k; i++ {
		blob, err := e.shd.MarshalShard(i)
		if err != nil {
			return err
		}
		if err := s.store.WriteShardSnapshot(name, i, blob); err != nil {
			return err
		}
	}
	if err := retireOldLogs(old); err != nil {
		return err
	}
	if err := s.store.RemoveShardWALFiles(name); err != nil {
		return err
	}
	if err := s.store.FS().Remove(s.store.WALPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := s.store.WriteShardManifest(name, persist.ShardManifest{Shards: k, Bounds: e.shd.Bounds()}); err != nil {
		return err
	}
	// Recovery now follows the manifest: drop the plain snapshot and any
	// shard snapshots beyond the new count.
	if err := s.store.FS().Remove(s.store.SnapshotPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := s.store.RemoveShardFilesFrom(name, k); err != nil {
		return err
	}
	wals := make([]*persist.WAL, k)
	for i := range wals {
		wal, err := s.openFreshWAL(s.store.ShardWALPath(name, i))
		if err != nil {
			for _, w := range wals {
				if w != nil {
					w.Close() //nolint:errcheck
				}
			}
			return err
		}
		wals[i] = wal
	}
	e.shardWALs = wals
	e.snapshots.Add(1)
	e.lastSnapUnix.Store(time.Now().Unix())
	s.snapshotsWritten.Add(1)
	return nil
}

// retireOldLogs empties and closes the replaced entry's WAL handles (plain
// and per-shard) so their records can never replay over the restored
// state.
func retireOldLogs(old *entry) error {
	if old == nil {
		return nil
	}
	if old.wal != nil {
		if err := old.wal.TruncateTo(old.wal.Size()); err != nil {
			return err
		}
		old.wal.Close() //nolint:errcheck
	}
	for _, wal := range old.shardWALs {
		if wal == nil {
			continue
		}
		if err := wal.TruncateTo(wal.Size()); err != nil {
			return err
		}
		wal.Close() //nolint:errcheck
	}
	return nil
}

// ServerStats are the global durability counters exposed at GET /v1/stats.
type ServerStats struct {
	Indexes            int    `json:"indexes"`
	ShardedIndexes     int    `json:"sharded_indexes,omitempty"`
	TotalShards        int    `json:"total_shards,omitempty"` // across sharded indexes
	Durable            bool   `json:"durable"`
	DataDir            string `json:"data_dir,omitempty"`
	SnapshotsWritten   int64  `json:"snapshots_written"`
	WALAppendedRecords int64  `json:"wal_appended_records"`
	RecoveredIndexes   int    `json:"recovered_indexes"`
	ReplayedInserts    int64  `json:"replayed_inserts"`
	CorruptSkipped     int    `json:"corrupt_skipped,omitempty"`
	TornWALBytes       int    `json:"torn_wal_bytes,omitempty"`

	// Request-lifecycle counters (admission control, coalescing, deadlines,
	// panic recovery — see admission.go). InFlight/QueuedQueries/
	// CoalesceWaiting are point-in-time gauges; the rest are cumulative.
	// TimedOutQueries counts genuine deadline expiries (504);
	// CanceledQueries counts client disconnects (499) — kept apart so
	// disconnect storms don't masquerade as serving latency.
	// ExecutedQueries counts actual index traversals (solo queries, batch
	// requests, and group sweeps each count one): cache hits and coalesced
	// followers never move it.
	InFlight         int64 `json:"in_flight"`
	QueuedQueries    int64 `json:"queued_queries"`
	ShedQueries      int64 `json:"shed_queries"`
	CoalescedQueries int64 `json:"coalesced_queries"`
	CoalesceWaiting  int64 `json:"coalesce_waiting,omitempty"`
	TimedOutQueries  int64 `json:"timed_out_queries"`
	CanceledQueries  int64 `json:"canceled_queries"`
	ExecutedQueries  int64 `json:"executed_queries"`
	PanicsRecovered  int64 `json:"panics_recovered"`

	// Batched admission (see batcher.go): groups of queued point queries
	// executed as one QueryBatch sweep, and how many queries those sweeps
	// answered.
	BatchedGroups  int64 `json:"batched_groups"`
	BatchedQueries int64 `json:"batched_queries"`

	// Result cache (see cache.go; all zero unless Config.CacheBytes > 0).
	// CacheBytes is a gauge of bytes currently held against the
	// CacheCapacity budget; the rest are cumulative.
	CacheEnabled   bool  `json:"cache_enabled"`
	CacheCapacity  int64 `json:"cache_capacity_bytes,omitempty"`
	CacheBytes     int64 `json:"cache_bytes,omitempty"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`

	// Degradation counters: indexes currently serving with a sick WAL, the
	// total failed persistence operations, and inserts acknowledged
	// without the durability guarantee.
	DegradedIndexes   int   `json:"degraded_indexes"`
	PersistErrors     int64 `json:"persist_errors"`
	NonDurableInserts int64 `json:"non_durable_inserts"`

	// PerIndexShards maps each sharded index to its per-shard stats rows,
	// so one /v1/stats round trip shows the whole shard fleet.
	PerIndexShards map[string][]ShardStats `json:"per_index_shards,omitempty"`

	// Replication (see replication.go / follower.go). Role is "leader"
	// (the default, even with no followers attached) or "follower".
	// Leaders list every follower's acknowledged watermark; followers
	// report the leader they stream from, how stale their reads may be
	// (milliseconds since the last fully-caught-up poll), the sequence
	// vector they have applied per index, and their join/apply counters.
	Role          string             `json:"role"`
	Leader        string             `json:"leader,omitempty"`
	StalenessMS   int64              `json:"staleness_ms,omitempty"`
	AckWatermark  map[string][]int64 `json:"ack_watermark,omitempty"`
	Followers     []FollowerStat     `json:"followers,omitempty"`
	SnapshotSyncs int64              `json:"snapshot_syncs,omitempty"`
	ReplApplied   int64              `json:"repl_applied_records,omitempty"`
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.indexes)
	type shardedIx struct {
		name string
		e    *entry
	}
	var sharded []shardedIx
	degradedIndexes := 0
	for name, e := range s.indexes {
		if _, ok := e.ix.(polyfit.Sharder); ok {
			sharded = append(sharded, shardedIx{name, e})
		}
		if e.degraded.Load() {
			degradedIndexes++
		}
	}
	s.mu.RUnlock()
	st := ServerStats{
		Indexes:            n,
		Durable:            s.store != nil,
		SnapshotsWritten:   s.snapshotsWritten.Load(),
		WALAppendedRecords: s.walAppended.Load(),
		RecoveredIndexes:   s.recovery.Indexes,
		ReplayedInserts:    s.recovery.ReplayedInserts,
		CorruptSkipped:     s.recovery.CorruptSkipped,
		TornWALBytes:       s.recovery.TornWALBytes,
		InFlight:           s.httpInFlight.Load(),
		QueuedQueries:      s.adm.queued.Load(),
		ShedQueries:        s.adm.shed.Load(),
		CoalescedQueries:   s.coalesced.Load(),
		CoalesceWaiting:    s.coalesceWait.Load(),
		TimedOutQueries:    s.timedOut.Load(),
		CanceledQueries:    s.canceled.Load(),
		ExecutedQueries:    s.executed.Load(),
		BatchedGroups:      s.batchedGroups.Load(),
		BatchedQueries:     s.batchedQueries.Load(),
		PanicsRecovered:    s.panics.Load(),
		DegradedIndexes:    degradedIndexes,
		PersistErrors:      s.persistErrors.Load(),
		NonDurableInserts:  s.nonDurableIns.Load(),
		Role:               "leader",
	}
	if s.follower != nil {
		st.Role = "follower"
		st.Leader = s.follower.leader
		st.StalenessMS = s.follower.stalenessMS()
		st.AckWatermark = s.follower.watermark()
		st.SnapshotSyncs = s.follower.synced.Load()
		st.ReplApplied = s.follower.applied.Load()
	} else {
		st.Followers = s.acks.stats(s.followerTTL)
	}
	for _, sx := range sharded {
		rows := s.statsOf(sx.name, sx.e).ShardStats
		st.ShardedIndexes++
		st.TotalShards += len(rows)
		if st.PerIndexShards == nil {
			st.PerIndexShards = make(map[string][]ShardStats, len(sharded))
		}
		st.PerIndexShards[sx.name] = rows
	}
	if s.cache != nil {
		st.CacheEnabled = true
		st.CacheCapacity = s.cache.capacity()
		st.CacheBytes = s.cache.bytes.Load()
		st.CacheHits = s.cache.hits.Load()
		st.CacheMisses = s.cache.misses.Load()
		st.CacheEvictions = s.cache.evictions.Load()
	}
	if s.store != nil {
		st.DataDir = s.store.Dir()
	}
	writeJSON(w, http.StatusOK, st)
}

// entryFromBlob restores a blob through polyfit.Open, which sniffs the
// magic and returns the right variant behind the uniform Index interface —
// dynamic blobs come back insertable with their delta buffer and options
// intact, sharded ones with their per-shard capabilities.
func entryFromBlob(raw []byte) (*entry, error) {
	if polyfit.DetectBlob(raw) == polyfit.BlobStatic2D {
		return nil, errors.New("2D index blobs are not servable (no range endpoint)")
	}
	ix, err := polyfit.Open(raw)
	if err != nil {
		return nil, err
	}
	return newEntry(ix), nil
}
