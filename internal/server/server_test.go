package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	polyfit "repro"
	"repro/internal/data"
)

func post(t *testing.T, ts *httptest.Server, path string, body, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp
}

func TestServeStaticCountEndToEnd(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	keys := data.GenTweet(20_000, 21)
	var st StatsResponse
	resp := post(t, ts, "/v1/indexes", CreateRequest{
		Name: "tweets", Agg: "count", Keys: keys, EpsAbs: 50,
	}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if st.Records != len(keys) || st.Aggregate != "COUNT" || st.Dynamic {
		t.Fatalf("bad stats %+v", st)
	}

	// Single query matches the library answer.
	ix, err := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: 50})
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := ix.Query(10, 40)
	var q QueryResponse
	post(t, ts, "/v1/indexes/tweets/query", QueryRequest{Lo: 10, Hi: 40}, &q)
	if !q.Found || math.Abs(q.Value-want) > 1e-9 {
		t.Fatalf("query = %+v, want value %g", q, want)
	}

	// Relative query runs the certified path.
	post(t, ts, "/v1/indexes/tweets/query", QueryRequest{Lo: 10, Hi: 40, EpsRel: 0.01}, &q)
	res, _ := ix.QueryRel(10, 40, 0.01)
	if math.Abs(q.Value-res.Value) > 1e-9 {
		t.Fatalf("rel query = %+v, want %g", q, res.Value)
	}

	// Batched queries answer many ranges per request, matching serial.
	rng := rand.New(rand.NewSource(22))
	req := BatchRequest{Ranges: make([]RangeJSON, 256)}
	for i := range req.Ranges {
		a := -90 + rng.Float64()*180
		b := -90 + rng.Float64()*180
		if a > b {
			a, b = b, a
		}
		req.Ranges[i] = RangeJSON{Lo: a, Hi: b}
	}
	var batch BatchResponse
	resp = post(t, ts, "/v1/indexes/tweets/batch", req, &batch)
	if resp.StatusCode != http.StatusOK || len(batch.Results) != 256 {
		t.Fatalf("batch: status %d, %d results", resp.StatusCode, len(batch.Results))
	}
	for i, rr := range req.Ranges {
		want, _, _ := ix.Query(rr.Lo, rr.Hi)
		if got := batch.Results[i].Value; math.Abs(got-want) > 1e-9 {
			t.Fatalf("batch result %d = %g, want %g", i, got, want)
		}
	}

	// Marshal round-trips into a second, equivalent index.
	blobResp, err := ts.Client().Get(ts.URL + "/v1/indexes/tweets/marshal")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(blobResp.Body)
	blobResp.Body.Close()
	if err != nil || len(blob) == 0 {
		t.Fatalf("marshal: %v (%d bytes)", err, len(blob))
	}
	post(t, ts, "/v1/indexes", CreateRequest{
		Name: "tweets-loaded", Blob: encodeB64(blob),
	}, nil)
	var q2 QueryResponse
	post(t, ts, "/v1/indexes/tweets-loaded/query", QueryRequest{Lo: 10, Hi: 40}, &q2)
	if math.Abs(q2.Value-want) > 1e-9 {
		t.Fatalf("loaded index answers %g, want %g", q2.Value, want)
	}

	// List sees both.
	var list []StatsResponse
	get(t, ts, "/v1/indexes", &list)
	if len(list) != 2 {
		t.Fatalf("list: %d entries", len(list))
	}

	// Delete works and the index is gone.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/indexes/tweets-loaded", nil)
	delResp, err := ts.Client().Do(delReq)
	if err != nil || delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %d", err, delResp.StatusCode)
	}
	delResp.Body.Close()
	if resp := post(t, ts, "/v1/indexes/tweets-loaded/query", QueryRequest{}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete: status %d", resp.StatusCode)
	}
}

func TestServeDynamicInsertAndRebuild(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	keys, vals := data.GenHKI(5_000, 23)
	post(t, ts, "/v1/indexes", CreateRequest{
		Name: "hki", Agg: "sum", Dynamic: true, Keys: keys, Measures: vals, EpsAbs: 500,
	}, nil)

	// Insert past the end of the series; one duplicate must be rejected.
	last := keys[len(keys)-1]
	var ins InsertResponse
	post(t, ts, "/v1/indexes/hki/insert", InsertRequest{Records: []Record{
		{Key: last + 1, Measure: 100},
		{Key: last + 2, Measure: 200},
		{Key: last + 1, Measure: 999}, // duplicate
	}}, &ins)
	if ins.Inserted != 2 || ins.Rejected != 1 || len(ins.Errors) != 1 {
		t.Fatalf("insert response %+v", ins)
	}

	// The inserted mass is visible immediately (exact buffer contribution).
	var q QueryResponse
	post(t, ts, "/v1/indexes/hki/query", QueryRequest{Lo: last, Hi: last + 10}, &q)
	if math.Abs(q.Value-300) > 500 {
		t.Fatalf("buffered inserts not served: %+v", q)
	}

	var st StatsResponse
	get(t, ts, "/v1/indexes/hki", &st)
	if !st.Dynamic || st.BufferLen != 2 {
		t.Fatalf("stats before rebuild: %+v", st)
	}
	var after StatsResponse
	post(t, ts, "/v1/indexes/hki/rebuild", struct{}{}, &after)
	if after.BufferLen != 0 || after.Records != len(keys)+2 {
		t.Fatalf("stats after rebuild: %+v", after)
	}

	// Inserting into a static index is a 409.
	post(t, ts, "/v1/indexes", CreateRequest{Name: "static", Agg: "count", Keys: keys, EpsAbs: 50}, nil)
	if resp := post(t, ts, "/v1/indexes/static/insert", InsertRequest{Records: []Record{{Key: 1}}}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("insert into static: status %d", resp.StatusCode)
	}
}

func TestServeValidation(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	keys := data.GenTweet(1_000, 25)
	cases := []struct {
		name string
		req  CreateRequest
		want int
	}{
		{"missing name", CreateRequest{Agg: "count", Keys: keys, EpsAbs: 10}, http.StatusBadRequest},
		{"bad agg", CreateRequest{Name: "x", Agg: "median", Keys: keys, EpsAbs: 10}, http.StatusBadRequest},
		{"no eps", CreateRequest{Name: "x", Agg: "count", Keys: keys}, http.StatusBadRequest},
		{"empty keys", CreateRequest{Name: "x", Agg: "count", EpsAbs: 10}, http.StatusBadRequest},
		{"dynamic blob", CreateRequest{Name: "x", Dynamic: true, Blob: "AAAA"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp := post(t, ts, "/v1/indexes", c.req, nil); resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	post(t, ts, "/v1/indexes", CreateRequest{Name: "a", Agg: "count", Keys: keys, EpsAbs: 10}, nil)
	if resp := post(t, ts, "/v1/indexes", CreateRequest{Name: "a", Agg: "count", Keys: keys, EpsAbs: 10}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate name: status %d", resp.StatusCode)
	}

	// Relative query on a fallback-free index surfaces ErrNoFallback as 409.
	post(t, ts, "/v1/indexes", CreateRequest{
		Name: "nofb", Agg: "count", Keys: keys, EpsAbs: 10, DisableFallback: true,
	}, nil)
	if resp := post(t, ts, "/v1/indexes/nofb/query",
		QueryRequest{Lo: keys[0], Hi: keys[0], EpsRel: 0.01}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("no-fallback rel query: status %d", resp.StatusCode)
	}
}

// TestServeConcurrentTraffic drives inserts, single queries, and batched
// queries against one dynamic index from many goroutines through the full
// HTTP stack; meaningful under -race.
func TestServeConcurrentTraffic(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	keys := data.GenTweet(10_000, 27)
	post(t, ts, "/v1/indexes", CreateRequest{
		Name: "live", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50,
	}, nil)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for i := 0; i < 40; i++ {
				recs := make([]Record, 8)
				for j := range recs {
					recs[j] = Record{Key: 1000 + rng.Float64()*1e6}
				}
				raw, _ := json.Marshal(InsertRequest{Records: recs})
				resp, err := ts.Client().Post(ts.URL+"/v1/indexes/live/insert", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("insert status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; i < 40; i++ {
				var body []byte
				path := "/v1/indexes/live/query"
				if i%2 == 0 {
					ranges := make([]RangeJSON, 32)
					for j := range ranges {
						a, b := -90+rng.Float64()*180, -90+rng.Float64()*180
						if a > b {
							a, b = b, a
						}
						ranges[j] = RangeJSON{Lo: a, Hi: b}
					}
					body, _ = json.Marshal(BatchRequest{Ranges: ranges})
					path = "/v1/indexes/live/batch"
				} else {
					body, _ = json.Marshal(QueryRequest{Lo: -90, Hi: 90})
				}
				resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var st StatsResponse
	get(t, ts, "/v1/indexes/live", &st)
	if st.Records <= len(keys) {
		t.Errorf("no inserts landed: %+v", st)
	}
}

func encodeB64(b []byte) string {
	return base64.StdEncoding.EncodeToString(b)
}

// TestServeParallelBuildAndRootBytes: an explicit parallelism request must
// build the same index a serial build produces (same stats, same marshalled
// bytes), and /stats must surface the learned-root footprint.
func TestServeParallelBuildAndRootBytes(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	keys := data.GenTweet(20_000, 33)
	var serial, par StatsResponse
	resp := post(t, ts, "/v1/indexes", CreateRequest{
		Name: "serial", Agg: "count", Keys: keys, Delta: 25,
		DisableFallback: true, Parallelism: 1,
	}, &serial)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("serial create: status %d", resp.StatusCode)
	}
	resp = post(t, ts, "/v1/indexes", CreateRequest{
		Name: "par", Agg: "count", Keys: keys, Delta: 25,
		DisableFallback: true, Parallelism: 8,
	}, &par)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("parallel create: status %d", resp.StatusCode)
	}
	if serial.Segments != par.Segments || serial.IndexBytes != par.IndexBytes || serial.RootBytes != par.RootBytes {
		t.Fatalf("parallel build stats differ: serial %+v vs parallel %+v", serial, par)
	}
	if par.Segments > 1 && par.RootBytes <= 0 {
		t.Fatalf("stats should surface the learned-root bytes, got %d", par.RootBytes)
	}
	if par.RootBytes >= par.IndexBytes {
		t.Fatalf("root bytes (%d) must be a strict part of index bytes (%d)", par.RootBytes, par.IndexBytes)
	}

	blobOf := func(name string) []byte {
		resp, err := ts.Client().Get(ts.URL + "/v1/indexes/" + name + "/marshal")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(blobOf("serial"), blobOf("par")) {
		t.Fatal("parallel server build is not byte-identical to serial")
	}
}
