package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	polyfit "repro"
)

// Overload control for the query path (admission.go): a bounded admission
// queue in front of a concurrency limit, plus single-flight coalescing of
// identical in-flight queries. Inserts and admin operations are never
// gated — shedding reads to protect writes is the point, not the other
// way around.
//
//   - At most MaxConcurrentQueries queries execute at once; up to
//     MaxQueuedQueries more wait for a slot. Beyond that the request is
//     shed immediately (HTTP 429 + Retry-After) instead of queueing
//     unboundedly — under overload the server answers "try later" in
//     microseconds rather than timing everyone out.
//   - Identical concurrent queries — same index, same data generation,
//     same range, same eps_rel — collapse onto one execution: one leader
//     takes an admission slot and runs the query, followers wait on the
//     leader and repeat its byte-identical response without consuming
//     slots. The generation in the key makes invalidation structural: an
//     insert bumps it, so post-insert arrivals never join a stale flight.

// errShed reports a query rejected by admission control because both the
// executing slots and the wait queue were full.
var errShed = errors.New("server overloaded: query queue is full")

// admission is the bounded queue + concurrency limit. acquire is designed
// so the shed decision is lock-free and immediate: a full queue is
// detected with one atomic add, never by waiting.
type admission struct {
	sem      chan struct{} // buffered to the concurrency limit
	maxQueue int64
	queued   atomic.Int64 // waiters currently queued for a slot
	shed     atomic.Int64 // requests rejected with errShed
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{sem: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire takes an execution slot, queueing up to the configured depth.
// It returns errShed without blocking when the queue is full, or ctx's
// error if the deadline expires while queued. A nil return must be paired
// with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.sem }

// testHookQueryDelay, when non-nil, runs in the query leader after its
// admission slot is acquired and before the query executes. Tests use it
// to hold a leader in place so concurrent identical queries provably
// coalesce behind it (and so the queue provably fills).
var testHookQueryDelay func()

// flightKey identifies one logical query for coalescing. The entry
// pointer (not the name) scopes the flight to one registered index
// instance — a restore under the same name changes the pointer — and gen
// is the index's mutation counter, so any successful insert or rebuild
// moves later arrivals onto a fresh flight.
type flightKey struct {
	e      *entry
	gen    uint64
	lo, hi float64
	epsRel float64
}

// flightCall is one in-flight execution; followers wait on done and then
// read the outcome fields (written once, before close).
type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// flightGroup is a hand-rolled singleflight keyed by flightKey.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// do executes fn once per key among concurrent callers. The first caller
// (leader) runs fn and broadcasts its outcome; the rest (followers) block
// until the leader finishes and return the exact same status and body
// bytes. leader reports which role this caller played. waiting is a gauge
// of followers currently blocked, observable while a flight is open.
func (g *flightGroup) do(key flightKey, waiting *atomic.Int64, fn func() (int, []byte)) (status int, body []byte, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		waiting.Add(1)
		<-c.done
		waiting.Add(-1)
		return c.status, c.body, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// The flight MUST resolve even if fn panics (the panic then continues
	// up to the ServeHTTP recovery middleware): leaving the key in the map
	// with done never closed would hang every later identical query.
	defer func() {
		if c.status == 0 { // fn panicked before producing an outcome
			c.status, c.body = jsonBody(http.StatusInternalServerError,
				errorResponse{Error: "internal error (panic recovered)"})
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.status, c.body = fn()
	return c.status, c.body, true
}

// generationOf reads the entry's data generation for the flight key.
// Static indexes are immutable: every read observes the same data, so a
// constant 0 coalesces them forever, which is exactly right.
func generationOf(e *entry) uint64 {
	if g, ok := e.ix.(polyfit.Generational); ok {
		return g.Generation()
	}
	return 0
}
