package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	polyfit "repro"
)

// Overload control for the query path (admission.go): a bounded admission
// queue in front of a concurrency limit, plus single-flight coalescing of
// identical in-flight queries. Inserts and admin operations are never
// gated — shedding reads to protect writes is the point, not the other
// way around.
//
//   - At most MaxConcurrentQueries queries execute at once; up to
//     MaxQueuedQueries more wait for a slot. Beyond that the request is
//     shed immediately (HTTP 429 + Retry-After) instead of queueing
//     unboundedly — under overload the server answers "try later" in
//     microseconds rather than timing everyone out.
//   - Identical concurrent queries — same index, same data generation,
//     same range, same eps_rel — collapse onto one execution: one leader
//     takes an admission slot and runs the query, followers wait on the
//     leader and repeat its byte-identical response without consuming
//     slots. The generation in the key makes invalidation structural: an
//     insert bumps it, so post-insert arrivals never join a stale flight.
//   - Distinct point queries waiting for a slot are collected per
//     (index, generation) and executed as one QueryBatch sweep under a
//     single slot when one of them finally acquires it (see batcher.go).

// errShed reports a query rejected by admission control because both the
// executing slots and the wait queue were full.
var errShed = errors.New("server overloaded: query queue is full")

// errAborted reports an acquire abandoned because the caller's abort
// channel fired first — for batched point queries, that means another
// waiter's sweep already produced this query's answer (see batcher.go).
var errAborted = errors.New("server: admission wait aborted")

// admission is the bounded queue + concurrency limit. acquire is designed
// so the shed decision is lock-free and immediate: a full queue is
// detected with one atomic add, never by waiting.
type admission struct {
	sem      chan struct{} // buffered to the concurrency limit
	maxQueue int64
	queued   atomic.Int64 // waiters currently queued for a slot
	shed     atomic.Int64 // requests rejected with errShed
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{sem: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire takes an execution slot, queueing up to the configured depth.
// It returns errShed without blocking when the queue is full, or ctx's
// error if the deadline expires while queued. A nil return must be paired
// with release.
func (a *admission) acquire(ctx context.Context) error {
	err := a.acquireAbortable(ctx, nil)
	if errors.Is(err, errShed) {
		a.shed.Add(1)
	}
	return err
}

// tryAcquire takes a slot only if one is free right now, reporting whether
// it did. A true return must be paired with release.
func (a *admission) tryAcquire() bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// acquireAbortable is acquire with a third wake-up source: it returns
// errAborted if abort fires while queued (a nil abort never fires). It
// does NOT count errShed in the shed counter — the caller decides, because
// a batched waiter that was claimed by a concurrent sweep ends up answered
// 200, not 429 (see batcher.go).
func (a *admission) acquireAbortable(ctx context.Context, abort <-chan struct{}) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-abort:
		return errAborted
	}
}

func (a *admission) release() { <-a.sem }

// testHookQueryDelay, when non-nil, runs in the query leader after its
// admission slot is acquired and before the query executes (solo queries,
// batch requests, and batched-group sweeps alike). Tests use it to hold a
// leader in place so concurrent identical queries provably coalesce behind
// it (and so the queue provably fills). testHookQueryDelayCtx is the
// context-aware variant, for tests that must park a query until its own
// request context dies.
var (
	testHookQueryDelay    func()
	testHookQueryDelayCtx func(context.Context)
)

// runQueryDelayHooks fires the test hooks at a query-execution point.
func runQueryDelayHooks(ctx context.Context) {
	if testHookQueryDelay != nil {
		testHookQueryDelay()
	}
	if testHookQueryDelayCtx != nil {
		testHookQueryDelayCtx(ctx)
	}
}

// flightKey identifies one logical query for coalescing — and for the
// result cache, which shares the exact same identity (see cache.go). The
// entry pointer (not the name) scopes the flight to one registered index
// instance — a restore under the same name changes the pointer — and gen
// is the index's mutation counter, so any successful insert or rebuild
// moves later arrivals onto a fresh flight (and makes older cached bodies
// unreachable).
type flightKey struct {
	e      *entry
	gen    uint64
	lo, hi float64
	epsRel float64
}

// flightCall is one in-flight execution; followers wait on done and then
// read the outcome fields (written once, before close).
type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// flightGroup is a hand-rolled singleflight keyed by flightKey.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall // guarded by mu
}

// do executes fn once per key among concurrent callers. The first caller
// (leader) runs fn and broadcasts its outcome; the rest (followers) block
// until the leader finishes and return the exact same status and body
// bytes — or until their own ctx expires, in which case err is the ctx
// error and status/body are unset: a follower's deadline is its own, never
// the leader's. leader reports which role this caller played. waiting is a
// gauge of followers currently blocked, observable while a flight is open.
func (g *flightGroup) do(ctx context.Context, key flightKey, waiting *atomic.Int64, fn func() (int, []byte)) (status int, body []byte, leader bool, err error) {
	c, isLeader := g.lookupOrStart(key)
	if !isLeader {
		waiting.Add(1)
		defer waiting.Add(-1)
		select {
		case <-c.done:
			return c.status, c.body, false, nil
		case <-ctx.Done():
			// The follower's own timeout_ms (or client disconnect) fires
			// while the leader is still queued or executing: abandon the
			// wait. The flight itself stays open for patient followers.
			return 0, nil, false, ctx.Err()
		}
	}

	// The flight MUST resolve even if fn panics (the panic then continues
	// up to the ServeHTTP recovery middleware): leaving the key in the map
	// with done never closed would hang every later identical query.
	defer func() {
		if c.status == 0 { // fn panicked before producing an outcome
			c.status, c.body = jsonBody(http.StatusInternalServerError,
				errorResponse{Error: "internal error (panic recovered)"})
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.status, c.body = fn()
	return c.status, c.body, true, nil
}

// lookupOrStart returns the open flight for key, or registers a new one
// with this caller as its leader.
func (g *flightGroup) lookupOrStart(key flightKey) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// generationOf reads the entry's data generation for the flight key.
// Static indexes are immutable: every read observes the same data, so a
// constant 0 coalesces them forever, which is exactly right.
func generationOf(e *entry) uint64 {
	if g, ok := e.ix.(polyfit.Generational); ok {
		return g.Generation()
	}
	return 0
}
