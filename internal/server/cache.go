package server

import (
	"math"
	"sync"
	"sync/atomic"
)

// Result cache (cache.go): completed point and relative-error queries are
// kept as their full marshalled response bodies — certified Bound
// included — and repeated queries are served straight from memory with
// zero index traversal. The cache key is the coalescer's flightKey:
// (entry pointer, data generation, range, eps_rel). That makes
// invalidation structural rather than temporal:
//
//   - A successful insert or rebuild bumps the index's generation, so
//     every later arrival computes a different key and misses; the old
//     generation's bodies become unreachable and age out of the LRU.
//   - A restore (or delete + recreate) registers a new *entry, changing
//     the pointer component the same way (delete and restore also purge
//     eagerly, so dead entries don't squat on the byte budget).
//   - Static indexes never mutate: generation is the constant 0 and their
//     answers cache until evicted, which is exactly right.
//
// A cached body was marshalled by a leader that read its generation
// BEFORE executing, so the data it reflects is at least as new as the
// generation it is filed under — a hit can serve a fresher answer than
// the cached generation, never a staler one. Serving a stale answer is
// impossible by construction, not by timeout tuning.
//
// The store is a sharded LRU bounded by a byte budget (Config.CacheBytes,
// default 0 = disabled): each shard owns a hash slice of the key space
// under its own mutex, so concurrent hits on different keys don't contend
// on one lock. Only HTTP 200 bodies are cached — errors, sheds, and
// timeouts always re-execute.

// cacheShardCount is the fixed number of LRU shards. 16 keeps lock
// contention negligible at the serving layer's admission-bounded
// concurrency while wasting at most 15 partially-filled tails.
const cacheShardCount = 16

// cacheItemOverhead approximates the per-item bookkeeping bytes beyond
// the body itself (key, list pointers, map bucket share), charged against
// the byte budget so cache_bytes tracks real memory, not just payload.
const cacheItemOverhead = 160

// cacheItem is one cached response in a shard's LRU list.
type cacheItem struct {
	key        flightKey
	body       []byte
	size       int64
	prev, next *cacheItem
}

// cacheShard is one LRU partition: a map for lookup and an intrusive
// doubly-linked list ordered most- to least-recently used.
type cacheShard struct {
	mu    sync.Mutex
	items map[flightKey]*cacheItem // guarded by mu
	head  *cacheItem               // guarded by mu; most recently used
	tail  *cacheItem               // guarded by mu; least recently used, next eviction victim
	bytes int64                    // guarded by mu
}

// resultCache is the server-wide bounded response cache.
type resultCache struct {
	shardCap int64 // byte budget per shard
	shards   [cacheShardCount]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64 // current total across shards
}

// newResultCache returns a cache bounded to roughly capacity bytes
// (bodies + per-item overhead), split evenly across the shards.
func newResultCache(capacity int64) *resultCache {
	c := &resultCache{shardCap: capacity / cacheShardCount}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.items = make(map[flightKey]*cacheItem)
		sh.mu.Unlock()
	}
	return c
}

// capacity reports the total byte budget.
func (c *resultCache) capacity() int64 { return c.shardCap * cacheShardCount }

// shardOf hashes the key onto a shard. The entry pointer is deliberately
// left out (pointers don't hash portably without unsafe); generation and
// range bits alone spread keys well, and correctness never depends on the
// shard choice — only key equality does.
func (c *resultCache) shardOf(key flightKey) *cacheShard {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, v := range [4]uint64{
		key.gen,
		math.Float64bits(key.lo),
		math.Float64bits(key.hi),
		math.Float64bits(key.epsRel),
	} {
		h ^= v
		h *= 1099511628211 // FNV-1a prime
	}
	return &c.shards[h%cacheShardCount]
}

// get returns the cached body for key, marking it most recently used.
// The returned slice is shared and must not be mutated (response bodies
// never are — writeRaw only reads).
func (c *resultCache) get(key flightKey) ([]byte, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	it, ok := sh.items[key]
	if ok {
		sh.moveToFront(it)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return it.body, true
}

// put stores a 200 body under key, evicting least-recently-used items
// until the shard fits its budget again. Bodies too large for a whole
// shard are not cached at all. The entry's cache-byte gauge moves with
// every insert and eviction so per-index stats stay accurate.
func (c *resultCache) put(key flightKey, body []byte) {
	size := int64(len(body)) + cacheItemOverhead
	if size > c.shardCap {
		return
	}
	sh := c.shardOf(key)
	var freed []*cacheItem
	sh.mu.Lock()
	if old, ok := sh.items[key]; ok {
		// A follower that timed out and retried after the generation moved
		// back, or a re-population race: replace in place.
		sh.unlink(old)
		delete(sh.items, key)
		sh.bytes -= old.size
		freed = append(freed, old)
	}
	it := &cacheItem{key: key, body: body, size: size}
	sh.items[key] = it
	sh.pushFront(it)
	sh.bytes += size
	for sh.bytes > c.shardCap && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.items, victim.key)
		sh.bytes -= victim.size
		freed = append(freed, victim)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
	delta := size
	for _, v := range freed {
		delta -= v.size
		v.key.e.cacheBytes.Add(-v.size)
	}
	c.bytes.Add(delta)
	key.e.cacheBytes.Add(size)
}

// purgeEntry drops every cached body belonging to e — called when an
// index is deleted or replaced by a restore, so retired entries release
// their share of the byte budget immediately instead of aging out.
func (c *resultCache) purgeEntry(e *entry) {
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, it := range sh.items {
			if key.e != e {
				continue
			}
			sh.unlink(it)
			delete(sh.items, key)
			sh.bytes -= it.size
			total += it.size
		}
		sh.mu.Unlock()
	}
	if total != 0 {
		c.bytes.Add(-total)
		e.cacheBytes.Add(-total)
	}
}

// --- intrusive LRU list ----------------------------------------------------

// pushFront links it as most recently used; callers hold mu.
func (sh *cacheShard) pushFront(it *cacheItem) {
	it.prev = nil
	it.next = sh.head
	if sh.head != nil {
		sh.head.prev = it
	}
	sh.head = it
	if sh.tail == nil {
		sh.tail = it
	}
}

// unlink removes it from the LRU list; callers hold mu.
func (sh *cacheShard) unlink(it *cacheItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		sh.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		sh.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

// moveToFront marks it most recently used; callers hold mu.
func (sh *cacheShard) moveToFront(it *cacheItem) {
	if sh.head == it {
		return
	}
	sh.unlink(it)
	sh.pushFront(it)
}
