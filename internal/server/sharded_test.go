package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/data"
	"repro/internal/persist"
)

// mustGetRaw fetches a binary endpoint and returns the body.
func mustGetRaw(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d, %v", path, resp.StatusCode, err)
	}
	return raw
}

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// TestShardedCreateQueryStats covers the in-memory sharded lifecycle over
// HTTP: create with "shards", bound-reporting queries, batch routing,
// insert routing, per-shard rows in stats, per-shard rebuild visibility.
func TestShardedCreateQueryStats(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s)
	defer ts.Close()

	keys := data.GenTweet(4000, 31)
	var st StatsResponse
	mustPost(t, ts, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 4,
	}, &st)
	if st.Shards != 4 || len(st.ShardStats) != 4 {
		t.Fatalf("create stats: shards=%d rows=%d", st.Shards, len(st.ShardStats))
	}
	if !st.Dynamic || st.Records != len(keys) {
		t.Fatalf("create stats: %+v", st)
	}
	// Shard rows tile the key space in order.
	for i := 1; i < 4; i++ {
		if st.ShardStats[i].KeyLo <= st.ShardStats[i-1].KeyHi {
			t.Fatalf("shard %d key range overlaps predecessor: %+v", i, st.ShardStats)
		}
	}

	// Full-span query: composed bound 4·εabs, answer within it.
	var q QueryResponse
	mustPost(t, ts, "/v1/indexes/geo/query", QueryRequest{Lo: -90, Hi: 90}, &q)
	if q.Bound != 4*50 {
		t.Fatalf("full-span bound %g, want 200", q.Bound)
	}
	if math.Abs(q.Value-float64(len(keys))) > q.Bound {
		t.Fatalf("full-span count %g ± %g, want %d", q.Value, q.Bound, len(keys))
	}
	// Interior query touches one shard.
	lo, hi := st.ShardStats[1].KeyLo, st.ShardStats[1].KeyHi
	mustPost(t, ts, "/v1/indexes/geo/query", QueryRequest{Lo: lo + 0.001, Hi: hi}, &q)
	if q.Bound != 50 {
		t.Fatalf("interior bound %g, want 50", q.Bound)
	}

	// Batch: results in order, spanning + interior + empty ranges.
	var b BatchResponse
	mustPost(t, ts, "/v1/indexes/geo/batch", BatchRequest{Ranges: []RangeJSON{
		{Lo: -90, Hi: 90}, {Lo: lo + 0.001, Hi: hi}, {Lo: 10, Hi: -10},
	}}, &b)
	if len(b.Results) != 3 {
		t.Fatalf("batch results: %+v", b)
	}
	if math.Abs(b.Results[0].Value-float64(len(keys))) > 200 {
		t.Fatalf("batch full-span %g", b.Results[0].Value)
	}
	if b.Results[2].Value != 0 {
		t.Fatalf("empty range value %g", b.Results[2].Value)
	}

	// Inserts route to owning shards and show up in per-shard buffers.
	var ins InsertResponse
	mustPost(t, ts, "/v1/indexes/geo/insert", InsertRequest{Records: []Record{
		{Key: st.ShardStats[0].KeyLo - 5}, {Key: st.ShardStats[3].KeyHi + 5},
	}}, &ins)
	if ins.Inserted != 2 {
		t.Fatalf("insert response %+v", ins)
	}
	get(t, ts, "/v1/indexes/geo", &st)
	if st.ShardStats[0].BufferLen != 1 || st.ShardStats[3].BufferLen != 1 {
		t.Fatalf("buffered inserts not shard-local: %+v", st.ShardStats)
	}
	if st.Records != len(keys)+2 {
		t.Fatalf("records %d, want %d", st.Records, len(keys)+2)
	}

	// Rebuild folds every buffer (fresh response struct: zero-valued fields
	// are omitted from the JSON and must not inherit stale values).
	var rebuilt StatsResponse
	mustPost(t, ts, "/v1/indexes/geo/rebuild", struct{}{}, &rebuilt)
	if rebuilt.BufferLen != 0 || rebuilt.Records != len(keys)+2 {
		t.Fatalf("after rebuild: %+v", rebuilt)
	}

	// /v1/stats reports the shard fleet.
	var gs ServerStats
	get(t, ts, "/v1/stats", &gs)
	if gs.ShardedIndexes != 1 || gs.TotalShards != 4 || len(gs.PerIndexShards["geo"]) != 4 {
		t.Fatalf("server stats: %+v", gs)
	}
}

// TestShardedStaticCreateAndMarshalRoundTrip creates a static sharded
// index, round-trips it through /marshal + /restore, and checks identical
// answers.
func TestShardedStaticCreateAndMarshalRoundTrip(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s)
	defer ts.Close()

	keys := data.GenTweet(3000, 33)
	var st StatsResponse
	mustPost(t, ts, "/v1/indexes", CreateRequest{
		Name: "snap", Agg: "count", Keys: keys, EpsAbs: 40, Shards: 3,
	}, &st)
	if st.Dynamic || st.Shards != 3 {
		t.Fatalf("stats %+v", st)
	}
	var q1 QueryResponse
	mustPost(t, ts, "/v1/indexes/snap/query", QueryRequest{Lo: 0, Hi: 40}, &q1)

	blob := mustGetRaw(t, ts, "/v1/indexes/snap/marshal")
	var restored StatsResponse
	mustPost(t, ts, "/v1/indexes/copy/restore", RestoreRequest{Blob: b64(blob)}, &restored)
	if restored.Shards != 3 {
		t.Fatalf("restored stats %+v", restored)
	}
	var q2 QueryResponse
	mustPost(t, ts, "/v1/indexes/copy/query", QueryRequest{Lo: 0, Hi: 40}, &q2)
	if math.Float64bits(q1.Value) != math.Float64bits(q2.Value) || q1.Bound != q2.Bound {
		t.Fatalf("restored drift: %+v vs %+v", q1, q2)
	}
	// Static sharded indexes reject inserts.
	raw, _ := json.Marshal(InsertRequest{Records: []Record{{Key: 1}}})
	resp, err := ts.Client().Post(ts.URL+"/v1/indexes/snap/insert", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("insert into static sharded: %d", resp.StatusCode)
	}
}

// TestShardedDurableRecovery is the per-shard durability contract: a
// sharded dynamic index on a durable server writes one snapshot+WAL pair
// per shard; after an unclean stop (no Close, like SIGKILL) every
// acknowledged insert is answered again, per-shard WALs replay into their
// own shards, and the manifest drives recovery.
func TestShardedDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)

	keys := data.GenTweet(3000, 35)
	var st StatsResponse
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 4,
	}, &st)
	// Per-shard files exist after create.
	store, _ := persist.Open(dir)
	man, err := store.ReadShardManifest("geo")
	if err != nil || man.Shards != 4 {
		t.Fatalf("manifest after create: %+v, %v", man, err)
	}
	for i := 0; i < 4; i++ {
		if _, err := store.ReadShardSnapshot("geo", i); err != nil {
			t.Fatalf("shard %d snapshot after create: %v", i, err)
		}
	}
	// Acknowledged inserts, spread across shards.
	recs := []Record{
		{Key: st.ShardStats[0].KeyLo - 3}, {Key: st.ShardStats[1].KeyLo + 0.00017},
		{Key: st.ShardStats[2].KeyLo + 0.00017}, {Key: st.ShardStats[3].KeyHi + 3},
	}
	var ins InsertResponse
	mustPost(t, ts1, "/v1/indexes/geo/insert", InsertRequest{Records: recs}, &ins)
	if ins.Inserted != 4 || !ins.Durable {
		t.Fatalf("insert response %+v", ins)
	}
	var before QueryResponse
	mustPost(t, ts1, "/v1/indexes/geo/query", QueryRequest{Lo: -200, Hi: 200}, &before)
	ts1.Close() // unclean: no s1.Close(), WALs not folded into snapshots

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Close()
	if s2.Recovery().Indexes != 1 || s2.Recovery().ReplayedInserts != 4 {
		t.Fatalf("recovery: %+v", s2.Recovery())
	}
	var after QueryResponse
	mustPost(t, ts2, "/v1/indexes/geo/query", QueryRequest{Lo: -200, Hi: 200}, &after)
	if math.Float64bits(before.Value) != math.Float64bits(after.Value) {
		t.Fatalf("recovered answer %g, want %g", after.Value, before.Value)
	}
	get(t, ts2, "/v1/indexes/geo", &st)
	if st.Shards != 4 || st.Records != len(keys)+4 {
		t.Fatalf("recovered stats %+v", st)
	}
	// Each replayed insert landed back in its own shard's buffer.
	for i, r := range recs {
		sh := 0
		for j := 1; j < 4; j++ {
			if st.ShardStats[j].KeyLo <= r.Key {
				sh = j
			}
		}
		if st.ShardStats[sh].BufferLen == 0 {
			t.Fatalf("insert %d (%g) not in shard %d buffer: %+v", i, r.Key, sh, st.ShardStats)
		}
	}
	// A snapshot pass folds the WALs; recovery then replays nothing.
	if err := s2.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	s3 := newDurable(t, dir)
	defer s3.Close()
	if s3.Recovery().ReplayedInserts != 0 || s3.Recovery().SkippedInserts != 0 {
		t.Fatalf("post-snapshot recovery replayed: %+v", s3.Recovery())
	}
}

// TestShardedRecoveryShardFailures: a corrupt shard snapshot fails the
// whole index (no silent key-space holes), while a corrupt shard WAL is
// set aside and only that shard recovers to its snapshot.
func TestShardedRecoveryShardFailures(t *testing.T) {
	keys := data.GenTweet(2000, 37)

	// Corrupt one shard's snapshot → index skipped entirely.
	dir1 := t.TempDir()
	s1 := newDurable(t, dir1)
	ts1 := httptest.NewServer(s1)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 3,
	}, nil)
	ts1.Close()
	store1, _ := persist.Open(dir1)
	path := store1.ShardSnapshotPath("geo", 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newDurable(t, dir1)
	defer s2.Close()
	if s2.Recovery().Indexes != 0 || s2.Recovery().CorruptSkipped != 1 {
		t.Fatalf("corrupt shard snapshot recovery: %+v", s2.Recovery())
	}

	// Corrupt one shard's WAL header → that log is set aside, the index
	// recovers, the other shards' WALs still replay.
	dir2 := t.TempDir()
	s3 := newDurable(t, dir2)
	ts3 := httptest.NewServer(s3)
	var st StatsResponse
	mustPost(t, ts3, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 3,
	}, &st)
	var ins InsertResponse
	mustPost(t, ts3, "/v1/indexes/geo/insert", InsertRequest{Records: []Record{
		{Key: st.ShardStats[0].KeyLo - 2}, {Key: st.ShardStats[2].KeyHi + 2},
	}}, &ins)
	if ins.Inserted != 2 {
		t.Fatalf("insert %+v", ins)
	}
	ts3.Close() // unclean
	store2, _ := persist.Open(dir2)
	if err := os.WriteFile(store2.ShardWALPath("geo", 0), []byte("garbage header"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4 := newDurable(t, dir2)
	defer s4.Close()
	rec := s4.Recovery()
	if rec.Indexes != 1 {
		t.Fatalf("recovery with corrupt shard WAL: %+v", rec)
	}
	// Shard 0's insert is lost with its log (recovered to snapshot); shard
	// 2's insert survived via its own WAL.
	if rec.ReplayedInserts != 1 {
		t.Fatalf("replayed %d inserts, want 1 (shard 2 only): %+v", rec.ReplayedInserts, rec)
	}
}

// TestRecreateAfterCorruptSkipNoPhantomReplay: when a sharded index is
// skipped at boot (corrupt shard snapshot) its WAL files — holding the
// dead index's acknowledged inserts — stay on disk. Re-creating the name
// must purge them, or the NEXT boot would replay the dead index's records
// into the new one.
func TestRecreateAfterCorruptSkipNoPhantomReplay(t *testing.T) {
	dir := t.TempDir()
	keys := data.GenTweet(1200, 43)
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)
	var st StatsResponse
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys[:600], EpsAbs: 50, Shards: 2,
	}, &st)
	var ins InsertResponse
	mustPost(t, ts1, "/v1/indexes/geo/insert", InsertRequest{Records: []Record{
		{Key: st.ShardStats[0].KeyLo - 1}, {Key: st.ShardStats[1].KeyHi + 1},
	}}, &ins)
	if ins.Inserted != 2 {
		t.Fatalf("insert %+v", ins)
	}
	ts1.Close() // unclean: the 2 inserts live only in the shard WALs
	store, _ := persist.Open(dir)
	raw, err := os.ReadFile(store.ShardSnapshotPath("geo", 0))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(store.ShardSnapshotPath("geo", 0), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	if s2.Recovery().CorruptSkipped != 1 {
		t.Fatalf("recovery: %+v", s2.Recovery())
	}
	// Re-create the name over fresh data; the old WAL records must die here.
	mustPost(t, ts2, "/v1/indexes", CreateRequest{
		Name: "geo", Agg: "count", Dynamic: true, Keys: keys[600:], EpsAbs: 50, Shards: 2,
	}, nil)
	ts2.Close() // unclean again

	s3 := newDurable(t, dir)
	defer s3.Close()
	ts3 := httptest.NewServer(s3)
	defer ts3.Close()
	if s3.Recovery().Indexes != 1 || s3.Recovery().ReplayedInserts != 0 {
		t.Fatalf("phantom replay: %+v", s3.Recovery())
	}
	var got StatsResponse
	get(t, ts3, "/v1/indexes/geo", &got)
	if got.Records != 600 {
		t.Fatalf("recovered %d records, want 600 (no phantoms from the dead index)", got.Records)
	}
}

// TestRestoreSwitchesShardKinds: restoring a plain dynamic blob over a
// sharded index (and vice versa) retires the other kind's durable state so
// recovery follows the new shape.
func TestRestoreSwitchesShardKinds(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurable(t, dir)
	ts1 := httptest.NewServer(s1)

	keys := data.GenTweet(1500, 39)
	mustPost(t, ts1, "/v1/indexes", CreateRequest{
		Name: "mut", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 3,
	}, nil)
	// Build a PLAIN dynamic blob from a scratch server and restore it over
	// the sharded index.
	scratch := New()
	tsScratch := httptest.NewServer(scratch)
	mustPost(t, tsScratch, "/v1/indexes", CreateRequest{
		Name: "tmp", Agg: "count", Dynamic: true, Keys: keys[:800], EpsAbs: 50,
	}, nil)
	plainBlob := mustGetRaw(t, tsScratch, "/v1/indexes/tmp/marshal")
	tsScratch.Close()

	var st StatsResponse
	mustPost(t, ts1, "/v1/indexes/mut/restore", RestoreRequest{Blob: b64(plainBlob)}, &st)
	if st.Shards != 0 || st.Records != 800 {
		t.Fatalf("restored plain stats %+v", st)
	}
	store, _ := persist.Open(dir)
	if _, err := store.ReadShardManifest("mut"); !os.IsNotExist(err) {
		t.Fatalf("manifest survived plain restore: %v", err)
	}
	ts1.Close() // unclean
	s2 := newDurable(t, dir)
	ts2 := httptest.NewServer(s2)
	if s2.Recovery().Indexes != 1 {
		t.Fatalf("recovery after kind switch: %+v", s2.Recovery())
	}
	get(t, ts2, "/v1/indexes/mut", &st)
	if st.Shards != 0 || st.Records != 800 {
		t.Fatalf("recovered plain stats %+v", st)
	}

	// Now restore a SHARDED dynamic blob over the plain index.
	scratch2 := New()
	tsScratch2 := httptest.NewServer(scratch2)
	mustPost(t, tsScratch2, "/v1/indexes", CreateRequest{
		Name: "tmp", Agg: "count", Dynamic: true, Keys: keys, EpsAbs: 50, Shards: 4,
	}, nil)
	shardedBlob := mustGetRaw(t, tsScratch2, "/v1/indexes/tmp/marshal")
	tsScratch2.Close()
	mustPost(t, ts2, "/v1/indexes/mut/restore", RestoreRequest{Blob: b64(shardedBlob)}, &st)
	if st.Shards != 4 || st.Records != len(keys) {
		t.Fatalf("restored sharded stats %+v", st)
	}
	if _, err := os.Stat(store.SnapshotPath("mut")); !os.IsNotExist(err) {
		t.Fatalf("plain snapshot survived sharded restore: %v", err)
	}
	ts2.Close() // unclean
	s3 := newDurable(t, dir)
	defer s3.Close()
	ts3 := httptest.NewServer(s3)
	defer ts3.Close()
	get(t, ts3, "/v1/indexes/mut", &st)
	if st.Shards != 4 || st.Records != len(keys) {
		t.Fatalf("recovered sharded stats %+v", st)
	}
}
