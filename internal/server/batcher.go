package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"sync"

	polyfit "repro"
)

// Batched admission (batcher.go): point queries that have to wait for an
// admission slot are collected per (index entry, data generation), and
// when one of them finally wins a slot it executes the whole group as a
// single QueryBatch sorted sweep — one index traversal, one slot — then
// fans the per-range results back out, each waiter getting its own
// certified Bound. Queue depth stops being pure latency: under overload,
// the deeper the queue, the more queries each traversal amortises.
//
// Grouping by generation keeps the semantics identical to solo execution:
// every waiter in a group observes exactly the data its own arrival
// generation promised (QueryBatch reads one snapshot), and the response
// bytes are the same QueryResponse encoding the solo path produces, so
// coalescing, caching, and batching all interoperate on one body format.
//
// Two query shapes never batch and take the plain blocking path instead:
// relative-error queries (QueryBatch has no eps_rel variant) and ranges
// with NaN endpoints (one NaN range fails the whole batch with
// ErrInvalidRange — it must fail alone).

// batchKey groups queued point queries that may legally share one sweep.
type batchKey struct {
	e   *entry
	gen uint64
}

// batchWaiter is one queued point query. The waiter blocks in
// acquireAbortable with done as its abort channel; whoever claims the
// waiter writes the outcome fields and closes done (write-before-close
// publishes them). retry asks the waiter to re-enter the queue because
// its sweeper's context died before producing an answer.
type batchWaiter struct {
	rng    polyfit.Range
	done   chan struct{}
	status int
	body   []byte
	retry  bool
}

// deliver publishes the waiter's response and wakes it.
func (w *batchWaiter) deliver(status int, body []byte) {
	w.status, w.body = status, body
	close(w.done)
}

// sendBack wakes the waiter with no result, telling it to rejoin the
// queue under its own context.
func (w *batchWaiter) sendBack() {
	w.retry = true
	close(w.done)
}

// queryBatcher holds the groups of currently-queued point queries.
type queryBatcher struct {
	mu     sync.Mutex
	groups map[batchKey][]*batchWaiter // guarded by mu
}

// join registers w as queued under key.
func (b *queryBatcher) join(key batchKey, w *batchWaiter) {
	b.mu.Lock()
	if b.groups == nil {
		b.groups = make(map[batchKey][]*batchWaiter)
	}
	b.groups[key] = append(b.groups[key], w)
	b.mu.Unlock()
}

// leave withdraws w from key's group, reporting whether it was still
// there. false means a sweep claimed w first: its done channel WILL be
// closed, so the caller must collect the outcome instead of abandoning.
func (b *queryBatcher) leave(key batchKey, w *batchWaiter) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	ws := b.groups[key]
	for i, x := range ws {
		if x != w {
			continue
		}
		ws[i] = ws[len(ws)-1]
		ws = ws[:len(ws)-1]
		if len(ws) == 0 {
			delete(b.groups, key)
		} else {
			b.groups[key] = ws
		}
		return true
	}
	return false
}

// take claims the entire group queued under key (leaving the map empty
// for later arrivals) and reports whether self was still in it — false
// means a concurrent sweep already claimed self, and anything returned
// here joined after that sweep's cut.
func (b *queryBatcher) take(key batchKey, self *batchWaiter) ([]*batchWaiter, bool) {
	b.mu.Lock()
	ws := b.groups[key]
	delete(b.groups, key)
	b.mu.Unlock()
	for _, x := range ws {
		if x == self {
			return ws, true
		}
	}
	return ws, false
}

// pointQuery executes one point query under admission control. It is the
// flight leader's body in handleQuery: cache and coalescing have already
// missed by the time it runs.
func (s *Server) pointQuery(ctx context.Context, e *entry, req QueryRequest, key flightKey) (int, []byte) {
	// Fast path: a slot is free right now — no queueing, nothing to batch.
	if s.adm.tryAcquire() {
		defer s.adm.release()
		runQueryDelayHooks(ctx)
		return s.execQuery(ctx, e, req)
	}
	// Shapes a group sweep cannot express wait solo (see file comment).
	if req.EpsRel > 0 || math.IsNaN(req.Lo) || math.IsNaN(req.Hi) {
		if err := s.adm.acquire(ctx); err != nil {
			return s.admissionFailure(err)
		}
		defer s.adm.release()
		runQueryDelayHooks(ctx)
		return s.execQuery(ctx, e, req)
	}
	return s.batchedQuery(ctx, e, req, key)
}

// batchedQuery queues the query for a group sweep: join the (entry, gen)
// group, then wait for whichever comes first — a slot of our own (we
// sweep the group), another waiter's sweep claiming us (we collect its
// answer), the queue overflowing, or our context dying.
func (s *Server) batchedQuery(ctx context.Context, e *entry, req QueryRequest, key flightKey) (int, []byte) {
	bk := batchKey{e: e, gen: key.gen}
	for {
		w := &batchWaiter{rng: polyfit.Range{Lo: req.Lo, Hi: req.Hi}, done: make(chan struct{})}
		s.batcher.join(bk, w)
		err := s.adm.acquireAbortable(ctx, w.done)
		switch {
		case err == nil:
			// We hold a slot: claim the whole group and sweep it.
			group, selfIn := s.batcher.take(bk, w)
			if selfIn {
				return func() (int, []byte) {
					defer s.adm.release() // even if the sweep (or a test hook) panics
					if len(group) == 1 {
						// Alone in the queue after all: plain solo execution.
						runQueryDelayHooks(ctx)
						return s.execQuery(ctx, e, req)
					}
					s.sweepGroup(ctx, e, group, w)
					// sweepGroup always delivers to self — success, failure,
					// or our own ctx error — never a sendBack.
					return w.status, w.body
				}()
			}
			// A concurrent sweep claimed us between the slot grant and the
			// take. Anything in group joined after that cut — sweep it under
			// the slot we hold rather than making it wait for another — then
			// collect our own answer from our claimer.
			func() {
				defer s.adm.release()
				if len(group) > 0 {
					s.sweepGroup(ctx, e, group, nil)
				}
			}()
			if st, body, ok := s.collect(ctx, w); ok {
				return st, body
			}
			continue

		case errors.Is(err, errAborted):
			// Claimed and answered (or sent back) by another waiter's sweep.
			if w.retry {
				continue
			}
			return w.status, w.body

		case errors.Is(err, errShed):
			if s.batcher.leave(bk, w) {
				s.adm.shed.Add(1)
				return s.admissionFailure(errShed)
			}
			// A sweep claimed us just as the queue overflowed: we are part
			// of it, so collect its answer — the waiter ends 200, not 429.
			if st, body, ok := s.collect(ctx, w); ok {
				return st, body
			}
			continue

		default: // our own ctx died while queued
			if s.batcher.leave(bk, w) {
				return s.admissionFailure(err)
			}
			if st, body, ok := s.collect(ctx, w); ok {
				return st, body
			}
			continue
		}
	}
}

// collect waits for a claimed waiter's outcome: the claiming sweep always
// closes done eventually, but our own context stays the cutoff — a dead
// claimer must not hold this request past its deadline. ok=false means
// the sweep sent the waiter back to requeue.
func (s *Server) collect(ctx context.Context, w *batchWaiter) (int, []byte, bool) {
	select {
	case <-w.done:
		if w.retry {
			return 0, nil, false
		}
		return w.status, w.body, true
	case <-ctx.Done():
		st, body := s.cancelFailure(ctx.Err(), "while queued")
		return st, body, true
	}
}

// sweepGroup executes one claimed group as a single QueryBatch sorted
// sweep under the admission slot the caller holds, and delivers each
// waiter its own per-range result. self is the caller's waiter when it is
// part of the group (nil when sweeping late joiners on behalf of others).
//
// Failure discipline: a context error is the CALLER's deadline, not the
// group's — self takes the failure and everyone else is sent back to the
// queue to run under their own deadlines. Any other error (unreachable
// for the shapes admitted here — NaN ranges never batch) is delivered to
// the whole group, and a panic delivers a 500 to every unanswered waiter
// before propagating to the ServeHTTP recovery middleware.
func (s *Server) sweepGroup(ctx context.Context, e *entry, group []*batchWaiter, self *batchWaiter) {
	s.batchedGroups.Add(1)
	s.batchedQueries.Add(int64(len(group)))
	defer func() {
		if p := recover(); p != nil {
			st, body := jsonBody(http.StatusInternalServerError,
				errorResponse{Error: "internal error (panic recovered)"})
			for _, w := range group {
				if w.status == 0 && !w.retry {
					w.deliver(st, body)
				}
			}
			panic(p)
		}
	}()
	runQueryDelayHooks(ctx)
	ranges := make([]polyfit.Range, len(group))
	for i, w := range group {
		ranges[i] = w.rng
	}
	s.executed.Add(1)
	var results []polyfit.Result
	var err error
	if cq, ok := e.ix.(polyfit.ContextQuerier); ok {
		results, err = cq.QueryBatchContext(ctx, ranges)
	} else {
		results, err = e.ix.QueryBatch(ranges)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			for _, w := range group {
				if w == self {
					w.deliver(s.cancelFailure(err, "during a group sweep"))
				} else {
					w.sendBack()
				}
			}
			return
		}
		st, body := s.queryFailure(err)
		for _, w := range group {
			w.deliver(st, body)
		}
		return
	}
	for i, w := range group {
		res := results[i]
		w.deliver(jsonBody(http.StatusOK,
			QueryResponse{Value: res.Value, Found: res.Found, Exact: res.Exact, Bound: res.Bound}))
	}
}
