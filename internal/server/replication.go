package server

// Leader-side replication (see internal/cluster for the protocol): the
// server streams each dynamic index's WAL tail to read replicas, tracks
// the watermark every follower has acknowledged, and holds WAL truncation
// back to the slowest live follower so a replica can always resume from
// the log.
//
// Sequence space. Each WAL is a stream of records numbered from the
// moment its entry registered; the file holds the stream suffix starting
// at repl.start (everything below was folded into a snapshot and
// truncated). A record's file offset is therefore
// WALHeaderSize + (seq − start)·WALRecordSize, valid only while start is
// pinned — every tail read happens under repl.mu, the same lock the
// truncation path advances start under.
//
// Incarnations. Sequence numbers are only comparable within one
// (epoch, instance): epoch identifies this server boot, instance one
// registration of the index. An explicit rebuild or a degraded-WAL reset
// rewrites history (the snapshot absorbs records the log no longer
// carries, or the base re-fits), so both bump the instance; restores and
// re-creates produce a new entry and get a fresh instance on
// registration. A follower presenting stale coordinates is answered 410
// and re-joins from a fresh snapshot — safe, because replay is
// idempotent.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/persist"
)

// replState is an entry's leader-side replication coordinates.
type replState struct {
	mu sync.Mutex
	// instance identifies this incarnation of the index's sequence
	// space; bumped whenever the WAL stops being a faithful suffix of
	// the insert history (explicit rebuild, degraded reset). guarded by mu.
	instance uint64
	// start is, per WAL, the sequence number of the first record still
	// in the file. guarded by mu.
	start []int64
}

// numLogs returns how many WAL streams the entry replicates over (0 for
// static or non-durable entries — they ship by snapshot only).
func numLogs(e *entry) int {
	if len(e.shardWALs) > 0 {
		return len(e.shardWALs)
	}
	if e.wal != nil {
		return 1
	}
	return 0
}

// walOf returns the entry's log-th WAL. Callers have validated log.
func walOf(e *entry, log int) *persist.WAL {
	if len(e.shardWALs) > 0 {
		return e.shardWALs[log]
	}
	return e.wal
}

// initRepl assigns a fresh incarnation to a just-built entry. Called
// before the entry is published, so the lock is uncontended — held anyway
// to keep the guard invariant unconditional.
func (s *Server) initRepl(e *entry) {
	e.repl.mu.Lock()
	defer e.repl.mu.Unlock()
	e.repl.instance = s.instanceSeq.Add(1)
	e.repl.start = make([]int64, numLogs(e))
}

// bumpInstance starts a new incarnation: followers streaming the old one
// get 410 on their next poll and re-join from a fresh snapshot. The
// current WAL contents become the new stream's prefix (start resets to
// zero).
func (s *Server) bumpInstance(e *entry) {
	e.repl.mu.Lock()
	defer e.repl.mu.Unlock()
	e.repl.instance = s.instanceSeq.Add(1)
	for i := range e.repl.start {
		e.repl.start[i] = 0
	}
}

// replCoords reads the entry's incarnation and per-stream end sequences
// (next to be assigned) in one consistent view.
func (s *Server) replCoords(e *entry) (instance uint64, seqs []int64) {
	e.repl.mu.Lock()
	defer e.repl.mu.Unlock()
	seqs = make([]int64, len(e.repl.start))
	for i := range e.repl.start {
		seqs[i] = e.repl.start[i] + walOf(e, i).Records()
	}
	return e.repl.instance, seqs
}

// truncateGated drops the WAL prefix below cut — unless a live follower
// has only acknowledged an earlier sequence, in which case the cut is
// held back to its watermark so the records it still needs stay
// streamable. Advances the stream origin to match. Dead followers stop
// pinning the log once their ack ages past the follower TTL.
func (s *Server) truncateGated(name string, e *entry, log int, wal *persist.WAL, cut int64) error {
	e.repl.mu.Lock()
	defer e.repl.mu.Unlock()
	if floor, ok := s.acks.floor(name, e.repl.instance, log, s.followerTTL); ok {
		off := persist.WALHeaderSize + (floor-e.repl.start[log])*persist.WALRecordSize
		if off < persist.WALHeaderSize {
			off = persist.WALHeaderSize
		}
		if off < cut {
			cut = off
		}
	}
	if cut <= persist.WALHeaderSize {
		return nil
	}
	if err := wal.TruncateTo(cut); err != nil {
		return err
	}
	e.repl.start[log] += (cut - persist.WALHeaderSize) / persist.WALRecordSize
	return nil
}

// --- follower ack table -----------------------------------------------------

// replAcks tracks what every follower has acknowledged. A tail poll's
// from-cursor is the acknowledgement: records below it are applied on
// that follower.
type replAcks struct {
	mu        sync.Mutex
	followers map[string]*followerAck // guarded by mu
}

// followerAck rows live inside replAcks.followers and are only reached
// through it, so every access already holds the owning table's mu (a
// cross-struct guard the lockguard annotation grammar cannot name).
type followerAck struct {
	lastSeen time.Time
	acks     map[string]ackVector // keyed by index name
}

// ackVector is one follower's acknowledged sequence vector for one index
// incarnation.
type ackVector struct {
	instance uint64
	seqs     []int64
}

// record notes a follower's tail poll: it is alive now, and has applied
// everything below seqs for the named index incarnation.
func (a *replAcks) record(follower, index string, instance uint64, seqs []int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.followers == nil {
		a.followers = make(map[string]*followerAck)
	}
	f := a.followers[follower]
	if f == nil {
		f = &followerAck{acks: make(map[string]ackVector)}
		a.followers[follower] = f
	}
	f.lastSeen = time.Now()
	f.acks[index] = ackVector{instance: instance, seqs: append([]int64(nil), seqs...)}
}

// floor returns the minimum acknowledged sequence for (index, instance,
// log) across followers seen within ttl, and whether any such follower
// exists.
func (a *replAcks) floor(index string, instance uint64, log int, ttl time.Duration) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cutoff := time.Now().Add(-ttl)
	var floor int64
	found := false
	for _, f := range a.followers {
		if f.lastSeen.Before(cutoff) {
			continue
		}
		v, ok := f.acks[index]
		if !ok || v.instance != instance || log >= len(v.seqs) {
			continue
		}
		if !found || v.seqs[log] < floor {
			floor = v.seqs[log]
			found = true
		}
	}
	return floor, found
}

// FollowerStat is one follower's row in /v1/stats: its ID, how long ago
// it last polled, and the sequence watermark it has acknowledged per
// index.
type FollowerStat struct {
	ID           string             `json:"id"`
	LastSeenMS   int64              `json:"last_seen_ms"`
	AckWatermark map[string][]int64 `json:"ack_watermark"`
	WithinTTL    bool               `json:"within_ttl"`
}

// stats snapshots the ack table for /v1/stats.
func (a *replAcks) stats(ttl time.Duration) []FollowerStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	out := make([]FollowerStat, 0, len(a.followers))
	for id, f := range a.followers {
		st := FollowerStat{
			ID:           id,
			LastSeenMS:   now.Sub(f.lastSeen).Milliseconds(),
			AckWatermark: make(map[string][]int64, len(f.acks)),
			WithinTTL:    now.Sub(f.lastSeen) <= ttl,
		}
		for name, v := range f.acks {
			st.AckWatermark[name] = append([]int64(nil), v.seqs...)
		}
		out = append(out, st)
	}
	return out
}

// --- replication endpoints --------------------------------------------------

// maxTailRecords caps how many records one tail frame carries (~1.3 MiB
// per stream); a further-behind follower just polls again.
const maxTailRecords = 65536

// maxTailWait caps the long-poll budget a follower may request.
const maxTailWait = 5 * time.Second

// handleClusterStatus implements GET /v1/cluster/status: the node's role
// and every index's replication coordinates, the map a follower (or the
// router's health probe) steers by.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	st := cluster.NodeStatus{
		Role:      "leader",
		Epoch:     s.epoch,
		Advertise: s.advertise,
	}
	if s.follower != nil {
		st.Role = "follower"
		st.Leader = s.follower.leader
		st.StalenessMS = s.follower.stalenessMS()
	}
	s.mu.RLock()
	entries := make(map[string]*entry, len(s.indexes))
	for name, e := range s.indexes {
		entries[name] = e
	}
	s.mu.RUnlock()
	for name, e := range entries {
		instance, seqs := s.replCoords(e)
		st.Indexes = append(st.Indexes, cluster.IndexStatus{
			Name:     name,
			Dynamic:  e.ins != nil,
			Instance: instance,
			Seqs:     seqs,
		})
	}
	sortIndexStatus(st.Indexes)
	writeJSON(w, http.StatusOK, st)
}

func sortIndexStatus(rows []cluster.IndexStatus) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}

// handleClusterSnapshot implements GET /v1/cluster/snapshot/{name}: the
// index's current blob, stamped with the coordinates it covers. The
// sequence vector is read BEFORE marshalling: every record below it was
// applied to memory before it reached the log, so the blob taken after
// is guaranteed to contain it — a tail started at the reported vector
// replays at most idempotent duplicates, never misses a record.
func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerRepl(w) {
		return
	}
	_, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	instance, seqs := s.replCoords(e)
	blob, err := e.ix.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Polyfit-Epoch", strconv.FormatInt(s.epoch, 10))
	h.Set("X-Polyfit-Instance", strconv.FormatUint(instance, 10))
	h.Set("X-Polyfit-Seqs", cluster.FormatSeqs(seqs))
	w.WriteHeader(http.StatusOK)
	w.Write(blob) //nolint:errcheck
}

// handleClusterTail implements GET /v1/cluster/wal/{name}: stream the
// records from the follower's cursor to the current end of each WAL,
// long-polling up to wait_ms when the follower is caught up. The cursor
// is also the follower's acknowledgement and is recorded before the read.
// Any coordinate mismatch — wrong epoch, wrong instance, a cursor below
// the stream origin — answers 410 Gone: resync from the snapshot.
func (s *Server) handleClusterTail(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerRepl(w) {
		return
	}
	name, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	epoch, err := strconv.ParseInt(q.Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad epoch: %w", err))
		return
	}
	instance, err := strconv.ParseUint(q.Get("instance"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad instance: %w", err))
		return
	}
	from, err := cluster.ParseSeqs(q.Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait_ms %q", ms))
			return
		}
		wait = time.Duration(v) * time.Millisecond
		if wait > maxTailWait {
			wait = maxTailWait
		}
	}
	nlogs := numLogs(e)
	if nlogs == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("index %q has no replication streams (static or non-durable)", name))
		return
	}
	if len(from) != nlogs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cursor has %d streams, index has %d", len(from), nlogs))
		return
	}
	if follower := q.Get("follower"); follower != "" {
		s.acks.record(follower, name, instance, from)
	}
	deadline := time.Now().Add(wait)
	for {
		tail, ok := s.readTail(e, epoch, instance, from)
		if !ok {
			writeError(w, http.StatusGone, fmt.Errorf("stream window gone for %q: resync from snapshot", name))
			return
		}
		hasRecords := false
		for _, f := range tail.Frames {
			if len(f.Records) > 0 {
				hasRecords = true
				break
			}
		}
		if hasRecords || time.Now().After(deadline) || r.Context().Err() != nil {
			body := tail.MarshalBinary()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(body) //nolint:errcheck
			return
		}
		select {
		case <-r.Context().Done():
			// Poll again once to produce a final (possibly empty) body.
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// readTail collects one frame per stream from the follower's cursor,
// holding repl.mu across the file reads so a concurrent truncation cannot
// shift the seq↔offset mapping mid-read. Reports !ok when the follower's
// coordinates no longer address this incarnation's log.
func (s *Server) readTail(e *entry, epoch int64, instance uint64, from []int64) (*cluster.Tail, bool) {
	e.repl.mu.Lock()
	defer e.repl.mu.Unlock()
	if epoch != s.epoch || instance != e.repl.instance {
		return nil, false
	}
	t := &cluster.Tail{Epoch: s.epoch, Instance: instance}
	for log := range from {
		wal := walOf(e, log)
		start := e.repl.start[log]
		end := start + wal.Records()
		if from[log] < start || from[log] > end {
			return nil, false
		}
		frame := cluster.TailFrame{Log: log, From: from[log], End: end}
		if from[log] < end {
			offset := persist.WALHeaderSize + (from[log]-start)*persist.WALRecordSize
			recs, _, err := wal.ReadFrom(offset)
			if err != nil {
				// The file changed underneath us (entry retired, WAL
				// closed): the stream is gone, not the server.
				return nil, false
			}
			if len(recs) > maxTailRecords {
				recs = recs[:maxTailRecords]
			}
			frame.Records = recs
		}
		t.Frames = append(t.Frames, frame)
	}
	return t, true
}

// rejectFollowerRepl turns away snapshot/tail requests on a follower
// (chained replication is not supported); the X-Polyfit-Leader header
// points the caller at the node that can serve them.
func (s *Server) rejectFollowerRepl(w http.ResponseWriter) bool {
	if s.follower == nil {
		return false
	}
	w.Header().Set("X-Polyfit-Leader", s.follower.leader)
	writeError(w, http.StatusConflict,
		fmt.Errorf("this node is a read replica of %s; fetch snapshots and tails from the leader", s.follower.leader))
	return true
}

// rejectFollowerWrite answers mutating requests on a follower with 409
// Conflict and a Leader hint header: the registry is owned by the
// replication stream, and a locally-accepted write would silently fork it.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if s.follower == nil {
		return false
	}
	w.Header().Set("X-Polyfit-Leader", s.follower.leader)
	writeError(w, http.StatusConflict,
		fmt.Errorf("read-only follower replicating from %s; send writes to the leader", s.follower.leader))
	return true
}
