// Package nn implements the small feed-forward networks of the paper's
// appendix (Table VI): architectures 1:X:1 and 1:X:Y:1 with tanh hidden
// units, trained with Adam on the normalised key-cumulative function. The
// experiment reproduced with this package is model selection for RMI —
// showing that NN leaves cost far more prediction time than linear
// regression at this scale.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully connected network with tanh hidden activations and a
// linear output.
type MLP struct {
	sizes   []int
	weights [][]float64 // weights[l][i*in+j]: layer l maps in→out
	biases  [][]float64
	// input/output normalisation (fit at training time)
	xMean, xScale float64
	yMean, yScale float64
}

// Config controls training.
type Config struct {
	Epochs    int     // default 200
	Batch     int     // default 64
	LR        float64 // default 1e-3
	Seed      int64   // weight init / shuffling seed
	ClipNorm  float64 // gradient clip (default 5)
	Verbosity int     // reserved; 0 = silent
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// New creates an MLP with the given layer sizes, e.g. [1, 8, 8, 1] for the
// paper's 1:8:8:1.
func New(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, errors.New("nn: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: invalid layer size %d", s)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: append([]int(nil), sizes...), xScale: 1, yScale: 1}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		limit := math.Sqrt(6.0 / float64(in+out)) // Xavier init
		for i := range w {
			w[i] = (2*rng.Float64() - 1) * limit
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m, nil
}

// Fit trains the network on (xs → ys) with Adam and MSE loss. Inputs and
// targets are normalised internally.
func (m *MLP) Fit(xs, ys []float64, cfg Config) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("nn: %d inputs, %d targets", len(xs), len(ys))
	}
	if m.sizes[0] != 1 || m.sizes[len(m.sizes)-1] != 1 {
		return errors.New("nn: Fit supports scalar input/output networks")
	}
	cfg = cfg.withDefaults()
	m.xMean, m.xScale = meanScale(xs)
	m.yMean, m.yScale = meanScale(ys)

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Adam state.
	mw, vw := zerosLike(m.weights), zerosLike(m.weights)
	mb, vb := zerosLike(m.biases), zerosLike(m.biases)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	gradW := zerosLike(m.weights)
	gradB := zerosLike(m.biases)
	acts := make([][]float64, len(m.sizes))
	deltas := make([][]float64, len(m.sizes))
	for l, s := range m.sizes {
		acts[l] = make([]float64, s)
		deltas[l] = make([]float64, s)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			zero(gradW)
			zero(gradB)
			for _, i := range idx[start:end] {
				x := (xs[i] - m.xMean) / m.xScale
				y := (ys[i] - m.yMean) / m.yScale
				m.forward(x, acts)
				// Backprop MSE.
				out := len(m.sizes) - 1
				deltas[out][0] = acts[out][0] - y
				for l := out - 1; l >= 1; l-- {
					in, outN := m.sizes[l], m.sizes[l+1]
					w := m.weights[l]
					for j := 0; j < in; j++ {
						s := 0.0
						for k := 0; k < outN; k++ {
							s += w[k*in+j] * deltas[l+1][k]
						}
						a := acts[l][j]
						deltas[l][j] = s * (1 - a*a) // tanh'
					}
				}
				for l := 0; l < len(m.weights); l++ {
					in, outN := m.sizes[l], m.sizes[l+1]
					for k := 0; k < outN; k++ {
						d := deltas[l+1][k]
						gradB[l][k] += d
						for j := 0; j < in; j++ {
							gradW[l][k*in+j] += d * acts[l][j]
						}
					}
				}
			}
			// Adam update with clipping.
			bs := float64(end - start)
			step++
			c1 := 1 - math.Pow(beta1, float64(step))
			c2 := 1 - math.Pow(beta2, float64(step))
			norm := 0.0
			for l := range gradW {
				for i := range gradW[l] {
					gradW[l][i] /= bs
					norm += gradW[l][i] * gradW[l][i]
				}
				for i := range gradB[l] {
					gradB[l][i] /= bs
					norm += gradB[l][i] * gradB[l][i]
				}
			}
			norm = math.Sqrt(norm)
			clip := 1.0
			if norm > cfg.ClipNorm {
				clip = cfg.ClipNorm / norm
			}
			for l := range m.weights {
				for i := range m.weights[l] {
					g := gradW[l][i] * clip
					mw[l][i] = beta1*mw[l][i] + (1-beta1)*g
					vw[l][i] = beta2*vw[l][i] + (1-beta2)*g*g
					m.weights[l][i] -= cfg.LR * (mw[l][i] / c1) / (math.Sqrt(vw[l][i]/c2) + eps)
				}
				for i := range m.biases[l] {
					g := gradB[l][i] * clip
					mb[l][i] = beta1*mb[l][i] + (1-beta1)*g
					vb[l][i] = beta2*vb[l][i] + (1-beta2)*g*g
					m.biases[l][i] -= cfg.LR * (mb[l][i] / c1) / (math.Sqrt(vb[l][i]/c2) + eps)
				}
			}
		}
	}
	return nil
}

// forward fills acts with layer activations for normalised input x.
func (m *MLP) forward(x float64, acts [][]float64) {
	acts[0][0] = x
	last := len(m.sizes) - 1
	for l := 0; l < last; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		b := m.biases[l]
		for k := 0; k < out; k++ {
			s := b[k]
			for j := 0; j < in; j++ {
				s += w[k*in+j] * acts[l][j]
			}
			if l+1 == last {
				acts[l+1][k] = s // linear output
			} else {
				acts[l+1][k] = math.Tanh(s)
			}
		}
	}
}

// Predict evaluates the trained network at a raw input.
func (m *MLP) Predict(x float64) float64 {
	acts := make([][]float64, len(m.sizes))
	for l, s := range m.sizes {
		acts[l] = make([]float64, s)
	}
	m.forward((x-m.xMean)/m.xScale, acts)
	return acts[len(acts)-1][0]*m.yScale + m.yMean
}

// Predictor returns an allocation-free closure for benchmarking prediction
// latency (Table VI's "prediction time" column).
func (m *MLP) Predictor() func(float64) float64 {
	acts := make([][]float64, len(m.sizes))
	for l, s := range m.sizes {
		acts[l] = make([]float64, s)
	}
	return func(x float64) float64 {
		m.forward((x-m.xMean)/m.xScale, acts)
		return acts[len(acts)-1][0]*m.yScale + m.yMean
	}
}

// NumParams returns the number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l]) + len(m.biases[l])
	}
	return n
}

// Arch renders the architecture in the appendix's 1:X:Y:1 notation.
func (m *MLP) Arch() string {
	s := ""
	for i, v := range m.sizes {
		if i > 0 {
			s += ":"
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}

func meanScale(v []float64) (mean, scale float64) {
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		scale += (x - mean) * (x - mean)
	}
	scale = math.Sqrt(scale / float64(len(v)))
	if scale == 0 {
		scale = 1
	}
	return mean, scale
}

func zerosLike(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = make([]float64, len(src[i]))
	}
	return out
}

func zero(dst [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] = 0
		}
	}
}
