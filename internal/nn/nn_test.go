package nn

import (
	"math"
	"testing"
)

func TestValidation(t *testing.T) {
	if _, err := New([]int{1}, 1); err == nil {
		t.Error("single layer should error")
	}
	if _, err := New([]int{1, 0, 1}, 1); err == nil {
		t.Error("zero-width layer should error")
	}
	m, _ := New([]int{1, 4, 1}, 1)
	if err := m.Fit(nil, nil, Config{}); err == nil {
		t.Error("empty training set should error")
	}
	if err := m.Fit([]float64{1}, []float64{1, 2}, Config{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	xs := make([]float64, 256)
	ys := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) + 10
	}
	m, err := New([]int{1, 4, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(xs, ys, Config{Epochs: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Normalised RMSE should be small.
	sse, scale := 0.0, 0.0
	for i := range xs {
		d := m.Predict(xs[i]) - ys[i]
		sse += d * d
		scale += ys[i] * ys[i]
	}
	if math.Sqrt(sse/scale) > 0.05 {
		t.Errorf("linear fit NRMSE %g too large", math.Sqrt(sse/scale))
	}
}

func TestLearnsSmoothNonlinear(t *testing.T) {
	xs := make([]float64, 512)
	ys := make([]float64, 512)
	for i := range xs {
		x := float64(i) / 511 * 6
		xs[i] = x
		ys[i] = math.Sin(x) * 5
	}
	m, err := New([]int{1, 16, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(xs, ys, Config{Epochs: 600, Seed: 3, LR: 3e-3}); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range xs {
		if d := math.Abs(m.Predict(xs[i]) - ys[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.5 { // amplitude is 5; a 16-unit net should get within 30%
		t.Errorf("sin fit worst error %g too large", worst)
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	a, _ := New([]int{1, 8, 1}, 5)
	b, _ := New([]int{1, 8, 1}, 5)
	_ = a.Fit(xs, ys, Config{Epochs: 50, Seed: 9})
	_ = b.Fit(xs, ys, Config{Epochs: 50, Seed: 9})
	for _, x := range xs {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestPredictorMatchesPredict(t *testing.T) {
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	m, _ := New([]int{1, 8, 8, 1}, 11)
	_ = m.Fit(xs, ys, Config{Epochs: 30, Seed: 11})
	f := m.Predictor()
	for _, x := range xs {
		if f(x) != m.Predict(x) {
			t.Fatal("Predictor disagrees with Predict")
		}
	}
}

func TestArchAndParams(t *testing.T) {
	m, _ := New([]int{1, 8, 8, 1}, 1)
	if m.Arch() != "1:8:8:1" {
		t.Errorf("Arch = %q", m.Arch())
	}
	// params: 1*8+8 + 8*8+8 + 8*1+1 = 16 + 72 + 9 = 97
	if m.NumParams() != 97 {
		t.Errorf("NumParams = %d, want 97", m.NumParams())
	}
}

func TestDeeperNetSlowerPrediction(t *testing.T) {
	// Table VI's qualitative result: prediction cost grows with width/depth.
	small, _ := New([]int{1, 4, 1}, 1)
	big, _ := New([]int{1, 16, 16, 1}, 1)
	if small.NumParams() >= big.NumParams() {
		t.Error("parameter counts not ordered")
	}
}

func BenchmarkPredict1_8_1(b *testing.B) {
	m, _ := New([]int{1, 8, 1}, 1)
	f := m.Predictor()
	for i := 0; i < b.N; i++ {
		f(0.5)
	}
}

func BenchmarkPredict1_16_16_1(b *testing.B) {
	m, _ := New([]int{1, 16, 16, 1}, 1)
	f := m.Predictor()
	for i := 0; i < b.N; i++ {
		f(0.5)
	}
}
