// Package segment implements the index-size-minimising segmentations of
// Section IV-D of the paper: the Greedy Segmentation method (GS, Algorithm 1)
// accelerated with exponential search, the plain one-key-at-a-time GS used
// for the ablation study, and the dynamic-programming optimal reference
// against which GS optimality (Theorem 1) is property-tested.
//
// Construction is the paper's own bottleneck (Fig. 14c), so the greedy path
// is engineered for speed: every worker owns a reusable minimax.Fitter (zero
// allocations per fit) and Config.Parallelism splits the key array across
// goroutines, with chunk junctions re-grown over the full array so the
// parallel result is byte-identical to the serial one.
package segment

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/minimax"
	"repro/internal/poly"
)

// Segment is one fitted interval I = [Lo, Hi]: a polynomial satisfying the
// bounded δ-error constraint (Definition 3) over the sample points with
// indexes [First, Last] of the source arrays.
type Segment struct {
	First, Last int     // inclusive index range into xs/ys
	Lo, Hi      float64 // key range: xs[First], xs[Last]
	Fit         minimax.Fit1D
}

// Backend selects the minimax solver used for each curve fit.
type Backend int

// Fitting backends.
const (
	Exchange Backend = iota // discrete Remez exchange (default, fast)
	DualLP                  // revised dual simplex on LP (9)
)

// Config controls a segmentation run.
type Config struct {
	Degree  int     // polynomial degree (the paper's deg; default 2 per §VII-B)
	Delta   float64 // bounded error δ (Definition 3)
	Backend Backend
	// NoExpSearch disables the exponential+binary breakpoint search and
	// grows segments one key at a time exactly as written in Algorithm 1.
	// Kept for the ablation benchmarks; results are identical (Lemma 1).
	NoExpSearch bool
	// Parallelism is the number of goroutines used to segment the key
	// array; values ≤ 1 run serially. Workers segment equal chunks
	// independently and the stitching pass re-grows each chunk-junction
	// segment over the full array, so the output is identical to the serial
	// result for every worker count (greedy's grow step is a pure function
	// of its start index — Lemma 1 makes the breakpoint unique). Tiny
	// inputs are segmented serially regardless.
	Parallelism int
}

// minKeysPerWorker caps the worker count so chunks stay large enough for
// the stitching overhead (one re-grown segment per junction) to vanish.
const minKeysPerWorker = 256

// ErrBadInput reports invalid segmentation input.
var ErrBadInput = errors.New("segment: invalid input")

func (c Config) fit(xs, ys []float64) (minimax.Fit1D, error) {
	if c.Backend == DualLP {
		return minimax.FitPolyLP(xs, ys, c.Degree)
	}
	return minimax.FitPoly(xs, ys, c.Degree)
}

func validate(xs, ys []float64, cfg Config) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBadInput, len(xs), len(ys))
	}
	if cfg.Degree < 0 {
		return fmt.Errorf("%w: negative degree", ErrBadInput)
	}
	if cfg.Delta < 0 {
		return fmt.Errorf("%w: negative delta", ErrBadInput)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("%w: keys not strictly increasing at %d", ErrBadInput, i)
		}
	}
	return nil
}

// Greedy segments (xs, ys) into the minimum number of intervals whose
// minimax fits satisfy E(I) ≤ δ (Theorem 1: greedy is optimal thanks to the
// monotonicity of E under point insertion, Lemma 1).
//
// With exponential search the number of fits per segment is O(log L) instead
// of O(L) for segment length L. With cfg.Parallelism > 1 chunks are
// segmented concurrently; the result is identical for every worker count.
func Greedy(xs, ys []float64, cfg Config) ([]Segment, error) {
	if err := validate(xs, ys, cfg); err != nil {
		return nil, err
	}
	n := len(xs)
	p := cfg.workers(n)
	g := newGrower(xs, ys, cfg)
	if p <= 1 {
		return g.runRange(0, n, nil)
	}
	// Probe the first few segments (work the serial path needs anyway): when
	// segments are long relative to chunks — the coarse regime where the
	// serial chain rarely re-aligns with chunk-local boundaries and the
	// stitch would re-grow most of the array — parallel speculation is pure
	// overhead, so continue serially from the probe instead. The probed
	// prefix is reused either way it can be (serial), or costs a few
	// redundant grows (parallel, where it is noise among thousands).
	probed := make([]Segment, 0, probeSegments)
	pos := 0
	for len(probed) < probeSegments && pos < n {
		seg, err := g.grow(pos, n)
		if err != nil {
			return nil, err
		}
		probed = append(probed, seg)
		pos = seg.Last + 1
	}
	avgLen := pos / len(probed)
	if avgLen*minSegsPerChunk > n/p {
		return g.runRange(pos, n, probed)
	}
	return greedyParallel(xs, ys, cfg, p)
}

// probeSegments is how many leading segments Greedy grows serially to
// estimate the typical segment length before committing to parallelism.
const probeSegments = 4

// minSegsPerChunk is the adaptive bail-out threshold: a chunk must be
// expected to hold at least this many segments (by the probe's average
// length) for chunk-parallel speculation to beat serial growth. Junction
// re-syncing needs a healthy number of segments per chunk, and early
// segments tend to run shorter than later ones on real cumulative
// functions, so this is deliberately conservative: fine indexes — the
// expensive builds — sit orders of magnitude below it.
const minSegsPerChunk = 64

// workers clamps cfg.Parallelism to a worker count worth spawning for n keys.
func (c Config) workers(n int) int {
	p := c.Parallelism
	if p <= 1 {
		return 1
	}
	if maxP := n / minKeysPerWorker; p > maxP {
		p = maxP
	}
	return p
}

// greedyParallel splits the key array into p chunks, segments each chunk
// concurrently with a worker-local grower, and stitches at the junctions:
// every chunk segment that starts exactly where the serial segmentation
// would start one is adopted verbatim, and each chunk's final (possibly
// end-truncated) segment is re-grown over the full array. Induction over the
// adopted/re-grown starts makes the output byte-identical to the serial run.
func greedyParallel(xs, ys []float64, cfg Config, p int) ([]Segment, error) {
	n := len(xs)
	bounds := make([]int, p+1)
	for c := 1; c < p; c++ {
		bounds[c] = c * n / p
	}
	bounds[p] = n

	locals := make([][]Segment, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for c := 0; c < p; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := newGrower(xs, ys, cfg)
			locals[c], errs[c] = g.runRange(bounds[c], bounds[c+1], nil)
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]Segment, 0, total)
	g := newGrower(xs, ys, cfg) // junction re-grower
	pos := 0
	for pos < n {
		// Chunk containing pos (bounds is tiny: linear scan).
		c := 0
		for bounds[c+1] <= pos {
			c++
		}
		local := locals[c]
		// Adoptable segments: those starting exactly at pos. A non-final
		// chunk's last segment may be truncated by the chunk end, so it is
		// always re-grown over the full array instead.
		hi := len(local)
		if c < p-1 {
			hi--
		}
		j := sort.Search(len(local), func(i int) bool { return local[i].First >= pos })
		if j < hi && local[j].First == pos {
			out = append(out, local[j:hi]...)
			pos = local[hi-1].Last + 1
			continue
		}
		seg, err := g.grow(pos, n)
		if err != nil {
			return nil, err
		}
		out = append(out, seg)
		pos = seg.Last + 1
	}
	return out, nil
}

// grower carries the per-goroutine fitting state of a greedy run: the
// reusable minimax.Fitter, the recycled coefficient buffer of discarded
// fits, and the incremental value-normalisation prefix maxima. A grower is
// not safe for concurrent use; parallel segmentation gives each worker its
// own.
type grower struct {
	xs, ys []float64
	cfg    Config
	fitter *minimax.Fitter
	spare  poly.Poly // recycled coefficient storage from discarded fits

	// Prefix maxima of |ys[pmLo..]| so each fit's value normalisation is
	// O(Δu) instead of O(L): pm[j] = max |ys[pmLo..pmLo+j]|, valid for
	// j < pmN. Reset whenever a segment starts at a new index.
	pm   []float64
	pmLo int
	pmN  int
}

func newGrower(xs, ys []float64, cfg Config) *grower {
	return &grower{xs: xs, ys: ys, cfg: cfg, fitter: minimax.NewFitter()}
}

// runRange segments [lo, hi) exactly as serial greedy restricted to that
// window, appending to segs.
func (g *grower) runRange(lo, hi int, segs []Segment) ([]Segment, error) {
	for l := lo; l < hi; {
		seg, err := g.grow(l, hi)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
		l = seg.Last + 1
	}
	return segs, nil
}

// grow produces the maximal δ-feasible segment starting at l and bounded by
// limit (exclusive) — Algorithm 1's inner step. It is a pure function of
// (xs, ys, cfg, l, min(limit, len(xs))), which is what parallel stitching
// relies on.
func (g *grower) grow(l, limit int) (Segment, error) {
	var last int
	var fit minimax.Fit1D
	var err error
	if g.cfg.NoExpSearch {
		last, fit, err = g.growLinear(l, limit)
	} else {
		last, fit, err = g.growExponential(l, limit)
	}
	if err != nil {
		return Segment{}, err
	}
	return Segment{
		First: l, Last: last,
		Lo: g.xs[l], Hi: g.xs[last],
		Fit: fit,
	}, nil
}

// fitRange fits ys[l..u] (inclusive) with the worker's reusable fitter,
// recycling the coefficient buffer of the most recently discarded fit.
func (g *grower) fitRange(l, u int) (minimax.Fit1D, error) {
	if g.cfg.Backend == DualLP {
		return minimax.FitPolyLP(g.xs[l:u+1], g.ys[l:u+1], g.cfg.Degree)
	}
	f, err := g.fitter.Fit(g.xs[l:u+1], g.ys[l:u+1], g.cfg.Degree, g.yscale(l, u), g.spare)
	g.spare = nil
	return f, err
}

// discard recycles a fit that lost the grow race so its coefficient storage
// backs the next fit — the ping-pong that makes steady-state fitting
// allocation-free.
func (g *grower) discard(f minimax.Fit1D) { g.spare = f.P.P }

// yscale returns max |ys[l..u]| via the incrementally maintained prefix
// maxima — identical to the scan FitPoly performs, amortised O(1) per probe
// within one grow.
func (g *grower) yscale(l, u int) float64 {
	if g.pmLo != l || g.pmN == 0 {
		g.pmLo = l
		g.pmN = 0
	}
	need := u - l + 1
	if g.pmN < need {
		if cap(g.pm) < need {
			np := make([]float64, need+need/2+8)
			copy(np, g.pm[:g.pmN])
			g.pm = np
		} else {
			g.pm = g.pm[:cap(g.pm)]
		}
		m := 0.0
		if g.pmN > 0 {
			m = g.pm[g.pmN-1]
		}
		for j := g.pmN; j < need; j++ {
			if a := math.Abs(g.ys[l+j]); a > m {
				m = a
			}
			g.pm[j] = m
		}
		g.pmN = need
	}
	return g.pm[u-l]
}

// growLinear is Algorithm 1 verbatim: extend the interval one key at a time
// until the bounded δ-error constraint fails.
func (g *grower) growLinear(l, limit int) (int, minimax.Fit1D, error) {
	// A segment of ≤ deg+1 points interpolates exactly (error 0 ≤ δ), so the
	// loop always makes progress.
	last := min(l+g.cfg.Degree, limit-1)
	best, err := g.fitRange(l, last)
	if err != nil {
		return 0, minimax.Fit1D{}, err
	}
	for u := last + 1; u < limit; u++ {
		f, err := g.fitRange(l, u)
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr > g.cfg.Delta {
			g.discard(f)
			return last, best, nil
		}
		g.discard(best)
		last, best = u, f
	}
	return last, best, nil
}

// growExponential doubles the candidate segment length until the fit error
// exceeds δ, then binary-searches the exact breakpoint. Soundness rests on
// Lemma 1 (error is monotone in the point set).
func (g *grower) growExponential(l, limit int) (int, minimax.Fit1D, error) {
	// Initial guaranteed-feasible length: deg+1 points interpolate exactly.
	lo := min(l+g.cfg.Degree, limit-1) // highest index known to satisfy δ
	bestFit, err := g.fitRange(l, lo)
	if err != nil {
		return 0, minimax.Fit1D{}, err
	}
	if lo == limit-1 {
		return lo, bestFit, nil
	}
	// Exponential phase.
	step := g.cfg.Degree + 2
	hi := -1 // lowest index known to violate δ, -1 if none found yet
	for {
		cand := lo + step
		if cand >= limit {
			cand = limit - 1
		}
		f, err := g.fitRange(l, cand)
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr <= g.cfg.Delta {
			g.discard(bestFit)
			lo, bestFit = cand, f
			if cand == limit-1 {
				return lo, bestFit, nil
			}
			step *= 2
		} else {
			g.discard(f)
			hi = cand
			break
		}
	}
	// Binary phase: invariant lo feasible, hi infeasible.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		f, err := g.fitRange(l, mid)
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr <= g.cfg.Delta {
			g.discard(bestFit)
			lo, bestFit = mid, f
		} else {
			g.discard(f)
			hi = mid
		}
	}
	return lo, bestFit, nil
}

// DP computes the provably minimum-cardinality segmentation by dynamic
// programming (the O(n²·ℓ^2.5) reference of Section IV-D). It exists to
// cross-check GS optimality in tests; do not call it on large inputs.
func DP(xs, ys []float64, cfg Config) ([]Segment, error) {
	if err := validate(xs, ys, cfg); err != nil {
		return nil, err
	}
	n := len(xs)
	const inf = int(^uint(0) >> 1)
	cost := make([]int, n+1) // cost[i] = min segments covering first i points
	prev := make([]int, n+1)
	fits := make([]minimax.Fit1D, n+1)
	for i := 1; i <= n; i++ {
		cost[i] = inf
	}
	for i := 1; i <= n; i++ {
		// Try segments [j, i-1]; by Lemma 1 once a fit fails for some j the
		// fits for all smaller j fail too, so scan j downward and stop at
		// the first failure.
		for j := i - 1; j >= 0; j-- {
			f, err := cfg.fit(xs[j:i], ys[j:i])
			if err != nil {
				return nil, err
			}
			if f.MaxErr > cfg.Delta {
				break
			}
			if cost[j] != inf && cost[j]+1 < cost[i] {
				cost[i] = cost[j] + 1
				prev[i] = j
				fits[i] = f
			}
		}
	}
	if cost[n] == inf {
		return nil, fmt.Errorf("segment: DP found no feasible segmentation")
	}
	var segs []Segment
	for i := n; i > 0; i = prev[i] {
		j := prev[i]
		segs = append(segs, Segment{
			First: j, Last: i - 1,
			Lo: xs[j], Hi: xs[i-1],
			Fit: fits[i],
		})
	}
	// reverse
	for a, b := 0, len(segs)-1; a < b; a, b = a+1, b-1 {
		segs[a], segs[b] = segs[b], segs[a]
	}
	return segs, nil
}
