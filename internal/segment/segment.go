// Package segment implements the index-size-minimising segmentations of
// Section IV-D of the paper: the Greedy Segmentation method (GS, Algorithm 1)
// accelerated with exponential search, the plain one-key-at-a-time GS used
// for the ablation study, and the dynamic-programming optimal reference
// against which GS optimality (Theorem 1) is property-tested.
package segment

import (
	"errors"
	"fmt"

	"repro/internal/minimax"
)

// Segment is one fitted interval I = [Lo, Hi]: a polynomial satisfying the
// bounded δ-error constraint (Definition 3) over the sample points with
// indexes [First, Last] of the source arrays.
type Segment struct {
	First, Last int     // inclusive index range into xs/ys
	Lo, Hi      float64 // key range: xs[First], xs[Last]
	Fit         minimax.Fit1D
}

// Backend selects the minimax solver used for each curve fit.
type Backend int

// Fitting backends.
const (
	Exchange Backend = iota // discrete Remez exchange (default, fast)
	DualLP                  // revised dual simplex on LP (9)
)

// Config controls a segmentation run.
type Config struct {
	Degree  int     // polynomial degree (the paper's deg; default 2 per §VII-B)
	Delta   float64 // bounded error δ (Definition 3)
	Backend Backend
	// NoExpSearch disables the exponential+binary breakpoint search and
	// grows segments one key at a time exactly as written in Algorithm 1.
	// Kept for the ablation benchmarks; results are identical (Lemma 1).
	NoExpSearch bool
}

// ErrBadInput reports invalid segmentation input.
var ErrBadInput = errors.New("segment: invalid input")

func (c Config) fit(xs, ys []float64) (minimax.Fit1D, error) {
	if c.Backend == DualLP {
		return minimax.FitPolyLP(xs, ys, c.Degree)
	}
	return minimax.FitPoly(xs, ys, c.Degree)
}

func validate(xs, ys []float64, cfg Config) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBadInput, len(xs), len(ys))
	}
	if cfg.Degree < 0 {
		return fmt.Errorf("%w: negative degree", ErrBadInput)
	}
	if cfg.Delta < 0 {
		return fmt.Errorf("%w: negative delta", ErrBadInput)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("%w: keys not strictly increasing at %d", ErrBadInput, i)
		}
	}
	return nil
}

// Greedy segments (xs, ys) into the minimum number of intervals whose
// minimax fits satisfy E(I) ≤ δ (Theorem 1: greedy is optimal thanks to the
// monotonicity of E under point insertion, Lemma 1).
//
// With exponential search the number of fits per segment is O(log L) instead
// of O(L) for segment length L.
func Greedy(xs, ys []float64, cfg Config) ([]Segment, error) {
	if err := validate(xs, ys, cfg); err != nil {
		return nil, err
	}
	n := len(xs)
	var segs []Segment
	l := 0
	for l < n {
		var last int
		var fit minimax.Fit1D
		var err error
		if cfg.NoExpSearch {
			last, fit, err = growLinear(xs, ys, l, cfg)
		} else {
			last, fit, err = growExponential(xs, ys, l, cfg)
		}
		if err != nil {
			return nil, err
		}
		segs = append(segs, Segment{
			First: l, Last: last,
			Lo: xs[l], Hi: xs[last],
			Fit: fit,
		})
		l = last + 1
	}
	return segs, nil
}

// growLinear is Algorithm 1 verbatim: extend the interval one key at a time
// until the bounded δ-error constraint fails.
func growLinear(xs, ys []float64, l int, cfg Config) (int, minimax.Fit1D, error) {
	n := len(xs)
	// A segment of ≤ deg+1 points interpolates exactly (error 0 ≤ δ), so the
	// loop always makes progress.
	last := min(l+cfg.Degree, n-1)
	best, err := cfg.fit(xs[l:last+1], ys[l:last+1])
	if err != nil {
		return 0, minimax.Fit1D{}, err
	}
	for u := last + 1; u < n; u++ {
		f, err := cfg.fit(xs[l:u+1], ys[l:u+1])
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr > cfg.Delta {
			return last, best, nil
		}
		last, best = u, f
	}
	return last, best, nil
}

// growExponential doubles the candidate segment length until the fit error
// exceeds δ, then binary-searches the exact breakpoint. Soundness rests on
// Lemma 1 (error is monotone in the point set).
func growExponential(xs, ys []float64, l int, cfg Config) (int, minimax.Fit1D, error) {
	n := len(xs)
	// Initial guaranteed-feasible length: deg+1 points interpolate exactly.
	lo := min(l+cfg.Degree, n-1) // highest index known to satisfy δ
	bestFit, err := cfg.fit(xs[l:lo+1], ys[l:lo+1])
	if err != nil {
		return 0, minimax.Fit1D{}, err
	}
	if lo == n-1 {
		return lo, bestFit, nil
	}
	// Exponential phase.
	step := cfg.Degree + 2
	hi := -1 // lowest index known to violate δ, -1 if none found yet
	for {
		cand := lo + step
		if cand >= n {
			cand = n - 1
		}
		f, err := cfg.fit(xs[l:cand+1], ys[l:cand+1])
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr <= cfg.Delta {
			lo, bestFit = cand, f
			if cand == n-1 {
				return lo, bestFit, nil
			}
			step *= 2
		} else {
			hi = cand
			break
		}
	}
	// Binary phase: invariant lo feasible, hi infeasible.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		f, err := cfg.fit(xs[l:mid+1], ys[l:mid+1])
		if err != nil {
			return 0, minimax.Fit1D{}, err
		}
		if f.MaxErr <= cfg.Delta {
			lo, bestFit = mid, f
		} else {
			hi = mid
		}
	}
	return lo, bestFit, nil
}

// DP computes the provably minimum-cardinality segmentation by dynamic
// programming (the O(n²·ℓ^2.5) reference of Section IV-D). It exists to
// cross-check GS optimality in tests; do not call it on large inputs.
func DP(xs, ys []float64, cfg Config) ([]Segment, error) {
	if err := validate(xs, ys, cfg); err != nil {
		return nil, err
	}
	n := len(xs)
	const inf = int(^uint(0) >> 1)
	cost := make([]int, n+1) // cost[i] = min segments covering first i points
	prev := make([]int, n+1)
	fits := make([]minimax.Fit1D, n+1)
	for i := 1; i <= n; i++ {
		cost[i] = inf
	}
	for i := 1; i <= n; i++ {
		// Try segments [j, i-1]; by Lemma 1 once a fit fails for some j the
		// fits for all smaller j fail too, so scan j downward and stop at
		// the first failure.
		for j := i - 1; j >= 0; j-- {
			f, err := cfg.fit(xs[j:i], ys[j:i])
			if err != nil {
				return nil, err
			}
			if f.MaxErr > cfg.Delta {
				break
			}
			if cost[j] != inf && cost[j]+1 < cost[i] {
				cost[i] = cost[j] + 1
				prev[i] = j
				fits[i] = f
			}
		}
	}
	if cost[n] == inf {
		return nil, fmt.Errorf("segment: DP found no feasible segmentation")
	}
	var segs []Segment
	for i := n; i > 0; i = prev[i] {
		j := prev[i]
		segs = append(segs, Segment{
			First: j, Last: i - 1,
			Lo: xs[j], Hi: xs[i-1],
			Fit: fits[i],
		})
	}
	// reverse
	for a, b := 0, len(segs)-1; a < b; a, b = a+1, b-1 {
		segs[a], segs[b] = segs[b], segs[a]
	}
	return segs, nil
}
