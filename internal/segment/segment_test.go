package segment

import (
	"math"
	"math/rand"
	"testing"
)

// genSeries builds a strictly-increasing key series with a wavy value
// function that forces multiple segments at small δ.
func genSeries(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += 0.2 + rng.Float64()
		xs[i] = x
		ys[i] = 10*math.Sin(x/3) + 3*math.Cos(x) + rng.NormFloat64()*0.5
	}
	return xs, ys
}

// genCumulative builds a monotone series resembling a CDF (the COUNT/SUM use).
func genCumulative(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		x += 0.1 + rng.Float64()
		y += rng.Float64() * 3
		xs[i] = x
		ys[i] = y
	}
	return xs, ys
}

func checkCoverage(t *testing.T, segs []Segment, n int) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].First != 0 {
		t.Errorf("first segment starts at %d, want 0", segs[0].First)
	}
	if segs[len(segs)-1].Last != n-1 {
		t.Errorf("last segment ends at %d, want %d", segs[len(segs)-1].Last, n-1)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].First != segs[i-1].Last+1 {
			t.Errorf("gap/overlap between segment %d and %d: %d..%d then %d..%d",
				i-1, i, segs[i-1].First, segs[i-1].Last, segs[i].First, segs[i].Last)
		}
	}
}

func checkDelta(t *testing.T, segs []Segment, xs, ys []float64, delta float64) {
	t.Helper()
	for si, s := range segs {
		for i := s.First; i <= s.Last; i++ {
			if r := math.Abs(ys[i] - s.Fit.P.Eval(xs[i])); r > delta*(1+1e-9)+1e-12 {
				t.Fatalf("segment %d violates δ at point %d: residual %g > δ=%g", si, i, r, delta)
			}
		}
		if s.Fit.MaxErr > delta*(1+1e-9)+1e-12 {
			t.Fatalf("segment %d reports MaxErr %g > δ=%g", si, s.Fit.MaxErr, delta)
		}
	}
}

func TestGreedyCoversAndRespectsDelta(t *testing.T) {
	xs, ys := genSeries(500, 1)
	for _, deg := range []int{1, 2, 3} {
		segs, err := Greedy(xs, ys, Config{Degree: deg, Delta: 1.0})
		if err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
		checkCoverage(t, segs, len(xs))
		checkDelta(t, segs, xs, ys, 1.0)
	}
}

func TestGreedySingleSegmentWhenEasy(t *testing.T) {
	// A perfectly quadratic series fits in a single degree-2 segment.
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2 + 3*float64(i) + 0.01*float64(i)*float64(i)
	}
	segs, err := Greedy(xs, ys, Config{Degree: 2, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("quadratic data should need 1 segment, got %d", len(segs))
	}
}

func TestGreedyZeroDeltaStillProgresses(t *testing.T) {
	xs, ys := genSeries(60, 3)
	segs, err := Greedy(xs, ys, Config{Degree: 2, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, segs, len(xs))
	// With δ=0 each segment can hold at most deg+1 arbitrary points (exact
	// interpolation), so there must be at least ceil(60/(deg+2)) segments.
	if len(segs) < 60/4 {
		t.Errorf("δ=0 segmentation suspiciously small: %d segments", len(segs))
	}
}

// TestExpSearchMatchesLinear: the exponential-search variant must produce
// exactly the same segmentation as the verbatim Algorithm 1 (Lemma 1 makes
// the breakpoint unique).
func TestExpSearchMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		xs, ys := genSeries(250, seed)
		for _, delta := range []float64{0.5, 2, 8} {
			fast, err := Greedy(xs, ys, Config{Degree: 2, Delta: delta})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := Greedy(xs, ys, Config{Degree: 2, Delta: delta, NoExpSearch: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("seed %d δ=%g: exp-search %d segments, linear %d", seed, delta, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].First != slow[i].First || fast[i].Last != slow[i].Last {
					t.Fatalf("seed %d δ=%g: segment %d differs: [%d,%d] vs [%d,%d]",
						seed, delta, i, fast[i].First, fast[i].Last, slow[i].First, slow[i].Last)
				}
			}
		}
	}
}

// TestGreedyOptimalVsDP is the Theorem 1 property test: GS produces exactly
// as many segments as the optimal DP on random instances.
func TestGreedyOptimalVsDP(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		xs, ys := genSeries(60, seed+100)
		for _, deg := range []int{1, 2} {
			for _, delta := range []float64{0.5, 1.5, 5} {
				gs, err := Greedy(xs, ys, Config{Degree: deg, Delta: delta})
				if err != nil {
					t.Fatal(err)
				}
				dp, err := DP(xs, ys, Config{Degree: deg, Delta: delta})
				if err != nil {
					t.Fatal(err)
				}
				if len(gs) != len(dp) {
					t.Errorf("seed %d deg %d δ=%g: GS %d segments, DP optimal %d",
						seed, deg, delta, len(gs), len(dp))
				}
				checkCoverage(t, dp, len(xs))
				checkDelta(t, dp, xs, ys, delta)
			}
		}
	}
}

// TestMonotoneDeltaFewerSegments: larger δ must never need more segments.
func TestMonotoneDeltaFewerSegments(t *testing.T) {
	xs, ys := genCumulative(800, 5)
	prev := -1
	for _, delta := range []float64{0.1, 0.5, 2, 10, 50} {
		segs, err := Greedy(xs, ys, Config{Degree: 2, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(segs) > prev {
			t.Errorf("δ=%g produced %d segments, more than smaller δ's %d", delta, len(segs), prev)
		}
		prev = len(segs)
	}
}

// TestHigherDegreeNeverMoreSegments reproduces the paper's §IV-A claim:
// higher-degree polynomials yield fewer (never more) segments at equal δ.
func TestHigherDegreeNeverMoreSegments(t *testing.T) {
	xs, ys := genCumulative(600, 9)
	prev := -1
	for _, deg := range []int{1, 2, 3} {
		segs, err := Greedy(xs, ys, Config{Degree: deg, Delta: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(segs) > prev {
			t.Errorf("deg %d produced %d segments > previous degree's %d", deg, len(segs), prev)
		}
		prev = len(segs)
	}
}

func TestBackendsProduceSameSegmentCount(t *testing.T) {
	xs, ys := genSeries(150, 12)
	a, err := Greedy(xs, ys, Config{Degree: 2, Delta: 1, Backend: Exchange})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(xs, ys, Config{Degree: 2, Delta: 1, Backend: DualLP})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("exchange backend: %d segments, dual LP: %d", len(a), len(b))
	}
}

func TestValidation(t *testing.T) {
	if _, err := Greedy(nil, nil, Config{Degree: 2, Delta: 1}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Greedy([]float64{1, 2}, []float64{1}, Config{Degree: 2, Delta: 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Greedy([]float64{2, 1}, []float64{1, 2}, Config{Degree: 2, Delta: 1}); err == nil {
		t.Error("unsorted keys should error")
	}
	if _, err := Greedy([]float64{1, 2}, []float64{1, 2}, Config{Degree: 2, Delta: -1}); err == nil {
		t.Error("negative delta should error")
	}
	if _, err := Greedy([]float64{1, 2}, []float64{1, 2}, Config{Degree: -1, Delta: 1}); err == nil {
		t.Error("negative degree should error")
	}
}

func TestSingleKeyDataset(t *testing.T) {
	segs, err := Greedy([]float64{5}, []float64{9}, Config{Degree: 2, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].First != 0 || segs[0].Last != 0 {
		t.Fatalf("unexpected segmentation %+v", segs)
	}
	if got := segs[0].Fit.P.Eval(5); math.Abs(got-9) > 1e-9 {
		t.Errorf("single-point segment evaluates to %g, want 9", got)
	}
}

func BenchmarkGreedyExpSearch10k(b *testing.B) {
	xs, ys := genCumulative(10000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(xs, ys, Config{Degree: 2, Delta: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyLinear10k(b *testing.B) {
	xs, ys := genCumulative(10000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(xs, ys, Config{Degree: 2, Delta: 5, NoExpSearch: true}); err != nil {
			b.Fatal(err)
		}
	}
}
