package segment

import (
	"math"
	"math/rand"
	"testing"
)

// genKeysCF returns n strictly increasing keys with a skewed spacing
// distribution plus their cumulative-count values — the shape greedy
// segmentation sees from buildCumulative.
func genKeysCF(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	k := 0.0
	for i := 0; i < n; i++ {
		// Mixture of dense runs and large jumps so segment lengths vary.
		if rng.Float64() < 0.02 {
			k += 50 + 1000*rng.Float64()
		} else {
			k += 0.01 + rng.Float64()
		}
		xs[i] = k
		ys[i] = float64(i + 1)
	}
	return xs, ys
}

// genKeysMeasure returns keys with a noisy measure series (the MIN/MAX
// key-measure shape).
func genKeysMeasure(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	v := 100.0
	for i := 0; i < n; i++ {
		xs[i] = float64(i) + rng.Float64()*0.5
		v += rng.NormFloat64() * 5
		ys[i] = v
	}
	return xs, ys
}

// sameSegs fails the test unless a and b are byte-identical segmentations:
// same boundaries, frames, coefficients, errors and iteration counts.
func sameSegs(t *testing.T, a, b []Segment) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("segment count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.First != y.First || x.Last != y.Last || x.Lo != y.Lo || x.Hi != y.Hi {
			t.Fatalf("segment %d bounds differ: %+v vs %+v", i, x, y)
		}
		if x.Fit.MaxErr != y.Fit.MaxErr || x.Fit.Iters != y.Fit.Iters {
			t.Fatalf("segment %d fit meta differs: (%g,%d) vs (%g,%d)",
				i, x.Fit.MaxErr, x.Fit.Iters, y.Fit.MaxErr, y.Fit.Iters)
		}
		if x.Fit.P.F != y.Fit.P.F {
			t.Fatalf("segment %d frame differs: %+v vs %+v", i, x.Fit.P.F, y.Fit.P.F)
		}
		if len(x.Fit.P.P) != len(y.Fit.P.P) {
			t.Fatalf("segment %d coeff count differs: %d vs %d", i, len(x.Fit.P.P), len(y.Fit.P.P))
		}
		for j := range x.Fit.P.P {
			if x.Fit.P.P[j] != y.Fit.P.P[j] {
				t.Fatalf("segment %d coeff %d differs: %v vs %v", i, j, x.Fit.P.P[j], y.Fit.P.P[j])
			}
		}
	}
}

// TestGreedyParallelEquivalence is the tentpole guarantee: parallel greedy
// produces segmentations byte-identical to the serial result for every
// worker count, across datasets, degrees and deltas.
func TestGreedyParallelEquivalence(t *testing.T) {
	type dataset struct {
		name   string
		xs, ys []float64
	}
	cfx, cfy := genKeysCF(6000, 1)
	mx, my := genKeysMeasure(6000, 2)
	datasets := []dataset{
		{"cumulative", cfx, cfy},
		{"measure", mx, my},
	}
	cfgs := []Config{
		{Degree: 1, Delta: 10},
		{Degree: 2, Delta: 25},
		{Degree: 3, Delta: 5},
		{Degree: 2, Delta: 25, NoExpSearch: true},
	}
	for _, ds := range datasets {
		for _, base := range cfgs {
			serial, err := Greedy(ds.xs, ds.ys, base)
			if err != nil {
				t.Fatalf("%s serial: %v", ds.name, err)
			}
			for _, workers := range []int{1, 2, 3, 4, 8} {
				cfg := base
				cfg.Parallelism = workers
				par, err := Greedy(ds.xs, ds.ys, cfg)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", ds.name, workers, err)
				}
				sameSegs(t, serial, par)
			}
		}
	}
}

// TestGreedyParallelDualLP covers the LP backend (worker-local fitters do
// not apply, but chunking and stitching still must be identity-preserving).
func TestGreedyParallelDualLP(t *testing.T) {
	xs, ys := genKeysCF(1500, 3)
	base := Config{Degree: 2, Delta: 40, Backend: DualLP}
	serial, err := Greedy(xs, ys, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Parallelism = 4
	par, err := Greedy(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameSegs(t, serial, par)
}

// TestGreedyParallelSpanningSegment exercises the stitching worst case: one
// segment covering the entire array (every chunk's local work is discarded
// and the whole result is re-grown at the first junction).
func TestGreedyParallelSpanningSegment(t *testing.T) {
	n := 4096
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) + 7 // exactly linear: one segment at any δ
	}
	serial, err := Greedy(xs, ys, Config{Degree: 1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 1 {
		t.Fatalf("want 1 segment, got %d", len(serial))
	}
	par, err := Greedy(xs, ys, Config{Degree: 1, Delta: 0.5, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameSegs(t, serial, par)
}

// TestGreedyParallelTinyInput verifies the worker clamp: parallelism on
// inputs below minKeysPerWorker must quietly run serially and still succeed.
func TestGreedyParallelTinyInput(t *testing.T) {
	xs, ys := genKeysCF(64, 4)
	serial, err := Greedy(xs, ys, Config{Degree: 2, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Greedy(xs, ys, Config{Degree: 2, Delta: 5, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameSegs(t, serial, par)
}

// TestGrowerYScaleMatchesScan pins the incremental normalisation to the
// exact scan FitPoly performs, including the shrinking probes of the binary
// phase.
func TestGrowerYScaleMatchesScan(t *testing.T) {
	xs, ys := genKeysMeasure(500, 5)
	for i := range ys {
		if i%7 == 0 {
			ys[i] = -ys[i] // exercise the absolute value
		}
	}
	g := newGrower(xs, ys, Config{Degree: 2, Delta: 10})
	probe := func(l, u int) {
		want := 0.0
		for i := l; i <= u; i++ {
			if a := math.Abs(ys[i]); a > want {
				want = a
			}
		}
		if got := g.yscale(l, u); got != want {
			t.Fatalf("yscale(%d,%d) = %v, want %v", l, u, got, want)
		}
	}
	// Growth, shrink-back (binary phase), and restart at a new l.
	probe(0, 10)
	probe(0, 100)
	probe(0, 37)
	probe(40, 41)
	probe(40, 300)
	probe(40, 60)
	probe(0, 499)
}
