package experiments

import (
	"fmt"
	"time"

	"repro/internal/artree"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fitingtree"
	"repro/internal/hist"
	"repro/internal/minimax"
	"repro/internal/rmi"
	"repro/internal/sampling"
)

func init() {
	register("fig5", runFig5)
	register("fig14a", runFig14a)
	register("fig14b", runFig14b)
	register("fig14c", runFig14c)
	register("fig15a", runFig15a)
	register("fig16a", runFig16a)
	register("fig17a", runFig17a)
	register("fig17b", runFig17b)
	register("fig18", runFig18)
	register("fig19", runFig19)
	register("fig20", runFig20)
}

func absSweep(cfg Config) []float64 {
	if cfg.Fast {
		return []float64{100, 1000}
	}
	return []float64{50, 100, 200, 500, 1000}
}

func relSweep(cfg Config) []float64 {
	if cfg.Fast {
		return []float64{0.01, 0.1}
	}
	return []float64{0.005, 0.01, 0.05, 0.1, 0.2}
}

// runFig5 reproduces Figure 5: fitting DFmax of a ~90-point stock window
// with linear regression, an optimal linear segment, and a degree-4
// polynomial. The polynomial's max error must be far below both linear fits.
func runFig5(cfg Config) (*Table, error) {
	d := hki(cfg)
	// A "2018 daily view": ~90 evenly spaced samples of the series.
	const window = 90
	stride := len(d.keys) / window
	if stride < 1 {
		stride = 1
	}
	var xs, ys []float64
	for i := 0; i < len(d.keys) && len(xs) < window; i += stride {
		xs = append(xs, d.keys[i])
		ys = append(ys, d.measures[i])
	}
	// LR(k): least squares line.
	lrA, lrB := leastSquares(xs, ys)
	lrErr := 0.0
	for i := range xs {
		if e := abs(ys[i] - (lrA + lrB*xs[i])); e > lrErr {
			lrErr = e
		}
	}
	// FIT(k): best single linear segment (minimax degree 1 — the strongest
	// possible member of the FITing-tree family on this window).
	fit1, err := minimax.FitPoly(xs, ys, 1)
	if err != nil {
		return nil, err
	}
	// P(k): degree-4 minimax polynomial.
	fit4, err := minimax.FitPoly(xs, ys, 4)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "max fitting error on a 90-sample HKI window (DFmax)",
		Headers: []string{"model", "max abs error", "vs degree-4"},
	}
	t.AddRow("LR(k) least squares", fmt.Sprintf("%.1f", lrErr), fmt.Sprintf("%.1fx", lrErr/fit4.MaxErr))
	t.AddRow("FIT(k) linear segment", fmt.Sprintf("%.1f", fit1.MaxErr), fmt.Sprintf("%.1fx", fit1.MaxErr/fit4.MaxErr))
	t.AddRow("P(k) degree-4 minimax", fmt.Sprintf("%.1f", fit4.MaxErr), "1.0x")
	t.Notes = "paper: the degree-4 polynomial tracks DFmax far better than any linear model"
	return t, nil
}

func leastSquares(xs, ys []float64) (a, b float64) {
	var sx, sy, sxx, sxy, n float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		n++
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / det
	return (sy - b*sx) / n, b
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// runFig14a: COUNT query response time vs εabs for PolyFit degrees 1–3.
func runFig14a(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+1)
	t := &Table{
		ID:      "fig14a",
		Title:   fmt.Sprintf("COUNT query time vs εabs, TWEET n=%d (PolyFit degree sweep)", len(keys)),
		Headers: []string{"εabs", "PolyFit-1", "PolyFit-2", "PolyFit-3", "h1", "h2", "h3"},
	}
	for _, eps := range absSweep(cfg) {
		row := []string{fmt.Sprintf("%.0f", eps)}
		var segs []string
		for _, deg := range []int{1, 2, 3} {
			ix, err := core.BuildCount(keys, core.Options{
				Degree: deg, Delta: core.DeltaForAbs(core.Count, eps), NoFallback: true,
			})
			if err != nil {
				return nil, err
			}
			ns := nsPerOp(timingBudget, len(qs)/4, func(i int) {
				q := qs[i%len(qs)]
				ix.RangeSum(q.L, q.U) //nolint:errcheck
			})
			row = append(row, fmtNs(ns))
			segs = append(segs, fmt.Sprintf("%d", ix.NumSegments()))
		}
		row = append(row, segs...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Fig.14a: PolyFit-2 beats PolyFit-1; PolyFit-3 adds little (hN = segment counts)"
	return t, nil
}

// runFig14b: MAX query response time vs εabs for PolyFit degrees 1–2.
func runFig14b(cfg Config) (*Table, error) {
	d := hki(cfg)
	qs := data.RangeQueriesFromKeys(d.keys, cfg.Queries, cfg.Seed+2)
	t := &Table{
		ID:      "fig14b",
		Title:   fmt.Sprintf("MAX query time vs εabs, HKI n=%d (PolyFit degree sweep)", len(d.keys)),
		Headers: []string{"εabs", "PolyFit-1", "PolyFit-2", "h1", "h2"},
	}
	for _, eps := range absSweep(cfg) {
		row := []string{fmt.Sprintf("%.0f", eps)}
		var segs []string
		for _, deg := range []int{1, 2} {
			ix, err := core.BuildMax(d.keys, d.measures, core.Options{
				Degree: deg, Delta: core.DeltaForAbs(core.Max, eps), NoFallback: true,
			})
			if err != nil {
				return nil, err
			}
			ns := nsPerOp(timingBudget, len(qs)/4, func(i int) {
				q := qs[i%len(qs)]
				ix.RangeExtremum(q.L, q.U) //nolint:errcheck
			})
			row = append(row, fmtNs(ns))
			segs = append(segs, fmt.Sprintf("%d", ix.NumSegments()))
		}
		row = append(row, segs...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Fig.14b: PolyFit-2 clearly faster than PolyFit-1 at low εabs"
	return t, nil
}

// runFig14c: index construction time vs εabs for PolyFit degrees 1–3.
func runFig14c(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	if cfg.Fast && len(keys) > 50_000 {
		keys = keys[:50_000]
	}
	t := &Table{
		ID:      "fig14c",
		Title:   fmt.Sprintf("COUNT index construction time vs εabs, TWEET n=%d", len(keys)),
		Headers: []string{"εabs", "PolyFit-1", "PolyFit-2", "PolyFit-3"},
	}
	for _, eps := range absSweep(cfg) {
		row := []string{fmt.Sprintf("%.0f", eps)}
		for _, deg := range []int{1, 2, 3} {
			start := time.Now()
			if _, err := core.BuildCount(keys, core.Options{
				Degree: deg, Delta: core.DeltaForAbs(core.Count, eps), NoFallback: true,
			}); err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fs", time.Since(start).Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Fig.14c: higher degree costs more per fit; our exponential search flattens the εabs trend"
	return t, nil
}

// runFig15a: COUNT (single key) response time vs εabs across learned
// methods.
func runFig15a(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+3)
	t := &Table{
		ID:      "fig15a",
		Title:   fmt.Sprintf("COUNT (single key) query time vs εabs, TWEET n=%d", len(keys)),
		Headers: []string{"εabs", "RMI", "FITing-tree", "PolyFit-2"},
	}
	for _, eps := range absSweep(cfg) {
		delta := eps / 2
		rmiIx, err := rmi.BuildCountWithGuarantee(keys, delta, 1<<18, false)
		if err != nil {
			return nil, err
		}
		fit, err := fitingtree.BuildCount(keys, delta, false)
		if err != nil {
			return nil, err
		}
		pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: delta, NoFallback: true})
		if err != nil {
			return nil, err
		}
		rmiNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			rmiIx.RangeSum(q.L, q.U)
		})
		fitNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			fit.RangeSum(q.L, q.U)
		})
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeSum(q.L, q.U) //nolint:errcheck
		})
		t.AddRow(fmt.Sprintf("%.0f", eps), fmtNs(rmiNs), fmtNs(fitNs), fmtNs(pfNs))
	}
	t.Notes = "paper Fig.15a: PolyFit ~1.5–6x faster than RMI / FITing-tree"
	return t, nil
}

// runFig16a: COUNT (single key) response time vs εrel with exact fallback.
func runFig16a(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+4)
	const delta = 50.0 // the paper's Problem-2 build (δ=50)
	rmiIx, err := rmi.BuildCountWithGuarantee(keys, delta, 1<<18, true)
	if err != nil {
		return nil, err
	}
	fit, err := fitingtree.BuildCount(keys, delta, true)
	if err != nil {
		return nil, err
	}
	pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: delta})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig16a",
		Title:   fmt.Sprintf("COUNT (single key) query time vs εrel, TWEET n=%d, δ=50", len(keys)),
		Headers: []string{"εrel", "RMI", "FITing-tree", "PolyFit-2", "PolyFit fallback%"},
	}
	for _, eps := range relSweep(cfg) {
		rmiNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			rmiIx.RangeSumRel(q.L, q.U, eps) //nolint:errcheck
		})
		fitNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			fit.RangeSumRel(q.L, q.U, eps) //nolint:errcheck
		})
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeSumRel(q.L, q.U, eps) //nolint:errcheck
		})
		exactUsed := 0
		for _, q := range qs {
			if _, usedExact, _ := pf.RangeSumRel(q.L, q.U, eps); usedExact {
				exactUsed++
			}
		}
		t.AddRow(fmt.Sprintf("%.3f", eps), fmtNs(rmiNs), fmtNs(fitNs), fmtNs(pfNs),
			fmt.Sprintf("%.0f%%", 100*float64(exactUsed)/float64(len(qs))))
	}
	t.Notes = "paper Fig.16a: PolyFit fastest; small εrel forces more exact fallbacks for every method"
	return t, nil
}

// runFig17a: MAX response time vs εabs — aR-tree vs PolyFit-2.
func runFig17a(cfg Config) (*Table, error) {
	d := hki(cfg)
	qs := data.RangeQueriesFromKeys(d.keys, cfg.Queries, cfg.Seed+5)
	tree, err := artree.NewMaxTree(d.keys, d.measures, artree.Max)
	if err != nil {
		return nil, err
	}
	arNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		tree.Query(q.L, q.U)
	})
	t := &Table{
		ID:      "fig17a",
		Title:   fmt.Sprintf("MAX query time vs εabs, HKI n=%d", len(d.keys)),
		Headers: []string{"εabs", "aR-tree (exact)", "PolyFit-2"},
	}
	for _, eps := range absSweep(cfg) {
		pf, err := core.BuildMax(d.keys, d.measures, core.Options{
			Degree: 2, Delta: core.DeltaForAbs(core.Max, eps), NoFallback: true,
		})
		if err != nil {
			return nil, err
		}
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeExtremum(q.L, q.U) //nolint:errcheck
		})
		t.AddRow(fmt.Sprintf("%.0f", eps), fmtNs(arNs), fmtNs(pfNs))
	}
	t.Notes = "paper Fig.17a: PolyFit an order of magnitude faster than the aR-tree"
	return t, nil
}

// runFig17b: MAX response time vs εrel — aR-tree vs PolyFit-2 (δ=50).
func runFig17b(cfg Config) (*Table, error) {
	d := hki(cfg)
	qs := data.RangeQueriesFromKeys(d.keys, cfg.Queries, cfg.Seed+6)
	tree, err := artree.NewMaxTree(d.keys, d.measures, artree.Max)
	if err != nil {
		return nil, err
	}
	arNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		tree.Query(q.L, q.U)
	})
	pf, err := core.BuildMax(d.keys, d.measures, core.Options{Degree: 2, Delta: 50})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig17b",
		Title:   fmt.Sprintf("MAX query time vs εrel, HKI n=%d, δ=50", len(d.keys)),
		Headers: []string{"εrel", "aR-tree (exact)", "PolyFit-2"},
	}
	for _, eps := range relSweep(cfg) {
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeExtremumRel(q.L, q.U, eps) //nolint:errcheck
		})
		t.AddRow(fmt.Sprintf("%.3f", eps), fmtNs(arNs), fmtNs(pfNs))
	}
	t.Notes = "paper Fig.17b: measure values ≫ δ(1+1/εrel), so the gate passes and PolyFit stays fast"
	return t, nil
}

// runFig18: scalability — COUNT (εrel=0.01) query time vs dataset size.
func runFig18(cfg Config) (*Table, error) {
	sizes := []int{100_000, 250_000, 500_000, 1_000_000}
	if cfg.Fast {
		sizes = []int{50_000, 200_000}
	}
	t := &Table{
		ID:      "fig18",
		Title:   "COUNT (single key) query time vs dataset size, OSM latitude keys, εrel=0.01, δ=50",
		Headers: []string{"n", "RMI", "FITing-tree", "PolyFit-2"},
	}
	for _, n := range sizes {
		keys := osmLatKeys(cfg, n)
		qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+7)
		rmiIx, err := rmi.BuildCountWithGuarantee(keys, 50, 1<<18, true)
		if err != nil {
			return nil, err
		}
		fit, err := fitingtree.BuildCount(keys, 50, true)
		if err != nil {
			return nil, err
		}
		pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: 50})
		if err != nil {
			return nil, err
		}
		rmiNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			rmiIx.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		})
		fitNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			fit.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		})
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeSumRel(q.L, q.U, 0.01) //nolint:errcheck
		})
		t.AddRow(fmt.Sprintf("%d", len(keys)), fmtNs(rmiNs), fmtNs(fitNs), fmtNs(pfNs))
	}
	t.Notes = "paper Fig.18: all methods insensitive to dataset size (log-time lookups)"
	return t, nil
}

// runFig19: index memory vs εabs.
func runFig19(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	t := &Table{
		ID:      "fig19",
		Title:   fmt.Sprintf("index size (KB) vs εabs for COUNT (single key), TWEET n=%d", len(keys)),
		Headers: []string{"εabs", "RMI KB", "FITing-tree KB", "PolyFit-2 KB", "PolyFit segments"},
	}
	for _, eps := range absSweep(cfg) {
		delta := eps / 2
		rmiIx, err := rmi.BuildCountWithGuarantee(keys, delta, 1<<18, false)
		if err != nil {
			return nil, err
		}
		fit, err := fitingtree.BuildCount(keys, delta, false)
		if err != nil {
			return nil, err
		}
		pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: delta, NoFallback: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", eps),
			fmtBytesKB(rmiIx.SizeBytes()), fmtBytesKB(fit.SizeBytes()),
			fmtBytesKB(pf.SizeBytes()), fmt.Sprintf("%d", pf.NumSegments()))
	}
	t.Notes = "paper Fig.19: PolyFit smallest across the εabs range (minimum-cardinality segments)"
	return t, nil
}

// runFig20: heuristic methods — response time vs measured relative error.
func runFig20(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+8)
	exact, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: 1}) // exact via fallback KCA
	if err != nil {
		return nil, err
	}
	exactVals := make([]float64, len(qs))
	for i, q := range qs {
		v, _, err := exact.RangeSumRel(q.L, q.U, 1e-9) // forces exact path
		if err != nil {
			return nil, err
		}
		exactVals[i] = v
	}
	measure := func(f func(l, u float64) float64) (relPct float64, ns float64) {
		sum, cnt := 0.0, 0
		for i, q := range qs {
			if exactVals[i] < 1 {
				continue
			}
			sum += abs(f(q.L, q.U)-exactVals[i]) / exactVals[i]
			cnt++
		}
		ns = nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			f(q.L, q.U)
		})
		return 100 * sum / float64(cnt), ns
	}
	t := &Table{
		ID:      "fig20",
		Title:   fmt.Sprintf("heuristics: time vs measured relative error, TWEET n=%d", len(keys)),
		Headers: []string{"method", "param", "measured rel err %", "query time"},
	}
	histBins := []int{64, 256, 1024, 4096}
	streeFracs := []float64{0.01, 0.05, 0.2}
	pfDeltas := []float64{250, 50, 10}
	if cfg.Fast {
		histBins = []int{256}
		streeFracs = []float64{0.05}
		pfDeltas = []float64{50}
	}
	for _, bins := range histBins {
		h, err := hist.New(keys, bins)
		if err != nil {
			return nil, err
		}
		rel, ns := measure(h.EstimateCount)
		t.AddRow("Hist", fmt.Sprintf("%d bins", bins), fmt.Sprintf("%.3f", rel), fmtNs(ns))
	}
	for _, frac := range streeFracs {
		st, err := sampling.NewSTree(keys, int(frac*float64(len(keys))), cfg.Seed+9)
		if err != nil {
			return nil, err
		}
		rel, ns := measure(st.EstimateCount)
		t.AddRow("S-tree", fmt.Sprintf("%.0f%% sample", frac*100), fmt.Sprintf("%.3f", rel), fmtNs(ns))
	}
	for _, delta := range pfDeltas {
		pf, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: delta, NoFallback: true})
		if err != nil {
			return nil, err
		}
		rel, ns := measure(func(l, u float64) float64 {
			v, _ := pf.RangeSum(l, u)
			return v
		})
		t.AddRow("PolyFit-2", fmt.Sprintf("δ=%.0f", delta), fmt.Sprintf("%.3f", rel), fmtNs(ns))
	}
	t.Notes = "paper Fig.20: PolyFit gives a better time/error frontier than Hist and S-tree"
	return t, nil
}
