package experiments

import (
	"fmt"
	"sync"

	"repro/internal/data"
)

// Dataset construction is deterministic but not free, so generated datasets
// are cached per (kind, size, seed) for the lifetime of the process; the
// full suite reuses them across experiments.
var dsCache sync.Map

func cacheKey(kind string, n int, seed int64) string {
	return fmt.Sprintf("%s/%d/%d", kind, n, seed)
}

type hkiData struct{ keys, measures []float64 }

func hki(cfg Config) hkiData {
	k := cacheKey("hki", cfg.HKISize, cfg.Seed)
	if v, ok := dsCache.Load(k); ok {
		return v.(hkiData)
	}
	keys, measures := data.GenHKI(cfg.HKISize, cfg.Seed)
	d := hkiData{keys: keys, measures: measures}
	dsCache.Store(k, d)
	return d
}

func tweetKeys(cfg Config) []float64 {
	k := cacheKey("tweet", cfg.TweetSize, cfg.Seed)
	if v, ok := dsCache.Load(k); ok {
		return v.([]float64)
	}
	keys := data.GenTweet(cfg.TweetSize, cfg.Seed)
	dsCache.Store(k, keys)
	return keys
}

type osmData struct{ xs, ys []float64 }

func osm(cfg Config) osmData {
	k := cacheKey("osm", cfg.OSMSize, cfg.Seed)
	if v, ok := dsCache.Load(k); ok {
		return v.(osmData)
	}
	xs, ys := data.GenOSM(cfg.OSMSize, cfg.Seed)
	d := osmData{xs: xs, ys: ys}
	dsCache.Store(k, d)
	return d
}

func osmLatKeys(cfg Config, n int) []float64 {
	k := cacheKey("osmlat", n, cfg.Seed)
	if v, ok := dsCache.Load(k); ok {
		return v.([]float64)
	}
	keys := data.GenOSMLatKeys(n, cfg.Seed)
	dsCache.Store(k, keys)
	return keys
}
