package experiments

import (
	"fmt"
	"math"

	"repro/internal/artree"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fitingtree"
	"repro/internal/nn"
	"repro/internal/rmi"
	"repro/internal/sampling"
	"repro/internal/segment"
)

func init() {
	register("table5", runTable5)
	register("table6", runTable6)
	register("ablation", runAblation)
}

// runTable5 reproduces Table V: response time for every method with the
// error guarantee, Problems 1 and 2 × {COUNT-1D, MAX-1D, COUNT-2D}.
func runTable5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "response time for all methods with error guarantee (Table V)",
		Headers: []string{"problem", "query", "S2", "aR-tree", "RMI", "FITing-tree", "PolyFit-2"},
	}
	keys := tweetKeys(cfg)
	qs := data.RangeQueriesFromKeys(keys, cfg.Queries, cfg.Seed+20)
	hkiD := hki(cfg)
	qsHKI := data.RangeQueriesFromKeys(hkiD.keys, cfg.Queries, cfg.Seed+21)
	osmD := osm(cfg)
	qsRect := rectQueries(cfg, 22)

	const epsAbs1D = 100.0
	const epsAbs2D = 1000.0
	const epsRel = 0.01

	// ---- shared structures -------------------------------------------------
	s2, err := sampling.NewS2(keys, 0.9, cfg.Seed+23)
	if err != nil {
		return nil, err
	}
	maxTree, err := artree.NewMaxTree(hkiD.keys, hkiD.measures, artree.Max)
	if err != nil {
		return nil, err
	}
	rt, err := exactRTree(cfg, osmD)
	if err != nil {
		return nil, err
	}

	// ---- Problem 1 ----------------------------------------------------------
	// COUNT single key (εabs = 100 → δ = 50).
	rmiAbs, err := rmi.BuildCountWithGuarantee(keys, epsAbs1D/2, 1<<18, false)
	if err != nil {
		return nil, err
	}
	fitAbs, err := fitingtree.BuildCount(keys, epsAbs1D/2, false)
	if err != nil {
		return nil, err
	}
	pfAbs, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: epsAbs1D / 2, NoFallback: true})
	if err != nil {
		return nil, err
	}
	s2Ns := nsPerOp(timingBudget, 0, func(i int) {
		q := qs[i%len(qs)]
		s2.CountAbs(q.L, q.U, epsAbs1D)
	})
	rmiNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		rmiAbs.RangeSum(q.L, q.U)
	})
	fitNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		fitAbs.RangeSum(q.L, q.U)
	})
	pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		pfAbs.RangeSum(q.L, q.U) //nolint:errcheck
	})
	t.AddRow("1 (εabs=100)", "COUNT 1 key", fmtNs(s2Ns), "n/a", fmtNs(rmiNs), fmtNs(fitNs), fmtNs(pfNs))

	// MAX single key (εabs = 100 → δ = 100).
	pfMaxAbs, err := core.BuildMax(hkiD.keys, hkiD.measures, core.Options{Degree: 2, Delta: epsAbs1D, NoFallback: true})
	if err != nil {
		return nil, err
	}
	arMaxNs := nsPerOp(timingBudget, len(qsHKI)/4, func(i int) {
		q := qsHKI[i%len(qsHKI)]
		maxTree.Query(q.L, q.U)
	})
	pfMaxNs := nsPerOp(timingBudget, len(qsHKI)/4, func(i int) {
		q := qsHKI[i%len(qsHKI)]
		pfMaxAbs.RangeExtremum(q.L, q.U) //nolint:errcheck
	})
	t.AddRow("1 (εabs=100)", "MAX 1 key", "n/a", fmtNs(arMaxNs), "n/a", "n/a", fmtNs(pfMaxNs))

	// COUNT two keys (εabs = 1000 → δ = 250).
	pf2dAbs, err := core.BuildCount2D(osmD.xs, osmD.ys, core.Options2D{Degree: 2, Delta: core.Delta2DForAbs(epsAbs2D), NoFallback: true})
	if err != nil {
		return nil, err
	}
	s2Rect := nsPerOp(timingBudget, 0, func(i int) {
		q := qsRect[i%len(qsRect)]
		s2.Count2DAbs(osmD.xs, osmD.ys, q.XLo, q.XHi, q.YLo, q.YHi, epsAbs2D)
	})
	arRectNs := nsPerOp(timingBudget, len(qsRect)/4, func(i int) {
		q := qsRect[i%len(qsRect)]
		rt.CountRect(artree.Rect{
			XLo: math.Nextafter(q.XLo, math.Inf(1)), XHi: q.XHi,
			YLo: math.Nextafter(q.YLo, math.Inf(1)), YHi: q.YHi,
		})
	})
	pf2dNs := nsPerOp(timingBudget, len(qsRect)/4, func(i int) {
		q := qsRect[i%len(qsRect)]
		pf2dAbs.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
	})
	t.AddRow("1 (εabs=1000)", "COUNT 2 keys", fmtNs(s2Rect), fmtNs(arRectNs), "n/a", "n/a", fmtNs(pf2dNs))

	// ---- Problem 2 (εrel = 0.01; δ = 50 / 250 per the paper) ---------------
	rmiRel, err := rmi.BuildCountWithGuarantee(keys, 50, 1<<18, true)
	if err != nil {
		return nil, err
	}
	fitRel, err := fitingtree.BuildCount(keys, 50, true)
	if err != nil {
		return nil, err
	}
	pfRel, err := core.BuildCount(keys, core.Options{Degree: 2, Delta: 50})
	if err != nil {
		return nil, err
	}
	s2RelNs := nsPerOp(timingBudget, 0, func(i int) {
		q := qs[i%len(qs)]
		s2.CountRel(q.L, q.U, epsRel)
	})
	rmiRelNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		rmiRel.RangeSumRel(q.L, q.U, epsRel) //nolint:errcheck
	})
	fitRelNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		fitRel.RangeSumRel(q.L, q.U, epsRel) //nolint:errcheck
	})
	pfRelNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		pfRel.RangeSumRel(q.L, q.U, epsRel) //nolint:errcheck
	})
	t.AddRow("2 (εrel=0.01)", "COUNT 1 key", fmtNs(s2RelNs), "n/a", fmtNs(rmiRelNs), fmtNs(fitRelNs), fmtNs(pfRelNs))

	pfMaxRel, err := core.BuildMax(hkiD.keys, hkiD.measures, core.Options{Degree: 2, Delta: 50})
	if err != nil {
		return nil, err
	}
	pfMaxRelNs := nsPerOp(timingBudget, len(qsHKI)/4, func(i int) {
		q := qsHKI[i%len(qsHKI)]
		pfMaxRel.RangeExtremumRel(q.L, q.U, epsRel) //nolint:errcheck
	})
	t.AddRow("2 (εrel=0.01)", "MAX 1 key", "n/a", fmtNs(arMaxNs), "n/a", "n/a", fmtNs(pfMaxRelNs))

	pf2dRel, err := core.BuildCount2D(osmD.xs, osmD.ys, core.Options2D{Degree: 2, Delta: 250})
	if err != nil {
		return nil, err
	}
	pf2dRelNs := nsPerOp(timingBudget, len(qsRect)/4, func(i int) {
		q := qsRect[i%len(qsRect)]
		pf2dRel.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, epsRel) //nolint:errcheck
	})
	t.AddRow("2 (εrel=0.01)", "COUNT 2 keys", fmtNs(s2Rect), fmtNs(arRectNs), "n/a", "n/a", fmtNs(pf2dRelNs))

	t.Notes = "paper Table V: PolyFit fastest everywhere; S2 slower by 5–6 orders of magnitude"
	return t, nil
}

// runTable6 reproduces appendix Table VI: single-model selection for RMI —
// linear regression vs small neural networks fitting CFsum of TWEET.
func runTable6(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	// Train on a subsample to keep NN training in seconds.
	const trainN = 4000
	stride := len(keys) / trainN
	if stride < 1 {
		stride = 1
	}
	var xs, ys []float64
	for i := 0; i < len(keys); i += stride {
		xs = append(xs, keys[i])
		ys = append(ys, float64(i+1))
	}
	qs := data.RangeQueriesFromKeys(keys, 200, cfg.Seed+30)
	exactCount := func(l, u float64) float64 {
		// keys sorted: counts via binary search on the full key set.
		return float64(rank(keys, u) - rank(keys, l))
	}
	measuredRel := func(cf func(float64) float64) float64 {
		sum, cnt := 0.0, 0
		for _, q := range qs {
			want := exactCount(q.L, q.U)
			if want < 1 {
				continue
			}
			got := cf(q.U) - cf(q.L)
			sum += abs(got-want) / want
			cnt++
		}
		return 100 * sum / float64(cnt)
	}

	t := &Table{
		ID:      "table6",
		Title:   "single-model selection for RMI: LR vs NN fitting CFsum (appendix Table VI)",
		Headers: []string{"model", "architecture", "prediction time", "measured rel err %"},
	}
	// LR: one global linear model (an RMI with a single stage of width 1).
	lrIx, err := rmi.BuildCount(keys, []int{1}, false)
	if err != nil {
		return nil, err
	}
	lrNs := nsPerOp(timingBudget, 100, func(i int) {
		lrIx.CF(keys[i%len(keys)])
	})
	t.AddRow("LR", "n/a", fmtNs(lrNs), fmt.Sprintf("%.1f", measuredRel(lrIx.CF)))

	archs := [][]int{{1, 4, 1}, {1, 8, 1}, {1, 16, 1}, {1, 4, 4, 1}, {1, 8, 8, 1}, {1, 16, 16, 1}}
	epochs := 120
	if cfg.Fast {
		archs = [][]int{{1, 8, 1}, {1, 8, 8, 1}}
		epochs = 40
	}
	for _, arch := range archs {
		m, err := nn.New(arch, cfg.Seed+31)
		if err != nil {
			return nil, err
		}
		if err := m.Fit(xs, ys, nn.Config{Epochs: epochs, Seed: cfg.Seed + 31, LR: 2e-3}); err != nil {
			return nil, err
		}
		pred := m.Predictor()
		// Training targets were full-dataset ranks, so predictions are
		// already on the CF scale.
		cf := func(k float64) float64 { return pred(k) }
		nnNs := nsPerOp(timingBudget, 100, func(i int) {
			pred(keys[i%len(keys)])
		})
		t.AddRow("NN", m.Arch(), fmtNs(nnNs), fmt.Sprintf("%.1f", measuredRel(cf)))
	}
	t.Notes = "paper Table VI: NNs cost 6–50x more prediction time than LR; LR is the right RMI building block"
	return t, nil
}

func rank(keys []float64, k float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// runAblation measures this implementation's own design choices: the
// exponential-search speedup of GS (the paper cites [10]), the exchange vs
// dual-simplex fitting backends, and the degree/segment-count trade-off.
func runAblation(cfg Config) (*Table, error) {
	keys := tweetKeys(cfg)
	n := 20_000
	if cfg.Fast {
		n = 5_000
	}
	if len(keys) > n {
		keys = keys[:n]
	}
	cf := make([]float64, len(keys))
	for i := range cf {
		cf[i] = float64(i + 1)
	}
	t := &Table{
		ID:      "ablation",
		Title:   fmt.Sprintf("build-path ablations, TWEET prefix n=%d, δ=50", len(keys)),
		Headers: []string{"variant", "build time", "segments"},
	}
	variants := []struct {
		name string
		cfg  segment.Config
	}{
		{"GS + exp-search + exchange (default)", segment.Config{Degree: 2, Delta: 50}},
		{"GS linear scan (Algorithm 1 verbatim)", segment.Config{Degree: 2, Delta: 50, NoExpSearch: true}},
		{"GS + exp-search + dual-simplex LP", segment.Config{Degree: 2, Delta: 50, Backend: segment.DualLP}},
		{"degree 1", segment.Config{Degree: 1, Delta: 50}},
		{"degree 3", segment.Config{Degree: 3, Delta: 50}},
	}
	for _, v := range variants {
		elapsed, segs, err := timeSegmentation(keys, cf, v.cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmt.Sprintf("%.3fs", elapsed), fmt.Sprintf("%d", segs))
	}
	t.Notes = "all variants produce the same (optimal) segment count per Theorem 1 at equal degree"
	return t, nil
}

func timeSegmentation(keys, cf []float64, sc segment.Config) (seconds float64, segs int, err error) {
	start := nowSeconds()
	out, err := segment.Greedy(keys, cf, sc)
	if err != nil {
		return 0, 0, err
	}
	return nowSeconds() - start, len(out), nil
}
