package experiments

import (
	"fmt"
	"math"

	"repro/internal/artree"
	"repro/internal/core"
	"repro/internal/data"
)

func init() {
	register("fig15b", runFig15b)
	register("fig16b", runFig16b)
}

func absSweep2D(cfg Config) []float64 {
	if cfg.Fast {
		return []float64{1000}
	}
	return []float64{500, 1000, 2000}
}

// exactRTree builds (and caches per config) the aR-tree over the OSM points.
func exactRTree(cfg Config, d osmData) (*artree.RTree, error) {
	k := cacheKey("osmrtree", cfg.OSMSize, cfg.Seed)
	if v, ok := dsCache.Load(k); ok {
		return v.(*artree.RTree), nil
	}
	rt, err := artree.NewRTree(d.xs, d.ys, 0, 0)
	if err != nil {
		return nil, err
	}
	dsCache.Store(k, rt)
	return rt, nil
}

func rectQueries(cfg Config, shift int64) []data.RectQuery {
	return data.UniformRects(-180, 180, -90, 90, cfg.Queries, cfg.Seed+shift)
}

// runFig15b: 2D COUNT query time vs εabs — aR-tree vs PolyFit-2.
func runFig15b(cfg Config) (*Table, error) {
	d := osm(cfg)
	qs := rectQueries(cfg, 11)
	rt, err := exactRTree(cfg, d)
	if err != nil {
		return nil, err
	}
	arNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		rt.CountRect(artree.Rect{
			XLo: math.Nextafter(q.XLo, math.Inf(1)), XHi: q.XHi,
			YLo: math.Nextafter(q.YLo, math.Inf(1)), YHi: q.YHi,
		})
	})
	t := &Table{
		ID:      "fig15b",
		Title:   fmt.Sprintf("COUNT (two keys) query time vs εabs, OSM n=%d", len(d.xs)),
		Headers: []string{"εabs", "aR-tree (exact)", "PolyFit-2", "leaves"},
	}
	for _, eps := range absSweep2D(cfg) {
		pf, err := core.BuildCount2D(d.xs, d.ys, core.Options2D{
			Degree: 2, Delta: core.Delta2DForAbs(eps), NoFallback: true,
		})
		if err != nil {
			return nil, err
		}
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		})
		t.AddRow(fmt.Sprintf("%.0f", eps), fmtNs(arNs), fmtNs(pfNs), fmt.Sprintf("%d", pf.NumLeaves()))
	}
	t.Notes = "paper Fig.15b: PolyFit ≥ one order of magnitude faster than the aR-tree"
	return t, nil
}

// runFig16b: 2D COUNT query time vs εrel — aR-tree vs PolyFit-2 (δ=250).
func runFig16b(cfg Config) (*Table, error) {
	d := osm(cfg)
	qs := rectQueries(cfg, 12)
	rt, err := exactRTree(cfg, d)
	if err != nil {
		return nil, err
	}
	arNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
		q := qs[i%len(qs)]
		rt.CountRect(artree.Rect{
			XLo: math.Nextafter(q.XLo, math.Inf(1)), XHi: q.XHi,
			YLo: math.Nextafter(q.YLo, math.Inf(1)), YHi: q.YHi,
		})
	})
	pf, err := core.BuildCount2D(d.xs, d.ys, core.Options2D{Degree: 2, Delta: 250})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig16b",
		Title:   fmt.Sprintf("COUNT (two keys) query time vs εrel, OSM n=%d, δ=250", len(d.xs)),
		Headers: []string{"εrel", "aR-tree (exact)", "PolyFit-2", "fallback%"},
	}
	for _, eps := range relSweep(cfg) {
		pfNs := nsPerOp(timingBudget, len(qs)/4, func(i int) {
			q := qs[i%len(qs)]
			pf.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, eps) //nolint:errcheck
		})
		exactUsed := 0
		for _, q := range qs {
			if _, used, _ := pf.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, eps); used {
				exactUsed++
			}
		}
		t.AddRow(fmt.Sprintf("%.3f", eps), fmtNs(arNs), fmtNs(pfNs),
			fmt.Sprintf("%.0f%%", 100*float64(exactUsed)/float64(len(qs))))
	}
	t.Notes = "paper Fig.16b: PolyFit stays ahead of the aR-tree across the εrel range"
	return t, nil
}
