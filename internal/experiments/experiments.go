// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII and the appendix) on the synthetic stand-in
// datasets. Each experiment is a named runner returning a Table; the
// cmd/polyfit-experiments binary renders them, and bench_test.go wraps each
// one in a testing.B benchmark.
//
// Response-time numbers are wall-clock per-query averages over the paper's
// workloads (1000 queries by default); absolute values depend on the host,
// but the comparisons the paper reports — who wins and by roughly what
// factor — are reproduced. See EXPERIMENTS.md for paper-vs-measured notes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config scales the experiment suite. Zero values take defaults sized so
// the full suite runs in a few minutes on a laptop; the paper's full scale
// (0.9M–100M records) is reachable by raising the sizes.
type Config struct {
	HKISize   int   // default 150_000 (paper: 0.9M)
	TweetSize int   // default 200_000 (paper: 1M)
	OSMSize   int   // default 120_000 (paper: 100M; see DESIGN.md §1.5)
	Queries   int   // default 1000 (paper: 1000)
	Seed      int64 // default 42
	Fast      bool  // trims sweeps for bench runs
}

func (c Config) withDefaults() Config {
	if c.HKISize == 0 {
		c.HKISize = 150_000
	}
	if c.TweetSize == 0 {
		c.TweetSize = 200_000
	}
	if c.OSMSize == 0 {
		c.OSMSize = 120_000
	}
	if c.Queries == 0 {
		c.Queries = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Table is one reproduced table or figure, as printable rows.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as GitHub-flavoured markdown.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "\n*%s*\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner produces one experiment table.
type Runner func(Config) (*Table, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// IDs lists all experiment ids in registration (paper) order.
func IDs() []string { return append([]string(nil), registryOrder...) }

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	return r(cfg.withDefaults())
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, id := range registryOrder {
		t, err := registry[id](cfg.withDefaults())
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// --- timing helpers ---------------------------------------------------------

// nsPerOp measures the average wall time of op by looping it until minDur
// has elapsed (with one untimed warm-up pass of warmup calls).
func nsPerOp(minDur time.Duration, warmup int, op func(i int)) float64 {
	for i := 0; i < warmup; i++ {
		op(i)
	}
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur {
		op(iters)
		iters++
	}
	elapsed := time.Since(start)
	if iters == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / float64(iters)
}

const timingBudget = 40 * time.Millisecond

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e4:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtBytesKB(b int) string { return fmt.Sprintf("%.1f", float64(b)/1024) }

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
