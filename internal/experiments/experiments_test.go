package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fastCfg() Config {
	return Config{
		HKISize:   15_000,
		TweetSize: 15_000,
		OSMSize:   10_000,
		Queries:   100,
		Seed:      7,
		Fast:      true,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig14a", "fig14b", "fig14c", "fig15a", "fig15b",
		"fig16a", "fig16b", "fig17a", "fig17b", "fig18", "fig19", "fig20",
		"table5", "table6", "ablation",
	}
	got := map[string]bool{}
	for _, id := range IDs() {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", fastCfg()); err == nil {
		t.Error("unknown id should error")
	}
}

// TestEveryExperimentRuns executes the full registry at toy scale and checks
// each table renders with rows.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	cfg := fastCfg()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			start := time.Now()
			tab, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if tab.ID != id {
				t.Errorf("table id %q", tab.ID)
			}
			if len(tab.Rows) == 0 || len(tab.Headers) == 0 {
				t.Fatalf("empty table")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Fatalf("row width %d != header width %d (%v)", len(row), len(tab.Headers), row)
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Error("render missing id")
			}
			var md bytes.Buffer
			tab.RenderMarkdown(&md)
			if !strings.Contains(md.String(), "|") {
				t.Error("markdown render empty")
			}
			t.Logf("%s ok in %v (%d rows)", id, time.Since(start).Round(time.Millisecond), len(tab.Rows))
		})
	}
}

func TestNsPerOpMeasuresSomething(t *testing.T) {
	x := 0
	ns := nsPerOp(5*time.Millisecond, 10, func(i int) { x += i })
	if ns <= 0 {
		t.Errorf("nsPerOp = %g", ns)
	}
	_ = x
}

func TestFmtHelpers(t *testing.T) {
	if fmtNs(500) != "500ns" {
		t.Errorf("fmtNs(500) = %q", fmtNs(500))
	}
	if !strings.HasSuffix(fmtNs(5e4), "µs") {
		t.Errorf("fmtNs(5e4) = %q", fmtNs(5e4))
	}
	if !strings.HasSuffix(fmtNs(5e7), "ms") {
		t.Errorf("fmtNs(5e7) = %q", fmtNs(5e7))
	}
	if fmtBytesKB(2048) != "2.0" {
		t.Errorf("fmtBytesKB = %q", fmtBytesKB(2048))
	}
}
