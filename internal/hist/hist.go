// Package hist implements the entropy-based histogram baseline (Hist [52],
// §VII-E): a heuristic COUNT estimator with no error guarantee. Bucket
// probabilities maximise entropy when they are equal, so the max-entropy
// histogram over key frequencies is the equi-depth histogram; counts inside
// partially covered buckets are interpolated under the uniform assumption.
package hist

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is an equi-depth (max-entropy) histogram over a sorted key set.
type Histogram struct {
	// bounds[i] .. bounds[i+1] delimits bucket i; len(bounds) = buckets+1.
	// Boundary values are bucket maxima taken from the data.
	bounds []float64
	// counts[i] is the exact number of keys in bucket i.
	counts []float64
	// cum[i] = Σ counts[0..i-1]; len(cum) = len(counts)+1.
	cum []float64
	n   int
}

// New builds a histogram with the given bucket count from keys sorted
// ascending.
func New(keys []float64, buckets int) (*Histogram, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("hist: empty key set")
	}
	if buckets < 1 {
		return nil, fmt.Errorf("hist: need ≥ 1 bucket")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("hist: keys not sorted at %d", i)
		}
	}
	if buckets > len(keys) {
		buckets = len(keys)
	}
	n := len(keys)
	h := &Histogram{n: n}
	h.bounds = append(h.bounds, keys[0])
	prev := 0
	for b := 1; b <= buckets; b++ {
		end := n * b / buckets // exclusive index
		if end <= prev {
			continue
		}
		h.bounds = append(h.bounds, keys[end-1])
		h.counts = append(h.counts, float64(end-prev))
		prev = end
	}
	h.cum = make([]float64, len(h.counts)+1)
	for i, c := range h.counts {
		h.cum[i+1] = h.cum[i] + c
	}
	return h, nil
}

// EstimateCount estimates |{k : lq < k ≤ uq}| under the uniform-in-bucket
// assumption.
func (h *Histogram) EstimateCount(lq, uq float64) float64 {
	if uq < lq {
		return 0
	}
	return h.cdf(uq) - h.cdf(lq)
}

// cdf estimates |{key ≤ k}|.
func (h *Histogram) cdf(k float64) float64 {
	if k < h.bounds[0] {
		return 0
	}
	last := len(h.bounds) - 1
	if k >= h.bounds[last] {
		return float64(h.n)
	}
	i := sort.SearchFloat64s(h.bounds, k)
	if i < len(h.bounds) && h.bounds[i] == k {
		// Exactly at a boundary: boundary values are bucket maxima, so the
		// cumulative count through bucket i−1 is exact.
		return h.cum[i]
	}
	i--
	lo, hi := h.bounds[i], h.bounds[i+1]
	frac := 0.0
	if hi > lo {
		frac = (k - lo) / (hi - lo)
	}
	return h.cum[i] + frac*h.counts[i]
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Entropy returns the Shannon entropy of the bucket distribution (maximal
// when buckets are equi-depth — the property the baseline is named for).
func (h *Histogram) Entropy() float64 {
	e := 0.0
	for _, c := range h.counts {
		if c == 0 {
			continue
		}
		p := c / float64(h.n)
		e -= p * math.Log2(p)
	}
	return e
}

// SizeBytes reports the structure footprint.
func (h *Histogram) SizeBytes() int {
	return 8 * (len(h.bounds) + len(h.counts) + len(h.cum))
}
