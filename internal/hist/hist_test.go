package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.NormFloat64() * 50
	}
	sort.Float64s(keys)
	return keys
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, 10); err == nil {
		t.Error("empty input should error")
	}
	if _, err := New([]float64{1, 2}, 0); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := New([]float64{2, 1}, 2); err == nil {
		t.Error("unsorted keys should error")
	}
}

func TestWholeDomainExact(t *testing.T) {
	keys := genKeys(1000, 1)
	h, err := New(keys, 32)
	if err != nil {
		t.Fatal(err)
	}
	got := h.EstimateCount(keys[0]-1, keys[len(keys)-1]+1)
	if got != 1000 {
		t.Errorf("whole-domain estimate = %g, want 1000", got)
	}
	if got := h.EstimateCount(5, 1); got != 0 {
		t.Errorf("inverted range = %g, want 0", got)
	}
}

func TestBoundaryQueriesExact(t *testing.T) {
	// Queries whose endpoints are bucket boundaries are answered exactly.
	keys := genKeys(2048, 2)
	h, err := New(keys, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries are keys[n*b/64 - 1].
	for b := 1; b < 64; b += 7 {
		lq := keys[2048*b/64-1]
		uq := keys[2048*(b+1)/64-1]
		got := h.EstimateCount(lq, uq)
		want := 0.0
		for _, k := range keys {
			if k > lq && k <= uq {
				want++
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("boundary query (%g,%g] = %g, want %g", lq, uq, got, want)
		}
	}
}

func TestEstimateAccuracyImprovesWithBuckets(t *testing.T) {
	keys := genKeys(20000, 3)
	rng := rand.New(rand.NewSource(4))
	type q struct{ l, u float64 }
	qs := make([]q, 200)
	for i := range qs {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		qs[i] = q{l, u}
	}
	exact := func(l, u float64) float64 {
		c := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				c++
			}
		}
		return c
	}
	var prevErr float64 = math.Inf(1)
	for _, buckets := range []int{8, 64, 512} {
		h, err := New(keys, buckets)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, qq := range qs {
			sum += math.Abs(h.EstimateCount(qq.l, qq.u) - exact(qq.l, qq.u))
		}
		mean := sum / float64(len(qs))
		if mean > prevErr*1.2 {
			t.Errorf("%d buckets: mean error %g did not improve on %g", buckets, mean, prevErr)
		}
		prevErr = mean
	}
}

func TestEntropyNearMaximal(t *testing.T) {
	keys := genKeys(4096, 5)
	h, err := New(keys, 64)
	if err != nil {
		t.Fatal(err)
	}
	maxEntropy := math.Log2(64)
	if h.Entropy() < maxEntropy-0.01 {
		t.Errorf("equi-depth entropy %g should be ≈ max %g", h.Entropy(), maxEntropy)
	}
	if h.Buckets() != 64 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	if h.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestMoreBucketsThanKeys(t *testing.T) {
	keys := []float64{1, 2, 3}
	h, err := New(keys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() > 3 {
		t.Errorf("bucket count %d should clamp to key count", h.Buckets())
	}
	if got := h.EstimateCount(0, 10); got != 3 {
		t.Errorf("estimate = %g, want 3", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := []float64{1, 1, 1, 2, 2, 3, 3, 3, 3, 5}
	h, err := New(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateCount(0, 10); got != 10 {
		t.Errorf("whole-range = %g, want 10", got)
	}
}
