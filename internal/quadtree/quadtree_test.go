package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func genClustered(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			xs[i] = 30 + rng.NormFloat64()*8
			ys[i] = -20 + rng.NormFloat64()*5
		} else {
			xs[i] = -100 + rng.Float64()*200
			ys[i] = -50 + rng.Float64()*100
		}
	}
	return
}

func buildTree(t *testing.T, n int, seed int64, cfg Config) (*Tree, []float64, []float64, *data.DominanceCounter) {
	t.Helper()
	xs, ys := genClustered(n, seed)
	dc := data.NewDominanceCounter(xs, ys)
	tr, err := Build(xs, ys, dc.Count, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, xs, ys, dc
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, nil, Config{Delta: 1}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Build([]float64{1}, []float64{1, 2}, nil, Config{Delta: 1}); err == nil {
		t.Error("mismatched input should error")
	}
	xs := []float64{1, 2}
	ys := []float64{1, 2}
	dc := data.NewDominanceCounter(xs, ys)
	if _, err := Build(xs, ys, dc.Count, Config{Delta: -5}); err == nil {
		t.Error("negative delta should error")
	}
}

func TestLeavesSatisfyDelta(t *testing.T) {
	tr, _, _, _ := buildTree(t, 4000, 1, Config{Degree: 2, Delta: 30})
	if tr.ForcedLeaves != 0 {
		t.Errorf("%d forced leaves; want 0", tr.ForcedLeaves)
	}
	var walk func(*Cell)
	leaves := 0
	walk = func(c *Cell) {
		if c.IsLeaf() {
			leaves++
			if c.MaxErr > 30+1e-9 {
				t.Fatalf("leaf [%g,%g]x[%g,%g] has MaxErr %g > δ", c.XLo, c.XHi, c.YLo, c.YHi, c.MaxErr)
			}
			return
		}
		for i := range c.Kids {
			walk(&c.Kids[i])
		}
	}
	walk(&tr.Root)
	if leaves != tr.NumLeaves {
		t.Errorf("NumLeaves=%d but %d leaves found", tr.NumLeaves, leaves)
	}
}

func TestEvalCFApproximatesTrueCF(t *testing.T) {
	const delta = 25.0
	tr, xs, ys, dc := buildTree(t, 5000, 2, Config{Degree: 2, Delta: delta})
	rng := rand.New(rand.NewSource(3))
	maxErr := 0.0
	within := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		var x, y float64
		if i%2 == 0 {
			j := rng.Intn(len(xs))
			x, y = xs[j], ys[j]
		} else {
			x = -100 + rng.Float64()*200
			y = -50 + rng.Float64()*100
		}
		got := tr.EvalCF(x, y)
		want := dc.CountOne(x, y)
		e := math.Abs(got - want)
		if e > maxErr {
			maxErr = e
		}
		if e <= delta+1e-6 {
			within++
		}
	}
	// The δ constraint binds at fit samples; arbitrary locations carry the
	// documented slack. Demand ≥95% within δ and nothing beyond 3δ.
	if within < trials*95/100 {
		t.Errorf("only %d/%d evaluations within δ", within, trials)
	}
	if maxErr > 3*delta {
		t.Errorf("max CF error %g exceeds 3δ", maxErr)
	}
}

func TestSmallerDeltaMoreLeaves(t *testing.T) {
	prev := 0
	for _, delta := range []float64{200, 50, 15} {
		tr, _, _, _ := buildTree(t, 3000, 4, Config{Degree: 2, Delta: delta})
		if prev > 0 && tr.NumLeaves < prev {
			t.Errorf("δ=%g gave %d leaves, fewer than larger δ's %d", delta, tr.NumLeaves, prev)
		}
		prev = tr.NumLeaves
	}
}

func TestLocateDescendsToContainingLeaf(t *testing.T) {
	tr, _, _, _ := buildTree(t, 2000, 5, Config{Degree: 2, Delta: 20})
	rng := rand.New(rand.NewSource(6))
	xlo, xhi, ylo, yhi := tr.Bounds()
	for i := 0; i < 300; i++ {
		x := xlo + rng.Float64()*(xhi-xlo)
		y := ylo + rng.Float64()*(yhi-ylo)
		c := tr.Locate(x, y)
		if !c.IsLeaf() {
			t.Fatal("Locate returned internal cell")
		}
		if x < c.XLo-1e-9 || x > c.XHi+1e-9 || y < c.YLo-1e-9 || y > c.YHi+1e-9 {
			t.Fatalf("point (%g,%g) outside located cell [%g,%g]x[%g,%g]", x, y, c.XLo, c.XHi, c.YLo, c.YHi)
		}
	}
	// Out-of-domain coordinates clamp instead of escaping.
	c := tr.Locate(xhi+100, yhi+100)
	if !c.IsLeaf() {
		t.Error("clamped locate must reach a leaf")
	}
}

func TestEvalCFOutsideDomain(t *testing.T) {
	tr, _, _, dc := buildTree(t, 1000, 7, Config{Degree: 2, Delta: 20})
	xlo, _, ylo, _ := tr.Bounds()
	if got := tr.EvalCF(xlo-10, ylo-10); got != 0 {
		t.Errorf("below-domain CF = %g, want 0", got)
	}
	// Above domain: CF saturates at n (within δ slack).
	got := tr.EvalCF(1e9, 1e9)
	want := dc.CountOne(1e9, 1e9)
	if math.Abs(got-want) > 3*20 {
		t.Errorf("above-domain CF = %g, want ≈%g", got, want)
	}
}

func TestUniformPointsFewLeaves(t *testing.T) {
	// A uniform cloud has a smooth bilinear-ish CF: degree-2 surfaces with a
	// generous δ should need very few leaves.
	rng := rand.New(rand.NewSource(8))
	n := 4000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	dc := data.NewDominanceCounter(xs, ys)
	tr, err := Build(xs, ys, dc.Count, Config{Degree: 3, Delta: float64(n) * 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves > 16 {
		t.Errorf("uniform data needed %d leaves; expected a handful", tr.NumLeaves)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// All points identical: a degenerate single-cell domain.
	xs := []float64{5, 5, 5, 5}
	ys := []float64{7, 7, 7, 7}
	dc := data.NewDominanceCounter(xs, ys)
	tr, err := Build(xs, ys, dc.Count, Config{Degree: 2, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.EvalCF(5, 7); math.Abs(got-4) > 1.001 {
		t.Errorf("CF at the point = %g, want ≈4", got)
	}
	if got := tr.EvalCF(4.9, 7); got != 0 {
		t.Errorf("CF left of the point = %g, want 0", got)
	}
}

func TestSizeBytesGrowsWithLeaves(t *testing.T) {
	small, _, _, _ := buildTree(t, 3000, 9, Config{Degree: 2, Delta: 200})
	big, _, _, _ := buildTree(t, 3000, 9, Config{Degree: 2, Delta: 10})
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("size %d (δ=200) should be < %d (δ=10)", small.SizeBytes(), big.SizeBytes())
	}
}
