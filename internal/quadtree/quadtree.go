// Package quadtree implements the quadtree-based segmentation of Section VI
// (Figure 13): the key domain is recursively split into four rectangles
// until every leaf's polynomial surface fit of the two-key cumulative
// function satisfies the bounded δ-error constraint.
//
// The cumulative surface inside a cell depends on points *outside* the cell
// (everything dominated to the lower-left), so fits are constrained on a
// uniform sample grid spanning the cell in addition to the data points it
// contains. CF values are obtained through a batched evaluator — one batch
// per tree level — so construction performs O(depth) plane sweeps in total.
package quadtree

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/minimax"
	"repro/internal/poly"
)

// CFFunc evaluates the cumulative function at a batch of points; the core
// package passes data.DominanceCounter.Count.
type CFFunc func(qx, qy []float64) []float64

// Config controls a build.
type Config struct {
	Degree int     // total degree of the fitted surfaces (default 2)
	Delta  float64 // bounded δ-error constraint per leaf
	// GridSize is the side of the CF sample lattice per cell (default 8,
	// i.e. 64 grid constraints in addition to the data points).
	GridSize int
	// MaxDataSamples caps how many in-cell data points join the fit
	// (default 256; a deterministic stride subsample is used beyond that).
	MaxDataSamples int
	// SplitThreshold skips fitting and splits immediately when a cell holds
	// more points (default 8192) — a pure build-time heuristic; never
	// affects the δ check of emitted leaves.
	SplitThreshold int
	// MaxDepth bounds recursion (default 30). Leaves forced at MaxDepth may
	// violate δ; Tree.ForcedLeaves reports how many (0 in sane builds).
	MaxDepth int
	// Parallelism is the number of goroutines used to run the per-cell
	// surface fits of each tree level; values ≤ 1 fit serially. Fits are
	// independent, so the built tree is identical for every worker count.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.GridSize <= 1 {
		c.GridSize = 8
	}
	if c.MaxDataSamples <= 0 {
		c.MaxDataSamples = 256
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 8192
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 30
	}
	return c
}

// Cell is one node of the segmentation; leaves carry the fitted surface.
type Cell struct {
	XLo, XHi, YLo, YHi float64
	Fit                poly.FramedPoly2D
	MaxErr             float64  // achieved fit error at the samples (leaves)
	Kids               *[4]Cell // nil for leaves; order: SW, SE, NW, NE
	NumPoints          int      // data points inside the cell
}

// IsLeaf reports whether the cell carries a fitted surface.
func (c *Cell) IsLeaf() bool { return c.Kids == nil }

// Tree is the built segmentation.
type Tree struct {
	Root         Cell
	NumLeaves    int
	Depth        int
	ForcedLeaves int // leaves emitted at MaxDepth despite error > δ
	cfg          Config
}

// ErrNoPoints reports an empty build input.
var ErrNoPoints = errors.New("quadtree: no points")

type pending struct {
	cell  *Cell
	idx   []int // indices of data points inside the cell
	depth int
}

// Build constructs the segmentation for points (xs, ys) whose cumulative
// function is evaluated by cf.
func Build(xs, ys []float64, cf CFFunc, cfg Config) (*Tree, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrNoPoints, len(xs), len(ys))
	}
	cfg = cfg.withDefaults()
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("quadtree: negative delta")
	}
	xlo, xhi := xs[0], xs[0]
	ylo, yhi := ys[0], ys[0]
	for i := range xs {
		xlo = math.Min(xlo, xs[i])
		xhi = math.Max(xhi, xs[i])
		ylo = math.Min(ylo, ys[i])
		yhi = math.Max(yhi, ys[i])
	}
	t := &Tree{cfg: cfg}
	t.Root = Cell{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi}
	all := make([]int, len(xs))
	for i := range all {
		all[i] = i
	}
	level := []pending{{cell: &t.Root, idx: all, depth: 1}}
	for len(level) > 0 {
		if t.Depth < level[0].depth {
			t.Depth = level[0].depth
		}
		// Assemble this level's CF sample batch.
		var qx, qy []float64
		offsets := make([]int, len(level)+1)
		for i, p := range level {
			cellQX, cellQY := sampleLocations(p, xs, ys, cfg)
			qx = append(qx, cellQX...)
			qy = append(qy, cellQY...)
			offsets[i+1] = len(qx)
		}
		vals := cf(qx, qy)
		fits := t.fitLevel(level, qx, qy, vals, offsets)
		var next []pending
		for i, p := range level {
			sv := vals[offsets[i]:offsets[i+1]]
			t.decide(p, sv, xs, ys, fits[i], &next)
		}
		level = next
	}
	return t, nil
}

// cellFit is the outcome of one cell's surface fit attempt.
type cellFit struct {
	fit   minimax.Fit2D
	err   error
	tried bool
}

// fitLevel runs the minimax surface fit for every cell of the level that
// needs one (see mustTry), fanned out over cfg.Parallelism goroutines. The
// fits are pure functions of their samples, so the parallel result — and
// therefore the whole tree — is identical to the serial one.
func (t *Tree) fitLevel(level []pending, qx, qy, vals []float64, offsets []int) []cellFit {
	fits := make([]cellFit, len(level))
	fitOne := func(i int) {
		p := level[i]
		if !t.mustTry(p) {
			return
		}
		c := p.cell
		sx := qx[offsets[i]:offsets[i+1]]
		sy := qy[offsets[i]:offsets[i+1]]
		sv := vals[offsets[i]:offsets[i+1]]
		fit, err := minimax.FitPoly2D(sx, sy, sv, t.cfg.Degree, c.XLo, c.XHi, c.YLo, c.YHi)
		fits[i] = cellFit{fit: fit, err: err, tried: true}
	}
	workers := t.cfg.Parallelism
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 {
		for i := range level {
			fitOne(i)
		}
		return fits
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) {
					return
				}
				fitOne(i)
			}
		}()
	}
	wg.Wait()
	return fits
}

// mustTry reports whether a cell attempts a fit before splitting: small
// enough, at the depth limit, or degenerate. Mirrors the decide logic.
func (t *Tree) mustTry(p pending) bool {
	c := p.cell
	degenerate := c.XHi <= c.XLo || c.YHi <= c.YLo
	return len(p.idx) <= t.cfg.SplitThreshold || p.depth >= t.cfg.MaxDepth || degenerate
}

// sampleLocations returns the fit-constraint locations for a cell: a
// GridSize×GridSize lattice including the cell boundary, plus a stride
// subsample of the data points inside the cell.
func sampleLocations(p pending, xs, ys []float64, cfg Config) ([]float64, []float64) {
	c := p.cell
	g := cfg.GridSize
	capHint := g*g + min(len(p.idx), cfg.MaxDataSamples)
	qx := make([]float64, 0, capHint)
	qy := make([]float64, 0, capHint)
	for i := 0; i < g; i++ {
		fx := float64(i) / float64(g-1)
		x := c.XLo + fx*(c.XHi-c.XLo)
		for j := 0; j < g; j++ {
			fy := float64(j) / float64(g-1)
			qx = append(qx, x)
			qy = append(qy, c.YLo+fy*(c.YHi-c.YLo))
		}
	}
	stride := 1
	if len(p.idx) > cfg.MaxDataSamples {
		stride = len(p.idx) / cfg.MaxDataSamples
	}
	for i := 0; i < len(p.idx); i += stride {
		id := p.idx[i]
		qx = append(qx, xs[id])
		qy = append(qy, ys[id])
	}
	return qx, qy
}

// decide consumes the cell's precomputed fit attempt (if any) and either
// finalises it as a leaf or splits it, pushing the four children onto the
// next level. Runs serially per level so tree bookkeeping needs no locks.
func (t *Tree) decide(p pending, sv, xs, ys []float64, pre cellFit, next *[]pending) {
	c := p.cell
	c.NumPoints = len(p.idx)
	cfg := t.cfg
	degenerate := c.XHi <= c.XLo || c.YHi <= c.YLo
	if pre.tried {
		fit, err := pre.fit, pre.err
		if err == nil && (fit.MaxErr <= cfg.Delta || p.depth >= cfg.MaxDepth || degenerate) {
			c.Fit = fit.P
			c.MaxErr = fit.MaxErr
			t.NumLeaves++
			if fit.MaxErr > cfg.Delta {
				t.ForcedLeaves++
			}
			return
		}
		if err != nil && (p.depth >= cfg.MaxDepth || degenerate) {
			// Numerical dead end on a minimal cell: emit a constant at the
			// mean so queries stay defined; counted as forced.
			c.Fit = constantFit(c, sv)
			c.MaxErr = math.Inf(1)
			t.NumLeaves++
			t.ForcedLeaves++
			return
		}
	}
	// Split at the centre (Figure 13).
	cx := 0.5 * (c.XLo + c.XHi)
	cy := 0.5 * (c.YLo + c.YHi)
	kids := &[4]Cell{
		{XLo: c.XLo, XHi: cx, YLo: c.YLo, YHi: cy}, // SW
		{XLo: cx, XHi: c.XHi, YLo: c.YLo, YHi: cy}, // SE
		{XLo: c.XLo, XHi: cx, YLo: cy, YHi: c.YHi}, // NW
		{XLo: cx, XHi: c.XHi, YLo: cy, YHi: c.YHi}, // NE
	}
	c.Kids = kids
	parts := [4][]int{}
	for _, id := range p.idx {
		q := 0
		if xs[id] > cx {
			q = 1
		}
		if ys[id] > cy {
			q += 2
		}
		parts[q] = append(parts[q], id)
	}
	for q := 0; q < 4; q++ {
		*next = append(*next, pending{cell: &kids[q], idx: parts[q], depth: p.depth + 1})
	}
}

func constantFit(c *Cell, sv []float64) poly.FramedPoly2D {
	mean := 0.0
	for _, v := range sv {
		mean += v
	}
	if len(sv) > 0 {
		mean /= float64(len(sv))
	}
	p := poly.NewPoly2D(0)
	p.C[0] = mean
	return poly.FramedPoly2D{
		F: poly.NewFrame2D(c.XLo, c.XHi, c.YLo, c.YHi),
		P: p,
	}
}

// Locate returns the leaf cell responsible for (x, y); coordinates are
// clamped into the root rectangle first.
func (t *Tree) Locate(x, y float64) *Cell {
	x = clamp(x, t.Root.XLo, t.Root.XHi)
	y = clamp(y, t.Root.YLo, t.Root.YHi)
	c := &t.Root
	for !c.IsLeaf() {
		cx := 0.5 * (c.XLo + c.XHi)
		cy := 0.5 * (c.YLo + c.YHi)
		q := 0
		if x > cx {
			q = 1
		}
		if y > cy {
			q += 2
		}
		c = &c.Kids[q]
	}
	return c
}

// EvalCF evaluates the approximate cumulative function at (x, y): 0 below
// the data domain, otherwise the located leaf's surface (clamped input).
func (t *Tree) EvalCF(x, y float64) float64 {
	if x < t.Root.XLo || y < t.Root.YLo {
		return 0
	}
	c := t.Locate(x, y)
	return c.Fit.Eval(clamp(x, c.XLo, c.XHi), clamp(y, c.YLo, c.YHi))
}

// Bounds returns the root rectangle.
func (t *Tree) Bounds() (xlo, xhi, ylo, yhi float64) {
	return t.Root.XLo, t.Root.XHi, t.Root.YLo, t.Root.YHi
}

// SizeBytes reports the memory footprint of the segmentation: rectangle
// bounds plus coefficients per leaf, pointers per internal cell.
func (t *Tree) SizeBytes() int {
	total := 0
	var walk func(*Cell)
	walk = func(c *Cell) {
		total += 32 // bounds
		if c.IsLeaf() {
			total += 32 /*frame*/ + 8*len(c.Fit.P.C)
			return
		}
		total += 8
		for i := range c.Kids {
			walk(&c.Kids[i])
		}
	}
	walk(&t.Root)
	return total
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
