// Package btree implements a static, bulk-loaded in-memory B+-tree over
// float64 keys in the style of the STX B+-tree [2] that the paper's S-tree
// baseline is built on. Internal nodes route searches; leaves store sorted
// key runs plus their global start rank, so rank (number of keys ≤ k) and
// range-count queries run in O(log n) with cache-friendly node scans.
package btree

import (
	"fmt"
	"sort"
)

// DefaultFanout is the default number of router keys per internal node and
// keys per leaf, sized to keep nodes around a cache line multiple.
const DefaultFanout = 64

// Tree is an immutable bulk-loaded B+-tree.
type Tree struct {
	root   node
	n      int
	fanout int
	height int
}

type node interface{}

type leaf struct {
	keys      []float64
	startRank int // number of keys in leaves to the left
	next      *leaf
}

type inner struct {
	// routers[i] is the max key in children[i]; len(children) == len(routers).
	routers  []float64
	children []node
}

// New bulk-loads a tree from keys sorted ascending (duplicates allowed).
// fanout ≤ 1 selects DefaultFanout.
func New(keys []float64, fanout int) (*Tree, error) {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("btree: keys not sorted at %d", i)
		}
	}
	t := &Tree{n: len(keys), fanout: fanout}
	if len(keys) == 0 {
		return t, nil
	}
	// Build leaves.
	var leaves []node
	var prev *leaf
	for s := 0; s < len(keys); s += fanout {
		e := s + fanout
		if e > len(keys) {
			e = len(keys)
		}
		lf := &leaf{keys: keys[s:e:e], startRank: s}
		if prev != nil {
			prev.next = lf
		}
		prev = lf
		leaves = append(leaves, lf)
	}
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var up []node
		for s := 0; s < len(level); s += fanout {
			e := s + fanout
			if e > len(level) {
				e = len(level)
			}
			in := &inner{children: append([]node(nil), level[s:e]...)}
			for _, c := range in.children {
				in.routers = append(in.routers, maxKey(c))
			}
			up = append(up, in)
		}
		level = up
		t.height++
	}
	t.root = level[0]
	return t, nil
}

func maxKey(n node) float64 {
	switch v := n.(type) {
	case *leaf:
		return v.keys[len(v.keys)-1]
	case *inner:
		return v.routers[len(v.routers)-1]
	}
	panic("btree: unknown node type")
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.n }

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Rank returns the number of keys ≤ k.
func (t *Tree) Rank(k float64) int {
	if t.n == 0 {
		return 0
	}
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			// First child that can hold a key > k (duplicates may spill
			// across siblings, so routers equal to k must be skipped);
			// if none, the last child.
			i := sort.Search(len(v.routers), func(j int) bool { return v.routers[j] > k })
			if i == len(v.routers) {
				i = len(v.routers) - 1
			}
			n = v.children[i]
		case *leaf:
			// Upper bound within the leaf.
			i := sort.Search(len(v.keys), func(j int) bool { return v.keys[j] > k })
			return v.startRank + i
		}
	}
}

// Contains reports whether k is present.
func (t *Tree) Contains(k float64) bool {
	if t.n == 0 {
		return false
	}
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			i := sort.SearchFloat64s(v.routers, k)
			if i == len(v.routers) {
				return false
			}
			n = v.children[i]
		case *leaf:
			i := sort.SearchFloat64s(v.keys, k)
			return i < len(v.keys) && v.keys[i] == k
		}
	}
}

// CountRange returns the number of keys in the closed interval [l, u].
func (t *Tree) CountRange(l, u float64) int {
	if t.n == 0 || u < l {
		return 0
	}
	// Rank(u) − (number of keys < l).
	return t.Rank(u) - t.rankExclusive(l)
}

// rankExclusive returns the number of keys strictly < k.
func (t *Tree) rankExclusive(k float64) int {
	if t.n == 0 {
		return 0
	}
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			i := sort.Search(len(v.routers), func(j int) bool { return v.routers[j] >= k })
			if i == len(v.routers) {
				i = len(v.routers) - 1
			}
			n = v.children[i]
		case *leaf:
			i := sort.Search(len(v.keys), func(j int) bool { return v.keys[j] >= k })
			return v.startRank + i
		}
	}
}

// Scan calls fn for every key in [l, u] in ascending order until fn returns
// false. It walks the leaf chain like a real B+-tree range scan.
func (t *Tree) Scan(l, u float64, fn func(k float64) bool) {
	if t.n == 0 || u < l {
		return
	}
	n := t.root
	var lf *leaf
	for lf == nil {
		switch v := n.(type) {
		case *inner:
			i := sort.Search(len(v.routers), func(j int) bool { return v.routers[j] >= l })
			if i == len(v.routers) {
				i = len(v.routers) - 1
			}
			n = v.children[i]
		case *leaf:
			lf = v
		}
	}
	for lf != nil {
		for _, k := range lf.keys {
			if k < l {
				continue
			}
			if k > u {
				return
			}
			if !fn(k) {
				return
			}
		}
		lf = lf.next
	}
}

// SizeBytes estimates the in-memory footprint of the tree.
func (t *Tree) SizeBytes() int {
	if t.n == 0 {
		return 0
	}
	total := 0
	var walk func(node)
	walk = func(n node) {
		switch v := n.(type) {
		case *leaf:
			total += 8*len(v.keys) + 24
		case *inner:
			total += 16*len(v.children) + 24
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return total
}
