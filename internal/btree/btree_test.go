package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func genKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Round(rng.Float64()*1e6) / 10
	}
	sort.Float64s(keys)
	return keys
}

func bruteRank(keys []float64, k float64) int {
	c := 0
	for _, x := range keys {
		if x <= k {
			c++
		}
	}
	return c
}

func bruteCountRange(keys []float64, l, u float64) int {
	c := 0
	for _, x := range keys {
		if x >= l && x <= u {
			c++
		}
	}
	return c
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Rank(5) != 0 || tr.CountRange(0, 10) != 0 || tr.Contains(1) {
		t.Error("empty tree misbehaves")
	}
}

func TestUnsortedRejected(t *testing.T) {
	if _, err := New([]float64{3, 1, 2}, 0); err == nil {
		t.Error("unsorted keys should error")
	}
}

func TestRankAgainstBruteForce(t *testing.T) {
	keys := genKeys(2000, 1)
	for _, fanout := range []int{2, 3, 8, 64} {
		tr, err := New(keys, fanout)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for iter := 0; iter < 400; iter++ {
			var k float64
			if iter%2 == 0 {
				k = keys[rng.Intn(len(keys))]
			} else {
				k = rng.Float64() * 1e5
			}
			if got, want := tr.Rank(k), bruteRank(keys, k); got != want {
				t.Fatalf("fanout %d Rank(%g) = %d, want %d", fanout, k, got, want)
			}
		}
	}
}

func TestCountRangeAgainstBruteForce(t *testing.T) {
	keys := genKeys(1500, 3)
	tr, _ := New(keys, 32)
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 400; iter++ {
		l := rng.Float64() * 1.1e5
		u := l + rng.Float64()*5e4
		if got, want := tr.CountRange(l, u), bruteCountRange(keys, l, u); got != want {
			t.Fatalf("CountRange(%g,%g) = %d, want %d", l, u, got, want)
		}
	}
	if got := tr.CountRange(10, 5); got != 0 {
		t.Errorf("inverted range = %d, want 0", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := []float64{1, 2, 2, 2, 3, 3, 7}
	tr, err := New(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Rank(2); got != 4 {
		t.Errorf("Rank(2) = %d, want 4", got)
	}
	if got := tr.CountRange(2, 3); got != 5 {
		t.Errorf("CountRange(2,3) = %d, want 5", got)
	}
	if !tr.Contains(7) || tr.Contains(5) {
		t.Error("Contains wrong with duplicates")
	}
}

func TestContains(t *testing.T) {
	keys := genKeys(500, 5)
	tr, _ := New(keys, 16)
	for _, k := range keys[:50] {
		if !tr.Contains(k) {
			t.Fatalf("Contains(%g) = false for stored key", k)
		}
	}
	if tr.Contains(-1) || tr.Contains(1e9) {
		t.Error("Contains true for absent key")
	}
}

func TestScan(t *testing.T) {
	keys := genKeys(800, 7)
	tr, _ := New(keys, 16)
	l, u := keys[100], keys[500]
	var got []float64
	tr.Scan(l, u, func(k float64) bool {
		got = append(got, k)
		return true
	})
	var want []float64
	for _, k := range keys {
		if k >= l && k <= u {
			want = append(want, k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Scan(l, u, func(k float64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early-stop scan visited %d keys, want 5", count)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr, _ := New(genKeys(10000, 9), 8)
	// 10000 keys at fanout 8: height ≈ log8(10000/8)+1 ∈ [4, 6].
	if tr.Height() < 4 || tr.Height() > 6 {
		t.Errorf("unexpected height %d", tr.Height())
	}
	if tr.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func BenchmarkRank(b *testing.B) {
	keys := genKeys(1_000_000, 1)
	tr, _ := New(keys, 64)
	rng := rand.New(rand.NewSource(2))
	probes := make([]float64, 1024)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Rank(probes[i&1023])
	}
}
