package cluster

// Shard placement splits one sharded index across processes. The POLS
// container is the transfer format: Split opens a sharded blob, regroups
// its shards into contiguous runs, and reassembles each run into a
// standalone POLS blob a node restores as an ordinary index. The cuts
// between runs become the placement map — the router partitions inserts by
// key against them, and answers reads by fanning the query to every node
// and merging the disjoint partial aggregates (sums add, extrema combine;
// the key sets are disjoint by construction, so no clipping is needed).

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"

	polyfit "repro"
)

// PlacedIndex is the router's placement map for one sharded index split
// across processes: node i owns keys in [Cuts[i-1], Cuts[i]) (with the
// open ends at the extremes).
type PlacedIndex struct {
	Name string
	// Agg is the index aggregate ("count", "sum", "min", "max") — it
	// decides how per-node partial answers merge.
	Agg string
	// Cuts are the len(Nodes)−1 key boundaries between nodes, ascending.
	Cuts []float64
	// Nodes are the base URLs owning each key span, in cut order.
	Nodes []string
}

// nodeOf returns the node index owning key k.
func (p *PlacedIndex) nodeOf(k float64) int {
	return sort.Search(len(p.Cuts), func(j int) bool { return p.Cuts[j] > k })
}

// Split cuts a sharded-dynamic POLS blob into nodes standalone POLS
// blobs of contiguous shard runs, plus the key cuts between them. nodes
// must not exceed the shard count — shards are the placement granularity.
func Split(blob []byte, nodes int) (parts [][]byte, cuts []float64, err error) {
	if nodes < 1 {
		return nil, nil, fmt.Errorf("cluster: split into %d nodes", nodes)
	}
	ix, err := polyfit.Open(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: split: %w", err)
	}
	snap, ok := ix.(polyfit.ShardSnapshotter)
	if !ok {
		return nil, nil, fmt.Errorf("cluster: split: blob is not a sharded dynamic index")
	}
	k := snap.NumShards()
	if nodes > k {
		return nil, nil, fmt.Errorf("cluster: split: %d nodes but only %d shards", nodes, k)
	}
	bounds := snap.Bounds() // k-1 boundaries; bounds[i] separates shard i and i+1
	for node := 0; node < nodes; node++ {
		lo, hi := node*k/nodes, (node+1)*k/nodes // shards [lo, hi)
		blobs := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			b, err := snap.MarshalShard(i)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: split shard %d: %w", i, err)
			}
			blobs = append(blobs, b)
		}
		sub, err := polyfit.Assemble(bounds[lo:hi-1], blobs)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: split: assemble node %d: %w", node, err)
		}
		part, err := sub.MarshalBinary()
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: split: marshal node %d: %w", node, err)
		}
		parts = append(parts, part)
		if node < nodes-1 {
			cuts = append(cuts, bounds[hi-1])
		}
	}
	return parts, cuts, nil
}

// Deploy splits a sharded blob across nodes and uploads each part under
// name via POST /v1/indexes/{name}/restore, returning the PlacedIndex the
// router routes by.
func Deploy(ctx context.Context, hc *http.Client, name, agg string, blob []byte, nodes []string) (*PlacedIndex, error) {
	parts, cuts, err := Split(blob, len(nodes))
	if err != nil {
		return nil, err
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	for i, node := range nodes {
		body, err := json.Marshal(map[string]string{"blob": base64.StdEncoding.EncodeToString(parts[i])})
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			node+"/v1/indexes/"+name+"/restore", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return nil, fmt.Errorf("cluster: deploy %q to %s: %w", name, node, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("cluster: deploy %q to %s: status %d", name, node, resp.StatusCode)
		}
	}
	return &PlacedIndex{
		Name:  name,
		Agg:   agg,
		Cuts:  cuts,
		Nodes: append([]string(nil), nodes...),
	}, nil
}

// Wire mirrors of the server's data-plane JSON, local to the router so
// the cluster package does not import internal/server.
type queryAnswer struct {
	Value float64 `json:"value"`
	Found bool    `json:"found"`
	Exact bool    `json:"exact,omitempty"`
	Bound float64 `json:"bound"`
}

type batchAnswer struct {
	Results []queryAnswer `json:"results"`
}

type insertBody struct {
	Records []struct {
		Key     float64 `json:"key"`
		Measure float64 `json:"measure"`
	} `json:"records"`
}

type insertAnswer struct {
	Inserted int      `json:"inserted"`
	Rejected int      `json:"rejected"`
	Durable  bool     `json:"durable,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Errors   []string `json:"errors,omitempty"`
}

// mergeAnswers folds disjoint per-node partial answers into one.
func mergeAnswers(agg string, parts []queryAnswer) queryAnswer {
	var out queryAnswer
	exact := true
	for _, p := range parts {
		if !p.Found {
			continue
		}
		if !out.Found {
			out = p
			exact = p.Exact
			continue
		}
		exact = exact && p.Exact
		switch agg {
		case "min":
			if p.Value < out.Value {
				out.Value = p.Value
			}
			if p.Bound > out.Bound {
				out.Bound = p.Bound
			}
		case "max":
			if p.Value > out.Value {
				out.Value = p.Value
			}
			if p.Bound > out.Bound {
				out.Bound = p.Bound
			}
		default: // count, sum: disjoint partitions add
			out.Value += p.Value
			out.Bound += p.Bound
		}
	}
	out.Exact = out.Found && exact
	return out
}

// servePlaced handles a data-plane request for a placed index.
func (rt *Router) servePlaced(w http.ResponseWriter, r *http.Request, p *PlacedIndex, op string, body []byte) {
	rt.placedReqs.Add(1)
	switch {
	case r.Method == http.MethodPost && op == "query":
		rt.placedQuery(w, r, p, body)
	case r.Method == http.MethodPost && op == "batch":
		rt.placedBatch(w, r, p, body)
	case r.Method == http.MethodPost && op == "insert":
		rt.placedInsert(w, r, p, body)
	default:
		writeRouterError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("placed index %q supports query, batch and insert through the router", p.Name))
	}
}

// fanOut sends the same request body to every node of a placement and
// returns the buffered responses, failing fast on the first error or
// non-200.
func (rt *Router) fanOut(ctx context.Context, p *PlacedIndex, op string, body []byte) ([][]byte, error) {
	type reply struct {
		node int
		body []byte
		err  error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan reply, len(p.Nodes))
	for i := range p.Nodes {
		go func(i int) {
			res, err := rt.attempt(ctx, &replica{base: p.Nodes[i]}, &http.Request{
				Method: http.MethodPost,
				URL:    mustURL("/v1/indexes/" + p.Name + "/" + op),
				Header: http.Header{"Content-Type": []string{"application/json"}},
			}, body)
			if err == nil && res.status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", res.status, truncated(res.body))
			}
			if err != nil {
				ch <- reply{node: i, err: fmt.Errorf("node %s: %w", p.Nodes[i], err)}
				return
			}
			ch <- reply{node: i, body: res.body}
		}(i)
	}
	out := make([][]byte, len(p.Nodes))
	for range p.Nodes {
		rep := <-ch
		if rep.err != nil {
			return nil, rep.err
		}
		out[rep.node] = rep.body
	}
	return out, nil
}

func (rt *Router) placedQuery(w http.ResponseWriter, r *http.Request, p *PlacedIndex, body []byte) {
	replies, err := rt.fanOut(r.Context(), p, "query", body)
	if err != nil {
		rt.routeErrors.Add(1)
		writeRouterError(w, http.StatusBadGateway, err)
		return
	}
	parts := make([]queryAnswer, len(replies))
	for i, rep := range replies {
		if err := json.Unmarshal(rep, &parts[i]); err != nil {
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %s: bad answer: %w", p.Nodes[i], err))
			return
		}
	}
	writeJSON(w, mergeAnswers(p.Agg, parts))
}

func (rt *Router) placedBatch(w http.ResponseWriter, r *http.Request, p *PlacedIndex, body []byte) {
	replies, err := rt.fanOut(r.Context(), p, "batch", body)
	if err != nil {
		rt.routeErrors.Add(1)
		writeRouterError(w, http.StatusBadGateway, err)
		return
	}
	var merged []batchPartial
	for i, rep := range replies {
		var ba batchAnswer
		if err := json.Unmarshal(rep, &ba); err != nil {
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %s: bad answer: %w", p.Nodes[i], err))
			return
		}
		if merged == nil {
			merged = make([]batchPartial, len(ba.Results))
		}
		if len(ba.Results) != len(merged) {
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusBadGateway,
				fmt.Errorf("node %s: %d results, want %d", p.Nodes[i], len(ba.Results), len(merged)))
			return
		}
		for j, qa := range ba.Results {
			merged[j] = append(merged[j], qa)
		}
	}
	out := batchAnswer{Results: make([]queryAnswer, len(merged))}
	for j, parts := range merged {
		out.Results[j] = mergeAnswers(p.Agg, parts)
	}
	writeJSON(w, out)
}

func (rt *Router) placedInsert(w http.ResponseWriter, r *http.Request, p *PlacedIndex, body []byte) {
	var req insertBody
	if err := json.Unmarshal(body, &req); err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("decode insert: %w", err))
		return
	}
	// Partition the records by owning node; only owners see a request.
	byNode := make(map[int][]byte)
	for node := range p.Nodes {
		var sub insertBody
		for _, rec := range req.Records {
			if p.nodeOf(rec.Key) == node {
				sub.Records = append(sub.Records, rec)
			}
		}
		if len(sub.Records) == 0 {
			continue
		}
		b, err := json.Marshal(&sub)
		if err != nil {
			writeRouterError(w, http.StatusInternalServerError, err)
			return
		}
		byNode[node] = b
	}
	merged := insertAnswer{Durable: true}
	touched := false
	for node, sub := range byNode {
		res, err := rt.attempt(r.Context(), &replica{base: p.Nodes[node]}, &http.Request{
			Method: http.MethodPost,
			URL:    mustURL("/v1/indexes/" + p.Name + "/insert"),
			Header: http.Header{"Content-Type": []string{"application/json"}},
		}, sub)
		if err == nil && res.status != http.StatusOK {
			err = fmt.Errorf("status %d: %s", res.status, truncated(res.body))
		}
		if err != nil {
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %s: %w", p.Nodes[node], err))
			return
		}
		var ia insertAnswer
		if err := json.Unmarshal(res.body, &ia); err != nil {
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusBadGateway, fmt.Errorf("node %s: bad answer: %w", p.Nodes[node], err))
			return
		}
		touched = true
		merged.Inserted += ia.Inserted
		merged.Rejected += ia.Rejected
		merged.Durable = merged.Durable && ia.Durable
		merged.Degraded = merged.Degraded || ia.Degraded
		if len(merged.Errors) < 8 {
			merged.Errors = append(merged.Errors, ia.Errors...)
		}
	}
	if !touched {
		merged.Durable = false // nothing was written, nothing is durable
	}
	writeJSON(w, merged)
}

// batchPartial collects one range's partial answers across nodes.
type batchPartial []queryAnswer

// mustURL builds a path-only URL for a synthesised upstream request.
func mustURL(path string) *url.URL {
	return &url.URL{Path: path}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func truncated(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}
