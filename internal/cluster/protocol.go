// Package cluster implements the replicated serving tier: the wire
// protocol a leader uses to stream per-index WAL tails to read replicas,
// the HTTP client followers (and tests) drive it with, a hedged
// scatter-gather router that fans queries over healthy replicas, and
// shard placement that splits one sharded index across processes using
// the POLS container as the transfer format.
//
// # Replication model
//
// Every dynamic index on the leader is a set of logical record streams,
// one per write-ahead log (one stream for a plain dynamic index, one per
// shard for a sharded one). Records are numbered by a per-stream sequence
// that counts every record ever appended since the stream began; the WAL
// file holds the suffix of the stream starting at the leader's stream
// origin (records below it were folded into a snapshot and truncated
// away). A follower joins by fetching the latest snapshot blob together
// with the sequence vector it covers, restoring it (bit-identical — no
// re-fitting), and then replaying the tail from that vector.
//
// Sequence numbers are only meaningful within one (epoch, instance)
// incarnation of an index: epoch identifies a leader boot, instance one
// registration of the index (a restore, an explicit rebuild, or a WAL
// reset after degradation starts a new incarnation). When either changes
// the leader answers tails with 410 Gone and the follower falls back to a
// fresh snapshot — safe at-least-once delivery, because replay is
// idempotent (duplicate keys are rejected exactly).
//
// The follower's tail cursor doubles as its acknowledgement: asking for
// records from sequence s promises every record below s has been applied.
// The leader tracks the slowest live follower per stream and holds WAL
// truncation back to that watermark, so a replica can always catch up
// from the log it has already been promised.
//
// # Wire format
//
// Control messages (status, snapshot metadata) are small JSON; record
// payloads reuse the WAL's 20-byte CRC-protected record encoding verbatim
// (persist.MarshalRecords), framed per stream with a length prefix. A
// torn or bit-flipped frame fails the CRC and the poll is retried — the
// transport needs no trust.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/persist"
)

// HTTP paths of the replication endpoints a leader serves (and a router
// probes). Snapshot and tail take the index name as the final path
// element.
const (
	PathStatus   = "/v1/cluster/status"
	PathSnapshot = "/v1/cluster/snapshot/"
	PathTail     = "/v1/cluster/wal/"
)

// ErrResync reports that the requested tail window is gone (epoch or
// instance changed, or the sequence fell below the leader's stream
// origin): the follower must refetch the snapshot and restart the tail
// from the vector it reports. Mapped to HTTP 410 on the wire.
var ErrResync = errors.New("cluster: tail unavailable, resync from snapshot")

// ErrBadFrame reports a malformed or corrupt tail payload.
var ErrBadFrame = errors.New("cluster: bad tail frame")

// NodeStatus is the JSON body of GET /v1/cluster/status: the node's role
// and one row per index with the sequence vector a follower needs to
// decide whether it is caught up.
type NodeStatus struct {
	Role      string `json:"role"`  // "leader" | "follower"
	Epoch     int64  `json:"epoch"` // leader boot identifier (unix nanos)
	Advertise string `json:"advertise,omitempty"`
	Leader    string `json:"leader,omitempty"` // follower only: the URL it replicates from
	// StalenessMS is how far behind the node's reads may be: 0 on a
	// leader, milliseconds since the last fully-caught-up poll on a
	// follower.
	StalenessMS int64         `json:"staleness_ms"`
	Indexes     []IndexStatus `json:"indexes"`
}

// IndexStatus is one index's replication row in a NodeStatus.
type IndexStatus struct {
	Name     string `json:"name"`
	Dynamic  bool   `json:"dynamic"`
	Instance uint64 `json:"instance"`
	// Seqs is the per-stream end sequence (next record to be assigned),
	// one per WAL: length 1 for a plain dynamic index, the shard count
	// for a sharded one, empty for a static index (snapshot-only).
	Seqs []int64 `json:"seqs,omitempty"`
}

// Snapshot is a fetched snapshot blob plus the replication coordinates it
// covers: restoring Blob yields the index state at (or after) Seqs, so a
// tail started there replays at most duplicates, never misses a record.
type Snapshot struct {
	Epoch    int64
	Instance uint64
	Seqs     []int64
	Blob     []byte
}

// TailFrame is one stream's chunk of a tail response: records
// [From, From+len(Records)) of stream Log, plus the leader's current end
// sequence so the follower can see its remaining lag.
type TailFrame struct {
	Log     int
	From    int64
	End     int64
	Records []persist.Record
}

// Tail is a decoded tail response.
type Tail struct {
	Epoch    int64
	Instance uint64
	Frames   []TailFrame
}

// CaughtUp reports whether every frame reached its leader-side end.
func (t *Tail) CaughtUp() bool {
	for _, f := range t.Frames {
		if f.From+int64(len(f.Records)) < f.End {
			return false
		}
	}
	return true
}

// Tail binary framing: a fixed preamble, then one length-prefixed frame
// per stream. All integers little-endian.
//
//	preamble: magic "PFRP" (4) | version u16 | nframes u16 | epoch u64 | instance u64
//	frame:    log u32 | from u64 | end u64 | nbytes u32 | nbytes of 20B records
const (
	tailMagic    = 0x50465250 // "PFRP"
	tailVersion  = 1
	tailPreamble = 4 + 2 + 2 + 8 + 8
	frameHeader  = 4 + 8 + 8 + 4
)

// MarshalBinary encodes the tail for the wire. Record payloads carry the
// WAL's own CRC-protected encoding, so corruption in transit is detected
// on decode.
func (t *Tail) MarshalBinary() []byte {
	n := tailPreamble
	payloads := make([][]byte, len(t.Frames))
	for i, f := range t.Frames {
		payloads[i] = persist.MarshalRecords(f.Records)
		n += frameHeader + len(payloads[i])
	}
	buf := make([]byte, 0, n)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], tailMagic)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], tailVersion)
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(t.Frames)))
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(t.Epoch))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], t.Instance)
	buf = append(buf, tmp[:]...)
	for i, f := range t.Frames {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(f.Log))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(f.From))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(f.End))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(payloads[i])))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, payloads[i]...)
	}
	return buf
}

// UnmarshalTail decodes a tail response, verifying the preamble and every
// record's CRC.
func UnmarshalTail(data []byte) (*Tail, error) {
	if len(data) < tailPreamble {
		return nil, fmt.Errorf("%w: %d-byte payload shorter than the preamble", ErrBadFrame, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != tailMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != tailVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, v)
	}
	nframes := int(binary.LittleEndian.Uint16(data[6:]))
	t := &Tail{
		Epoch:    int64(binary.LittleEndian.Uint64(data[8:])),
		Instance: binary.LittleEndian.Uint64(data[16:]),
		Frames:   make([]TailFrame, 0, nframes),
	}
	rest := data[tailPreamble:]
	for i := 0; i < nframes; i++ {
		if len(rest) < frameHeader {
			return nil, fmt.Errorf("%w: truncated frame header %d", ErrBadFrame, i)
		}
		f := TailFrame{
			Log:  int(binary.LittleEndian.Uint32(rest[0:])),
			From: int64(binary.LittleEndian.Uint64(rest[4:])),
			End:  int64(binary.LittleEndian.Uint64(rest[12:])),
		}
		nbytes := int(binary.LittleEndian.Uint32(rest[20:]))
		rest = rest[frameHeader:]
		if len(rest) < nbytes {
			return nil, fmt.Errorf("%w: frame %d wants %d bytes, %d left", ErrBadFrame, i, nbytes, len(rest))
		}
		recs, err := persist.UnmarshalRecords(rest[:nbytes])
		if err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrBadFrame, i, err)
		}
		f.Records = recs
		rest = rest[nbytes:]
		t.Frames = append(t.Frames, f)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return t, nil
}

// FormatSeqs renders a sequence vector for a query parameter or header
// ("3,17,0"); ParseSeqs reverses it.
func FormatSeqs(seqs []int64) string {
	out := make([]byte, 0, len(seqs)*4)
	for i, s := range seqs {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendInt(out, s, 10)
	}
	return string(out)
}

// ParseSeqs parses a comma-separated sequence vector. An empty string is
// an empty vector.
func ParseSeqs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad sequence vector %q", ErrBadFrame, s)
		}
		out[i] = v
	}
	return out, nil
}
