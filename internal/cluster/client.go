package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client speaks the replication protocol to one node. Followers use it to
// join and stream; the router uses Status for health and staleness
// probes; tests drive it directly.
type Client struct {
	// Base is the node's base URL ("http://127.0.0.1:8080").
	Base string
	// HTTP overrides the transport (default http.DefaultClient). Tail
	// long-polls, so its timeout must exceed the wait parameter; Client
	// applies per-call contexts rather than transport timeouts.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Status fetches the node's replication status.
func (c *Client) Status(ctx context.Context) (*NodeStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathStatus, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: status %s: %s", c.Base, resp.Status)
	}
	var st NodeStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("cluster: decode status: %w", err)
	}
	return &st, nil
}

// Snapshot fetches the named index's current snapshot blob and the
// replication coordinates it covers. The sequence vector is read by the
// leader before the blob is marshalled, so the blob is guaranteed to
// contain every record below it — a tail started at Seqs replays at most
// idempotent duplicates.
func (c *Client) Snapshot(ctx context.Context, name string) (*Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+PathSnapshot+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot %s/%s: %s", c.Base, name, resp.Status)
	}
	epoch, err := strconv.ParseInt(resp.Header.Get("X-Polyfit-Epoch"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot %s/%s: bad epoch header: %w", c.Base, name, err)
	}
	instance, err := strconv.ParseUint(resp.Header.Get("X-Polyfit-Instance"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot %s/%s: bad instance header: %w", c.Base, name, err)
	}
	seqs, err := ParseSeqs(resp.Header.Get("X-Polyfit-Seqs"))
	if err != nil {
		return nil, err
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<31))
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot %s/%s: read body: %w", c.Base, name, err)
	}
	return &Snapshot{Epoch: epoch, Instance: instance, Seqs: seqs, Blob: blob}, nil
}

// Tail polls the named index's WAL tails from the given sequence vector.
// The from vector doubles as the follower's acknowledgement: the leader
// records that this follower has applied everything below it and holds
// WAL truncation back accordingly. With wait > 0 the leader long-polls,
// holding the request open until new records arrive or the wait expires
// (an empty frame set is a valid, caught-up response).
//
// ErrResync means the window is gone — epoch or instance changed, or the
// leader truncated past from — and the follower must restart from
// Snapshot.
func (c *Client) Tail(ctx context.Context, name, follower string, epoch int64, instance uint64, from []int64, wait time.Duration) (*Tail, error) {
	q := url.Values{
		"follower": {follower},
		"epoch":    {strconv.FormatInt(epoch, 10)},
		"instance": {strconv.FormatUint(instance, 10)},
		"from":     {FormatSeqs(from)},
	}
	if wait > 0 {
		q.Set("wait_ms", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	u := c.Base + PathTail + url.PathEscape(name) + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode == http.StatusGone {
		return nil, fmt.Errorf("%w (%s/%s)", ErrResync, c.Base, name)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: tail %s/%s: %s", c.Base, name, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<31))
	if err != nil {
		return nil, fmt.Errorf("cluster: tail %s/%s: read body: %w", c.Base, name, err)
	}
	return UnmarshalTail(data)
}
