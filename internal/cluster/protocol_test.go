package cluster

import (
	"errors"
	"testing"

	"repro/internal/persist"
)

func TestTailRoundTrip(t *testing.T) {
	in := &Tail{
		Epoch:    1234567,
		Instance: 42,
		Frames: []TailFrame{
			{Log: 0, From: 10, End: 13, Records: []persist.Record{
				{Key: 1, Measure: 2}, {Key: 3, Measure: 4}, {Key: 5, Measure: 6},
			}},
			{Log: 3, From: 0, End: 0, Records: nil},
		},
	}
	out, err := UnmarshalTail(in.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.Instance != in.Instance || len(out.Frames) != len(in.Frames) {
		t.Fatalf("preamble mismatch: %+v", out)
	}
	for i, f := range out.Frames {
		want := in.Frames[i]
		if f.Log != want.Log || f.From != want.From || f.End != want.End || len(f.Records) != len(want.Records) {
			t.Fatalf("frame %d: got %+v want %+v", i, f, want)
		}
		for j, r := range f.Records {
			if r != want.Records[j] {
				t.Fatalf("frame %d record %d: got %+v want %+v", i, j, r, want.Records[j])
			}
		}
	}
	if !in.CaughtUp() {
		t.Fatal("every frame reaches End, CaughtUp must be true")
	}
	in.Frames[0].End = 20
	if in.CaughtUp() {
		t.Fatal("frame 0 short of End, CaughtUp must be false")
	}
}

func TestUnmarshalTailRejectsCorruption(t *testing.T) {
	in := &Tail{Epoch: 9, Instance: 1, Frames: []TailFrame{
		{Log: 0, From: 0, End: 2, Records: []persist.Record{{Key: 1, Measure: 1}, {Key: 2, Measure: 2}}},
	}}
	good := in.MarshalBinary()

	cases := map[string]func([]byte) []byte{
		"truncated preamble": func(b []byte) []byte { return b[:10] },
		"bad magic":          func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":        func(b []byte) []byte { b[4] = 99; return b },
		"truncated frame":    func(b []byte) []byte { return b[:len(b)-5] },
		"flipped record bit": func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b },
		"trailing garbage":   func(b []byte) []byte { return append(b, 0xAB) },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), good...))
		if _, err := UnmarshalTail(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
		}
	}
}

func TestSeqsFormatRoundTrip(t *testing.T) {
	for _, seqs := range [][]int64{nil, {0}, {3, 17, 0}, {1 << 40, 7}} {
		got, err := ParseSeqs(FormatSeqs(seqs))
		if err != nil {
			t.Fatalf("%v: %v", seqs, err)
		}
		if len(got) != len(seqs) {
			t.Fatalf("%v: round-tripped to %v", seqs, got)
		}
		for i := range got {
			if got[i] != seqs[i] {
				t.Fatalf("%v: round-tripped to %v", seqs, got)
			}
		}
	}
	if _, err := ParseSeqs("3,x"); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad vector: got %v, want ErrBadFrame", err)
	}
}
