package cluster

// The router is the client-facing front of a replica set: it probes every
// replica's health and staleness, forwards writes to the leader, and fans
// reads over the healthy replicas with hedged requests — a second attempt
// fired after a short delay so one slow replica cannot drag the tail
// latency of the whole tier (the first 2xx wins, the loser is canceled).
//
// Read candidates are gated on staleness: a request may carry a
// max_staleness_ms JSON field (backends ignore it), and replicas whose
// reported lag — extrapolated since the last probe — exceeds the gate are
// excluded rather than allowed to serve an answer older than the client
// tolerates. The gate is a contract, not a preference: if no replica
// qualifies the router answers 503 instead of silently serving stale.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Replicas are the base URLs of the serving processes (leader and
	// followers, in any order — roles are discovered by probing).
	Replicas []string
	// HedgeDelay is how long the primary read attempt runs alone before a
	// hedge is fired at the next-fastest replica. 0 means the 2ms default;
	// negative disables hedging.
	HedgeDelay time.Duration
	// ProbeInterval is the health-probe period (default 250ms).
	ProbeInterval time.Duration
	// MaxStaleness is the default read staleness gate applied when a
	// request carries no max_staleness_ms of its own. 0 means no gate.
	MaxStaleness time.Duration
	// AttemptTimeout bounds each proxied attempt (default 5s).
	AttemptTimeout time.Duration
	// HTTP overrides the transport (tests); nil uses a dedicated client.
	HTTP *http.Client
	// Logf receives router diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Placements are sharded indexes split across processes; requests for
	// a placed index fan out over its owning nodes instead of the replica
	// set. See PlacedIndex.
	Placements []*PlacedIndex
}

// Router is an http.Handler that fronts a replica set. Create with
// NewRouter, stop with Close.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	replicas []*replica
	placed   map[string]*PlacedIndex

	stop chan struct{}
	done chan struct{}

	proxied     atomic.Int64
	hedged      atomic.Int64
	hedgeWins   atomic.Int64
	routeErrors atomic.Int64
	placedReqs  atomic.Int64
}

// replica is the router's view of one backend process. All fields are
// atomics: the probe loop and request paths read and write them freely.
type replica struct {
	base string

	healthy   atomic.Bool
	role      atomic.Value // string: "leader" | "follower" | ""
	staleness atomic.Int64 // ms, as of probedNano
	probedAt  atomic.Int64 // unix nanos of the last successful probe
	ewmaUS    atomic.Int64 // smoothed request latency, microseconds
	errs      atomic.Int64
}

// observe folds a request latency sample into the replica's EWMA.
func (rp *replica) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	for {
		old := rp.ewmaUS.Load()
		next := us
		if old > 0 {
			next = (old*4 + us) / 5
		}
		if rp.ewmaUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// effectiveStalenessMS extrapolates the probed staleness to now: a
// follower's lag keeps growing between probes unless it catches up again.
func (rp *replica) effectiveStalenessMS(now time.Time) int64 {
	at := rp.probedAt.Load()
	if at == 0 {
		return 1 << 40 // never probed successfully: unknown, assume stale
	}
	since := (now.UnixNano() - at) / int64(time.Millisecond)
	if since < 0 {
		since = 0
	}
	return rp.staleness.Load() + since
}

func (rp *replica) roleString() string {
	if v, ok := rp.role.Load().(string); ok {
		return v
	}
	return ""
}

// NewRouter builds a router over cfg.Replicas and starts its probe loop.
// It probes every replica once, synchronously, before returning, so the
// first request already sees roles and health.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 && len(cfg.Placements) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica or placement")
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 2 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 5 * time.Second
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.HTTP,
		placed: make(map[string]*PlacedIndex, len(cfg.Placements)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, base := range cfg.Replicas {
		rt.replicas = append(rt.replicas, &replica{base: strings.TrimSuffix(base, "/")})
	}
	for _, p := range cfg.Placements {
		rt.placed[p.Name] = p
	}
	rt.probeAll()
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.done
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll refreshes every replica's health snapshot in parallel.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rp := range rt.replicas {
		wg.Add(1)
		go func(rp *replica) {
			defer wg.Done()
			rt.probe(rp)
		}(rp)
	}
	wg.Wait()
}

func (rt *Router) probe(rp *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeInterval)
	defer cancel()
	c := &Client{Base: rp.base, HTTP: rt.client}
	start := time.Now()
	st, err := c.Status(ctx)
	if err != nil {
		if rp.healthy.CompareAndSwap(true, false) {
			rt.logf("cluster: replica %s unhealthy: %v", rp.base, err)
		}
		rp.errs.Add(1)
		return
	}
	rp.observe(time.Since(start))
	rp.role.Store(st.Role)
	rp.staleness.Store(st.StalenessMS)
	rp.probedAt.Store(time.Now().UnixNano())
	if rp.healthy.CompareAndSwap(false, true) {
		rt.logf("cluster: replica %s healthy (%s, staleness %dms)", rp.base, st.Role, st.StalenessMS)
	}
}

// markDown records a transport failure seen on the request path so later
// requests skip the replica until a probe brings it back.
func (rt *Router) markDown(rp *replica, err error) {
	rp.errs.Add(1)
	if rp.healthy.CompareAndSwap(true, false) {
		rt.logf("cluster: replica %s failed in-flight: %v", rp.base, err)
	}
}

// isWrite classifies a request as leader-only.
func isWrite(r *http.Request) bool {
	if r.Method == http.MethodDelete {
		return true
	}
	if r.Method != http.MethodPost {
		return false
	}
	p := r.URL.Path
	if p == "/v1/indexes" {
		return true
	}
	for _, suffix := range []string{"/insert", "/rebuild", "/restore"} {
		if strings.HasSuffix(p, suffix) {
			return true
		}
	}
	return false
}

// placedName extracts the index name if the path addresses a data-plane
// route of a placed index.
func (rt *Router) placedName(path string) (*PlacedIndex, string) {
	rest, ok := strings.CutPrefix(path, "/v1/indexes/")
	if !ok {
		return nil, ""
	}
	name, op, ok := strings.Cut(rest, "/")
	if !ok {
		return nil, ""
	}
	if p := rt.placed[name]; p != nil {
		return p, op
	}
	return nil, ""
}

// ServeHTTP routes one client request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/stats":
		rt.serveStats(w)
		return
	case "/healthz":
		rt.serveHealthz(w)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	if p, op := rt.placedName(r.URL.Path); p != nil {
		rt.servePlaced(w, r, p, op, body)
		return
	}
	if isWrite(r) {
		rt.forwardWrite(w, r, body)
		return
	}
	rt.forwardRead(w, r, body)
}

// forwardWrite proxies a mutating request to the leader, un-hedged: a
// write raced against itself could double-apply.
func (rt *Router) forwardWrite(w http.ResponseWriter, r *http.Request, body []byte) {
	var leader *replica
	for _, rp := range rt.replicas {
		if rp.healthy.Load() && rp.roleString() == "leader" {
			leader = rp
			break
		}
	}
	if leader == nil {
		rt.routeErrors.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy leader"))
		return
	}
	rt.proxied.Add(1)
	res, err := rt.attempt(r.Context(), leader, r, body)
	if err != nil {
		rt.markDown(leader, err)
		rt.routeErrors.Add(1)
		writeRouterError(w, http.StatusBadGateway, fmt.Errorf("leader %s: %w", leader.base, err))
		return
	}
	res.writeTo(w)
}

// readCandidates returns the replicas eligible for a read under the gate,
// fastest first. gated reports whether the staleness gate (rather than
// health) excluded every replica.
func (rt *Router) readCandidates(maxStalenessMS int64) (cands []*replica, gated bool) {
	now := time.Now()
	var healthy []*replica
	for _, rp := range rt.replicas {
		if !rp.healthy.Load() {
			continue
		}
		healthy = append(healthy, rp)
		if maxStalenessMS > 0 && rp.roleString() != "leader" && rp.effectiveStalenessMS(now) > maxStalenessMS {
			continue
		}
		cands = append(cands, rp)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].ewmaUS.Load() < cands[j].ewmaUS.Load()
	})
	return cands, len(cands) == 0 && len(healthy) > 0
}

// stalenessGate resolves the request's staleness bound: an explicit
// max_staleness_ms field wins, otherwise the router default applies.
func (rt *Router) stalenessGate(body []byte) int64 {
	if len(body) > 0 && len(body) < 1<<20 {
		var peek struct {
			MaxStalenessMS *int64 `json:"max_staleness_ms"`
		}
		if json.Unmarshal(body, &peek) == nil && peek.MaxStalenessMS != nil {
			return *peek.MaxStalenessMS
		}
	}
	return rt.cfg.MaxStaleness.Milliseconds()
}

// forwardRead proxies a read with hedging: the fastest candidate gets
// HedgeDelay alone, then the next candidate races it; an errored attempt
// triggers the next candidate immediately. First 2xx–4xx wins.
func (rt *Router) forwardRead(w http.ResponseWriter, r *http.Request, body []byte) {
	cands, gated := rt.readCandidates(rt.stalenessGate(body))
	if len(cands) == 0 {
		rt.routeErrors.Add(1)
		if gated {
			writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("no replica within the staleness bound"))
		} else {
			writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy replica"))
		}
		return
	}
	rt.proxied.Add(1)

	type outcome struct {
		res   *attemptResult
		err   error
		rp    *replica
		hedge bool
	}
	ctx, cancelAll := context.WithCancel(r.Context())
	defer cancelAll()
	results := make(chan outcome, len(cands))
	launch := func(rp *replica, hedge bool) {
		go func() {
			res, err := rt.attempt(ctx, rp, r, body)
			results <- outcome{res: res, err: err, rp: rp, hedge: hedge}
		}()
	}
	launch(cands[0], false)
	next, pending := 1, 1
	var hedgeTimer <-chan time.Time
	if rt.cfg.HedgeDelay > 0 && next < len(cands) {
		tm := time.NewTimer(rt.cfg.HedgeDelay)
		defer tm.Stop()
		hedgeTimer = tm.C
	}
	var lastErr error
	for {
		select {
		case out := <-results:
			pending--
			if out.err == nil && out.res.status < http.StatusInternalServerError {
				// A definitive answer (success or a client error the
				// backend owns) wins; cancel any racing attempt.
				if out.hedge {
					rt.hedgeWins.Add(1)
				}
				out.res.writeTo(w)
				return
			}
			if out.err != nil {
				rt.markDown(out.rp, out.err)
				lastErr = fmt.Errorf("%s: %w", out.rp.base, out.err)
			} else {
				lastErr = fmt.Errorf("%s: upstream status %d", out.rp.base, out.res.status)
			}
			if next < len(cands) {
				launch(cands[next], false)
				next++
				pending++
			} else if pending == 0 {
				rt.routeErrors.Add(1)
				writeRouterError(w, http.StatusBadGateway, lastErr)
				return
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(cands) {
				rt.hedged.Add(1)
				launch(cands[next], true)
				next++
				pending++
			}
		case <-ctx.Done():
			rt.routeErrors.Add(1)
			writeRouterError(w, http.StatusGatewayTimeout, ctx.Err())
			return
		}
	}
}

// attemptResult is one buffered upstream response.
type attemptResult struct {
	status int
	header http.Header
	body   []byte
}

func (a *attemptResult) writeTo(w http.ResponseWriter) {
	for _, k := range []string{"Content-Type", "X-Polyfit-Leader"} {
		if v := a.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(a.status)
	w.Write(a.body)
}

// attempt proxies one request to one replica and buffers the response so
// a canceled loser never holds the client connection.
func (rt *Router) attempt(ctx context.Context, rp *replica, r *http.Request, body []byte) (*attemptResult, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, rp.base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, err
	}
	rp.observe(time.Since(start))
	return &attemptResult{status: resp.StatusCode, header: resp.Header, body: out}, nil
}

// RouterStats is the JSON body the router serves at /v1/stats.
type RouterStats struct {
	Role           string        `json:"role"` // "router"
	Replicas       []ReplicaStat `json:"replicas"`
	Placements     []string      `json:"placements,omitempty"`
	Proxied        int64         `json:"proxied"`
	HedgedRequests int64         `json:"hedged_requests"`
	HedgeWins      int64         `json:"hedge_wins"`
	PlacedRequests int64         `json:"placed_requests,omitempty"`
	RouteErrors    int64         `json:"route_errors"`
}

// ReplicaStat is one replica's health row in RouterStats.
type ReplicaStat struct {
	Base        string  `json:"base"`
	Healthy     bool    `json:"healthy"`
	Role        string  `json:"role,omitempty"`
	StalenessMS int64   `json:"staleness_ms"`
	LatencyMS   float64 `json:"latency_ms"` // EWMA of proxied request latency
	Errors      int64   `json:"errors,omitempty"`
}

func (rt *Router) serveStats(w http.ResponseWriter) {
	now := time.Now()
	st := RouterStats{
		Role:           "router",
		Proxied:        rt.proxied.Load(),
		HedgedRequests: rt.hedged.Load(),
		HedgeWins:      rt.hedgeWins.Load(),
		PlacedRequests: rt.placedReqs.Load(),
		RouteErrors:    rt.routeErrors.Load(),
	}
	for _, rp := range rt.replicas {
		stale := int64(0)
		if rp.healthy.Load() {
			stale = rp.effectiveStalenessMS(now)
		}
		st.Replicas = append(st.Replicas, ReplicaStat{
			Base:        rp.base,
			Healthy:     rp.healthy.Load(),
			Role:        rp.roleString(),
			StalenessMS: stale,
			LatencyMS:   float64(rp.ewmaUS.Load()) / 1e3,
			Errors:      rp.errs.Load(),
		})
	}
	for name := range rt.placed {
		st.Placements = append(st.Placements, name)
	}
	sort.Strings(st.Placements)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&st)
}

func (rt *Router) serveHealthz(w http.ResponseWriter) {
	for _, rp := range rt.replicas {
		if rp.healthy.Load() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
			return
		}
	}
	if len(rt.replicas) == 0 && len(rt.placed) > 0 {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
		return
	}
	writeRouterError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy replica"))
}

func writeRouterError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
