package cluster

import (
	"math/rand"
	"testing"

	polyfit "repro"
)

// buildSharded makes a sharded dynamic SUM index over n records with
// integer measures (so split-and-merge sums are exact floats).
func buildSharded(t *testing.T, n, shards int) (polyfit.Index, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	keys := make([]float64, n)
	measures := make([]float64, n)
	k := 0.0
	for i := range keys {
		k += 1 + float64(rng.Intn(5))
		keys[i] = k
		measures[i] = float64(1 + rng.Intn(100))
	}
	ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures},
		polyfit.WithMaxError(500), polyfit.WithDynamic(), polyfit.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	return ix, keys, measures
}

func TestSplitPreservesAnswers(t *testing.T) {
	ix, keys, _ := buildSharded(t, 4000, 8)
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 3, 8} {
		parts, cuts, err := Split(blob, nodes)
		if err != nil {
			t.Fatalf("split into %d: %v", nodes, err)
		}
		if len(parts) != nodes || len(cuts) != nodes-1 {
			t.Fatalf("split into %d: %d parts, %d cuts", nodes, len(parts), len(cuts))
		}
		// Each part reopens as a standalone index; merged partial sums over
		// disjoint key ownership must reproduce the unsplit answer exactly.
		opened := make([]polyfit.Index, nodes)
		for i, p := range parts {
			if opened[i], err = polyfit.Open(p); err != nil {
				t.Fatalf("open part %d of %d: %v", i, nodes, err)
			}
		}
		rng := rand.New(rand.NewSource(11))
		for q := 0; q < 50; q++ {
			lo := keys[rng.Intn(len(keys))] - 0.5
			hi := lo + float64(rng.Intn(4000))
			want, err := ix.Query(polyfit.Range{Lo: lo, Hi: hi})
			if err != nil {
				t.Fatal(err)
			}
			var got, bound float64
			for _, part := range opened {
				r, err := part.Query(polyfit.Range{Lo: lo, Hi: hi})
				if err != nil {
					t.Fatal(err)
				}
				got += r.Value
				bound += r.Bound
			}
			diff := got - want.Value
			if diff < 0 {
				diff = -diff
			}
			// Partial answers come from the same per-shard fits; regrouping
			// them across nodes only re-associates the float summation, so
			// the merged value may drift by ulps but nothing more.
			tol := 1e-9 * (1 + want.Value)
			if diff > tol {
				t.Fatalf("nodes=%d (%g,%g]: split sum %g, unsplit %g", nodes, lo, hi, got, want.Value)
			}
			// The merged bound can only be looser: every shard the unsplit
			// query touches is touched inside its part, and a part may count
			// an extra boundary shard whose clipped contribution is empty.
			if bound < want.Bound {
				t.Fatalf("nodes=%d (%g,%g]: split bound %g below unsplit %g", nodes, lo, hi, bound, want.Bound)
			}
		}
	}
}

func TestSplitRejectsBadInputs(t *testing.T) {
	ix, _, _ := buildSharded(t, 500, 4)
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Split(blob, 0); err == nil {
		t.Fatal("0 nodes must fail")
	}
	if _, _, err := Split(blob, 5); err == nil {
		t.Fatal("more nodes than shards must fail")
	}
	if _, _, err := Split([]byte("junk"), 2); err == nil {
		t.Fatal("junk blob must fail")
	}
}

func TestPlacedNodeOf(t *testing.T) {
	p := &PlacedIndex{Cuts: []float64{10, 20}, Nodes: []string{"a", "b", "c"}}
	for _, tc := range []struct {
		k    float64
		want int
	}{{5, 0}, {9.999, 0}, {10, 1}, {15, 1}, {20, 2}, {1e9, 2}} {
		if got := p.nodeOf(tc.k); got != tc.want {
			t.Errorf("nodeOf(%g) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestMergeAnswers(t *testing.T) {
	sum := mergeAnswers("sum", []queryAnswer{
		{Value: 10, Found: true, Bound: 2},
		{Found: false},
		{Value: 5, Found: true, Bound: 1},
	})
	if sum.Value != 15 || sum.Bound != 3 || !sum.Found {
		t.Fatalf("sum merge: %+v", sum)
	}
	min := mergeAnswers("min", []queryAnswer{
		{Value: 10, Found: true, Bound: 2},
		{Value: 5, Found: true, Bound: 1},
	})
	if min.Value != 5 || min.Bound != 2 || !min.Found {
		t.Fatalf("min merge: %+v", min)
	}
	max := mergeAnswers("max", []queryAnswer{
		{Value: 10, Found: true, Bound: 2},
		{Value: 50, Found: true, Bound: 7},
	})
	if max.Value != 50 || max.Bound != 7 {
		t.Fatalf("max merge: %+v", max)
	}
	empty := mergeAnswers("sum", []queryAnswer{{Found: false}, {Found: false}})
	if empty.Found || empty.Value != 0 {
		t.Fatalf("empty merge: %+v", empty)
	}
	exact := mergeAnswers("sum", []queryAnswer{
		{Value: 1, Found: true, Exact: true},
		{Value: 2, Found: true, Exact: false},
	})
	if exact.Exact {
		t.Fatalf("mixed exactness must not report exact: %+v", exact)
	}
}
