package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeBackend is a scriptable replica: it serves the status probe and a
// query endpoint whose latency, status and payload the test controls.
type fakeBackend struct {
	mu         sync.Mutex
	role       string
	staleness  int64
	queryDelay time.Duration
	queryCode  int
	marker     string
	queryHits  int
	insertHits int
	lastInsert []byte
	ts         *httptest.Server
}

func newFakeBackend(role, marker string) *fakeBackend {
	b := &fakeBackend{role: role, marker: marker, queryCode: http.StatusOK}
	b.ts = httptest.NewServer(http.HandlerFunc(b.serve))
	return b
}

func (b *fakeBackend) set(f func(*fakeBackend)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f(b)
}

func (b *fakeBackend) serve(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	role, stale := b.role, b.staleness
	delay, code, marker := b.queryDelay, b.queryCode, b.marker
	b.mu.Unlock()
	switch {
	case r.URL.Path == PathStatus:
		json.NewEncoder(w).Encode(NodeStatus{Role: role, Epoch: 1, StalenessMS: stale})
	case strings.HasSuffix(r.URL.Path, "/query"):
		b.mu.Lock()
		b.queryHits++
		b.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"value":1,"found":true,"bound":0,"marker":%q}`, marker)
	case strings.HasSuffix(r.URL.Path, "/insert"):
		body, _ := io.ReadAll(r.Body)
		b.mu.Lock()
		b.insertHits++
		b.lastInsert = body
		b.mu.Unlock()
		fmt.Fprintf(w, `{"inserted":1,"durable":true}`)
	default:
		http.NotFound(w, r)
	}
}

func (b *fakeBackend) hits() (query, insert int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queryHits, b.insertHits
}

// newTestRouter builds a router over the backends with probing effectively
// frozen after the initial synchronous pass, and the replica EWMAs forced
// so backends[0] is always the primary read candidate.
func newTestRouter(t *testing.T, cfg RouterConfig, backends ...*fakeBackend) *Router {
	t.Helper()
	for _, b := range backends {
		cfg.Replicas = append(cfg.Replicas, b.ts.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // the initial probe is the only one
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	for i, rp := range rt.replicas {
		rp.ewmaUS.Store(int64(1 + i*1000))
	}
	return rt
}

func routerGet(t *testing.T, rt *Router, method, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestRouterHedgesSlowPrimary(t *testing.T) {
	slow := newFakeBackend("leader", "slow")
	defer slow.ts.Close()
	fast := newFakeBackend("follower", "fast")
	defer fast.ts.Close()
	rt := newTestRouter(t, RouterConfig{HedgeDelay: 5 * time.Millisecond}, slow, fast)
	slow.set(func(b *fakeBackend) { b.queryDelay = 300 * time.Millisecond })

	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"marker":"fast"`) {
		t.Fatalf("hedge did not win: %d %s", code, body)
	}
	if rt.hedged.Load() != 1 || rt.hedgeWins.Load() != 1 {
		t.Fatalf("hedged=%d hedgeWins=%d, want 1/1", rt.hedged.Load(), rt.hedgeWins.Load())
	}
}

func TestRouterNoHedgeWhenPrimaryFast(t *testing.T) {
	a := newFakeBackend("leader", "a")
	defer a.ts.Close()
	b := newFakeBackend("follower", "b")
	defer b.ts.Close()
	rt := newTestRouter(t, RouterConfig{HedgeDelay: 200 * time.Millisecond}, a, b)

	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"marker":"a"`) {
		t.Fatalf("primary should answer: %d %s", code, body)
	}
	if rt.hedged.Load() != 0 {
		t.Fatalf("hedged=%d, want 0", rt.hedged.Load())
	}
	if _, bq := b.hits(); bq != 0 {
		qh, _ := b.hits()
		t.Fatalf("secondary saw %d queries, want 0", qh)
	}
}

func TestRouterFailsOverOn5xx(t *testing.T) {
	bad := newFakeBackend("leader", "bad")
	defer bad.ts.Close()
	good := newFakeBackend("follower", "good")
	defer good.ts.Close()
	rt := newTestRouter(t, RouterConfig{HedgeDelay: -1}, bad, good)
	bad.set(func(b *fakeBackend) { b.queryCode = http.StatusInternalServerError })

	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"marker":"good"`) {
		t.Fatalf("failover miss: %d %s", code, body)
	}
}

func TestRouterMarksDeadReplicaDown(t *testing.T) {
	dead := newFakeBackend("follower", "dead")
	live := newFakeBackend("leader", "live")
	defer live.ts.Close()
	rt := newTestRouter(t, RouterConfig{HedgeDelay: -1}, dead, live)
	dead.ts.Close() // dies after the initial probe

	for i := 0; i < 3; i++ {
		code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
		if code != http.StatusOK || !strings.Contains(body, `"marker":"live"`) {
			t.Fatalf("request %d: %d %s", i, code, body)
		}
	}
	if rt.replicas[0].healthy.Load() {
		t.Fatal("dead replica still marked healthy after in-flight failure")
	}
}

func TestRouterStalenessGate(t *testing.T) {
	leader := newFakeBackend("leader", "leader")
	defer leader.ts.Close()
	stale := newFakeBackend("follower", "stale")
	defer stale.ts.Close()
	stale.set(func(b *fakeBackend) { b.staleness = 60_000 })
	rt := newTestRouter(t, RouterConfig{HedgeDelay: -1}, stale, leader) // stale is primary by EWMA

	// A bounded read must skip the stale follower even though it is the
	// faster candidate.
	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query",
		`{"lo":0,"hi":1,"max_staleness_ms":100}`)
	if code != http.StatusOK || !strings.Contains(body, `"marker":"leader"`) {
		t.Fatalf("gated read: %d %s", code, body)
	}
	// An unbounded read takes the fast follower.
	code, body = routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"marker":"stale"`) {
		t.Fatalf("ungated read: %d %s", code, body)
	}
}

func TestRouterStalenessGateExhausted(t *testing.T) {
	f1 := newFakeBackend("follower", "f1")
	defer f1.ts.Close()
	f2 := newFakeBackend("follower", "f2")
	defer f2.ts.Close()
	f1.set(func(b *fakeBackend) { b.staleness = 60_000 })
	f2.set(func(b *fakeBackend) { b.staleness = 60_000 })
	rt := newTestRouter(t, RouterConfig{HedgeDelay: -1}, f1, f2)

	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query",
		`{"lo":0,"hi":1,"max_staleness_ms":50}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "staleness") {
		t.Fatalf("want 503 staleness refusal, got %d %s", code, body)
	}
}

func TestRouterWritesGoToLeaderOnly(t *testing.T) {
	follower := newFakeBackend("follower", "f")
	defer follower.ts.Close()
	leader := newFakeBackend("leader", "l")
	defer leader.ts.Close()
	rt := newTestRouter(t, RouterConfig{}, follower, leader) // follower is fastest

	code, _ := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/insert",
		`{"records":[{"key":1,"measure":1}]}`)
	if code != http.StatusOK {
		t.Fatalf("insert via router: %d", code)
	}
	if _, ins := leader.hits(); ins != 1 {
		t.Fatalf("leader saw %d inserts, want 1", ins)
	}
	if _, ins := follower.hits(); ins != 0 {
		t.Fatalf("follower saw %d inserts, want 0", ins)
	}
}

func TestRouterWriteWithoutLeader(t *testing.T) {
	f := newFakeBackend("follower", "f")
	defer f.ts.Close()
	rt := newTestRouter(t, RouterConfig{}, f)
	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/x/insert", `{"records":[]}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "leader") {
		t.Fatalf("want 503 no-leader, got %d %s", code, body)
	}
}

func TestRouterStatsAndHealthz(t *testing.T) {
	leader := newFakeBackend("leader", "l")
	defer leader.ts.Close()
	rt := newTestRouter(t, RouterConfig{}, leader)

	routerGet(t, rt, http.MethodPost, "/v1/indexes/x/query", `{"lo":0,"hi":1}`)
	code, body := routerGet(t, rt, http.MethodGet, "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st RouterStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "router" || st.Proxied != 1 || len(st.Replicas) != 1 || !st.Replicas[0].Healthy {
		t.Fatalf("stats: %+v", st)
	}
	if code, _ := routerGet(t, rt, http.MethodGet, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
}

func TestRouterPlacedFanout(t *testing.T) {
	n0 := newFakeBackend("", "n0")
	defer n0.ts.Close()
	n1 := newFakeBackend("", "n1")
	defer n1.ts.Close()
	p := &PlacedIndex{
		Name: "placed", Agg: "sum",
		Cuts:  []float64{10},
		Nodes: []string{n0.ts.URL, n1.ts.URL},
	}
	rt, err := NewRouter(RouterConfig{Placements: []*PlacedIndex{p}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Reads fan out to every node and merge: both fakes answer value 1.
	code, body := routerGet(t, rt, http.MethodPost, "/v1/indexes/placed/query", `{"lo":0,"hi":100}`)
	if code != http.StatusOK {
		t.Fatalf("placed query: %d %s", code, body)
	}
	var qa queryAnswer
	if err := json.Unmarshal([]byte(body), &qa); err != nil {
		t.Fatal(err)
	}
	if qa.Value != 2 || !qa.Found {
		t.Fatalf("placed merge: %+v", qa)
	}

	// Inserts are partitioned by the cut: key 5 to node 0, key 15 to node 1.
	code, body = routerGet(t, rt, http.MethodPost, "/v1/indexes/placed/insert",
		`{"records":[{"key":5,"measure":1},{"key":15,"measure":2}]}`)
	if code != http.StatusOK {
		t.Fatalf("placed insert: %d %s", code, body)
	}
	n0.mu.Lock()
	in0 := string(n0.lastInsert)
	n0.mu.Unlock()
	n1.mu.Lock()
	in1 := string(n1.lastInsert)
	n1.mu.Unlock()
	if !strings.Contains(in0, `"key":5`) || strings.Contains(in0, `"key":15`) {
		t.Fatalf("node0 insert body %s", in0)
	}
	if !strings.Contains(in1, `"key":15`) || strings.Contains(in1, `"key":5,`) {
		t.Fatalf("node1 insert body %s", in1)
	}
}

func TestIsWrite(t *testing.T) {
	for _, tc := range []struct {
		method, path string
		want         bool
	}{
		{http.MethodPost, "/v1/indexes", true},
		{http.MethodPost, "/v1/indexes/x/insert", true},
		{http.MethodPost, "/v1/indexes/x/rebuild", true},
		{http.MethodPost, "/v1/indexes/x/restore", true},
		{http.MethodDelete, "/v1/indexes/x", true},
		{http.MethodPost, "/v1/indexes/x/query", false},
		{http.MethodPost, "/v1/indexes/x/batch", false},
		{http.MethodGet, "/v1/indexes", false},
		{http.MethodGet, "/v1/indexes/x/marshal", false},
	} {
		r := httptest.NewRequest(tc.method, tc.path, nil)
		if got := isWrite(r); got != tc.want {
			t.Errorf("isWrite(%s %s) = %v, want %v", tc.method, tc.path, got, tc.want)
		}
	}
}
