package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// buildCountOver is a test helper building a COUNT index over the keys.
func buildCountOver(t *testing.T, keys []float64, opt Options) *Index1D {
	t.Helper()
	ix, err := BuildCount(keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// rootKeysClustered piles almost all keys into a sliver of the domain with
// one far outlier — the pathological distribution for an interpolation
// table: nearly every segment boundary lands in a single bucket.
func rootKeysClustered(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, 0, n)
	k := 0.0
	for len(keys) < n-1 {
		k += rng.Float64() * 1e-4
		keys = append(keys, k)
	}
	keys = append(keys, k+1e9) // outlier stretches the root's key span
	return keys
}

// TestLocateMatchesBinary is the root's correctness property: the learned
// root and the binary-search reference must agree on every probe, for
// uniform, skewed, and pathological clustered key distributions.
func TestLocateMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	datasets := map[string][]float64{
		"uniform":   nil,
		"skewed":    nil,
		"clustered": rootKeysClustered(4000, 8),
	}
	uniform := make([]float64, 4000)
	k := 0.0
	for i := range uniform {
		k += 0.5 + rng.Float64()
		uniform[i] = k
	}
	datasets["uniform"] = uniform
	skewed := make([]float64, 4000)
	k = 0.0
	for i := range skewed {
		k += math.Exp(rng.NormFloat64() * 3)
		skewed[i] = k
	}
	datasets["skewed"] = skewed

	for name, keys := range datasets {
		for _, delta := range []float64{2, 20} {
			// EncRaw pinned: the probes below read the raw boundary arrays
			// directly. TestLocatePackedMatchesReference covers the packed
			// locate path.
			ix := buildCountOver(t, keys, Options{Degree: 2, Delta: delta, NoFallback: true, Encoding: EncRaw})
			lo, hi := keys[0], keys[len(keys)-1]
			span := hi - lo
			probes := make([]float64, 0, 5000)
			// Random interior probes, the keys themselves, every segment
			// boundary (Lo and Hi), and out-of-domain probes on both sides.
			for i := 0; i < 2000; i++ {
				probes = append(probes, lo+rng.Float64()*span)
			}
			for _, x := range keys[:500] {
				probes = append(probes, x)
			}
			for i := 0; i < ix.NumSegments(); i++ {
				probes = append(probes, ix.segLo[i], ix.segHi[i])
			}
			probes = append(probes, lo-1, lo-span, hi+1, hi+span, lo, hi)
			for _, p := range probes {
				if got, want := ix.Locate(p), ix.LocateBinary(p); got != want {
					t.Fatalf("%s δ=%g: Locate(%v) = %d, binary = %d", name, delta, p, got, want)
				}
				// locateLE against its own sort-based definition.
				wantLE := sort.Search(ix.NumSegments(), func(i int) bool { return ix.segLo[i] > p }) - 1
				if got := ix.locateLE(p); got != wantLE {
					t.Fatalf("%s δ=%g: locateLE(%v) = %d, want %d", name, delta, p, got, wantLE)
				}
			}
		}
	}
}

// TestLocateEdgeCases pins the documented boundary behaviour: key below the
// first segment, key equal to a segment boundary, key above the last
// segment, and the single-segment index.
func TestLocateEdgeCases(t *testing.T) {
	// Multi-segment index with gaps between segments.
	keys := make([]float64, 0, 600)
	k := 0.0
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600; i++ {
		if i%200 == 199 {
			k += 5000 // gap: next segment starts far away
		}
		k += rng.Float64() + 0.1
		keys = append(keys, k)
	}
	ix := buildCountOver(t, keys, Options{Degree: 2, Delta: 2, NoFallback: true, Encoding: EncRaw})
	h := ix.NumSegments()
	if h < 3 {
		t.Fatalf("want a multi-segment index, got h=%d", h)
	}

	if got := ix.Locate(ix.segLo[0] - 123); got != 0 {
		t.Fatalf("below first segment: Locate = %d, want 0 (clamped)", got)
	}
	if got := ix.locateLE(ix.segLo[0] - 123); got != -1 {
		t.Fatalf("below first segment: locateLE = %d, want -1", got)
	}
	for i := 0; i < h; i++ {
		if got := ix.Locate(ix.segLo[i]); got != i {
			t.Fatalf("boundary key segLo[%d]: Locate = %d", i, got)
		}
	}
	for i := 0; i < h-1; i++ {
		// A key in the gap (or on the segment's Hi) belongs to segment i.
		if got := ix.Locate(ix.segHi[i]); got != i {
			t.Fatalf("boundary key segHi[%d]: Locate = %d", i, got)
		}
		mid := ix.segHi[i] + (ix.segLo[i+1]-ix.segHi[i])/2
		if mid > ix.segHi[i] && mid < ix.segLo[i+1] {
			if got := ix.Locate(mid); got != i {
				t.Fatalf("gap key after segment %d: Locate = %d", i, got)
			}
		}
	}
	if got := ix.Locate(ix.segHi[h-1] + 1e6); got != h-1 {
		t.Fatalf("above last segment: Locate = %d, want %d", got, h-1)
	}

	// Single-segment index: everything resolves to segment 0 and the root
	// table is skipped.
	one := buildCountOver(t, []float64{1, 2, 3, 4, 5}, Options{Degree: 2, Delta: 100, NoFallback: true, Encoding: EncRaw})
	if one.NumSegments() != 1 {
		t.Fatalf("want single segment, got %d", one.NumSegments())
	}
	if one.RootSizeBytes() != 0 {
		t.Fatalf("single-segment index should carry no root table, got %d bytes", one.RootSizeBytes())
	}
	for _, p := range []float64{-10, 1, 3, 5, 99} {
		if got := one.Locate(p); got != 0 {
			t.Fatalf("single segment: Locate(%v) = %d", p, got)
		}
	}
}

// TestFirstHiGEMatchesBinary pins the MIN/MAX traversal's derived bound to
// the sort-based definition it replaced.
func TestFirstHiGEMatchesBinary(t *testing.T) {
	keys, vals := genDataset(3000, 11)
	ix, err := BuildMax(keys, vals, Options{Degree: 2, Delta: 50, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	lo, hi := keys[0], keys[len(keys)-1]
	for i := 0; i < 4000; i++ {
		p := lo - 10 + rng.Float64()*(hi-lo+20)
		want := sort.SearchFloat64s(ix.segHi, p)
		if got := ix.firstHiGE(p); got != want {
			t.Fatalf("firstHiGE(%v) = %d, want %d", p, got, want)
		}
	}
	for i := 0; i < ix.NumSegments(); i++ {
		for _, p := range []float64{ix.segLo[i], ix.segHi[i]} {
			want := sort.SearchFloat64s(ix.segHi, p)
			if got := ix.firstHiGE(p); got != want {
				t.Fatalf("firstHiGE(boundary %v) = %d, want %d", p, got, want)
			}
		}
	}
}

// TestRootSizeAccounting: the root bytes must be included in SizeBytes and
// broken out by RootSizeBytes, and must survive a serialisation round trip
// (the root is derived state, rebuilt on load).
func TestRootSizeAccounting(t *testing.T) {
	keys := make([]float64, 5000)
	k := 0.0
	rng := rand.New(rand.NewSource(13))
	for i := range keys {
		k += rng.Float64() + 0.01
		keys[i] = k
	}
	ix := buildCountOver(t, keys, Options{Degree: 2, Delta: 1, NoFallback: true})
	if ix.NumSegments() < 2 {
		t.Fatalf("want multiple segments, got %d", ix.NumSegments())
	}
	rb := ix.RootSizeBytes()
	if rb <= 0 {
		t.Fatal("multi-segment index should carry a root table")
	}
	segOnly := ix.BoundSizeBytes() + ix.CoeffSizeBytes()
	if got := ix.SizeBytes(); got != segOnly+rb {
		t.Fatalf("SizeBytes = %d, want segments %d + root %d", got, segOnly, rb)
	}

	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Index1D
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.RootSizeBytes() != rb {
		t.Fatalf("root bytes after round trip: %d, want %d", back.RootSizeBytes(), rb)
	}
	for i := 0; i < 1000; i++ {
		p := keys[0] + rng.Float64()*(k-keys[0])
		if back.Locate(p) != back.LocateBinary(p) {
			t.Fatalf("round-tripped root disagrees with binary search at %v", p)
		}
	}
}

// TestParallelBuildEquivalentIndex: building through the core API with
// Parallelism set must produce a byte-identical serialised index (and
// identical query answers) to the serial build, for 1D COUNT and MAX.
func TestParallelBuildEquivalentIndex(t *testing.T) {
	keys, vals := genDataset(20000, 17)
	for _, workers := range []int{2, 4, 8} {
		serialC := buildCountOver(t, keys, Options{Degree: 2, Delta: 10, NoFallback: true})
		parC := buildCountOver(t, keys, Options{Degree: 2, Delta: 10, NoFallback: true, Parallelism: workers})
		sb, err := serialC.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		pb, err := parC.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(sb) != string(pb) {
			t.Fatalf("COUNT: parallel build (workers=%d) is not byte-identical to serial", workers)
		}

		serialM, err := BuildMax(keys, vals, Options{Degree: 2, Delta: 50, NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		parM, err := BuildMax(keys, vals, Options{Degree: 2, Delta: 50, NoFallback: true, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		sb, err = serialM.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		pb, err = parM.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(sb) != string(pb) {
			t.Fatalf("MAX: parallel build (workers=%d) is not byte-identical to serial", workers)
		}
	}
}

// TestParallelBuild2DEquivalent: the quadtree build with parallel per-level
// fits must serialise identically to the serial build.
func TestParallelBuild2DEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 4000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*360 - 180
		ys[i] = rng.Float64()*180 - 90
	}
	serial, err := BuildCount2D(xs, ys, Options2D{Degree: 2, Delta: 100, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildCount2D(xs, ys, Options2D{Degree: 2, Delta: 100, NoFallback: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := par.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(pb) {
		t.Fatal("2D parallel build is not byte-identical to serial")
	}
}

// BenchmarkLocateInternal compares the learned root against the binary
// search it replaced, on a fine index where the boundary array spills out of
// L1. (The public BenchmarkLocate in the repo root measures the end-to-end
// point-query path.)
func BenchmarkLocateInternal(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	keys := make([]float64, 200000)
	k := 0.0
	for i := range keys {
		k += rng.Float64() + 0.01
		keys[i] = k
	}
	ix, err := BuildCount(keys, Options{Degree: 2, Delta: 0.5, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	probes := make([]float64, 1024)
	for i := range probes {
		probes[i] = keys[0] + rng.Float64()*(k-keys[0])
	}
	b.Logf("segments: %d, root KiB: %d", ix.NumSegments(), ix.RootSizeBytes()/1024)
	b.Run("Root", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.Locate(probes[i&1023])
		}
	})
	b.Run("Binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.LocateBinary(probes[i&1023])
		}
	})
}
