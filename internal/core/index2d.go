package core

import (
	"fmt"
	"math"

	"repro/internal/artree"
	"repro/internal/data"
	"repro/internal/quadtree"
)

// Options2D configures a two-key COUNT index build (Section VI).
type Options2D struct {
	// Degree of the fitted surfaces P(u,v) = Σ_{i+j≤deg} a_ij u^i v^j
	// (default 2, matching PolyFit-2 in §VII).
	Degree int
	// Delta is the per-leaf bounded error δ. For an absolute guarantee
	// εabs use δ = εabs/4 (Lemma 6).
	Delta float64
	// GridSize / MaxDataSamples / SplitThreshold / MaxDepth tune the
	// quadtree segmentation; zero values take quadtree defaults.
	GridSize       int
	MaxDataSamples int
	SplitThreshold int
	MaxDepth       int
	// NoFallback skips the exact aR-tree used by relative-error queries.
	NoFallback bool
	// Parallelism is the number of goroutines used for the per-cell surface
	// fits during construction; values ≤ 1 build serially. The built tree is
	// identical for every worker count.
	Parallelism int
}

// Delta2DForAbs returns the build δ guaranteeing εabs for two-key COUNT
// (Lemma 6).
func Delta2DForAbs(epsAbs float64) float64 { return epsAbs / 4 }

// Index2D is a PolyFit index over two keys answering approximate range
// COUNT (or weighted SUM) queries via four cumulative-surface evaluations.
type Index2D struct {
	tree  *quadtree.Tree
	delta float64
	n     int
	total float64       // CF(+∞,+∞): n for COUNT, Σw for SUM
	exact *artree.RTree // Problem-2 fallback (nil with NoFallback)
}

// BuildCount2D constructs the two-key COUNT index: it precomputes the
// cumulative surface CFcount (Definition 5) with a plane-sweep dominance
// counter and segments the domain with the Figure 13 quadtree.
func BuildCount2D(xs, ys []float64, opt Options2D) (*Index2D, error) {
	return buildWeighted2D(xs, ys, nil, opt)
}

// BuildSum2D constructs the two-key SUM index over weighted points — the
// "other types of range aggregate queries" extension Section VI mentions.
// The cumulative surface Σ{w_i : x_i ≤ u, y_i ≤ v} replaces CFcount;
// everything else (quadtree, four-corner identity, Lemmas 6/7) is shared.
// Weights must be non-negative for the relative-error guarantee.
func BuildSum2D(xs, ys, ws []float64, opt Options2D) (*Index2D, error) {
	if len(ws) != len(xs) {
		return nil, fmt.Errorf("%w: %d xs, %d weights", ErrLengthMismatch, len(xs), len(ws))
	}
	return buildWeighted2D(xs, ys, ws, opt)
}

func buildWeighted2D(xs, ys, ws []float64, opt Options2D) (*Index2D, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("core: %d xs, %d ys: %w", len(xs), len(ys), ErrEmptyDataset)
	}
	if opt.Degree == 0 {
		opt.Degree = 2
	}
	dc := data.NewWeightedDominanceCounter(xs, ys, ws)
	tree, err := quadtree.Build(xs, ys, dc.Count, quadtree.Config{
		Degree:         opt.Degree,
		Delta:          opt.Delta,
		GridSize:       opt.GridSize,
		MaxDataSamples: opt.MaxDataSamples,
		SplitThreshold: opt.SplitThreshold,
		MaxDepth:       opt.MaxDepth,
		Parallelism:    opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	total := 0.0
	if ws == nil {
		total = float64(len(xs))
	} else {
		for _, w := range ws {
			total += w
		}
	}
	ix := &Index2D{tree: tree, delta: opt.Delta, n: len(xs), total: total}
	if !opt.NoFallback {
		rt, err := artree.NewRTreeWeighted(xs, ys, ws, 0, 0)
		if err != nil {
			return nil, err
		}
		ix.exact = rt
	}
	return ix, nil
}

// CF evaluates the approximate two-key cumulative function, clamped into
// [0, total] (the exact surface is a non-negative aggregate, so clamping
// only reduces error).
func (ix *Index2D) CF(u, v float64) float64 {
	val := ix.tree.EvalCF(u, v)
	if val < 0 {
		return 0
	}
	if val > ix.total {
		return ix.total
	}
	return val
}

// RangeCount answers the approximate two-key COUNT over the half-open
// rectangle (xlo, xhi] × (ylo, yhi] via the four-corner identity of
// Section VI. Built with δ = εabs/4, |A − R| ≤ εabs (Lemma 6).
func (ix *Index2D) RangeCount(xlo, xhi, ylo, yhi float64) float64 {
	if xhi < xlo || yhi < ylo {
		return 0
	}
	a := ix.CF(xhi, yhi) - ix.CF(xlo, yhi) - ix.CF(xhi, ylo) + ix.CF(xlo, ylo)
	if a < 0 {
		return 0
	}
	if a > ix.total {
		return ix.total
	}
	return a
}

// RangeCountRel answers with the relative guarantee εrel: the Lemma 7 test
// A ≥ 4δ(1 + 1/εrel) gates the approximate answer; failures fall back to the
// exact aR-tree.
func (ix *Index2D) RangeCountRel(xlo, xhi, ylo, yhi, epsRel float64) (val float64, usedExact bool, err error) {
	if epsRel <= 0 {
		return 0, false, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	a := ix.RangeCount(xlo, xhi, ylo, yhi)
	if a >= 4*ix.delta*(1+1/epsRel) {
		return a, false, nil
	}
	if ix.exact == nil {
		return 0, false, ErrNoFallback
	}
	return ix.exactRange(xlo, xhi, ylo, yhi), true, nil
}

// exactRange runs the exact weighted aR-tree aggregate with half-open
// semantics (works for both COUNT and SUM indexes).
func (ix *Index2D) exactRange(xlo, xhi, ylo, yhi float64) float64 {
	if xhi < xlo || yhi < ylo {
		return 0
	}
	return ix.exact.SumRect(artree.Rect{
		XLo: math.Nextafter(xlo, math.Inf(1)), XHi: xhi,
		YLo: math.Nextafter(ylo, math.Inf(1)), YHi: yhi,
	})
}

// ExactRangeCount runs the exact aR-tree count with the same half-open
// semantics as RangeCount. With NoFallback it returns -1.
func (ix *Index2D) ExactRangeCount(xlo, xhi, ylo, yhi float64) int {
	if ix.exact == nil {
		return -1
	}
	if xhi < xlo || yhi < ylo {
		return 0
	}
	q := artree.Rect{
		XLo: math.Nextafter(xlo, math.Inf(1)), XHi: xhi,
		YLo: math.Nextafter(ylo, math.Inf(1)), YHi: yhi,
	}
	return ix.exact.CountRect(q)
}

// Len returns the number of indexed points.
func (ix *Index2D) Len() int { return ix.n }

// Delta returns the build δ.
func (ix *Index2D) Delta() float64 { return ix.delta }

// NumLeaves returns the number of fitted surfaces (quadtree leaves).
func (ix *Index2D) NumLeaves() int { return ix.tree.NumLeaves }

// Depth returns the quadtree depth.
func (ix *Index2D) Depth() int { return ix.tree.Depth }

// ForcedLeaves reports leaves that could not reach δ before MaxDepth
// (0 in healthy builds).
func (ix *Index2D) ForcedLeaves() int { return ix.tree.ForcedLeaves }

// Bounds returns the indexed domain rectangle.
func (ix *Index2D) Bounds() (xlo, xhi, ylo, yhi float64) { return ix.tree.Bounds() }

// SizeBytes reports the PolyFit structure footprint (quadtree + surfaces);
// the exact fallback is reported by FallbackSizeBytes.
func (ix *Index2D) SizeBytes() int { return ix.tree.SizeBytes() }

// FallbackSizeBytes reports the aR-tree footprint, if built.
func (ix *Index2D) FallbackSizeBytes() int {
	if ix.exact == nil {
		return 0
	}
	return ix.exact.SizeBytes()
}
