package core

import (
	"testing"

	"repro/internal/minimax"
	"repro/internal/poly"
	"repro/internal/segment"
)

// TestScratchSubRootOverflow hand-crafts segments whose starts cluster in a
// sliver of one root bucket, then probes a key in the same bucket but far
// above the cluster: (k - sub.lo) * sub.scale overflows int64 in
// subBucketAt.
func TestScratchSubRootOverflow(t *testing.T) {
	// 100 segments with starts spaced 1e-300 apart near 0, then the key span
	// stretched to 1.0 by the last segment.
	segs := make([]segment.Segment, 0, 101)
	for i := 0; i < 100; i++ {
		lo := float64(i) * 1e-300
		hi := lo + 0.5e-300
		segs = append(segs, segment.Segment{
			Lo: lo, Hi: hi,
			Fit: minimax.Fit1D{P: poly.FramedPoly{
				F: poly.Frame{Center: lo, HalfWidth: 1},
				P: poly.Poly{float64(i)},
			}},
		})
	}
	segs = append(segs, segment.Segment{
		Lo: 1.0, Hi: 1.0,
		Fit: minimax.Fit1D{P: poly.FramedPoly{
			F: poly.Frame{Center: 1, HalfWidth: 1},
			P: poly.Poly{100},
		}},
	})
	ix := &Index1D{agg: Count, degree: 0, delta: 1, n: 101, keyLo: 0, keyHi: 1}
	ix.adoptRawSegments(segs)
	if len(ix.rootSubs) == 0 {
		t.Fatalf("expected a second-level root table (clustered bucket); got none")
	}
	// Probe keys inside bucket 0 but far above the clustered segment starts.
	for _, k := range []float64{1e-30, 1e-10, 1e-7} {
		got := ix.locateLE(k)
		want := ix.LocateBinary(k)
		if got != want {
			t.Errorf("locateLE(%g) = %d, want %d", k, got, want)
		}
	}
}
