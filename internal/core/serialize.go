package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/poly"
	"repro/internal/quadtree"
)

// Serialization encodes the compact PolyFit structure only — segments,
// frames, coefficients and per-segment extrema. The exact fallback
// structures are deliberately excluded: they are O(n) while the index is
// O(h), and a deserialised index is expected to serve Problem-1 (absolute
// guarantee) queries; relative-error queries on a loaded index return
// ErrNoFallback unless the index is rebuilt from data.

const (
	magic1D   = uint32(0x504F4C31) // "POL1"
	magic2D   = uint32(0x504F4C32) // "POL2"
	formatVer = uint16(1)

	// formatVer1D is the current POL1 version. v2 stores the
	// structure-of-arrays coefficient store with its encoding tag; v1 blobs
	// (per-segment frame + trimmed coefficients) still load, landing on the
	// raw encoding with bit-identical answers.
	formatVer1D = uint16(2)
)

// BlobKind identifies which index type produced a serialised blob.
type BlobKind int

// Blob kinds distinguishable from the leading magic bytes.
const (
	BlobUnknown        BlobKind = iota
	BlobStatic1D                // Index1D.MarshalBinary ("POL1")
	BlobStatic2D                // Index2D.MarshalBinary ("POL2")
	BlobDynamic                 // Dynamic1D.MarshalBinary ("POLD")
	BlobShardedStatic           // Sharded1D.MarshalBinary ("POLS", static kind)
	BlobShardedDynamic          // ShardedDynamic1D.MarshalBinary ("POLS", dynamic kind)
)

// DetectBlob sniffs the magic bytes of a serialised index so callers (the
// serving layer's blob-loading paths) can dispatch to the right
// unmarshaller without trial decoding.
func DetectBlob(data []byte) BlobKind {
	if len(data) < 4 {
		return BlobUnknown
	}
	switch binary.LittleEndian.Uint32(data) {
	case magic1D:
		return BlobStatic1D
	case magic2D:
		return BlobStatic2D
	case magicDyn:
		return BlobDynamic
	case magicSharded:
		// The kind byte sits right after magic (4) and version (2).
		if len(data) >= 7 && data[6] == shardKindDynamic {
			return BlobShardedDynamic
		}
		return BlobShardedStatic
	default:
		return BlobUnknown
	}
}

// MarshalBinary implements encoding.BinaryMarshaler for the 1D index. The
// blob records the coefficient store in whatever encoding the build
// certified (POL1 v2), so loading never re-fits and never re-certifies.
func (ix *Index1D) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magic1D)
	w(formatVer1D)
	w(uint8(ix.agg))
	w(uint8(btoi(ix.neg)))
	w(uint32(ix.degree))
	w(ix.delta)
	w(uint64(ix.n))
	w(ix.keyLo)
	w(ix.keyHi)
	w(ix.total)
	h := ix.NumSegments()
	w(uint32(h))
	w(uint8(ix.enc))
	w(uint16(ix.laneW))
	switch ix.enc {
	case EncRaw:
		w(ix.segLo)
		w(ix.segHi)
		w(ix.frCtr)
		w(ix.frHW)
		for j := 0; j < ix.laneW; j++ {
			w(ix.laneF64[j])
		}
	case EncF32:
		w(ix.segLo)
		w(ix.segHi)
		for j := 0; j < ix.laneW; j++ {
			w(ix.laneF32[j])
		}
	case EncPacked:
		w(ix.keyStep)
		w(ix.loQ)
		for j := 0; j < ix.laneW; j++ {
			if lane := ix.laneU16[j]; lane != nil {
				w(uint8(2))
				w(ix.laneOff[j])
				w(ix.laneScale[j])
				w(lane)
			} else {
				w(uint8(4))
				w(ix.laneOff[j])
				w(ix.laneScale[j])
				w(ix.laneU32[j])
			}
		}
	default:
		return nil, fmt.Errorf("%w: cannot marshal encoding %v", ErrBadFormat, ix.enc)
	}
	w(uint8(btoi(ix.segExt != nil)))
	for _, v := range ix.segExt {
		w(v)
	}
	return buf.Bytes(), nil
}

// need reports whether the reader still holds at least n bytes — checked
// before every slice allocation so a truncated blob errors instead of
// over-allocating or silently short-reading.
func need(r *bytes.Reader, n int) bool { return int64(r.Len()) >= int64(n) }

func readF64s(r *bytes.Reader, h int) ([]float64, error) {
	if !need(r, 8*h) {
		return nil, ErrBadFormat
	}
	s := make([]float64, h)
	return s, binary.Read(r, binary.LittleEndian, s)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for the 1D index.
// Both POL1 versions load: v2 restores the encoded store verbatim, v1 (the
// pre-SoA array-of-structs layout) lands on the raw encoding and answers
// bit-identically to the index that wrote it. The loaded index has no exact
// fallback (see package comment above).
func (ix *Index1D) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magic1D {
		if m == magicDyn {
			return fmt.Errorf("%w: dynamic index blob (use RestoreDynamic)", ErrBadFormat)
		}
		return fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || (ver != 1 && ver != formatVer1D) {
		return fmt.Errorf("%w: version", ErrBadFormat)
	}
	var agg, neg uint8
	var degree uint32
	var n uint64
	if err := firstErr(rd(&agg), rd(&neg), rd(&degree), rd(&ix.delta), rd(&n),
		rd(&ix.keyLo), rd(&ix.keyHi), rd(&ix.total)); err != nil {
		return fmt.Errorf("%w: header", ErrBadFormat)
	}
	ix.agg = Agg(agg)
	if ix.agg < Count || ix.agg > Max {
		return fmt.Errorf("%w: aggregate %d", ErrBadFormat, agg)
	}
	ix.neg = neg != 0
	ix.degree = int(degree)
	ix.n = int(n)
	var h uint32
	if err := rd(&h); err != nil {
		return fmt.Errorf("%w: segment count", ErrBadFormat)
	}
	// Reject counts the blob cannot possibly hold before allocating (the
	// tightest layout, packed, still needs 4 bytes of grid start per segment).
	if h == 0 || h > uint32(math.MaxInt32) || int64(h) > int64(len(data))/4+1 {
		return fmt.Errorf("%w: %d segments", ErrBadFormat, h)
	}
	// Reset the store to a clean slate; the version-specific reader below
	// fills exactly the lanes its encoding owns.
	ix.segLo, ix.segHi, ix.frCtr, ix.frHW = nil, nil, nil, nil
	ix.loQ, ix.keyStep = nil, 0
	ix.laneF64, ix.laneF32, ix.laneU16, ix.laneU32 = nil, nil, nil, nil
	ix.laneOff, ix.laneScale = nil, nil
	var err error
	if ver == 1 {
		err = ix.readSegmentsV1(r, int(h))
	} else {
		err = ix.readSegmentsV2(r, int(h))
	}
	if err != nil {
		return err
	}
	ix.buildRoot() // the learned root is derived state, rebuilt on load
	var hasExt uint8
	if err := rd(&hasExt); err != nil {
		return fmt.Errorf("%w: extrema flag", ErrBadFormat)
	}
	ix.segExt = nil
	ix.rmq = nil
	if hasExt != 0 {
		if ix.segExt, err = readF64s(r, int(h)); err != nil {
			return fmt.Errorf("%w: extrema", ErrBadFormat)
		}
		ix.rmq = buildSparseTable(ix.segExt)
	}
	ix.exactCF = nil
	ix.exactExt = nil
	return nil
}

// readSegmentsV1 loads the historical array-of-structs layout (per-segment
// frame + trimmed coefficient list) into the raw SoA store.
func (ix *Index1D) readSegmentsV1(r *bytes.Reader, h int) error {
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	// Each v1 segment occupies at least 34 bytes (lo, hi, frame, coeff count).
	if !need(r, 34*h) {
		return fmt.Errorf("%w: %d segments", ErrBadFormat, h)
	}
	ix.enc = EncRaw
	ix.segLo = make([]float64, h)
	ix.segHi = make([]float64, h)
	ix.frCtr = make([]float64, h)
	ix.frHW = make([]float64, h)
	polys := make([]poly.Poly, h)
	w := 0
	for i := 0; i < h; i++ {
		var nc uint16
		if err := firstErr(rd(&ix.segLo[i]), rd(&ix.segHi[i]),
			rd(&ix.frCtr[i]), rd(&ix.frHW[i]), rd(&nc)); err != nil {
			return fmt.Errorf("%w: segment %d", ErrBadFormat, i)
		}
		p := make(poly.Poly, nc)
		for j := range p {
			if err := rd(&p[j]); err != nil {
				return fmt.Errorf("%w: coeffs of segment %d", ErrBadFormat, i)
			}
		}
		polys[i] = p
		if int(nc) > w {
			w = int(nc)
		}
	}
	if w > maxLanes {
		return fmt.Errorf("%w: %d coefficient lanes", ErrBadFormat, w)
	}
	ix.laneW = w
	ix.laneF64 = makeLanesF64(w, h)
	for i, p := range polys {
		for j, c := range p {
			ix.laneF64[j][i] = c
		}
	}
	return nil
}

// readSegmentsV2 loads the SoA coefficient store in its recorded encoding,
// validating the encoding tag, lane count, and every section length so a
// truncated or tampered blob errors instead of panicking or mis-decoding.
func (ix *Index1D) readSegmentsV2(r *bytes.Reader, h int) error {
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var enc uint8
	var laneW uint16
	if err := firstErr(rd(&enc), rd(&laneW)); err != nil {
		return fmt.Errorf("%w: store header", ErrBadFormat)
	}
	ix.enc = Encoding(enc)
	if !ix.enc.valid() {
		return fmt.Errorf("%w: encoding %d", ErrBadFormat, enc)
	}
	if int(laneW) > maxLanes {
		return fmt.Errorf("%w: %d coefficient lanes", ErrBadFormat, laneW)
	}
	w := int(laneW)
	ix.laneW = w
	var err error
	switch ix.enc {
	case EncRaw:
		if ix.segLo, err = readF64s(r, h); err == nil {
			if ix.segHi, err = readF64s(r, h); err == nil {
				if ix.frCtr, err = readF64s(r, h); err == nil {
					ix.frHW, err = readF64s(r, h)
				}
			}
		}
		if err != nil {
			return fmt.Errorf("%w: segment bounds", ErrBadFormat)
		}
		ix.laneF64 = makeLanesF64(w, h)
		for j := 0; j < w; j++ {
			if !need(r, 8*h) {
				return fmt.Errorf("%w: coefficient lane %d", ErrBadFormat, j)
			}
			if err := rd(ix.laneF64[j]); err != nil {
				return fmt.Errorf("%w: coefficient lane %d", ErrBadFormat, j)
			}
		}
	case EncF32:
		if ix.segLo, err = readF64s(r, h); err == nil {
			ix.segHi, err = readF64s(r, h)
		}
		if err != nil {
			return fmt.Errorf("%w: segment bounds", ErrBadFormat)
		}
		if !need(r, 4*w*h) {
			return fmt.Errorf("%w: coefficient lanes", ErrBadFormat)
		}
		ix.laneF32 = make([][]float32, w)
		flat := make([]float32, w*h)
		for j := 0; j < w; j++ {
			ix.laneF32[j] = flat[j*h : (j+1)*h]
			if err := rd(ix.laneF32[j]); err != nil {
				return fmt.Errorf("%w: coefficient lane %d", ErrBadFormat, j)
			}
		}
	case EncPacked:
		if err := rd(&ix.keyStep); err != nil {
			return fmt.Errorf("%w: key grid", ErrBadFormat)
		}
		if !(ix.keyStep > 0) || math.IsInf(ix.keyStep, 0) {
			return fmt.Errorf("%w: key grid step %g", ErrBadFormat, ix.keyStep)
		}
		if !need(r, 4*h) {
			return fmt.Errorf("%w: grid starts", ErrBadFormat)
		}
		ix.loQ = make([]uint32, h)
		if err := rd(ix.loQ); err != nil {
			return fmt.Errorf("%w: grid starts", ErrBadFormat)
		}
		for i := 1; i < h; i++ {
			if ix.loQ[i] <= ix.loQ[i-1] {
				return fmt.Errorf("%w: grid starts not increasing", ErrBadFormat)
			}
		}
		ix.laneU16 = make([][]uint16, w)
		ix.laneU32 = make([][]uint32, w)
		ix.laneOff = make([]float64, w)
		ix.laneScale = make([]float64, w)
		for j := 0; j < w; j++ {
			var width uint8
			if err := firstErr(rd(&width), rd(&ix.laneOff[j]), rd(&ix.laneScale[j])); err != nil {
				return fmt.Errorf("%w: lane %d grid", ErrBadFormat, j)
			}
			switch width {
			case 2:
				if !need(r, 2*h) {
					return fmt.Errorf("%w: lane %d values", ErrBadFormat, j)
				}
				lane := make([]uint16, h)
				if err := rd(lane); err != nil {
					return fmt.Errorf("%w: lane %d values", ErrBadFormat, j)
				}
				ix.laneU16[j] = lane
			case 4:
				if !need(r, 4*h) {
					return fmt.Errorf("%w: lane %d values", ErrBadFormat, j)
				}
				lane := make([]uint32, h)
				if err := rd(lane); err != nil {
					return fmt.Errorf("%w: lane %d values", ErrBadFormat, j)
				}
				ix.laneU32[j] = lane
			default:
				return fmt.Errorf("%w: lane %d width %d", ErrBadFormat, j, width)
			}
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the 2D index.
func (ix *Index2D) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magic2D)
	w(formatVer)
	w(ix.delta)
	w(uint64(ix.n))
	w(ix.total)
	var encode func(c *quadtree.Cell) error
	encode = func(c *quadtree.Cell) error {
		w(c.XLo)
		w(c.XHi)
		w(c.YLo)
		w(c.YHi)
		if c.IsLeaf() {
			w(uint8(1))
			w(uint16(c.Fit.P.Deg))
			w(c.Fit.F.U.Center)
			w(c.Fit.F.U.HalfWidth)
			w(c.Fit.F.V.Center)
			w(c.Fit.F.V.HalfWidth)
			w(uint16(len(c.Fit.P.C)))
			for _, v := range c.Fit.P.C {
				w(v)
			}
			return nil
		}
		w(uint8(0))
		for i := range c.Kids {
			if err := encode(&c.Kids[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := encode(&ix.tree.Root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reconstructs a 2D index (without the exact fallback).
func (ix *Index2D) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magic2D {
		return fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || ver != formatVer {
		return fmt.Errorf("%w: version", ErrBadFormat)
	}
	var n uint64
	if err := firstErr(rd(&ix.delta), rd(&n), rd(&ix.total)); err != nil {
		return fmt.Errorf("%w: header", ErrBadFormat)
	}
	ix.n = int(n)
	tree := &quadtree.Tree{}
	var decode func(c *quadtree.Cell, depth int) error
	decode = func(c *quadtree.Cell, depth int) error {
		if depth > 64 {
			return fmt.Errorf("%w: tree too deep", ErrBadFormat)
		}
		if depth > tree.Depth {
			tree.Depth = depth
		}
		if err := firstErr(rd(&c.XLo), rd(&c.XHi), rd(&c.YLo), rd(&c.YHi)); err != nil {
			return fmt.Errorf("%w: cell bounds", ErrBadFormat)
		}
		var leaf uint8
		if err := rd(&leaf); err != nil {
			return fmt.Errorf("%w: cell flag", ErrBadFormat)
		}
		if leaf == 1 {
			var deg, nc uint16
			if err := firstErr(rd(&deg),
				rd(&c.Fit.F.U.Center), rd(&c.Fit.F.U.HalfWidth),
				rd(&c.Fit.F.V.Center), rd(&c.Fit.F.V.HalfWidth), rd(&nc)); err != nil {
				return fmt.Errorf("%w: leaf header", ErrBadFormat)
			}
			c.Fit.P.Deg = int(deg)
			c.Fit.P.C = make([]float64, nc)
			for j := range c.Fit.P.C {
				if err := rd(&c.Fit.P.C[j]); err != nil {
					return fmt.Errorf("%w: leaf coeffs", ErrBadFormat)
				}
			}
			tree.NumLeaves++
			return nil
		}
		c.Kids = &[4]quadtree.Cell{}
		for i := range c.Kids {
			if err := decode(&c.Kids[i], depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := decode(&tree.Root, 1); err != nil {
		return err
	}
	ix.tree = tree
	ix.exact = nil
	return nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
