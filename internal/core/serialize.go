package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/poly"
	"repro/internal/quadtree"
)

// Serialization encodes the compact PolyFit structure only — segments,
// frames, coefficients and per-segment extrema. The exact fallback
// structures are deliberately excluded: they are O(n) while the index is
// O(h), and a deserialised index is expected to serve Problem-1 (absolute
// guarantee) queries; relative-error queries on a loaded index return
// ErrNoFallback unless the index is rebuilt from data.

const (
	magic1D   = uint32(0x504F4C31) // "POL1"
	magic2D   = uint32(0x504F4C32) // "POL2"
	formatVer = uint16(1)
)

// ErrBadFormat reports a corrupted or incompatible serialised index.
var ErrBadFormat = errors.New("core: bad serialized index format")

// BlobKind identifies which index type produced a serialised blob.
type BlobKind int

// Blob kinds distinguishable from the leading magic bytes.
const (
	BlobUnknown        BlobKind = iota
	BlobStatic1D                // Index1D.MarshalBinary ("POL1")
	BlobStatic2D                // Index2D.MarshalBinary ("POL2")
	BlobDynamic                 // Dynamic1D.MarshalBinary ("POLD")
	BlobShardedStatic           // Sharded1D.MarshalBinary ("POLS", static kind)
	BlobShardedDynamic          // ShardedDynamic1D.MarshalBinary ("POLS", dynamic kind)
)

// DetectBlob sniffs the magic bytes of a serialised index so callers (the
// serving layer's blob-loading paths) can dispatch to the right
// unmarshaller without trial decoding.
func DetectBlob(data []byte) BlobKind {
	if len(data) < 4 {
		return BlobUnknown
	}
	switch binary.LittleEndian.Uint32(data) {
	case magic1D:
		return BlobStatic1D
	case magic2D:
		return BlobStatic2D
	case magicDyn:
		return BlobDynamic
	case magicSharded:
		// The kind byte sits right after magic (4) and version (2).
		if len(data) >= 7 && data[6] == shardKindDynamic {
			return BlobShardedDynamic
		}
		return BlobShardedStatic
	default:
		return BlobUnknown
	}
}

// MarshalBinary implements encoding.BinaryMarshaler for the 1D index.
func (ix *Index1D) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magic1D)
	w(formatVer)
	w(uint8(ix.agg))
	w(uint8(btoi(ix.neg)))
	w(uint32(ix.degree))
	w(ix.delta)
	w(uint64(ix.n))
	w(ix.keyLo)
	w(ix.keyHi)
	w(ix.total)
	h := len(ix.segLo)
	w(uint32(h))
	for i := 0; i < h; i++ {
		w(ix.segLo[i])
		w(ix.segHi[i])
		w(ix.frames[i].Center)
		w(ix.frames[i].HalfWidth)
		w(uint16(len(ix.polys[i])))
		for _, c := range ix.polys[i] {
			w(c)
		}
	}
	w(uint8(btoi(ix.segExt != nil)))
	for _, v := range ix.segExt {
		w(v)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for the 1D index.
// The loaded index has no exact fallback (see package comment above).
func (ix *Index1D) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magic1D {
		if m == magicDyn {
			return fmt.Errorf("%w: dynamic index blob (use RestoreDynamic)", ErrBadFormat)
		}
		return fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || ver != formatVer {
		return fmt.Errorf("%w: version", ErrBadFormat)
	}
	var agg, neg uint8
	var degree uint32
	var n uint64
	if err := firstErr(rd(&agg), rd(&neg), rd(&degree), rd(&ix.delta), rd(&n),
		rd(&ix.keyLo), rd(&ix.keyHi), rd(&ix.total)); err != nil {
		return fmt.Errorf("%w: header", ErrBadFormat)
	}
	ix.agg = Agg(agg)
	if ix.agg < Count || ix.agg > Max {
		return fmt.Errorf("%w: aggregate %d", ErrBadFormat, agg)
	}
	ix.neg = neg != 0
	ix.degree = int(degree)
	ix.n = int(n)
	var h uint32
	if err := rd(&h); err != nil {
		return fmt.Errorf("%w: segment count", ErrBadFormat)
	}
	// Each segment occupies at least 34 bytes (lo, hi, frame, coeff count);
	// reject counts the blob cannot possibly hold before allocating.
	if h == 0 || h > uint32(math.MaxInt32) || int64(h) > int64(len(data))/34+1 {
		return fmt.Errorf("%w: %d segments", ErrBadFormat, h)
	}
	ix.segLo = make([]float64, h)
	ix.segHi = make([]float64, h)
	ix.frames = make([]poly.Frame, h)
	ix.polys = make([]poly.Poly, h)
	for i := uint32(0); i < h; i++ {
		var nc uint16
		if err := firstErr(rd(&ix.segLo[i]), rd(&ix.segHi[i]),
			rd(&ix.frames[i].Center), rd(&ix.frames[i].HalfWidth), rd(&nc)); err != nil {
			return fmt.Errorf("%w: segment %d", ErrBadFormat, i)
		}
		p := make(poly.Poly, nc)
		for j := range p {
			if err := rd(&p[j]); err != nil {
				return fmt.Errorf("%w: coeffs of segment %d", ErrBadFormat, i)
			}
		}
		ix.polys[i] = p
	}
	ix.buildRoot() // the learned root is derived state, rebuilt on load
	var hasExt uint8
	if err := rd(&hasExt); err != nil {
		return fmt.Errorf("%w: extrema flag", ErrBadFormat)
	}
	ix.segExt = nil
	ix.rmq = nil
	if hasExt != 0 {
		ix.segExt = make([]float64, h)
		for i := range ix.segExt {
			if err := rd(&ix.segExt[i]); err != nil {
				return fmt.Errorf("%w: extrema", ErrBadFormat)
			}
		}
		ix.rmq = buildSparseTable(ix.segExt)
	}
	ix.exactCF = nil
	ix.exactExt = nil
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the 2D index.
func (ix *Index2D) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magic2D)
	w(formatVer)
	w(ix.delta)
	w(uint64(ix.n))
	w(ix.total)
	var encode func(c *quadtree.Cell) error
	encode = func(c *quadtree.Cell) error {
		w(c.XLo)
		w(c.XHi)
		w(c.YLo)
		w(c.YHi)
		if c.IsLeaf() {
			w(uint8(1))
			w(uint16(c.Fit.P.Deg))
			w(c.Fit.F.U.Center)
			w(c.Fit.F.U.HalfWidth)
			w(c.Fit.F.V.Center)
			w(c.Fit.F.V.HalfWidth)
			w(uint16(len(c.Fit.P.C)))
			for _, v := range c.Fit.P.C {
				w(v)
			}
			return nil
		}
		w(uint8(0))
		for i := range c.Kids {
			if err := encode(&c.Kids[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := encode(&ix.tree.Root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reconstructs a 2D index (without the exact fallback).
func (ix *Index2D) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magic2D {
		return fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || ver != formatVer {
		return fmt.Errorf("%w: version", ErrBadFormat)
	}
	var n uint64
	if err := firstErr(rd(&ix.delta), rd(&n), rd(&ix.total)); err != nil {
		return fmt.Errorf("%w: header", ErrBadFormat)
	}
	ix.n = int(n)
	tree := &quadtree.Tree{}
	var decode func(c *quadtree.Cell, depth int) error
	decode = func(c *quadtree.Cell, depth int) error {
		if depth > 64 {
			return fmt.Errorf("%w: tree too deep", ErrBadFormat)
		}
		if depth > tree.Depth {
			tree.Depth = depth
		}
		if err := firstErr(rd(&c.XLo), rd(&c.XHi), rd(&c.YLo), rd(&c.YHi)); err != nil {
			return fmt.Errorf("%w: cell bounds", ErrBadFormat)
		}
		var leaf uint8
		if err := rd(&leaf); err != nil {
			return fmt.Errorf("%w: cell flag", ErrBadFormat)
		}
		if leaf == 1 {
			var deg, nc uint16
			if err := firstErr(rd(&deg),
				rd(&c.Fit.F.U.Center), rd(&c.Fit.F.U.HalfWidth),
				rd(&c.Fit.F.V.Center), rd(&c.Fit.F.V.HalfWidth), rd(&nc)); err != nil {
				return fmt.Errorf("%w: leaf header", ErrBadFormat)
			}
			c.Fit.P.Deg = int(deg)
			c.Fit.P.C = make([]float64, nc)
			for j := range c.Fit.P.C {
				if err := rd(&c.Fit.P.C[j]); err != nil {
					return fmt.Errorf("%w: leaf coeffs", ErrBadFormat)
				}
			}
			tree.NumLeaves++
			return nil
		}
		c.Kids = &[4]quadtree.Cell{}
		for i := range c.Kids {
			if err := decode(&c.Kids[i], depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := decode(&tree.Root, 1); err != nil {
		return err
	}
	ix.tree = tree
	ix.exact = nil
	return nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
