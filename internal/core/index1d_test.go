package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/segment"
)

// genDataset builds n records with strictly increasing float keys and
// non-negative measures from a skewed multimodal distribution.
func genDataset(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[float64]bool, n)
	for len(set) < n {
		set[math.Round(rng.NormFloat64()*1e5*(1+rng.Float64()))/8] = true
	}
	keys = make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	measures = make([]float64, n)
	for i := range measures {
		// Smooth-ish measure series with regime switches, similar to a
		// stock index: this is what DFmax looks like.
		measures[i] = 500 + 400*math.Sin(float64(i)/40) + 100*math.Sin(float64(i)/7) + rng.Float64()*20
	}
	return keys, measures
}

func exactSumHalfOpen(keys, measures []float64, l, u float64) float64 {
	s := 0.0
	for i, k := range keys {
		if k > l && k <= u {
			s += measures[i]
		}
	}
	return s
}

func exactMax(keys, measures []float64, l, u float64) (float64, bool) {
	best, found := math.Inf(-1), false
	for i, k := range keys {
		if k >= l && k <= u {
			found = true
			if measures[i] > best {
				best = measures[i]
			}
		}
	}
	return best, found
}

func exactMin(keys, measures []float64, l, u float64) (float64, bool) {
	best, found := math.Inf(1), false
	for i, k := range keys {
		if k >= l && k <= u {
			found = true
			if measures[i] < best {
				best = measures[i]
			}
		}
	}
	return best, found
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildCount(nil, Options{Delta: 1}); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := BuildSum([]float64{1, 2}, []float64{1}, Options{Delta: 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BuildMax([]float64{2, 1}, []float64{1, 1}, Options{Delta: 1}); err == nil {
		t.Error("unsorted keys should error")
	}
}

func TestDeltaForAbs(t *testing.T) {
	if got := DeltaForAbs(Count, 100); got != 50 {
		t.Errorf("DeltaForAbs(Count,100) = %g, want 50 (Lemma 2)", got)
	}
	if got := DeltaForAbs(Sum, 100); got != 50 {
		t.Errorf("DeltaForAbs(Sum,100) = %g, want 50", got)
	}
	if got := DeltaForAbs(Max, 100); got != 100 {
		t.Errorf("DeltaForAbs(Max,100) = %g, want 100 (Lemma 4)", got)
	}
	if got := DeltaForAbs(Min, 100); got != 100 {
		t.Errorf("DeltaForAbs(Min,100) = %g, want 100", got)
	}
}

// TestCountAbsoluteGuarantee is the Lemma 2 property: with δ = εabs/2, the
// approximate COUNT is within εabs of the exact count for queries whose
// endpoints are dataset keys (the paper's workload).
func TestCountAbsoluteGuarantee(t *testing.T) {
	keys, _ := genDataset(4000, 1)
	const epsAbs = 20.0
	for _, deg := range []int{1, 2, 3} {
		ix, err := BuildCount(keys, Options{Degree: deg, Delta: DeltaForAbs(Count, epsAbs)})
		if err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
		rng := rand.New(rand.NewSource(2))
		for q := 0; q < 800; q++ {
			l := keys[rng.Intn(len(keys))]
			u := keys[rng.Intn(len(keys))]
			if l > u {
				l, u = u, l
			}
			got, err := ix.RangeSum(l, u)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, k := range keys {
				if k > l && k <= u {
					want++
				}
			}
			if math.Abs(got-want) > epsAbs+1e-6 {
				t.Fatalf("deg %d: |%g - %g| > εabs=%g for [%g,%g]", deg, got, want, epsAbs, l, u)
			}
		}
	}
}

// TestSumAbsoluteGuarantee: Lemma 2 for SUM with real-valued measures.
func TestSumAbsoluteGuarantee(t *testing.T) {
	keys, measures := genDataset(3000, 3)
	const epsAbs = 5000.0
	ix, err := BuildSum(keys, measures, Options{Delta: DeltaForAbs(Sum, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 500; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, err := ix.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		want := exactSumHalfOpen(keys, measures, l, u)
		if math.Abs(got-want) > epsAbs+1e-6 {
			t.Fatalf("|%g - %g| > εabs=%g for (%g,%g]", got, want, epsAbs, l, u)
		}
	}
}

// TestSumGapAndOutOfDomainEndpoints: clamped evaluation keeps the guarantee
// for endpoints that fall between segments or outside the key domain.
func TestSumGapAndOutOfDomainEndpoints(t *testing.T) {
	keys, measures := genDataset(2000, 5)
	const epsAbs = 4000.0
	ix, err := BuildSum(keys, measures, Options{Delta: DeltaForAbs(Sum, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.KeyRange()
	// Below-domain and above-domain endpoints are exact CF values (0, total).
	got, _ := ix.RangeSum(lo-1000, hi+1000)
	want := exactSumHalfOpen(keys, measures, lo-1000, hi+1000)
	if math.Abs(got-want) > epsAbs {
		t.Fatalf("whole-domain query |%g-%g| > %g", got, want, epsAbs)
	}
	// Inverted and empty.
	if v, _ := ix.RangeSum(10, 5); v != 0 {
		t.Errorf("inverted range should be 0, got %g", v)
	}
}

// TestMaxGuarantee is the Lemma 4 property. The lower side (A ≥ R − εabs)
// is asserted strictly; the upper side carries the between-sample slack
// documented in DESIGN.md §3.3 (the polynomial max over a continuous
// interval can slightly exceed the sample-level bound).
func TestMaxGuarantee(t *testing.T) {
	keys, measures := genDataset(3000, 7)
	const epsAbs = 60.0
	ix, err := BuildMax(keys, measures, Options{Delta: DeltaForAbs(Max, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	overshoot := 0
	for q := 0; q < 600; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, ok, err := ix.RangeExtremum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := exactMax(keys, measures, l, u)
		if !wantOK {
			continue
		}
		if !ok {
			t.Fatalf("query [%g,%g] found no result but exact max is %g", l, u, want)
		}
		if got < want-epsAbs-1e-6 {
			t.Fatalf("lower-side violation: %g < %g − εabs=%g", got, want, epsAbs)
		}
		if got > want+epsAbs+1e-6 {
			overshoot++
			if got > want+2*epsAbs {
				t.Fatalf("gross upper-side violation: %g > %g + 2εabs", got, want)
			}
		}
	}
	if overshoot > 600/20 {
		t.Fatalf("upper-side overshoots on %d/600 queries (>5%%)", overshoot)
	}
}

// TestMinGuarantee mirrors TestMaxGuarantee through the negation path.
func TestMinGuarantee(t *testing.T) {
	keys, measures := genDataset(2000, 9)
	const epsAbs = 60.0
	ix, err := BuildMin(keys, measures, Options{Delta: DeltaForAbs(Min, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Aggregate() != Min {
		t.Fatalf("aggregate = %v, want MIN", ix.Aggregate())
	}
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 400; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, ok, err := ix.RangeExtremum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := exactMin(keys, measures, l, u)
		if !wantOK {
			continue
		}
		if !ok {
			t.Fatalf("query [%g,%g] found no result but exact min is %g", l, u, want)
		}
		if got > want+epsAbs+1e-6 {
			t.Fatalf("upper-side violation: %g > %g + εabs", got, want)
		}
		if got < want-2*epsAbs {
			t.Fatalf("gross lower-side violation: %g < %g − 2εabs", got, want)
		}
	}
}

// TestRelativeGuaranteeCount is the Lemma 3 property: whenever the index
// answers without the exact fallback, the relative error is within εrel.
func TestRelativeGuaranteeCount(t *testing.T) {
	keys, _ := genDataset(4000, 11)
	ix, err := BuildCount(keys, Options{Delta: 25})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	approxUsed := 0
	for _, epsRel := range []float64{0.01, 0.05, 0.2} {
		for q := 0; q < 300; q++ {
			l := keys[rng.Intn(len(keys))]
			u := keys[rng.Intn(len(keys))]
			if l > u {
				l, u = u, l
			}
			got, usedExact, err := ix.RangeSumRel(l, u, epsRel)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, k := range keys {
				if k > l && k <= u {
					want++
				}
			}
			if usedExact {
				if got != want {
					t.Fatalf("exact path returned %g, want %g", got, want)
				}
				continue
			}
			approxUsed++
			if want == 0 {
				t.Fatalf("approximate path used for empty result")
			}
			if math.Abs(got-want)/want > epsRel+1e-9 {
				t.Fatalf("relative error %g > εrel=%g for [%g,%g]", math.Abs(got-want)/want, epsRel, l, u)
			}
		}
	}
	if approxUsed == 0 {
		t.Fatal("approximate path never used — test not exercising Lemma 3")
	}
}

// TestRelativeGuaranteeMax: Lemma 5 gating for MAX queries.
func TestRelativeGuaranteeMax(t *testing.T) {
	keys, measures := genDataset(2000, 13)
	ix, err := BuildMax(keys, measures, Options{Delta: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	approxUsed := 0
	for q := 0; q < 500; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		got, usedExact, ok, err := ix.RangeExtremumRel(l, u, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := exactMax(keys, measures, l, u)
		if !wantOK {
			if ok && !usedExact {
				t.Fatalf("no records but approximate path answered %g", got)
			}
			continue
		}
		if !ok {
			t.Fatalf("query lost a non-empty result")
		}
		if usedExact {
			if got != want {
				t.Fatalf("exact path returned %g, want %g", got, want)
			}
			continue
		}
		approxUsed++
		if math.Abs(got-want)/want > 0.1+0.02 {
			t.Fatalf("relative error %g too large for [%g,%g]", math.Abs(got-want)/want, l, u)
		}
	}
	if approxUsed == 0 {
		t.Fatal("approximate path never used")
	}
}

func TestNoFallbackErrors(t *testing.T) {
	keys, measures := genDataset(500, 15)
	ix, err := BuildSum(keys, measures, Options{Delta: 100, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny εrel forces the fallback path, which is absent.
	if _, _, err := ix.RangeSumRel(keys[0], keys[10], 1e-9); err != ErrNoFallback {
		t.Errorf("expected ErrNoFallback, got %v", err)
	}
	mx, err := BuildMax(keys, measures, Options{Delta: 1e-9, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mx.RangeExtremumRel(keys[0], keys[10], 1e-12); err != ErrNoFallback {
		t.Errorf("expected ErrNoFallback for MAX, got %v", err)
	}
}

func TestWrongAggregateQueries(t *testing.T) {
	keys, measures := genDataset(200, 17)
	cnt, _ := BuildCount(keys, Options{Delta: 10})
	mx, _ := BuildMax(keys, measures, Options{Delta: 10})
	if _, err := mx.RangeSum(1, 2); err != ErrWrongAgg {
		t.Errorf("RangeSum on MAX index: %v, want ErrWrongAgg", err)
	}
	if _, _, err := cnt.RangeExtremum(1, 2); err != ErrWrongAgg {
		t.Errorf("RangeExtremum on COUNT index: %v, want ErrWrongAgg", err)
	}
	if _, _, err := cnt.RangeSumRel(1, 2, -0.5); err == nil {
		t.Error("non-positive εrel should error")
	}
}

func TestMaxEmptyRangeAndGaps(t *testing.T) {
	// Degree-2 fits interpolate each 3-point half exactly, but no single
	// parabola covers all four of {1,5,3,9} within δ, so the segmentation
	// breaks exactly at the large key gap (30, 100).
	keys := []float64{10, 20, 30, 100, 110, 120}
	vals := []float64{1, 5, 3, 9, 2, 4}
	ix, err := BuildMax(keys, vals, Options{Degree: 2, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSegments() != 2 {
		t.Fatalf("expected 2 segments, got %d", ix.NumSegments())
	}
	// Range strictly inside the large key gap (30, 100): no records.
	if _, ok, _ := ix.RangeExtremum(40, 90); ok {
		t.Error("gap-only range should report ok=false")
	}
	if _, ok, _ := ix.RangeExtremum(-5, 5); ok {
		t.Error("below-domain range should report ok=false")
	}
	if _, ok, _ := ix.RangeExtremum(130, 140); ok {
		t.Error("above-domain range should report ok=false")
	}
	// Range covering everything.
	if v, ok, _ := ix.RangeExtremum(0, 200); !ok || math.Abs(v-9) > 0.02+0.01 {
		t.Errorf("whole-domain max = (%g,%v), want ≈9", v, ok)
	}
}

func TestHigherDegreeFewerSegments(t *testing.T) {
	keys, measures := genDataset(3000, 19)
	prev := 1 << 30
	for _, deg := range []int{1, 2, 3} {
		ix, err := BuildSum(keys, measures, Options{Degree: deg, Delta: 500})
		if err != nil {
			t.Fatal(err)
		}
		if ix.NumSegments() > prev {
			t.Errorf("deg %d has %d segments, more than lower degree's %d", deg, ix.NumSegments(), prev)
		}
		prev = ix.NumSegments()
		if ix.Degree() != deg || ix.Delta() != 500 {
			t.Errorf("introspection mismatch")
		}
	}
}

func TestSmallerDeltaMoreSegments(t *testing.T) {
	keys, _ := genDataset(3000, 21)
	prev := 0
	for _, delta := range []float64{200, 50, 10} {
		ix, err := BuildCount(keys, Options{Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && ix.NumSegments() < prev {
			t.Errorf("δ=%g gave %d segments, fewer than larger δ's %d", delta, ix.NumSegments(), prev)
		}
		prev = ix.NumSegments()
	}
}

func TestIndexSmallerThanData(t *testing.T) {
	keys, _ := genDataset(20000, 23)
	ix, err := BuildCount(keys, Options{Delta: 50, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	raw := 8 * len(keys)
	if ix.SizeBytes() >= raw/4 {
		t.Errorf("PolyFit size %dB not ≪ raw key size %dB (h=%d)", ix.SizeBytes(), raw, ix.NumSegments())
	}
	if ix.FallbackSizeBytes() != 0 {
		t.Errorf("NoFallback index reports fallback bytes %d", ix.FallbackSizeBytes())
	}
}

func TestDeterministicBuild(t *testing.T) {
	keys, measures := genDataset(1500, 25)
	a, _ := BuildSum(keys, measures, Options{Delta: 300})
	b, _ := BuildSum(keys, measures, Options{Delta: 300})
	if a.NumSegments() != b.NumSegments() {
		t.Fatalf("non-deterministic build: %d vs %d segments", a.NumSegments(), b.NumSegments())
	}
	for i := range a.segLo {
		if a.segLo[i] != b.segLo[i] || a.segHi[i] != b.segHi[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestBackendEquivalence(t *testing.T) {
	keys, measures := genDataset(800, 27)
	a, err := BuildSum(keys, measures, Options{Delta: 300, Backend: segment.Exchange})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSum(keys, measures, Options{Delta: 300, Backend: segment.DualLP})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSegments() != b.NumSegments() {
		t.Errorf("backends disagree on segment count: %d vs %d", a.NumSegments(), b.NumSegments())
	}
}

func TestSingleRecord(t *testing.T) {
	ix, err := BuildCount([]float64{42}, Options{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.RangeSum(0, 100); math.Abs(v-1) > 2+1e-9 {
		t.Errorf("single-record count = %g", v)
	}
	mx, err := BuildMax([]float64{42}, []float64{7}, Options{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := mx.RangeExtremum(42, 42); !ok || math.Abs(v-7) > 1+1e-9 {
		t.Errorf("single-record max = (%g,%v)", v, ok)
	}
}

func TestAggString(t *testing.T) {
	for agg, want := range map[Agg]string{Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX"} {
		if agg.String() != want {
			t.Errorf("String(%d) = %q", int(agg), agg.String())
		}
	}
}
