package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/segment"
)

// buildDynFixture constructs a dynamic index of the given aggregate with a
// non-empty delta buffer, plus the query ranges used for equivalence checks.
func buildDynFixture(t *testing.T, agg Agg, noFallback bool) (*Dynamic1D, []Range) {
	t.Helper()
	keys, vals := genDataset(1500, 91+int64(agg))
	d, err := NewDynamic(agg, keys, vals, Options{Delta: 25, NoFallback: noFallback})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	inserted := 0
	for inserted < 40 {
		if err := d.Insert(rng.NormFloat64()*9e4+13, rng.Float64()*10); err != nil {
			continue
		}
		inserted++
	}
	if d.BufferLen() == 0 {
		t.Fatal("fixture expected a non-empty buffer")
	}
	ranges := make([]Range, 64)
	for i := range ranges {
		l := rng.NormFloat64() * 1e5
		u := l + rng.Float64()*2e5
		ranges[i] = Range{Lo: l, Hi: u}
	}
	return d, ranges
}

// queriesAgree asserts got answers every probe bit-for-bit like want.
func queriesAgree(t *testing.T, want, got *Dynamic1D, ranges []Range) {
	t.Helper()
	sum := want.agg == Count || want.agg == Sum
	for _, r := range ranges {
		if sum {
			wv, werr := want.RangeSum(r.Lo, r.Hi)
			gv, gerr := got.RangeSum(r.Lo, r.Hi)
			if (werr == nil) != (gerr == nil) || wv != gv {
				t.Fatalf("RangeSum(%g,%g): want (%g,%v), got (%g,%v)", r.Lo, r.Hi, wv, werr, gv, gerr)
			}
		} else {
			wv, wok, werr := want.RangeExtremum(r.Lo, r.Hi)
			gv, gok, gerr := got.RangeExtremum(r.Lo, r.Hi)
			if wok != gok || wv != gv || (werr == nil) != (gerr == nil) {
				t.Fatalf("RangeExtremum(%g,%g): want (%g,%v), got (%g,%v)", r.Lo, r.Hi, wv, wok, gv, gok)
			}
		}
	}
	wb, werr := want.QueryBatch(ranges)
	gb, gerr := got.QueryBatch(ranges)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("QueryBatch errors diverge: %v vs %v", werr, gerr)
	}
	for i := range wb {
		if wb[i] != gb[i] {
			t.Fatalf("QueryBatch[%d]: want %+v, got %+v", i, wb[i], gb[i])
		}
	}
}

func TestDynamicRoundTripAllAggregates(t *testing.T) {
	for _, agg := range []Agg{Count, Sum, Min, Max} {
		for _, noFallback := range []bool{false, true} {
			name := agg.String()
			if noFallback {
				name += "/nofallback"
			}
			t.Run(name, func(t *testing.T) {
				d, ranges := buildDynFixture(t, agg, noFallback)
				blob, err := d.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if d.BufferLen() == 0 {
					t.Fatal("marshal disturbed the buffer")
				}
				got, err := RestoreDynamic(blob)
				if err != nil {
					t.Fatal(err)
				}
				if got.Len() != d.Len() || got.BufferLen() != d.BufferLen() {
					t.Fatalf("restored %d records / %d buffered, want %d / %d",
						got.Len(), got.BufferLen(), d.Len(), d.BufferLen())
				}
				if got.Aggregate() != agg {
					t.Fatalf("restored aggregate %v, want %v", got.Aggregate(), agg)
				}
				if got.RebuildFraction != d.RebuildFraction {
					t.Fatalf("rebuild fraction %g, want %g", got.RebuildFraction, d.RebuildFraction)
				}
				if got.opt != d.opt {
					t.Fatalf("options %+v, want %+v", got.opt, d.opt)
				}
				queriesAgree(t, d, got, ranges)

				// Relative-error path: fallback setting must survive the trip.
				for _, r := range ranges[:16] {
					if agg == Count || agg == Sum {
						wv, wex, werr := d.RangeSumRel(r.Lo, r.Hi, 0.05)
						gv, gex, gerr := got.RangeSumRel(r.Lo, r.Hi, 0.05)
						if wv != gv || wex != gex || !errors.Is(gerr, werr) && (werr != nil) != (gerr != nil) {
							t.Fatalf("RangeSumRel(%g,%g): want (%g,%v,%v), got (%g,%v,%v)",
								r.Lo, r.Hi, wv, wex, werr, gv, gex, gerr)
						}
					} else {
						wv, wex, wok, werr := d.RangeExtremumRel(r.Lo, r.Hi, 0.05)
						gv, gex, gok, gerr := got.RangeExtremumRel(r.Lo, r.Hi, 0.05)
						if wv != gv || wex != gex || wok != gok || (werr != nil) != (gerr != nil) {
							t.Fatalf("RangeExtremumRel(%g,%g): want (%g,%v,%v,%v), got (%g,%v,%v,%v)",
								r.Lo, r.Hi, wv, wex, wok, werr, gv, gex, gok, gerr)
						}
					}
				}
			})
		}
	}
}

// TestDynamicRoundTripStaysDynamic exercises the restored index as a live
// dynamic index: duplicate detection against base and buffer, fresh
// inserts, and a forced merge-rebuild (which needs the raw measures).
func TestDynamicRoundTripStaysDynamic(t *testing.T) {
	d, ranges := buildDynFixture(t, Sum, false)
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreDynamic(blob)
	if err != nil {
		t.Fatal(err)
	}
	baseKey := got.state.Load().keys[7]
	if err := got.Insert(baseKey, 1); err == nil {
		t.Fatal("restored index accepted a duplicate base key")
	}
	bufKey := got.state.Load().bufKeys[0]
	if err := got.Insert(bufKey, 1); err == nil {
		t.Fatal("restored index accepted a duplicate buffered key")
	}
	if err := got.Insert(9.75e5, 3); err != nil {
		t.Fatalf("insert into restored index: %v", err)
	}
	if err := d.Insert(9.75e5, 3); err != nil {
		t.Fatal(err)
	}
	// Rebuild both: the merged arrays are identical, and greedy fitting is
	// deterministic, so the two re-fit indexes must agree bit-for-bit.
	if err := got.Rebuild(); err != nil {
		t.Fatalf("rebuild of restored index: %v", err)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got.BufferLen() != 0 {
		t.Fatalf("buffer not merged: %d", got.BufferLen())
	}
	queriesAgree(t, d, got, ranges)
}

// TestDynamicRoundTripSecondGeneration marshals a restored index again and
// checks the grand-child still agrees — the format must not decay.
func TestDynamicRoundTripSecondGeneration(t *testing.T) {
	d, ranges := buildDynFixture(t, Max, false)
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := RestoreDynamic(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := mid.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreDynamic(blob2)
	if err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, d, got, ranges)
}

// TestDynamicRoundTripNonDefaultOptions pins the full Options struct —
// solver backend and exp-search setting included — across the trip, so a
// restored index merge-rebuilds exactly like the original would have.
func TestDynamicRoundTripNonDefaultOptions(t *testing.T) {
	keys, vals := genDataset(400, 33)
	d, err := NewDynamic(Sum, keys, vals, Options{
		Delta: 40, Backend: segment.DualLP, NoExpSearch: true, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreDynamic(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.opt != d.opt {
		t.Fatalf("options %+v, want %+v", got.opt, d.opt)
	}
}

func TestRestoreDynamicRejectsCorruption(t *testing.T) {
	d, _ := buildDynFixture(t, Count, false)
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Every truncated prefix must be rejected, never panic. Step through
	// all short lengths near field boundaries and a sample elsewhere.
	for n := 0; n < len(blob); n++ {
		if n > 128 && n < len(blob)-128 && n%61 != 0 {
			continue
		}
		if _, err := RestoreDynamic(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	tamper := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), blob...)
		mutate(b)
		if _, err := RestoreDynamic(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	tamper("bad magic", func(b []byte) { b[0] ^= 0xFF })
	tamper("bad version", func(b []byte) { b[4] = 0x7F })
	tamper("bad aggregate", func(b []byte) { b[6] = 200 })
	tamper("inconsistent measures flag", func(b []byte) { b[7] ^= dynFlagHasMeasures })
	tamper("bad solver backend", func(b []byte) { b[8] = 17 })
	tamper("zero degree", func(b []byte) { b[9], b[10], b[11], b[12] = 0, 0, 0, 0 })
	tamper("absurd record count", func(b []byte) {
		for i := 33; i < 41; i++ {
			b[i] = 0xFF
		}
	})
	tamper("unsorted keys", func(b []byte) {
		// Swap the first two serialised keys (offset 41: header is 41 bytes).
		for i := 0; i < 8; i++ {
			b[41+i], b[49+i] = b[49+i], b[41+i]
		}
	})

	// A static blob is a different format, not a crash.
	static, err := d.state.Load().base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreDynamic(static); err == nil {
		t.Error("RestoreDynamic accepted a static blob")
	}
	loaded := &Index1D{}
	if err := loaded.UnmarshalBinary(blob); err == nil {
		t.Error("Index1D.UnmarshalBinary accepted a dynamic blob")
	}
}

func TestDynamicInsertRejectsNonFinite(t *testing.T) {
	keys, vals := genDataset(300, 5)
	d, err := NewDynamic(Sum, keys, vals, Options{Delta: 25})
	if err != nil {
		t.Fatal(err)
	}
	before, err := d.RangeSum(math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := d.Insert(k, 1); err == nil {
			t.Errorf("Insert accepted key %g", k)
		}
	}
	if err := d.Insert(1e9, math.NaN()); err == nil {
		t.Error("Insert accepted a NaN measure")
	}
	if d.BufferLen() != 0 {
		t.Fatalf("rejected inserts landed in the buffer: %d", d.BufferLen())
	}
	after, err := d.RangeSum(math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("rejected inserts changed the total: %g -> %g", before, after)
	}
}

func TestDetectBlob(t *testing.T) {
	d, _ := buildDynFixture(t, Count, true)
	dyn, _ := d.MarshalBinary()
	static, _ := d.state.Load().base.MarshalBinary()
	if k := DetectBlob(dyn); k != BlobDynamic {
		t.Errorf("dynamic blob detected as %v", k)
	}
	if k := DetectBlob(static); k != BlobStatic1D {
		t.Errorf("static blob detected as %v", k)
	}
	if k := DetectBlob([]byte{1, 2}); k != BlobUnknown {
		t.Errorf("short blob detected as %v", k)
	}
}
