package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func genWeighted2D(n int, seed int64) (xs, ys, ws []float64) {
	xs, ys = data.GenOSM(n, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	ws = make([]float64, n)
	for i := range ws {
		ws[i] = rng.Float64() * 5
	}
	return
}

func exactSum2DHalfOpen(xs, ys, ws []float64, xlo, xhi, ylo, yhi float64) float64 {
	s := 0.0
	for i := range xs {
		if xs[i] > xlo && xs[i] <= xhi && ys[i] > ylo && ys[i] <= yhi {
			s += ws[i]
		}
	}
	return s
}

func TestSum2DValidation(t *testing.T) {
	xs, ys, _ := genWeighted2D(50, 1)
	if _, err := BuildSum2D(xs, ys, []float64{1}, Options2D{Delta: 10}); err == nil {
		t.Error("mismatched weights should error")
	}
}

// TestSum2DAbsoluteGuarantee mirrors the Lemma 6 property for weighted sums.
func TestSum2DAbsoluteGuarantee(t *testing.T) {
	xs, ys, ws := genWeighted2D(5000, 2)
	const epsAbs = 600.0
	ix, err := BuildSum2D(xs, ys, ws, Options2D{Delta: Delta2DForAbs(epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 300, 3)
	within, worst := 0, 0.0
	for _, q := range qs {
		got := ix.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		want := exactSum2DHalfOpen(xs, ys, ws, q.XLo, q.XHi, q.YLo, q.YHi)
		e := math.Abs(got - want)
		if e <= epsAbs+1e-6 {
			within++
		}
		if e > worst {
			worst = e
		}
	}
	if within < len(qs)*95/100 {
		t.Errorf("only %d/%d weighted-sum queries within εabs (worst %g)", within, len(qs), worst)
	}
	if worst > 2*epsAbs {
		t.Errorf("worst error %g exceeds 2εabs", worst)
	}
}

// TestSum2DRelativeUsesWeightedFallback: the exact path must return the
// weighted sum, not the count.
func TestSum2DRelativeUsesWeightedFallback(t *testing.T) {
	xs, ys, ws := genWeighted2D(4000, 4)
	ix, err := BuildSum2D(xs, ys, ws, Options2D{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 200, 5)
	exactSeen, approxSeen := 0, 0
	for _, q := range qs {
		got, usedExact, err := ix.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		want := exactSum2DHalfOpen(xs, ys, ws, q.XLo, q.XHi, q.YLo, q.YHi)
		if usedExact {
			exactSeen++
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("exact weighted fallback returned %g, want %g", got, want)
			}
			continue
		}
		approxSeen++
		if want == 0 || math.Abs(got-want)/want > 0.05+0.03 {
			t.Fatalf("relative error violated: got %g want %g", got, want)
		}
	}
	if exactSeen == 0 || approxSeen == 0 {
		t.Fatalf("both paths should run (exact %d, approx %d)", exactSeen, approxSeen)
	}
}

func TestSum2DUnitWeightsMatchCount(t *testing.T) {
	xs, ys := data.GenOSM(2500, 6)
	ones := make([]float64, len(xs))
	for i := range ones {
		ones[i] = 1
	}
	cnt, err := BuildCount2D(xs, ys, Options2D{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := BuildSum2D(xs, ys, ones, Options2D{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 150, 7)
	for _, q := range qs {
		a := cnt.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		b := sum.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		if a != b {
			t.Fatalf("unit-weight SUM %g != COUNT %g", b, a)
		}
	}
}

func TestSum2DSerializeRoundTrip(t *testing.T) {
	xs, ys, ws := genWeighted2D(2000, 8)
	orig, err := BuildSum2D(xs, ys, ws, Options2D{Delta: 80})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Index2D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 100, 9)
	for _, q := range qs {
		a := orig.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		b := loaded.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		if a != b {
			t.Fatalf("round-trip divergence %g vs %g (total clamp lost?)", a, b)
		}
	}
}
