// Package core implements the PolyFit index — the paper's primary
// contribution. A PolyFit index replaces the n keys of a traditional index
// with h ≪ n fitted polynomial segments (Section IV, Figure 6), each
// satisfying the bounded δ-error constraint (Definition 3), and answers
// approximate range aggregate queries with the absolute/relative guarantees
// of Section V:
//
//   - COUNT/SUM: A = P_Iu(uq) − P_Il(lq); δ = εabs/2 gives |A − R| ≤ εabs
//     (Lemma 2), and Lemma 3 gates the relative guarantee with an exact
//     fallback.
//   - MIN/MAX: exact per-segment extrema cover fully-included segments
//     (the internal nodes of Figure 4 — realised here as an O(1) sparse-table
//     RMQ over segment extrema) while the two boundary segments are resolved
//     by maximising the fitted polynomial over the clipped interval
//     (Eq. 17); δ = εabs gives Lemma 4, Lemma 5 gates the relative case.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/artree"
	"repro/internal/kca"
	"repro/internal/segment"
)

// Agg identifies the aggregate function of a range aggregate query.
type Agg int

// Supported aggregates (Definition 1).
const (
	Count Agg = iota
	Sum
	Min
	Max
)

func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Options configures an index build.
type Options struct {
	// Degree of the fitted polynomials; the paper's default is 2 (§VII-B).
	Degree int
	// Delta is the bounded fitting error δ of Definition 3. For an absolute
	// guarantee εabs use δ = εabs/2 for COUNT/SUM (Lemma 2) and δ = εabs for
	// MIN/MAX (Lemma 4) — DeltaForAbs does this.
	Delta float64
	// Backend selects the minimax solver (exchange by default).
	Backend segment.Backend
	// NoExpSearch grows segments one key at a time (ablation only).
	NoExpSearch bool
	// NoFallback skips building the exact structures used by relative-error
	// queries (Problem 2). Absolute-error queries never need them.
	NoFallback bool
	// Parallelism is the number of goroutines used by greedy segmentation
	// during construction; values ≤ 1 build serially. The produced index is
	// identical for every worker count (see segment.Config.Parallelism).
	Parallelism int
	// Encoding selects the coefficient-store encoding. The default EncAuto
	// picks the smallest encoding that re-certifies the build δ through the
	// encoded query pipeline (packed, then float32, then raw); EncRaw pins
	// the lossless layout; a forced compressed encoding falls back to the
	// next heavier one when it cannot certify.
	Encoding Encoding
}

func (o Options) withDefaults() Options {
	if o.Degree == 0 {
		o.Degree = 2
	}
	return o
}

// DeltaForAbs returns the build δ that guarantees the absolute error εabs
// for the given aggregate (Lemmas 2 and 4).
func DeltaForAbs(agg Agg, epsAbs float64) float64 {
	switch agg {
	case Count, Sum:
		return epsAbs / 2
	default:
		return epsAbs
	}
}

// Index1D is a PolyFit index over a single key (Sections IV–V).
type Index1D struct {
	agg    Agg
	degree int
	delta  float64
	neg    bool // MIN is implemented as MAX over negated measures

	// Fitted segments, struct-of-arrays: boundary lanes plus one contiguous
	// coefficient lane per polynomial degree (see encoding.go). enc selects
	// which lane family is populated.
	enc   Encoding
	segLo []float64 // raw/float32: exact start boundaries
	segHi []float64 // raw/float32: exact end boundaries
	frCtr []float64 // raw only: explicit frame centers (POL1 v1 fidelity)
	frHW  []float64 // raw only: explicit frame half-widths

	// Packed boundaries: starts quantized onto a uint32 grid over
	// [keyLo, keyHi]; key = keyLo + keyStep·q. Ends are the next start.
	loQ     []uint32
	keyStep float64

	// Coefficient lanes: lane j holds every segment's t^j coefficient.
	laneW     int         // lanes = max coefficient count (≤ degree+1)
	laneF64   [][]float64 // EncRaw
	laneF32   [][]float32 // EncF32
	laneU16   [][]uint16  // EncPacked: per lane, one of u16/u32 is set
	laneU32   [][]uint32  // EncPacked
	laneOff   []float64   // EncPacked: per-lane affine grid offset
	laneScale []float64   // EncPacked: per-lane affine grid scale

	// Learned root over the segment starts (an RMI-style flat interpolation
	// table): for key k the answer to locate lies in
	// [rootTable[b]−1, rootTable[b+1]−1] where b is k's bucket, so a point
	// lookup costs O(1) expected instead of a binary search. Nil when the
	// index has a single segment or a degenerate key span. Packed indexes
	// bucket in integer grid space (bucket = q >> rootShift) so build and
	// lookup can never disagree through float rounding.
	rootTable []int32 // rootTable[b] = #segments whose Lo falls in a bucket < b
	rootLo    float64 // loAt(0)
	rootScale float64 // buckets per key unit: (len(rootTable)−1) / span
	rootShift uint32  // packed: grid cells per bucket = 1 << rootShift

	// Second root level (the recursive-PGM idea): buckets whose windows
	// outgrow the linear scan get their own small interpolation table, so
	// clustered key distributions keep O(1)-expected locate instead of
	// degrading to a windowed binary search.
	rootSubs     []rootSub
	rootSubTable []int32

	// MAX/MIN only: exact extremum of each segment + sparse-table RMQ over
	// them (plays the role of the aggregate tree's internal nodes).
	segExt []float64
	rmq    [][]float64

	// Exact fallbacks for Problem 2 (nil when Options.NoFallback).
	exactCF  *kca.Array
	exactExt *artree.MaxTree

	n          int
	keyLo      float64
	keyHi      float64
	total      float64 // CF(+∞) for SUM/COUNT
	buildsFits int     // total solver iterations spent during construction
}

// BuildCount constructs a PolyFit index for range COUNT queries: the fitted
// function is the key-cumulative function with unit measures.
func BuildCount(keys []float64, opt Options) (*Index1D, error) {
	ones := make([]float64, len(keys))
	for i := range ones {
		ones[i] = 1
	}
	ix, err := buildCumulative(keys, ones, opt)
	if err != nil {
		return nil, err
	}
	ix.agg = Count
	return ix, nil
}

// BuildSum constructs a PolyFit index for range SUM queries over CFsum
// (Equation 4). Measures must be non-negative for the relative-error
// guarantee (the absolute guarantee holds regardless).
func BuildSum(keys, measures []float64, opt Options) (*Index1D, error) {
	ix, err := buildCumulative(keys, measures, opt)
	if err != nil {
		return nil, err
	}
	ix.agg = Sum
	return ix, nil
}

// BuildMax constructs a PolyFit index for range MAX queries over the
// key-measure function DFmax (Equation 6).
func BuildMax(keys, measures []float64, opt Options) (*Index1D, error) {
	return buildExtremum(keys, measures, opt, false)
}

// BuildMin constructs a PolyFit index for range MIN queries. Internally it
// is BuildMax over negated measures — the "simple extension" the paper
// refers to.
func BuildMin(keys, measures []float64, opt Options) (*Index1D, error) {
	negated := make([]float64, len(measures))
	for i, m := range measures {
		negated[i] = -m
	}
	ix, err := buildExtremum(keys, negated, opt, true)
	if err != nil {
		return nil, err
	}
	return ix, nil
}

func validateKeys(keys, measures []float64) error {
	if len(keys) == 0 {
		return ErrEmptyDataset
	}
	if len(keys) != len(measures) {
		return fmt.Errorf("%w: %d keys, %d measures", ErrLengthMismatch, len(keys), len(measures))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("%w (violated at %d)", ErrUnsortedKeys, i)
		}
	}
	return nil
}

func buildCumulative(keys, measures []float64, opt Options) (*Index1D, error) {
	opt = opt.withDefaults()
	if err := validateKeys(keys, measures); err != nil {
		return nil, err
	}
	cf := make([]float64, len(keys))
	run := 0.0
	for i, m := range measures {
		run += m
		cf[i] = run
	}
	segs, err := segment.Greedy(keys, cf, segment.Config{
		Degree: opt.Degree, Delta: opt.Delta,
		Backend: opt.Backend, NoExpSearch: opt.NoExpSearch,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	ix := &Index1D{
		degree: opt.Degree,
		delta:  opt.Delta,
		n:      len(keys),
		keyLo:  keys[0],
		keyHi:  keys[len(keys)-1],
		total:  run,
	}
	ix.adoptRawSegments(segs)
	ix.selectEncoding(keys, cf, segs, opt, true)
	if !opt.NoFallback {
		arr, err := kca.New(keys, measures)
		if err != nil {
			return nil, err
		}
		ix.exactCF = arr
	}
	return ix, nil
}

func buildExtremum(keys, measures []float64, opt Options, negated bool) (*Index1D, error) {
	opt = opt.withDefaults()
	if err := validateKeys(keys, measures); err != nil {
		return nil, err
	}
	segs, err := segment.Greedy(keys, measures, segment.Config{
		Degree: opt.Degree, Delta: opt.Delta,
		Backend: opt.Backend, NoExpSearch: opt.NoExpSearch,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	ix := &Index1D{
		agg:    Max,
		degree: opt.Degree,
		delta:  opt.Delta,
		neg:    negated,
		n:      len(keys),
		keyLo:  keys[0],
		keyHi:  keys[len(keys)-1],
	}
	if negated {
		ix.agg = Min
	}
	ix.adoptRawSegments(segs)
	ix.selectEncoding(keys, measures, segs, opt, false)
	// Exact per-segment maxima (over the internally stored, possibly
	// negated, measures).
	ix.segExt = make([]float64, len(segs))
	for i, s := range segs {
		best := math.Inf(-1)
		for j := s.First; j <= s.Last; j++ {
			if measures[j] > best {
				best = measures[j]
			}
		}
		ix.segExt[i] = best
	}
	ix.rmq = buildSparseTable(ix.segExt)
	if !opt.NoFallback {
		tree, err := artree.NewMaxTree(keys, measures, artree.Max)
		if err != nil {
			return nil, err
		}
		ix.exactExt = tree
	}
	return ix, nil
}

// rootMaxLinear bounds the in-bucket linear scan of the learned root before
// handing the window to the second root level (and, past that, to a
// windowed binary search — the terminal escape for boundaries closer than
// float resolution).
const rootMaxLinear = 16

// rootMaxBuckets caps the root table so its footprint stays a small multiple
// of the segment array even for huge indexes (int32 buckets: 64 MiB here).
const rootMaxBuckets = 1 << 24

// rootSub is one second-level root: a private interpolation table over the
// segment starts of a single over-full level-1 bucket. Raw/float32 indexes
// interpolate in key space (lo, scale — same formula as level 1); packed
// indexes shift in grid space (subShift).
type rootSub struct {
	bucket   int32 // level-1 bucket this table serves
	off      int32 // start of the nb+1 entries in rootSubTable
	nb       int32 // sub-bucket count (power of two)
	lo       float64
	scale    float64
	subShift uint32
}

// buildRoot precomputes the learned root over the segment starts: a flat
// interpolation table with ~2 buckets per segment (raw/float32; the packed
// encoding halves bucket density to stay inside its byte budget, leaning on
// the second level instead), plus second-level tables for buckets that
// clustered distributions overfill.
func (ix *Index1D) buildRoot() {
	h := ix.NumSegments()
	ix.rootTable = nil
	ix.rootSubs, ix.rootSubTable = nil, nil
	ix.rootShift = 0
	if h < 2 {
		return
	}
	if ix.enc == EncPacked {
		ix.buildRootPacked()
		return
	}
	span := ix.segLo[h-1] - ix.segLo[0]
	if !(span > 0) || math.IsInf(span, 0) {
		return // degenerate or overflowing key span: binary search handles it
	}
	b := 1
	for b < 2*h && b < rootMaxBuckets {
		b <<= 1
	}
	ix.rootLo = ix.segLo[0]
	ix.rootScale = float64(b) / span
	table := make([]int32, b+1)
	seg := 0
	for t := 1; t <= b; t++ {
		// Advance over segments whose Lo buckets below t. The bucket of a
		// key is computed with exactly the query-time formula so float
		// rounding can never disagree between build and lookup.
		for seg < h && ix.rootBucketAt(ix.segLo[seg], b) < t {
			seg++
		}
		table[t] = int32(seg)
	}
	ix.rootTable = table
	ix.buildRootSubs()
}

// buildRootSubs adds the second root level: every level-1 bucket whose
// locate window exceeds the linear-scan budget gets its own interpolation
// table over just its segments. One indirection replaces the former
// windowed binary search, so a pathological distribution (all boundaries
// piled into a sliver of the key span) locates in O(1) expected again.
func (ix *Index1D) buildRootSubs() {
	table := ix.rootTable
	b := len(table) - 1
	for bb := 0; bb < b; bb++ {
		first, next := int(table[bb]), int(table[bb+1])
		if next-first <= rootMaxLinear {
			continue
		}
		lo := ix.segLo[first]
		span := ix.segLo[next-1] - lo
		if !(span > 0) || math.IsInf(span, 0) {
			continue // boundaries below float resolution: binary search
		}
		cnt := next - first
		nb := 1
		for nb < 2*cnt && nb < rootMaxBuckets {
			nb <<= 1
		}
		scale := float64(nb) / span
		sub := make([]int32, nb+1)
		seg := first
		for t := 1; t <= nb; t++ {
			for seg < next && subBucketAt(ix.segLo[seg], lo, scale, nb) < t {
				seg++
			}
			sub[t] = int32(seg)
		}
		sub[0] = int32(first)
		ix.rootSubs = append(ix.rootSubs, rootSub{
			bucket: int32(bb), off: int32(len(ix.rootSubTable)), nb: int32(nb),
			lo: lo, scale: scale,
		})
		ix.rootSubTable = append(ix.rootSubTable, sub...)
	}
}

// buildRootPacked is the packed-encoding root: buckets are grid cells
// shifted down (bucket = q >> rootShift), so bucketing is exact integer
// arithmetic shared verbatim between build and lookup. Bucket density is
// ~1 per 4 segments (vs 2–4 per segment for raw) to hold the root at about
// a byte per segment; the second level catches locally dense patches.
func (ix *Index1D) buildRootPacked() {
	h := len(ix.loQ)
	target := h / 4
	if target < 1 {
		target = 1
	}
	b := 1
	shift := uint32(32)
	for b < target && b < rootMaxBuckets {
		b <<= 1
		shift--
	}
	ix.rootShift = shift
	table := make([]int32, b+1)
	seg := 0
	for t := 1; t <= b; t++ {
		for seg < h && int(ix.loQ[seg]>>shift) < t {
			seg++
		}
		table[t] = int32(seg)
	}
	ix.rootTable = table
	for bb := 0; bb < b; bb++ {
		first, next := int(table[bb]), int(table[bb+1])
		if next-first <= rootMaxLinear {
			continue
		}
		// Split the bucket's cells finer: aim for ~2 sub-buckets per segment,
		// bounded by the cell count (starts are distinct grid cells, so
		// subShift = 0 always separates them).
		cnt := next - first
		subShift := shift
		for subShift > 0 && 1<<(shift-subShift) < 2*cnt {
			subShift--
		}
		nb := 1 << (shift - subShift)
		base := uint32(bb) << shift
		sub := make([]int32, nb+1)
		seg := first
		for t := 1; t <= nb; t++ {
			for seg < next && int((ix.loQ[seg]-base)>>subShift) < t {
				seg++
			}
			sub[t] = int32(seg)
		}
		sub[0] = int32(first)
		ix.rootSubs = append(ix.rootSubs, rootSub{
			bucket: int32(bb), off: int32(len(ix.rootSubTable)), nb: int32(nb),
			subShift: subShift,
		})
		ix.rootSubTable = append(ix.rootSubTable, sub...)
	}
}

// rootBucketAt maps a key (≥ rootLo) onto one of b buckets. Monotone
// non-decreasing in k, which is all the correctness argument needs.
func (ix *Index1D) rootBucketAt(k float64, b int) int {
	// Clamp in the float domain: converting a product beyond int64 range
	// (possible when the bucket scale is huge — clustered key spans) is
	// undefined and lands at MinInt64 on amd64, which would alias to
	// bucket 0 instead of the top bucket.
	f := (k - ix.rootLo) * ix.rootScale
	if !(f >= 0) { // negative or NaN
		return 0
	}
	if f >= float64(b) {
		return b - 1
	}
	return int(f)
}

// subBucketAt is rootBucketAt for a second-level table, with the same
// float-domain clamping (the sub scales are the extreme ones: a sub table
// exists precisely because its bucket's key span is tiny).
func subBucketAt(k, lo, scale float64, nb int) int {
	f := (k - lo) * scale
	if !(f >= 0) { // negative or NaN
		return 0
	}
	if f >= float64(nb) {
		return nb - 1
	}
	return int(f)
}

// findRootSub returns the second-level table of bucket bb, if one exists
// (binary search; the sub list is tiny — only over-full buckets carry one).
func (ix *Index1D) findRootSub(bb int) *rootSub {
	subs := ix.rootSubs
	lo, hi := 0, len(subs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(subs[mid].bucket) < bb {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(subs) && int(subs[lo].bucket) == bb {
		return &subs[lo]
	}
	return nil
}

// locateLE returns the last segment index whose Lo ≤ k, or −1 when k
// precedes every segment. This is the primitive behind locate, maxInternal
// and the batch sweeps; with the learned root it costs O(1) expected —
// over-full buckets recurse into the second root level, and only windows
// still too dense for it (boundaries below float resolution) fall back to a
// windowed binary search.
func (ix *Index1D) locateLE(k float64) int {
	if ix.enc == EncPacked {
		return ix.locateLEPacked(k)
	}
	h := len(ix.segLo)
	if k < ix.segLo[0] {
		return -1
	}
	if k >= ix.segLo[h-1] {
		return h - 1
	}
	table := ix.rootTable
	if table == nil {
		// Degenerate key span (no root built): plain binary search.
		i := sort.SearchFloat64s(ix.segLo, k)
		if i < h && ix.segLo[i] == k {
			return i
		}
		return i - 1
	}
	bb := ix.rootBucketAt(k, len(table)-1)
	lo := int(table[bb]) - 1
	hi := int(table[bb+1]) - 1
	if lo < 0 {
		lo = 0
	}
	if hi-lo > rootMaxLinear {
		if sub := ix.findRootSub(bb); sub != nil {
			sb := subBucketAt(k, sub.lo, sub.scale, int(sub.nb))
			lo2 := int(ix.rootSubTable[int(sub.off)+sb]) - 1
			hi2 := int(ix.rootSubTable[int(sub.off)+sb+1]) - 1
			if lo2 > lo {
				lo = lo2
			}
			if hi2 < hi {
				hi = hi2
			}
		}
		if hi-lo > rootMaxLinear {
			// Terminal escape: binary search the window (invariant:
			// segLo[lo] ≤ k, and the answer is ≤ hi).
			return lo + sort.Search(hi-lo, func(j int) bool { return ix.segLo[lo+1+j] > k })
		}
	}
	for lo < hi && ix.segLo[lo+1] <= k {
		lo++
	}
	return lo
}

// quantizeKey maps a raw key onto the packed key grid with the same floor
// the boundary quantization used; out-of-range and NaN clamp into the grid.
func (ix *Index1D) quantizeKey(k float64) uint32 {
	q := math.Floor((k - ix.keyLo) / ix.keyStep)
	if !(q > 0) {
		return 0
	}
	if q > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(q)
}

// locateLEPacked is locateLE for the packed encoding: the query key is
// quantized once, then every comparison — root bucketing included — happens
// in exact integer grid space, so certification at build time and the
// query path can never diverge through float rounding.
func (ix *Index1D) locateLEPacked(k float64) int {
	if !(k >= ix.keyLo) {
		// Below the key domain (or NaN): precedes every segment unless the
		// first segment starts at the grid origin and k is inside the domain,
		// which the check above already excluded.
		return -1
	}
	return ix.locatePackedQ(ix.quantizeKey(k))
}

// locatePackedQ resolves a quantized key against the grid starts. The
// entire walk — root bucket, grid-shift sub-bucket, gallop, binary search —
// stays in integer grid space so the segment a key buckets into at query
// time is bit-for-bit the one build-time certification assigned it.
//
//polyfit:nofloat
func (ix *Index1D) locatePackedQ(kq uint32) int {
	h := len(ix.loQ)
	if kq < ix.loQ[0] {
		return -1
	}
	if kq >= ix.loQ[h-1] {
		return h - 1
	}
	table := ix.rootTable
	if table == nil {
		return searchLoQ(ix.loQ, 0, h, kq) - 1
	}
	bb := int(kq >> ix.rootShift)
	lo := int(table[bb]) - 1
	hi := int(table[bb+1]) - 1
	if lo < 0 {
		lo = 0
	}
	if hi-lo > rootMaxLinear {
		if sub := ix.findRootSub(bb); sub != nil {
			sb := int((kq - uint32(bb)<<ix.rootShift) >> sub.subShift)
			lo2 := int(ix.rootSubTable[int(sub.off)+sb]) - 1
			hi2 := int(ix.rootSubTable[int(sub.off)+sb+1]) - 1
			if lo2 > lo {
				lo = lo2
			}
			if hi2 < hi {
				hi = hi2
			}
		}
		if hi-lo > rootMaxLinear {
			return searchLoQ(ix.loQ, lo+1, hi+1, kq) - 1
		}
	}
	loQ := ix.loQ
	for lo < hi && loQ[lo+1] <= kq {
		lo++
	}
	return lo
}

// searchLoQ returns the first index in [lo, hi) whose grid start exceeds kq
// (hi if none) — sort.Search specialised to the uint32 lane.
//
//polyfit:nofloat
func searchLoQ(loQ []uint32, lo, hi int, kq uint32) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if loQ[mid] <= kq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstHiGE returns the first segment index whose Hi ≥ k (h when none).
// Derived from locateLE: segments are disjoint and ordered, so the candidate
// is the segment owning k or its right neighbour.
func (ix *Index1D) firstHiGE(k float64) int {
	j := ix.locateLE(k)
	if j < 0 {
		return 0
	}
	if ix.segHi[j] >= k {
		return j
	}
	return j + 1
}

// buildSparseTable precomputes an O(1) range-max structure over vals.
func buildSparseTable(vals []float64) [][]float64 {
	n := len(vals)
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // log2(n)+1
	}
	table := make([][]float64, levels)
	table[0] = vals
	for k := 1; k < levels; k++ {
		span := 1 << k
		row := make([]float64, n-span+1)
		prev := table[k-1]
		half := span >> 1
		for i := range row {
			row[i] = math.Max(prev[i], prev[i+half])
		}
		table[k] = row
	}
	return table
}

// rangeMaxIdx returns max(vals[a..b]) via the sparse table; a ≤ b required.
func (ix *Index1D) rangeMaxIdx(a, b int) float64 {
	k := bits.Len(uint(b-a+1)) - 1
	row := ix.rmq[k]
	return math.Max(row[a], row[b-(1<<k)+1])
}

// locate returns the index of the segment responsible for key k: the last
// segment whose Lo ≤ k, clamped to [0, h−1]. Keys in inter-segment gaps
// resolve to the segment on their left (the cumulative function is constant
// across gaps). Resolution goes through the learned root — O(1) expected —
// instead of a binary search.
func (ix *Index1D) locate(k float64) int {
	if i := ix.locateLE(k); i >= 0 {
		return i
	}
	return 0
}

// Locate exposes the segment-location primitive for benchmarks and
// diagnostics: the index of the segment responsible for key k (see locate).
func (ix *Index1D) Locate(k float64) int { return ix.locate(k) }

// LocateBinary is the pre-learned-root reference implementation of Locate
// (a binary search over the segment boundaries). Kept exported so
// equivalence tests and the benchmark harness can compare the two paths.
func (ix *Index1D) LocateBinary(k float64) int {
	if ix.enc == EncPacked {
		if !(k >= ix.keyLo) {
			return 0
		}
		if i := searchLoQ(ix.loQ, 0, len(ix.loQ), ix.quantizeKey(k)) - 1; i > 0 {
			return i
		}
		return 0
	}
	i := sort.SearchFloat64s(ix.segLo, k)
	// SearchFloat64s finds the first Lo ≥ k.
	if i < len(ix.segLo) && ix.segLo[i] == k {
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// CF evaluates the approximate key-cumulative function at k. Evaluation is
// clamped into the located segment's key range: CF is constant across
// inter-segment gaps and beyond the domain, so clamping preserves the
// δ-error bound there instead of extrapolating the polynomial.
func (ix *Index1D) CF(k float64) float64 {
	if k < ix.keyLo {
		return 0
	}
	i := ix.locate(k)
	if hi := ix.hiAt(i); k > hi {
		k = hi
	}
	return ix.evalSeg(i, k)
}

// RangeSum answers an approximate range SUM/COUNT query over (lq, uq]
// (Equation 5 semantics). Built with δ = εabs/2, the result satisfies
// |A − R| ≤ εabs at workload endpoints (Lemma 2).
func (ix *Index1D) RangeSum(lq, uq float64) (float64, error) {
	if ix.agg != Sum && ix.agg != Count {
		return 0, ErrWrongAgg
	}
	if uq < lq {
		return 0, nil
	}
	return ix.CF(uq) - ix.CF(lq), nil
}

// RangeSumRel answers a range SUM/COUNT query with the relative guarantee
// εrel (Problem 2). When the Lemma 3 test A ≥ 2δ(1 + 1/εrel) fails the
// exact method answers instead (usedExact reports which path ran).
func (ix *Index1D) RangeSumRel(lq, uq, epsRel float64) (val float64, usedExact bool, err error) {
	if ix.agg != Sum && ix.agg != Count {
		return 0, false, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, false, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	if uq < lq {
		return 0, false, nil
	}
	a := ix.CF(uq) - ix.CF(lq)
	if a >= 2*ix.delta*(1+1/epsRel) {
		return a, false, nil
	}
	if ix.exactCF == nil {
		return 0, false, ErrNoFallback
	}
	return ix.exactCF.RangeSum(lq, uq), true, nil
}

// RangeExtremum answers an approximate range MAX (or MIN) query over the
// closed interval [lq, uq]. ok is false when no segment overlaps the range.
// Built with δ = εabs, the result satisfies |A − R| ≤ εabs (Lemma 4).
func (ix *Index1D) RangeExtremum(lq, uq float64) (val float64, ok bool, err error) {
	if ix.agg != Max && ix.agg != Min {
		return 0, false, ErrWrongAgg
	}
	v, ok := ix.maxInternal(lq, uq)
	if !ok {
		return 0, false, nil
	}
	if ix.neg {
		v = -v
	}
	return v, true, nil
}

// maxInternal runs the Figure 10/11 traversal in the internal (possibly
// negated) measure space.
func (ix *Index1D) maxInternal(lq, uq float64) (float64, bool) {
	if uq < lq || uq < ix.keyLo || lq > ix.keyHi {
		return 0, false
	}
	h := len(ix.segLo)
	// First segment with Hi ≥ lq and last segment with Lo ≤ uq, both via the
	// learned root (one O(1) expected lookup each).
	a := ix.firstHiGE(lq)
	b := ix.locateLE(uq)
	if a > b || a >= h || b < 0 {
		return 0, false
	}
	return ix.maxOverSegs(a, b, lq, uq), true
}

// maxOverSegs maximises over the overlapping segment window [a, b]: exact
// RMQ on the fully covered middle, polynomial maximisation on the (at most
// two) boundary segments.
func (ix *Index1D) maxOverSegs(a, b int, lq, uq float64) float64 {
	best := math.Inf(-1)
	fullLo, fullHi := a, b // range of fully covered segments
	if lq > ix.segLo[a] || uq < ix.segHi[a] {
		best = math.Max(best, ix.segPolyMax(a, lq, uq))
		fullLo = a + 1
	}
	if b != a && (lq > ix.segLo[b] || uq < ix.segHi[b]) {
		best = math.Max(best, ix.segPolyMax(b, lq, uq))
		fullHi = b - 1
	}
	if fullLo <= fullHi {
		best = math.Max(best, ix.rangeMaxIdx(fullLo, fullHi))
	}
	return best
}

// segPolyMax maximises segment i's polynomial over the clipped interval
// (Eq. 17), bounding the result by the segment's exact maximum + δ so a
// between-sample bulge of the fit cannot push the answer above the
// guarantee envelope.
func (ix *Index1D) segPolyMax(i int, lq, uq float64) float64 {
	lo := math.Max(lq, ix.segLo[i])
	hi := math.Min(uq, ix.segHi[i])
	if hi < lo {
		return math.Inf(-1)
	}
	fp := ix.framedPolyAt(i)
	v, _ := fp.MaxOnInterval(lo, hi)
	if bound := ix.segExt[i] + ix.delta; v > bound {
		v = bound
	}
	return v
}

// RangeExtremumRel answers a range MAX/MIN query with the relative
// guarantee εrel (Lemma 5: pass requires A ≥ δ(1 + 1/εrel), applied to the
// un-negated estimate so MIN over non-negative measures is gated correctly);
// on failure the exact aggregate tree answers.
func (ix *Index1D) RangeExtremumRel(lq, uq, epsRel float64) (val float64, usedExact, ok bool, err error) {
	if ix.agg != Max && ix.agg != Min {
		return 0, false, false, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, false, false, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	v, got := ix.maxInternal(lq, uq)
	if ix.neg {
		v = -v
	}
	// |A − R| ≤ δ gives R ≥ A − δ for both MAX and MIN, so the same
	// Lemma 5 condition applies to the final estimate.
	if got && v >= ix.delta*(1+1/epsRel) {
		return v, false, true, nil
	}
	if ix.exactExt == nil {
		return 0, false, false, ErrNoFallback
	}
	ev, eok := ix.exactExt.Query(lq, uq)
	if !eok {
		return 0, true, false, nil
	}
	if ix.neg {
		ev = -ev
	}
	return ev, true, true, nil
}

// --- introspection ---------------------------------------------------------

// Aggregate returns the aggregate the index was built for.
func (ix *Index1D) Aggregate() Agg { return ix.agg }

// Degree returns the polynomial degree.
func (ix *Index1D) Degree() int { return ix.degree }

// Delta returns the build δ.
func (ix *Index1D) Delta() float64 { return ix.delta }

// NumSegments returns h, the number of fitted polynomials.
func (ix *Index1D) NumSegments() int {
	if ix.enc == EncPacked {
		return len(ix.loQ)
	}
	return len(ix.segLo)
}

// Len returns the number of indexed records.
func (ix *Index1D) Len() int { return ix.n }

// KeyRange returns the smallest and largest indexed key.
func (ix *Index1D) KeyRange() (lo, hi float64) { return ix.keyLo, ix.keyHi }

// Total returns CF(+∞) for SUM/COUNT indexes.
func (ix *Index1D) Total() float64 { return ix.total }

// SizeBytes reports the memory footprint of the PolyFit structure itself:
// segment boundaries (or their quantized grid starts), coefficient lanes in
// whatever encoding the build certified, the learned-root tables, and (for
// MIN/MAX) the segment extrema and RMQ table. Exact-fallback structures are
// reported separately by FallbackSizeBytes since Problem-1 configurations
// do not carry them.
func (ix *Index1D) SizeBytes() int {
	sz := ix.BoundSizeBytes() + ix.CoeffSizeBytes()
	sz += 8 * len(ix.segExt)
	for _, row := range ix.rmq {
		sz += 8 * len(row)
	}
	return sz + ix.RootSizeBytes()
}

// RootSizeBytes reports the footprint of the two-level learned root that
// accelerates segment location: the level-1 int32 bucket table, its
// parameters, and any second-level tables built for over-full buckets.
// Included in SizeBytes; broken out so size/accuracy trade-off reports stay
// honest about where the bytes go.
func (ix *Index1D) RootSizeBytes() int {
	if ix.rootTable == nil {
		return 0
	}
	sz := 4*len(ix.rootTable) + 16
	sz += 4 * len(ix.rootSubTable)
	sz += 32 * len(ix.rootSubs) // bucket/off/nb + interpolation params
	return sz
}

// FallbackSizeBytes reports the memory of the exact structures used for
// Problem-2 fallbacks, if built.
func (ix *Index1D) FallbackSizeBytes() int {
	sz := 0
	if ix.exactCF != nil {
		sz += ix.exactCF.SizeBytes()
	}
	if ix.exactExt != nil {
		sz += ix.exactExt.SizeBytes()
	}
	return sz
}
