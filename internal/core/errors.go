package core

import "errors"

// Errors returned by build, query, mutation, and serialization entry
// points. Every failure path wraps one of these with %w, so callers (and
// the public polyfit package, which re-exports them as its sentinel set)
// can classify errors with errors.Is without matching message text. The
// errwrap analyzer (internal/lint) enforces this file as the package's
// complete sentinel vocabulary: exported functions may not construct
// errors that match none of them.
var (
	ErrEmptyDataset = errors.New("core: empty dataset")
	ErrUnsortedKeys = errors.New("core: keys must be strictly increasing")
	ErrWrongAgg     = errors.New("core: query does not match index aggregate")
	// ErrInvalidRange reports a query argument the index cannot interpret:
	// NaN range endpoints, NaN rectangle coordinates, or a non-positive
	// relative error.
	ErrInvalidRange = errors.New("core: invalid query range")
	ErrNoFallback   = errors.New("core: relative query needs exact fallback (built with NoFallback)")
	// ErrDuplicateKey reports an Insert whose key is already present. WAL
	// replay matches it to tell "already applied" (skip, idempotent) from a
	// genuine replay failure (which must fail recovery, not lose data).
	ErrDuplicateKey = errors.New("core: duplicate key")
	// ErrInvalidRecord reports an Insert argument the index cannot store:
	// a non-finite key or a NaN measure.
	ErrInvalidRecord = errors.New("core: invalid insert record")
	// ErrLengthMismatch reports parallel dataset slices (keys/measures,
	// xs/ys/weights) of different lengths.
	ErrLengthMismatch = errors.New("core: mismatched dataset lengths")
	// ErrShardOutOfRange reports a shard index outside [0, NumShards).
	ErrShardOutOfRange = errors.New("core: shard index out of range")
)

// ErrBadFormat reports a corrupted or incompatible serialised index.
var ErrBadFormat = errors.New("core: bad serialized index format")
