package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// marshalV1 writes an EncRaw index in the historical POL1 v1 array-of-structs
// layout (per-segment lo, hi, frame, trimmed coefficients). Kept in the tests
// as the reference writer for backward-compatibility coverage: the shipping
// Marshal now writes v2, but v1 blobs in the wild must keep loading.
func marshalV1(t *testing.T, ix *Index1D) []byte {
	t.Helper()
	if ix.enc != EncRaw {
		t.Fatalf("marshalV1 needs a raw-encoded index, got %v", ix.enc)
	}
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magic1D)
	w(uint16(1))
	w(uint8(ix.agg))
	w(uint8(btoi(ix.neg)))
	w(uint32(ix.degree))
	w(ix.delta)
	w(uint64(ix.n))
	w(ix.keyLo)
	w(ix.keyHi)
	w(ix.total)
	h := ix.NumSegments()
	w(uint32(h))
	for i := 0; i < h; i++ {
		w(ix.segLo[i])
		w(ix.segHi[i])
		w(ix.frCtr[i])
		w(ix.frHW[i])
		fp := ix.framedPolyAt(i)
		w(uint16(len(fp.P)))
		for _, c := range fp.P {
			w(c)
		}
	}
	w(uint8(btoi(ix.segExt != nil)))
	for _, v := range ix.segExt {
		w(v)
	}
	return buf.Bytes()
}

// TestV1BlobLoadsBitIdentical: a POL1 v1 blob (pre-SoA layout) must load and
// answer exactly like the index that would have written it.
func TestV1BlobLoadsBitIdentical(t *testing.T) {
	keys, vals := genDataset(3000, 101)
	for name, build := range map[string]func() (*Index1D, error){
		"count": func() (*Index1D, error) {
			return BuildCount(keys, Options{Degree: 2, Delta: 4, NoFallback: true, Encoding: EncRaw})
		},
		"max": func() (*Index1D, error) {
			return BuildMax(keys, vals, Options{Degree: 2, Delta: 40, NoFallback: true, Encoding: EncRaw})
		},
	} {
		orig, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var loaded Index1D
		if err := loaded.UnmarshalBinary(marshalV1(t, orig)); err != nil {
			t.Fatalf("%s: v1 blob rejected: %v", name, err)
		}
		if loaded.Encoding() != EncRaw {
			t.Fatalf("%s: v1 blob must land on the raw encoding, got %v", name, loaded.Encoding())
		}
		if loaded.NumSegments() != orig.NumSegments() || loaded.Len() != orig.Len() {
			t.Fatalf("%s: metadata mismatch after v1 load", name)
		}
		rng := rand.New(rand.NewSource(102))
		lo, hi := keys[0], keys[len(keys)-1]
		for q := 0; q < 500; q++ {
			l := lo - 5 + rng.Float64()*(hi-lo+10)
			u := l + rng.Float64()*(hi-lo)/4
			if orig.agg == Count {
				a, _ := orig.RangeSum(l, u)
				b, _ := loaded.RangeSum(l, u)
				if a != b {
					t.Fatalf("%s: v1-loaded answer differs: %g vs %g", name, a, b)
				}
			} else {
				a, okA, _ := orig.RangeExtremum(l, u)
				b, okB, _ := loaded.RangeExtremum(l, u)
				if okA != okB || (okA && a != b) {
					t.Fatalf("%s: v1-loaded extremum differs: (%g,%v) vs (%g,%v)", name, a, okA, b, okB)
				}
			}
		}
	}
}

// TestOldContainerVersionsLoad: POLD v2 (no encoding-mode byte) and POLS v1
// containers must still restore and answer identically. The transforms
// reverse exactly what the version bumps added: POLD v3 inserted one byte
// at offset 9, POLS v2 changed nothing but the version.
func TestOldContainerVersionsLoad(t *testing.T) {
	keys, vals := genDataset(2500, 117)
	dyn, err := NewDynamic(Sum, keys, vals, Options{Delta: 8, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	v3, err := dyn.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v2 := append(append([]byte(nil), v3[:9]...), v3[10:]...) // drop the encoding byte
	binary.LittleEndian.PutUint16(v2[4:], 2)
	oldDyn, err := RestoreDynamic(v2)
	if err != nil {
		t.Fatalf("POLD v2 blob rejected: %v", err)
	}

	sharded, err := BuildSharded(Sum, keys, vals, 3, Options{Delta: 8, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sharded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sv1 := append([]byte(nil), sb...)
	binary.LittleEndian.PutUint16(sv1[4:], 1)
	var oldSharded Sharded1D
	if err := oldSharded.UnmarshalBinary(sv1); err != nil {
		t.Fatalf("POLS v1 blob rejected: %v", err)
	}

	rng := rand.New(rand.NewSource(118))
	for q := 0; q < 300; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		want, err := dyn.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := oldDyn.RangeSum(l, u); got != want {
			t.Fatalf("POLD v2-loaded answer differs at (%g, %g]: %g vs %g", l, u, got, want)
		}
		ws, _, err := sharded.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		if gs, _, _ := oldSharded.RangeSum(l, u); gs != ws {
			t.Fatalf("POLS v1-loaded answer differs at (%g, %g]: %g vs %g", l, u, gs, ws)
		}
	}
}

// TestRawLanesMatchAoSEvaluation pins the structure-of-arrays refactor to the
// pre-refactor semantics: evaluating the padded coefficient lanes must be
// bit-identical to the historical per-segment FramedPoly evaluation (trimmed
// Horner over frame-normalised keys) at every indexed key and boundary.
func TestRawLanesMatchAoSEvaluation(t *testing.T) {
	keys, _ := genDataset(5000, 103)
	ix, err := BuildCount(keys, Options{Degree: 3, Delta: 3, NoFallback: true, Encoding: EncRaw})
	if err != nil {
		t.Fatal(err)
	}
	probe := func(k float64) {
		i := ix.locate(k)
		x := k
		if x > ix.segHi[i] {
			x = ix.segHi[i]
		}
		fp := ix.framedPolyAt(i) // trimmed poly + frame: the AoS layout
		want := fp.P.Eval(fp.F.Normalize(x))
		if got := ix.CF(k); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("CF(%v) = %v via lanes, %v via AoS polynomial", k, got, want)
		}
	}
	for _, k := range keys {
		probe(k)
	}
	for i := 0; i < ix.NumSegments(); i++ {
		probe(ix.segLo[i])
		probe(ix.segHi[i])
	}
}

// TestEncodingRoundTrip: every encoding must survive Marshal/Unmarshal with
// the encoding preserved and answers bit-identical.
func TestEncodingRoundTrip(t *testing.T) {
	keys, _ := genDataset(20000, 105)
	for _, enc := range []Encoding{EncAuto, EncRaw, EncF32, EncPacked} {
		orig, err := BuildCount(keys, Options{Degree: 2, Delta: 2, NoFallback: true, Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := orig.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var loaded Index1D
		if err := loaded.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if loaded.Encoding() != orig.Encoding() {
			t.Fatalf("%v: encoding not preserved: %v vs %v", enc, loaded.Encoding(), orig.Encoding())
		}
		if loaded.SizeBytes() != orig.SizeBytes() || loaded.NumSegments() != orig.NumSegments() {
			t.Fatalf("%v: size/segment metadata changed across round trip", enc)
		}
		rng := rand.New(rand.NewSource(106))
		lo, hi := keys[0], keys[len(keys)-1]
		for q := 0; q < 1000; q++ {
			k := lo - 10 + rng.Float64()*(hi-lo+20)
			if a, b := orig.CF(k), loaded.CF(k); a != b {
				t.Fatalf("%v: CF(%v) diverges after round trip: %v vs %v", enc, k, a, b)
			}
		}
	}
}

// TestForcedEncodingsCertify: a forced compressed encoding must still honour
// the δ guarantee (certifying, or falling back to a heavier encoding when it
// cannot), for COUNT and SUM.
func TestForcedEncodingsCertify(t *testing.T) {
	keys, vals := genDataset(8000, 107)
	exactCount := func(l, u float64) float64 {
		c := 0.0
		for _, k := range keys {
			if k > l && k <= u {
				c++
			}
		}
		return c
	}
	for _, enc := range []Encoding{EncAuto, EncRaw, EncF32, EncPacked} {
		delta := 5.0
		ix, err := BuildCount(keys, Options{Degree: 2, Delta: delta, NoFallback: true, Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Delta() != delta {
			t.Fatalf("%v: certified delta changed: %g", enc, ix.Delta())
		}
		rng := rand.New(rand.NewSource(108))
		for q := 0; q < 400; q++ {
			l := keys[rng.Intn(len(keys))]
			u := keys[rng.Intn(len(keys))]
			if l > u {
				l, u = u, l
			}
			got, _ := ix.RangeSum(l, u)
			want := exactCount(l, u)
			if math.Abs(got-want) > 2*delta+1e-9 {
				t.Fatalf("%v: |%g - %g| > 2δ at (%g, %g]", enc, got, want, l, u)
			}
		}
	}
	// MIN/MAX must refuse the packed encoding and still build correctly.
	ix, err := BuildMax(keys, vals, Options{Degree: 2, Delta: 30, NoFallback: true, Encoding: EncPacked})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Encoding() == EncPacked {
		t.Fatal("extremum index must not adopt the packed encoding")
	}
}

// TestLocatePackedMatchesReference: the packed integer-grid locate (two-level
// root included) must agree with the binary-search reference on uniform and
// skewed key distributions, at boundaries, grid edges, and out-of-domain
// probes.
func TestLocatePackedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	datasets := map[string][]float64{}
	uniform := make([]float64, 30000)
	k := 0.0
	for i := range uniform {
		k += 0.5 + rng.Float64()
		uniform[i] = k
	}
	datasets["uniform"] = uniform
	// Skewed: long stretches of dense keys then sparse tails — boundaries
	// pile into few root buckets and exercise the second root level.
	skewed := make([]float64, 30000)
	k = 0.0
	for i := range skewed {
		if i%1000 < 900 {
			k += 0.01 + rng.Float64()*0.01
		} else {
			k += 50 + rng.Float64()*100
		}
		skewed[i] = k
	}
	datasets["skewed"] = skewed

	for name, keys := range datasets {
		ix, err := BuildCount(keys, Options{Degree: 2, Delta: 1, NoFallback: true, Encoding: EncPacked})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Encoding() != EncPacked {
			t.Skipf("%s: packed did not certify on this distribution (enc=%v)", name, ix.Encoding())
		}
		h := ix.NumSegments()
		lo, hi := keys[0], keys[len(keys)-1]
		probes := make([]float64, 0, 8000)
		for i := 0; i < 4000; i++ {
			probes = append(probes, lo+rng.Float64()*(hi-lo))
		}
		for i := 0; i < h; i += 7 {
			b := ix.loAt(i)
			probes = append(probes, b, b-1e-9, b+1e-9, ix.hiAt(i))
		}
		probes = append(probes, lo-1e6, lo, hi, hi+1e6, ix.keyLo, ix.keyHi)
		for _, p := range probes {
			if got, want := ix.Locate(p), ix.LocateBinary(p); got != want {
				t.Fatalf("%s: packed Locate(%v) = %d, binary = %d", name, p, got, want)
			}
		}
	}
}

// TestTwoLevelRootEngages: a clustered distribution that overfills level-1
// buckets must grow second-level tables (not fall back to binary search), and
// locate must stay correct through them.
func TestTwoLevelRootEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	keys := make([]float64, 0, 40000)
	k := 0.0
	for len(keys) < 40000 {
		// Dense bursts force many segment starts into key slivers while the
		// jumps stretch the root span, so level-1 buckets overfill.
		for i := 0; i < 2000 && len(keys) < 40000; i++ {
			k += rng.Float64() * 1e-3
			keys = append(keys, k)
		}
		k += 1e5 + rng.Float64()*1e5
	}
	ix := buildCountOver(t, keys, Options{Degree: 2, Delta: 1, NoFallback: true, Encoding: EncRaw})
	if ix.NumSegments() < 64 {
		t.Skipf("too few segments (%d) to stress the root", ix.NumSegments())
	}
	if len(ix.rootSubs) == 0 {
		t.Fatal("clustered boundaries should overfill level-1 buckets and grow second-level tables")
	}
	if rb := ix.RootSizeBytes(); rb <= 4*len(ix.rootTable) {
		t.Fatalf("RootSizeBytes (%d) must account for the second level", rb)
	}
	for q := 0; q < 5000; q++ {
		p := keys[0] + rng.Float64()*(keys[len(keys)-1]-keys[0])
		if got, want := ix.Locate(p), ix.LocateBinary(p); got != want {
			t.Fatalf("two-level locate(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestPackedBlobCorruption: tampered or truncated packed blobs must return
// ErrBadFormat — never panic, never silently decode.
func TestPackedBlobCorruption(t *testing.T) {
	keys, _ := genDataset(20000, 113)
	ix, err := BuildCount(keys, Options{Degree: 2, Delta: 2, NoFallback: true, Encoding: EncPacked})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Encoding() != EncPacked {
		t.Fatalf("expected packed encoding, got %v", ix.Encoding())
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var ok Index1D
	if err := ok.UnmarshalBinary(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}

	// The encoding byte sits right after the fixed header and segment count.
	encOff := 4 + 2 + 1 + 1 + 4 + 8 + 8 + 8 + 8 + 8 + 4
	if Encoding(blob[encOff]) != EncPacked {
		t.Fatalf("encoding byte not at offset %d", encOff)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		bad := f(append([]byte(nil), blob...))
		var target Index1D
		if err := target.UnmarshalBinary(bad); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: want ErrBadFormat, got %v", name, err)
		}
	}
	mutate("tampered encoding byte", func(b []byte) []byte {
		b[encOff] = 0xEE
		return b
	})
	mutate("encoding byte set to auto", func(b []byte) []byte {
		b[encOff] = uint8(EncAuto)
		return b
	})
	mutate("truncated coefficient lanes", func(b []byte) []byte {
		return b[:len(b)-len(b)/3]
	})
	mutate("truncated grid starts", func(b []byte) []byte {
		return b[:encOff+3+8+2]
	})
	mutate("oversized lane count", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[encOff+1:], 60000)
		return b
	})
	mutate("bad lane width byte", func(b []byte) []byte {
		h := ix.NumSegments()
		// First lane header follows keyStep and the h grid starts.
		off := encOff + 1 + 2 + 8 + 4*h
		b[off] = 3
		return b
	})
	mutate("non-increasing grid starts", func(b []byte) []byte {
		off := encOff + 1 + 2 + 8 // first loQ entry
		binary.LittleEndian.PutUint32(b, binary.LittleEndian.Uint32(b[off+4:]))
		copy(b[off:], b[:4])
		binary.LittleEndian.PutUint32(b[off:], binary.LittleEndian.Uint32(b[off+4:]))
		return b
	})
	mutate("zero key step", func(b []byte) []byte {
		off := encOff + 1 + 2
		binary.LittleEndian.PutUint64(b[off:], 0)
		return b
	})
}

// TestShavedRefitKeepsDelta: when the packed encoding goes through the shaved
// re-segmentation, the certified, user-visible δ must be unchanged and the
// guarantee must hold at the original δ.
func TestShavedRefitKeepsDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	keys := make([]float64, 50000)
	k := 0.0
	for i := range keys {
		k += rng.Float64() + 0.01
		keys[i] = k
	}
	delta := 1.0
	ix, err := BuildCount(keys, Options{Degree: 2, Delta: delta, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Delta() != delta {
		t.Fatalf("user-visible delta changed: %g", ix.Delta())
	}
	if ix.Encoding() != EncPacked {
		t.Skipf("packed did not certify (enc=%v); refit path not exercised", ix.Encoding())
	}
	for q := 0; q < 500; q++ {
		i := rng.Intn(len(keys) - 1)
		j := i + rng.Intn(len(keys)-i)
		got, _ := ix.RangeSum(keys[i], keys[j])
		want := float64(j - i)
		if math.Abs(got-want) > 2*delta+1e-9 {
			t.Fatalf("|%g - %g| > 2δ on (%g, %g]", got, want, keys[i], keys[j])
		}
	}
}
