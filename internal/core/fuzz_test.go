package core

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzUnmarshal1D hardens the 1D decoder: arbitrary bytes must either fail
// cleanly or produce an index whose queries do not panic and stay finite.
func FuzzUnmarshal1D(f *testing.F) {
	keys, measures := genDataset(200, 91)
	ix, _ := BuildCount(keys, Options{Delta: 10})
	blob, _ := ix.MarshalBinary()
	f.Add(blob)
	mx, _ := BuildMax(keys, measures, Options{Delta: 10})
	blobMax, _ := mx.MarshalBinary()
	f.Add(blobMax)
	// Seed every coefficient encoding plus the corruption classes its lanes
	// add: truncated lane arrays and a tampered encoding-mode byte.
	bigKeys, _ := genDataset(20000, 92)
	for _, enc := range []Encoding{EncRaw, EncF32, EncPacked} {
		eix, _ := BuildCount(bigKeys, Options{Delta: 2, Encoding: enc, NoFallback: true})
		eb, _ := eix.MarshalBinary()
		f.Add(eb)
		f.Add(eb[:len(eb)-len(eb)/3]) // lanes cut mid-array
		tampered := append([]byte(nil), eb...)
		tampered[56] ^= 0xFF // encoding-mode byte
		f.Add(tampered)
	}
	f.Add([]byte{})
	f.Add(blob[:16])
	f.Fuzz(func(t *testing.T, data []byte) {
		var loaded Index1D
		if err := loaded.UnmarshalBinary(data); err != nil {
			return // clean rejection
		}
		// Whatever decoded must be queryable without panicking (NaN values
		// are legitimate when the fuzzer writes NaN coefficient bits).
		switch loaded.Aggregate() {
		case Count, Sum:
			loaded.RangeSum(-1e9, 1e9) //nolint:errcheck
		case Min, Max:
			loaded.RangeExtremum(-1e9, 1e9) //nolint:errcheck
		}
		_ = loaded.SizeBytes()
		_ = loaded.NumSegments()
	})
}

// TestWriteEncodingCorpus regenerates the checked-in packed-lane fuzz seeds
// under testdata/fuzz/FuzzUnmarshal1D (run with CORPUS_WRITE=1 after a format
// change). Checked-in corpus files replay on every plain `go test` run, so
// the lane-decoder corruption classes stay covered without -fuzz.
func TestWriteEncodingCorpus(t *testing.T) {
	if os.Getenv("CORPUS_WRITE") == "" {
		t.Skip("set CORPUS_WRITE=1 to regenerate the corpus files")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzUnmarshal1D")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keys, _ := genDataset(20000, 92)
	packed, err := BuildCount(keys, Options{Delta: 2, Encoding: EncPacked, NoFallback: true})
	if err != nil || packed.Encoding() != EncPacked {
		t.Fatalf("packed build: enc=%v err=%v", packed.Encoding(), err)
	}
	pb, _ := packed.MarshalBinary()
	write("valid-packed-lanes", pb)
	write("truncated-packed-lanes", pb[:len(pb)-len(pb)/3])
	tampered := append([]byte(nil), pb...)
	tampered[56] ^= 0xFF // encoding-mode byte
	write("tampered-encoding-byte", tampered)
	badWidth := append([]byte(nil), pb...)
	badWidth[56+1+2+8+4*packed.NumSegments()] = 3 // first lane width byte
	write("bad-lane-width", badWidth)
	badGrid := append([]byte(nil), pb...)
	for i := 0; i < 8; i++ {
		badGrid[56+1+2+8+i] = 0xFF // grid starts no longer increasing
	}
	write("nonincreasing-grid-starts", badGrid)
	f32, err := BuildCount(keys, Options{Delta: 2, Encoding: EncF32, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := f32.MarshalBinary()
	write("valid-f32-lanes", fb)
	write("truncated-f32-lanes", fb[:len(fb)-len(fb)/4])
}

// FuzzUnmarshal2D hardens the recursive quadtree decoder against crafted
// blobs (depth bombs, truncations, type confusion with 1D blobs).
func FuzzUnmarshal2D(f *testing.F) {
	xs, ys := gen2D(300, 93)
	ix, _ := BuildCount2D(xs, ys, Options2D{Delta: 30})
	blob, _ := ix.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		var loaded Index2D
		if err := loaded.UnmarshalBinary(data); err != nil {
			return
		}
		_ = loaded.RangeCount(-200, 200, -100, 100)
		_ = loaded.SizeBytes()
	})
}

// FuzzUnmarshalSharded hardens the POLS container decoders (static and
// dynamic kinds share the header and directory): corrupt shard
// directories, truncated shards, and mismatched shard counts must error
// cleanly — whatever decodes must answer queries without panicking.
func FuzzUnmarshalSharded(f *testing.F) {
	keys, measures := genDataset(240, 97)
	s, _ := BuildSharded(Sum, keys, measures, 4, Options{Delta: 10, NoFallback: true})
	blob, _ := s.MarshalBinary()
	f.Add(blob)
	sd, _ := NewShardedDynamic(Max, keys, measures, 3, Options{Delta: 10, NoFallback: true})
	dynBlob, _ := sd.MarshalBinary()
	f.Add(dynBlob)
	// Seed the corruption classes the decoder must reject: truncated shard,
	// mismatched shard count, and a scrambled directory entry.
	f.Add(blob[:len(blob)-9])
	countUp := append([]byte(nil), blob...)
	countUp[8]++ // directory claims one more shard than present
	f.Add(countUp)
	dirBad := append([]byte(nil), dynBlob...)
	for i := 12; i < 20 && i < len(dirBad); i++ {
		dirBad[i] ^= 0xFF // mangle the first routing bound
	}
	f.Add(dirBad)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var loaded Sharded1D
		if err := loaded.UnmarshalBinary(data); err == nil {
			loaded.RangeSum(-1e9, 1e9)                                       //nolint:errcheck
			loaded.RangeExtremum(-1e9, 1e9)                                  //nolint:errcheck
			loaded.QueryBatch([]Range{{Lo: -1e9, Hi: 1e9}, {Lo: 1, Hi: -1}}) //nolint:errcheck
			_ = loaded.SizeBytes()
		}
		if restored, err := RestoreShardedDynamic(data); err == nil {
			restored.RangeSum(-1e9, 1e9)      //nolint:errcheck
			restored.RangeExtremum(-1e9, 1e9) //nolint:errcheck
			restored.Insert(math.Pi, 1)       //nolint:errcheck
			_ = restored.Len()
		}
	})
}

// FuzzRangeSumInvariants checks structural invariants of COUNT queries under
// arbitrary float inputs (including NaN/Inf endpoints).
func FuzzRangeSumInvariants(f *testing.F) {
	keys, _ := genDataset(500, 95)
	ix, err := BuildCount(keys, Options{Delta: 15})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(1.0, 2.0)
	f.Add(-1e308, 1e308)
	f.Add(math.Inf(-1), math.Inf(1))
	f.Fuzz(func(t *testing.T, l, u float64) {
		if math.IsNaN(l) || math.IsNaN(u) {
			return
		}
		v, err := ix.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		if u < l && v != 0 {
			t.Fatalf("inverted range returned %g", v)
		}
		if math.IsNaN(v) {
			t.Fatalf("NaN from finite query [%g,%g]", l, u)
		}
		// Telescoping identity must hold exactly.
		if l <= u {
			mid := l + (u-l)/2
			if !math.IsInf(mid, 0) {
				a, _ := ix.RangeSum(l, mid)
				b, _ := ix.RangeSum(mid, u)
				if math.Abs((a+b)-v) > 1e-6*(1+math.Abs(v)) {
					t.Fatalf("additivity broken: %g + %g != %g", a, b, v)
				}
			}
		}
	})
}
