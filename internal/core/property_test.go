package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRangeSumAdditivityProperty: because RangeSum(a,b) = CF(b) − CF(a),
// the telescoping identity R(a,b) + R(b,c) = R(a,c) holds *exactly* for any
// a ≤ b ≤ c — a structural invariant of the cumulative-function design.
func TestRangeSumAdditivityProperty(t *testing.T) {
	keys, measures := genDataset(1500, 71)
	ix, err := BuildSum(keys, measures, Options{Delta: 300})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.KeyRange()
	span := hi - lo
	err = quick.Check(func(u1, u2, u3 float64) bool {
		pts := []float64{
			lo + math.Mod(math.Abs(u1), 1)*span,
			lo + math.Mod(math.Abs(u2), 1)*span,
			lo + math.Mod(math.Abs(u3), 1)*span,
		}
		if math.IsNaN(pts[0]) || math.IsNaN(pts[1]) || math.IsNaN(pts[2]) {
			return true
		}
		a, b, c := pts[0], pts[1], pts[2]
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		ab, _ := ix.RangeSum(a, b)
		bc, _ := ix.RangeSum(b, c)
		ac, _ := ix.RangeSum(a, c)
		return math.Abs((ab+bc)-ac) < 1e-6*(1+math.Abs(ac))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// TestCFWithinGlobalBoundsProperty: the approximate CF stays within δ of
// the valid range [0, total] everywhere, including far outside the domain.
func TestCFWithinGlobalBoundsProperty(t *testing.T) {
	keys, _ := genDataset(2000, 73)
	ix, err := BuildCount(keys, Options{Delta: 25})
	if err != nil {
		t.Fatal(err)
	}
	total := ix.Total()
	err = quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := ix.CF(x)
		return v >= -25-1e-9 && v <= total+25+1e-9
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestMaxDominatedBySegmentEnvelopeProperty: a MAX answer can never exceed
// the global maximum + δ (the clamp in segPolyMax enforces it per segment).
func TestMaxEnvelopeProperty(t *testing.T) {
	keys, measures := genDataset(1200, 75)
	const delta = 40.0
	ix, err := BuildMax(keys, measures, Options{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	globalMax := math.Inf(-1)
	for _, m := range measures {
		globalMax = math.Max(globalMax, m)
	}
	lo, hi := ix.KeyRange()
	span := hi - lo
	err = quick.Check(func(u1, u2 float64) bool {
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		a := lo + math.Mod(math.Abs(u1), 1)*span
		b := lo + math.Mod(math.Abs(u2), 1)*span
		if a > b {
			a, b = b, a
		}
		v, ok, err := ix.RangeExtremum(a, b)
		if err != nil {
			return false
		}
		return !ok || v <= globalMax+delta+1e-9
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}

// TestRangeSumShrinkageProperty: widening a query range never decreases a
// COUNT answer by more than the approximation noise (2δ), for ranges
// aligned on dataset keys where the guarantee is strict.
func TestRangeSumShrinkageProperty(t *testing.T) {
	keys, _ := genDataset(1500, 77)
	const delta = 20.0
	ix, err := BuildCount(keys, Options{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(keys))
		j := i + rng.Intn(len(keys)-i)
		wideI := i - rng.Intn(i+1)
		wideJ := j + rng.Intn(len(keys)-j)
		inner, _ := ix.RangeSum(keys[i], keys[j])
		outer, _ := ix.RangeSum(keys[wideI], keys[wideJ])
		if outer < inner-4*delta-1e-9 {
			t.Fatalf("widening shrank the count too much: inner %g outer %g", inner, outer)
		}
	}
}

// TestSerializeStableProperty: marshal → unmarshal → marshal is bytewise
// stable (canonical encoding).
func TestSerializeStableProperty(t *testing.T) {
	keys, measures := genDataset(800, 79)
	for _, build := range []func() (*Index1D, error){
		func() (*Index1D, error) { return BuildCount(keys, Options{Delta: 30}) },
		func() (*Index1D, error) { return BuildMax(keys, measures, Options{Delta: 30}) },
	} {
		ix, err := build()
		if err != nil {
			t.Fatal(err)
		}
		blob1, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var loaded Index1D
		if err := loaded.UnmarshalBinary(blob1); err != nil {
			t.Fatal(err)
		}
		blob2, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(blob1) != len(blob2) {
			t.Fatalf("re-marshal changed length: %d vs %d", len(blob1), len(blob2))
		}
		for i := range blob1 {
			if blob1[i] != blob2[i] {
				t.Fatalf("re-marshal changed byte %d", i)
			}
		}
	}
}
